// website_audit: grade a website's IPv6 readiness from its DNS footprint —
// the §4 classifier as a standalone tool over a hand-authored zone.
//
// Models "shop.example.com": the main page is dual-stack, most resources
// are IPv6-capable, but an ad network and a legacy first-party image host
// are A-only. The audit reports the graded level and the exact blockers,
// i.e. what the site operator would need fixed to reach IPv6-full.
//
//   ./build/examples/website_audit
#include <cstdio>
#include <string>
#include <vector>

#include "core/adoption.h"
#include "dns/resolver.h"
#include "dns/zone.h"
#include "web/psl.h"

using namespace nbv6;

namespace {

net::IPv4Addr v4(std::uint8_t x) { return net::IPv4Addr(198, 51, 100, x); }
net::IPv6Addr v6(std::uint64_t x) {
  return net::IPv6Addr::from_halves(0x20010db8ull << 32, x);
}

}  // namespace

int main() {
  // The site's DNS footprint: what a crawler would resolve while loading
  // the page. In a live deployment this zone view would be replaced by
  // real lookups; every analysis below works purely on the resolver API.
  dns::ZoneDb zone;
  zone.add_a("shop.example.com", v4(1));
  zone.add_aaaa("shop.example.com", v6(1));

  struct Dep {
    const char* fqdn;
    bool has_aaaa;
  };
  std::vector<Dep> deps = {
      {"static.example.com", true},     // first-party CDN: dual-stack
      {"img-legacy.example.com", false},// first-party laggard (the paper's
                                        // assets.national-geographic.org)
      {"cdn.webfonts.net", true},
      {"api.payments.io", true},
      {"tags.adnetwork.com", false},    // third-party ad stack, A-only
      {"px.tracker-one.net", false},
  };
  for (const auto& d : deps) {
    static std::uint8_t next = 10;
    zone.add_a(d.fqdn, v4(next));
    if (d.has_aaaa) zone.add_aaaa(d.fqdn, v6(next));
    ++next;
  }

  dns::Resolver resolver(zone);
  auto psl = web::PublicSuffixList::builtin();
  const std::string site = "shop.example.com";

  auto main_page = resolver.resolve_dual(site);
  if (!main_page.reachable()) {
    std::printf("%s: loading failure\n", site.c_str());
    return 1;
  }
  if (!main_page.has_v6()) {
    std::printf("%s: IPv4-only — publish an AAAA for the main page first.\n",
                site.c_str());
    return 0;
  }

  int total = 0, v4only = 0;
  std::vector<std::string> first_party_blockers, third_party_blockers;
  for (const auto& d : deps) {
    auto dual = resolver.resolve_dual(d.fqdn);
    if (!dual.reachable()) continue;
    ++total;
    if (dual.has_v6()) continue;
    ++v4only;
    (psl.same_site(d.fqdn, site) ? first_party_blockers
                                 : third_party_blockers)
        .emplace_back(d.fqdn);
  }

  auto graded = core::GradedAdoption::from_fraction(
      total == 0 ? 1.0 : 1.0 - static_cast<double>(v4only) / total);
  std::printf("%s: %s — %.0f%% of %d resources IPv6-capable\n", site.c_str(),
              std::string(to_string(graded.level)).c_str(),
              100 * graded.fraction, total);

  if (!first_party_blockers.empty()) {
    std::printf("\nfix yourself (first-party, you run these servers):\n");
    for (const auto& b : first_party_blockers)
      std::printf("  %s\n", b.c_str());
  }
  if (!third_party_blockers.empty()) {
    std::printf("\nchase your vendors (third-party):\n");
    for (const auto& b : third_party_blockers)
      std::printf("  %s\n", b.c_str());
  }
  return 0;
}
