// fleet_scenario: simulate a whole deployment of residences and report
// population-level IPv6 adoption — the paper's §3 measurement scaled from
// five instrumented households to an ISP-sized fleet.
//
// Reads an optional key=value scenario config (see examples/fleet.cfg for
// every knob), samples the residence population deterministically from the
// scenario seed, fans the simulation out over a FlatConntrack shard per
// residence, and reduces the shard monitors into one fleet view.
//
// Closes with the fleet-statistics layer: population stratum sizes and the
// Holm-corrected Wilcoxon group-comparison panels (rank-sum between
// strata, signed-rank between paired metrics) — the paper's cross-
// residence comparisons at fleet scale.
//
//   ./build/example_fleet_scenario [scenario.cfg]
#include <algorithm>
#include <cstdio>

#include "core/client_analysis.h"
#include "core/fleet_analysis.h"
#include "engine/fleet.h"
#include "stats/descriptive.h"
#include "stats/wilcoxon.h"
#include "traffic/service_catalog.h"

using namespace nbv6;

int main(int argc, char** argv) {
  engine::FleetConfig cfg;  // defaults: 64 residences, 30 days
  if (argc > 1) {
    auto loaded = engine::FleetConfig::load(argv[1]);
    if (!loaded) {
      std::fprintf(stderr, "failed to load scenario config: %s\n", argv[1]);
      return 1;
    }
    cfg = *loaded;
  }

  auto catalog = traffic::build_paper_catalog();
  auto sampled = engine::sample_fleet_detailed(cfg, catalog);
  engine::apply_timeline(sampled, cfg.timeline, cfg.seed, cfg.days);
  engine::FleetEngine fleet(catalog, cfg.threads);
  std::printf("fleet: %d residences x %d days on %d lane(s)\n",
              cfg.residences.get(), cfg.days.get(), fleet.lanes());
  if (!cfg.timeline->empty()) {
    std::printf("timeline:");
    for (const auto& ev : cfg.timeline->events)
      std::printf(" %s[%d..%d]", engine::to_string(ev.kind), ev.start_day,
                  std::min(ev.end_day, cfg.days - 1));
    std::printf("\n");
  }

  auto result = fleet.run(sampled);
  std::printf("simulated %llu sessions, %llu flows (%llu invisible, %llu HE "
              "failures, %llu lost to outages, %llu to dark services, %llu "
              "to CGN exhaustion)\n",
              static_cast<unsigned long long>(result.totals.sessions),
              static_cast<unsigned long long>(result.totals.flows),
              static_cast<unsigned long long>(result.totals.skipped_invisible),
              static_cast<unsigned long long>(result.totals.he_failures),
              static_cast<unsigned long long>(
                  result.totals.outage_suppressed),
              static_cast<unsigned long long>(
                  result.totals.service_outage_failed),
              static_cast<unsigned long long>(result.totals.cgn_failures));

  // The day-resolved view of the same counters: the fleet-wide failure
  // peak, usually the tail of whatever the timeline scheduled.
  if (result.totals.he_failures > 0 && !result.totals.daily.empty()) {
    size_t peak = 0;
    for (size_t d = 1; d < result.totals.daily.size(); ++d)
      if (result.totals.daily[d].he_failures >
          result.totals.daily[peak].he_failures)
        peak = d;
    const auto& ds = result.totals.daily[peak];
    std::printf("peak HE-failure day: day %zu (%llu failures over %llu "
                "sessions, rate %.4f)\n",
                peak, static_cast<unsigned long long>(ds.he_failures),
                static_cast<unsigned long long>(ds.sessions),
                ds.sessions == 0 ? 0.0
                                 : static_cast<double>(ds.he_failures) /
                                       static_cast<double>(ds.sessions));
  }

  // Fleet-level Table-1 rows + population spread from the merged monitor:
  // the core analyses run unchanged on the reduced view.
  auto report = core::analyze_fleet(result);
  std::printf("\nfleet external traffic: %.1f GB, %.1f%% IPv6 by bytes, "
              "%.1f%% by flows\n",
              report.fleet.external.total_gb,
              100 * report.fleet.external.overall_byte_fraction,
              100 * report.fleet.external.overall_flow_fraction);
  std::printf("fleet daily byte fraction: mean %.3f, sd %.3f\n",
              report.fleet.external.daily_byte_fraction.mean,
              report.fleet.external.daily_byte_fraction.stddev);

  // Population distribution of per-residence adoption (the cross-residence
  // spread Table 1 shows for five homes, here for the whole fleet).
  const auto& by = report.residence_byte_fraction;
  std::printf("\nper-residence IPv6 byte fraction across %zu active homes:\n"
              "  mean %.3f  sd %.3f  p25 %.3f  median %.3f  p75 %.3f\n",
              by.count, by.mean, by.stddev, by.p25, by.median, by.p75);

  // Paired cross-residence comparison: flow fractions systematically exceed
  // byte fractions (Happy Eyeballs opens v6 control flows even where bytes
  // go v4) — the Wilcoxon machinery the paper applies across homes.
  if (auto w = stats::wilcoxon_signed_rank(report.flow_fracs,
                                           report.byte_fracs)) {
    std::printf("\nflow- vs byte-fraction (paired Wilcoxon, n=%zu): z=%.2f, "
                "p=%.2g, effect r=%.2f\n",
                w->n, w->z, w->p_value, w->effect_size_r);
  }

  // Fleet statistics: stratum sizes, then the Holm-corrected Wilcoxon
  // group-comparison panels over the per-residence shards.
  auto stats_report = core::fleet_stats_report(result, fleet.pool());
  std::printf("\npopulation strata:");
  for (auto g : {core::FleetGroup::healthy_v6, core::FleetGroup::broken_cpe,
                 core::FleetGroup::v4_only, core::FleetGroup::heavy_streamer,
                 core::FleetGroup::opt_out, core::FleetGroup::active}) {
    std::printf(" %s=%zu", core::to_string(g),
                core::group_members(result.traits, g).size());
  }
  std::printf("\n");

  for (const auto& cmp : stats_report.comparisons) {
    std::printf("\n-- %s vs %s (unpaired rank-sum, Holm alpha=0.05) --\n",
                core::to_string(cmp.group_a), core::to_string(cmp.group_b));
    core::write_panel_tsv(stdout, cmp);
  }
  std::printf("\n-- paired metric panel over active homes --\n");
  core::write_panel_tsv(stdout, stats_report.paired);

  // With a timeline, compare the horizon's two halves per residence: the
  // before/after view of whatever the scenario scheduled (rollout waves,
  // fixes, migrations) with the paired signed-rank machinery.
  if (!cfg.timeline->empty() && cfg.days >= 2) {
    core::DayWindow pre{0, cfg.days / 2 - 1};
    core::DayWindow post{cfg.days / 2, cfg.days - 1};
    auto metrics = core::default_fleet_metrics();
    auto windows = core::compare_windows(result, metrics, pre, post,
                                         core::FleetGroup::all, fleet.pool());
    std::printf("\n-- days %d-%d vs days %d-%d (paired, Holm alpha=0.05) --\n",
                pre.first, pre.last, post.first, post.last);
    core::write_panel_tsv(stdout, windows);
  }
  return 0;
}
