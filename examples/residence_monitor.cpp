// residence_monitor: run the flow-monitoring pipeline over a custom
// household and report how much of its traffic is actually IPv6 — the §3
// measurement as a reusable tool.
//
// Configures a two-person apartment that streams a lot of Twitch (an
// IPv4-only service) but otherwise lives on IPv6-ready platforms, then
// prints the Table-1-style report, the per-service leaders/laggards, and
// the diurnal decomposition summary.
//
//   ./build/examples/residence_monitor [days]
#include <cstdio>
#include <cstdlib>

#include "core/client_analysis.h"
#include "flowmon/monitor.h"
#include "traffic/generator.h"

using namespace nbv6;

int main(int argc, char** argv) {
  int days = argc > 1 ? std::atoi(argv[1]) : 90;

  auto catalog = traffic::build_paper_catalog();

  traffic::ResidenceConfig home;
  home.name = "X";
  home.days = days;
  home.activity_scale = 5.0;
  home.internal_flows_per_hour = 1.5;
  home.internal_v6_frac = 0.5;
  home.service_weight_overrides = {
      {"TWITCH", 3.0},          // the IPv4-only anchor
      {"GOOGLE", 2.0},          {"AS-SSI", 1.5},
      {"CLOUDFLARENET", 1.5},   {"FACEBOOK", 1.2},
  };
  home.seed = 2026;

  flowmon::ConntrackTable conntrack;
  flowmon::FlowMonitor monitor(conntrack);
  traffic::ResidenceSimulator simulator(catalog, home);
  auto stats = simulator.run(conntrack);
  std::printf("simulated %d days: %llu sessions, %llu flows\n", days,
              static_cast<unsigned long long>(stats.sessions),
              static_cast<unsigned long long>(stats.flows));

  auto report = core::analyze_residence(home.name, monitor);
  std::printf("\nexternal traffic: %.1f GB total, %.1f%% IPv6 by bytes, "
              "%.1f%% by flows\n",
              report.external.total_gb,
              100 * report.external.overall_byte_fraction,
              100 * report.external.overall_flow_fraction);
  std::printf("day-to-day byte fraction: mean %.3f, sd %.3f (min %.3f, max "
              "%.3f)\n",
              report.external.daily_byte_fraction.mean,
              report.external.daily_byte_fraction.stddev,
              report.external.daily_byte_fraction.min,
              report.external.daily_byte_fraction.max);

  std::printf("\nservices by volume (leaders and laggards):\n");
  auto usage = core::as_usage(monitor, catalog.as_map(), 1e-3);
  for (const auto& u : usage) {
    std::printf("  %-28s %8.2f GB  %5.1f%% IPv6%s\n", u.as_name.c_str(),
                static_cast<double>(u.bytes) / 1e9, 100 * u.v6_fraction(),
                u.v6_fraction() == 0.0 ? "   <- IPv4-only laggard" : "");
  }

  auto diurnal = core::diurnal_decomposition(monitor, /*by_bytes=*/true);
  if (!diurnal.daily.empty()) {
    double peak = stats::max(diurnal.daily);
    double trough = stats::min(diurnal.daily);
    std::printf("\ndiurnal structure: daily component swings %+.3f to %+.3f "
                "around the trend\n(IPv6 use follows humans being home).\n",
                trough, peak);
  }
  return 0;
}
