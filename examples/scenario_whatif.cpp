// scenario_whatif: compare a scenario against a what-if variant on the
// pass-graph pipeline — the cheap way to ask "what changes if the ISP
// also ships a CPE firmware fix?".
//
// Both runs execute as pipelines over one shared pass cache. The variant
// differs from the base only in its timeline slice, so its "sample" pass
// is a cache hit: the population is sampled once, the simulation and
// statistics re-run only for the changed world. The closing panel puts
// the two pre/post window comparisons side by side.
//
//   ./build/example_scenario_whatif [scenario.cfg]
#include <cstdio>

#include "core/scenario_pipeline.h"
#include "engine/fleet.h"
#include "engine/pipeline.h"
#include "traffic/service_catalog.h"

using namespace nbv6;

int main(int argc, char** argv) {
  engine::FleetConfig base;
  base.residences = 48;
  base.days = 14;
  base.seed = 20260808;
  if (argc > 1) {
    auto loaded = engine::FleetConfig::load(argv[1]);
    if (!loaded) {
      std::fprintf(stderr, "failed to load scenario config: %s\n", argv[1]);
      return 1;
    }
    base = *loaded;
  }

  // The what-if: halfway through the observation the ISP pushes a CPE
  // firmware fix repairing 60% of the broken-IPv6 homes.
  engine::FleetConfig whatif = base;
  engine::TimelineEvent fix;
  fix.kind = engine::TimelineEventKind::cpe_fix;
  fix.start_day = base.days / 2;
  fix.end_day = base.days - 1;
  fix.fraction = 0.6;
  whatif.timeline->events.push_back(fix);

  const auto catalog = traffic::build_paper_catalog();
  engine::PassCache cache;

  engine::Pipeline base_pipe = core::make_scenario_pipeline(base, catalog);
  auto base_stats = base_pipe.run(&cache);
  engine::Pipeline whatif_pipe = core::make_scenario_pipeline(whatif, catalog);
  auto whatif_stats = whatif_pipe.run(&cache);

  std::printf("base run: %zu passes executed\n", base_stats.executed);
  std::printf(
      "what-if run: %zu executed, %zu from cache (the population sample "
      "carried over: %llu fresh sample executions)\n",
      whatif_stats.executed, whatif_stats.cached,
      static_cast<unsigned long long>(whatif_pipe.executions("sample")));

  const auto& base_result = base_pipe.output<engine::FleetResult>("fleet_result");
  const auto& whatif_result =
      whatif_pipe.output<engine::FleetResult>("fleet_result");
  std::printf(
      "\nsessions: base %llu, what-if %llu; HE failures: base %llu, "
      "what-if %llu\n",
      static_cast<unsigned long long>(base_result.totals.sessions),
      static_cast<unsigned long long>(whatif_result.totals.sessions),
      static_cast<unsigned long long>(base_result.totals.he_failures),
      static_cast<unsigned long long>(whatif_result.totals.he_failures));

  // The decision-relevant view: did the fix move the pre/post panel?
  std::printf("\n-- base: first half vs second half --\n");
  core::write_panel_tsv(stdout,
                        base_pipe.output<core::GroupComparison>("window_panel"));
  std::printf("\n-- what-if (CPE fix at day %d): first half vs second half --\n",
              fix.start_day);
  core::write_panel_tsv(
      stdout, whatif_pipe.output<core::GroupComparison>("window_panel"));
  return 0;
}
