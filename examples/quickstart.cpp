// Quickstart: the non-binary IPv6 adoption API in five minutes.
//
// Builds a small synthetic web universe, surveys it, and prints graded
// adoption results at all three of the paper's levels — then demonstrates
// the CryptoPAN anonymizer used by the client-side release pipeline.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/adoption.h"
#include "core/cloud_analysis.h"
#include "core/server_analysis.h"
#include "net/cryptopan.h"
#include "web/universe.h"

using namespace nbv6;

int main() {
  // 1. A synthetic top-list web universe (5k sites to stay snappy).
  cloud::ProviderCatalog providers;
  web::UniverseConfig config;
  config.site_count = 5000;
  web::Universe universe(config, providers);

  // 2. Crawl and classify every site, exactly as §4 of the paper does:
  // main page + five same-site link clicks, resource-level DNS checks.
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 1);
  const auto& c = survey.counts;
  std::printf("surveyed %d sites: %d reachable\n", c.total,
              c.connection_success);
  std::printf("  IPv4-only:    %5d (%.1f%%)\n", c.ipv4_only,
              c.pct_of_success(c.ipv4_only));
  std::printf("  IPv6-partial: %5d (%.1f%%)\n", c.ipv6_partial,
              c.pct_of_success(c.ipv6_partial));
  std::printf("  IPv6-full:    %5d (%.1f%%)\n", c.ipv6_full,
              c.pct_of_success(c.ipv6_full));

  // 3. The graded (non-binary) view of one site.
  for (size_t i = 0; i < survey.classifications.size(); ++i) {
    const auto& cls = survey.classifications[i];
    if (cls.cls != web::SiteClass::ipv6_partial) continue;
    auto graded = core::GradedAdoption::from_fraction(1.0 - cls.v4only_fraction);
    std::printf(
        "\nexample partial site: %s — %.0f%% of its %d resources are "
        "IPv6-capable\n  graded level: %s\n",
        universe.fqdns()[universe.sites()[survey.crawls[i].site_index].main_fqdn]
            .name.c_str(),
        100.0 * graded.fraction, cls.total_resources,
        std::string(to_string(graded.level)).c_str());
    break;
  }

  // 4. Cloud attribution of everything the crawl touched.
  auto report = core::analyze_cloud(universe, survey);
  std::printf("\ntop cloud providers by observed domains:\n");
  for (size_t i = 0; i < std::min<size_t>(4, report.providers.size()); ++i) {
    const auto& row = report.providers[i];
    std::printf("  %-40s %6d domains, %.1f%% IPv6-full\n", row.org.c_str(),
                row.total, row.pct(row.v6_full));
  }

  // 5. Prefix-preserving anonymization (the §A release pipeline).
  net::CryptoPan::Secret secret{};
  for (size_t i = 0; i < secret.size(); ++i)
    secret[i] = static_cast<std::uint8_t>(0xA5 ^ i);
  net::CryptoPan cryptopan(secret);
  auto original = *net::IpAddr::parse("203.0.113.77");
  auto anonymized = cryptopan.anonymize_paper_policy(original);
  std::printf("\nCryptoPAN (paper policy, low 8 bits): %s -> %s\n",
              original.to_string().c_str(), anonymized.to_string().c_str());
  return 0;
}
