// cloud_comparison: compare cloud providers' effective IPv6 support over
// your own multi-cloud estate — the §5 methodology as a standalone tool.
//
// Hand-authors a fleet of tenants whose subdomains are split across
// providers (the paper's apnic.net example writ large), attributes each by
// BGP origin, and runs the Wilcoxon/Holm comparison to ask: for the SAME
// tenant, which provider ends up serving IPv6 more often?
//
//   ./build/examples/cloud_comparison
#include <cstdio>

#include "cloud/analysis.h"
#include "cloud/providers.h"
#include "stats/rng.h"

using namespace nbv6;

int main() {
  cloud::ProviderCatalog catalog;
  stats::Rng rng(77);

  auto cloudflare = *catalog.find("Cloudflare, Inc.");
  auto amazon = *catalog.find("Amazon.com, Inc.");
  auto ovh = *catalog.find("OVH SAS");

  // 60 tenants, each with subdomains on two providers. Whether a given
  // subdomain is IPv6-full follows each provider's real-world tenant rate
  // (the generic_v6_rate calibrated from the paper's Table 3).
  std::vector<cloud::DomainRecord> records;
  std::uint32_t id = 1;
  auto add_subdomain = [&](const std::string& etld1, const char* label,
                           size_t provider) {
    cloud::DomainRecord r;
    r.fqdn = std::string(label) + "." + etld1;
    r.etld1 = etld1;
    r.cname_terminal = r.fqdn;
    r.a_addr = net::IpAddr{catalog.v4_address(provider, id)};
    if (rng.chance(catalog.at(provider).generic_v6_rate))
      r.aaaa_addr = net::IpAddr{catalog.v6_address(provider, id)};
    ++id;
    records.push_back(std::move(r));
  };

  for (int t = 0; t < 60; ++t) {
    std::string etld1 = "tenant" + std::to_string(t) + ".com";
    size_t second = t % 2 == 0 ? amazon : ovh;
    add_subdomain(etld1, "www", cloudflare);
    add_subdomain(etld1, "cdn", cloudflare);
    add_subdomain(etld1, "api", second);
    add_subdomain(etld1, "files", second);
  }

  // Per-provider view of the estate.
  std::printf("estate attribution (by BGP origin of each record):\n");
  for (const auto& row : cloud::provider_breakdown(records, catalog)) {
    std::printf("  %-40s %4d domains: %5.1f%% IPv6-full, %5.1f%% IPv4-only\n",
                row.org.c_str(), row.total, row.pct(row.v6_full),
                row.pct(row.v4_only));
  }

  // Paired comparison: same tenants, different clouds.
  cloud::MultiCloudComparison cmp(records, catalog);
  std::printf("\npaired Wilcoxon comparisons over %d multi-cloud tenants:\n",
              cmp.multi_cloud_tenant_count());
  for (const auto& p : cmp.pairs()) {
    if (!p.comparable) continue;
    const char* verdict = !p.significant ? "not significant"
                          : p.effect_size_r > 0
                              ? "first provider more IPv6"
                              : "second provider more IPv6";
    std::printf("  %-24s vs %-24s r=%+.2f p=%.2g (n=%d) -> %s\n",
                p.org1.c_str(), p.org2.c_str(), p.effect_size_r, p.p_value,
                p.differing_tenants, verdict);
  }

  std::printf(
      "\nInterpretation: with tenant intent held constant, provider "
      "defaults decide\nIPv6 presence — the paper's argument for default-on, "
      "no-code-change IPv6.\n");
  return 0;
}
