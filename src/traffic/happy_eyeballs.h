// Happy Eyeballs v2 (RFC 8305) connection racing, as a decision model.
//
// §3.2 leans on Happy Eyeballs twice: dual-stack hosts *prefer* IPv6 (so
// residual IPv4 traffic indicates IPv4-only services), and some
// implementations open BOTH an IPv4 and an IPv6 connection before settling,
// which inflates flow counts symmetrically and makes byte fractions the
// clearer adoption signal. This model captures both effects:
//
//   - Resolution delay: the client waits briefly for AAAA before racing.
//   - Connection attempt delay: IPv6 goes first; IPv4 starts after
//     `connection_attempt_delay_ms` and can win only if IPv6 is broken or
//     slower by more than that head start.
//   - Duplicate flows: with probability `dup_flow_prob`, the losing
//     family's connection is opened (and shows up in conntrack) even though
//     virtually all bytes ride the winner.
#pragma once

#include <cstdint>
#include <optional>

#include "net/ip.h"
#include "stats/rng.h"

namespace nbv6::traffic {

struct HappyEyeballsConfig {
  /// Head start IPv6 gets before the IPv4 attempt begins (RFC 8305 §5
  /// recommends 250 ms).
  double connection_attempt_delay_ms = 250.0;
  /// Probability that the loser's connection still appears as a flow.
  double dup_flow_prob = 0.35;
};

struct HappyEyeballsDecision {
  net::Family used = net::Family::v4;
  /// The losing family was also attempted and produced a (nearly empty)
  /// flow record.
  bool opened_both = false;
  /// No connectivity at all (both families absent or broken).
  bool failed = false;
};

/// Race a connection to an endpoint that `has_v4`/`has_v6` describe.
/// `v6_working` models client-side IPv6 breakage (e.g. Residence C's
/// devices); `v4_rtt_ms`/`v6_rtt_ms` are the respective connect latencies.
HappyEyeballsDecision happy_eyeballs_race(bool has_v4, bool has_v6,
                                          bool v6_working, double v4_rtt_ms,
                                          double v6_rtt_ms, stats::Rng& rng,
                                          const HappyEyeballsConfig& cfg = {});

}  // namespace nbv6::traffic
