// Open-loop arrival processes: how sessions land inside a simulated day.
//
// The original generator synthesizes each hour's sessions as one batch
// Poisson count — fine for per-day aggregates, but it cannot express
// intra-day dynamics (flash crowds, sub-hour bursts, correlated
// cross-residence surges), and it ties throughput to "days simulated"
// instead of "flows/sec". This module supplies the arrival layer for the
// time-sliced event loop: an hour is cut into `ticks_per_hour` slots and
// each tick drains an independent, counter-based arrival draw.
//
// Determinism is the contract. Every per-tick draw comes from a fresh
// stats::Rng derived from (residence seed, day, tick) — the residence
// seed itself is a pure function of (scenario seed, residence index) —
// so arrivals are a pure function of (seed, index, day, tick): no
// std::random_device, no shared-state RNG, no dependence on lane count,
// tick evaluation order, or how many other residences exist. That is the
// invariant the golden-replay and lane-parity suites pin.
//
// Modes:
//   batch    — the pre-existing per-hour batch semantics, bit-identical
//              to the original generator (the 12 committed goldens).
//   poisson  — exact open-loop Poisson process: the per-tick count is
//              Poisson(lambda_hour / ticks_per_hour), which *is* the
//              Poisson process restricted to the tick (memorylessness
//              makes the per-tick restart exact).
//   uniform  — renewal process with U(0, 2/lambda) inter-arrival gaps
//              (memtier_skewsyn's uniform generator). The first gap of
//              each tick is drawn from the equilibrium (stationary
//              residual) distribution so the per-tick restart keeps
//              E[count] = lambda exactly; variance is sub-Poisson.
#pragma once

#include <cstdint>
#include <string_view>

#include "stats/rng.h"

namespace nbv6::traffic {

enum class ArrivalMode {
  batch,    ///< per-hour batch counts (the original generator, golden-pinned)
  poisson,  ///< open-loop Poisson inter-arrival
  uniform,  ///< open-loop uniform inter-arrival (equilibrium-started renewal)
};

const char* to_string(ArrivalMode m);
/// "batch" / "poisson" / "uniform"; false on anything else.
bool parse_arrival_mode(std::string_view text, ArrivalMode& out);

/// The scenario-level arrival knobs (FleetConfig `arrival.*` keys), copied
/// onto every sampled ResidenceConfig.
struct ArrivalConfig {
  ArrivalMode mode = ArrivalMode::batch;
  /// Tick granularity of the open-loop event loop, in [1, 3600]. Need not
  /// divide 3600: tick k of an hour spans [k*3600/tph, (k+1)*3600/tph)
  /// with integer-truncated boundaries, so the slots tile the hour exactly.
  int ticks_per_hour = 60;

  friend bool operator==(const ArrivalConfig&, const ArrivalConfig&) = default;
};

/// The per-(residence, day, tick) arrival stream. `seed` is the residence's
/// own seed (already a pure function of scenario seed and index), so the
/// returned generator — and every count drawn from it — is a pure function
/// of (scenario seed, residence index, day, tick).
stats::Rng arrival_tick_rng(std::uint64_t seed, int day, int tick);

/// Poisson(lambda) count. Knuth's product method below lambda = 30, chunked
/// into sub-draws above it (a sum of independent Poissons is Poisson), so
/// large modulated lambdas neither underflow exp(-lambda) nor loop long.
/// Identical to the original generator's draw for lambda <= 30 — every
/// batch-mode scenario stays inside that range, keeping goldens bit-exact.
int poisson_count(stats::Rng& rng, double lambda);

/// Count of uniform-renewal arrivals in one unit interval with mean rate
/// `lambda`: gaps ~ U(0, 2/lambda), first gap from the equilibrium
/// distribution (density proportional to the residual, sampled as
/// (2/lambda) * (1 - sqrt(1 - u))) so E[count] = lambda exactly despite the
/// per-tick restart.
int uniform_count(stats::Rng& rng, double lambda);

/// Dispatch on an open-loop mode (batch mode never calls this — it keeps
/// the original per-hour code path). `lambda` is the expected count for
/// this tick. Rates are clamped to kMaxTickLambda first: a denial-of-
/// service guard against hand-written configs with absurd activity scales,
/// far above anything the scenario grammar's validated knobs can express.
int draw_arrivals(ArrivalMode mode, stats::Rng& rng, double lambda);

/// See draw_arrivals.
inline constexpr double kMaxTickLambda = 1e5;

}  // namespace nbv6::traffic
