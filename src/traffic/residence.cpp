#include "traffic/residence.h"

namespace nbv6::traffic {

std::vector<ResidenceConfig> paper_residences() {
  std::vector<ResidenceConfig> out;

  // Residence A: busiest household, seven people, verified dual-stack
  // devices; streaming- and download-heavy on IPv6-ready services. Spring
  // break absence March 16-19 2025 = days 135-138 from Nov 1 2024.
  {
    ResidenceConfig r;
    r.name = "A";
    r.activity_scale = 9.0;
    r.device_v6_ok_frac = 1.0;
    r.internal_flows_per_hour = 2.5;
    r.internal_v6_frac = 0.32;
    r.service_weight_overrides = {
        {"AS-SSI", 3.5},          {"VALVE-CORPORATION", 2.8},
        {"APPLE-AUSTIN", 2.5},    {"GOOGLE", 2.2},
        {"NETFLIX-ASN", 2.0},     {"FACEBOOK", 1.5},
        {"TWITCH", 0.3},          {"ZOOM-VIDEO-COMM-AS", 0.4},
        {"USC-AS", 1.2},
    };
    r.away_day_ranges = {{135, 138}};
    r.seed = 0xA11CE;
    out.push_back(r);
  }

  // Residence B: tunnel-provided IPv6 (Frontier is IPv4-only); similar mix
  // to A but slightly more IPv4-only service use and higher flow-level v6.
  {
    ResidenceConfig r;
    r.name = "B";
    r.activity_scale = 8.0;
    r.device_v6_ok_frac = 1.0;
    r.internal_flows_per_hour = 2.2;
    r.internal_v6_frac = 0.54;
    r.service_weight_overrides = {
        {"AS-SSI", 2.5},        {"GOOGLE", 2.5},
        {"FACEBOOK", 2.0},      {"CLOUDFLARENET", 2.0},
        {"VALVE-CORPORATION", 1.8}, {"FRONTIER-FRTR", 1.5},
        {"TWITCH", 0.8},
    };
    r.seed = 0xB0B;
    out.push_back(r);
  }

  // Residence C: highest volume but lowest IPv6 — most devices lack
  // working IPv6 (per-AS v6 fraction tops out around 40% in Fig. 3), and
  // residents are heavy on IPv4-only streaming (Twitch) and calls (Zoom).
  {
    ResidenceConfig r;
    r.name = "C";
    r.activity_scale = 9.5;
    r.device_v6_ok_frac = 0.40;
    r.internal_flows_per_hour = 2.0;
    r.internal_v6_frac = 0.32;
    r.service_weight_overrides = {
        {"TWITCH", 3.5},          {"ZOOM-VIDEO-COMM-AS", 2.5},
        {"BYTEDANCE", 2.5},       {"GITHUB", 2.0},
        {"AS-SSI", 0.8},          {"VALVE-CORPORATION", 0.7},
        {"CHINANET-BACKBONE", 2.0}, {"CHINA169-Backbone", 2.0},
    };
    r.seed = 0xC0DE;
    out.push_back(r);
  }

  // Residence D: tiny external volume (opt-outs leave only part of the
  // house visible), web/social-heavy so flows skew IPv6 harder than bytes.
  {
    ResidenceConfig r;
    r.name = "D";
    r.activity_scale = 1.2;
    r.device_v6_ok_frac = 1.0;
    r.visibility = 0.35;
    r.internal_flows_per_hour = 6.0;  // NAS/IoT chatter dominates internally
    r.internal_v6_frac = 0.98;
    r.background_v4_bias = 0.05;  // modern smart-home fleet, v6-first
    r.service_weight_overrides = {
        {"GOOGLE", 4.0},     {"FACEBOOK", 3.0},
        {"WIKIMEDIA", 2.5},  {"CLOUDFLARENET", 2.5},
        {"FASTLY", 2.0},     {"ZOOM-VIDEO-COMM-AS", 6.0},
        {"AS-SSI", 0.5},     {"TWITCH", 0.15},
        {"GITHUB", 0.2},     {"AUTOMATTIC", 0.2},
        {"USC-AS", 0.3},     {"i3Dnet", 0.1},
    };
    r.seed = 0xD00D;
    out.push_back(r);
  }

  // Residence E: light, bursty use. Most days are quiet (small, v6-leaning
  // web traffic); game-streaming days bring large IPv4 volumes, so the
  // overall byte fraction is low while the daily mean sits near 0.5 with
  // huge spread.
  {
    ResidenceConfig r;
    r.name = "E";
    r.activity_scale = 1.5;
    r.device_v6_ok_frac = 0.9;
    r.visibility = 0.6;
    r.internal_flows_per_hour = 0.4;
    r.internal_v6_frac = 0.19;
    r.background_v4_bias = 0.9;
    r.service_weight_overrides = {
        {"TWITCH", 10.0},    {"i3Dnet", 5.0},
        {"GITHUB", 2.0},     {"GOOGLE", 0.4},
        {"CLOUDFLARENET", 0.4}, {"FASTLY", 0.3},
        {"FACEBOOK", 0.25},  {"WIKIMEDIA", 0.25},
        {"AS-SSI", 0.1},     {"NETFLIX-ASN", 0.1},
        {"VALVE-CORPORATION", 0.3}, {"BYTEDANCE", 0.3},
        {"ZOOM-VIDEO-COMM-AS", 2.0},
    };
    r.seed = 0xE66;
    out.push_back(r);
  }

  return out;
}

}  // namespace nbv6::traffic
