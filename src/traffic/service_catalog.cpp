#include "traffic/service_catalog.h"

#include <bit>
#include <cassert>
#include <string_view>

namespace nbv6::traffic {

std::string_view to_string(ServiceCategory c) {
  switch (c) {
    case ServiceCategory::hosting_cloud:
      return "Hosting and Cloud Provider";
    case ServiceCategory::software:
      return "Software Development";
    case ServiceCategory::isp:
      return "ISP";
    case ServiceCategory::web_social:
      return "Web and Social Media";
    case ServiceCategory::other:
      return "Other";
  }
  return "?";
}

size_t ServiceCatalog::add(Service service) {
  const auto index = services_.size();
  assert(index < 250);  // address plan: one /16 v4 and /48 v6 slot each

  // Address plan: service k owns 20.k.0.0/16 and, when IPv6-ready,
  // 2600:k::/48 style space (k folded into the high half).
  auto k = static_cast<std::uint32_t>(index);
  service.prefix4 = net::Prefix4(net::IPv4Addr(20, static_cast<std::uint8_t>(k),
                                               0, 0),
                                 16);
  if (service.v6_readiness > 0.0) {
    std::uint64_t hi = (0x2600ull << 48) | (static_cast<std::uint64_t>(k) << 16);
    service.prefix6 = net::Prefix6(net::IPv6Addr::from_halves(hi, 0), 48);
  } else {
    service.prefix6.reset();
  }

  as_map_.announce(service.prefix4, service.asn);
  if (service.prefix6) as_map_.announce(*service.prefix6, service.asn);
  as_map_.register_name(service.asn, service.name);

  services_.push_back(std::move(service));
  return index;
}

Endpoint ServiceCatalog::endpoint(size_t service, int j) const {
  assert(service < services_.size());
  assert(j >= 0 && j < kEndpointsPerService);
  const Service& s = services_[service];

  Endpoint e;
  // v4: base + (j+1) spread across the /16's third octet for variety.
  std::uint32_t base = s.prefix4.address().value();
  e.v4 = net::IPv4Addr(base | (static_cast<std::uint32_t>(j + 1) << 8) |
                       static_cast<std::uint32_t>(j + 1));

  // Endpoint j is dual-stack iff j falls inside the ready share. Using the
  // index (not a coin flip) keeps endpoint capabilities stable across the
  // whole simulation, like real infrastructure.
  bool dual = s.prefix6 &&
              j < static_cast<int>(s.v6_readiness * kEndpointsPerService + 0.5);
  if (dual) {
    std::uint64_t hi = s.prefix6->address().high64() |
                       static_cast<std::uint64_t>(j + 1);
    e.v6 = net::IPv6Addr::from_halves(hi, static_cast<std::uint64_t>(j + 1));
  }
  return e;
}

std::string ServiceCatalog::reverse_dns(const net::IpAddr& addr) const {
  auto asn = as_map_.lookup(addr);
  if (!asn) return {};
  auto idx = find_by_asn(*asn);
  return idx ? services_[*idx].rdns_domain : std::string{};
}

std::optional<size_t> ServiceCatalog::find_by_asn(net::Asn asn) const {
  for (size_t i = 0; i < services_.size(); ++i)
    if (services_[i].asn == asn) return i;
  return std::nullopt;
}

std::uint64_t ServiceCatalog::content_digest() const {
  // Local FNV-1a (the traffic layer sits below engine, so it cannot use
  // engine::DigestBuilder). Doubles fold by bit pattern; strings are
  // length-delimited so "ab"+"c" and "a"+"bc" differ.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto byte = [&h](std::uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };
  auto u64 = [&byte](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto str = [&byte, &u64](std::string_view s) {
    for (unsigned char c : s) byte(c);
    u64(s.size());
  };
  u64(services_.size());
  for (const Service& s : services_) {
    str(s.name);
    str(s.rdns_domain);
    u64(s.asn);
    u64(static_cast<std::uint64_t>(s.category));
    u64(static_cast<std::uint64_t>(s.profile));
    u64(std::bit_cast<std::uint64_t>(s.v6_readiness));
    u64(std::bit_cast<std::uint64_t>(s.popularity));
    u64(s.prefix4.address().value());
    u64(static_cast<std::uint64_t>(s.prefix4.length()));
    u64(s.prefix6.has_value() ? 1 : 0);
    if (s.prefix6) {
      for (std::uint8_t b : s.prefix6->address().bytes()) byte(b);
      u64(static_cast<std::uint64_t>(s.prefix6->length()));
    }
  }
  return h;
}

namespace {

Service make(std::string name, std::string rdns, net::Asn asn,
             ServiceCategory cat, TrafficProfile profile, double v6,
             double popularity) {
  Service s;
  s.name = std::move(name);
  s.rdns_domain = std::move(rdns);
  s.asn = asn;
  s.category = cat;
  s.profile = profile;
  s.v6_readiness = v6;
  s.popularity = popularity;
  return s;
}

}  // namespace

ServiceCatalog build_paper_catalog() {
  using C = ServiceCategory;
  using P = TrafficProfile;
  ServiceCatalog cat;

  // --- Hosting and Cloud Providers (Fig. 4, top panel, ordered by median
  // IPv6 byte fraction). Readiness values are calibrated to the medians the
  // box plots show.
  cat.add(make("FASTLY", "fastly.net", 54113, C::hosting_cloud, P::web, 0.95, 3.0));
  cat.add(make("CLOUDFLARENET", "cloudflare.com", 13335, C::hosting_cloud, P::web, 0.92, 4.0));
  cat.add(make("AKAMAI-ASN1", "akamaitechnologies.com", 20940, C::hosting_cloud, P::web, 0.85, 3.0));
  cat.add(make("CDN77", "cdn77.com", 60068, C::hosting_cloud, P::web, 0.80, 1.5));
  cat.add(make("QWILTED-PROD-01", "qwilt.com", 20253, C::hosting_cloud, P::streaming, 0.75, 1.0));
  cat.add(make("MICROSOFT-CORP-MSN-AS-BLOCK", "microsoft.com", 8075, C::hosting_cloud, P::web, 0.70, 2.5));
  cat.add(make("CLOUDFLARESPECTRUM", "cloudflare.com", 209242, C::hosting_cloud, P::web, 0.60, 1.0));
  cat.add(make("AMAZON-02", "amazonaws.com", 16509, C::hosting_cloud, P::web, 0.50, 4.0));
  cat.add(make("ZEN-ECN", "zenlayer.net", 21859, C::hosting_cloud, P::web, 0.45, 0.8));
  cat.add(make("GOOGLE-CLOUD-PLATFORM", "googleusercontent.com", 396982, C::hosting_cloud, P::web, 0.45, 2.5));
  cat.add(make("AMAZON-AES", "amazonaws.com", 14618, C::hosting_cloud, P::web, 0.35, 1.5));
  cat.add(make("ACE-AS-AP", "ace.ph", 139341, C::hosting_cloud, P::web, 0.30, 0.5));
  cat.add(make("OVH", "ovh.net", 16276, C::hosting_cloud, P::web, 0.05, 0.8));
  cat.add(make("DIGITALOCEAN-ASN", "digitalocean.com", 14061, C::hosting_cloud, P::web, 0.05, 0.8));
  cat.add(make("LEASEWEB-NL-AMS-01", "leaseweb.net", 60781, C::hosting_cloud, P::web, 0.04, 0.6));
  cat.add(make("AKAMAI-AS", "akamaitechnologies.com", 16625, C::hosting_cloud, P::web, 0.10, 1.5));
  cat.add(make("i3Dnet", "i3d.net", 49544, C::hosting_cloud, P::gaming, 0.0, 0.6));

  // --- Software Development.
  cat.add(make("MICROSOFT-CORP-AS", "microsoft.com", 8068, C::software, P::background, 0.75, 2.0));
  cat.add(make("APPLE-AUSTIN", "aaplimg.com", 6185, C::software, P::download, 0.70, 2.5));
  cat.add(make("APPLE-ENGINEERING", "apple.com", 714, C::software, P::background, 0.60, 2.0));
  cat.add(make("ZOOM-VIDEO-COMM-AS", "zoom.us", 30103, C::software, P::call, 0.0, 2.0));

  // --- ISPs (consistently low medians, none above 50%).
  cat.add(make("CHINA169-Backbone", "china169.net", 4837, C::isp, P::web, 0.20, 0.5));
  cat.add(make("CHINANET-BACKBONE", "chinanet.cn", 4134, C::isp, P::web, 0.15, 0.5));
  cat.add(make("ATT-INTERNET4", "sbcglobal.net", 7018, C::isp, P::web, 0.15, 0.8));
  cat.add(make("COMCAST-7922", "comcast.net", 7922, C::isp, P::web, 0.10, 0.8));
  cat.add(make("FRONTIER-FRTR", "frontiernet.net", 5650, C::isp, P::web, 0.02, 0.6));

  // --- Web and Social Media (medians above 90%, except ByteDance).
  cat.add(make("WIKIMEDIA", "wikimedia.org", 14907, C::web_social, P::web, 0.97, 1.5));
  cat.add(make("FACEBOOK", "fbcdn.net", 32934, C::web_social, P::web, 0.95, 3.5));
  cat.add(make("GOOGLE", "1e100.net", 15169, C::web_social, P::streaming, 0.93, 4.5));
  cat.add(make("BYTEDANCE", "bytefcdn.com", 396986, C::web_social, P::streaming, 0.15, 2.5));

  // --- Other (streaming/download heavy hitters + laggards called out in
  // §3.2/§3.4: Valve, Netflix, Apple lead IPv6-heavy days; Twitch, Zoom
  // dominate IPv4-heavy days; USC and GitHub generate no IPv6 at all).
  cat.add(make("AS-SSI", "nflxvideo.net", 2906, C::other, P::streaming, 0.90, 3.5));
  cat.add(make("VALVE-CORPORATION", "steamcontent.com", 32590, C::other, P::download, 0.85, 2.5));
  cat.add(make("NETFLIX-ASN", "netflix.com", 40027, C::other, P::streaming, 0.80, 2.0));
  cat.add(make("INTERNET-ARCHIVE", "archive.org", 7941, C::other, P::download, 0.30, 0.8));
  cat.add(make("USC-AS", "usc.edu", 47, C::other, P::web, 0.0, 1.2));
  cat.add(make("TWITCH", "justin.tv", 46489, C::other, P::streaming, 0.0, 2.5));
  cat.add(make("GITHUB", "github.com", 36459, C::other, P::download, 0.0, 1.5));
  cat.add(make("AUTOMATTIC", "wp.com", 2635, C::other, P::web, 0.0, 1.0));

  return cat;
}

}  // namespace nbv6::traffic
