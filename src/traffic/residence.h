// Residence models: the five households of §3.
//
// Each residence is a parameterized traffic source. Parameters encode the
// causal factors the paper identifies for cross-residence variation:
// what services its residents favour (service weight overrides), whether
// devices actually have working IPv6 (Residence C's suppressed per-AS
// maximum suggests broken client IPv6), what fraction of household traffic
// the study router even sees (Residences D and E had privacy opt-outs),
// and scripted absences (Residence A's spring break, §3.3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "traffic/arrival.h"

namespace nbv6::traffic {

/// One simulated day's effective overrides, derived from a scenario
/// timeline (engine::apply_timeline). Plain data so the traffic layer
/// stays independent of the engine: values < 0 keep the residence's
/// static configuration for that day.
struct DayPlan {
  /// Multiplies the interactive activity rate (seasonal scaling).
  double activity_mult = 1.0;
  /// Effective probability that a device's IPv6 works this day; < 0 keeps
  /// ResidenceConfig::device_v6_ok_frac (rollout waves / CPE fixes).
  double device_v6_ok_frac = -1.0;
  /// Effective LAN IPv6 share this day; < 0 keeps the static value.
  double internal_v6_frac = -1.0;
  /// External connectivity down: no WAN sessions at all, LAN continues.
  bool outage = false;
  /// Behind a v6-only (NAT64) access network: all WAN traffic rides IPv6,
  /// v4-only destinations via 64:ff9b::/96 translation; devices whose
  /// IPv6 is broken have no connectivity.
  bool nat64 = false;
  /// Delegated-prefix generation (prefix_renumber events): 0 = the original
  /// /56; each increment rotates every LAN v6 source address.
  int prefix_epoch = 0;
  /// Bit s set = catalog service s is unreachable this day (service_outage
  /// events). Sessions to a down service fail after the visibility check.
  std::uint64_t service_down_mask = 0;
  /// Per-day CGN translation-port budget for v4 WAN flows; < 0 means
  /// unconstrained (cgn_exhaustion events). Once a day's v4 flows exhaust
  /// the budget, further v4 sessions fail.
  int cgn_port_budget = -1;
  /// Multiplies the interactive arrival rate on top of activity_mult
  /// (lambda_ramp events). Exactly 1.0 when no ramp applies — multiplying
  /// by 1.0 is an IEEE bit-identity, so batch-mode replays stay byte-exact.
  double lambda_mult = 1.0;
  /// Bit h set = hour h is inside a flash-crowd burst this day; arrivals in
  /// those hours are additionally multiplied by flash_mult. The mask comes
  /// from the event (not a per-home draw), so every affected home spikes in
  /// the same hour slots — the correlated cross-residence surge.
  std::uint32_t flash_hour_mask = 0;
  /// Flash-crowd intensity for masked hours; exactly 1.0 when unused.
  double flash_mult = 1.0;

  friend bool operator==(const DayPlan&, const DayPlan&) = default;
};

/// The all-defaults plan: what a day without timeline events behaves like.
inline constexpr DayPlan kStaticDayPlan{};

/// Lazy day-plan provider: the simulator calls it once at the start of each
/// simulated day. Must be a pure function of the day index — the engine's
/// replay guarantees (lane count / sampling order can never change a run)
/// hold only for deterministic providers. Keeping plans as a function keeps
/// timeline memory O(lanes x days) instead of materializing
/// residences x days DayPlan entries up front.
using DayPlanFn = std::function<DayPlan(int day)>;

struct ResidenceConfig {
  std::string name;

  /// Simulated days; the paper observes Nov 2024 – Aug 2025 (~274 days).
  int days = 274;
  /// Weekday of day 0 (0 = Monday). 2024-11-01 was a Friday.
  int start_weekday = 4;

  /// Mean interactive sessions per fully-active hour. Scales volume.
  double activity_scale = 8.0;
  /// Probability that the device behind a session has working IPv6.
  double device_v6_ok_frac = 1.0;
  /// Fraction of household sessions routed through the study router.
  double visibility = 1.0;

  /// Internal (LAN-to-LAN) flows per hour, and their IPv6 share.
  double internal_flows_per_hour = 2.0;
  double internal_v6_frac = 0.4;

  /// Probability that a background (non-human) session is pinned to IPv4
  /// regardless of endpoint capability — legacy firmware and hardcoded
  /// update endpoints. Modern smart-home fleets (Residence D) run lower.
  double background_v4_bias = 0.7;

  /// Multiplies catalog popularity per service name; unlisted services
  /// keep weight 1.0. Encodes each household's distinctive service mix.
  std::vector<std::pair<std::string, double>> service_weight_overrides;

  /// [first_day, last_day] inclusive ranges when the residence is empty
  /// (only background traffic). Day 135 ≈ mid-March 2025.
  std::vector<std::pair<int, int>> away_day_ranges;

  /// Day-indexed timeline overrides (entry d applies to simulated day d);
  /// empty = static behaviour for the whole horizon. Days past the end of
  /// the vector also fall back to the static configuration.
  std::vector<DayPlan> day_plan;

  /// Lazy alternative to `day_plan`: when set it takes precedence and is
  /// consulted once per simulated day. engine::apply_timeline installs one
  /// by default so a million-home, year-long fleet never materializes
  /// residences x days plans.
  DayPlanFn day_plan_fn;

  /// How sessions land inside a day: the original per-hour batch (default)
  /// or an open-loop tick-sliced arrival process. Copied from the
  /// scenario's FleetConfig::arrival by sample_fleet.
  ArrivalConfig arrival;

  std::uint64_t seed = 1;
};

/// The five paper residences with calibrated parameters. Index 0..4 =
/// A..E. Calibration targets Table 1's external IPv6 byte fractions
/// (A 0.68, B 0.64, C 0.12, D 0.50, E 0.07) and the qualitative findings:
/// C has broken device IPv6, D and E have partial visibility and little
/// traffic, E's daily fractions are strongly bimodal.
std::vector<ResidenceConfig> paper_residences();

}  // namespace nbv6::traffic
