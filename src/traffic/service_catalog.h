// The catalog of Internet services residential traffic talks to.
//
// §3.4 of the paper attributes flows to services at the AS level (via BGP)
// and the domain level (via reverse DNS), groups the 35 ASes seen at 3+
// residences into five functional categories, and finds leaders (Fastly,
// Wikimedia, Facebook, Google ≥90% IPv6) and laggards (Twitch, Zoom,
// GitHub, USC at 0%). The catalog encodes those services — real ASNs, real
// category assignments, IPv6 readiness levels matching Figure 4's ordering —
// and owns the synthetic address plan (one v4 and, when ready, one v6
// prefix per service) plus the BGP announcements and reverse-DNS entries
// the analysis joins against.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/asn.h"
#include "net/ip.h"
#include "net/prefix.h"

namespace nbv6::traffic {

/// The five functional groups of Figure 4.
enum class ServiceCategory : std::uint8_t {
  hosting_cloud,
  software,
  isp,
  web_social,
  other,
};

std::string_view to_string(ServiceCategory c);

/// Shapes the flow-count and byte-volume mix a service generates.
enum class TrafficProfile : std::uint8_t {
  web,        ///< many small flows (browsing)
  streaming,  ///< few flows, large steady volume (video)
  download,   ///< very few flows, extreme volume (game downloads)
  call,       ///< long medium-rate flows (video conferencing)
  gaming,     ///< many tiny flows, low volume
  background, ///< unattended device chatter
};

struct Service {
  std::string name;        ///< AS name as in Fig. 4, e.g. "NETFLIX-ASN"
  std::string rdns_domain; ///< eTLD+1 reverse DNS maps to, e.g. "nflxvideo.net"
  net::Asn asn = 0;
  ServiceCategory category = ServiceCategory::other;
  TrafficProfile profile = TrafficProfile::web;
  /// Fraction of this service's endpoints that are dual-stack, in [0, 1].
  /// 0 = IPv4-only service (Zoom, Twitch, GitHub, USC); 1 = fully dual-stack.
  double v6_readiness = 0.0;
  /// Relative base popularity across all residences.
  double popularity = 1.0;

  net::Prefix4 prefix4;
  std::optional<net::Prefix6> prefix6;  ///< absent when v6_readiness == 0
};

/// An addressable endpoint of a service, as Happy Eyeballs sees it.
struct Endpoint {
  net::IPv4Addr v4;
  std::optional<net::IPv6Addr> v6;  ///< present iff this endpoint is dual-stack
};

class ServiceCatalog {
 public:
  /// Number of distinct endpoints modelled per service.
  static constexpr int kEndpointsPerService = 24;

  /// Adds a service; allocates its prefixes, announces them in the AS map,
  /// and registers reverse DNS. Returns its index.
  size_t add(Service service);

  [[nodiscard]] const std::vector<Service>& services() const {
    return services_;
  }
  [[nodiscard]] const Service& at(size_t i) const { return services_[i]; }
  [[nodiscard]] size_t size() const { return services_.size(); }

  /// Deterministic endpoint j of service i; endpoints with
  /// j < v6_readiness * kEndpointsPerService are dual-stack.
  [[nodiscard]] Endpoint endpoint(size_t service, int j) const;

  /// The BGP view over all catalog prefixes (the §3.4 attribution path).
  [[nodiscard]] const net::AsMap& as_map() const { return as_map_; }

  /// Reverse DNS for a destination address: the eTLD+1 its PTR-style name
  /// would reveal, or empty when unmapped. Cloud-hosted services may map to
  /// the cloud's canonical domain rather than the service's own (§3.4's
  /// "subdomain.cdn.net" limitation).
  [[nodiscard]] std::string reverse_dns(const net::IpAddr& addr) const;

  /// Index lookup by AS number (first match).
  [[nodiscard]] std::optional<size_t> find_by_asn(net::Asn asn) const;

  /// FNV-1a digest over every field of every service, in index order.
  /// Two catalogs digest equal iff their service lists are bit-identical,
  /// which is the identity the pipeline layer's content-addressed pass
  /// caching keys simulation results on.
  [[nodiscard]] std::uint64_t content_digest() const;

 private:
  std::vector<Service> services_;
  net::AsMap as_map_;
};

/// The calibrated catalog: the 35+ ASes of Figures 4 and 17 with IPv6
/// readiness levels matching the paper's observed byte fractions.
ServiceCatalog build_paper_catalog();

}  // namespace nbv6::traffic
