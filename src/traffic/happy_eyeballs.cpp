#include "traffic/happy_eyeballs.h"

namespace nbv6::traffic {

HappyEyeballsDecision happy_eyeballs_race(bool has_v4, bool has_v6,
                                          bool v6_working, double v4_rtt_ms,
                                          double v6_rtt_ms, stats::Rng& rng,
                                          const HappyEyeballsConfig& cfg) {
  HappyEyeballsDecision d;

  const bool v6_usable = has_v6 && v6_working;
  if (!has_v4 && !v6_usable) {
    d.failed = true;
    return d;
  }
  if (!v6_usable) {
    d.used = net::Family::v4;
    // A broken-but-advertised IPv6 path was attempted and timed out; it
    // still registered a flow (SYNs leave the house).
    d.opened_both = has_v6;
    return d;
  }
  if (!has_v4) {
    d.used = net::Family::v6;
    return d;
  }

  // Both usable: IPv6 starts immediately, IPv4 after the attempt delay.
  // IPv4 wins only when its connect completes before IPv6's.
  double v6_done = v6_rtt_ms;
  double v4_done = cfg.connection_attempt_delay_ms + v4_rtt_ms;
  if (v4_done < v6_done) {
    d.used = net::Family::v4;
    d.opened_both = true;  // the IPv6 attempt was already in flight
  } else {
    d.used = net::Family::v6;
    d.opened_both = rng.chance(cfg.dup_flow_prob);
  }
  return d;
}

}  // namespace nbv6::traffic
