#include "traffic/generator.h"

#include <algorithm>
#include <cmath>

#include "engine/firehose.h"
#include "engine/flat_conntrack.h"
#include "traffic/arrival.h"

namespace nbv6::traffic {
namespace {

using flowmon::Scope;
using flowmon::Timestamp;

std::vector<double> residence_weights(const ServiceCatalog& catalog,
                                      const ResidenceConfig& cfg) {
  std::vector<double> w;
  w.reserve(catalog.size());
  for (const auto& s : catalog.services()) {
    double mult = 1.0;
    for (const auto& [name, m] : cfg.service_weight_overrides)
      if (name == s.name) mult = m;
    w.push_back(s.popularity * mult);
  }
  return w;
}

}  // namespace

ResidenceSimulator::ResidenceSimulator(const ServiceCatalog& catalog,
                                       ResidenceConfig config)
    : catalog_(&catalog),
      cfg_(std::move(config)),
      rng_(cfg_.seed),
      service_sampler_(residence_weights(catalog, cfg_)),
      device_count_(std::max(3, static_cast<int>(cfg_.activity_scale))),
      residence_id_(static_cast<std::uint32_t>(
          cfg_.name.empty() ? 0 : (cfg_.name[0] - 'A' + 1))) {}

bool ResidenceSimulator::is_away(int day) const {
  for (auto [lo, hi] : cfg_.away_day_ranges)
    if (day >= lo && day <= hi) return true;
  return false;
}

DayPlan ResidenceSimulator::plan(int day) const {
  if (cfg_.day_plan_fn) return cfg_.day_plan_fn(day);
  if (day >= 0 && static_cast<size_t>(day) < cfg_.day_plan.size())
    return cfg_.day_plan[static_cast<size_t>(day)];
  return kStaticDayPlan;
}

double ResidenceSimulator::presence(int day, int hour) const {
  if (is_away(day)) return 0.0;
  int weekday = (cfg_.start_weekday + day) % 7;  // 0 = Monday
  bool workday = weekday < 5;

  // Piecewise human-presence curve: near-zero overnight, a mid-morning
  // bump, a work-hours dip on weekdays, rising evenings peaking before
  // midnight — the §3.3 daily component.
  double p;
  if (hour < 1)
    p = 0.55;  // tail of the evening peak
  else if (hour < 6)
    p = 0.05;
  else if (hour < 8)
    p = 0.30;
  else if (hour < 11)
    p = 0.50;  // mid-morning secondary peak
  else if (hour < 17)
    p = workday ? 0.22 : 0.50;
  else if (hour < 20)
    p = 0.70;
  else
    p = 1.00;  // evening peak rising to midnight
  return p;
}

net::IpAddr ResidenceSimulator::device_addr(int device, net::Family family,
                                            int prefix_epoch) const {
  if (family == net::Family::v4)
    return net::IPv4Addr(192, 168, 1, static_cast<std::uint8_t>(10 + device));
  // Each residence holds a delegated /56-ish slice of 2600:8800::/32. A
  // prefix_renumber epoch rotates the slice deterministically — epoch 0 is
  // the original delegation, each later epoch a fresh /56 nothing upstream
  // has cached.
  std::uint64_t slice =
      static_cast<std::uint64_t>(residence_id_) +
      0x9E37ull * static_cast<std::uint64_t>(prefix_epoch);
  std::uint64_t hi = (0x2600'8800ull << 32) | ((slice & 0xFFFFFFull) << 8);
  return net::IPv6Addr::from_halves(hi,
                                    static_cast<std::uint64_t>(10 + device));
}

int ResidenceSimulator::flows_per_session(stats::Rng& rng, TrafficProfile p) {
  switch (p) {
    case TrafficProfile::web:
      return static_cast<int>(rng.between(3, 18));
    case TrafficProfile::streaming:
      return static_cast<int>(rng.between(1, 3));
    case TrafficProfile::download:
      return static_cast<int>(rng.between(1, 2));
    case TrafficProfile::call:
      return static_cast<int>(rng.between(1, 2));
    case TrafficProfile::gaming:
      return static_cast<int>(rng.between(4, 12));
    case TrafficProfile::background:
      return static_cast<int>(rng.between(1, 4));
  }
  return 1;
}

ResidenceSimulator::FlowSpec ResidenceSimulator::sample_flow(
    stats::Rng& rng, TrafficProfile p) {
  FlowSpec f{};
  switch (p) {
    case TrafficProfile::web:
      f.bytes_in = static_cast<std::uint64_t>(
          std::min(rng.lognormal(std::log(30e3), 1.4), 5e7));
      f.bytes_out = 500 + f.bytes_in / 20;
      f.duration = static_cast<Timestamp>(rng.between(1, 30));
      break;
    case TrafficProfile::streaming:
      f.bytes_in = static_cast<std::uint64_t>(
          std::min(rng.pareto(60e6, 1.15), 6e9));
      f.bytes_out = f.bytes_in / 400;
      f.duration = static_cast<Timestamp>(rng.between(300, 5400));
      break;
    case TrafficProfile::download:
      f.bytes_in = static_cast<std::uint64_t>(
          std::min(rng.pareto(150e6, 0.95), 2.5e10));
      f.bytes_out = f.bytes_in / 600;
      f.duration = static_cast<Timestamp>(rng.between(60, 3600));
      break;
    case TrafficProfile::call: {
      auto bytes = static_cast<std::uint64_t>(
          std::min(rng.lognormal(std::log(120e6), 0.8), 2e9));
      f.bytes_in = bytes;
      f.bytes_out = bytes;  // calls are symmetric
      f.duration = static_cast<Timestamp>(rng.between(600, 5400));
      break;
    }
    case TrafficProfile::gaming:
      f.bytes_in = static_cast<std::uint64_t>(
          std::min(rng.lognormal(std::log(25e3), 1.0), 1e6));
      f.bytes_out = f.bytes_in / 2;
      f.duration = static_cast<Timestamp>(rng.between(30, 3600));
      break;
    case TrafficProfile::background:
      f.bytes_in = static_cast<std::uint64_t>(
          std::min(rng.lognormal(std::log(8e3), 1.2), 2e6));
      f.bytes_out = 300 + f.bytes_in / 10;
      f.duration = static_cast<Timestamp>(rng.between(1, 120));
      break;
  }
  return f;
}

template <typename Table>
void ResidenceSimulator::run_session(stats::Rng& rng, Table& table,
                                     Timestamp t, size_t service_idx,
                                     bool background, const DayPlan& day) {
  // Opt-outs: some devices bypass the study router entirely.
  if (!rng.chance(cfg_.visibility)) {
    ++stats_.skipped_invisible;
    return;
  }
  ++stats_.sessions;

  // Per-service outage: the destination itself is down, every family. The
  // mask is 64 bits wide; the parser caps svc indices accordingly.
  if (service_idx < 64 &&
      ((day.service_down_mask >> service_idx) & 1ull) != 0) {
    ++stats_.service_outage_failed;
    return;
  }

  const Service& svc = catalog_->at(service_idx);
  int device = static_cast<int>(rng.below(static_cast<std::uint64_t>(device_count_)));
  const double v6_ok_frac = day.device_v6_ok_frac >= 0.0
                                ? day.device_v6_ok_frac
                                : cfg_.device_v6_ok_frac;
  bool device_v6_ok = rng.chance(v6_ok_frac);

  int endpoint_idx = static_cast<int>(
      rng.below(ServiceCatalog::kEndpointsPerService));
  Endpoint ep = catalog_->endpoint(service_idx, endpoint_idx);

  // Pick the WAN family the session rides.
  bool via_v6;
  bool opened_both = false;
  if (day.nat64) {
    // v6-only access network: there is no IPv4 path to race. Devices whose
    // IPv6 is broken simply have no connectivity (the paper's CPE-breakage
    // failure mode, made total); everything else rides IPv6, so no
    // losing-family duplicate flow either.
    if (!device_v6_ok) {
      ++stats_.he_failures;
      return;
    }
    via_v6 = true;
  } else {
    // Background chatter skews IPv4: much of it is legacy firmware and
    // update CDNs pinned to literal IPv4 endpoints (the paper's
    // observation that unoccupied-house traffic is mostly IPv4).
    bool force_v4 = background && rng.chance(cfg_.background_v4_bias);

    double v4_rtt = rng.lognormal(std::log(18.0), 0.4);
    double v6_rtt = rng.lognormal(std::log(18.0), 0.4);
    auto decision = happy_eyeballs_race(true, ep.v6.has_value(),
                                        device_v6_ok && !force_v4, v4_rtt,
                                        v6_rtt, rng, he_cfg_);
    if (decision.failed) {
      ++stats_.he_failures;
      return;
    }
    via_v6 = decision.used == net::Family::v6 && ep.v6.has_value();
    opened_both = decision.opened_both;
  }

  // v6 sessions to v4-only destinations only happen behind NAT64, where
  // the CPE translates toward the RFC 6146 well-known prefix.
  const net::IpAddr dst =
      !via_v6 ? net::IpAddr(ep.v4)
              : net::IpAddr(ep.v6 ? *ep.v6
                                  : net::IPv6Addr::from_halves(
                                        0x0064'ff9b'0000'0000ull,
                                        static_cast<std::uint64_t>(
                                            ep.v4.value())));

  const bool use_udp = svc.profile == TrafficProfile::streaming ||
                       svc.profile == TrafficProfile::call
                           ? rng.chance(0.6)
                           : rng.chance(0.1);

  int nflows = flows_per_session(rng, svc.profile);

  // CGN port-pool exhaustion: every v4 WAN flow consumes one translation
  // port for the day. A session whose flows would overrun the budget fails
  // outright (the translator refuses new bindings); IPv6 is untouched. The
  // losing-HE duplicate flow below is deliberately not charged — it never
  // completes a binding.
  if (!via_v6 && day.cgn_port_budget >= 0) {
    if (cgn_ports_used_ + nflows > day.cgn_port_budget) {
      ++stats_.cgn_failures;
      return;
    }
    cgn_ports_used_ += nflows;
  }

  for (int i = 0; i < nflows; ++i) {
    FlowSpec spec = sample_flow(rng, svc.profile);
    net::FlowKey key;
    key.protocol = use_udp ? net::Protocol::udp : net::Protocol::tcp;
    key.src = device_addr(device, via_v6 ? net::Family::v6 : net::Family::v4,
                          day.prefix_epoch);
    key.dst = dst;
    key.src_port = next_port();
    key.dst_port = 443;

    Timestamp start = t + static_cast<Timestamp>(rng.below(60));
    table.open(key, start, Scope::external);
    table.account(key, start, spec.bytes_out, spec.bytes_in);
    table.close(key, start + spec.duration);
    ++stats_.flows;
  }

  // The losing Happy Eyeballs connection: a near-empty flow on the other
  // family (§3.2's explanation for stable flow fractions vs volatile byte
  // fractions).
  if (opened_both) {
    net::FlowKey key;
    key.protocol = net::Protocol::tcp;
    if (via_v6) {
      key.src = device_addr(device, net::Family::v4);
      key.dst = ep.v4;
    } else if (ep.v6) {
      key.src = device_addr(device, net::Family::v6, day.prefix_epoch);
      key.dst = *ep.v6;
    } else {
      return;
    }
    key.src_port = next_port();
    key.dst_port = 443;
    table.open(key, t, Scope::external);
    table.account(key, t, 400, 300);  // SYN/handshake remnants
    table.close(key, t + 1);
    ++stats_.flows;
  }
}

template <typename Table>
void ResidenceSimulator::run_internal(stats::Rng& rng, Table& table,
                                      Timestamp t, Timestamp window,
                                      const DayPlan& day) {
  int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(device_count_)));
  int b = static_cast<int>(rng.below(static_cast<std::uint64_t>(device_count_)));
  if (a == b) b = (b + 1) % device_count_;

  const double v6_frac = day.internal_v6_frac >= 0.0 ? day.internal_v6_frac
                                                     : cfg_.internal_v6_frac;
  bool v6 = rng.chance(v6_frac);
  net::FlowKey key;
  key.protocol = rng.chance(0.5) ? net::Protocol::udp : net::Protocol::tcp;
  key.src = device_addr(a, v6 ? net::Family::v6 : net::Family::v4,
                        day.prefix_epoch);
  key.dst = device_addr(b, v6 ? net::Family::v6 : net::Family::v4,
                        day.prefix_epoch);
  key.src_port = next_port();
  key.dst_port = rng.chance(0.4) ? 5353 : 445;  // mDNS / SMB-ish mix

  auto bytes = static_cast<std::uint64_t>(
      std::min(rng.lognormal(std::log(50e3), 1.6), 5e8));
  Timestamp start =
      t + static_cast<Timestamp>(rng.below(static_cast<std::uint64_t>(window)));
  table.open(key, start, Scope::internal);
  table.account(key, start, bytes / 2, bytes / 2);
  table.close(key, start + static_cast<Timestamp>(rng.between(1, 300)));
  ++stats_.flows;
}

size_t ResidenceSimulator::background_service(stats::Rng& rng) {
  // Background favours software/update and cloud endpoints.
  size_t idx = service_sampler_.sample(rng);
  const auto& svc = catalog_->at(idx);
  if (svc.profile != TrafficProfile::background && rng.chance(0.5)) {
    // Re-roll once toward background-profile services.
    for (size_t j = 0; j < catalog_->size(); ++j) {
      if (catalog_->at(j).profile == TrafficProfile::background) {
        idx = j;
        break;
      }
    }
  }
  return idx;
}

double ResidenceSimulator::hour_lambda(int day, int hour,
                                       const DayPlan& today) const {
  // Interactive sessions follow presence, scaled by the timeline's
  // seasonal multiplier and the open-loop lambda shaping. The ramp and
  // flash factors default to exactly 1.0, and x * 1.0 is an IEEE bit
  // identity, so plans without those events reproduce the original
  // expression bit for bit (the golden-replay guarantee).
  double lam = cfg_.activity_scale * today.activity_mult;
  lam *= today.lambda_mult;
  if (hour >= 0 && hour < 24 && ((today.flash_hour_mask >> hour) & 1u) != 0)
    lam *= today.flash_mult;
  return lam * presence(day, hour);
}

template <typename Table>
void ResidenceSimulator::simulate_hour(Table& table, int day, int hour,
                                       const DayPlan& today) {
  // Optional tick hook: in batch mode an hour is the tick.
  if constexpr (requires(Table& t) { t.advance(0, 0); })
    table.advance(day, hour);
  const Timestamp hour_start =
      static_cast<Timestamp>(day) * flowmon::kSecondsPerDay +
      static_cast<Timestamp>(hour) * flowmon::kSecondsPerHour;

  int sessions = poisson_count(rng_, hour_lambda(day, hour, today));
  for (int s = 0; s < sessions; ++s) {
    if (today.outage) {
      // Connectivity is down: the session never reaches the WAN and the
      // router sees nothing (humans notice and give up).
      ++stats_.outage_suppressed;
      continue;
    }
    Timestamp t = hour_start + static_cast<Timestamp>(rng_.below(3600));
    run_session(rng_, table, t, service_sampler_.sample(rng_),
                /*background=*/false, today);
  }

  // Background chatter runs regardless of presence (phones at home, TVs
  // polling, OS updates) at a low constant rate.
  int bg = poisson_count(rng_, 1.2);
  for (int s = 0; s < bg; ++s) {
    if (today.outage) {
      ++stats_.outage_suppressed;
      continue;
    }
    Timestamp t = hour_start + static_cast<Timestamp>(rng_.below(3600));
    size_t idx = background_service(rng_);
    run_session(rng_, table, t, idx, /*background=*/true, today);
  }

  // Internal LAN flows: the one thing an outage does not stop.
  int internal = poisson_count(rng_, cfg_.internal_flows_per_hour *
                                         std::max(0.2, presence(day, hour)));
  for (int s = 0; s < internal; ++s)
    run_internal(rng_, table, hour_start, /*window=*/3600, today);
}

template <typename Table>
void ResidenceSimulator::simulate_tick(Table& table, int day, int tick,
                                       const DayPlan& today) {
  if constexpr (requires(Table& t) { t.advance(0, 0); })
    table.advance(day, tick);
  const int tph = std::clamp(cfg_.arrival.ticks_per_hour, 1, 3600);
  const int hour = tick / tph;
  const int slot = tick % tph;
  const Timestamp hour_start =
      static_cast<Timestamp>(day) * flowmon::kSecondsPerDay +
      static_cast<Timestamp>(hour) * flowmon::kSecondsPerHour;
  // Integer-truncated slot boundaries tile the hour exactly even when tph
  // does not divide 3600; every slot is at least one second wide.
  const Timestamp t0 = hour_start + (static_cast<Timestamp>(slot) * 3600) / tph;
  const Timestamp t1 =
      hour_start + (static_cast<Timestamp>(slot + 1) * 3600) / tph;
  const Timestamp tick_len = std::max<Timestamp>(t1 - t0, 1);

  // The whole slot runs off one fresh counter-based stream — arrivals and
  // session bodies alike are pure in (seed, index, day, tick).
  stats::Rng rng = arrival_tick_rng(cfg_.seed, day, tick);
  const double inv_tph = 1.0 / static_cast<double>(tph);

  int sessions = draw_arrivals(cfg_.arrival.mode, rng,
                               hour_lambda(day, hour, today) * inv_tph);
  for (int s = 0; s < sessions; ++s) {
    if (today.outage) {
      ++stats_.outage_suppressed;
      continue;
    }
    Timestamp t =
        t0 + static_cast<Timestamp>(rng.below(static_cast<std::uint64_t>(tick_len)));
    run_session(rng, table, t, service_sampler_.sample(rng),
                /*background=*/false, today);
  }

  int bg = draw_arrivals(cfg_.arrival.mode, rng, 1.2 * inv_tph);
  for (int s = 0; s < bg; ++s) {
    if (today.outage) {
      ++stats_.outage_suppressed;
      continue;
    }
    Timestamp t =
        t0 + static_cast<Timestamp>(rng.below(static_cast<std::uint64_t>(tick_len)));
    size_t idx = background_service(rng);
    run_session(rng, table, t, idx, /*background=*/true, today);
  }

  int internal = draw_arrivals(
      cfg_.arrival.mode, rng,
      cfg_.internal_flows_per_hour * std::max(0.2, presence(day, hour)) *
          inv_tph);
  for (int s = 0; s < internal; ++s)
    run_internal(rng, table, t0, tick_len, today);
}

void ResidenceSimulator::begin_run() {
  stats_ = SimulationStats{};
  stats_.daily.assign(static_cast<size_t>(std::max(cfg_.days, 0)),
                      DaySessionStats{});
}

template <typename Table>
void ResidenceSimulator::run_day(Table& table, int day) {
  // The plan is a pure function of the day; one evaluation governs all
  // 24 hours (and keeps lazy providers out of the hour/tick loop).
  const DayPlan today = plan(day);
  cgn_ports_used_ = 0;  // the CGN translator recycles bindings overnight
  const DaySessionStats before{stats_.sessions, stats_.he_failures,
                               stats_.outage_suppressed,
                               stats_.service_outage_failed,
                               stats_.cgn_failures};
  if (cfg_.arrival.mode == ArrivalMode::batch) {
    for (int hour = 0; hour < 24; ++hour)
      simulate_hour(table, day, hour, today);
  } else {
    const int tph = std::clamp(cfg_.arrival.ticks_per_hour, 1, 3600);
    for (int tick = 0; tick < 24 * tph; ++tick)
      simulate_tick(table, day, tick, today);
  }
  if (day >= 0 && static_cast<size_t>(day) < stats_.daily.size())
    stats_.daily[static_cast<size_t>(day)] = {
        stats_.sessions - before.sessions,
        stats_.he_failures - before.he_failures,
        stats_.outage_suppressed - before.outage_suppressed,
        stats_.service_outage_failed - before.service_outage_failed,
        stats_.cgn_failures - before.cgn_failures};
}

template <typename Table>
SimulationStats ResidenceSimulator::run(Table& table) {
  begin_run();
  for (int day = 0; day < cfg_.days; ++day) run_day(table, day);
  table.flush(static_cast<Timestamp>(cfg_.days) * flowmon::kSecondsPerDay);
  return stats_;
}

// The conntrack sinks the library ships plus the firehose capture buffer.
// New table types only need an explicit instantiation here.
template SimulationStats ResidenceSimulator::run(flowmon::ConntrackTable&);
template SimulationStats ResidenceSimulator::run(engine::FlatConntrack&);
template SimulationStats ResidenceSimulator::run(engine::FlowEventBuffer&);
template void ResidenceSimulator::run_day(flowmon::ConntrackTable&, int);
template void ResidenceSimulator::run_day(engine::FlatConntrack&, int);
template void ResidenceSimulator::run_day(engine::FlowEventBuffer&, int);

}  // namespace nbv6::traffic
