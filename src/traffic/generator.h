// ResidenceSimulator: generates nine months of household traffic.
//
// The synthetic stand-in for the paper's IRB-protected residence captures.
// Drives a ConntrackTable with flows whose statistical structure follows
// the causal model §3 establishes:
//
//   - Interactive traffic follows human presence: strong evening peak, a
//     mid-morning bump, weekday work-hours dips, scripted absences with
//     only background chatter (the spring-break signal of Fig. 2).
//   - Each session picks a service from the residence's weighted mix, an
//     endpoint of that service, and races Happy Eyeballs; bytes follow
//     heavy-tailed per-profile distributions so single downloads can swing
//     a whole day's fraction (the Fig. 1 tails).
//   - Background (non-human) traffic runs around the clock and leans IPv4.
//   - Internal LAN flows are generated separately with their own IPv6 mix.
#pragma once

#include <cstdint>
#include <vector>

#include "flowmon/conntrack.h"
#include "stats/rng.h"
#include "traffic/happy_eyeballs.h"
#include "traffic/residence.h"
#include "traffic/service_catalog.h"

namespace nbv6::traffic {

/// One simulated day's session outcomes — the day-resolved slice of
/// SimulationStats that windowed analyses (pre/post failure-rate panels
/// across NAT64 migrations and outages) test on.
struct DaySessionStats {
  std::uint64_t sessions = 0;
  std::uint64_t he_failures = 0;
  std::uint64_t outage_suppressed = 0;
  std::uint64_t service_outage_failed = 0;  ///< per-service outage rejections
  std::uint64_t cgn_failures = 0;           ///< v4 sessions over the CGN budget

  DaySessionStats& operator+=(const DaySessionStats& o) {
    sessions += o.sessions;
    he_failures += o.he_failures;
    outage_suppressed += o.outage_suppressed;
    service_outage_failed += o.service_outage_failed;
    cgn_failures += o.cgn_failures;
    return *this;
  }
  friend bool operator==(const DaySessionStats&,
                         const DaySessionStats&) = default;
};

struct SimulationStats {
  std::uint64_t sessions = 0;
  std::uint64_t flows = 0;
  std::uint64_t skipped_invisible = 0;  ///< sessions lost to opt-out routers
  std::uint64_t he_failures = 0;        ///< Happy Eyeballs total failures
  std::uint64_t outage_suppressed = 0;  ///< sessions lost to outage days
  /// Sessions rejected by a per-service outage (service_outage events).
  std::uint64_t service_outage_failed = 0;
  /// v4 sessions rejected above the day's CGN port budget (cgn_exhaustion).
  std::uint64_t cgn_failures = 0;
  /// Entry d = day d's slice of the counters above (sessions, he_failures,
  /// outage_suppressed, service_outage_failed, cgn_failures sum to the
  /// horizon totals). Sized to the simulated horizon by
  /// ResidenceSimulator::run.
  std::vector<DaySessionStats> daily;

  /// Fold another run's counters into this one (the fleet reduction).
  /// Element-wise over the daily series, resizing to the longer horizon;
  /// associative and commutative, so any fold order is bit-identical.
  SimulationStats& operator+=(const SimulationStats& o) {
    sessions += o.sessions;
    flows += o.flows;
    skipped_invisible += o.skipped_invisible;
    he_failures += o.he_failures;
    outage_suppressed += o.outage_suppressed;
    service_outage_failed += o.service_outage_failed;
    cgn_failures += o.cgn_failures;
    if (daily.size() < o.daily.size()) daily.resize(o.daily.size());
    for (size_t d = 0; d < o.daily.size(); ++d) daily[d] += o.daily[d];
    return *this;
  }
};

class ResidenceSimulator {
 public:
  ResidenceSimulator(const ServiceCatalog& catalog, ResidenceConfig config);

  /// Run the full configured period, feeding `table`. Callers typically
  /// attach a FlowMonitor to the table first. `Table` is any conntrack-
  /// shaped sink (open/account/close/flush); instantiated in generator.cpp
  /// for flowmon::ConntrackTable, engine::FlatConntrack and the firehose's
  /// engine::FlowEventBuffer, so fleet shards drive the flat hot-path table
  /// with the exact same generator code. If the table additionally exposes
  /// `advance(int day, int tick)`, the generator calls it at the start of
  /// every time slot (hour in batch mode, tick otherwise) — how the
  /// firehose attributes flows to ticks without widening the sink API.
  template <typename Table>
  SimulationStats run(Table& table);

  /// Stepped interface for day-granular drivers (engine::Firehose):
  /// begin_run() resets the run's statistics, then run_day() simulates one
  /// day — run(table) is exactly begin_run + run_day for every day + flush.
  void begin_run();
  template <typename Table>
  void run_day(Table& table, int day);
  /// Counters accumulated so far by begin_run/run_day stepping.
  [[nodiscard]] const SimulationStats& stats() const { return stats_; }

  /// Human presence multiplier in [0,1] for one hour slot; exposed for
  /// tests of the diurnal model.
  [[nodiscard]] double presence(int day, int hour) const;

  /// Expected interactive sessions in hour `hour` of `day`: the presence
  /// curve scaled by activity and the day plan's lambda shaping
  /// (activity_mult, lambda_mult, flash-crowd hours). Exposed for tests of
  /// the open-loop rate model.
  [[nodiscard]] double hour_lambda(int day, int hour,
                                   const DayPlan& today) const;

 private:
  struct FlowSpec {
    std::uint64_t bytes_out;
    std::uint64_t bytes_in;
    flowmon::Timestamp duration;
  };

  template <typename Table>
  void simulate_hour(Table& table, int day, int hour, const DayPlan& today);
  /// One open-loop time slot: a fresh counter-based Rng keyed on
  /// (residence seed, day, tick) draws this tick's arrivals and drives the
  /// session bodies, so everything inside the slot is pure in
  /// (seed, index, day, tick).
  template <typename Table>
  void simulate_tick(Table& table, int day, int tick, const DayPlan& today);
  /// Session/flow bodies draw from the caller's stream: the batch path
  /// passes the run-long rng_ (bit-identical to the pre-arrival generator),
  /// the open-loop path passes the per-tick stream.
  template <typename Table>
  void run_session(stats::Rng& rng, Table& table, flowmon::Timestamp t,
                   size_t service_idx, bool background, const DayPlan& day);
  template <typename Table>
  void run_internal(stats::Rng& rng, Table& table, flowmon::Timestamp t,
                    flowmon::Timestamp window, const DayPlan& day);
  /// The background-chatter service pick (with its single re-roll toward
  /// background-profile services); shared by the batch and tick paths.
  size_t background_service(stats::Rng& rng);
  [[nodiscard]] bool is_away(int day) const;
  /// The timeline plan governing `day`: the lazy provider when the config
  /// carries one, else the materialized vector, else kStaticDayPlan.
  /// Evaluated once per simulated day by run().
  [[nodiscard]] DayPlan plan(int day) const;

  /// Per-profile flow count and byte sampling, off the caller's stream.
  int flows_per_session(stats::Rng& rng, TrafficProfile p);
  FlowSpec sample_flow(stats::Rng& rng, TrafficProfile p);

  net::IpAddr device_addr(int device, net::Family family,
                          int prefix_epoch = 0) const;
  std::uint16_t next_port() { return static_cast<std::uint16_t>(20000 + (port_counter_++ % 40000)); }

  const ServiceCatalog* catalog_;
  ResidenceConfig cfg_;
  stats::Rng rng_;
  stats::DiscreteSampler service_sampler_;
  HappyEyeballsConfig he_cfg_;
  SimulationStats stats_;
  int device_count_;
  std::uint32_t residence_id_;
  std::uint64_t port_counter_ = 0;
  /// v4 WAN flows opened so far in the current simulated day, charged
  /// against DayPlan::cgn_port_budget; reset at each day boundary by run().
  std::int64_t cgn_ports_used_ = 0;
};

}  // namespace nbv6::traffic
