#include "traffic/arrival.h"

#include <algorithm>
#include <cmath>

namespace nbv6::traffic {

const char* to_string(ArrivalMode m) {
  switch (m) {
    case ArrivalMode::batch: return "batch";
    case ArrivalMode::poisson: return "poisson";
    case ArrivalMode::uniform: return "uniform";
  }
  return "?";
}

bool parse_arrival_mode(std::string_view text, ArrivalMode& out) {
  if (text == "batch") out = ArrivalMode::batch;
  else if (text == "poisson") out = ArrivalMode::poisson;
  else if (text == "uniform") out = ArrivalMode::uniform;
  else return false;
  return true;
}

stats::Rng arrival_tick_rng(std::uint64_t seed, int day, int tick) {
  // Same derivation idiom as sample_fleet_detailed / draw_event: fold the
  // coordinates through distinct odd multipliers, then let splitmix64 (and
  // the Rng constructor's four further rounds) mix. +1 keeps coordinate 0
  // from vanishing.
  std::uint64_t state =
      seed ^ (0xBF58476D1CE4E5B9ull * (static_cast<std::uint64_t>(day) + 1)) ^
      (0x94D049BB133111EBull * (static_cast<std::uint64_t>(tick) + 1));
  return stats::Rng(stats::splitmix64(state));
}

namespace {

// Knuth's product method; callers keep lambda <= 30 so exp(-lambda) stays
// comfortably normal. This is byte-for-byte the original generator's draw.
int poisson_knuth(stats::Rng& rng, double lambda) {
  if (lambda <= 0) return 0;
  double l = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > l);
  return k - 1;
}

constexpr double kKnuthLambdaMax = 30.0;

}  // namespace

int poisson_count(stats::Rng& rng, double lambda) {
  int total = 0;
  while (lambda > kKnuthLambdaMax) {
    total += poisson_knuth(rng, kKnuthLambdaMax);
    lambda -= kKnuthLambdaMax;
  }
  return total + poisson_knuth(rng, lambda);
}

int uniform_count(stats::Rng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  const double gap_max = 2.0 / lambda;  // gaps ~ U(0, gap_max), mean 1/lambda
  // Equilibrium first gap: the stationary residual of a U(0, b) renewal
  // process has CDF 1 - (1 - x/b)^2 on [0, b]; inverting gives
  // b * (1 - sqrt(1 - u)). Starting each tick from this distribution makes
  // the tick-sliced process exactly stationary, so E[count per tick] is
  // lambda despite the restart (a naive U(0, b) first gap would halve it
  // for small lambda).
  double at = gap_max * (1.0 - std::sqrt(1.0 - rng.uniform()));
  int n = 0;
  while (at < 1.0) {
    ++n;
    at += gap_max * rng.uniform();
  }
  return n;
}

int draw_arrivals(ArrivalMode mode, stats::Rng& rng, double lambda) {
  lambda = std::min(lambda, kMaxTickLambda);
  return mode == ArrivalMode::uniform ? uniform_count(rng, lambda)
                                      : poisson_count(rng, lambda);
}

}  // namespace nbv6::traffic
