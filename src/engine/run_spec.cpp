#include "engine/run_spec.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/flat_conntrack.h"
#include "stats/rng.h"
#include "traffic/arrival.h"

namespace nbv6::engine {

SampledFleet sample_stage(const FleetConfig& cfg,
                          const traffic::ServiceCatalog& catalog) {
  SampledFleet out;
  out.configs.reserve(static_cast<size_t>(cfg.residences));
  out.traits.reserve(static_cast<size_t>(cfg.residences));

  for (int i = 0; i < cfg.residences; ++i) {
    // Residence i's sampling stream depends only on (seed, i): stable under
    // population resizes and independent of evaluation order.
    std::uint64_t state =
        cfg.seed ^ (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(i) + 1));
    stats::Rng rng(stats::splitmix64(state));

    traffic::ResidenceConfig r;
    r.name = "R";
    r.name += std::to_string(i);
    r.days = cfg.days;
    r.arrival = cfg.arrival;
    r.seed = stats::splitmix64(state);  // simulator stream, distinct from sampler's

    ResidenceTraits t;
    const bool v6_isp = t.dual_stack_isp = rng.chance(cfg.dual_stack_isp_frac);
    const bool vacant = t.vacant = rng.chance(cfg.background_only_frac);
    const bool heavy = t.heavy_streamer = rng.chance(cfg.heavy_streamer_frac);

    r.activity_scale =
        vacant ? 0.0
               : rng.uniform(cfg.activity_scale_min, cfg.activity_scale_max);
    if (!v6_isp) {
      r.device_v6_ok_frac = 0.0;  // no delegated prefix, nothing to be ok
      r.internal_v6_frac = rng.uniform(0.0, 0.25);  // link-local-ish only
    } else {
      t.broken_v6 = rng.chance(cfg.broken_v6_frac);
      r.device_v6_ok_frac = t.broken_v6 ? rng.uniform(0.2, 0.6) : 1.0;
      r.internal_v6_frac = rng.uniform(0.25, 0.98);
    }
    t.opt_out = rng.chance(cfg.opt_out_frac);
    if (t.opt_out) r.visibility = rng.uniform(0.3, 0.8);
    r.internal_flows_per_hour = rng.uniform(0.4, 6.0);
    r.background_v4_bias = rng.uniform(0.05, 0.9);

    // Service-mix tilt: heavy streamers boost every streaming/download
    // service; everyone else gets a mild random tilt over a few services.
    if (heavy) {
      for (const auto& s : catalog.services()) {
        if (s.profile == traffic::TrafficProfile::streaming ||
            s.profile == traffic::TrafficProfile::download) {
          r.service_weight_overrides.emplace_back(s.name,
                                                  rng.uniform(2.0, 8.0));
        }
      }
    } else {
      for (int k = 0; k < 3; ++k) {
        size_t idx = static_cast<size_t>(rng.below(catalog.size()));
        r.service_weight_overrides.emplace_back(catalog.at(idx).name,
                                                rng.uniform(0.5, 3.0));
      }
    }

    // One scripted absence window when the horizon has room for it.
    if (cfg.days > 14 && rng.chance(cfg.absence_prob)) {
      t.scripted_absence = true;
      int len = static_cast<int>(rng.between(2, 7));
      int first = static_cast<int>(rng.between(3, cfg.days - len - 3));
      r.away_day_ranges.push_back({first, first + len - 1});
    }

    out.configs.push_back(std::move(r));
    out.traits.push_back(t);
  }
  return out;
}

FleetResult simulate_fleet(const traffic::ServiceCatalog& catalog,
                           std::span<const traffic::ResidenceConfig> configs,
                           ThreadPool* pool) {
  FleetResult out;
  out.residences.resize(configs.size());

  // One shard per residence: private RNG (seeded from the config), private
  // flat conntrack table, private monitor. The slot vector is preallocated,
  // so each monitor is attached at its final address and never moves while
  // its table is alive.
  auto run_one = [&](std::size_t i) {
    ResidenceRun& slot = out.residences[i];
    slot.config = configs[i];
    FlatConntrack table;
    slot.monitor.attach(table);
    traffic::ResidenceSimulator sim(catalog, configs[i]);
    slot.stats = sim.run(table);
  };

  if (pool != nullptr) {
    pool->parallel_for(configs.size(), run_one);
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) run_one(i);
  }

  // Fixed-order reduction: counter merges are associative and commutative,
  // so the fold order only matters for retained records (none here) — the
  // fleet view is bit-identical for any lane count.
  for (const auto& run : out.residences) {
    out.fleet.merge(run.monitor);
    out.totals += run.stats;  // horizon totals + the per-day series
  }
  return out;
}

FleetResult simulate_fleet(const traffic::ServiceCatalog& catalog,
                           const SampledFleet& fleet, ThreadPool* pool) {
  // Traits index into the residence vector downstream (group comparisons),
  // so a hand-built SampledFleet with mismatched sizes must fail here, not
  // as an out-of-bounds read later.
  if (fleet.traits.size() != fleet.configs.size())
    throw std::invalid_argument(
        "simulate_fleet: SampledFleet traits/configs size mismatch");
  FleetResult out = simulate_fleet(catalog, fleet.configs, pool);
  out.traits = fleet.traits;
  return out;
}

StreamStats stream_fleet(const traffic::ServiceCatalog& catalog,
                         const SampledFleet& fleet, int days,
                         const traffic::ArrivalConfig& arrival,
                         ThreadPool* pool, const RunSpec::FlowSink& sink) {
  const size_t n = fleet.configs.size();
  std::vector<traffic::ResidenceSimulator> sims;
  sims.reserve(n);
  for (const auto& rc : fleet.configs) sims.emplace_back(catalog, rc);
  std::vector<FlowEventBuffer> buffers(n);
  for (auto& sim : sims) sim.begin_run();

  // Slots per day: hours in batch mode, ticks otherwise (the same clamp
  // the generator's tick loop applies).
  const int tph = arrival.mode == traffic::ArrivalMode::batch
                      ? 1
                      : std::clamp(arrival.ticks_per_hour, 1, 3600);
  const int slots_per_day = 24 * tph;

  StreamStats out;
  std::vector<size_t> cursor(n);

  for (int day = 0; day < days; ++day) {
    // Lanes fill per-residence buffers independently (no shared state);
    // determinism comes from the merge below, not the fill order.
    auto run_one = [&](std::size_t i) { sims[i].run_day(buffers[i], day); };
    if (pool != nullptr) {
      pool->parallel_for(n, run_one);
    } else {
      for (std::size_t i = 0; i < n; ++i) run_one(i);
    }

    // Canonical merge: tick-major, residence index, generation order.
    // Each buffer's records are already tick-sorted (ticks are simulated
    // in order), so this is a linear cursor sweep, not a sort.
    std::fill(cursor.begin(), cursor.end(), size_t{0});
    for (int tick = 0; tick < slots_per_day; ++tick) {
      for (size_t i = 0; i < n; ++i) {
        auto& ev = buffers[i].events();
        size_t& c = cursor[i];
        while (c < ev.size() && ev[c].tick <= tick) {
          ev[c].residence = static_cast<std::uint32_t>(i);
          sink(ev[c]);
          ++out.flows;
          ++c;
        }
      }
    }
    // Defensive drain: nothing should remain past the last slot, but a
    // record must never be dropped silently.
    for (size_t i = 0; i < n; ++i) {
      auto& ev = buffers[i].events();
      for (size_t& c = cursor[i]; c < ev.size(); ++c) {
        ev[c].residence = static_cast<std::uint32_t>(i);
        sink(ev[c]);
        ++out.flows;
      }
    }
    for (auto& b : buffers) b.clear();
  }

  const auto horizon =
      static_cast<flowmon::Timestamp>(days) * flowmon::kSecondsPerDay;
  for (size_t i = 0; i < n; ++i) {
    buffers[i].flush(horizon);
    out.totals += sims[i].stats();
  }
  return out;
}

RunOutput RunSpec::run(const traffic::ServiceCatalog& catalog) const {
  if (detail_ != RunDetail::aggregate) return run_on(catalog, nullptr, 1);
  int lanes = lanes_ != 0 ? lanes_ : int(cfg_.threads);
  if (lanes <= 0) {
    lanes = static_cast<int>(std::thread::hardware_concurrency());
    lanes = std::max(lanes, 1);
  }
  // The calling thread is one lane; the pool supplies the rest.
  std::unique_ptr<ThreadPool> pool;
  if (lanes > 1) pool = std::make_unique<ThreadPool>(lanes - 1);
  return run_on(catalog, pool.get(), lanes);
}

RunOutput RunSpec::run_on(const traffic::ServiceCatalog& catalog,
                          ThreadPool* pool, int lanes) const {
  RunOutput out;
  out.lanes = std::max(lanes, 1);
  out.sampled = sample_stage(cfg_, catalog);
  if (detail_ == RunDetail::sample) return out;

  apply_timeline(out.sampled, cfg_.timeline, cfg_.seed, cfg_.days, mode_);
  if (detail_ == RunDetail::plan) return out;

  if (sink_) {
    StreamStats s =
        stream_fleet(catalog, out.sampled, cfg_.days, cfg_.arrival, pool, sink_);
    out.flows_streamed = s.flows;
    out.totals = std::move(s.totals);
  } else {
    out.result = simulate_fleet(catalog, out.sampled, pool);
    out.totals = out.result->totals;
  }
  return out;
}

}  // namespace nbv6::engine
