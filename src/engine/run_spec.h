// RunSpec: the one way to run a scenario.
//
// Before this header the repo had three run entry points, each hard-wiring
// a slightly different slice of the sample → timeline → simulate pipeline:
// FleetEngine::run(FleetConfig) (batch aggregation), sample_fleet_detailed
// (population sampling only), and Firehose::run (streaming flow emission).
// RunSpec unifies them behind one builder: callers state the scenario, how
// many lanes, how day plans reach the simulator, how much of the pipeline
// to run (RunDetail), and optionally a flow sink — and get one RunOutput
// back. The legacy entry points survive as thin compatibility wrappers
// over the same stage functions, so every replay guarantee (lane-count
// invariance, golden byte-identity) is pinned to a single implementation.
//
// The stage functions (sample_stage / simulate_fleet / stream_fleet) are
// deliberately public: the pass-graph pipeline (engine/pipeline.h +
// core/scenario_pipeline.h) registers each one as a pass, which is how a
// scenario sweep shares the sampled base population across variants.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "engine/firehose.h"
#include "engine/fleet.h"
#include "engine/timeline.h"

namespace nbv6::engine {

/// How far down the pipeline a RunSpec run goes.
enum class RunDetail {
  /// Sample the population only (== sample_fleet_detailed): no timeline,
  /// no simulation. Lanes are irrelevant; no thread pool is created.
  sample,
  /// Sample + apply_timeline: the fully planned fleet, ready to simulate.
  plan,
  /// The full run: sample + timeline + simulate (batch aggregation, or
  /// streaming when a firehose sink is installed).
  aggregate,
};

/// Everything a run can produce. Fields past the requested detail level
/// stay in their default state; `result` is additionally empty on the
/// streaming path (the firehose trades retained monitors for throughput,
/// exactly as Firehose::run always has).
struct RunOutput {
  /// The sampled (and, from RunDetail::plan, timeline-planned) population.
  SampledFleet sampled;
  /// Batch aggregation outcome (RunDetail::aggregate without a sink).
  std::optional<FleetResult> result;
  /// Generator counters summed across the fleet. Filled at
  /// RunDetail::aggregate on both paths; equals result->totals when
  /// `result` is present.
  traffic::SimulationStats totals;
  /// Flow records handed to the firehose sink (streaming path only).
  std::uint64_t flows_streamed = 0;
  /// Worker lanes the run used (pool workers + calling thread).
  int lanes = 1;
};

class RunSpec {
 public:
  /// Receives every emitted flow in the canonical lane-invariant stream
  /// order (see engine/firehose.h).
  using FlowSink = std::function<void(const FlowEvent&)>;

  RunSpec() = default;
  explicit RunSpec(FleetConfig cfg) : cfg_(std::move(cfg)) {}

  RunSpec& config(FleetConfig cfg) {
    cfg_ = std::move(cfg);
    return *this;
  }
  /// Worker lanes; 0 defers to cfg.threads (<= 0 there selects hardware
  /// concurrency, 1 the sequential reference). Never changes results.
  RunSpec& lanes(int n) {
    lanes_ = n;
    return *this;
  }
  /// Lazy (default) or materialized day plans — byte-identical outcomes.
  RunSpec& plan_mode(TimelinePlanMode m) {
    mode_ = m;
    return *this;
  }
  RunSpec& detail(RunDetail d) {
    detail_ = d;
    return *this;
  }
  /// Install a streaming sink: the aggregate stage emits every generated
  /// flow instead of retaining per-residence monitors.
  RunSpec& firehose(FlowSink sink) {
    sink_ = std::move(sink);
    return *this;
  }

  [[nodiscard]] const FleetConfig& config() const { return cfg_; }

  /// Execute. Creates a private pool for the run when one is needed
  /// (RunDetail::aggregate with more than one lane).
  [[nodiscard]] RunOutput run(const traffic::ServiceCatalog& catalog) const;

  /// Execute on a borrowed pool (`lanes` as reported by the owner: pool
  /// workers + 1). The FleetEngine / Firehose compatibility wrappers use
  /// this so their long-lived pools keep being reused.
  [[nodiscard]] RunOutput run_on(const traffic::ServiceCatalog& catalog,
                                 ThreadPool* pool, int lanes) const;

 private:
  FleetConfig cfg_;
  int lanes_ = 0;
  TimelinePlanMode mode_ = TimelinePlanMode::lazy;
  RunDetail detail_ = RunDetail::aggregate;
  FlowSink sink_;
};

// ------------------------------------------------------- stage functions
// The pipeline stages RunSpec (and the pass graph) compose. Each is a pure
// function of its arguments; none depends on the pool's lane count.

/// Sample the residence population described by `cfg` with its stratum
/// labels — the implementation behind sample_fleet_detailed.
SampledFleet sample_stage(const FleetConfig& cfg,
                          const traffic::ServiceCatalog& catalog);

/// Simulate every residence into its own shard and reduce in residence-
/// index order — the implementation behind FleetEngine::run(configs).
/// `pool` may be null (sequential); results are bit-identical either way.
FleetResult simulate_fleet(const traffic::ServiceCatalog& catalog,
                           std::span<const traffic::ResidenceConfig> configs,
                           ThreadPool* pool);

/// simulate_fleet(fleet.configs) carrying the stratum labels into the
/// result. Throws std::invalid_argument on traits/configs size mismatch.
FleetResult simulate_fleet(const traffic::ServiceCatalog& catalog,
                           const SampledFleet& fleet, ThreadPool* pool);

/// Streaming outcome of stream_fleet.
struct StreamStats {
  std::uint64_t flows = 0;  ///< records handed to the sink
  traffic::SimulationStats totals;
};

/// Drive the fleet day-by-day, emitting every generated flow to `sink` in
/// the canonical (day, tick, residence, generation) order on the calling
/// thread — the implementation behind Firehose::run. `days` and `arrival`
/// come from the scenario config (every sampled ResidenceConfig carries
/// copies of both).
StreamStats stream_fleet(const traffic::ServiceCatalog& catalog,
                         const SampledFleet& fleet, int days,
                         const traffic::ArrivalConfig& arrival,
                         ThreadPool* pool, const RunSpec::FlowSink& sink);

}  // namespace nbv6::engine
