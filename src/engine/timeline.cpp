#include "engine/timeline.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/fleet.h"
#include "stats/rng.h"

namespace nbv6::engine {

namespace cfgparse {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

bool parse_double(std::string_view v, double& out) {
  // std::from_chars<double> is not universally available; strtod on a
  // bounded copy is fine for config-file volumes.
  std::string tmp(v);
  char* end = nullptr;
  out = std::strtod(tmp.c_str(), &end);
  return end == tmp.c_str() + tmp.size() && !tmp.empty() &&
         std::isfinite(out);
}

bool parse_int(std::string_view v, int& out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc{} && p == v.data() + v.size();
}

bool parse_u64(std::string_view v, std::uint64_t& out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc{} && p == v.data() + v.size();
}

}  // namespace cfgparse

const char* to_string(TimelineEventKind k) {
  switch (k) {
    case TimelineEventKind::rollout_wave: return "rollout_wave";
    case TimelineEventKind::cpe_fix: return "cpe_fix";
    case TimelineEventKind::outage: return "outage";
    case TimelineEventKind::nat64_migration: return "nat64_migration";
    case TimelineEventKind::seasonal: return "seasonal";
  }
  return "?";
}

std::optional<TimelineEvent> Timeline::parse_event(std::string_view kind,
                                                   std::string_view spec) {
  TimelineEvent ev;
  if (kind == "rollout_wave") ev.kind = TimelineEventKind::rollout_wave;
  else if (kind == "cpe_fix") ev.kind = TimelineEventKind::cpe_fix;
  else if (kind == "outage") ev.kind = TimelineEventKind::outage;
  else if (kind == "nat64_migration") ev.kind = TimelineEventKind::nat64_migration;
  else if (kind == "seasonal") ev.kind = TimelineEventKind::seasonal;
  else return std::nullopt;

  const bool is_seasonal = ev.kind == TimelineEventKind::seasonal;
  const bool is_outage = ev.kind == TimelineEventKind::outage;
  bool have_end = false;

  // Whitespace-separated k=v tokens; every key at most once.
  bool seen_day = false, seen_start = false, seen_end = false,
       seen_frac = false, seen_amp = false, seen_period = false,
       seen_len = false;
  size_t pos = 0;
  while (pos < spec.size()) {
    while (pos < spec.size() &&
           (spec[pos] == ' ' || spec[pos] == '\t'))
      ++pos;
    if (pos >= spec.size()) break;
    size_t end = pos;
    while (end < spec.size() && spec[end] != ' ' && spec[end] != '\t') ++end;
    std::string_view tok = spec.substr(pos, end - pos);
    pos = end;

    size_t eq = tok.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    std::string_view key = tok.substr(0, eq);
    std::string_view val = tok.substr(eq + 1);

    if (key == "day") {
      if (seen_day || seen_start || seen_end) return std::nullopt;
      seen_day = true;
      int d = 0;
      if (!cfgparse::parse_int(val, d) || d < 0) return std::nullopt;
      ev.start_day = ev.end_day = d;
      have_end = true;
    } else if (key == "start") {
      if (seen_day || seen_start) return std::nullopt;
      seen_start = true;
      if (!cfgparse::parse_int(val, ev.start_day) || ev.start_day < 0)
        return std::nullopt;
    } else if (key == "end") {
      if (seen_day || seen_end) return std::nullopt;
      seen_end = true;
      if (!cfgparse::parse_int(val, ev.end_day) || ev.end_day < 0)
        return std::nullopt;
      have_end = true;
    } else if (key == "frac") {
      if (seen_frac) return std::nullopt;
      seen_frac = true;
      if (!cfgparse::parse_double(val, ev.fraction) || ev.fraction < 0.0 ||
          ev.fraction > 1.0)
        return std::nullopt;
    } else if (key == "amp") {
      if (seen_amp || !is_seasonal) return std::nullopt;
      seen_amp = true;
      if (!cfgparse::parse_double(val, ev.amplitude) || ev.amplitude < 0.0 ||
          ev.amplitude > 1.0)
        return std::nullopt;
    } else if (key == "period") {
      if (seen_period || !is_seasonal) return std::nullopt;
      seen_period = true;
      if (!cfgparse::parse_int(val, ev.period_days) || ev.period_days < 1)
        return std::nullopt;
    } else if (key == "len") {
      if (seen_len || !is_outage) return std::nullopt;
      seen_len = true;
      if (!cfgparse::parse_int(val, ev.duration_days) || ev.duration_days < 1)
        return std::nullopt;
    } else {
      return std::nullopt;
    }
  }

  // A window event with no end runs to the horizon.
  if (!have_end) ev.end_day = std::numeric_limits<int>::max();
  if (ev.end_day < ev.start_day) return std::nullopt;
  return ev;
}

namespace {

/// Per-(event, residence) decision stream: whether the residence is
/// affected and on which day inside the window its change lands. The
/// derivation folds (seed, event ordinal, index) through splitmix64 — the
/// same pattern sample_fleet_detailed uses per residence — so the result
/// is independent of evaluation order and population size.
struct EventDraw {
  bool affected = false;
  int day = 0;  ///< flip/fix/migration/outage-start day inside the window
};

EventDraw draw_event(const TimelineEvent& ev, int window_end,
                     std::uint64_t seed, size_t ordinal, int index) {
  std::uint64_t state =
      seed ^ (0xD1B54A32D192ED03ull * (static_cast<std::uint64_t>(ordinal) + 1))
           ^ (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(index) + 1));
  auto u01 = [&state] {
    return static_cast<double>(stats::splitmix64(state) >> 11) * 0x1.0p-53;
  };
  EventDraw d;
  d.affected = u01() < ev.fraction;
  // The day draw is consumed unconditionally so changing `frac` in a spec
  // never shifts another residence's schedule.
  double u = u01();
  long long width = static_cast<long long>(window_end) - ev.start_day + 1;
  d.day = ev.start_day + static_cast<int>(u * static_cast<double>(width));
  if (d.day > window_end) d.day = window_end;
  return d;
}

constexpr double kTau = 6.28318530717958647692;

/// One residence's draws for every event, hoisted out of the day loop:
/// draw_event depends only on (seed, ordinal, index), never on the day.
std::vector<EventDraw> draw_all_events(const Timeline& tl, std::uint64_t seed,
                                       int index, int days) {
  std::vector<EventDraw> draws;
  draws.reserve(tl.events.size());
  for (size_t e = 0; e < tl.events.size(); ++e) {
    const TimelineEvent& ev = tl.events[e];
    // Clamp the window to the horizon (events whose whole window lies past
    // the horizon keep a one-day window there and simply never fire).
    const int window_end =
        std::max(ev.start_day, std::min(ev.end_day, days - 1));
    draws.push_back(draw_event(ev, window_end, seed, e, index));
  }
  return draws;
}

TimelineDayState day_state_from_draws(const Timeline& tl,
                                      std::span<const EventDraw> draws,
                                      int day, int days,
                                      const ResidenceTraits& base) {
  TimelineDayState s;
  s.isp_v6 = base.dual_stack_isp;
  s.cpe_broken = base.dual_stack_isp && base.broken_v6;

  for (size_t e = 0; e < tl.events.size(); ++e) {
    const TimelineEvent& ev = tl.events[e];
    const EventDraw& d = draws[e];
    if (!d.affected) continue;
    switch (ev.kind) {
      case TimelineEventKind::rollout_wave:
        if (!base.dual_stack_isp && day >= d.day) s.isp_v6 = true;
        break;
      case TimelineEventKind::cpe_fix:
        if (day >= d.day) s.cpe_broken = false;
        break;
      case TimelineEventKind::outage:
        if (ev.duration_days > 0) {
          // 64-bit bound: start + len near INT_MAX is parser-legal.
          if (day >= d.day &&
              day < static_cast<long long>(d.day) + ev.duration_days)
            s.outage = true;
        } else if (day >= ev.start_day &&
                   day <= std::max(ev.start_day,
                                   std::min(ev.end_day, days - 1))) {
          s.outage = true;
        }
        break;
      case TimelineEventKind::nat64_migration:
        if (day >= d.day) {
          s.nat64 = true;
          s.isp_v6 = true;  // the v6-only access network delegates v6
        }
        break;
      case TimelineEventKind::seasonal:
        if (day >= ev.start_day && day <= ev.end_day) {
          int period = ev.period_days > 0 ? ev.period_days : 364;
          s.activity_mult *=
              1.0 + ev.amplitude *
                        std::sin(kTau * static_cast<double>(day - ev.start_day) /
                                 static_cast<double>(period));
        }
        break;
    }
  }
  return s;
}

/// TimelineDayState -> the traffic layer's DayPlan for one residence. The
/// single conversion both plan modes share, so lazy and materialized paths
/// cannot drift apart. `static_internal_v6_frac` is the residence's sampled
/// internal_v6_frac (the value negative plan fields fall back to).
traffic::DayPlan day_plan_from_state(const TimelineDayState& s,
                                     const ResidenceTraits& base,
                                     double static_internal_v6_frac) {
  traffic::DayPlan p;
  p.activity_mult = s.activity_mult;
  p.outage = s.outage;
  p.nat64 = s.nat64;
  // Effective device/internal IPv6 for the day. Negative values mean
  // "keep the sampled static config"; only genuine state changes are
  // materialized so a no-op event leaves the plan at defaults.
  if (s.nat64 && !base.dual_stack_isp) {
    // A formerly v4-only home behind the new v6-only access network:
    // devices overwhelmingly speak v6 once a prefix finally exists.
    p.device_v6_ok_frac = 0.95;
    p.internal_v6_frac = std::max(static_internal_v6_frac, 0.75);
  } else if (base.dual_stack_isp) {
    if (base.broken_v6 && !s.cpe_broken)
      p.device_v6_ok_frac = 1.0;  // firmware fix landed
  } else if (s.isp_v6) {
    // Rollout wave flipped a v4-only home on: working device IPv6 and
    // a LAN that starts using it.
    p.device_v6_ok_frac = 1.0;
    p.internal_v6_frac = std::max(static_internal_v6_frac, 0.75);
  }
  return p;
}

}  // namespace

TimelineDayState timeline_day_state(const Timeline& tl, std::uint64_t seed,
                                    int index, int day, int days,
                                    const ResidenceTraits& base) {
  return day_state_from_draws(tl, draw_all_events(tl, seed, index, days), day,
                              days, base);
}

void apply_timeline(SampledFleet& fleet, const Timeline& tl,
                    std::uint64_t seed, int days, TimelinePlanMode mode) {
  if (tl.empty()) {
    for (auto& cfg : fleet.configs) {
      cfg.day_plan.clear();
      cfg.day_plan_fn = nullptr;
    }
    return;
  }
  // One shared timeline copy for every lazy provider: the captured state
  // per residence is a shared_ptr, the per-event draws, the traits, and two
  // scalars — nothing proportional to the horizon.
  const auto shared_tl = mode == TimelinePlanMode::lazy
                             ? std::make_shared<const Timeline>(tl)
                             : nullptr;
  for (size_t i = 0; i < fleet.configs.size(); ++i) {
    traffic::ResidenceConfig& cfg = fleet.configs[i];
    const ResidenceTraits& base = fleet.traits[i];
    // The per-(event, residence) draws are day-invariant: derive them once
    // per residence, not once per (residence, day).
    auto draws = draw_all_events(tl, seed, static_cast<int>(i), days);

    if (mode == TimelinePlanMode::lazy) {
      cfg.day_plan.clear();
      cfg.day_plan_fn = [shared_tl, draws = std::move(draws), base, days,
                         internal_v6 = cfg.internal_v6_frac](int day) {
        // Outside the horizon the materialized vector falls back to the
        // static configuration (the day_plan.size() bounds check); the
        // lazy provider must match or the two modes diverge whenever a
        // config's days exceeds the horizon given to apply_timeline.
        if (day < 0 || day >= days) return traffic::kStaticDayPlan;
        return day_plan_from_state(
            day_state_from_draws(*shared_tl, draws, day, days, base), base,
            internal_v6);
      };
      continue;
    }

    cfg.day_plan_fn = nullptr;
    cfg.day_plan.assign(static_cast<size_t>(std::max(days, 0)),
                        traffic::DayPlan{});
    for (int day = 0; day < days; ++day)
      cfg.day_plan[static_cast<size_t>(day)] = day_plan_from_state(
          day_state_from_draws(tl, draws, day, days, base), base,
          cfg.internal_v6_frac);
  }
}

}  // namespace nbv6::engine
