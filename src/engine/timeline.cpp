#include "engine/timeline.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/fleet.h"
#include "stats/rng.h"

namespace nbv6::engine {

namespace cfgparse {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

bool parse_double(std::string_view v, double& out) {
  // std::from_chars<double> is not universally available; strtod on a
  // bounded copy is fine for config-file volumes.
  std::string tmp(v);
  char* end = nullptr;
  out = std::strtod(tmp.c_str(), &end);
  return end == tmp.c_str() + tmp.size() && !tmp.empty() &&
         std::isfinite(out);
}

bool parse_int(std::string_view v, int& out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc{} && p == v.data() + v.size();
}

bool parse_u64(std::string_view v, std::uint64_t& out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc{} && p == v.data() + v.size();
}

}  // namespace cfgparse

const char* to_string(TimelineEventKind k) {
  switch (k) {
    case TimelineEventKind::rollout_wave: return "rollout_wave";
    case TimelineEventKind::cpe_fix: return "cpe_fix";
    case TimelineEventKind::outage: return "outage";
    case TimelineEventKind::nat64_migration: return "nat64_migration";
    case TimelineEventKind::seasonal: return "seasonal";
    case TimelineEventKind::prefix_renumber: return "prefix_renumber";
    case TimelineEventKind::service_outage: return "service_outage";
    case TimelineEventKind::cgn_exhaustion: return "cgn_exhaustion";
    case TimelineEventKind::device_turnover: return "device_turnover";
    case TimelineEventKind::lambda_ramp: return "lambda_ramp";
    case TimelineEventKind::flash_crowd: return "flash_crowd";
  }
  return "?";
}

namespace {

/// Fill `*error` (when non-null) with "<what> '<token>'"-style context;
/// every rejection names the offending token so config mistakes are
/// diagnosable from the message alone.
std::nullopt_t fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return std::nullopt;
}

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '\'';
  out += s;
  out += '\'';
  return out;
}

}  // namespace

std::optional<TimelineEvent> Timeline::parse_event(std::string_view kind,
                                                   std::string_view spec,
                                                   std::string* error) {
  TimelineEvent ev;
  if (kind == "rollout_wave") ev.kind = TimelineEventKind::rollout_wave;
  else if (kind == "cpe_fix") ev.kind = TimelineEventKind::cpe_fix;
  else if (kind == "outage") ev.kind = TimelineEventKind::outage;
  else if (kind == "nat64_migration") ev.kind = TimelineEventKind::nat64_migration;
  else if (kind == "seasonal") ev.kind = TimelineEventKind::seasonal;
  else if (kind == "prefix_renumber") ev.kind = TimelineEventKind::prefix_renumber;
  else if (kind == "service_outage") ev.kind = TimelineEventKind::service_outage;
  else if (kind == "cgn_exhaustion") ev.kind = TimelineEventKind::cgn_exhaustion;
  else if (kind == "device_turnover") ev.kind = TimelineEventKind::device_turnover;
  else if (kind == "lambda_ramp") ev.kind = TimelineEventKind::lambda_ramp;
  else if (kind == "flash_crowd") ev.kind = TimelineEventKind::flash_crowd;
  else
    return fail(error, "unknown timeline event kind " + quoted(kind));

  const bool is_seasonal = ev.kind == TimelineEventKind::seasonal;
  const bool takes_len = ev.kind == TimelineEventKind::outage ||
                         ev.kind == TimelineEventKind::service_outage;
  const bool is_service = ev.kind == TimelineEventKind::service_outage;
  const bool is_cgn = ev.kind == TimelineEventKind::cgn_exhaustion;
  const bool is_turnover = ev.kind == TimelineEventKind::device_turnover;
  const bool is_flash = ev.kind == TimelineEventKind::flash_crowd;
  const bool takes_mult = is_flash || ev.kind == TimelineEventKind::lambda_ramp;
  bool have_end = false;

  auto bad_value = [&](std::string_view key, std::string_view val) {
    return fail(error, "invalid value " + quoted(val) + " for event key " +
                           quoted(key));
  };
  auto wrong_kind = [&](std::string_view key) {
    return fail(error, "event key " + quoted(key) + " not valid for kind " +
                           quoted(kind));
  };
  auto duplicate = [&](std::string_view key) {
    return fail(error, "duplicate event key " + quoted(key));
  };

  // Whitespace-separated k=v tokens; every key at most once.
  bool seen_day = false, seen_start = false, seen_end = false,
       seen_frac = false, seen_amp = false, seen_period = false,
       seen_len = false, seen_svc = false, seen_ports = false,
       seen_rate = false, seen_mult = false, seen_hour = false,
       seen_hours = false;
  size_t pos = 0;
  while (pos < spec.size()) {
    while (pos < spec.size() &&
           (spec[pos] == ' ' || spec[pos] == '\t'))
      ++pos;
    if (pos >= spec.size()) break;
    size_t end = pos;
    while (end < spec.size() && spec[end] != ' ' && spec[end] != '\t') ++end;
    std::string_view tok = spec.substr(pos, end - pos);
    pos = end;

    size_t eq = tok.find('=');
    if (eq == std::string_view::npos)
      return fail(error, "malformed token " + quoted(tok) +
                             " (expected key=value)");
    std::string_view key = tok.substr(0, eq);
    std::string_view val = tok.substr(eq + 1);

    if (key == "day") {
      if (seen_day) return duplicate(key);
      if (seen_start || seen_end)
        return fail(error, "'day' conflicts with 'start'/'end'");
      seen_day = true;
      int d = 0;
      if (!cfgparse::parse_int(val, d) || d < 0) return bad_value(key, val);
      ev.start_day = ev.end_day = d;
      have_end = true;
    } else if (key == "start") {
      if (seen_start) return duplicate(key);
      if (seen_day) return fail(error, "'start' conflicts with 'day'");
      seen_start = true;
      if (!cfgparse::parse_int(val, ev.start_day) || ev.start_day < 0)
        return bad_value(key, val);
    } else if (key == "end") {
      if (seen_end) return duplicate(key);
      if (seen_day) return fail(error, "'end' conflicts with 'day'");
      seen_end = true;
      if (!cfgparse::parse_int(val, ev.end_day) || ev.end_day < 0)
        return bad_value(key, val);
      have_end = true;
    } else if (key == "frac") {
      if (seen_frac) return duplicate(key);
      seen_frac = true;
      if (!cfgparse::parse_double(val, ev.fraction) || ev.fraction < 0.0 ||
          ev.fraction > 1.0)
        return bad_value(key, val);
    } else if (key == "amp") {
      if (!is_seasonal) return wrong_kind(key);
      if (seen_amp) return duplicate(key);
      seen_amp = true;
      if (!cfgparse::parse_double(val, ev.amplitude) || ev.amplitude < 0.0 ||
          ev.amplitude > 1.0)
        return bad_value(key, val);
    } else if (key == "period") {
      if (!is_seasonal) return wrong_kind(key);
      if (seen_period) return duplicate(key);
      seen_period = true;
      if (!cfgparse::parse_int(val, ev.period_days) || ev.period_days < 1)
        return bad_value(key, val);
    } else if (key == "len") {
      if (!takes_len) return wrong_kind(key);
      if (seen_len) return duplicate(key);
      seen_len = true;
      if (!cfgparse::parse_int(val, ev.duration_days) || ev.duration_days < 1)
        return bad_value(key, val);
    } else if (key == "svc") {
      if (!is_service) return wrong_kind(key);
      if (seen_svc) return duplicate(key);
      seen_svc = true;
      // The day-state service mask is 64 bits wide; indices must fit it.
      if (!cfgparse::parse_int(val, ev.service) || ev.service < 0 ||
          ev.service > 63)
        return bad_value(key, val);
    } else if (key == "ports") {
      if (!is_cgn) return wrong_kind(key);
      if (seen_ports) return duplicate(key);
      seen_ports = true;
      if (!cfgparse::parse_int(val, ev.port_budget) || ev.port_budget < 0)
        return bad_value(key, val);
    } else if (key == "rate") {
      if (!is_turnover) return wrong_kind(key);
      if (seen_rate) return duplicate(key);
      seen_rate = true;
      if (!cfgparse::parse_double(val, ev.turnover_rate) ||
          ev.turnover_rate < 0.0 || ev.turnover_rate > 1.0)
        return bad_value(key, val);
    } else if (key == "mult") {
      if (!takes_mult) return wrong_kind(key);
      if (seen_mult) return duplicate(key);
      seen_mult = true;
      // (0, 16]: the day-state composition clamps stacked multipliers to
      // the same ceiling, so a single event never exceeds what a stack can.
      if (!cfgparse::parse_double(val, ev.mult) || ev.mult <= 0.0 ||
          ev.mult > 16.0)
        return bad_value(key, val);
    } else if (key == "hour") {
      if (!is_flash) return wrong_kind(key);
      if (seen_hour) return duplicate(key);
      seen_hour = true;
      if (!cfgparse::parse_int(val, ev.hour) || ev.hour < 0 || ev.hour > 23)
        return bad_value(key, val);
    } else if (key == "hours") {
      if (!is_flash) return wrong_kind(key);
      if (seen_hours) return duplicate(key);
      seen_hours = true;
      if (!cfgparse::parse_int(val, ev.hour_span) || ev.hour_span < 1 ||
          ev.hour_span > 24)
        return bad_value(key, val);
    } else {
      return fail(error, "unknown event key " + quoted(key));
    }
  }

  if (is_service && !seen_svc)
    return fail(error, "'svc' is required for service_outage");
  if (is_cgn && !seen_ports)
    return fail(error, "'ports' is required for cgn_exhaustion");
  if (takes_mult && !seen_mult)
    return fail(error, std::string("'mult' is required for ") +
                           std::string(kind));
  if (is_flash && !seen_hour)
    return fail(error, "'hour' is required for flash_crowd");

  // A window event with no end runs to the horizon.
  if (!have_end) ev.end_day = std::numeric_limits<int>::max();
  if (ev.end_day < ev.start_day)
    return fail(error, "event window end " + std::to_string(ev.end_day) +
                           " precedes start " + std::to_string(ev.start_day));
  return ev;
}

namespace {

/// Per-(event, residence) decision stream: whether the residence is
/// affected and on which day inside the window its change lands. The
/// derivation folds (seed, event ordinal, index) through splitmix64 — the
/// same pattern sample_fleet_detailed uses per residence — so the result
/// is independent of evaluation order and population size.
struct EventDraw {
  bool affected = false;
  int day = 0;  ///< flip/fix/migration/outage-start day inside the window
};

EventDraw draw_event(const TimelineEvent& ev, int window_end,
                     std::uint64_t seed, size_t ordinal, int index) {
  std::uint64_t state =
      seed ^ (0xD1B54A32D192ED03ull * (static_cast<std::uint64_t>(ordinal) + 1))
           ^ (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(index) + 1));
  auto u01 = [&state] {
    return static_cast<double>(stats::splitmix64(state) >> 11) * 0x1.0p-53;
  };
  EventDraw d;
  d.affected = u01() < ev.fraction;
  // The day draw is consumed unconditionally so changing `frac` in a spec
  // never shifts another residence's schedule.
  double u = u01();
  long long width = static_cast<long long>(window_end) - ev.start_day + 1;
  d.day = ev.start_day + static_cast<int>(u * static_cast<double>(width));
  if (d.day > window_end) d.day = window_end;
  return d;
}

constexpr double kTau = 6.28318530717958647692;

/// One residence's draws for every event, hoisted out of the day loop:
/// draw_event depends only on (seed, ordinal, index), never on the day.
std::vector<EventDraw> draw_all_events(const Timeline& tl, std::uint64_t seed,
                                       int index, int days) {
  std::vector<EventDraw> draws;
  draws.reserve(tl.events.size());
  for (size_t e = 0; e < tl.events.size(); ++e) {
    const TimelineEvent& ev = tl.events[e];
    // Clamp the window to the horizon (events whose whole window lies past
    // the horizon keep a one-day window there and simply never fire).
    const int window_end =
        std::max(ev.start_day, std::min(ev.end_day, days - 1));
    draws.push_back(draw_event(ev, window_end, seed, e, index));
  }
  return draws;
}

TimelineDayState day_state_from_draws(const Timeline& tl,
                                      std::span<const EventDraw> draws,
                                      int day, int days,
                                      const ResidenceTraits& base) {
  TimelineDayState s;
  s.isp_v6 = base.dual_stack_isp;
  s.cpe_broken = base.dual_stack_isp && base.broken_v6;

  for (size_t e = 0; e < tl.events.size(); ++e) {
    const TimelineEvent& ev = tl.events[e];
    const EventDraw& d = draws[e];
    if (!d.affected) continue;
    switch (ev.kind) {
      case TimelineEventKind::rollout_wave:
        if (!base.dual_stack_isp && day >= d.day) s.isp_v6 = true;
        break;
      case TimelineEventKind::cpe_fix:
        if (day >= d.day) s.cpe_broken = false;
        break;
      case TimelineEventKind::outage:
        if (ev.duration_days > 0) {
          // 64-bit bound: start + len near INT_MAX is parser-legal.
          if (day >= d.day &&
              day < static_cast<long long>(d.day) + ev.duration_days)
            s.outage = true;
        } else if (day >= ev.start_day &&
                   day <= std::max(ev.start_day,
                                   std::min(ev.end_day, days - 1))) {
          s.outage = true;
        }
        break;
      case TimelineEventKind::nat64_migration:
        if (day >= d.day) {
          s.nat64 = true;
          s.isp_v6 = true;  // the v6-only access network delegates v6
        }
        break;
      case TimelineEventKind::seasonal:
        if (day >= ev.start_day && day <= ev.end_day) {
          int period = ev.period_days > 0 ? ev.period_days : 364;
          s.activity_mult *=
              1.0 + ev.amplitude *
                        std::sin(kTau * static_cast<double>(day - ev.start_day) /
                                 static_cast<double>(period));
        }
        break;
      case TimelineEventKind::prefix_renumber:
        // Each rotation is permanent; overlapping renumber events stack one
        // epoch each, in event order, so the epoch is reproducible for any
        // subset of events landing by `day`.
        if (day >= d.day) ++s.prefix_epoch;
        break;
      case TimelineEventKind::service_outage:
        if (ev.duration_days > 0) {
          if (day >= d.day &&
              day < static_cast<long long>(d.day) + ev.duration_days)
            s.service_down_mask |= 1ull << ev.service;
        } else if (day >= ev.start_day &&
                   day <= std::max(ev.start_day,
                                   std::min(ev.end_day, days - 1))) {
          s.service_down_mask |= 1ull << ev.service;
        }
        break;
      case TimelineEventKind::cgn_exhaustion:
        if (day >= ev.start_day &&
            day <= std::max(ev.start_day, std::min(ev.end_day, days - 1))) {
          s.cgn_port_budget = s.cgn_port_budget < 0
                                  ? ev.port_budget
                                  : std::min(s.cgn_port_budget, ev.port_budget);
        }
        break;
      case TimelineEventKind::lambda_ramp: {
        if (day < ev.start_day) break;
        // Linear ramp across the clamped window toward `mult`, holding at
        // `mult` afterwards (same shape as device_turnover). Multiple
        // ramps compose multiplicatively; see the clamp after the loop.
        const int wend =
            std::max(ev.start_day, std::min(ev.end_day, days - 1));
        const double span = static_cast<double>(wend - ev.start_day + 1);
        double progress =
            static_cast<double>(std::min(day, wend) - ev.start_day + 1) / span;
        s.lambda_mult *= 1.0 + (ev.mult - 1.0) * progress;
        break;
      }
      case TimelineEventKind::flash_crowd:
        if (day >= ev.start_day &&
            day <= std::max(ev.start_day, std::min(ev.end_day, days - 1))) {
          // The burst slots come from the event, not a per-home draw:
          // every affected home spikes in the same hours. Slots past hour
          // 23 are dropped (no wrap into the next day).
          const int first = ev.hour;
          const int last = std::min(first + ev.hour_span, 24);
          for (int h = first; h < last; ++h)
            s.flash_hour_mask |= 1u << h;
          s.flash_mult *= ev.mult;
        }
        break;
      case TimelineEventKind::device_turnover: {
        if (day < ev.start_day) break;
        // Linear ramp across the clamped window, holding at the window's
        // terminal value afterwards (replaced devices stay replaced).
        const int wend =
            std::max(ev.start_day, std::min(ev.end_day, days - 1));
        const double span = static_cast<double>(wend - ev.start_day + 1);
        double progress =
            static_cast<double>(std::min(day, wend) - ev.start_day + 1) / span;
        const double uplift = ev.turnover_rate * progress;
        // Concurrent turnover events compose as independent repairs of the
        // remaining broken share, so the composite stays inside [0, 1].
        s.v6_ok_uplift = 1.0 - (1.0 - s.v6_ok_uplift) * (1.0 - uplift);
        break;
      }
    }
  }
  // Stacked ramps/crowds could grow without bound; clamp the composites to
  // the single-event parse ceiling. std::clamp returns the value itself
  // when in range, so un-modulated days keep their exact 1.0 (the batch
  // bit-identity) and single events are never altered.
  s.lambda_mult = std::clamp(s.lambda_mult, 1.0 / 16.0, 16.0);
  s.flash_mult = std::clamp(s.flash_mult, 1.0 / 16.0, 16.0);
  return s;
}

/// TimelineDayState -> the traffic layer's DayPlan for one residence. The
/// single conversion both plan modes share, so lazy and materialized paths
/// cannot drift apart. `static_internal_v6_frac` is the residence's sampled
/// internal_v6_frac and `static_device_v6_ok_frac` its sampled
/// device_v6_ok_frac (the values negative plan fields fall back to).
traffic::DayPlan day_plan_from_state(const TimelineDayState& s,
                                     const ResidenceTraits& base,
                                     double static_internal_v6_frac,
                                     double static_device_v6_ok_frac) {
  traffic::DayPlan p;
  p.activity_mult = s.activity_mult;
  p.outage = s.outage;
  p.nat64 = s.nat64;
  p.prefix_epoch = s.prefix_epoch;
  p.service_down_mask = s.service_down_mask;
  p.cgn_port_budget = s.cgn_port_budget;
  p.lambda_mult = s.lambda_mult;
  p.flash_hour_mask = s.flash_hour_mask;
  p.flash_mult = s.flash_mult;
  // Effective device/internal IPv6 for the day. Negative values mean
  // "keep the sampled static config"; only genuine state changes are
  // materialized so a no-op event leaves the plan at defaults.
  if (s.nat64 && !base.dual_stack_isp) {
    // A formerly v4-only home behind the new v6-only access network:
    // devices overwhelmingly speak v6 once a prefix finally exists.
    p.device_v6_ok_frac = 0.95;
    p.internal_v6_frac = std::max(static_internal_v6_frac, 0.75);
  } else if (base.dual_stack_isp) {
    if (base.broken_v6 && !s.cpe_broken)
      p.device_v6_ok_frac = 1.0;  // firmware fix landed
  } else if (s.isp_v6) {
    // Rollout wave flipped a v4-only home on: working device IPv6 and
    // a LAN that starts using it.
    p.device_v6_ok_frac = 1.0;
    p.internal_v6_frac = std::max(static_internal_v6_frac, 0.75);
  }
  // Device turnover closes part of the remaining broken-device gap. Only
  // homes with delegated IPv6 feel it — a fresh device without a prefix is
  // still v4-only on the WAN.
  if (s.v6_ok_uplift > 0.0 && s.isp_v6) {
    const double eff = p.device_v6_ok_frac >= 0.0 ? p.device_v6_ok_frac
                                                  : static_device_v6_ok_frac;
    p.device_v6_ok_frac = eff + (1.0 - eff) * s.v6_ok_uplift;
  }
  return p;
}

}  // namespace

TimelineDayState timeline_day_state(const Timeline& tl, std::uint64_t seed,
                                    int index, int day, int days,
                                    const ResidenceTraits& base) {
  return day_state_from_draws(tl, draw_all_events(tl, seed, index, days), day,
                              days, base);
}

void apply_timeline(SampledFleet& fleet, const Timeline& tl,
                    std::uint64_t seed, int days, TimelinePlanMode mode) {
  if (tl.empty()) {
    for (auto& cfg : fleet.configs) {
      cfg.day_plan.clear();
      cfg.day_plan_fn = nullptr;
    }
    return;
  }
  // One shared timeline copy for every lazy provider: the captured state
  // per residence is a shared_ptr, the per-event draws, the traits, and two
  // scalars — nothing proportional to the horizon.
  const auto shared_tl = mode == TimelinePlanMode::lazy
                             ? std::make_shared<const Timeline>(tl)
                             : nullptr;
  for (size_t i = 0; i < fleet.configs.size(); ++i) {
    traffic::ResidenceConfig& cfg = fleet.configs[i];
    const ResidenceTraits& base = fleet.traits[i];
    // The per-(event, residence) draws are day-invariant: derive them once
    // per residence, not once per (residence, day).
    auto draws = draw_all_events(tl, seed, static_cast<int>(i), days);

    if (mode == TimelinePlanMode::lazy) {
      cfg.day_plan.clear();
      cfg.day_plan_fn = [shared_tl, draws = std::move(draws), base, days,
                         internal_v6 = cfg.internal_v6_frac,
                         device_v6 = cfg.device_v6_ok_frac](int day) {
        // Outside the horizon the materialized vector falls back to the
        // static configuration (the day_plan.size() bounds check); the
        // lazy provider must match or the two modes diverge whenever a
        // config's days exceeds the horizon given to apply_timeline.
        if (day < 0 || day >= days) return traffic::kStaticDayPlan;
        return day_plan_from_state(
            day_state_from_draws(*shared_tl, draws, day, days, base), base,
            internal_v6, device_v6);
      };
      continue;
    }

    cfg.day_plan_fn = nullptr;
    cfg.day_plan.assign(static_cast<size_t>(std::max(days, 0)),
                        traffic::DayPlan{});
    for (int day = 0; day < days; ++day)
      cfg.day_plan[static_cast<size_t>(day)] = day_plan_from_state(
          day_state_from_draws(tl, draws, day, days, base), base,
          cfg.internal_v6_frac, cfg.device_v6_ok_frac);
  }
}

}  // namespace nbv6::engine
