// FlatConntrack: the flow-ingest hot-path replacement for ConntrackTable.
//
// Same semantics and listener contract as flowmon::ConntrackTable (NEW on
// open, DESTROY with final counters on close/sweep/flush), but the live-flow
// store is an open-addressing flat table instead of std::unordered_map:
//
//   - keyed by the fused 5-tuple hash (net::fused_flow_hash), computed once
//     per operation instead of per probe,
//   - linear probing over a power-of-two slot array with backward-shift
//     deletion (no tombstones, probe chains stay short under churn),
//   - account() resolves find-or-insert in a single probe sequence where
//     ConntrackTable pays up to three unordered_map lookups.
//
// Every fleet shard owns one of these; the single-threaded table remains
// for the examples and as the behavioural reference in the shared test
// fixture (tests/flowmon_test.cpp runs both through the same suite).
#pragma once

#include <cstdint>
#include <vector>

#include "flowmon/conntrack.h"
#include "flowmon/flow_record.h"
#include "net/flow.h"

namespace nbv6::engine {

class FlatConntrack {
 public:
  /// `idle_timeout` in seconds, as ConntrackTable.
  explicit FlatConntrack(flowmon::Timestamp idle_timeout = 600,
                         std::size_t initial_capacity = 64);

  void subscribe(flowmon::ConntrackListener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Open a flow. Opening an existing live flow is a no-op.
  void open(const net::FlowKey& key, flowmon::Timestamp now,
            flowmon::Scope scope);

  /// Account traffic, implicitly opening unknown keys (mid-stream pickup).
  /// Returns false if the key had to be implicitly opened.
  bool account(const net::FlowKey& key, flowmon::Timestamp now,
               std::uint64_t bytes_out, std::uint64_t bytes_in,
               std::uint64_t pkts_out = 0, std::uint64_t pkts_in = 0,
               flowmon::Scope scope = flowmon::Scope::external);

  /// Close a flow now, emitting DESTROY. Returns false if unknown.
  bool close(const net::FlowKey& key, flowmon::Timestamp now);

  /// Evict flows idle past the timeout. Returns number evicted.
  std::size_t sweep(flowmon::Timestamp now);

  /// Close everything (end of capture).
  void flush(flowmon::Timestamp now);

  [[nodiscard]] std::size_t live_count() const { return live_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t hash = 0;  ///< 0 = empty (fused_flow_hash never yields 0)
    flowmon::FlowRecord record;
    flowmon::Timestamp last_activity = 0;
  };

  /// True when the memoized hot slot currently holds `key`.
  [[nodiscard]] bool hot_hit(const net::FlowKey& key) const;
  /// Find the slot holding `key`, or the empty slot where it would be
  /// inserted. `hash` must be fused_flow_hash(key).
  [[nodiscard]] std::size_t probe(const net::FlowKey& key,
                                  std::uint64_t hash) const;
  /// Insert into a probed empty slot, growing (and re-probing) if needed.
  Slot& insert_at(std::size_t idx, const net::FlowKey& key,
                  std::uint64_t hash, flowmon::Timestamp now,
                  flowmon::Scope scope);
  /// Backward-shift removal keeping probe chains intact.
  void erase_slot(std::size_t idx);
  void grow();
  void emit_new(const net::FlowKey& key, flowmon::Timestamp now);
  void emit_destroy(const flowmon::FlowRecord& r);

  flowmon::Timestamp idle_timeout_;
  std::vector<Slot> slots_;
  /// Most recently touched slot. Flow events arrive in per-flow bursts
  /// (open → account… → close on one key), so checking this slot first
  /// skips the hash + probe walk for the common consecutive-hit case. The
  /// memo is only ever trusted after a full key comparison, so a stale
  /// index (rehash, backward shift) degrades to the normal probe.
  std::size_t hot_idx_ = 0;
  std::size_t live_ = 0;
  std::vector<flowmon::ConntrackListener> listeners_;
  std::vector<flowmon::FlowRecord> sweep_scratch_;
};

}  // namespace nbv6::engine
