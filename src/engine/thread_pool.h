// A small reusable worker pool for the fleet engine and the parallel
// statistics paths.
//
// Design goals, in order: deterministic results (the pool never decides
// *what* work produces — callers partition work into index-addressed units
// whose outputs land in caller-owned slots), low overhead for coarse tasks
// (one condition-variable wake per task batch, not per task), and zero
// dependencies beyond std::thread. This is deliberately not a work-stealing
// scheduler: fleet shards and STL cycle-subseries are coarse, uniform-ish
// units where an atomic ticket counter load-balances fine.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace nbv6::engine {

class ThreadPool {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue one task. Tasks must not throw (the pool calls std::terminate
  /// via noexcept propagation otherwise) and must not block on the pool's
  /// own queue (no nested parallel_for from inside a task).
  void submit(std::function<void()> task);

  /// Run fn(i) for every i in [0, count) across the pool, blocking the
  /// caller until all iterations finish. Iterations are claimed dynamically
  /// via an atomic ticket, so skewed per-index costs (a heavy-streamer
  /// residence next to a vacant one) still balance. The calling thread
  /// participates, so a pool of size 1 plus the caller runs two lanes.
  /// Exception-safe: if fn throws on any lane (worker or caller), ticket
  /// hand-out stops, every lane drains, and the first exception is rethrown
  /// on the caller after the batch completes — the pool stays usable.
  /// Iterations already claimed when the throw lands still run.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  core::Mutex mutex_;
  std::deque<std::function<void()>> queue_ NBV6_GUARDED_BY(mutex_);
  core::CondVar cv_;
  bool stop_ NBV6_GUARDED_BY(mutex_) = false;
};

}  // namespace nbv6::engine
