// Scenario fuzzing: randomized configs that hunt determinism bugs.
//
// The timeline subsystem's guarantees — every per-residence decision a
// pure function of (seed, event ordinal, index, day), lane-count
// invariance, lazy-vs-materialized plan parity, byte-stable replay — are
// only as strong as the scenarios that exercise them. Seven hand-written
// configs cover the happy paths; this module generates arbitrarily many
// adversarial ones: boundary fractions (0, 1, one-ulp neighbours),
// one-day horizons, overlapping and degenerate event windows, every event
// kind in every legal shape, stacked renumbers and competing CGN budgets.
//
// Each generated config is valid by construction (it must parse), and the
// differential harness in tests/testutil checks the invariants on it.
// A config that survives is a candidate for promotion into
// examples/scenarios/ with a committed golden; one that fails is a
// reproducer, printable verbatim from its seed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "engine/fleet.h"

namespace nbv6::traffic {
class ServiceCatalog;
}

namespace nbv6::engine {

/// Size caps for generated scenarios. Defaults keep one differential check
/// cheap enough to run hundreds per CI job (population x horizon stays in
/// the low thousands of residence-days) while leaving room for every
/// grammar shape.
struct ScenarioFuzzOptions {
  int max_residences = 32;
  int max_days = 56;
  int max_events = 8;
};

/// Deterministically generate one scenario file text from `seed`. The text
/// always parses (generation is validity-directed, not mutation-based) and
/// deliberately stresses the lexer too: shuffled key order, comments,
/// blank lines, tab/space soup inside event specs. Distinct seeds give
/// distinct-but-overlapping grammar coverage; the full kind/key vocabulary
/// appears across any few dozen consecutive seeds.
std::string generate_scenario_text(std::uint64_t seed,
                                   const ScenarioFuzzOptions& opts = {});

/// Canonical text form of a config: every scalar key in fixed order,
/// doubles rendered with %.17g (so text equality is bit equality), one
/// timeline line per event in ordinal order carrying exactly its kind's
/// keys. parse(to_config_text(cfg)) == cfg for every parseable cfg — the
/// renderer half of the round-trip check, and the tool that promotes a
/// surviving fuzz config into a committed scenario file.
std::string to_config_text(const FleetConfig& cfg);

/// Parse -> render -> reparse -> compare. nullopt on success; otherwise a
/// description of the first failure (initial parse rejection, renderer
/// output rejected, or field mismatch after the round trip).
std::optional<std::string> check_parse_round_trip(std::string_view text);

/// Lazy vs materialized day plans, cell by cell: sample the fleet twice,
/// apply the timeline in each mode, and require every (residence, day)
/// DayPlan equal, plus the out-of-horizon fallback to kStaticDayPlan.
/// nullopt on success; otherwise the first mismatching cell.
std::optional<std::string> check_plan_parity(
    const FleetConfig& cfg, const traffic::ServiceCatalog& catalog);

}  // namespace nbv6::engine
