#include "engine/scenario_fuzz.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "engine/timeline.h"
#include "stats/rng.h"
#include "traffic/residence.h"
#include "traffic/service_catalog.h"

namespace nbv6::engine {

namespace {

// %.17g: shortest text that round-trips any double exactly — the same
// convention as the golden serializer, so a promoted fuzz config carries
// its fractions bit-exactly into examples/scenarios/.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

// Boundary-biased draws: determinism bugs live at the edges (a fraction of
// exactly 0 or 1 flips every per-residence draw the same way; a one-ulp
// neighbour flips almost none), so the generator lands there often.
double fuzz_fraction(stats::Rng& rng) {
  switch (rng.below(8)) {
    case 0: return 0.0;
    case 1: return 1.0;
    case 2: return 1e-12;
    case 3: return 1.0 - 1e-12;
    case 4: return 0.5;
    default: return rng.uniform();
  }
}

int fuzz_pick(stats::Rng& rng, const std::vector<int>& boundary, int lo,
              int hi) {
  if (rng.chance(0.5))
    return boundary[static_cast<size_t>(
        rng.below(static_cast<std::uint64_t>(boundary.size())))];
  return static_cast<int>(rng.between(lo, hi));
}

/// Random whitespace between event-spec tokens: space, tab, or runs of
/// both. The parser must treat them all identically.
std::string fuzz_sep(stats::Rng& rng) {
  switch (rng.below(4)) {
    case 0: return "\t";
    case 1: return "  ";
    case 2: return " \t ";
    default: return " ";
  }
}

/// One scalar "key = value" line, with optional comment/spacing noise.
void emit_line(std::string& out, stats::Rng& rng, const std::string& key,
               const std::string& value) {
  switch (rng.below(4)) {
    case 0: out += key + "=" + value; break;
    case 1: out += key + " =\t" + value; break;
    case 2: out += "  " + key + " = " + value + "   "; break;
    default: out += key + " = " + value; break;
  }
  if (rng.chance(0.2)) out += "  # fuzz";
  out += '\n';
  if (rng.chance(0.15)) out += "# interleaved comment line\n";
  if (rng.chance(0.1)) out += "\n";
}

struct WindowSpec {
  std::string text;  ///< the day=/start=/end= tokens
  int start_day = 0;
};

/// A window shape: pinned day, open-ended start, closed range (possibly
/// degenerate start==end, possibly running far past the horizon — both
/// legal, both clamped at evaluation time). start is always < days so the
/// horizon validation passes.
WindowSpec fuzz_window(stats::Rng& rng, int days, const std::string& sep) {
  WindowSpec w;
  w.start_day = static_cast<int>(rng.below(static_cast<std::uint64_t>(days)));
  switch (rng.below(4)) {
    case 0:
      w.text = "day=" + std::to_string(w.start_day);
      break;
    case 1:
      w.text = "start=" + std::to_string(w.start_day);  // to the horizon
      break;
    case 2: {
      // Tail past the horizon: evaluation clamps to days-1.
      int end = w.start_day + static_cast<int>(rng.below(
                                  static_cast<std::uint64_t>(2 * days + 1)));
      w.text = "start=" + std::to_string(w.start_day) + sep +
               "end=" + std::to_string(end);
      break;
    }
    default: {
      int end = w.start_day +
                static_cast<int>(rng.below(static_cast<std::uint64_t>(
                    std::max(1, days - w.start_day))));
      w.text = "start=" + std::to_string(w.start_day) + sep +
               "end=" + std::to_string(end);
      break;
    }
  }
  return w;
}

/// Ramp/flash multiplier: boundary-biased inside the parser's (0, 16]
/// range, but capped low enough that a max_events stack of multiplicative
/// ramps cannot push per-tick arrival counts into fuzz-run-hostile
/// territory (the day-state composition also clamps composites at 16).
double fuzz_mult(stats::Rng& rng) {
  switch (rng.below(8)) {
    case 0: return 16.0;   // the parse ceiling
    case 1: return 1.0;    // a no-op ramp — must stay bit-transparent
    case 2: return 0.0625; // strong ramp-down
    case 3: return 2.0;
    default: return rng.uniform(0.25, 4.0);
  }
}

std::string fuzz_event_line(stats::Rng& rng, int days) {
  static constexpr const char* kKinds[] = {
      "rollout_wave",   "cpe_fix",        "outage",
      "nat64_migration", "seasonal",       "prefix_renumber",
      "service_outage", "cgn_exhaustion", "device_turnover",
      "lambda_ramp",    "flash_crowd"};
  const std::string kind = kKinds[rng.below(std::size(kKinds))];
  const std::string sep = fuzz_sep(rng);
  WindowSpec w = fuzz_window(rng, days, sep);

  std::string spec = w.text;
  if (rng.chance(0.8)) spec += sep + "frac=" + fmt_double(fuzz_fraction(rng));

  if (kind == "seasonal") {
    if (rng.chance(0.7)) spec += sep + "amp=" + fmt_double(fuzz_fraction(rng));
    if (rng.chance(0.7))
      spec += sep + "period=" + std::to_string(rng.between(1, 3 * days));
  } else if (kind == "outage" || kind == "service_outage") {
    if (rng.chance(0.5))
      spec += sep + "len=" + std::to_string(rng.between(1, days + 3));
  }
  if (kind == "service_outage") {
    // Mostly real catalog indices (the paper catalog has 39 services) so
    // the outage actually bites; sometimes the mask's upper range.
    int svc = rng.chance(0.8) ? static_cast<int>(rng.below(39))
                              : static_cast<int>(rng.between(39, 63));
    spec += sep + "svc=" + std::to_string(svc);
  } else if (kind == "cgn_exhaustion") {
    static constexpr int kBudgets[] = {0, 1, 10, 100, 1000, 100000};
    int ports = rng.chance(0.7)
                    ? kBudgets[rng.below(std::size(kBudgets))]
                    : static_cast<int>(rng.between(0, 5000));
    spec += sep + "ports=" + std::to_string(ports);
  } else if (kind == "device_turnover") {
    spec += sep + "rate=" + fmt_double(fuzz_fraction(rng));
  } else if (kind == "lambda_ramp") {
    spec += sep + "mult=" + fmt_double(fuzz_mult(rng));
  } else if (kind == "flash_crowd") {
    spec += sep + "hour=" + std::to_string(rng.below(24));
    if (rng.chance(0.6))
      spec += sep + "hours=" + std::to_string(rng.between(1, 24));
    spec += sep + "mult=" + fmt_double(fuzz_mult(rng));
  }
  return "timeline." + kind + " = " + spec;
}

}  // namespace

std::string generate_scenario_text(std::uint64_t seed,
                                   const ScenarioFuzzOptions& opts) {
  stats::Rng rng(seed ^ 0x5ce7a7105fu);
  std::string out = "# fuzz scenario seed=" + fmt_u64(seed) + "\n";

  const int days = fuzz_pick(rng, {1, 2, 7, opts.max_days}, 1, opts.max_days);
  const int residences =
      fuzz_pick(rng, {1, 2, 3, opts.max_residences}, 1, opts.max_residences);

  // Scalar section: a random subset in a random order (the parser must not
  // care), always including the keys that shape the run.
  struct KV {
    std::string key, value;
  };
  std::vector<KV> lines;
  lines.push_back({"residences", std::to_string(residences)});
  lines.push_back({"days", std::to_string(days)});
  lines.push_back({"seed", fmt_u64(stats::splitmix64(seed))});
  if (rng.chance(0.5))
    lines.push_back({"threads", std::to_string(rng.between(0, 8))});
  for (const char* key :
       {"dual_stack_isp_frac", "broken_v6_frac", "heavy_streamer_frac",
        "background_only_frac", "opt_out_frac", "absence_prob"}) {
    if (rng.chance(0.6)) lines.push_back({key, fmt_double(fuzz_fraction(rng))});
  }
  if (rng.chance(0.6)) {
    // min <= max by construction, including the degenerate min == max == 0
    // fleet (background chatter only).
    double lo = rng.chance(0.25) ? 0.0 : rng.uniform(0.0, 6.0);
    double hi = rng.chance(0.25) ? lo : lo + rng.uniform(0.0, 6.0);
    lines.push_back({"activity_scale_min", fmt_double(lo)});
    lines.push_back({"activity_scale_max", fmt_double(hi)});
  }
  if (rng.chance(0.5)) {
    static constexpr const char* kModes[] = {"batch", "poisson", "uniform"};
    lines.push_back({"arrival.mode",
                     kModes[rng.below(std::size(kModes))]});
    if (rng.chance(0.7)) {
      // Mostly coarse ticks (the differential battery replays every
      // scenario several times); 7 does not divide 3600, exercising the
      // integer slot-boundary tiling; 60 occasionally for realism.
      static constexpr int kTicks[] = {1, 2, 3, 4, 6, 7, 12};
      int tph = rng.chance(0.15)
                    ? 60
                    : kTicks[rng.below(std::size(kTicks))];
      lines.push_back({"arrival.ticks_per_hour", std::to_string(tph)});
    }
  }
  // Fisher-Yates with the scenario's own rng: key order is part of the
  // grammar surface being fuzzed.
  for (size_t i = lines.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.below(i));
    std::swap(lines[i - 1], lines[j]);
  }
  for (const auto& kv : lines) emit_line(out, rng, kv.key, kv.value);

  const int events =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(opts.max_events + 1)));
  for (int e = 0; e < events; ++e) {
    out += fuzz_event_line(rng, days);
    if (rng.chance(0.2)) out += "  # event";
    out += '\n';
  }
  return out;
}

std::string to_config_text(const FleetConfig& cfg) {
  std::string out;
  out += "residences = " + std::to_string(cfg.residences) + "\n";
  out += "days = " + std::to_string(cfg.days) + "\n";
  out += "threads = " + std::to_string(cfg.threads) + "\n";
  out += "seed = " + fmt_u64(cfg.seed) + "\n";
  out += "dual_stack_isp_frac = " + fmt_double(cfg.dual_stack_isp_frac) + "\n";
  out += "broken_v6_frac = " + fmt_double(cfg.broken_v6_frac) + "\n";
  out += "heavy_streamer_frac = " + fmt_double(cfg.heavy_streamer_frac) + "\n";
  out +=
      "background_only_frac = " + fmt_double(cfg.background_only_frac) + "\n";
  out += "opt_out_frac = " + fmt_double(cfg.opt_out_frac) + "\n";
  out += "absence_prob = " + fmt_double(cfg.absence_prob) + "\n";
  out += "activity_scale_min = " + fmt_double(cfg.activity_scale_min) + "\n";
  out += "activity_scale_max = " + fmt_double(cfg.activity_scale_max) + "\n";
  out += "arrival.mode = " +
         std::string(traffic::to_string(cfg.arrival->mode)) + "\n";
  out += "arrival.ticks_per_hour = " +
         std::to_string(cfg.arrival->ticks_per_hour) + "\n";
  for (const auto& ev : cfg.timeline->events) {
    out += "timeline.";
    out += to_string(ev.kind);
    out += " = ";
    if (ev.start_day == ev.end_day) {
      out += "day=" + std::to_string(ev.start_day);
    } else if (ev.end_day == std::numeric_limits<int>::max()) {
      out += "start=" + std::to_string(ev.start_day);  // to the horizon
    } else {
      out += "start=" + std::to_string(ev.start_day) +
             " end=" + std::to_string(ev.end_day);
    }
    out += " frac=" + fmt_double(ev.fraction);
    switch (ev.kind) {
      case TimelineEventKind::seasonal:
        out += " amp=" + fmt_double(ev.amplitude);
        if (ev.period_days > 0)
          out += " period=" + std::to_string(ev.period_days);
        break;
      case TimelineEventKind::outage:
        if (ev.duration_days > 0)
          out += " len=" + std::to_string(ev.duration_days);
        break;
      case TimelineEventKind::service_outage:
        if (ev.duration_days > 0)
          out += " len=" + std::to_string(ev.duration_days);
        out += " svc=" + std::to_string(ev.service);
        break;
      case TimelineEventKind::cgn_exhaustion:
        out += " ports=" + std::to_string(ev.port_budget);
        break;
      case TimelineEventKind::device_turnover:
        out += " rate=" + fmt_double(ev.turnover_rate);
        break;
      case TimelineEventKind::lambda_ramp:
        out += " mult=" + fmt_double(ev.mult);
        break;
      case TimelineEventKind::flash_crowd:
        out += " hour=" + std::to_string(ev.hour) +
               " hours=" + std::to_string(ev.hour_span) +
               " mult=" + fmt_double(ev.mult);
        break;
      default:
        break;
    }
    out += '\n';
  }
  return out;
}

std::optional<std::string> check_parse_round_trip(std::string_view text) {
  std::string error;
  auto cfg = FleetConfig::parse(text, &error);
  if (!cfg) return "initial parse failed: " + error;

  const std::string rendered = to_config_text(*cfg);
  auto cfg2 = FleetConfig::parse(rendered, &error);
  if (!cfg2)
    return "rendered text failed to reparse: " + error +
           "\nrendered:\n" + rendered;
  if (!(*cfg == *cfg2))
    return "config changed across render/reparse\nrendered:\n" + rendered;
  // Render must be a fixed point: a second pass through the renderer that
  // changed a byte would mean non-canonical float formatting.
  if (to_config_text(*cfg2) != rendered)
    return "renderer is not a fixed point\nrendered:\n" + rendered;
  return std::nullopt;
}

std::optional<std::string> check_plan_parity(
    const FleetConfig& cfg, const traffic::ServiceCatalog& catalog) {
  SampledFleet lazy = sample_fleet_detailed(cfg, catalog);
  SampledFleet mat = sample_fleet_detailed(cfg, catalog);
  apply_timeline(lazy, cfg.timeline, cfg.seed, cfg.days,
                 TimelinePlanMode::lazy);
  apply_timeline(mat, cfg.timeline, cfg.seed, cfg.days,
                 TimelinePlanMode::materialized);

  auto cell = [](size_t i, int d) {
    return "residence " + std::to_string(i) + " day " + std::to_string(d);
  };
  for (size_t i = 0; i < lazy.configs.size(); ++i) {
    const auto& lz = lazy.configs[i];
    const auto& mt = mat.configs[i];
    if (cfg.timeline->empty()) {
      if (lz.day_plan_fn || !lz.day_plan.empty() || mt.day_plan_fn ||
          !mt.day_plan.empty())
        return "empty timeline left plan state on residence " +
               std::to_string(i);
      continue;
    }
    if (!lz.day_plan_fn)
      return "lazy mode missing day_plan_fn on residence " + std::to_string(i);
    if (mt.day_plan.size() != static_cast<size_t>(cfg.days))
      return "materialized plan has " + std::to_string(mt.day_plan.size()) +
             " days, expected " + std::to_string(cfg.days) + " on residence " +
             std::to_string(i);
    for (int d = 0; d < cfg.days; ++d) {
      const traffic::DayPlan a = lz.day_plan_fn(d);
      const traffic::DayPlan b = mt.day_plan[static_cast<size_t>(d)];
      if (!(a == b)) return "lazy/materialized plan mismatch at " + cell(i, d);
      // The plan must also be a pure function of the day: a second
      // evaluation through the lazy closure has no state to vary on.
      if (!(lz.day_plan_fn(d) == a))
        return "lazy plan not pure at " + cell(i, d);
    }
    // Out-of-horizon days fall back to the static plan in both modes (the
    // materialized vector via its bounds check, the closure explicitly).
    if (!(lz.day_plan_fn(cfg.days) == traffic::kStaticDayPlan) ||
        !(lz.day_plan_fn(-1) == traffic::kStaticDayPlan))
      return "lazy plan out-of-horizon fallback broken on residence " +
             std::to_string(i);
  }
  return std::nullopt;
}

}  // namespace nbv6::engine
