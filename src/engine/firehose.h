// Firehose: streaming flow emission for whole fleets.
//
// The batch pipeline simulates residences to completion and reduces
// aggregate monitors; nothing downstream ever sees an individual flow in
// time order. The firehose inverts that: it drives every fleet lane
// day-by-day, captures each generated flow with its (day, tick)
// coordinates, and streams the records to a sink callback in a canonical
// global order — tick-major, then residence index, then generation order.
// That order is a pure function of the scenario (seed, horizon, arrival
// config), so the emitted stream is byte-identical for any lane count:
// the same replay guarantee the batch goldens pin, extended to a flow
// stream a downstream consumer (exporter, ingest daemon, backpressure
// experiment) could tap live.
//
// Throughput of this path — flows/sec/core out of bench/firehose_throughput
// — is the repo's headline benchmark.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/fleet.h"
#include "flowmon/flow_record.h"
#include "net/flow.h"

namespace nbv6::engine {

/// One generated flow as the firehose emits it.
struct FlowEvent {
  std::uint32_t residence = 0;  ///< residence index in the sampled fleet
  std::int32_t day = 0;         ///< simulated day the flow was generated in
  /// Slot of the day the flow was generated in: the hour (batch mode) or
  /// the open-loop tick (day * ticks_per_day + tick_of_day ordering is the
  /// emission order).
  std::int32_t tick = 0;
  flowmon::Timestamp start = 0;  ///< open timestamp (seconds since day 0)
  flowmon::Timestamp end = 0;    ///< close timestamp
  net::FlowKey key;
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
  flowmon::Scope scope = flowmon::Scope::external;
};

/// A conntrack-shaped sink that records generated flows instead of
/// tracking them. The generator drives each flow as one consecutive
/// open → account → close triple, so the buffer appends on open and
/// completes the latest record on account/close; `advance(day, tick)` —
/// the generator's optional per-slot hook — stamps the coordinates.
/// Records accumulate until clear(); Firehose drains per day.
class FlowEventBuffer {
 public:
  void advance(int day, int tick) {
    day_ = day;
    tick_ = tick;
  }
  void open(const net::FlowKey& key, flowmon::Timestamp now,
            flowmon::Scope scope) {
    FlowEvent ev;
    ev.day = day_;
    ev.tick = tick_;
    ev.start = now;
    ev.end = now;
    ev.key = key;
    ev.scope = scope;
    events_.push_back(ev);
  }
  void account(const net::FlowKey&, flowmon::Timestamp, std::uint64_t out,
               std::uint64_t in) {
    if (events_.empty()) return;
    events_.back().bytes_out += out;
    events_.back().bytes_in += in;
  }
  void close(const net::FlowKey&, flowmon::Timestamp now) {
    if (events_.empty()) return;
    events_.back().end = now;
  }
  void flush(flowmon::Timestamp) {}  // nothing is retained open

  [[nodiscard]] std::vector<FlowEvent>& events() { return events_; }
  [[nodiscard]] const std::vector<FlowEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  std::vector<FlowEvent> events_;
  int day_ = 0;
  int tick_ = 0;
};

class Firehose {
 public:
  /// Receives every emitted flow, in the canonical stream order.
  using Sink = std::function<void(const FlowEvent&)>;

  struct Result {
    std::uint64_t flows = 0;  ///< records handed to the sink
    int lanes = 1;            ///< worker lanes the run used
    /// Generator counters summed across the fleet — identical to what the
    /// batch engine's FleetResult::totals reports for the same scenario.
    traffic::SimulationStats totals;
  };

  /// `threads` as FleetConfig::threads: <= 0 selects hardware concurrency,
  /// 1 is the sequential reference.
  explicit Firehose(const traffic::ServiceCatalog& catalog, int threads = 0);

  /// Sample + timeline + simulate the scenario, streaming every flow to
  /// `sink`. Lanes parallelize within each day; emission happens on the
  /// calling thread in canonical order, so the sink needs no locking and
  /// sees a lane-count-invariant stream.
  Result run(const FleetConfig& cfg, const Sink& sink);

  [[nodiscard]] int lanes() const { return lanes_; }

 private:
  const traffic::ServiceCatalog* catalog_;
  int lanes_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace nbv6::engine
