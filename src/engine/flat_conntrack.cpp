#include "engine/flat_conntrack.h"

#include <bit>
#include <cassert>

namespace nbv6::engine {

namespace {
constexpr std::size_t round_up_pow2(std::size_t n) {
  return std::bit_ceil(n < 4 ? std::size_t{4} : n);
}
}  // namespace

FlatConntrack::FlatConntrack(flowmon::Timestamp idle_timeout,
                             std::size_t initial_capacity)
    : idle_timeout_(idle_timeout), slots_(round_up_pow2(initial_capacity)) {}

std::size_t FlatConntrack::probe(const net::FlowKey& key,
                                 std::uint64_t hash) const {
  // Contract: 0 marks an empty slot, so a zero hash would probe forever;
  // the table is power-of-two sized so `& mask` is a valid modulo.
  assert(hash != 0);
  assert(std::has_single_bit(slots_.size()));
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  while (slots_[i].hash != 0) {
    if (slots_[i].hash == hash && slots_[i].record.key == key) return i;
    i = (i + 1) & mask;
  }
  return i;
}

void FlatConntrack::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (auto& s : old) {
    if (s.hash == 0) continue;
    std::size_t i = static_cast<std::size_t>(s.hash) & mask;
    while (slots_[i].hash != 0) i = (i + 1) & mask;
    slots_[i] = std::move(s);
  }
}

FlatConntrack::Slot& FlatConntrack::insert_at(std::size_t idx,
                                              const net::FlowKey& key,
                                              std::uint64_t hash,
                                              flowmon::Timestamp now,
                                              flowmon::Scope scope) {
  // Grow at 3/4 load; the caller's probed index is stale after a rehash.
  if ((live_ + 1) * 4 > slots_.size() * 3) {
    grow();
    idx = probe(key, hash);
  }
  Slot& s = slots_[idx];
  assert(s.hash == 0);
  s.hash = hash;
  s.record = flowmon::FlowRecord{};
  s.record.key = key;
  s.record.start = now;
  s.record.scope = scope;
  s.last_activity = now;
  ++live_;
  return s;
}

void FlatConntrack::erase_slot(std::size_t idx) {
  // Contract: only live slots are erased; backward-shift deletion on an
  // empty slot would corrupt the probe chains of its neighbors.
  assert(idx < slots_.size() && slots_[idx].hash != 0);
  const std::size_t mask = slots_.size() - 1;
  std::size_t hole = idx;
  std::size_t i = (idx + 1) & mask;
  while (slots_[i].hash != 0) {
    const std::size_t ideal = static_cast<std::size_t>(slots_[i].hash) & mask;
    // Move i into the hole iff the hole lies within i's probe span
    // [ideal, i] (cyclically); otherwise i is already at-or-before its
    // ideal chain position relative to the hole.
    if (((i - ideal) & mask) >= ((i - hole) & mask)) {
      slots_[hole] = std::move(slots_[i]);
      slots_[i].hash = 0;
      hole = i;
    }
    i = (i + 1) & mask;
  }
  slots_[hole].hash = 0;
  --live_;
}

bool FlatConntrack::hot_hit(const net::FlowKey& key) const {
  // The memo may be stale (rehash, backward shift) but never out of
  // bounds: grow() and erase_slot() keep it inside the current table.
  assert(hot_idx_ < slots_.size());
  const Slot& s = slots_[hot_idx_];
  return s.hash != 0 && s.record.key == key;
}

void FlatConntrack::emit_new(const net::FlowKey& key, flowmon::Timestamp now) {
  for (const auto& l : listeners_)
    if (l.on_new) l.on_new(key, now);
}

void FlatConntrack::emit_destroy(const flowmon::FlowRecord& r) {
  for (const auto& l : listeners_)
    if (l.on_destroy) l.on_destroy(r);
}

void FlatConntrack::open(const net::FlowKey& key, flowmon::Timestamp now,
                         flowmon::Scope scope) {
  if (hot_hit(key)) return;  // already live: no re-fire
  const std::uint64_t h = net::fused_flow_hash(key);
  const std::size_t idx = probe(key, h);
  if (slots_[idx].hash != 0) {
    hot_idx_ = idx;
    return;
  }
  Slot& s = insert_at(idx, key, h, now, scope);
  hot_idx_ = static_cast<std::size_t>(&s - slots_.data());
  emit_new(key, now);
}

bool FlatConntrack::account(const net::FlowKey& key, flowmon::Timestamp now,
                            std::uint64_t bytes_out, std::uint64_t bytes_in,
                            std::uint64_t pkts_out, std::uint64_t pkts_in,
                            flowmon::Scope scope) {
  bool known = true;
  std::size_t idx;
  if (hot_hit(key)) {
    idx = hot_idx_;
  } else {
    const std::uint64_t h = net::fused_flow_hash(key);
    idx = probe(key, h);
    known = slots_[idx].hash != 0;
    if (!known) {
      Slot& ins = insert_at(idx, key, h, now, scope);
      idx = static_cast<std::size_t>(&ins - slots_.data());
      emit_new(key, now);
    }
    hot_idx_ = idx;
  }
  Slot& s = slots_[idx];
  auto& rec = s.record;
  rec.bytes_out += bytes_out;
  rec.bytes_in += bytes_in;
  // Same packet approximation as ConntrackTable: one per full-ish MTU.
  rec.packets_out += pkts_out > 0 ? pkts_out : (bytes_out + 1399) / 1400;
  rec.packets_in += pkts_in > 0 ? pkts_in : (bytes_in + 1399) / 1400;
  s.last_activity = now;
  return known;
}

bool FlatConntrack::close(const net::FlowKey& key, flowmon::Timestamp now) {
  std::size_t idx;
  if (hot_hit(key)) {
    idx = hot_idx_;
  } else {
    idx = probe(key, net::fused_flow_hash(key));
    if (slots_[idx].hash == 0) return false;
  }
  slots_[idx].record.end = now;
  // Emit from the live slot (no record copy), then unlink. Listeners must
  // not reenter the table — the same contract ConntrackTable's sweep/flush
  // already impose while iterating.
  emit_destroy(slots_[idx].record);
  erase_slot(idx);
  return true;
}

std::size_t FlatConntrack::sweep(flowmon::Timestamp now) {
  // Collect first, erase second: erasing in-place while scanning can
  // backward-shift a not-yet-examined entry behind the cursor (wrap-around
  // probe chains), silently skipping an eviction. Sweep is rare relative to
  // open/account/close, so the scratch copy is cheap.
  sweep_scratch_.clear();
  for (auto& s : slots_) {
    if (s.hash != 0 && now - s.last_activity >= idle_timeout_) {
      s.record.end = s.last_activity;
      sweep_scratch_.push_back(s.record);
    }
  }
  for (const auto& r : sweep_scratch_) {
    const std::size_t idx = probe(r.key, net::fused_flow_hash(r.key));
    assert(slots_[idx].hash != 0);
    erase_slot(idx);
    emit_destroy(r);
  }
  return sweep_scratch_.size();
}

void FlatConntrack::flush(flowmon::Timestamp now) {
  for (auto& s : slots_) {
    if (s.hash == 0) continue;
    s.record.end = now;
    emit_destroy(s.record);
    s.hash = 0;
  }
  live_ = 0;
}

}  // namespace nbv6::engine
