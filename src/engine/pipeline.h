// Pass-graph pipeline runtime: the scenario pipeline as an explicit DAG.
//
// Every experiment binary used to hard-wire the same chain — sample →
// timeline → simulate → reduce → extract → panels → figure files — with its
// own entry point and knobs. This module makes the chain a data structure,
// modeled on render-graph pass registration: each *pass* declares the named
// *resources* it consumes and produces plus a digest of the config slice it
// reads; the runtime topologically orders the passes, content-hashes each
// one over (pass name, config slice, upstream output digests), and consults
// a shared PassCache before executing. Two consequences fall out:
//
//   - Shared sub-results across scenario variants. Fifty what-if variants
//     of one base scenario differ only in their timeline slice, so their
//     "sample" passes digest identically — the base population is sampled
//     once and every variant binds the cached value (asserted by the sweep
//     driver's per-pass execution counters).
//   - Dirty-node sweeps. Changing one timeline parameter changes the
//     timeline pass's config digest, which cascades through downstream
//     digests; upstream passes keep hitting the cache and only the dirty
//     suffix re-executes. Re-running an unchanged pipeline executes
//     nothing at all.
//
// Digests deliberately exclude lane count and pool identity: every stage is
// bit-identical for any lane count (the replay guarantee the golden suite
// pins), so a cached result is valid across thread configurations.
//
// The runtime is type-agnostic (PipelineValue erases the payload); the
// standard scenario passes are registered by core/scenario_pipeline.h.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.h"
#include "engine/thread_pool.h"

namespace nbv6::engine {

// --------------------------------------------------------------- digests

/// FNV-1a accumulator for pass config-slice digests. Doubles are folded by
/// bit pattern, so a digest is equal iff every input is bit-identical —
/// the same equality the golden serializer uses.
class DigestBuilder {
 public:
  DigestBuilder& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
    return *this;
  }
  DigestBuilder& i64(std::int64_t v) {
    return u64(static_cast<std::uint64_t>(v));
  }
  DigestBuilder& f64(double v);  // bit pattern, not value
  DigestBuilder& str(std::string_view s) {
    for (unsigned char c : s) {
      h_ ^= c;
      h_ *= 0x100000001b3ull;
    }
    return u64(s.size());  // length-delimit: "ab","c" != "a","bc"
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

// ---------------------------------------------------------------- values

/// Type-erased, immutable, shareable pass result. Cache entries and bound
/// resources hold the same shared payload, so a cache hit never copies.
class PipelineValue {
 public:
  PipelineValue() = default;

  template <typename T>
  static PipelineValue wrap(T value) {
    PipelineValue v;
    v.ptr_ = std::make_shared<const T>(std::move(value));
    v.type_ = &typeid(T);
    return v;
  }

  template <typename T>
  [[nodiscard]] const T& get() const {
    if (ptr_ == nullptr)
      throw std::logic_error("PipelineValue::get on an empty value");
    if (*type_ != typeid(T))
      throw std::logic_error(std::string("PipelineValue::get type mismatch: "
                                         "held ") +
                             type_->name() + ", asked for " + typeid(T).name());
    return *static_cast<const T*>(ptr_.get());
  }

  [[nodiscard]] bool has_value() const { return ptr_ != nullptr; }

 private:
  std::shared_ptr<const void> ptr_;
  const std::type_info* type_ = nullptr;
};

// ----------------------------------------------------------------- cache

/// Content-addressed pass-result store, shared across pipelines (the
/// vehicle for cross-variant reuse in scenario sweeps). Keyed by the pass
/// digest; the value is the pass's output list, output-index aligned.
///
/// Entries also record the producing pass's name and output count, and a
/// lookup whose name or count disagrees is a miss: a 64-bit digest
/// collision between two different passes must never bind one pass's
/// outputs (wrong arity, wrong types) as another's.
///
/// Thread-safe: find/store/erase take an internal lock, and find copies
/// the entry out (PipelineValue is a shared handle, so the copy is a few
/// refcount bumps, not a fleet result). The old "pointer valid until the
/// next store" contract is gone — it was unenforceable once the forest
/// scheduler started storing from concurrent passes.
class PassCache {
 public:
  /// Hit iff the digest maps to an entry stored by a pass with the same
  /// name and output count; nullopt otherwise.
  [[nodiscard]] std::optional<std::vector<PipelineValue>> find(
      std::uint64_t digest, std::string_view pass,
      std::size_t output_count) const;
  void store(std::uint64_t digest, std::string_view pass,
             std::vector<PipelineValue> outputs);
  /// Drop the entry (transient-resource release); name-guarded like find.
  /// Returns whether an entry was removed.
  bool erase(std::uint64_t digest, std::string_view pass);

  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Entry {
    std::string pass;
    std::vector<PipelineValue> outputs;
  };
  mutable core::Mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> map_ NBV6_GUARDED_BY(mutex_);
};

// ---------------------------------------------------------------- passes

class Pipeline;

namespace detail {
struct ForestRun;  // scheduler implementation, defined in pipeline.cpp
}  // namespace detail

/// What a pass's run function sees: its bound inputs, a place to put its
/// outputs, and the run's worker pool.
class PassContext {
 public:
  /// Input resource by name; throws std::logic_error if the pass did not
  /// declare it (undeclared reads would break digest soundness).
  template <typename T>
  [[nodiscard]] const T& in(std::string_view resource) const {
    return input_value(resource).get<T>();
  }
  /// Bind one declared output. Every declared output must be set exactly
  /// once; the runtime throws otherwise.
  template <typename T>
  void out(std::string_view resource, T value) {
    set_output(resource, PipelineValue::wrap(std::move(value)));
  }

  /// The run's pool; nullptr = sequential. Passes must produce
  /// lane-invariant results (everything built on the fleet stages does).
  [[nodiscard]] ThreadPool* pool() const { return pool_; }

  [[nodiscard]] const PipelineValue& input_value(std::string_view name) const;
  void set_output(std::string_view name, PipelineValue v);

 private:
  friend class Pipeline;
  friend struct detail::ForestRun;
  const std::vector<std::string>* input_names_ = nullptr;
  const std::vector<PipelineValue*>* inputs_ = nullptr;
  const std::vector<std::string>* output_names_ = nullptr;
  std::vector<PipelineValue>* outputs_ = nullptr;
  ThreadPool* pool_ = nullptr;
};

/// One registered pass. `config_digest` must cover every configuration
/// input the run function reads that is not a declared resource — it is
/// the pass's half of the content hash, so an undigested config read makes
/// cache reuse unsound.
struct Pass {
  std::string name;                   ///< unique within the pipeline
  std::vector<std::string> inputs;    ///< resource names consumed
  std::vector<std::string> outputs;   ///< resource names produced (unique)
  std::uint64_t config_digest = 0;
  /// false = sink/side-effecting pass: never cached, re-executes every run
  /// (its outputs still participate in scheduling and downstream digests).
  bool cache_outputs = true;
  std::function<void(PassContext&)> run;
};

// -------------------------------------------------------------- pipeline

class Pipeline {
 public:
  /// Register a pass. Throws std::invalid_argument on a duplicate pass
  /// name, a duplicate output resource, or a missing run function.
  Pipeline& add(Pass pass);

  /// Replace a registered pass wholesale (same-name passes swap in place,
  /// keeping execution counters) — the in-place path for dirty-node
  /// experiments. Throws std::invalid_argument if no such pass exists.
  Pipeline& replace(const Pass& pass);

  /// Update just the config digest of `pass` (marks it — and transitively
  /// everything downstream — dirty on the next run if the digest changed).
  /// Only sound when the pass's run function reads the changed config via
  /// shared state; passes that capture config by value need replace().
  void set_config_digest(std::string_view pass, std::uint64_t digest);

  struct PassRun {
    std::string pass;
    std::uint64_t digest = 0;
    bool cached = false;
  };
  struct RunStats {
    std::size_t executed = 0;
    std::size_t cached = 0;
    std::vector<PassRun> passes;  ///< in schedule order
  };

  /// Execute every pass in topological order. With a cache, digest-matching
  /// passes bind their cached outputs instead of running. Throws
  /// std::invalid_argument on an input no pass produces and on dependency
  /// cycles. `pool` is handed to pass contexts; it never affects results.
  /// If a pass throws, the exception propagates and the bound state is
  /// cleared: output_value never serves a mix of stale and fresh resources
  /// from a partially completed run.
  RunStats run(PassCache* cache = nullptr, ThreadPool* pool = nullptr);

  /// A resource bound by the last run. Throws std::logic_error when the
  /// resource is unknown or the pipeline has not run yet.
  [[nodiscard]] const PipelineValue& output_value(
      std::string_view resource) const;
  template <typename T>
  [[nodiscard]] const T& output(std::string_view resource) const {
    return output_value(resource).get<T>();
  }

  /// Lifetime count of actual executions (cache hits excluded) of `pass`.
  [[nodiscard]] std::uint64_t executions(std::string_view pass) const;

  /// Pass names in the schedule order the last run used (or the order the
  /// next run will use, computed on demand).
  [[nodiscard]] std::vector<std::string> schedule();

  [[nodiscard]] std::size_t pass_count() const { return nodes_.size(); }

 private:
  friend class ForestScheduler;
  friend struct detail::ForestRun;

  struct Node {
    Pass pass;
    std::uint64_t executions = 0;
    std::uint64_t last_digest = 0;
  };

  std::size_t index_of(std::string_view pass) const;
  void ensure_order();

  std::vector<Node> nodes_;
  /// resource name -> producing node index.
  std::unordered_map<std::string, std::size_t> producer_;
  /// Topological schedule (registration order among independent passes).
  std::vector<std::size_t> order_;
  bool order_valid_ = false;
  /// resource name -> value bound by the last run.
  std::unordered_map<std::string, PipelineValue> bound_;
};

// ---------------------------------------------------------------- forest

/// Cross-pipeline overlapped scheduler: runs N pipelines that share one
/// PassCache as a single merged frontier, dispatching ready passes from
/// *different* pipelines concurrently as tasks on a ThreadPool (variant B
/// simulates while variant A computes panels). Per-pipeline results are
/// identical to running each pipeline serially — passes are deterministic
/// and lane-invariant, so only wall-clock and peak memory change.
///
/// Two forest-only mechanisms on top of plain per-pipeline runs:
///
///   - In-flight dedup. When two pipelines need the same uncomputed pass
///     (equal digest, same pass name and output arity), the first to become
///     ready executes it and the second binds the finished outputs — the
///     pass runs once for the whole forest even when both variants hit the
///     frontier before either result lands in the cache.
///   - Transient resource release. A resource named in Options::transient
///     is dropped — unbound from every holding pipeline and erased from the
///     cache — as soon as its last consumer anywhere in the forest has run.
///     This caps peak RSS for hundred-variant forests whose intermediates
///     (e.g. planned_fleet) would otherwise all stay live. Transient
///     resources are not retrievable via output_value after the run.
///
/// Passes executed on pool tasks receive a null PassContext::pool() (the
/// pool's one rule is no nested parallel_for from inside a task);
/// cross-variant overlap replaces intra-pass lanes. With workers <= 1 or
/// no pool the same scheduler runs inline on the caller — dedup, release,
/// and stats behave identically, and passes keep Options::pool for
/// intra-pass parallel_for.
///
/// On a pass failure the first exception is rethrown after all in-flight
/// tasks drain, and every pipeline's bound state is cleared (the same
/// no-partial-state rule as Pipeline::run).
class ForestScheduler {
 public:
  struct Options {
    /// Task pool for overlapped execution (also handed to passes when
    /// running inline). nullptr or workers <= 1 = inline scheduling.
    ThreadPool* pool = nullptr;
    /// Maximum passes in flight at once (effective concurrency is capped
    /// by the pool size).
    int workers = 1;
    /// Resource names to release once their last forest consumer ran.
    /// A transient should have at least one consumer in every pipeline
    /// that produces it; a consumerless instance is released as soon as
    /// every pipeline producing it has bound it (never earlier — an early
    /// release would evict the cache entry a digest-identical twin
    /// producer still needs, breaking forest-wide dedup).
    std::vector<std::string> transient;
  };
  struct Stats {
    std::size_t executed = 0;   ///< passes actually run
    std::size_t cached = 0;     ///< passes bound from the shared cache
    std::size_t deduped = 0;    ///< passes bound from an in-flight twin
    std::size_t released = 0;   ///< transient instances released
    /// Peak number of transient resource instances live at once — the
    /// residency figure the sweep driver reports (25 variants with release
    /// hold ~1, without release all 25 planned fleets stay resident).
    std::size_t peak_resident = 0;
  };

  /// Run every pipeline in `pipelines` to completion. Pipelines must be
  /// distinct objects; results (bound resources, execution counters) land
  /// exactly as if each had run alone against the same warm cache.
  static Stats run(const std::vector<Pipeline*>& pipelines, PassCache& cache,
                   const Options& opts);
  static Stats run(const std::vector<Pipeline*>& pipelines, PassCache& cache) {
    return run(pipelines, cache, Options{});
  }
};

}  // namespace nbv6::engine
