// Opt-in per-field read tracking for engine::FleetConfig.
//
// PRs 8–9 made pass identity hinge on hand-written digest slices
// (core/scenario_pipeline.cpp): a pass that reads a config field its
// digest does not cover silently serves stale cache hits when that field
// changes — the exact bug class PR 9 chased. This header is the
// enforcement half: every FleetConfig field is wrapped in Tracked<>, and
// while a ConfigReadTracker::Scope is active on the current thread, each
// const read of a field sets its bit in a per-scope bitmap. The digest
// auditor (audit_scenario_passes + tests/digest_audit_test.cpp) runs every
// pass under one scope for its digest computation and another for its
// body, then fails if the body read a field the digest slice missed.
//
// Cost model: with no active scope (all production paths), a read is one
// thread_local pointer load and a branch. Nothing allocates. Copying a
// config never records — a pass capturing cfg by value must not charge the
// whole struct to its read set; only the fields the pass body actually
// touches count.
//
// Field access syntax after wrapping:
//   - scalars read as before (implicit conversion): `cfg.days / 2`
//   - struct members go through operator->: `cfg.timeline->events`
//   - whole-struct reads convert implicitly: `apply_timeline(f, cfg.timeline, ...)`
//   - writes that need a raw lvalue use `.mut()`: `parse_int(v, cfg.days.mut())`
//   - varargs (std::printf) must use `.get()`: Tracked is deliberately
//     non-trivially-copyable, so passing one through `...` is a hard
//     compile error instead of silent UB.
#pragma once

#include <bitset>
#include <cstddef>
#include <string_view>
#include <utility>

namespace nbv6::engine {

/// One bit per FleetConfig field. Order is load-bearing only for the
/// bitmap layout; names are the API (see to_string).
enum class ConfigField : unsigned {
  residences,
  days,
  threads,
  seed,
  dual_stack_isp_frac,
  broken_v6_frac,
  heavy_streamer_frac,
  background_only_frac,
  opt_out_frac,
  absence_prob,
  activity_scale_min,
  activity_scale_max,
  arrival,
  timeline,
  kCount,
};

inline constexpr std::size_t kConfigFieldCount =
    static_cast<std::size_t>(ConfigField::kCount);

/// Which fields were read, one bit per ConfigField.
using ConfigReadSet = std::bitset<kConfigFieldCount>;

constexpr std::string_view to_string(ConfigField f) {
  switch (f) {
    case ConfigField::residences: return "residences";
    case ConfigField::days: return "days";
    case ConfigField::threads: return "threads";
    case ConfigField::seed: return "seed";
    case ConfigField::dual_stack_isp_frac: return "dual_stack_isp_frac";
    case ConfigField::broken_v6_frac: return "broken_v6_frac";
    case ConfigField::heavy_streamer_frac: return "heavy_streamer_frac";
    case ConfigField::background_only_frac: return "background_only_frac";
    case ConfigField::opt_out_frac: return "opt_out_frac";
    case ConfigField::absence_prob: return "absence_prob";
    case ConfigField::activity_scale_min: return "activity_scale_min";
    case ConfigField::activity_scale_max: return "activity_scale_max";
    case ConfigField::arrival: return "arrival";
    case ConfigField::timeline: return "timeline";
    case ConfigField::kCount: break;
  }
  return "?";
}

/// Thread-local read recorder. Tracking is off unless a Scope is alive on
/// the current thread; scopes nest (the innermost one records).
class ConfigReadTracker {
 public:
  /// Records a field read into the active scope, if any.
  static void record(ConfigField f) {
    if (active_ != nullptr) active_->set(static_cast<std::size_t>(f));
  }

  /// RAII activation. The audit runs pipelines inline (no pool), so every
  /// read a pass makes lands on the thread that owns the scope.
  class Scope {
   public:
    Scope() : prev_(active_) { active_ = &reads_; }
    ~Scope() { active_ = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    [[nodiscard]] const ConfigReadSet& reads() const { return reads_; }

   private:
    ConfigReadSet reads_;
    ConfigReadSet* prev_;
  };

 private:
  inline static thread_local ConfigReadSet* active_ = nullptr;
};

/// A FleetConfig field: holds a T, records ConfigField F on const reads.
template <typename T, ConfigField F>
class Tracked {
 public:
  Tracked() = default;
  // Implicit by design: keeps `Tracked<int, ...> days = 30;` initializers
  // and `cfg.days = 3;` assignments reading like the plain field did.
  Tracked(T v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)

  // User-provided copies: (a) copying never records — a by-value lambda
  // capture of the whole config is not a "read" of every field; (b) the
  // type is non-trivially-copyable, so passing it through varargs
  // (std::printf) is a compile error instead of undefined behavior.
  Tracked(const Tracked& o) : v_(o.v_) {}
  Tracked(Tracked&& o) noexcept : v_(std::move(o.v_)) {}
  Tracked& operator=(const Tracked& o) {
    v_ = o.v_;
    return *this;
  }
  Tracked& operator=(Tracked&& o) noexcept {
    v_ = std::move(o.v_);
    return *this;
  }
  ~Tracked() = default;

  /// Recorded read; also fires on every implicit use of a scalar field.
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator const T&() const {
    ConfigReadTracker::record(F);
    return v_;
  }
  /// Recorded read, spelled out — required at varargs call sites.
  [[nodiscard]] const T& get() const {
    ConfigReadTracker::record(F);
    return v_;
  }
  /// Recorded member read for struct-valued fields: cfg.timeline->events.
  const T* operator->() const {
    ConfigReadTracker::record(F);
    return &v_;
  }
  /// Unrecorded member write access (parse/setup paths).
  T* operator->() { return &v_; }
  /// Unrecorded mutable lvalue, for out-parameter writes and setup code.
  [[nodiscard]] T& mut() { return v_; }

  friend bool operator==(const Tracked& a, const Tracked& b) {
    return a.v_ == b.v_;
  }
  /// Heterogeneous compare (EXPECT_EQ(cfg.days, 3)): a recorded read.
  /// Without this, Tracked==T is ambiguous between the implicit conversion
  /// in each direction.
  template <typename U>
  friend bool operator==(const Tracked& a, const U& b) {
    ConfigReadTracker::record(F);
    return a.v_ == b;
  }

 private:
  T v_{};
};

}  // namespace nbv6::engine
