#include "engine/pipeline.h"

#include <algorithm>
#include <bit>

namespace nbv6::engine {

DigestBuilder& DigestBuilder::f64(double v) {
  return u64(std::bit_cast<std::uint64_t>(v));
}

// ----------------------------------------------------------------- cache

const std::vector<PipelineValue>* PassCache::find(std::uint64_t digest) const {
  auto it = map_.find(digest);
  return it == map_.end() ? nullptr : &it->second;
}

void PassCache::store(std::uint64_t digest, std::vector<PipelineValue> outputs) {
  map_[digest] = std::move(outputs);
}

// --------------------------------------------------------------- context

const PipelineValue& PassContext::input_value(std::string_view name) const {
  for (std::size_t i = 0; i < input_names_->size(); ++i) {
    if ((*input_names_)[i] == name) return *(*inputs_)[i];
  }
  throw std::logic_error("pass reads undeclared input '" + std::string(name) +
                         "'");
}

void PassContext::set_output(std::string_view name, PipelineValue v) {
  for (std::size_t i = 0; i < output_names_->size(); ++i) {
    if ((*output_names_)[i] == name) {
      if ((*outputs_)[i].has_value())
        throw std::logic_error("pass sets output '" + std::string(name) +
                               "' twice");
      (*outputs_)[i] = std::move(v);
      return;
    }
  }
  throw std::logic_error("pass sets undeclared output '" + std::string(name) +
                         "'");
}

// -------------------------------------------------------------- pipeline

Pipeline& Pipeline::add(Pass pass) {
  if (!pass.run)
    throw std::invalid_argument("pass '" + pass.name + "' has no run function");
  for (const auto& n : nodes_) {
    if (n.pass.name == pass.name)
      throw std::invalid_argument("duplicate pass name '" + pass.name + "'");
  }
  for (const auto& out : pass.outputs) {
    if (producer_.contains(out))
      throw std::invalid_argument("resource '" + out +
                                  "' already has a producer");
  }
  const std::size_t idx = nodes_.size();
  for (const auto& out : pass.outputs) producer_.emplace(out, idx);
  nodes_.push_back(Node{std::move(pass), 0, 0});
  order_valid_ = false;
  return *this;
}

Pipeline& Pipeline::replace(const Pass& pass) {
  const std::size_t idx = index_of(pass.name);
  if (!pass.run)
    throw std::invalid_argument("pass '" + pass.name + "' has no run function");
  // Re-key the producer map: the replacement may rename outputs.
  for (const auto& out : nodes_[idx].pass.outputs) producer_.erase(out);
  for (const auto& out : pass.outputs) {
    if (producer_.contains(out)) {
      // Roll back before throwing so the pipeline stays consistent.
      for (const auto& old : nodes_[idx].pass.outputs)
        producer_.emplace(old, idx);
      throw std::invalid_argument("resource '" + out +
                                  "' already has a producer");
    }
  }
  for (const auto& out : pass.outputs) producer_.emplace(out, idx);
  nodes_[idx].pass = pass;
  order_valid_ = false;
  return *this;
}

void Pipeline::set_config_digest(std::string_view pass, std::uint64_t digest) {
  nodes_[index_of(pass)].pass.config_digest = digest;
}

std::size_t Pipeline::index_of(std::string_view pass) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].pass.name == pass) return i;
  }
  throw std::invalid_argument("unknown pass '" + std::string(pass) + "'");
}

void Pipeline::ensure_order() {
  if (order_valid_) return;
  order_.clear();
  order_.reserve(nodes_.size());

  // Kahn's algorithm over producer edges, visiting ready passes in
  // registration order so the schedule is deterministic.
  std::vector<std::size_t> pending(nodes_.size(), 0);
  std::vector<std::vector<std::size_t>> dependents(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& in : nodes_[i].pass.inputs) {
      auto it = producer_.find(in);
      if (it == producer_.end())
        throw std::invalid_argument("pass '" + nodes_[i].pass.name +
                                    "' consumes resource '" + in +
                                    "' that no pass produces");
      dependents[it->second].push_back(i);
      ++pending[i];
    }
  }
  std::vector<bool> scheduled(nodes_.size(), false);
  bool progressed = true;
  while (order_.size() < nodes_.size() && progressed) {
    progressed = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (scheduled[i] || pending[i] != 0) continue;
      scheduled[i] = true;
      order_.push_back(i);
      for (std::size_t dep : dependents[i]) --pending[dep];
      progressed = true;
    }
  }
  if (order_.size() < nodes_.size()) {
    std::string cyclic;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!scheduled[i]) cyclic += (cyclic.empty() ? "" : ", ") + nodes_[i].pass.name;
    }
    throw std::invalid_argument("dependency cycle among passes: " + cyclic);
  }
  order_valid_ = true;
}

Pipeline::RunStats Pipeline::run(PassCache* cache, ThreadPool* pool) {
  ensure_order();
  bound_.clear();

  RunStats stats;
  stats.passes.reserve(order_.size());
  // Per-resource digests for the digest cascade: a resource's digest is
  // its producing pass's digest folded with the output's position.
  std::unordered_map<std::string, std::uint64_t> resource_digest;

  for (std::size_t idx : order_) {
    Node& node = nodes_[idx];
    const Pass& pass = node.pass;

    DigestBuilder db;
    db.str(pass.name).u64(pass.config_digest);
    for (const auto& in : pass.inputs) db.u64(resource_digest.at(in));
    const std::uint64_t digest = db.value();
    node.last_digest = digest;
    for (std::size_t o = 0; o < pass.outputs.size(); ++o) {
      resource_digest[pass.outputs[o]] =
          DigestBuilder().u64(digest).u64(o).value();
    }

    const std::vector<PipelineValue>* hit =
        (cache != nullptr && pass.cache_outputs) ? cache->find(digest)
                                                 : nullptr;
    if (hit != nullptr) {
      for (std::size_t o = 0; o < pass.outputs.size(); ++o)
        bound_[pass.outputs[o]] = (*hit)[o];
      ++stats.cached;
      stats.passes.push_back({pass.name, digest, true});
      continue;
    }

    std::vector<PipelineValue*> inputs;
    inputs.reserve(pass.inputs.size());
    for (const auto& in : pass.inputs) inputs.push_back(&bound_.at(in));
    std::vector<PipelineValue> outputs(pass.outputs.size());

    PassContext ctx;
    ctx.input_names_ = &pass.inputs;
    ctx.inputs_ = &inputs;
    ctx.output_names_ = &pass.outputs;
    ctx.outputs_ = &outputs;
    ctx.pool_ = pool;
    pass.run(ctx);

    for (std::size_t o = 0; o < outputs.size(); ++o) {
      if (!outputs[o].has_value())
        throw std::logic_error("pass '" + pass.name +
                               "' did not set declared output '" +
                               pass.outputs[o] + "'");
      bound_[pass.outputs[o]] = outputs[o];
    }
    if (cache != nullptr && pass.cache_outputs)
      cache->store(digest, std::move(outputs));
    ++node.executions;
    ++stats.executed;
    stats.passes.push_back({pass.name, digest, false});
  }
  return stats;
}

const PipelineValue& Pipeline::output_value(std::string_view resource) const {
  auto it = bound_.find(std::string(resource));
  if (it == bound_.end())
    throw std::logic_error("resource '" + std::string(resource) +
                           "' is not bound (unknown, or the pipeline has not "
                           "run)");
  return it->second;
}

std::uint64_t Pipeline::executions(std::string_view pass) const {
  return nodes_[index_of(pass)].executions;
}

std::vector<std::string> Pipeline::schedule() {
  ensure_order();
  std::vector<std::string> out;
  out.reserve(order_.size());
  for (std::size_t idx : order_) out.push_back(nodes_[idx].pass.name);
  return out;
}

}  // namespace nbv6::engine
