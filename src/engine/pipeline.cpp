#include "engine/pipeline.h"

#include <algorithm>
#include <bit>
#include <deque>
#include <exception>
#include <map>
#include <utility>

#include "core/thread_annotations.h"

namespace nbv6::engine {

DigestBuilder& DigestBuilder::f64(double v) {
  return u64(std::bit_cast<std::uint64_t>(v));
}

// ----------------------------------------------------------------- cache

std::optional<std::vector<PipelineValue>> PassCache::find(
    std::uint64_t digest, std::string_view pass,
    std::size_t output_count) const {
  core::MutexLock lock(mutex_);
  auto it = map_.find(digest);
  if (it == map_.end()) return std::nullopt;
  // A digest collision across passes (different name, or same name with a
  // different arity after a replace()) must read as a miss, not as someone
  // else's outputs.
  if (it->second.pass != pass || it->second.outputs.size() != output_count)
    return std::nullopt;
  return it->second.outputs;  // copies shared handles, not payloads
}

void PassCache::store(std::uint64_t digest, std::string_view pass,
                      std::vector<PipelineValue> outputs) {
  core::MutexLock lock(mutex_);
  map_[digest] = Entry{std::string(pass), std::move(outputs)};
}

bool PassCache::erase(std::uint64_t digest, std::string_view pass) {
  core::MutexLock lock(mutex_);
  auto it = map_.find(digest);
  if (it == map_.end() || it->second.pass != pass) return false;
  map_.erase(it);
  return true;
}

std::size_t PassCache::size() const {
  core::MutexLock lock(mutex_);
  return map_.size();
}

void PassCache::clear() {
  core::MutexLock lock(mutex_);
  map_.clear();
}

// --------------------------------------------------------------- context

const PipelineValue& PassContext::input_value(std::string_view name) const {
  for (std::size_t i = 0; i < input_names_->size(); ++i) {
    if ((*input_names_)[i] == name) return *(*inputs_)[i];
  }
  throw std::logic_error("pass reads undeclared input '" + std::string(name) +
                         "'");
}

void PassContext::set_output(std::string_view name, PipelineValue v) {
  for (std::size_t i = 0; i < output_names_->size(); ++i) {
    if ((*output_names_)[i] == name) {
      if ((*outputs_)[i].has_value())
        throw std::logic_error("pass sets output '" + std::string(name) +
                               "' twice");
      (*outputs_)[i] = std::move(v);
      return;
    }
  }
  throw std::logic_error("pass sets undeclared output '" + std::string(name) +
                         "'");
}

// -------------------------------------------------------------- pipeline

Pipeline& Pipeline::add(Pass pass) {
  if (!pass.run)
    throw std::invalid_argument("pass '" + pass.name + "' has no run function");
  for (const auto& n : nodes_) {
    if (n.pass.name == pass.name)
      throw std::invalid_argument("duplicate pass name '" + pass.name + "'");
  }
  for (const auto& out : pass.outputs) {
    if (producer_.contains(out))
      throw std::invalid_argument("resource '" + out +
                                  "' already has a producer");
  }
  const std::size_t idx = nodes_.size();
  for (const auto& out : pass.outputs) producer_.emplace(out, idx);
  nodes_.push_back(Node{std::move(pass), 0, 0});
  order_valid_ = false;
  return *this;
}

Pipeline& Pipeline::replace(const Pass& pass) {
  const std::size_t idx = index_of(pass.name);
  if (!pass.run)
    throw std::invalid_argument("pass '" + pass.name + "' has no run function");
  // Re-key the producer map: the replacement may rename outputs.
  for (const auto& out : nodes_[idx].pass.outputs) producer_.erase(out);
  for (const auto& out : pass.outputs) {
    if (producer_.contains(out)) {
      // Roll back before throwing so the pipeline stays consistent.
      for (const auto& old : nodes_[idx].pass.outputs)
        producer_.emplace(old, idx);
      throw std::invalid_argument("resource '" + out +
                                  "' already has a producer");
    }
  }
  for (const auto& out : pass.outputs) producer_.emplace(out, idx);
  nodes_[idx].pass = pass;
  order_valid_ = false;
  return *this;
}

void Pipeline::set_config_digest(std::string_view pass, std::uint64_t digest) {
  nodes_[index_of(pass)].pass.config_digest = digest;
}

std::size_t Pipeline::index_of(std::string_view pass) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].pass.name == pass) return i;
  }
  throw std::invalid_argument("unknown pass '" + std::string(pass) + "'");
}

void Pipeline::ensure_order() {
  if (order_valid_) return;
  order_.clear();
  order_.reserve(nodes_.size());

  // Kahn's algorithm over producer edges, visiting ready passes in
  // registration order so the schedule is deterministic.
  std::vector<std::size_t> pending(nodes_.size(), 0);
  std::vector<std::vector<std::size_t>> dependents(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& in : nodes_[i].pass.inputs) {
      auto it = producer_.find(in);
      if (it == producer_.end())
        throw std::invalid_argument("pass '" + nodes_[i].pass.name +
                                    "' consumes resource '" + in +
                                    "' that no pass produces");
      dependents[it->second].push_back(i);
      ++pending[i];
    }
  }
  std::vector<bool> scheduled(nodes_.size(), false);
  bool progressed = true;
  while (order_.size() < nodes_.size() && progressed) {
    progressed = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (scheduled[i] || pending[i] != 0) continue;
      scheduled[i] = true;
      order_.push_back(i);
      for (std::size_t dep : dependents[i]) --pending[dep];
      progressed = true;
    }
  }
  if (order_.size() < nodes_.size()) {
    std::string cyclic;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!scheduled[i]) cyclic += (cyclic.empty() ? "" : ", ") + nodes_[i].pass.name;
    }
    throw std::invalid_argument("dependency cycle among passes: " + cyclic);
  }
  order_valid_ = true;
}

Pipeline::RunStats Pipeline::run(PassCache* cache, ThreadPool* pool) {
  ensure_order();
  bound_.clear();

  RunStats stats;
  stats.passes.reserve(order_.size());
  // Per-resource digests for the digest cascade: a resource's digest is
  // its producing pass's digest folded with the output's position.
  std::unordered_map<std::string, std::uint64_t> resource_digest;

  // A pass failure must not leave bound_ half-populated from this run —
  // output_value would serve a mix of fresh upstream results and nothing
  // downstream, indistinguishable from a completed run. Failure clears
  // everything: no resource is bound until a run completes.
  try {
    for (std::size_t idx : order_) {
      Node& node = nodes_[idx];
      const Pass& pass = node.pass;

      DigestBuilder db;
      db.str(pass.name).u64(pass.config_digest);
      for (const auto& in : pass.inputs) db.u64(resource_digest.at(in));
      const std::uint64_t digest = db.value();
      node.last_digest = digest;
      for (std::size_t o = 0; o < pass.outputs.size(); ++o) {
        resource_digest[pass.outputs[o]] =
            DigestBuilder().u64(digest).u64(o).value();
      }

      std::optional<std::vector<PipelineValue>> hit;
      if (cache != nullptr && pass.cache_outputs)
        hit = cache->find(digest, pass.name, pass.outputs.size());
      if (hit) {
        for (std::size_t o = 0; o < pass.outputs.size(); ++o)
          bound_[pass.outputs[o]] = std::move((*hit)[o]);
        ++stats.cached;
        stats.passes.push_back({pass.name, digest, true});
        continue;
      }

      std::vector<PipelineValue*> inputs;
      inputs.reserve(pass.inputs.size());
      for (const auto& in : pass.inputs) inputs.push_back(&bound_.at(in));
      std::vector<PipelineValue> outputs(pass.outputs.size());

      PassContext ctx;
      ctx.input_names_ = &pass.inputs;
      ctx.inputs_ = &inputs;
      ctx.output_names_ = &pass.outputs;
      ctx.outputs_ = &outputs;
      ctx.pool_ = pool;
      pass.run(ctx);

      for (std::size_t o = 0; o < outputs.size(); ++o) {
        if (!outputs[o].has_value())
          throw std::logic_error("pass '" + pass.name +
                                 "' did not set declared output '" +
                                 pass.outputs[o] + "'");
        bound_[pass.outputs[o]] = outputs[o];
      }
      if (cache != nullptr && pass.cache_outputs)
        cache->store(digest, pass.name, std::move(outputs));
      ++node.executions;
      ++stats.executed;
      stats.passes.push_back({pass.name, digest, false});
    }
  } catch (...) {
    bound_.clear();
    throw;
  }
  return stats;
}

const PipelineValue& Pipeline::output_value(std::string_view resource) const {
  auto it = bound_.find(std::string(resource));
  if (it == bound_.end())
    throw std::logic_error("resource '" + std::string(resource) +
                           "' is not bound (unknown, or the pipeline has not "
                           "run)");
  return it->second;
}

std::uint64_t Pipeline::executions(std::string_view pass) const {
  return nodes_[index_of(pass)].executions;
}

std::vector<std::string> Pipeline::schedule() {
  ensure_order();
  std::vector<std::string> out;
  out.reserve(order_.size());
  for (std::size_t idx : order_) out.push_back(nodes_[idx].pass.name);
  return out;
}

// ---------------------------------------------------------------- forest

namespace detail {

/// One pipeline pass in the merged forest frontier.
struct ForestNode {
  Pipeline* pipe = nullptr;
  std::size_t node_idx = 0;             ///< into pipe->nodes_
  std::uint64_t digest = 0;
  std::size_t pending = 0;              ///< producer edges not yet satisfied
  std::vector<std::size_t> dependents;  ///< forest indices, same pipeline
  /// Input pointers into pipe->bound_, prepared under the scheduler lock
  /// when the node turns ready; element addresses are rehash-stable, so an
  /// executing task reads them without touching the map itself.
  std::vector<PipelineValue*> inputs;
  bool registered_inflight = false;
  bool scheduled = false;  ///< on_ready already fired for this node
  bool done = false;
};

/// One transient resource instance — a (name, resource digest) value,
/// possibly bound by several pipelines that share it through the cache.
struct TransientInstance {
  std::string name;
  std::uint64_t producer_digest = 0;  ///< cache key of the producing pass
  std::string producer_pass;
  bool producer_cacheable = true;
  /// Cache entries hold the producer's whole output list, so the entry is
  /// erased on release only when every output of that pass is transient.
  bool producer_all_transient = true;
  std::size_t remaining = 0;          ///< forest-wide consumers not yet done
  /// Holder producer nodes not yet finished. Release waits for this to hit
  /// zero as well as `remaining`: erasing the cache entry while a
  /// digest-identical twin's producer is still pending would force the twin
  /// to re-execute a deduped pass (and double-count the release).
  std::size_t producers_pending = 0;
  std::vector<Pipeline*> holders;     ///< pipelines binding this instance
  bool live = false;                  ///< produced and not yet released
};

struct ForestRun {
 public:
  ForestRun(const std::vector<Pipeline*>& pipelines, PassCache& cache,
            const ForestScheduler::Options& opts)
      : pipes_(pipelines),
        cache_(cache),
        opts_(opts),
        workers_(std::max(1, opts.workers)),
        parallel_(opts.pool != nullptr && opts.workers > 1) {}

  ForestScheduler::Stats run() {
    {
      core::MutexLock lock(m_);
      prepare();
      // Seed in (pipeline order, schedule order): deterministic, so which
      // digest-equal twin becomes the runner and which become waiters never
      // depends on thread timing for frontier-level passes.
      for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].pending == 0) on_ready(i);
    }
    if (parallel_)
      drive_parallel();
    else
      drive_inline();
    // Both drivers have quiesced every task, but the analysis only knows
    // error_/stats_ as guarded state — copy them out under the lock.
    std::exception_ptr err;
    ForestScheduler::Stats stats;
    {
      core::MutexLock lock(m_);
      err = error_;
      stats = stats_;
    }
    if (err) {
      // Same no-partial-state rule as Pipeline::run — a failed forest
      // leaves no pipeline serving a stale/fresh mix.
      for (Pipeline* p : pipes_) p->bound_.clear();
      std::rethrow_exception(err);
    }
    return stats;
  }

 private:
  // ------------------------------------------------------------- build

  void prepare() NBV6_REQUIRES(m_) {
    for (Pipeline* p : pipes_) {
      if (p == nullptr)
        throw std::invalid_argument("ForestScheduler: null pipeline");
      p->ensure_order();
      p->bound_.clear();
    }
    for (std::size_t a = 0; a < pipes_.size(); ++a)
      for (std::size_t b = a + 1; b < pipes_.size(); ++b)
        if (pipes_[a] == pipes_[b])
          throw std::invalid_argument(
              "ForestScheduler: the same pipeline appears twice");

    const std::vector<std::string>& transient = opts_.transient;
    auto is_transient = [&transient](const std::string& name) {
      return std::find(transient.begin(), transient.end(), name) !=
             transient.end();
    };

    // Instances keyed by (resource name, resource digest): pipelines whose
    // producer digests agree share one instance (and one payload).
    std::map<std::pair<std::string, std::uint64_t>, std::size_t> instance_key;

    for (Pipeline* p : pipes_) {
      // Digests are a pure function of the graph, so the whole cascade is
      // computable up front, exactly as Pipeline::run does in order.
      std::unordered_map<std::string, std::uint64_t> resource_digest;
      std::unordered_map<std::size_t, std::size_t> forest_idx;  // node->forest
      for (std::size_t idx : p->order_) {
        Pipeline::Node& node = p->nodes_[idx];
        const Pass& pass = node.pass;
        DigestBuilder db;
        db.str(pass.name).u64(pass.config_digest);
        for (const auto& in : pass.inputs) db.u64(resource_digest.at(in));
        const std::uint64_t digest = db.value();
        node.last_digest = digest;
        for (std::size_t o = 0; o < pass.outputs.size(); ++o) {
          resource_digest[pass.outputs[o]] =
              DigestBuilder().u64(digest).u64(o).value();
        }
        ForestNode fn;
        fn.pipe = p;
        fn.node_idx = idx;
        fn.digest = digest;
        fn.pending = pass.inputs.size();
        forest_idx.emplace(idx, nodes_.size());
        nodes_.push_back(std::move(fn));
      }
      for (std::size_t idx : p->order_) {  // deterministic edge order
        const std::size_t fi = forest_idx.at(idx);
        for (const auto& in : p->nodes_[idx].pass.inputs)
          nodes_[forest_idx.at(p->producer_.at(in))].dependents.push_back(fi);
      }

      // Transient bookkeeping for this pipeline: producer side...
      for (const std::string& name : transient) {
        auto pit = p->producer_.find(name);
        if (pit == p->producer_.end()) continue;
        const Pipeline::Node& prod = p->nodes_[pit->second];
        const auto key = std::make_pair(name, resource_digest.at(name));
        auto [kit, created] =
            instance_key.emplace(key, instances_.size());
        if (created) {
          TransientInstance inst;
          inst.name = name;
          inst.producer_digest = prod.last_digest;
          inst.producer_pass = prod.pass.name;
          inst.producer_cacheable = prod.pass.cache_outputs;
          inst.producer_all_transient = true;
          for (const auto& out : prod.pass.outputs)
            if (!is_transient(out)) inst.producer_all_transient = false;
          instances_.push_back(std::move(inst));
        }
        instances_[kit->second].holders.push_back(p);
        ++instances_[kit->second].producers_pending;
        instance_of_.emplace(std::make_pair(p, name), kit->second);
      }
      // ...and consumer side (one decrement per declared input occurrence).
      for (const auto& node : p->nodes_) {
        for (const auto& in : node.pass.inputs) {
          auto iit = instance_of_.find(std::make_pair(p, in));
          if (iit != instance_of_.end()) ++instances_[iit->second].remaining;
        }
      }
    }
  }

  // ---------------------------------------------- scheduling (lock held)

  const Pass& pass_of(const ForestNode& n) const {
    return n.pipe->nodes_[n.node_idx].pass;
  }

  void on_ready(std::size_t i) NBV6_REQUIRES(m_) {
    ForestNode& n = nodes_[i];
    // Fire-once guard: a warm-cache hit during seeding completes a frontier
    // node synchronously, and finish_node's recursion can complete its
    // dependents (pending now 0) before the seed loop reaches them — the
    // loop must not re-ready a node the recursion already handled.
    if (n.scheduled) return;
    n.scheduled = true;
    const Pass& pass = pass_of(n);
    // Prepare input pointers while the lock serializes bound_ mutations;
    // the executing task then only dereferences stable element addresses.
    n.inputs.clear();
    n.inputs.reserve(pass.inputs.size());
    for (const auto& in : pass.inputs)
      n.inputs.push_back(&n.pipe->bound_.at(in));

    if (pass.cache_outputs) {
      if (auto hit = cache_.find(n.digest, pass.name, pass.outputs.size())) {
        bind_outputs(i, *hit);
        ++stats_.cached;
        finish_node(i);
        return;
      }
      auto fit = inflight_.find(n.digest);
      if (fit != inflight_.end()) {
        if (fit->second.pass == pass.name &&
            fit->second.output_count == pass.outputs.size()) {
          fit->second.waiters.push_back(i);  // dedup: bind when the twin lands
          return;
        }
        // Digest collision with a different in-flight pass: run separately.
      } else {
        inflight_.emplace(n.digest,
                          InFlight{pass.name, pass.outputs.size(), {}});
        n.registered_inflight = true;
      }
    }
    ready_.push_back(i);
  }

  void bind_outputs(std::size_t i, const std::vector<PipelineValue>& outputs)
      NBV6_REQUIRES(m_) {
    ForestNode& n = nodes_[i];
    const Pass& pass = pass_of(n);
    for (std::size_t o = 0; o < pass.outputs.size(); ++o)
      n.pipe->bound_[pass.outputs[o]] = outputs[o];
  }

  /// Post-bind bookkeeping: transient production/consumption accounting,
  /// then readiness propagation (which may recurse through cache-hit
  /// chains). Callers bind the node — and every dedup waiter sharing the
  /// result — *before* any finish_node call, so a release triggered here
  /// can never race a sibling's bind.
  void finish_node(std::size_t i) NBV6_REQUIRES(m_) {
    ForestNode& n = nodes_[i];
    const Pass& pass = pass_of(n);
    n.done = true;
    ++done_count_;

    for (const auto& out : pass.outputs) {
      auto iit = instance_of_.find(std::make_pair(n.pipe, out));
      if (iit == instance_of_.end()) continue;
      TransientInstance& inst = instances_[iit->second];
      if (!inst.live) {
        inst.live = true;
        ++resident_;
        stats_.peak_resident = std::max(stats_.peak_resident, resident_);
      }
      --inst.producers_pending;
      // Consumerless transient: released once the last producing pipeline
      // has bound it, not on first production — an early release would
      // erase the cache entry a digest-identical twin still needs.
      if (inst.producers_pending == 0 && inst.remaining == 0) release(inst);
    }
    for (const auto& in : pass.inputs) {
      auto iit = instance_of_.find(std::make_pair(n.pipe, in));
      if (iit == instance_of_.end()) continue;
      TransientInstance& inst = instances_[iit->second];
      if (--inst.remaining == 0 && inst.producers_pending == 0 && inst.live)
        release(inst);
    }

    for (std::size_t d : n.dependents)
      if (--nodes_[d].pending == 0) on_ready(d);
  }

  void release(TransientInstance& inst) NBV6_REQUIRES(m_) {
    inst.live = false;
    --resident_;
    ++stats_.released;
    for (Pipeline* p : inst.holders) p->bound_.erase(inst.name);
    if (inst.producer_cacheable && inst.producer_all_transient)
      cache_.erase(inst.producer_digest, inst.producer_pass);
  }

  void complete_executed(std::size_t i, std::vector<PipelineValue> outputs)
      NBV6_REQUIRES(m_) {
    ForestNode& n = nodes_[i];
    const Pass& pass = pass_of(n);
    ++n.pipe->nodes_[n.node_idx].executions;
    ++stats_.executed;

    std::vector<std::size_t> waiters;
    if (n.registered_inflight) {
      auto fit = inflight_.find(n.digest);
      waiters = std::move(fit->second.waiters);
      inflight_.erase(fit);
    }
    bind_outputs(i, outputs);
    for (std::size_t w : waiters) bind_outputs(w, outputs);
    if (pass.cache_outputs)
      cache_.store(n.digest, pass.name, std::move(outputs));
    finish_node(i);
    for (std::size_t w : waiters) {
      ++stats_.deduped;
      finish_node(w);
    }
  }

  void dispatch_locked() NBV6_REQUIRES(m_) {
    while (!aborting_ && running_ < static_cast<std::size_t>(workers_) &&
           !ready_.empty()) {
      const std::size_t i = ready_.back();
      ready_.pop_back();
      ++running_;
      opts_.pool->submit([this, i] { run_task(i); });
    }
  }

  // --------------------------------------------------------- execution

  /// Runs the pass body. No lock: inputs were pinned at ready time and the
  /// pass definition is immutable for the duration of the forest run.
  std::vector<PipelineValue> execute(std::size_t i, ThreadPool* pass_pool) {
    ForestNode& n = nodes_[i];
    const Pass& pass = pass_of(n);
    std::vector<PipelineValue> outputs(pass.outputs.size());
    PassContext ctx;
    ctx.input_names_ = &pass.inputs;
    ctx.inputs_ = &n.inputs;
    ctx.output_names_ = &pass.outputs;
    ctx.outputs_ = &outputs;
    ctx.pool_ = pass_pool;
    pass.run(ctx);
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      if (!outputs[o].has_value())
        throw std::logic_error("pass '" + pass.name +
                               "' did not set declared output '" +
                               pass.outputs[o] + "'");
    }
    return outputs;
  }

  /// Body of a pool task: never lets an exception reach worker_loop.
  void run_task(std::size_t i) {
    std::vector<PipelineValue> outputs;
    std::exception_ptr err;
    try {
      // Overlapped passes run with a null pool: no nested parallel_for
      // from inside a pool task — cross-variant overlap replaces lanes.
      outputs = execute(i, nullptr);
    } catch (...) {
      err = std::current_exception();
    }
    {
      core::MutexLock lock(m_);
      --running_;
      if (err != nullptr) {
        if (!error_) error_ = err;
        aborting_ = true;
        nodes_[i].done = true;
        ++done_count_;
      } else if (aborting_) {
        nodes_[i].done = true;  // drained post-abort: discard the result
        ++done_count_;
      } else {
        complete_executed(i, std::move(outputs));
      }
      dispatch_locked();
      // Notify under the lock: the waiter in drive_parallel destroys this
      // ForestRun (and cv_) as soon as it observes running_ == 0, so an
      // unlocked notify could touch a dead condition variable.
      cv_.notify_all();
    }
  }

  void drive_parallel() {
    core::MutexLock lock(m_);
    dispatch_locked();
    // Aborting leaves queued-but-undispatched nodes in ready_; draining
    // the running tasks is all that is required before unwinding. The
    // predicate is an explicit loop (not a lambda) so the analysis sees the
    // guarded reads happen with the lock held.
    while (!(running_ == 0 && (aborting_ || ready_.empty()))) cv_.wait(lock);
    // A stall is reported through error_, not thrown here: run()'s rollback
    // (clear every pipeline's bound_) only fires on the error_ path, and a
    // stalled forest must not leave pipelines serving partial state.
    if (!error_ && done_count_ != nodes_.size()) error_ = stall_error();
  }

  void drive_inline() {
    for (;;) {
      std::size_t i;
      {
        core::MutexLock lock(m_);
        if (error_ || done_count_ == nodes_.size()) break;
        if (ready_.empty()) {
          error_ = stall_error();  // see drive_parallel: rollback needs error_
          break;
        }
        i = ready_.back();
        ready_.pop_back();
      }
      std::vector<PipelineValue> outputs;
      std::exception_ptr err;
      try {
        // Inline execution happens on the caller, so passes may keep the
        // pool for intra-pass parallel_for.
        outputs = execute(i, opts_.pool);
      } catch (...) {
        err = std::current_exception();
      }
      core::MutexLock lock(m_);
      if (err != nullptr) {
        if (!error_) error_ = err;
      } else {
        complete_executed(i, std::move(outputs));
      }
    }
  }

  std::exception_ptr stall_error() const NBV6_REQUIRES(m_) {
    return std::make_exception_ptr(
        std::logic_error("ForestScheduler stalled: " +
                         std::to_string(nodes_.size() - done_count_) +
                         " passes never became ready"));
  }

  struct InFlight {
    std::string pass;
    std::size_t output_count = 0;
    std::vector<std::size_t> waiters;
  };

  const std::vector<Pipeline*>& pipes_;
  PassCache& cache_;
  const ForestScheduler::Options& opts_;
  const int workers_;
  const bool parallel_;

  /// Structurally guarded by m_ but deliberately NOT annotated: execute()
  /// reads nodes_[i].inputs and the pass definition lock-free by protocol —
  /// both are pinned under the lock in on_ready() and immutable until the
  /// task's completion handler retakes the lock. A GUARDED_BY here would
  /// force execute() under the mutex and serialize every pass body.
  std::vector<ForestNode> nodes_;

  core::Mutex m_;
  core::CondVar cv_;
  std::vector<TransientInstance> instances_ NBV6_GUARDED_BY(m_);
  /// (pipeline, resource name) -> transient instance index.
  std::map<std::pair<const Pipeline*, std::string>, std::size_t> instance_of_
      NBV6_GUARDED_BY(m_);
  /// LIFO: newly-unblocked passes run before older frontier entries, so a
  /// variant's chain drains depth-first and its transients release before
  /// the scheduler fans out to the next variant — this is what keeps peak
  /// residency near the worker count instead of the variant count.
  std::deque<std::size_t> ready_ NBV6_GUARDED_BY(m_);
  std::unordered_map<std::uint64_t, InFlight> inflight_ NBV6_GUARDED_BY(m_);
  std::size_t running_ NBV6_GUARDED_BY(m_) = 0;
  std::size_t done_count_ NBV6_GUARDED_BY(m_) = 0;
  std::size_t resident_ NBV6_GUARDED_BY(m_) = 0;
  bool aborting_ NBV6_GUARDED_BY(m_) = false;
  std::exception_ptr error_ NBV6_GUARDED_BY(m_);
  ForestScheduler::Stats stats_ NBV6_GUARDED_BY(m_);
};

}  // namespace detail

ForestScheduler::Stats ForestScheduler::run(
    const std::vector<Pipeline*>& pipelines, PassCache& cache,
    const Options& opts) {
  if (pipelines.empty()) return {};
  detail::ForestRun run(pipelines, cache, opts);
  return run.run();
}

}  // namespace nbv6::engine
