#include "engine/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>

namespace nbv6::engine {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    threads = std::max(threads, 1);
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    core::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    core::MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      core::MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }

  // One batch state shared by every lane; lanes drain the ticket counter.
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::atomic<int> lanes_done{0};
    core::Mutex m;
    core::CondVar done;
    std::exception_ptr error NBV6_GUARDED_BY(m);  ///< first throw, any lane
  };
  auto batch = std::make_shared<Batch>();

  // Record a lane's throw (first one wins) and stop handing out tickets so
  // the remaining lanes drain quickly instead of finishing the batch.
  auto capture = [batch, count](std::exception_ptr e) {
    {
      core::MutexLock lock(batch->m);
      if (!batch->error) batch->error = std::move(e);
    }
    batch->next.store(count, std::memory_order_relaxed);
  };

  auto lane = [batch, count, &fn] {
    for (;;) {
      std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      fn(i);
    }
  };

  // The caller is one lane; pool workers add up to count-1 more. Worker
  // lanes must never let an exception reach worker_loop (an unwound pool
  // thread would terminate the process); they capture it for the caller to
  // rethrow instead.
  const int extra = static_cast<int>(
      std::min<std::size_t>(workers_.size(), count - 1));
  for (int w = 0; w < extra; ++w) {
    submit([batch, lane, capture] {
      try {
        lane();
      } catch (...) {
        capture(std::current_exception());
      }
      {
        core::MutexLock lock(batch->m);
        batch->lanes_done.fetch_add(1, std::memory_order_relaxed);
      }
      batch->done.notify_one();
    });
  }
  // Run the caller's lane, but never unwind past the wait: the submitted
  // tasks reference `fn` and caller-owned state, so they must all drain
  // before this frame can die — even when fn throws.
  try {
    lane();
  } catch (...) {
    capture(std::current_exception());
  }

  // Wait for the extra lanes; each increments lanes_done exactly once.
  std::exception_ptr error;
  {
    core::MutexLock lock(batch->m);
    while (batch->lanes_done.load() != extra) batch->done.wait(lock);
    // All lanes have drained: the pool is reusable and batch state is
    // stable. Copy the error out while the lock shows the analysis the
    // guarded read is safe.
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace nbv6::engine
