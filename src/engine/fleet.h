// Fleet engine: population-scale residence simulation.
//
// The paper measures five instrumented households; reproducing its
// population-level claims (Table 1 daily means across residences, the
// cross-residence Wilcoxon comparisons) needs *many* residences run under
// one roof. The fleet engine simulates N residences concurrently — each
// worker lane owns a shard consisting of the residence's own RNG (seeded
// per residence), its own FlatConntrack table, and its own FlowMonitor —
// and reduces shard monitors into one fleet-level view in residence-index
// order. Because residences share no mutable state and the reduction is a
// fixed-order fold over associative counter merges, a T-thread run is
// bit-identical to the sequential run of the same seeds for any T.
//
// FleetConfig is the scenario layer: one small config (parseable from a
// key=value file) describes a whole deployment — dual-stack rollout
// fraction, broken-CPE households, heavy streamers, vacant homes, privacy
// opt-outs, scripted absences — from which sample_fleet() deterministically
// derives per-residence ResidenceConfigs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/config_tracking.h"
#include "engine/thread_pool.h"
#include "engine/timeline.h"
#include "flowmon/monitor.h"
#include "traffic/generator.h"
#include "traffic/residence.h"
#include "traffic/service_catalog.h"

namespace nbv6::engine {

/// A whole deployment in one value. Fractions are probabilities applied
/// independently per residence; every derived quantity depends only on
/// (seed, residence index), never on sampling order or thread count.
///
/// Every field is wrapped in Tracked<> (engine/config_tracking.h) so the
/// digest-coverage auditor can record which fields each pipeline pass
/// actually reads. Scalars behave like the bare type; struct fields
/// (arrival, timeline) are reached via `->`; out-parameter writes use
/// `.mut()`; varargs call sites use `.get()`.
struct FleetConfig {
  Tracked<int, ConfigField::residences> residences = 64;
  Tracked<int, ConfigField::days> days = 30;
  /// Worker lanes. <= 0 selects hardware concurrency; 1 runs on the
  /// calling thread only (the sequential reference).
  Tracked<int, ConfigField::threads> threads = 0;
  Tracked<std::uint64_t, ConfigField::seed> seed = 1;

  // ---- population mix -------------------------------------------------
  /// Fraction of households whose ISP delegates IPv6 at all (v4-only ISPs
  /// leave every device without working IPv6).
  Tracked<double, ConfigField::dual_stack_isp_frac> dual_stack_isp_frac = 0.85;
  /// Among dual-stack homes: fraction with partly broken device IPv6
  /// (Residence C's pattern).
  Tracked<double, ConfigField::broken_v6_frac> broken_v6_frac = 0.10;
  /// Households whose service mix is dominated by streaming/downloads.
  Tracked<double, ConfigField::heavy_streamer_frac> heavy_streamer_frac = 0.25;
  /// Vacant or instrumentation-only homes: background chatter only.
  Tracked<double, ConfigField::background_only_frac> background_only_frac =
      0.05;
  /// Privacy opt-outs: the router sees only part of the household.
  Tracked<double, ConfigField::opt_out_frac> opt_out_frac = 0.20;
  /// Chance of one scripted multi-day absence window (spring-break style).
  Tracked<double, ConfigField::absence_prob> absence_prob = 0.30;
  /// Interactive activity range (mean sessions per fully-active hour).
  Tracked<double, ConfigField::activity_scale_min> activity_scale_min = 1.0;
  Tracked<double, ConfigField::activity_scale_max> activity_scale_max = 9.5;

  // ---- arrivals --------------------------------------------------------
  /// How sessions land inside each simulated day: the original per-hour
  /// batch (default, golden-pinned) or an open-loop tick-sliced arrival
  /// process. Config keys: `arrival.mode = batch|poisson|uniform` and
  /// `arrival.ticks_per_hour = N` (1..3600). Copied onto every sampled
  /// ResidenceConfig by sample_fleet.
  Tracked<traffic::ArrivalConfig, ConfigField::arrival> arrival;

  // ---- timeline --------------------------------------------------------
  /// Scheduled mid-observation changes (rollout waves, CPE fixes, outages,
  /// NAT64 migrations, seasonal scaling). Built from repeatable
  /// "timeline.<kind> = ..." config lines; see engine/timeline.h.
  /// Applied by FleetEngine::run(FleetConfig) — or explicitly via
  /// apply_timeline() when sampling by hand.
  Tracked<Timeline, ConfigField::timeline> timeline;

  /// Parse "key = value" lines ('#' starts a comment). The parse fails on:
  /// unknown keys, malformed or non-finite numbers, fractions outside
  /// [0, 1], activity_scale_min/max that are negative or inverted, any
  /// scalar key given twice, and any timeline event whose window starts at
  /// or past the horizon (start_day >= days — it could never fire).
  /// "timeline.<kind>" keys are the one exception to the duplicate rule:
  /// each occurrence appends one event, in file order (ordering is part of
  /// the deterministic derivation). On failure, a non-null `error` receives
  /// a one-line "line N: ..." message naming the offending key or token —
  /// nothing is ever silently ignored.
  static std::optional<FleetConfig> parse(std::string_view text,
                                          std::string* error = nullptr);
  /// Load from a file via parse(). nullopt if unreadable or invalid; the
  /// optional `error` distinguishes the two.
  static std::optional<FleetConfig> load(const std::string& path,
                                         std::string* error = nullptr);

  friend bool operator==(const FleetConfig&, const FleetConfig&) = default;
};

/// Which population strata a sampled residence fell into — the group
/// labels the fleet-statistics layer compares across (dual-stack vs
/// broken-CPE, streamer vs baseline, ...). Pure function of (seed, index),
/// recorded at sampling time so group membership never has to be
/// re-inferred from simulated traffic.
struct ResidenceTraits {
  bool dual_stack_isp = false;  ///< ISP delegates IPv6 at all
  bool broken_v6 = false;       ///< dual-stack but flaky CPE/device IPv6
  bool heavy_streamer = false;
  bool vacant = false;           ///< background chatter only
  bool opt_out = false;          ///< partial router visibility
  bool scripted_absence = false;

  friend bool operator==(const ResidenceTraits&,
                         const ResidenceTraits&) = default;
};

/// A sampled population with its stratum labels, index-aligned.
struct SampledFleet {
  std::vector<traffic::ResidenceConfig> configs;
  std::vector<ResidenceTraits> traits;
};

/// Deterministically sample the residence population described by `cfg`.
/// The catalog supplies service names for the per-household mix tilts.
std::vector<traffic::ResidenceConfig> sample_fleet(
    const FleetConfig& cfg, const traffic::ServiceCatalog& catalog);

/// sample_fleet() plus the per-residence stratum labels. Draws the exact
/// same RNG stream, so .configs is identical to sample_fleet()'s output.
SampledFleet sample_fleet_detailed(const FleetConfig& cfg,
                                   const traffic::ServiceCatalog& catalog);

/// One shard's outcome: the residence, its generator stats, and its
/// monitor (detached — the shard's conntrack table died with the worker).
struct ResidenceRun {
  traffic::ResidenceConfig config;
  traffic::SimulationStats stats;
  flowmon::FlowMonitor monitor;
};

struct FleetResult {
  /// Index-aligned with the input configs.
  std::vector<ResidenceRun> residences;
  /// Stratum labels, index-aligned with `residences`. Filled when the run
  /// started from a FleetConfig or SampledFleet; empty for raw config
  /// vectors (no sampling happened, so there are no strata).
  std::vector<ResidenceTraits> traits;
  /// All shard monitors merged in residence-index order; feeds the
  /// existing core analyses (analyze_residence, as_usage, ...) unchanged.
  flowmon::FlowMonitor fleet;
  /// Horizon totals plus the merged per-day session-stat series
  /// (totals.daily[d] = day d summed across every residence).
  traffic::SimulationStats totals;
};

/// Batch aggregation engine. Since the RunSpec unification
/// (engine/run_spec.h) this is a pool-owning convenience over the shared
/// stage functions — run(FleetConfig) is a thin wrapper over RunSpec.
class FleetEngine {
 public:
  /// `threads` as FleetConfig::threads.
  explicit FleetEngine(const traffic::ServiceCatalog& catalog,
                       int threads = 0);

  /// Simulate every residence and reduce. Deterministic for fixed configs
  /// regardless of the engine's thread count.
  FleetResult run(const std::vector<traffic::ResidenceConfig>& configs);

  /// run(fleet.configs) carrying the stratum labels into the result.
  FleetResult run(const SampledFleet& fleet);

  /// sample_fleet_detailed() + apply_timeline() + run() in one step: the
  /// full scenario pipeline, timeline included. `mode` selects lazy
  /// (default) or materialized day plans — byte-identical outcomes, see
  /// TimelinePlanMode.
  FleetResult run(const FleetConfig& cfg,
                  TimelinePlanMode mode = TimelinePlanMode::lazy);

  /// Total worker lanes (pool workers + the calling thread).
  [[nodiscard]] int lanes() const { return lanes_; }

  /// The engine's pool (nullptr when lanes() == 1); usable for the
  /// parallel statistics paths between fleet runs.
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }

 private:
  const traffic::ServiceCatalog* catalog_;
  int lanes_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace nbv6::engine
