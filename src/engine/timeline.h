// Scenario timelines: conditions that change mid-observation.
//
// The paper's longitudinal claims come from months of telemetry in which
// the world does not hold still — devices gain IPv6 when the ISP finally
// delegates a prefix, broken CPE gets a firmware fix, connectivity dies
// for days at a time, access networks migrate behind NAT64/CGN, and
// activity breathes with the seasons. The static FleetConfig scenario
// layer samples one ResidenceConfig per home and keeps it for the whole
// horizon; this module adds the time axis.
//
// A Timeline is an ordered list of typed events parsed from the same
// key=value scenario files ("timeline.<kind> = k=v k=v ..." lines, one
// per event, repeatable). Every per-residence decision an event makes —
// whether a home is affected, on which day its flip/fix/migration lands —
// is a pure function of (scenario seed, event ordinal, residence index),
// and the resulting day state is a pure function of (seed, index, day).
// Nothing depends on sampling order, population size beyond the index, or
// engine thread count, so a timeline replay is bit-identical for any lane
// count — the invariant the golden-replay suite pins.
//
// apply_timeline() materializes the day states into per-day DayPlan
// entries on each sampled ResidenceConfig; the traffic generator consults
// the plan at the start of every simulated day.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace nbv6::engine {

struct FleetConfig;
struct ResidenceTraits;
struct SampledFleet;

/// What a timeline event does to the residences it selects.
enum class TimelineEventKind {
  /// ISP rollout wave: a share of v4-only homes gains delegated IPv6, each
  /// on its own uniformly-drawn day inside [start_day, end_day].
  rollout_wave,
  /// CPE firmware fix: a share of broken-IPv6 homes is repaired, each on
  /// its own day inside the window; device IPv6 works from then on.
  cpe_fix,
  /// Multi-day connectivity outage. With duration_days == 0 every affected
  /// home is dark for the whole window (a storm/backhaul incident); with
  /// duration_days > 0 each affected home gets its own outage of that
  /// length starting on a uniformly-drawn day inside the window (CPE
  /// breaks, then gets fixed). Internal LAN traffic continues.
  outage,
  /// NAT64/CGN migration: a share of homes moves to a v6-only access
  /// network on its own day inside the window and stays there. IPv4-only
  /// destinations are reached through RFC 6146 translation (64:ff9b::/96),
  /// so WAN-side traffic is all-IPv6; devices with broken IPv6 lose
  /// connectivity for the duration.
  nat64_migration,
  /// Seasonal activity scaling: affected homes' interactive activity is
  /// multiplied by 1 + amplitude * sin(2*pi*(day - start_day)/period_days)
  /// inside the window. Multiple seasonal events compose multiplicatively.
  seasonal,
  /// ISP prefix renumbering: each affected home's delegated /56 rotates on
  /// its own uniformly-drawn day inside the window and stays rotated — LAN
  /// devices renumber, so every v6 flow after the rotation carries fresh
  /// source prefixes (churning downstream CryptoPAN prefix caches). Multiple
  /// renumber events compose: each adds one epoch after its drawn day.
  prefix_renumber,
  /// Per-service outage: one catalog service (`svc=` index) becomes
  /// unreachable for affected homes — sessions to it fail while every other
  /// service works. With len == 0 the service is down for the whole window;
  /// with len > 0 each affected home gets its own len-day outage starting
  /// on a uniformly-drawn day inside the window.
  service_outage,
  /// CGN port-pool exhaustion: inside the window, affected homes' IPv4 WAN
  /// sessions share a per-day translation-port budget (`ports=`). Once a
  /// day's budget is spent, further v4 sessions fail; IPv6 traffic is
  /// untouched. Overlapping events take the tightest budget.
  cgn_exhaustion,
  /// Device-fleet turnover drift: affected homes gradually replace devices
  /// with broken IPv6. The working-IPv6 probability ramps linearly from its
  /// static value toward full health across the window — `rate` is the
  /// share of the broken gap closed by the window's end — and the
  /// replacement persists afterwards. Only homes with delegated IPv6 feel
  /// it (a new device without a prefix is still v4-only).
  device_turnover,
  /// Interactive-arrival lambda ramp: affected homes' session rate climbs
  /// linearly across the window from its static value toward `mult` times
  /// it, and holds at `mult` afterwards (adoption of a new service,
  /// work-from-home shifts). Multiple ramps compose multiplicatively; the
  /// composite is clamped to [1/16, 16]. Shapes both the batch per-hour
  /// counts and the open-loop arrival processes.
  lambda_ramp,
  /// Flash crowd: on every day inside the window, affected homes' arrivals
  /// in hour slots [hour, hour + hours) are multiplied by `mult`. The hour
  /// slots come from the event, not a per-home draw, so every affected
  /// home spikes in the same slots — the correlated cross-residence
  /// intra-day surge the open-loop engine exists to express. Overlapping
  /// crowds union their hour masks and multiply their intensities
  /// (clamped to [1/16, 16]).
  flash_crowd,
};

const char* to_string(TimelineEventKind k);

/// One scheduled change. Only the fields a kind documents are read; the
/// parser rejects specs that set fields their kind cannot use.
struct TimelineEvent {
  TimelineEventKind kind = TimelineEventKind::rollout_wave;
  /// Inclusive day window the event acts inside.
  int start_day = 0;
  int end_day = 0;
  /// Share of eligible residences the event touches, in [0, 1].
  double fraction = 1.0;
  /// seasonal only: relative swing in [0, 1].
  double amplitude = 0.3;
  /// seasonal only: full sine period in days; 0 selects 364 (annual).
  int period_days = 0;
  /// outage / service_outage: per-residence outage length; 0 = whole
  /// window for all.
  int duration_days = 0;
  /// service_outage only: catalog service index in [0, 63] (required).
  int service = -1;
  /// cgn_exhaustion only: per-day v4 translation-port budget, >= 0
  /// (required; 0 is legal and means no v4 WAN capacity at all).
  int port_budget = -1;
  /// device_turnover only: share of the broken-IPv6 gap closed by the
  /// window's end, in [0, 1].
  double turnover_rate = 1.0;
  /// lambda_ramp / flash_crowd: rate multiplier in (0, 16] (required).
  double mult = 1.0;
  /// flash_crowd only: first burst hour, 0..23 (required).
  int hour = -1;
  /// flash_crowd only: burst length in hours, 1..24 (slots past hour 23
  /// are dropped, not wrapped).
  int hour_span = 1;

  friend bool operator==(const TimelineEvent&, const TimelineEvent&) = default;
};

/// An ordered event list. Event ordinals (positions in `events`) are part
/// of the deterministic derivation, so edits that reorder events change
/// the replay — append new events to keep existing goldens stable.
struct Timeline {
  std::vector<TimelineEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Parse one event spec: `kind` is the text after "timeline." in the
  /// config key ("rollout_wave", "cpe_fix", "outage", "nat64_migration",
  /// "seasonal", "prefix_renumber", "service_outage", "cgn_exhaustion",
  /// "device_turnover", "lambda_ramp", "flash_crowd"); `spec` is the
  /// value — whitespace-separated k=v pairs over keys {day, start, end,
  /// frac, amp, period, len, svc, ports, rate, mult, hour, hours}.
  /// `day=N` is shorthand for `start=N end=N`. Unknown kinds,
  /// unknown or kind-inapplicable keys, values outside their documented
  /// ranges, NaN/inf, and end < start all fail the parse; when `error` is
  /// non-null it receives a one-line description naming the offending
  /// token (never silently ignored).
  static std::optional<TimelineEvent> parse_event(std::string_view kind,
                                                  std::string_view spec,
                                                  std::string* error = nullptr);

  friend bool operator==(const Timeline&, const Timeline&) = default;
};

/// The effective condition of residence `index` on `day` after every event
/// is applied to its sampled base traits. Pure function of (seed, index,
/// day, horizon, base) — see the file comment for why that purity matters.
struct TimelineDayState {
  bool isp_v6 = false;       ///< ISP delegates IPv6 this day
  bool cpe_broken = false;   ///< device IPv6 still flaky this day
  bool outage = false;       ///< external connectivity down this day
  bool nat64 = false;        ///< behind a v6-only (NAT64) access network
  double activity_mult = 1.0;  ///< seasonal interactive-activity multiplier
  /// Delegated-prefix generation: 0 until a prefix_renumber event lands,
  /// +1 per landed rotation. Changes every LAN v6 source prefix.
  int prefix_epoch = 0;
  /// Bit s set = catalog service s is unreachable this day.
  std::uint64_t service_down_mask = 0;
  /// Per-day v4 CGN port budget; -1 = unconstrained. Overlapping
  /// cgn_exhaustion events take the minimum.
  int cgn_port_budget = -1;
  /// Share of the broken-IPv6 device gap closed by turnover so far, in
  /// [0, 1]; concurrent turnover events compose as independent repairs.
  double v6_ok_uplift = 0.0;
  /// Composite lambda_ramp multiplier; exactly 1.0 when no ramp applies
  /// (the bit-identity batch-mode goldens rely on).
  double lambda_mult = 1.0;
  /// Union of active flash-crowd hour slots (bit h = hour h bursts).
  std::uint32_t flash_hour_mask = 0;
  /// Composite flash-crowd intensity for masked hours; exactly 1.0 when no
  /// crowd is active.
  double flash_mult = 1.0;

  friend bool operator==(const TimelineDayState&,
                         const TimelineDayState&) = default;
};

/// `days` is the scenario horizon: event windows are clamped to
/// [start_day, days - 1] before the per-residence day draw, so "to the
/// horizon" windows (no `end=` in the spec) stagger changes across the
/// simulated period rather than an unbounded future.
TimelineDayState timeline_day_state(const Timeline& tl, std::uint64_t seed,
                                    int index, int day, int days,
                                    const ResidenceTraits& base);

/// How apply_timeline hands day plans to the traffic layer.
enum class TimelinePlanMode {
  /// Install a per-residence DayPlanFn that computes timeline_day_state on
  /// the fly (one evaluation per simulated day). Memory stays
  /// O(lanes x days) — nothing proportional to residences x days is ever
  /// allocated. The default, and bit-identical to `materialized` (pinned by
  /// the golden-replay suite and the lazy/materialized parity tests).
  lazy,
  /// Materialize residences x days DayPlan entries up front (~32 B per
  /// day per home). Kept as the parity reference and for callers that want
  /// to inspect or mutate plans directly.
  materialized,
};

/// Hand the timeline's per-day plans to every sampled config — lazily by
/// default (see TimelinePlanMode), or materialized on request. A no-op for
/// an empty timeline, leaving the static fast path untouched. `seed` and
/// `days` are the scenario's master seed and horizon. Idempotent: each call
/// recomputes from scratch and clears the other mode's state.
void apply_timeline(SampledFleet& fleet, const Timeline& tl,
                    std::uint64_t seed, int days,
                    TimelinePlanMode mode = TimelinePlanMode::lazy);

// ------------------------------------------------ shared config parsing
// Helpers shared by FleetConfig::parse and Timeline::parse_event so the
// scalar and timeline sections of a scenario file agree on lexing rules.
namespace cfgparse {

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);
/// Strict full-string parses; reject trailing junk. parse_double also
/// rejects NaN and infinities — no scenario knob has a non-finite meaning.
bool parse_double(std::string_view v, double& out);
bool parse_int(std::string_view v, int& out);
bool parse_u64(std::string_view v, std::uint64_t& out);

}  // namespace cfgparse

}  // namespace nbv6::engine
