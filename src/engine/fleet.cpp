#include "engine/fleet.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "engine/run_spec.h"

namespace nbv6::engine {

std::optional<FleetConfig> FleetConfig::parse(std::string_view text,
                                              std::string* error) {
  using cfgparse::parse_double;
  using cfgparse::parse_int;
  using cfgparse::parse_u64;
  using cfgparse::trim;

  auto fail = [error](std::string message) -> std::nullopt_t {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  auto at_line = [](int line_no, std::string_view rest) {
    return "line " + std::to_string(line_no) + ": " + std::string(rest);
  };

  FleetConfig cfg;
  // Scalar keys may appear at most once: a config that sets the same knob
  // twice is almost certainly a copy-paste error, and silently letting the
  // last line win would make two scenario files that look different run
  // identically (or vice versa).
  std::set<std::string, std::less<>> seen;
  // Event source lines, ordinal-aligned with cfg.timeline.events, so the
  // post-loop horizon check can name the offending line.
  std::vector<int> event_lines;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    if (auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      return fail(at_line(line_no, "missing '=' in '" + std::string(line) +
                                       "'"));
    std::string_view key = trim(line.substr(0, eq));
    std::string_view val = trim(line.substr(eq + 1));

    // Timeline events: repeatable by design (each line appends one event),
    // so they bypass the duplicate-key check.
    if (key.starts_with("timeline.")) {
      std::string ev_error;
      auto ev = Timeline::parse_event(key.substr(9), val, &ev_error);
      if (!ev)
        return fail(at_line(line_no, std::string(key) + ": " + ev_error));
      cfg.timeline->events.push_back(*ev);
      event_lines.push_back(line_no);
      continue;
    }

    if (!seen.insert(std::string(key)).second)
      return fail(at_line(line_no, "duplicate key '" + std::string(key) +
                                       "'"));

    // Fractions are per-residence probabilities: outside [0, 1] they are
    // not "clamped intent", they are bugs. parse_double already rejects
    // NaN and infinities for every double-valued key.
    auto frac = [&val](double& out) {
      return parse_double(val, out) && out >= 0.0 && out <= 1.0;
    };
    bool ok;
    if (key == "residences") ok = parse_int(val, cfg.residences.mut());
    else if (key == "days") ok = parse_int(val, cfg.days.mut());
    else if (key == "threads") ok = parse_int(val, cfg.threads.mut());
    else if (key == "seed") ok = parse_u64(val, cfg.seed.mut());
    else if (key == "dual_stack_isp_frac") ok = frac(cfg.dual_stack_isp_frac.mut());
    else if (key == "broken_v6_frac") ok = frac(cfg.broken_v6_frac.mut());
    else if (key == "heavy_streamer_frac") ok = frac(cfg.heavy_streamer_frac.mut());
    else if (key == "background_only_frac") ok = frac(cfg.background_only_frac.mut());
    else if (key == "opt_out_frac") ok = frac(cfg.opt_out_frac.mut());
    else if (key == "absence_prob") ok = frac(cfg.absence_prob.mut());
    else if (key == "activity_scale_min")
      ok = parse_double(val, cfg.activity_scale_min.mut()) &&
           cfg.activity_scale_min >= 0.0;
    else if (key == "activity_scale_max")
      ok = parse_double(val, cfg.activity_scale_max.mut()) &&
           cfg.activity_scale_max >= 0.0;
    else if (key == "arrival.mode")
      ok = traffic::parse_arrival_mode(val, cfg.arrival->mode);
    else if (key == "arrival.ticks_per_hour")
      ok = parse_int(val, cfg.arrival->ticks_per_hour) &&
           cfg.arrival->ticks_per_hour >= 1 &&
           cfg.arrival->ticks_per_hour <= 3600;
    else  // unknown key: fail loudly, not silently
      return fail(at_line(line_no, "unknown key '" + std::string(key) + "'"));
    if (!ok)
      return fail(at_line(line_no, "invalid value '" + std::string(val) +
                                       "' for key '" + std::string(key) +
                                       "'"));
  }
  if (cfg.residences < 1)
    return fail("residences must be >= 1 (got " +
                std::to_string(cfg.residences) + ")");
  if (cfg.days < 1)
    return fail("days must be >= 1 (got " + std::to_string(cfg.days) + ")");
  if (cfg.activity_scale_min > cfg.activity_scale_max)
    return fail("activity_scale_min exceeds activity_scale_max");
  // Timeline events are validated against the horizon only now: `days` may
  // appear anywhere in the file, including after the event lines. An event
  // whose window starts past the last simulated day can never fire — that
  // is a scenario bug (typo'd day, horizon shrunk without moving events),
  // not intent, so it fails the parse. Open-ended windows (no `end=`) and
  // windows whose tail runs past the horizon stay legal: evaluation clamps
  // them to [start_day, days - 1] deterministically.
  for (size_t e = 0; e < cfg.timeline->events.size(); ++e) {
    const auto& ev = cfg.timeline->events[e];
    if (ev.start_day >= cfg.days)
      return fail(at_line(event_lines[e],
                          std::string("timeline.") + to_string(ev.kind) +
                              ": window starts on day " +
                              std::to_string(ev.start_day) +
                              ", at or past the " + std::to_string(cfg.days) +
                              "-day horizon"));
  }
  return cfg;
}

std::optional<FleetConfig> FleetConfig::load(const std::string& path,
                                             std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot read '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), error);
}

std::vector<traffic::ResidenceConfig> sample_fleet(
    const FleetConfig& cfg, const traffic::ServiceCatalog& catalog) {
  return sample_fleet_detailed(cfg, catalog).configs;
}

SampledFleet sample_fleet_detailed(const FleetConfig& cfg,
                                   const traffic::ServiceCatalog& catalog) {
  // Compatibility wrapper: the sampling loop itself lives in
  // engine/run_spec.cpp (sample_stage), the RunDetail::sample stage of the
  // unified run entry point.
  return RunSpec(cfg).detail(RunDetail::sample).run(catalog).sampled;
}

FleetEngine::FleetEngine(const traffic::ServiceCatalog& catalog, int threads)
    : catalog_(&catalog) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    threads = std::max(threads, 1);
  }
  lanes_ = threads;
  // The calling thread is one lane; the pool supplies the rest.
  if (lanes_ > 1) pool_ = std::make_unique<ThreadPool>(lanes_ - 1);
}

FleetResult FleetEngine::run(
    const std::vector<traffic::ResidenceConfig>& configs) {
  return simulate_fleet(*catalog_, configs, pool_.get());
}

FleetResult FleetEngine::run(const SampledFleet& fleet) {
  return simulate_fleet(*catalog_, fleet, pool_.get());
}

FleetResult FleetEngine::run(const FleetConfig& cfg, TimelinePlanMode mode) {
  // Compatibility wrapper over the unified entry point, borrowing this
  // engine's pool so repeated runs keep reusing one set of workers.
  return std::move(*RunSpec(cfg).plan_mode(mode)
                        .run_on(*catalog_, pool_.get(), lanes_)
                        .result);
}

}  // namespace nbv6::engine
