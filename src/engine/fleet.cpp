#include "engine/fleet.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "engine/flat_conntrack.h"
#include "stats/rng.h"

namespace nbv6::engine {

std::optional<FleetConfig> FleetConfig::parse(std::string_view text,
                                              std::string* error) {
  using cfgparse::parse_double;
  using cfgparse::parse_int;
  using cfgparse::parse_u64;
  using cfgparse::trim;

  auto fail = [error](std::string message) -> std::nullopt_t {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  auto at_line = [](int line_no, std::string_view rest) {
    return "line " + std::to_string(line_no) + ": " + std::string(rest);
  };

  FleetConfig cfg;
  // Scalar keys may appear at most once: a config that sets the same knob
  // twice is almost certainly a copy-paste error, and silently letting the
  // last line win would make two scenario files that look different run
  // identically (or vice versa).
  std::set<std::string, std::less<>> seen;
  // Event source lines, ordinal-aligned with cfg.timeline.events, so the
  // post-loop horizon check can name the offending line.
  std::vector<int> event_lines;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    if (auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      return fail(at_line(line_no, "missing '=' in '" + std::string(line) +
                                       "'"));
    std::string_view key = trim(line.substr(0, eq));
    std::string_view val = trim(line.substr(eq + 1));

    // Timeline events: repeatable by design (each line appends one event),
    // so they bypass the duplicate-key check.
    if (key.starts_with("timeline.")) {
      std::string ev_error;
      auto ev = Timeline::parse_event(key.substr(9), val, &ev_error);
      if (!ev)
        return fail(at_line(line_no, std::string(key) + ": " + ev_error));
      cfg.timeline.events.push_back(*ev);
      event_lines.push_back(line_no);
      continue;
    }

    if (!seen.insert(std::string(key)).second)
      return fail(at_line(line_no, "duplicate key '" + std::string(key) +
                                       "'"));

    // Fractions are per-residence probabilities: outside [0, 1] they are
    // not "clamped intent", they are bugs. parse_double already rejects
    // NaN and infinities for every double-valued key.
    auto frac = [&val](double& out) {
      return parse_double(val, out) && out >= 0.0 && out <= 1.0;
    };
    bool ok;
    if (key == "residences") ok = parse_int(val, cfg.residences);
    else if (key == "days") ok = parse_int(val, cfg.days);
    else if (key == "threads") ok = parse_int(val, cfg.threads);
    else if (key == "seed") ok = parse_u64(val, cfg.seed);
    else if (key == "dual_stack_isp_frac") ok = frac(cfg.dual_stack_isp_frac);
    else if (key == "broken_v6_frac") ok = frac(cfg.broken_v6_frac);
    else if (key == "heavy_streamer_frac") ok = frac(cfg.heavy_streamer_frac);
    else if (key == "background_only_frac") ok = frac(cfg.background_only_frac);
    else if (key == "opt_out_frac") ok = frac(cfg.opt_out_frac);
    else if (key == "absence_prob") ok = frac(cfg.absence_prob);
    else if (key == "activity_scale_min")
      ok = parse_double(val, cfg.activity_scale_min) &&
           cfg.activity_scale_min >= 0.0;
    else if (key == "activity_scale_max")
      ok = parse_double(val, cfg.activity_scale_max) &&
           cfg.activity_scale_max >= 0.0;
    else if (key == "arrival.mode")
      ok = traffic::parse_arrival_mode(val, cfg.arrival.mode);
    else if (key == "arrival.ticks_per_hour")
      ok = parse_int(val, cfg.arrival.ticks_per_hour) &&
           cfg.arrival.ticks_per_hour >= 1 && cfg.arrival.ticks_per_hour <= 3600;
    else  // unknown key: fail loudly, not silently
      return fail(at_line(line_no, "unknown key '" + std::string(key) + "'"));
    if (!ok)
      return fail(at_line(line_no, "invalid value '" + std::string(val) +
                                       "' for key '" + std::string(key) +
                                       "'"));
  }
  if (cfg.residences < 1)
    return fail("residences must be >= 1 (got " +
                std::to_string(cfg.residences) + ")");
  if (cfg.days < 1)
    return fail("days must be >= 1 (got " + std::to_string(cfg.days) + ")");
  if (cfg.activity_scale_min > cfg.activity_scale_max)
    return fail("activity_scale_min exceeds activity_scale_max");
  // Timeline events are validated against the horizon only now: `days` may
  // appear anywhere in the file, including after the event lines. An event
  // whose window starts past the last simulated day can never fire — that
  // is a scenario bug (typo'd day, horizon shrunk without moving events),
  // not intent, so it fails the parse. Open-ended windows (no `end=`) and
  // windows whose tail runs past the horizon stay legal: evaluation clamps
  // them to [start_day, days - 1] deterministically.
  for (size_t e = 0; e < cfg.timeline.events.size(); ++e) {
    const auto& ev = cfg.timeline.events[e];
    if (ev.start_day >= cfg.days)
      return fail(at_line(event_lines[e],
                          std::string("timeline.") + to_string(ev.kind) +
                              ": window starts on day " +
                              std::to_string(ev.start_day) +
                              ", at or past the " + std::to_string(cfg.days) +
                              "-day horizon"));
  }
  return cfg;
}

std::optional<FleetConfig> FleetConfig::load(const std::string& path,
                                             std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot read '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), error);
}

std::vector<traffic::ResidenceConfig> sample_fleet(
    const FleetConfig& cfg, const traffic::ServiceCatalog& catalog) {
  return sample_fleet_detailed(cfg, catalog).configs;
}

SampledFleet sample_fleet_detailed(const FleetConfig& cfg,
                                   const traffic::ServiceCatalog& catalog) {
  SampledFleet out;
  out.configs.reserve(static_cast<size_t>(cfg.residences));
  out.traits.reserve(static_cast<size_t>(cfg.residences));

  for (int i = 0; i < cfg.residences; ++i) {
    // Residence i's sampling stream depends only on (seed, i): stable under
    // population resizes and independent of evaluation order.
    std::uint64_t state =
        cfg.seed ^ (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(i) + 1));
    stats::Rng rng(stats::splitmix64(state));

    traffic::ResidenceConfig r;
    r.name = "R" + std::to_string(i);
    r.days = cfg.days;
    r.arrival = cfg.arrival;
    r.seed = stats::splitmix64(state);  // simulator stream, distinct from sampler's

    ResidenceTraits t;
    const bool v6_isp = t.dual_stack_isp = rng.chance(cfg.dual_stack_isp_frac);
    const bool vacant = t.vacant = rng.chance(cfg.background_only_frac);
    const bool heavy = t.heavy_streamer = rng.chance(cfg.heavy_streamer_frac);

    r.activity_scale =
        vacant ? 0.0
               : rng.uniform(cfg.activity_scale_min, cfg.activity_scale_max);
    if (!v6_isp) {
      r.device_v6_ok_frac = 0.0;  // no delegated prefix, nothing to be ok
      r.internal_v6_frac = rng.uniform(0.0, 0.25);  // link-local-ish only
    } else {
      t.broken_v6 = rng.chance(cfg.broken_v6_frac);
      r.device_v6_ok_frac = t.broken_v6 ? rng.uniform(0.2, 0.6) : 1.0;
      r.internal_v6_frac = rng.uniform(0.25, 0.98);
    }
    t.opt_out = rng.chance(cfg.opt_out_frac);
    if (t.opt_out) r.visibility = rng.uniform(0.3, 0.8);
    r.internal_flows_per_hour = rng.uniform(0.4, 6.0);
    r.background_v4_bias = rng.uniform(0.05, 0.9);

    // Service-mix tilt: heavy streamers boost every streaming/download
    // service; everyone else gets a mild random tilt over a few services.
    if (heavy) {
      for (const auto& s : catalog.services()) {
        if (s.profile == traffic::TrafficProfile::streaming ||
            s.profile == traffic::TrafficProfile::download) {
          r.service_weight_overrides.emplace_back(s.name,
                                                  rng.uniform(2.0, 8.0));
        }
      }
    } else {
      for (int k = 0; k < 3; ++k) {
        size_t idx = static_cast<size_t>(rng.below(catalog.size()));
        r.service_weight_overrides.emplace_back(catalog.at(idx).name,
                                                rng.uniform(0.5, 3.0));
      }
    }

    // One scripted absence window when the horizon has room for it.
    if (cfg.days > 14 && rng.chance(cfg.absence_prob)) {
      t.scripted_absence = true;
      int len = static_cast<int>(rng.between(2, 7));
      int first = static_cast<int>(rng.between(3, cfg.days - len - 3));
      r.away_day_ranges.push_back({first, first + len - 1});
    }

    out.configs.push_back(std::move(r));
    out.traits.push_back(t);
  }
  return out;
}

FleetEngine::FleetEngine(const traffic::ServiceCatalog& catalog, int threads)
    : catalog_(&catalog) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    threads = std::max(threads, 1);
  }
  lanes_ = threads;
  // The calling thread is one lane; the pool supplies the rest.
  if (lanes_ > 1) pool_ = std::make_unique<ThreadPool>(lanes_ - 1);
}

FleetResult FleetEngine::run(
    const std::vector<traffic::ResidenceConfig>& configs) {
  FleetResult out;
  out.residences.resize(configs.size());

  // One shard per residence: private RNG (seeded from the config), private
  // flat conntrack table, private monitor. The slot vector is preallocated,
  // so each monitor is attached at its final address and never moves while
  // its table is alive.
  auto run_one = [&](std::size_t i) {
    ResidenceRun& slot = out.residences[i];
    slot.config = configs[i];
    FlatConntrack table;
    slot.monitor.attach(table);
    traffic::ResidenceSimulator sim(*catalog_, configs[i]);
    slot.stats = sim.run(table);
  };

  if (pool_) {
    pool_->parallel_for(configs.size(), run_one);
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) run_one(i);
  }

  // Fixed-order reduction: counter merges are associative and commutative,
  // so the fold order only matters for retained records (none here) — the
  // fleet view is bit-identical for any lane count.
  for (const auto& run : out.residences) {
    out.fleet.merge(run.monitor);
    out.totals += run.stats;  // horizon totals + the per-day series
  }
  return out;
}

FleetResult FleetEngine::run(const SampledFleet& fleet) {
  // Traits index into the residence vector downstream (group comparisons),
  // so a hand-built SampledFleet with mismatched sizes must fail here, not
  // as an out-of-bounds read later.
  if (fleet.traits.size() != fleet.configs.size())
    throw std::invalid_argument(
        "FleetEngine::run: SampledFleet traits/configs size mismatch");
  FleetResult out = run(fleet.configs);
  out.traits = fleet.traits;
  return out;
}

FleetResult FleetEngine::run(const FleetConfig& cfg, TimelinePlanMode mode) {
  SampledFleet sampled = sample_fleet_detailed(cfg, *catalog_);
  apply_timeline(sampled, cfg.timeline, cfg.seed, cfg.days, mode);
  return run(sampled);
}

}  // namespace nbv6::engine
