#include "engine/firehose.h"

#include <algorithm>
#include <thread>

#include "engine/run_spec.h"

namespace nbv6::engine {

Firehose::Firehose(const traffic::ServiceCatalog& catalog, int threads)
    : catalog_(&catalog) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    threads = std::max(threads, 1);
  }
  lanes_ = threads;
  if (lanes_ > 1) pool_ = std::make_unique<ThreadPool>(lanes_ - 1);
}

Firehose::Result Firehose::run(const FleetConfig& cfg, const Sink& sink) {
  // Compatibility wrapper: the streaming loop lives in engine/run_spec.cpp
  // (stream_fleet), selected by RunSpec::firehose.
  RunOutput out =
      RunSpec(cfg).firehose(sink).run_on(*catalog_, pool_.get(), lanes_);
  Result r;
  r.flows = out.flows_streamed;
  r.lanes = out.lanes;
  r.totals = std::move(out.totals);
  return r;
}

}  // namespace nbv6::engine
