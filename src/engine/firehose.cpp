#include "engine/firehose.h"

#include <algorithm>
#include <thread>

#include "traffic/arrival.h"

namespace nbv6::engine {

Firehose::Firehose(const traffic::ServiceCatalog& catalog, int threads)
    : catalog_(&catalog) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    threads = std::max(threads, 1);
  }
  lanes_ = threads;
  if (lanes_ > 1) pool_ = std::make_unique<ThreadPool>(lanes_ - 1);
}

Firehose::Result Firehose::run(const FleetConfig& cfg, const Sink& sink) {
  SampledFleet fleet = sample_fleet_detailed(cfg, *catalog_);
  apply_timeline(fleet, cfg.timeline, cfg.seed, cfg.days,
                 TimelinePlanMode::lazy);

  const size_t n = fleet.configs.size();
  std::vector<traffic::ResidenceSimulator> sims;
  sims.reserve(n);
  for (const auto& rc : fleet.configs) sims.emplace_back(*catalog_, rc);
  std::vector<FlowEventBuffer> buffers(n);
  for (auto& sim : sims) sim.begin_run();

  // Slots per day: hours in batch mode, ticks otherwise (the same clamp
  // the generator's tick loop applies).
  const int tph = cfg.arrival.mode == traffic::ArrivalMode::batch
                      ? 1
                      : std::clamp(cfg.arrival.ticks_per_hour, 1, 3600);
  const int slots_per_day = 24 * tph;

  Result out;
  out.lanes = lanes_;
  std::vector<size_t> cursor(n);

  for (int day = 0; day < cfg.days; ++day) {
    // Lanes fill per-residence buffers independently (no shared state);
    // determinism comes from the merge below, not the fill order.
    auto run_one = [&](std::size_t i) { sims[i].run_day(buffers[i], day); };
    if (pool_) {
      pool_->parallel_for(n, run_one);
    } else {
      for (std::size_t i = 0; i < n; ++i) run_one(i);
    }

    // Canonical merge: tick-major, residence index, generation order.
    // Each buffer's records are already tick-sorted (ticks are simulated
    // in order), so this is a linear cursor sweep, not a sort.
    std::fill(cursor.begin(), cursor.end(), size_t{0});
    for (int tick = 0; tick < slots_per_day; ++tick) {
      for (size_t i = 0; i < n; ++i) {
        auto& ev = buffers[i].events();
        size_t& c = cursor[i];
        while (c < ev.size() && ev[c].tick <= tick) {
          ev[c].residence = static_cast<std::uint32_t>(i);
          sink(ev[c]);
          ++out.flows;
          ++c;
        }
      }
    }
    // Defensive drain: nothing should remain past the last slot, but a
    // record must never be dropped silently.
    for (size_t i = 0; i < n; ++i) {
      auto& ev = buffers[i].events();
      for (size_t& c = cursor[i]; c < ev.size(); ++c) {
        ev[c].residence = static_cast<std::uint32_t>(i);
        sink(ev[c]);
        ++out.flows;
      }
    }
    for (auto& b : buffers) b.clear();
  }

  const auto horizon =
      static_cast<flowmon::Timestamp>(cfg.days) * flowmon::kSecondsPerDay;
  for (size_t i = 0; i < n; ++i) {
    buffers[i].flush(horizon);
    out.totals += sims[i].stats();
  }
  return out;
}

}  // namespace nbv6::engine
