#include "stats/rng.h"

#include <algorithm>
#include <cassert>

namespace nbv6::stats {

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  assert(!weights.empty());
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
    cumulative_.push_back(total);
  }
  assert(total > 0.0);
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // guard against rounding at the top
}

size_t DiscreteSampler::sample(Rng& rng) const {
  double u = rng.uniform();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<size_t>(it - cumulative_.begin());
}

namespace {
std::vector<double> zipf_weights(size_t n, double s) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i)
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  return w;
}
}  // namespace

ZipfSampler::ZipfSampler(size_t n, double s)
    : inner_([&] {
        auto w = zipf_weights(n, s);
        return DiscreteSampler(w);
      }()) {}

}  // namespace nbv6::stats
