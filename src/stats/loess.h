// LOESS — locally weighted regression smoothing (Cleveland 1979).
//
// The smoothing primitive inside STL/MSTL (§3.3 of the paper decomposes
// daily IPv6 fractions with MSTL, whose inner loops are LOESS fits).
// Local linear fits with tricube weights; an optional robustness weight
// vector supports STL's outer iterations.
//
// Two API layers: the vector-returning conveniences below, and
// allocation-free `_into` variants that write into caller-provided output
// spans. STL/MSTL call the `_into` forms with workspace buffers so the
// decomposition inner loops perform no heap allocation; the unit-spaced
// variant additionally never materializes an x array.
#pragma once

#include <span>
#include <vector>

namespace nbv6::stats {

struct LoessConfig {
  /// Number of neighbours in each local fit, as a fraction of n when
  /// `span_points` is 0.
  double span_fraction = 0.3;
  /// Absolute neighbourhood size; overrides span_fraction when > 0.
  int span_points = 0;
  /// Polynomial degree of the local fit: 0 (mean) or 1 (linear).
  int degree = 1;
};

/// Smooth `ys` observed at `xs` (strictly increasing), evaluated back at
/// every xs[i], into `out` (out.size() == ys.size(); `out` must not alias
/// `ys`). `robustness` is either empty or per-point multiplicative weights
/// in [0,1] (STL's outer-loop bisquare weights).
void loess_into(std::span<const double> xs, std::span<const double> ys,
                const LoessConfig& cfg, std::span<const double> robustness,
                std::span<double> out);

/// Unit-spaced variant (x = 0..n-1): no x array needed.
void loess_unit_into(std::span<const double> ys, const LoessConfig& cfg,
                     std::span<const double> robustness,
                     std::span<double> out);

/// Convenience wrappers returning a fresh vector.
std::vector<double> loess(std::span<const double> xs,
                          std::span<const double> ys, const LoessConfig& cfg,
                          std::span<const double> robustness = {});

/// Convenience for unit-spaced series (x = 0..n-1).
std::vector<double> loess(std::span<const double> ys, const LoessConfig& cfg,
                          std::span<const double> robustness = {});

}  // namespace nbv6::stats
