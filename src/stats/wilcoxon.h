// Wilcoxon signed-rank test and Holm-Bonferroni multiple-testing control.
//
// §5.2 of the paper compares IPv6 readiness of cloud-provider pairs over
// shared multi-cloud tenants with a two-sided Wilcoxon signed-rank test,
// reports the effect size r, and controls the family-wise error rate over
// all 67 comparable pairs with Holm-Bonferroni at α = 0.05. This module is
// that exact statistical machinery.
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace nbv6::stats {

struct WilcoxonResult {
  /// Number of non-zero paired differences actually tested.
  size_t n = 0;
  /// Sum of ranks of positive differences (the W+ statistic).
  double w_plus = 0;
  /// Two-sided p-value. Exact distribution when n <= 25 and there are no
  /// ties among |differences|; normal approximation (with tie and
  /// continuity corrections) otherwise.
  double p_value = 1.0;
  /// Signed standardized statistic; >0 means first sample tends larger.
  double z = 0;
  /// Effect size r = Z / sqrt(n), in [-1, 1]; the colour scale of Fig. 12.
  double effect_size_r = 0;
};

/// Paired two-sided test on xs vs ys. Zero differences are discarded
/// (Wilcoxon's original treatment, scipy zero_method="wilcox"), as are
/// non-finite ones (NaN undefined-metric sentinels have no rank). Returns
/// nullopt — a defined no-result, never NaN statistics or UB — when the
/// lengths differ or no testable difference remains.
std::optional<WilcoxonResult> wilcoxon_signed_rank(std::span<const double> xs,
                                                   std::span<const double> ys);

/// Test directly on precomputed differences.
std::optional<WilcoxonResult> wilcoxon_signed_rank(
    std::span<const double> diffs);

/// Midranks of |values|: ties share the average of the ranks they occupy.
std::vector<double> midranks(std::span<const double> values);

/// Midranks of signed values (ties share averages as above), additionally
/// accumulating the pooled tie term sum(t^3 - t) over tie groups — the
/// quantity tie-corrected rank-test variances need. Used by the unpaired
/// rank-sum test in fleet_stats.
std::vector<double> midranks_signed(std::span<const double> values,
                                    double& tie_term);

/// Holm-Bonferroni step-down procedure. Given raw p-values, returns for
/// each whether it is rejected at family-wise level `alpha`, plus the
/// adjusted p-values. NaN p-values are treated as 1.0 (no evidence): they
/// are never rejected and cannot scramble the step-down ordering.
struct HolmResult {
  std::vector<bool> reject;
  std::vector<double> adjusted_p;
};

HolmResult holm_bonferroni(std::span<const double> p_values,
                           double alpha = 0.05);

/// Standard normal CDF (used by the approximation and exposed for tests).
double normal_cdf(double z);

}  // namespace nbv6::stats
