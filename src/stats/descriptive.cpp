#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace nbv6::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  assert(q >= 0.0 && q <= 1.0);
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  double pos = q * static_cast<double>(v.size() - 1);
  auto lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min(xs);
  s.p25 = quantile(xs, 0.25);
  s.median = quantile(xs, 0.50);
  s.p75 = quantile(xs, 0.75);
  s.max = max(xs);
  return s;
}

Ecdf::Ecdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (sorted_.empty()) return 0.0;
  if (q <= 0.0) return sorted_.front();
  auto idx = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())) - 1);
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

std::vector<std::pair<double, double>> Ecdf::curve() const {
  std::vector<std::pair<double, double>> pts;
  const auto n = static_cast<double>(sorted_.size());
  for (size_t i = 0; i < sorted_.size(); ++i) {
    // Emit only the last point of a run of equal values.
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    pts.emplace_back(sorted_[i], static_cast<double>(i + 1) / n);
  }
  return pts;
}

BoxPlot boxplot(std::span<const double> xs) {
  BoxPlot b;
  if (xs.empty()) return b;
  b.q1 = quantile(xs, 0.25);
  b.median = quantile(xs, 0.50);
  b.q3 = quantile(xs, 0.75);
  double iqr = b.q3 - b.q1;
  double lo_fence = b.q1 - 1.5 * iqr;
  double hi_fence = b.q3 + 1.5 * iqr;
  // Whiskers extend to the most extreme data point inside the fences.
  b.whisker_low = std::numeric_limits<double>::infinity();
  b.whisker_high = -std::numeric_limits<double>::infinity();
  for (double x : xs) {
    if (x >= lo_fence) b.whisker_low = std::min(b.whisker_low, x);
    if (x <= hi_fence) b.whisker_high = std::max(b.whisker_high, x);
    if (x < lo_fence || x > hi_fence) b.outliers.push_back(x);
  }
  if (!std::isfinite(b.whisker_low)) b.whisker_low = b.q1;
  if (!std::isfinite(b.whisker_high)) b.whisker_high = b.q3;
  std::sort(b.outliers.begin(), b.outliers.end());
  return b;
}

}  // namespace nbv6::stats
