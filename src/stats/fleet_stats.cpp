#include "stats/fleet_stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "stats/wilcoxon.h"

namespace nbv6::stats {

namespace {

// Exact null distribution of the rank sum R1 for n1 untied ranks drawn
// from {1..n}: counts[k][s] = number of k-subsets summing to s, via DP.
// Used when both samples are small and there are no ties.
double exact_rank_sum_two_sided_p(int n1, int n2, double u1) {
  const int n = n1 + n2;
  const int max_sum = n * (n + 1) / 2;
  // counts[k][s], rolled over k in decreasing order.
  std::vector<std::vector<double>> counts(
      static_cast<size_t>(n1) + 1,
      std::vector<double>(static_cast<size_t>(max_sum) + 1, 0.0));
  counts[0][0] = 1.0;
  for (int r = 1; r <= n; ++r)
    for (int k = std::min(n1, r); k >= 1; --k)
      for (int s = max_sum; s >= r; --s)
        counts[static_cast<size_t>(k)][static_cast<size_t>(s)] +=
            counts[static_cast<size_t>(k - 1)][static_cast<size_t>(s - r)];

  double total = 0.0;
  for (double c : counts[static_cast<size_t>(n1)]) total += c;

  // U1 = R1 - n1(n1+1)/2 ranges over [0, n1*n2], symmetric around its
  // midpoint under the null. Two-sided: double the smaller tail.
  const int offset = n1 * (n1 + 1) / 2;
  const double u_max = static_cast<double>(n1) * n2;
  double lo_stat = std::min(u1, u_max - u1);
  double tail = 0.0;
  for (int u = 0; u <= static_cast<int>(std::floor(lo_stat + 1e-9)); ++u)
    tail += counts[static_cast<size_t>(n1)][static_cast<size_t>(u + offset)];
  return std::min(1.0, 2.0 * tail / total);
}

}  // namespace

std::optional<RankSumResult> wilcoxon_rank_sum(std::span<const double> xs,
                                               std::span<const double> ys) {
  // Non-finite observations (the fleet layer's NaN undefined-metric
  // sentinel, infs from degenerate ratios) have no defined rank; drop them
  // so a raw metric column can stream in unfiltered, and report a defined
  // no-result (nullopt) when either sample has nothing testable left.
  std::vector<double> pooled;
  pooled.reserve(xs.size() + ys.size());
  for (double x : xs)
    if (std::isfinite(x)) pooled.push_back(x);
  const size_t n1 = pooled.size();
  for (double y : ys)
    if (std::isfinite(y)) pooled.push_back(y);
  const size_t n2 = pooled.size() - n1;
  if (n1 == 0 || n2 == 0) return std::nullopt;
  const size_t n = n1 + n2;

  // Midranks of the pooled sample by signed value, with the tie structure
  // collected in the same pass. tie_term > 0 iff any tie group exists.
  double tie_term = 0.0;
  auto ranks = midranks_signed(pooled, tie_term);
  const bool has_ties = tie_term > 0.0;

  double r1 = 0.0;
  for (size_t i = 0; i < n1; ++i) r1 += ranks[i];

  RankSumResult out;
  out.n1 = n1;
  out.n2 = n2;
  out.u1 = r1 - static_cast<double>(n1) * (static_cast<double>(n1) + 1.0) / 2.0;

  const double dn1 = static_cast<double>(n1);
  const double dn2 = static_cast<double>(n2);
  const double dn = static_cast<double>(n);
  const double mean_u = dn1 * dn2 / 2.0;

  if (!has_ties && n1 <= 12 && n2 <= 12) {
    out.p_value = exact_rank_sum_two_sided_p(static_cast<int>(n1),
                                             static_cast<int>(n2), out.u1);
    double var_u = dn1 * dn2 * (dn + 1.0) / 12.0;
    out.z = var_u > 0 ? (out.u1 - mean_u) / std::sqrt(var_u) : 0.0;
  } else {
    // Normal approximation; ties shrink the variance by the pooled tie
    // term, and the continuity correction pulls toward the mean.
    double var_u =
        dn1 * dn2 / 12.0 * ((dn + 1.0) - tie_term / (dn * (dn - 1.0)));
    if (var_u <= 0) {
      out.p_value = 1.0;  // every pooled value identical: no evidence
      out.z = 0.0;
    } else {
      double num = out.u1 - mean_u;
      double cc = num > 0 ? -0.5 : (num < 0 ? 0.5 : 0.0);
      out.z = (num + cc) / std::sqrt(var_u);
      out.p_value = std::min(1.0, 2.0 * (1.0 - normal_cdf(std::abs(out.z))));
    }
  }

  out.effect_size_r = std::clamp(out.z / std::sqrt(dn), -1.0, 1.0);
  return out;
}

// ------------------------------------------------------- StreamingCdf

StreamingCdf::StreamingCdf(double lo, double hi, int bins)
    : lo_(lo),
      width_((hi - lo) / std::max(bins, 1)),
      bins_(static_cast<size_t>(std::max(bins, 1)), 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  // A hard error, not an assert: Release builds (the default) would
  // otherwise bin into a non-positive width and return silent garbage.
  if (!(hi > lo))
    throw std::invalid_argument("StreamingCdf: requires hi > lo");
}

void StreamingCdf::add(double x) {
  // Undefined metric values (NaN sentinel) and infinities (divide-by-zero
  // artifacts) carry no information — and one inf would poison the Welford
  // moments for good — so only finite values count.
  if (!std::isfinite(x)) return;
  // Clamp in floating point BEFORE the integer cast: casting an
  // out-of-long-range double (huge values, +-inf) is UB.
  double pos = std::clamp(std::floor((x - lo_) / width_), 0.0,
                          static_cast<double>(bins_.size() - 1));
  ++bins_[static_cast<size_t>(pos)];
  ++count_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingCdf::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

bool StreamingCdf::compatible_with(const StreamingCdf& other) const {
  return other.lo_ == lo_ && other.width_ == width_ &&
         other.bins_.size() == bins_.size();
}

void StreamingCdf::merge(const StreamingCdf& other) {
  // Mismatched layouts would add counts across incompatible bin widths —
  // silently wrong in Release builds — so this is a hard error too. Thrown
  // before any mutation: a failed merge leaves *this exactly as it was.
  if (!compatible_with(other))
    throw std::invalid_argument(
        "StreamingCdf::merge: accumulators must share (lo, hi, bins)");
  if (other.count_ == 0) return;
  for (size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  // Chan et al.'s pairwise moment combination.
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  count_ += other.count_;
  double nn = static_cast<double>(count_);
  mean_ += delta * nb / nn;
  m2_ += other.m2_ + delta * delta * na * nb / nn;
  // Postcondition: the bin histogram and the moment accumulator must agree
  // on the sample count, or quantile()/cdf() interpolation drifts from
  // mean()/stddev() — the invariant every shard reduction relies on.
  assert(std::accumulate(bins_.begin(), bins_.end(), std::uint64_t{0}) ==
         count_);
}

double StreamingCdf::mean() const { return count_ == 0 ? 0.0 : mean_; }

double StreamingCdf::stddev() const {
  return count_ < 2 ? 0.0 : std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double StreamingCdf::min() const { return count_ == 0 ? 0.0 : min_; }
double StreamingCdf::max() const { return count_ == 0 ? 0.0 : max_; }

double StreamingCdf::cdf(double x) const {
  if (count_ == 0) return 0.0;
  if (x < min_) return 0.0;
  if (x >= max_) return 1.0;
  double pos = (x - lo_) / width_;
  // Clamp in floating point before the cast (out-of-range casts are UB);
  // values clamped into the edge bins at add() time clamp the same way.
  double bd = std::clamp(std::floor(pos), 0.0,
                         static_cast<double>(bins_.size() - 1));
  auto b = static_cast<size_t>(bd);
  std::uint64_t below = 0;
  for (size_t i = 0; i < b; ++i) below += bins_[i];
  double frac = std::clamp(pos - bd, 0.0, 1.0);
  double in_bin = frac * static_cast<double>(bins_[b]);
  return (static_cast<double>(below) + in_bin) / static_cast<double>(count_);
}

double StreamingCdf::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (size_t b = 0; b < bins_.size(); ++b) {
    std::uint64_t c = bins_[b];
    if (static_cast<double>(cum + c) >= target && c > 0) {
      double frac = (target - static_cast<double>(cum)) / static_cast<double>(c);
      double v = lo_ + width_ * (static_cast<double>(b) + frac);
      return std::clamp(v, min_, max_);
    }
    cum += c;
  }
  return max_;
}

Summary StreamingCdf::summary() const {
  Summary s;
  s.count = count_;
  s.mean = mean();
  s.stddev = stddev();
  s.min = min();
  s.max = max();
  s.p25 = quantile(0.25);
  s.median = quantile(0.5);
  s.p75 = quantile(0.75);
  return s;
}

// ------------------------------------------------------- panel adjust

void holm_adjust(std::span<PanelRow> rows, double alpha) {
  std::vector<double> ps;
  ps.reserve(rows.size());
  for (const auto& r : rows) ps.push_back(r.p_raw);
  auto holm = holm_bonferroni(ps, alpha);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].p_holm = holm.adjusted_p[i];
    rows[i].significant = holm.reject[i];
  }
}

}  // namespace nbv6::stats
