// Deterministic random number generation for the synthetic substrate.
//
// Everything stochastic in this repository (traffic generation, the web
// universe, workload sweeps) flows through this RNG so that every
// experiment is exactly reproducible from a seed. xoshiro256** is used for
// the stream and splitmix64 for seeding, following the reference designs
// by Blackman & Vigna.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace nbv6::stats {

/// splitmix64: used to expand a single 64-bit seed into stream state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6e6276365f763621ull) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free-enough reduction; bias is
    // negligible for the ranges used here.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// true with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (cached pair not kept: simplicity).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  double normal(double mean, double sd) { return mean + sd * normal(); }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -mean * std::log(u);
  }

  /// Pareto (Lomax-style, xm scale, alpha shape) — used for heavy-tailed
  /// flow sizes (downloads, streams).
  double pareto(double xm, double alpha) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Log-normal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Sampling from a fixed discrete distribution by cumulative weights.
/// Construction is O(n); each sample is O(log n).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::span<const double> weights);

  /// Index in [0, size) drawn proportionally to the weights.
  [[nodiscard]] size_t sample(Rng& rng) const;

  [[nodiscard]] size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

/// Zipf ranks: weight(rank) = 1 / rank^s for rank = 1..n. The standard
/// popularity model for top lists; the web universe uses it to make site
/// traffic (and third-party reuse) heavy-tailed like the real Tranco list.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Rank in [0, n), rank 0 most popular.
  [[nodiscard]] size_t sample(Rng& rng) const { return inner_.sample(rng); }

 private:
  DiscreteSampler inner_;
};

}  // namespace nbv6::stats
