// STL — Seasonal-Trend decomposition using LOESS (Cleveland et al. 1990),
// and MSTL — its multi-seasonal extension (Bandara, Hyndman & Bergmeir
// 2021), which the paper applies to daily/weekly structure in residential
// IPv6 fractions (§3.3, Figs. 2, 13-15).
//
// STL here follows the classic structure: inner iterations alternate
// (1) cycle-subseries LOESS smoothing of the detrended series to extract
// the seasonal, (2) low-pass filtering (two moving averages of length
// `period`, an MA(3), and a LOESS pass) to de-trend the seasonal, and
// (3) LOESS smoothing of the deseasonalized series to update the trend.
// Outer iterations compute bisquare robustness weights from the remainder.
//
// MSTL iteratively refines one seasonal component per period: on each
// refinement pass, each period's seasonal is re-estimated by STL applied to
// the series minus all other seasonal components.
#pragma once

#include <span>
#include <vector>

namespace nbv6::stats {

struct StlConfig {
  int period = 0;                ///< seasonal period in samples (required)
  int seasonal_span = 0;         ///< LOESS span (points) for cycle-subseries;
                                 ///< 0 = "periodic-ish" default (10*n+1 style)
  int trend_span = 0;            ///< LOESS span (points) for trend; 0 = auto
  int inner_iterations = 2;
  int outer_iterations = 0;      ///< robustness iterations (0 = none)
};

struct StlResult {
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> remainder;
};

/// Decompose ys into trend + seasonal + remainder. Requires
/// ys.size() >= 2 * period and period >= 2.
StlResult stl_decompose(std::span<const double> ys, const StlConfig& cfg);

struct MstlConfig {
  std::vector<int> periods;      ///< ascending, e.g. {24, 168} for hourly data
  int refinement_passes = 2;     ///< outer MSTL iterations over the periods
  int inner_iterations = 2;
  int outer_iterations = 0;
};

struct MstlResult {
  std::vector<double> trend;
  /// One seasonal component per configured period, same order.
  std::vector<std::vector<double>> seasonals;
  std::vector<double> remainder;
};

/// Multi-seasonal decomposition. Periods whose 2×period exceeds the series
/// length are dropped (matching the statsmodels MSTL behaviour).
MstlResult mstl_decompose(std::span<const double> ys, const MstlConfig& cfg);

}  // namespace nbv6::stats
