// STL — Seasonal-Trend decomposition using LOESS (Cleveland et al. 1990),
// and MSTL — its multi-seasonal extension (Bandara, Hyndman & Bergmeir
// 2021), which the paper applies to daily/weekly structure in residential
// IPv6 fractions (§3.3, Figs. 2, 13-15).
//
// STL here follows the classic structure: inner iterations alternate
// (1) cycle-subseries LOESS smoothing of the detrended series to extract
// the seasonal, (2) low-pass filtering (two moving averages of length
// `period`, an MA(3), and a LOESS pass) to de-trend the seasonal, and
// (3) LOESS smoothing of the deseasonalized series to update the trend.
// Outer iterations compute bisquare robustness weights from the remainder.
//
// MSTL iteratively refines one seasonal component per period: on each
// refinement pass, each period's seasonal is re-estimated by STL applied to
// the series minus all other seasonal components.
//
// Allocation discipline: the workspace-taking overloads perform no heap
// allocation in the inner iterations — every detrend/gather/scatter/
// low-pass/partial-sum buffer lives in the StlWorkspace and is reused
// across iterations, refinement passes, and successive decompositions.
// A FlowMonitor decomposing thousands of residence series can hold one
// workspace and pay the allocation cost once.
#pragma once

#include <span>
#include <vector>

namespace nbv6::engine {
class ThreadPool;
}  // namespace nbv6::engine

namespace nbv6::stats {

struct StlConfig {
  int period = 0;                ///< seasonal period in samples (required)
  int seasonal_span = 0;         ///< LOESS span (points) for cycle-subseries;
                                 ///< 0 = "periodic-ish" default (10*n+1 style)
  int trend_span = 0;            ///< LOESS span (points) for trend; 0 = auto
  int inner_iterations = 2;
  int outer_iterations = 0;      ///< robustness iterations (0 = none)
  /// Optional pool for the cycle-subseries smoothing: the `period` per-phase
  /// LOESS fits are independent, so they fan out across the pool's lanes.
  /// Results are bit-identical to the sequential path (each phase performs
  /// the same FP operations on the same data either way). nullptr = run
  /// sequentially.
  engine::ThreadPool* pool = nullptr;
};

struct StlResult {
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> remainder;
};

/// Gather/smooth buffers for one cycle-subseries phase. The sequential
/// path reuses one set; the pooled path holds one per phase so lanes never
/// share scratch.
struct StlSubseriesBuffers {
  std::vector<double> sub;     ///< gathered cycle-subseries
  std::vector<double> rob;     ///< gathered robustness weights
  std::vector<double> smooth;  ///< smoothed cycle-subseries
};

/// Reusable scratch space for stl_decompose / mstl_decompose. Buffers grow
/// to the high-water mark of the series they have processed and are then
/// reused allocation-free. A workspace may be shared by any number of
/// sequential decompositions, but not concurrently.
struct StlWorkspace {
  std::vector<double> detrended;   ///< ys - trend
  std::vector<double> cycle;       ///< cycle-subseries seasonal estimate
  std::vector<double> lowpass;     ///< low-pass ping buffer
  std::vector<double> lowpass2;    ///< low-pass pong buffer
  std::vector<double> deseason;    ///< ys - seasonal
  StlSubseriesBuffers subseries;   ///< sequential cycle-subseries scratch
  std::vector<StlSubseriesBuffers> subseries_par;  ///< pooled: one per phase
  std::vector<double> robustness;  ///< bisquare outer weights (empty = 1.0)
  std::vector<double> abs_rem;     ///< |remainder| for the weight update
  std::vector<double> partial;     ///< MSTL: series minus other seasonals
  StlResult stl_scratch;           ///< MSTL: per-period STL refinement target
};

/// Decompose ys into trend + seasonal + remainder. Requires
/// ys.size() >= 2 * period and period >= 2. `out` vectors are resized as
/// needed (reusing capacity when called repeatedly with the same shape).
void stl_decompose(std::span<const double> ys, const StlConfig& cfg,
                   StlWorkspace& ws, StlResult& out);

/// Convenience overload owning a transient workspace.
StlResult stl_decompose(std::span<const double> ys, const StlConfig& cfg);

struct MstlConfig {
  std::vector<int> periods;      ///< ascending, e.g. {24, 168} for hourly data
  int refinement_passes = 2;     ///< outer MSTL iterations over the periods
  int inner_iterations = 2;
  int outer_iterations = 0;
  /// Forwarded to each per-period STL fit; see StlConfig::pool.
  engine::ThreadPool* pool = nullptr;
};

struct MstlResult {
  std::vector<double> trend;
  /// One seasonal component per configured period, same order.
  std::vector<std::vector<double>> seasonals;
  std::vector<double> remainder;
};

/// Multi-seasonal decomposition. Periods whose 2×period exceeds the series
/// length are dropped (matching the statsmodels MSTL behaviour).
void mstl_decompose(std::span<const double> ys, const MstlConfig& cfg,
                    StlWorkspace& ws, MstlResult& out);

/// STL's low-pass moving average (exposed for tests): centered MA of
/// window `w` into `out` (no aliasing), edges truncated to the available
/// window. Even `w` follows the centered 2×MA convention — half weight on
/// the two endpoints — so that an MA at `w == period` cancels a
/// period-periodic signal exactly.
void moving_average_into(std::span<const double> ys, int w,
                         std::span<double> out);

/// Convenience overload owning a transient workspace.
MstlResult mstl_decompose(std::span<const double> ys, const MstlConfig& cfg);

}  // namespace nbv6::stats
