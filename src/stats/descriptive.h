// Descriptive statistics, empirical CDFs, and box-plot summaries.
//
// These are the reporting primitives: every figure in the paper is either a
// CDF (Figs. 1, 3, 7, 8, 10, 16), a box plot (Figs. 4, 17), or a table of
// means and standard deviations (Table 1).
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace nbv6::stats {

double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator). Returns 0 for fewer than 2 points.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Quantile with linear interpolation between order statistics (type 7,
/// the numpy/R default). q in [0, 1]. xs need not be sorted.
double quantile(std::span<const double> xs, double q);

double median(std::span<const double> xs);

/// One-pass summary used by Table 1-style reports.
struct Summary {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
};

Summary summarize(std::span<const double> xs);

/// Empirical CDF over a sample; evaluation and inverse (quantile) queries.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> xs);

  /// P(X <= x).
  [[nodiscard]] double operator()(double x) const;

  /// Smallest sample value v with P(X <= v) >= q.
  [[nodiscard]] double inverse(double q) const;

  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }
  [[nodiscard]] size_t size() const { return sorted_.size(); }

  /// (x, F(x)) pairs suitable for plotting, one per distinct value.
  [[nodiscard]] std::vector<std::pair<double, double>> curve() const;

 private:
  std::vector<double> sorted_;
};

/// Tukey box-plot statistics: quartiles, whiskers at 1.5×IQR clamped to
/// data, and outliers beyond the whiskers — the exact convention of the
/// paper's Figures 4 and 17.
struct BoxPlot {
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double whisker_low = 0;
  double whisker_high = 0;
  std::vector<double> outliers;
};

BoxPlot boxplot(std::span<const double> xs);

}  // namespace nbv6::stats
