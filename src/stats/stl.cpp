#include "stats/stl.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/loess.h"

namespace nbv6::stats {
namespace {

// Centered moving average of window w; edges use the available shorter
// window. Applied twice at length `period` plus once at 3, this is STL's
// low-pass filter.
std::vector<double> moving_average(std::span<const double> ys, int w) {
  const auto n = static_cast<int>(ys.size());
  std::vector<double> out(static_cast<size_t>(n), 0.0);
  if (n == 0) return out;
  int half = w / 2;
  // Prefix sums for O(n).
  std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i)
    prefix[static_cast<size_t>(i) + 1] = prefix[static_cast<size_t>(i)] + ys[static_cast<size_t>(i)];
  for (int i = 0; i < n; ++i) {
    int lo = std::max(0, i - half);
    int hi = std::min(n - 1, i + half);
    out[static_cast<size_t>(i)] =
        (prefix[static_cast<size_t>(hi) + 1] - prefix[static_cast<size_t>(lo)]) /
        static_cast<double>(hi - lo + 1);
  }
  return out;
}

// Default spans follow the conventions in the STL literature: the seasonal
// smoother wants a long span (quasi-periodic seasonality), the trend span
// is the smallest odd integer >= 1.5*period / (1 - 1.5/seasonal_span).
int default_seasonal_span(int n_subseries) {
  int s = 10 * n_subseries + 1;
  return s | 1;
}

int default_trend_span(int period, int seasonal_span) {
  double v = 1.5 * period / (1.0 - 1.5 / static_cast<double>(seasonal_span));
  int t = static_cast<int>(std::ceil(v));
  return t | 1;
}

}  // namespace

StlResult stl_decompose(std::span<const double> ys, const StlConfig& cfg) {
  const auto n = ys.size();
  const int period = cfg.period;
  assert(period >= 2);
  assert(n >= static_cast<size_t>(2 * period));

  const int n_sub =
      static_cast<int>((n + static_cast<size_t>(period) - 1) / static_cast<size_t>(period));
  const int seasonal_span =
      cfg.seasonal_span > 0 ? cfg.seasonal_span : default_seasonal_span(n_sub);
  const int trend_span = cfg.trend_span > 0
                             ? cfg.trend_span
                             : default_trend_span(period, seasonal_span);

  StlResult r;
  r.trend.assign(n, 0.0);
  r.seasonal.assign(n, 0.0);
  r.remainder.assign(n, 0.0);

  std::vector<double> robustness;  // empty = all ones

  for (int outer = 0; outer <= cfg.outer_iterations; ++outer) {
    for (int inner = 0; inner < cfg.inner_iterations; ++inner) {
      // 1. Detrend.
      std::vector<double> detrended(n);
      for (size_t i = 0; i < n; ++i) detrended[i] = ys[i] - r.trend[i];

      // 2. Cycle-subseries smoothing: smooth each phase independently.
      std::vector<double> c(n, 0.0);
      for (int phase = 0; phase < period; ++phase) {
        std::vector<double> sub;
        std::vector<double> sub_rob;
        for (size_t i = static_cast<size_t>(phase); i < n;
             i += static_cast<size_t>(period)) {
          sub.push_back(detrended[i]);
          if (!robustness.empty()) sub_rob.push_back(robustness[i]);
        }
        LoessConfig lc;
        lc.span_points = std::min<int>(seasonal_span, static_cast<int>(sub.size()));
        lc.degree = 1;
        auto smoothed = loess(sub, lc, sub_rob);
        size_t k = 0;
        for (size_t i = static_cast<size_t>(phase); i < n;
             i += static_cast<size_t>(period)) {
          c[i] = smoothed[k++];
        }
      }

      // 3. Low-pass filter the preliminary seasonal and subtract, so the
      // seasonal carries no trend.
      auto lp = moving_average(c, period);
      lp = moving_average(lp, period);
      lp = moving_average(lp, 3);
      LoessConfig lp_cfg;
      lp_cfg.span_points = trend_span;
      lp_cfg.degree = 1;
      lp = loess(lp, lp_cfg);
      for (size_t i = 0; i < n; ++i) r.seasonal[i] = c[i] - lp[i];

      // 4. Deseasonalize and update the trend.
      std::vector<double> deseason(n);
      for (size_t i = 0; i < n; ++i) deseason[i] = ys[i] - r.seasonal[i];
      LoessConfig tc;
      tc.span_points = std::min<int>(trend_span, static_cast<int>(n));
      tc.degree = 1;
      r.trend = loess(deseason, tc, robustness);
    }

    for (size_t i = 0; i < n; ++i)
      r.remainder[i] = ys[i] - r.trend[i] - r.seasonal[i];

    if (outer < cfg.outer_iterations) {
      // Bisquare robustness weights from remainder magnitudes.
      std::vector<double> abs_rem(n);
      for (size_t i = 0; i < n; ++i) abs_rem[i] = std::abs(r.remainder[i]);
      double h = 6.0 * median(abs_rem);
      robustness.assign(n, 1.0);
      if (h > 0) {
        for (size_t i = 0; i < n; ++i) {
          double u = abs_rem[i] / h;
          robustness[i] = u >= 1.0 ? 0.0 : (1 - u * u) * (1 - u * u);
        }
      }
    }
  }
  return r;
}

MstlResult mstl_decompose(std::span<const double> ys, const MstlConfig& cfg) {
  const size_t n = ys.size();
  MstlResult r;

  // Keep only periods the series can support, ascending.
  std::vector<int> periods;
  for (int p : cfg.periods)
    if (p >= 2 && n >= static_cast<size_t>(2 * p)) periods.push_back(p);
  std::sort(periods.begin(), periods.end());

  r.seasonals.assign(periods.size(), std::vector<double>(n, 0.0));
  r.trend.assign(n, 0.0);
  r.remainder.assign(n, 0.0);

  if (periods.empty()) {
    // Degenerate: no seasonality extractable; trend = LOESS of series.
    LoessConfig tc;
    tc.span_fraction = 0.5;
    r.trend = loess(ys, tc);
    for (size_t i = 0; i < n; ++i) r.remainder[i] = ys[i] - r.trend[i];
    return r;
  }

  // Iterative refinement (Bandara et al. §3): strip other components,
  // re-fit this period's seasonal via STL.
  for (int pass = 0; pass < std::max(1, cfg.refinement_passes); ++pass) {
    for (size_t k = 0; k < periods.size(); ++k) {
      std::vector<double> partial(ys.begin(), ys.end());
      for (size_t j = 0; j < periods.size(); ++j) {
        if (j == k) continue;
        for (size_t i = 0; i < n; ++i) partial[i] -= r.seasonals[j][i];
      }
      StlConfig sc;
      sc.period = periods[k];
      sc.inner_iterations = cfg.inner_iterations;
      sc.outer_iterations = cfg.outer_iterations;
      auto res = stl_decompose(partial, sc);
      r.seasonals[k] = std::move(res.seasonal);
      // The trend from the longest-period STL (last refined) is the final
      // trend; intermediate ones are absorbed.
      if (k + 1 == periods.size()) r.trend = std::move(res.trend);
    }
  }

  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (const auto& comp : r.seasonals) s += comp[i];
    r.remainder[i] = ys[i] - r.trend[i] - s;
  }
  return r;
}

}  // namespace nbv6::stats
