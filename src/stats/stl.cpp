#include "stats/stl.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "engine/thread_pool.h"
#include "stats/loess.h"

namespace nbv6::stats {

// Centered moving average of window w into `out` (no aliasing), O(n) via a
// running windowed sum; edges use the available shorter window. Applied
// twice at length `period` plus once at 3, this is STL's low-pass filter.
//
// Even windows use the standard centered 2×MA convention: half weight on
// the two endpoints, full weight in between, total weight w — the
// composition of the two half-offset w-point averages. (A plain symmetric
// window at even w would silently average w+1 points.)
void moving_average_into(std::span<const double> ys, int w,
                         std::span<double> out) {
  const auto n = static_cast<int>(ys.size());
  assert(out.size() == ys.size());
  if (n == 0) return;
  const int half = w / 2;
  const bool even = (w % 2) == 0;
  double sum = 0.0;
  int lo = 0, hi = -1;  // current clamped window [lo, hi]
  for (int i = 0; i < n; ++i) {
    const int nlo = std::max(0, i - half);
    const int nhi = std::min(n - 1, i + half);
    while (hi < nhi) sum += ys[static_cast<size_t>(++hi)];
    while (lo < nlo) sum -= ys[static_cast<size_t>(lo++)];
    if (even && i - half >= 0 && i + half <= n - 1) {
      out[static_cast<size_t>(i)] =
          (sum - 0.5 * ys[static_cast<size_t>(i - half)] -
           0.5 * ys[static_cast<size_t>(i + half)]) /
          static_cast<double>(w);
    } else {
      out[static_cast<size_t>(i)] = sum / static_cast<double>(nhi - nlo + 1);
    }
  }
}

namespace {

// Default spans follow the conventions in the STL literature: the seasonal
// smoother wants a long span (quasi-periodic seasonality), the trend span
// is the smallest odd integer >= 1.5*period / (1 - 1.5/seasonal_span).
int default_seasonal_span(int n_subseries) {
  int s = 10 * n_subseries + 1;
  return s | 1;
}

int default_trend_span(int period, int seasonal_span) {
  double v = 1.5 * period / (1.0 - 1.5 / static_cast<double>(seasonal_span));
  int t = static_cast<int>(std::ceil(v));
  return t | 1;
}

}  // namespace

void stl_decompose(std::span<const double> ys, const StlConfig& cfg,
                   StlWorkspace& ws, StlResult& r) {
  const auto n = ys.size();
  const int period = cfg.period;
  assert(period >= 2);
  assert(n >= static_cast<size_t>(2 * period));

  const int n_sub =
      static_cast<int>((n + static_cast<size_t>(period) - 1) / static_cast<size_t>(period));
  const int seasonal_span =
      cfg.seasonal_span > 0 ? cfg.seasonal_span : default_seasonal_span(n_sub);
  const int trend_span = cfg.trend_span > 0
                             ? cfg.trend_span
                             : default_trend_span(period, seasonal_span);

  r.trend.assign(n, 0.0);
  r.seasonal.assign(n, 0.0);
  r.remainder.assign(n, 0.0);

  ws.robustness.clear();  // empty = all ones
  ws.detrended.resize(n);
  ws.cycle.resize(n);
  ws.lowpass.resize(n);
  ws.lowpass2.resize(n);
  ws.deseason.resize(n);

  for (int outer = 0; outer <= cfg.outer_iterations; ++outer) {
    for (int inner = 0; inner < cfg.inner_iterations; ++inner) {
      // 1. Detrend.
      for (size_t i = 0; i < n; ++i) ws.detrended[i] = ys[i] - r.trend[i];

      // 2. Cycle-subseries smoothing: gather each phase into workspace
      // buffers, smooth, scatter back — no per-phase allocations once the
      // buffers hit their high-water marks. The phases are independent
      // (disjoint gather/scatter index sets), so with a pool configured
      // they fan out across lanes, each phase on its own buffer set;
      // either way every phase runs the identical FP sequence, so pooled
      // and sequential results are bit-identical.
      const bool robust = !ws.robustness.empty();
      auto smooth_phase = [&](int phase, StlSubseriesBuffers& b) {
        const size_t count =
            (n - static_cast<size_t>(phase) + static_cast<size_t>(period) - 1) /
            static_cast<size_t>(period);
        b.sub.resize(count);
        b.smooth.resize(count);
        b.rob.resize(robust ? count : 0);
        size_t k = 0;
        for (size_t i = static_cast<size_t>(phase); i < n;
             i += static_cast<size_t>(period)) {
          b.sub[k] = ws.detrended[i];
          if (robust) b.rob[k] = ws.robustness[i];
          ++k;
        }
        LoessConfig lc;
        lc.span_points = std::min<int>(seasonal_span, static_cast<int>(count));
        lc.degree = 1;
        loess_unit_into(b.sub, lc, b.rob, b.smooth);
        k = 0;
        for (size_t i = static_cast<size_t>(phase); i < n;
             i += static_cast<size_t>(period)) {
          ws.cycle[i] = b.smooth[k++];
        }
      };
      if (cfg.pool != nullptr && period > 1) {
        ws.subseries_par.resize(static_cast<size_t>(period));
        cfg.pool->parallel_for(
            static_cast<size_t>(period), [&](size_t phase) {
              smooth_phase(static_cast<int>(phase), ws.subseries_par[phase]);
            });
      } else {
        for (int phase = 0; phase < period; ++phase)
          smooth_phase(phase, ws.subseries);
      }

      // 3. Low-pass filter the preliminary seasonal and subtract, so the
      // seasonal carries no trend. Ping-pong between the two workspace
      // buffers.
      moving_average_into(ws.cycle, period, ws.lowpass);
      moving_average_into(ws.lowpass, period, ws.lowpass2);
      moving_average_into(ws.lowpass2, 3, ws.lowpass);
      LoessConfig lp_cfg;
      lp_cfg.span_points = trend_span;
      lp_cfg.degree = 1;
      loess_unit_into(ws.lowpass, lp_cfg, {}, ws.lowpass2);
      for (size_t i = 0; i < n; ++i) r.seasonal[i] = ws.cycle[i] - ws.lowpass2[i];

      // 4. Deseasonalize and update the trend.
      for (size_t i = 0; i < n; ++i) ws.deseason[i] = ys[i] - r.seasonal[i];
      LoessConfig tc;
      tc.span_points = std::min<int>(trend_span, static_cast<int>(n));
      tc.degree = 1;
      loess_unit_into(ws.deseason, tc, ws.robustness, r.trend);
    }

    for (size_t i = 0; i < n; ++i)
      r.remainder[i] = ys[i] - r.trend[i] - r.seasonal[i];

    if (outer < cfg.outer_iterations) {
      // Bisquare robustness weights from remainder magnitudes. The median
      // runs in-place on the workspace copy (nth_element), not on a fresh
      // vector.
      ws.abs_rem.resize(n);
      for (size_t i = 0; i < n; ++i) ws.abs_rem[i] = std::abs(r.remainder[i]);
      const auto mid = ws.abs_rem.begin() + static_cast<std::ptrdiff_t>(n / 2);
      std::nth_element(ws.abs_rem.begin(), mid, ws.abs_rem.end());
      double med = *mid;
      if (n % 2 == 0) {
        // Lower middle is the max of the first half after partitioning.
        med = (med + *std::max_element(ws.abs_rem.begin(), mid)) / 2.0;
      }
      double h = 6.0 * med;
      ws.robustness.assign(n, 1.0);
      if (h > 0) {
        for (size_t i = 0; i < n; ++i) {
          double u = ws.abs_rem[i] / h;
          ws.robustness[i] = u >= 1.0 ? 0.0 : (1 - u * u) * (1 - u * u);
        }
      }
    }
  }
}

StlResult stl_decompose(std::span<const double> ys, const StlConfig& cfg) {
  StlWorkspace ws;
  StlResult r;
  stl_decompose(ys, cfg, ws, r);
  return r;
}

void mstl_decompose(std::span<const double> ys, const MstlConfig& cfg,
                    StlWorkspace& ws, MstlResult& r) {
  const size_t n = ys.size();

  // Keep only periods the series can support, ascending.
  std::vector<int> periods;
  for (int p : cfg.periods)
    if (p >= 2 && n >= static_cast<size_t>(2 * p)) periods.push_back(p);
  std::sort(periods.begin(), periods.end());

  r.seasonals.resize(periods.size());
  for (auto& s : r.seasonals) s.assign(n, 0.0);
  r.trend.assign(n, 0.0);
  r.remainder.assign(n, 0.0);

  if (periods.empty()) {
    // Degenerate: no seasonality extractable; trend = LOESS of series.
    LoessConfig tc;
    tc.span_fraction = 0.5;
    loess_unit_into(ys, tc, {}, r.trend);
    for (size_t i = 0; i < n; ++i) r.remainder[i] = ys[i] - r.trend[i];
    return;
  }

  // Iterative refinement (Bandara et al. §3): strip other components,
  // re-fit this period's seasonal via STL. `ws.partial` and the STL
  // scratch result are reused across every (pass, period) iteration.
  ws.partial.resize(n);
  for (int pass = 0; pass < std::max(1, cfg.refinement_passes); ++pass) {
    for (size_t k = 0; k < periods.size(); ++k) {
      for (size_t i = 0; i < n; ++i) {
        double v = ys[i];
        for (size_t j = 0; j < periods.size(); ++j)
          if (j != k) v -= r.seasonals[j][i];
        ws.partial[i] = v;
      }
      StlConfig sc;
      sc.period = periods[k];
      sc.inner_iterations = cfg.inner_iterations;
      sc.outer_iterations = cfg.outer_iterations;
      sc.pool = cfg.pool;
      stl_decompose(ws.partial, sc, ws, ws.stl_scratch);
      std::swap(r.seasonals[k], ws.stl_scratch.seasonal);
      // The trend from the longest-period STL (last refined) is the final
      // trend; intermediate ones are absorbed.
      if (k + 1 == periods.size()) std::swap(r.trend, ws.stl_scratch.trend);
    }
  }

  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (const auto& comp : r.seasonals) s += comp[i];
    r.remainder[i] = ys[i] - r.trend[i] - s;
  }
}

MstlResult mstl_decompose(std::span<const double> ys, const MstlConfig& cfg) {
  StlWorkspace ws;
  MstlResult r;
  mstl_decompose(ys, cfg, ws, r);
  return r;
}

}  // namespace nbv6::stats
