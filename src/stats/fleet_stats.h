// Fleet-scale statistics: the population-level machinery behind the
// paper's cross-residence comparisons, generalized from five instrumented
// households to arbitrarily large simulated fleets.
//
// Three pieces live here, all pure statistics (no engine dependency):
//   - the unpaired Wilcoxon rank-sum (Mann-Whitney U) test, complementing
//     the paired signed-rank test in wilcoxon.h for comparisons between
//     *disjoint* residence groups (dual-stack vs broken-CPE homes, heavy
//     streamers vs baseline households),
//   - StreamingCdf, a mergeable fixed-bin CDF/quantile accumulator so
//     population distributions over millions of residences never need the
//     full sample materialized in one vector, and
//   - the group-comparison panel row plus Holm-Bonferroni adjustment
//     across a panel's metrics (the family-wise control of Fig. 12 applied
//     to fleet metric panels).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "stats/descriptive.h"

namespace nbv6::stats {

// ------------------------------------------------ Wilcoxon rank-sum test

struct RankSumResult {
  /// Sample sizes actually tested.
  size_t n1 = 0;
  size_t n2 = 0;
  /// Mann-Whitney U statistic of the first sample (number of (x, y) pairs
  /// with x > y, ties counted half).
  double u1 = 0;
  /// Two-sided p-value. Exact distribution when both samples are small
  /// (n1, n2 <= 12) and the pooled sample has no tied values at all (ties
  /// within one sample also disqualify); normal approximation (with tie
  /// and continuity corrections) otherwise.
  double p_value = 1.0;
  /// Signed standardized statistic; >0 means the first sample tends larger.
  double z = 0;
  /// Effect size r = Z / sqrt(n1 + n2), in [-1, 1].
  double effect_size_r = 0;
};

/// Unpaired two-sided Wilcoxon rank-sum (Mann-Whitney U) test of xs vs ys.
/// Non-finite observations (NaN undefined-metric sentinels, infs) are
/// dropped before ranking; returns nullopt — a defined no-result, never
/// NaN statistics — when either sample has no finite values left.
/// Degenerate but testable inputs stay defined too: single observations
/// take the exact path, and an all-tied pool reports p = 1, z = 0.
std::optional<RankSumResult> wilcoxon_rank_sum(std::span<const double> xs,
                                               std::span<const double> ys);

// ------------------------------------------------------- streaming CDF

/// Mergeable streaming CDF/quantile accumulator over a fixed value range.
///
/// Values are counted into `bins` uniform-width bins over [lo, hi] (values
/// outside clamp to the edge bins); exact count, min, max, and Welford
/// mean/variance ride along. Quantile and CDF queries interpolate linearly
/// within a bin, so their error is bounded by one bin width — tight enough
/// for population figures at 128+ bins, while two accumulators merge by
/// integer bin addition (exact, order-independent) plus Chan's parallel
/// moment combination. Memory is O(bins) regardless of sample count.
class StreamingCdf {
 public:
  /// Requires lo < hi (throws std::invalid_argument otherwise); bins < 1
  /// is clamped to 1.
  StreamingCdf(double lo, double hi, int bins = 128);

  /// Non-finite values (the fleet layer's NaN undefined-metric sentinel,
  /// and +-inf artifacts) are skipped, so raw metric columns can stream in
  /// unfiltered.
  void add(double x);
  void add(std::span<const double> xs);

  /// True when `other` shares this accumulator's exact bin layout
  /// (lo, hi, bins) — the precondition merge() enforces. Lets shard
  /// reducers validate before merging instead of catching.
  [[nodiscard]] bool compatible_with(const StreamingCdf& other) const;

  /// Fold another accumulator in. Both must share (lo, hi, bins); a
  /// mismatched layout throws std::invalid_argument and leaves this
  /// accumulator untouched (strong guarantee — no counts are corrupted).
  void merge(const StreamingCdf& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 below 2 points.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// P(X <= x), linear within the containing bin. 0 when empty.
  [[nodiscard]] double cdf(double x) const;

  /// Smallest value v (up to bin resolution) with P(X <= v) >= q, for q in
  /// [0, 1]; q = 0 and q = 1 return the exact min/max.
  [[nodiscard]] double quantile(double q) const;

  /// Five-number + moment summary; quartiles at bin resolution, the rest
  /// exact.
  [[nodiscard]] Summary summary() const;

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const {
    return lo_ + width_ * static_cast<double>(bins_.size());
  }
  [[nodiscard]] int bins() const { return static_cast<int>(bins_.size()); }
  [[nodiscard]] std::uint64_t bin_count(int b) const {
    return bins_[static_cast<size_t>(b)];
  }

 private:
  double lo_;
  double width_;  // per-bin
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// ------------------------------------------------- group-comparison panel

/// One row of a group-comparison panel: one metric tested between two
/// residence groups (unpaired rank-sum) or two metrics over one group
/// (paired signed-rank).
struct PanelRow {
  std::string metric;
  bool paired = false;
  size_t n_a = 0;  ///< group-A sample size (pairs tested when paired)
  size_t n_b = 0;  ///< group-B sample size (== n_a when paired)
  double median_a = 0;
  double median_b = 0;
  double z = 0;
  double effect_r = 0;
  double p_raw = 1.0;
  double p_holm = 1.0;  ///< Holm-adjusted across the panel's rows
  bool significant = false;
};

/// Apply Holm-Bonferroni across the rows' raw p-values in place, filling
/// p_holm and significant at family-wise level `alpha`.
void holm_adjust(std::span<PanelRow> rows, double alpha = 0.05);

}  // namespace nbv6::stats
