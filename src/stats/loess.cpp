#include "stats/loess.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nbv6::stats {
namespace {

// Shared kernel, parameterized on the x accessor so the unit-spaced path
// needs no materialized x array, and on kRobust so the common
// no-robustness path carries no per-element weight branch. The inner
// regression loop is branchless (tricube clamped via max) so it
// vectorizes; zero-weight points contribute zero terms, same sums.
template <bool kRobust, typename XAt>
void loess_core(XAt x_at, std::span<const double> ys, const LoessConfig& cfg,
                std::span<const double> robustness, std::span<double> out) {
  const size_t n = ys.size();
  assert(out.size() == n);
  assert(robustness.empty() || robustness.size() == n);
  if (n == 0) return;
  if (n == 1) {
    out[0] = ys[0];
    return;
  }

  size_t q = cfg.span_points > 0
                 ? static_cast<size_t>(cfg.span_points)
                 : static_cast<size_t>(
                       std::max(2.0, cfg.span_fraction * static_cast<double>(n)));
  q = std::clamp<size_t>(q, 2, n);

  // x is sorted, so the q nearest neighbours of x_at(i) form a contiguous
  // window; slide it with two pointers.
  size_t lo = 0;
  for (size_t i = 0; i < n; ++i) {
    const double xi = x_at(i);
    // Advance window while the next point right is closer than the
    // farthest point left.
    while (lo + q < n && x_at(lo + q) - xi < xi - x_at(lo)) {
      ++lo;
    }
    // Ensure i is inside [lo, lo+q).
    if (i >= lo + q) lo = i - q + 1;
    if (i < lo) lo = i;
    size_t hi = lo + q;  // exclusive

    double dmax = std::max(xi - x_at(lo), x_at(hi - 1) - xi);
    if (dmax <= 0.0) dmax = 1.0;
    const double inv_dmax = 1.0 / dmax;

    // Weighted linear regression over the window.
    double sw = 0, swx = 0, swy = 0, swxx = 0, swxy = 0;
    for (size_t j = lo; j < hi; ++j) {
      const double dx = x_at(j) - xi;
      const double u = std::abs(dx) * inv_dmax;
      double t = 1.0 - u * u * u;
      t = std::max(t, 0.0);
      double w = t * t * t;  // tricube, zero outside the window
      if constexpr (kRobust) w *= robustness[j];
      sw += w;
      swx += w * dx;
      swy += w * ys[j];
      swxx += w * dx * dx;
      swxy += w * dx * ys[j];
    }
    if (sw <= 0.0) {
      out[i] = ys[i];
      continue;
    }
    if (cfg.degree == 0) {
      out[i] = swy / sw;
    } else {
      double denom = sw * swxx - swx * swx;
      if (std::abs(denom) < 1e-12 * sw * sw || swxx == 0.0) {
        out[i] = swy / sw;  // degenerate: all x equal, fall back to mean
      } else {
        // Fit y = a + b*dx around dx = 0; value at the target is `a`.
        double b = (sw * swxy - swx * swy) / denom;
        double a = (swy - b * swx) / sw;
        out[i] = a;
      }
    }
  }
}

}  // namespace

void loess_into(std::span<const double> xs, std::span<const double> ys,
                const LoessConfig& cfg, std::span<const double> robustness,
                std::span<double> out) {
  assert(xs.size() == ys.size());
  auto x_at = [xs](size_t i) { return xs[i]; };
  if (robustness.empty())
    loess_core<false>(x_at, ys, cfg, robustness, out);
  else
    loess_core<true>(x_at, ys, cfg, robustness, out);
}

void loess_unit_into(std::span<const double> ys, const LoessConfig& cfg,
                     std::span<const double> robustness,
                     std::span<double> out) {
  auto x_at = [](size_t i) { return static_cast<double>(i); };
  if (robustness.empty())
    loess_core<false>(x_at, ys, cfg, robustness, out);
  else
    loess_core<true>(x_at, ys, cfg, robustness, out);
}

std::vector<double> loess(std::span<const double> xs,
                          std::span<const double> ys, const LoessConfig& cfg,
                          std::span<const double> robustness) {
  std::vector<double> out(ys.size(), 0.0);
  loess_into(xs, ys, cfg, robustness, out);
  return out;
}

std::vector<double> loess(std::span<const double> ys, const LoessConfig& cfg,
                          std::span<const double> robustness) {
  std::vector<double> out(ys.size(), 0.0);
  loess_unit_into(ys, cfg, robustness, out);
  return out;
}

}  // namespace nbv6::stats
