#include "stats/loess.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace nbv6::stats {
namespace {

// Shared kernel, parameterized on the x accessor so the unit-spaced path
// needs no materialized x array, on kRobust so the common no-robustness
// path carries no per-element weight branch, and on kUnit to enable the
// cached-weight fast path below. The general regression loop is
// branchless (tricube clamped via max) so it vectorizes; zero-weight
// points contribute zero terms, same sums.
//
// Unit-spaced fast path (kUnit && !kRobust — the MSTL inner loop): once
// the sliding window reaches its steady interior state, every point sees
// the same window shape — the same offset inside the window and the same
// dmax — so the tricube weight vector and its three data-independent sums
// (sw, swx, swxx) are constants. They are computed once per distinct
// shape (one interior shape plus O(q) boundary shapes) and reused; each
// point then costs only the two data-dependent dot products (swy, swxy),
// run with four accumulator lanes each so the floating-point adds do not
// serialize on one latency chain. The lane fold reassociates the sums
// relative to the straight-line loop — legal here because no
// golden-pinned output flows through LOESS (the decompose/client layers
// consume it under tolerance tests).
template <bool kRobust, bool kUnit, typename XAt>
void loess_core(XAt x_at, std::span<const double> ys, const LoessConfig& cfg,
                std::span<const double> robustness, std::span<double> out) {
  const size_t n = ys.size();
  assert(out.size() == n);
  assert(robustness.empty() || robustness.size() == n);
  if (n == 0) return;
  if (n == 1) {
    out[0] = ys[0];
    return;
  }

  size_t q = cfg.span_points > 0
                 ? static_cast<size_t>(cfg.span_points)
                 : static_cast<size_t>(
                       std::max(2.0, cfg.span_fraction * static_cast<double>(n)));
  q = std::clamp<size_t>(q, 2, n);

  // Cached window shape for the unit-spaced fast path: weights, w*dx, and
  // the data-independent sums, keyed by (offset in window, dmax).
  std::vector<double> wc, wxc;
  double c_sw = 0, c_swx = 0, c_swxx = 0;
  size_t c_off = static_cast<size_t>(-1);
  double c_dmax = -1.0;

  // x is sorted, so the q nearest neighbours of x_at(i) form a contiguous
  // window; slide it with two pointers.
  size_t lo = 0;
  for (size_t i = 0; i < n; ++i) {
    const double xi = x_at(i);
    // Advance window while the next point right is closer than the
    // farthest point left.
    while (lo + q < n && x_at(lo + q) - xi < xi - x_at(lo)) {
      ++lo;
    }
    // Ensure i is inside [lo, lo+q).
    if (i >= lo + q) lo = i - q + 1;
    if (i < lo) lo = i;
    size_t hi = lo + q;  // exclusive

    double dmax = std::max(xi - x_at(lo), x_at(hi - 1) - xi);
    if (dmax <= 0.0) dmax = 1.0;
    const double inv_dmax = 1.0 / dmax;

    // Weighted linear regression over the window.
    double sw, swx, swy, swxx, swxy;
    if constexpr (kUnit && !kRobust) {
      const size_t off = i - lo;  // dx of element k is exactly k - off
      if (off != c_off || dmax != c_dmax) {
        wc.assign(q, 0.0);
        wxc.assign(q, 0.0);
        c_sw = c_swx = c_swxx = 0.0;
        for (size_t k = 0; k < q; ++k) {
          const double dx =
              static_cast<double>(k) - static_cast<double>(off);
          const double u = std::abs(dx) * inv_dmax;
          double t = 1.0 - u * u * u;
          t = std::max(t, 0.0);
          const double w = t * t * t;  // tricube, zero outside the window
          wc[k] = w;
          wxc[k] = w * dx;
          c_sw += w;
          c_swx += w * dx;
          c_swxx += w * dx * dx;
        }
        c_off = off;
        c_dmax = dmax;
      }
      double y0 = 0, y1 = 0, y2 = 0, y3 = 0;
      double xy0 = 0, xy1 = 0, xy2 = 0, xy3 = 0;
      const double* yw = ys.data() + lo;
      size_t k = 0;
      for (; k + 4 <= q; k += 4) {
        y0 += wc[k] * yw[k];
        y1 += wc[k + 1] * yw[k + 1];
        y2 += wc[k + 2] * yw[k + 2];
        y3 += wc[k + 3] * yw[k + 3];
        xy0 += wxc[k] * yw[k];
        xy1 += wxc[k + 1] * yw[k + 1];
        xy2 += wxc[k + 2] * yw[k + 2];
        xy3 += wxc[k + 3] * yw[k + 3];
      }
      for (; k < q; ++k) {
        y0 += wc[k] * yw[k];
        xy0 += wxc[k] * yw[k];
      }
      sw = c_sw;
      swx = c_swx;
      swxx = c_swxx;
      swy = (y0 + y2) + (y1 + y3);
      swxy = (xy0 + xy2) + (xy1 + xy3);
    } else {
      sw = swx = swy = swxx = swxy = 0.0;
      for (size_t j = lo; j < hi; ++j) {
        const double dx = x_at(j) - xi;
        const double u = std::abs(dx) * inv_dmax;
        double t = 1.0 - u * u * u;
        t = std::max(t, 0.0);
        double w = t * t * t;  // tricube, zero outside the window
        if constexpr (kRobust) w *= robustness[j];
        sw += w;
        swx += w * dx;
        swy += w * ys[j];
        swxx += w * dx * dx;
        swxy += w * dx * ys[j];
      }
    }
    if (sw <= 0.0) {
      out[i] = ys[i];
      continue;
    }
    if (cfg.degree == 0) {
      out[i] = swy / sw;
    } else {
      double denom = sw * swxx - swx * swx;
      if (std::abs(denom) < 1e-12 * sw * sw || swxx == 0.0) {
        out[i] = swy / sw;  // degenerate: all x equal, fall back to mean
      } else {
        // Fit y = a + b*dx around dx = 0; value at the target is `a`.
        double b = (sw * swxy - swx * swy) / denom;
        double a = (swy - b * swx) / sw;
        out[i] = a;
      }
    }
  }
}

}  // namespace

void loess_into(std::span<const double> xs, std::span<const double> ys,
                const LoessConfig& cfg, std::span<const double> robustness,
                std::span<double> out) {
  assert(xs.size() == ys.size());
  auto x_at = [xs](size_t i) { return xs[i]; };
  if (robustness.empty())
    loess_core<false, false>(x_at, ys, cfg, robustness, out);
  else
    loess_core<true, false>(x_at, ys, cfg, robustness, out);
}

void loess_unit_into(std::span<const double> ys, const LoessConfig& cfg,
                     std::span<const double> robustness,
                     std::span<double> out) {
  auto x_at = [](size_t i) { return static_cast<double>(i); };
  if (robustness.empty())
    loess_core<false, true>(x_at, ys, cfg, robustness, out);
  else
    loess_core<true, true>(x_at, ys, cfg, robustness, out);
}

std::vector<double> loess(std::span<const double> xs,
                          std::span<const double> ys, const LoessConfig& cfg,
                          std::span<const double> robustness) {
  std::vector<double> out(ys.size(), 0.0);
  loess_into(xs, ys, cfg, robustness, out);
  return out;
}

std::vector<double> loess(std::span<const double> ys, const LoessConfig& cfg,
                          std::span<const double> robustness) {
  std::vector<double> out(ys.size(), 0.0);
  loess_unit_into(ys, cfg, robustness, out);
  return out;
}

}  // namespace nbv6::stats
