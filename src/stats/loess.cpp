#include "stats/loess.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nbv6::stats {
namespace {

double tricube(double u) {
  u = std::abs(u);
  if (u >= 1.0) return 0.0;
  double t = 1.0 - u * u * u;
  return t * t * t;
}

}  // namespace

std::vector<double> loess(std::span<const double> xs,
                          std::span<const double> ys, const LoessConfig& cfg,
                          std::span<const double> robustness) {
  const size_t n = xs.size();
  assert(ys.size() == n);
  assert(robustness.empty() || robustness.size() == n);
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  if (n == 1) {
    out[0] = ys[0];
    return out;
  }

  size_t q = cfg.span_points > 0
                 ? static_cast<size_t>(cfg.span_points)
                 : static_cast<size_t>(
                       std::max(2.0, cfg.span_fraction * static_cast<double>(n)));
  q = std::clamp<size_t>(q, 2, n);

  // xs is sorted, so the q nearest neighbours of xs[i] form a contiguous
  // window; slide it with two pointers.
  size_t lo = 0;
  for (size_t i = 0; i < n; ++i) {
    // Advance window while the next point right is closer than the
    // farthest point left.
    while (lo + q < n &&
           xs[lo + q] - xs[i] < xs[i] - xs[lo]) {
      ++lo;
    }
    // Ensure i is inside [lo, lo+q).
    if (i >= lo + q) lo = i - q + 1;
    if (i < lo) lo = i;
    size_t hi = lo + q;  // exclusive

    double dmax = std::max(xs[i] - xs[lo], xs[hi - 1] - xs[i]);
    if (dmax <= 0.0) dmax = 1.0;

    // Weighted linear regression over the window.
    double sw = 0, swx = 0, swy = 0, swxx = 0, swxy = 0;
    for (size_t j = lo; j < hi; ++j) {
      double w = tricube((xs[j] - xs[i]) / dmax);
      if (!robustness.empty()) w *= robustness[j];
      if (w <= 0.0) continue;
      double dx = xs[j] - xs[i];
      sw += w;
      swx += w * dx;
      swy += w * ys[j];
      swxx += w * dx * dx;
      swxy += w * dx * ys[j];
    }
    if (sw <= 0.0) {
      out[i] = ys[i];
      continue;
    }
    if (cfg.degree == 0) {
      out[i] = swy / sw;
    } else {
      double denom = sw * swxx - swx * swx;
      if (std::abs(denom) < 1e-12 * sw * sw || swxx == 0.0) {
        out[i] = swy / sw;  // degenerate: all x equal, fall back to mean
      } else {
        // Fit y = a + b*dx around dx = 0; value at the target is `a`.
        double b = (sw * swxy - swx * swy) / denom;
        double a = (swy - b * swx) / sw;
        out[i] = a;
      }
    }
  }
  return out;
}

std::vector<double> loess(std::span<const double> ys, const LoessConfig& cfg,
                          std::span<const double> robustness) {
  std::vector<double> xs(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  return loess(xs, ys, cfg, robustness);
}

}  // namespace nbv6::stats
