#include "stats/wilcoxon.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace nbv6::stats {

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

namespace {

// Shared midrank engine: rank by key(value), ties share the average of the
// ranks they occupy, and the pooled tie term sum(t^3 - t) accumulates into
// `tie_term` when requested.
template <typename Key>
std::vector<double> midranks_by(std::span<const double> values, Key key,
                                double* tie_term) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return key(values[a]) < key(values[b]);
  });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && key(values[order[j + 1]]) == key(values[order[i]]))
      ++j;
    // Positions i..j (0-based) share the average rank of positions i+1..j+1.
    double avg = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    if (tie_term != nullptr) {
      double t = static_cast<double>(j - i + 1);
      *tie_term += t * t * t - t;
    }
    i = j + 1;
  }
  return ranks;
}

}  // namespace

std::vector<double> midranks(std::span<const double> values) {
  return midranks_by(values, [](double v) { return std::abs(v); }, nullptr);
}

std::vector<double> midranks_signed(std::span<const double> values,
                                    double& tie_term) {
  tie_term = 0.0;
  return midranks_by(values, [](double v) { return v; }, &tie_term);
}

namespace {

// Exact null distribution of W+ for n untied ranks: counts of subsets of
// {1..n} summing to each value, via DP. Feasible well past n = 25.
double exact_two_sided_p(int n, double w_plus) {
  const int max_sum = n * (n + 1) / 2;
  std::vector<double> counts(static_cast<size_t>(max_sum) + 1, 0.0);
  counts[0] = 1.0;
  for (int r = 1; r <= n; ++r)
    for (int s = max_sum; s >= r; --s)
      counts[static_cast<size_t>(s)] += counts[static_cast<size_t>(s - r)];

  const double total = std::pow(2.0, n);
  // Two-sided: double the smaller tail, using the symmetry of the null
  // distribution around max_sum / 2.
  double w = w_plus;
  double mirrored = static_cast<double>(max_sum) - w;
  double lo_stat = std::min(w, mirrored);
  double tail = 0.0;
  for (int s = 0; s <= static_cast<int>(std::floor(lo_stat + 1e-9)); ++s)
    tail += counts[static_cast<size_t>(s)];
  double p = 2.0 * tail / total;
  return std::min(1.0, p);
}

}  // namespace

std::optional<WilcoxonResult> wilcoxon_signed_rank(
    std::span<const double> diffs) {
  // Discard zeros (Wilcoxon's treatment) and non-finite differences: NaN
  // is the fleet layer's undefined-metric sentinel and would otherwise
  // poison every midrank comparison, and an infinite difference has no
  // defined rank either. Dropping them keeps degenerate inputs at a
  // defined no-result (nullopt when nothing testable remains).
  std::vector<double> d;
  d.reserve(diffs.size());
  for (double x : diffs)
    if (x != 0.0 && std::isfinite(x)) d.push_back(x);
  if (d.empty()) return std::nullopt;

  auto ranks = midranks(d);
  const size_t n = d.size();

  WilcoxonResult r;
  r.n = n;
  double w_plus = 0.0;
  for (size_t i = 0; i < n; ++i)
    if (d[i] > 0) w_plus += ranks[i];
  r.w_plus = w_plus;

  bool has_ties = [&] {
    std::vector<double> abs_sorted(n);
    for (size_t i = 0; i < n; ++i) abs_sorted[i] = std::abs(d[i]);
    std::sort(abs_sorted.begin(), abs_sorted.end());
    return std::adjacent_find(abs_sorted.begin(), abs_sorted.end()) !=
           abs_sorted.end();
  }();

  const double nn = static_cast<double>(n);
  const double mean_w = nn * (nn + 1.0) / 4.0;

  if (!has_ties && n <= 25) {
    r.p_value = exact_two_sided_p(static_cast<int>(n), w_plus);
    // Z from the exact variance so the effect size stays consistent.
    double var_w = nn * (nn + 1.0) * (2.0 * nn + 1.0) / 24.0;
    r.z = var_w > 0 ? (w_plus - mean_w) / std::sqrt(var_w) : 0.0;
  } else {
    // Normal approximation with tie correction: the variance shrinks by
    // sum(t^3 - t) / 48 per tie group of size t.
    double tie_term = 0.0;
    {
      std::vector<double> abs_d(n);
      for (size_t i = 0; i < n; ++i) abs_d[i] = std::abs(d[i]);
      std::sort(abs_d.begin(), abs_d.end());
      size_t i = 0;
      while (i < n) {
        size_t j = i;
        while (j + 1 < n && abs_d[j + 1] == abs_d[i]) ++j;
        double t = static_cast<double>(j - i + 1);
        tie_term += t * t * t - t;
        i = j + 1;
      }
    }
    double var_w =
        nn * (nn + 1.0) * (2.0 * nn + 1.0) / 24.0 - tie_term / 48.0;
    if (var_w <= 0) {
      // All differences tied at one magnitude with both signs impossible:
      // no variance means no evidence either way.
      r.p_value = 1.0;
      r.z = 0.0;
    } else {
      // Continuity correction toward the mean.
      double num = w_plus - mean_w;
      double cc = num > 0 ? -0.5 : (num < 0 ? 0.5 : 0.0);
      r.z = (num + cc) / std::sqrt(var_w);
      r.p_value = std::min(1.0, 2.0 * (1.0 - normal_cdf(std::abs(r.z))));
    }
  }

  r.effect_size_r = r.z / std::sqrt(nn);
  r.effect_size_r = std::clamp(r.effect_size_r, -1.0, 1.0);
  return r;
}

std::optional<WilcoxonResult> wilcoxon_signed_rank(std::span<const double> xs,
                                                   std::span<const double> ys) {
  // Mismatched lengths are a caller bug, but "no result" is a kinder
  // failure mode than reading past the shorter span in Release builds.
  if (xs.size() != ys.size()) return std::nullopt;
  std::vector<double> d(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) d[i] = xs[i] - ys[i];
  return wilcoxon_signed_rank(d);
}

HolmResult holm_bonferroni(std::span<const double> p_values, double alpha) {
  const size_t m = p_values.size();
  HolmResult out;
  out.reject.assign(m, false);
  out.adjusted_p.assign(m, 1.0);
  if (m == 0) return out;

  // NaN p-values (a degenerate test upstream) sort as "no evidence": they
  // compare as 1.0 so the ordering stays a strict weak order and a NaN can
  // never be rejected, rather than letting NaN comparisons scramble the
  // step-down sequence.
  std::vector<double> ps(p_values.begin(), p_values.end());
  for (double& p : ps)
    if (std::isnan(p)) p = 1.0;

  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return ps[a] < ps[b]; });

  // Step-down: reject while p_(k) <= alpha / (m - k); stop at first failure.
  bool stopped = false;
  double running_max = 0.0;
  for (size_t k = 0; k < m; ++k) {
    size_t idx = order[k];
    double factor = static_cast<double>(m - k);
    double adj = std::min(1.0, ps[idx] * factor);
    running_max = std::max(running_max, adj);  // enforce monotonicity
    out.adjusted_p[idx] = running_max;
    if (!stopped && ps[idx] <= alpha / factor) {
      out.reject[idx] = true;
    } else {
      stopped = true;
    }
  }
  return out;
}

}  // namespace nbv6::stats
