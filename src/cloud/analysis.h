// Cloud adoption analyses (§5).
//
// Inputs are DomainRecords: one per observed FQDN, carrying its resolved A
// and AAAA addresses and CNAME terminal (built by the caller from any DNS
// view). Three analyses mirror the paper's:
//
//   - provider_breakdown: attribute each record to the organization(s)
//     originating the BGP prefixes of its addresses and classify it as
//     IPv4-only / IPv6-full / IPv6-only *within each org's address space* —
//     the per-org view that surfaces the Bunnyway/Datacamp and Akamai
//     split-attribution artifacts (Fig. 11, Table 3).
//   - service_breakdown: identify the tenant-facing service by CNAME
//     suffix (He et al.'s technique) and measure per-service IPv6
//     readiness (Table 2).
//   - MultiCloudComparison: find eTLD+1 tenants spread across two or more
//     orgs, compare per-org IPv6-full subdomain fractions with two-sided
//     Wilcoxon signed-rank tests, and control FWER with Holm-Bonferroni
//     (Fig. 12).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cloud/providers.h"
#include "dns/resolver.h"
#include "net/ip.h"
#include "stats/wilcoxon.h"

namespace nbv6::cloud {

struct DomainRecord {
  std::string fqdn;
  std::string etld1;
  std::optional<net::IpAddr> a_addr;
  std::optional<net::IpAddr> aaaa_addr;
  /// Terminal name of the CNAME chain (equals fqdn when chain-free).
  std::string cname_terminal;

  [[nodiscard]] bool has_a() const { return a_addr.has_value(); }
  [[nodiscard]] bool has_aaaa() const { return aaaa_addr.has_value(); }
};

/// Resolve `names` against `resolver` into DomainRecords. `etld1_of` maps a
/// hostname to its registrable domain (keeps this module independent of
/// the PSL implementation). Unresolvable names are dropped.
std::vector<DomainRecord> collect_domain_records(
    const dns::Resolver& resolver, std::span<const std::string> names,
    const std::function<std::string(std::string_view)>& etld1_of);

struct ProviderBreakdownRow {
  std::string org;
  int total = 0;
  int v4_only = 0;   ///< A in this org, AAAA not in this org
  int v6_full = 0;   ///< A and AAAA both in this org
  int v6_only = 0;   ///< AAAA in this org, A not in this org
  [[nodiscard]] double pct(int n) const {
    return total == 0 ? 0.0 : 100.0 * n / static_cast<double>(total);
  }
};

/// Per-org rows sorted by total descending, preceded by an "Overall" row
/// classifying every record globally (has A / has AAAA, any org).
std::vector<ProviderBreakdownRow> provider_breakdown(
    std::span<const DomainRecord> records, const ProviderCatalog& catalog);

struct ServiceAdoptionRow {
  std::string provider_org;
  std::string service_name;
  V6Policy policy = V6Policy::opt_in;
  int total = 0;
  int v6_ready = 0;  ///< records with an AAAA anywhere
  [[nodiscard]] double pct_ready() const {
    return total == 0 ? 0.0 : 100.0 * v6_ready / static_cast<double>(total);
  }
};

/// Group records by CNAME-suffix-identified service (Table 2). Records
/// whose terminals match no catalogued suffix are skipped.
std::vector<ServiceAdoptionRow> service_breakdown(
    std::span<const DomainRecord> records, const ProviderCatalog& catalog);

struct PairComparison {
  std::string org1;
  std::string org2;
  /// Shared tenants where the two orgs differ in IPv6 support (the (n) of
  /// Fig. 12's cells).
  int differing_tenants = 0;
  double effect_size_r = 0.0;  ///< >0: org1 more IPv6-full for shared tenants
  double p_value = 1.0;
  bool significant = false;  ///< after Holm-Bonferroni at alpha
  bool comparable = false;   ///< >= 2 differing tenants existed
};

class MultiCloudComparison {
 public:
  /// `merge` renames orgs before grouping (e.g. both Cloudflare entities
  /// to "Cloudflare (All)"), reproducing the paper's merged rows.
  MultiCloudComparison(std::span<const DomainRecord> records,
                       const ProviderCatalog& catalog,
                       const std::map<std::string, std::string>& merge = {},
                       double alpha = 0.05);

  [[nodiscard]] int multi_cloud_tenant_count() const { return tenant_count_; }
  [[nodiscard]] const std::vector<std::string>& orgs() const { return orgs_; }
  /// All org pairs (i < j in orgs() order).
  [[nodiscard]] const std::vector<PairComparison>& pairs() const {
    return pairs_;
  }
  /// Wins(O) = number of significant pairs where O is the more-IPv6 side;
  /// used to order Fig. 12's axes.
  [[nodiscard]] int wins(const std::string& org) const;

 private:
  int tenant_count_ = 0;
  std::vector<std::string> orgs_;
  std::vector<PairComparison> pairs_;
};

}  // namespace nbv6::cloud
