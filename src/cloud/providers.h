// Cloud and CDN provider catalog: organizations, their ASes and prefixes,
// and their tenant-facing services.
//
// Encodes the entities of §5: the top-15 organizations of Table 3 / Fig. 11
// (with their relative tenant counts), the 20 CNAME-identifiable services
// of Table 2 (with each service's IPv6 enablement policy and measured
// adoption), and the two attribution quirks the paper highlights —
// Bunnyway serving AAAA from its own AS while the matching A records sit in
// Datacamp's, and Akamai splitting v6/v4 across two corporate entities.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/asn.h"
#include "net/ip.h"
#include "net/prefix.h"

namespace nbv6::cloud {

/// How a service exposes IPv6 to tenants — §5.3's policy spectrum, which
/// the paper finds is the strongest predictor of tenant adoption.
enum class V6Policy : std::uint8_t {
  always_on,       ///< cannot be disabled (Azure Front Door)
  default_on,      ///< on unless the tenant opts out (Cloudflare, CloudFront)
  opt_in,          ///< a control-panel toggle (many compute products)
  opt_in_code,     ///< requires tenant code/URL changes (S3 dual-stack URLs)
  unsupported,     ///< no IPv6 offering
};

std::string_view to_string(V6Policy p);

/// A tenant-facing product identified by CNAME suffix (Table 2).
struct CloudService {
  std::string name;          ///< "Amazon CloudFront CDN"
  std::string cname_suffix;  ///< "cloudfront.net"
  V6Policy policy = V6Policy::opt_in;
  /// Fraction of tenant domains on this service that are IPv6-ready —
  /// Table 2's measured adoption, used as the generative rate.
  double v6_adoption = 0.0;
  /// Relative share of the provider's tenant domains on this service.
  double weight = 1.0;
};

struct Provider {
  std::string org_name;  ///< CAIDA AS-to-Org style organization name
  std::vector<net::Asn> asns;
  /// Relative share of all hosted domains (Table 3's domain counts).
  double domain_share = 0.0;
  /// Baseline tenant IPv6-full fraction for domains NOT on a listed
  /// service (generic compute/hosting on this org).
  double generic_v6_rate = 0.1;
  std::vector<CloudService> services;
  /// Attribution quirk: AAAA records for this org's tenants resolve into a
  /// different org's address space (empty = none). Bunnyway's A records
  /// live in Datacamp space; we model the inverse direction: AAAA in
  /// Bunnyway's AS, A in Datacamp's.
  std::string a_records_hosted_by;
};

/// The catalog plus the address plan and BGP announcements for every
/// provider AS.
class ProviderCatalog {
 public:
  ProviderCatalog();

  [[nodiscard]] const std::vector<Provider>& providers() const {
    return providers_;
  }
  [[nodiscard]] const Provider& at(size_t i) const { return providers_[i]; }
  [[nodiscard]] size_t size() const { return providers_.size(); }

  [[nodiscard]] std::optional<size_t> find(std::string_view org_name) const;

  /// The BGP table announcing every provider prefix.
  [[nodiscard]] const net::AsMap& as_map() const { return as_map_; }

  /// Org name that `asn` belongs to (CAIDA AS-to-Org join), empty if none.
  [[nodiscard]] std::string org_of_asn(net::Asn asn) const;

  /// Allocate the i-th v4 / v6 address inside a provider's space. The
  /// address plan gives each AS its own /16 (v4) and /40 (v6).
  [[nodiscard]] net::IPv4Addr v4_address(size_t provider, std::uint32_t i) const;
  [[nodiscard]] net::IPv6Addr v6_address(size_t provider, std::uint32_t i) const;

  /// Provider index owning an address (via BGP + org join).
  [[nodiscard]] std::optional<size_t> provider_of(const net::IpAddr& a) const;

  /// Batch attribution through the LPM trie's batch path: `out[i]` is the
  /// provider index owning `addrs[i]`. The shape the analysis loops have —
  /// resolve every record's addresses in one pass, then aggregate.
  void providers_of(std::span<const net::IpAddr> addrs,
                    std::span<std::optional<size_t>> out) const;

  /// Index of the provider whose AS hosts A records for `provider`'s
  /// tenants (the Bunnyway→Datacamp quirk); nullopt when no quirk.
  [[nodiscard]] std::optional<size_t> a_record_host(size_t provider) const;

 private:
  std::vector<Provider> providers_;
  net::AsMap as_map_;
  std::vector<net::Asn> primary_asn_;  // per provider, for the address plan
  std::unordered_map<net::Asn, std::uint32_t> asn_slot_v4_;
  std::unordered_map<net::Asn, std::uint64_t> asn_slot_hi_;
  std::unordered_map<net::Asn, std::string> org_by_asn_;
  std::unordered_map<net::Asn, size_t> provider_by_asn_;
};

}  // namespace nbv6::cloud
