#include "cloud/providers.h"

#include <cassert>

namespace nbv6::cloud {

std::string_view to_string(V6Policy p) {
  switch (p) {
    case V6Policy::always_on:
      return "Always On";
    case V6Policy::default_on:
      return "Default-On, Opt-out";
    case V6Policy::opt_in:
      return "Opt-in";
    case V6Policy::opt_in_code:
      return "Opt-in (code change)";
    case V6Policy::unsupported:
      return "Unsupported";
  }
  return "?";
}

namespace {

CloudService svc(std::string name, std::string suffix, V6Policy policy,
                 double adoption, double weight) {
  CloudService s;
  s.name = std::move(name);
  s.cname_suffix = std::move(suffix);
  s.policy = policy;
  s.v6_adoption = adoption;
  s.weight = weight;
  return s;
}

}  // namespace

ProviderCatalog::ProviderCatalog() {
  using P = V6Policy;
  auto add = [this](Provider p) { providers_.push_back(std::move(p)); };

  // Domain shares follow Table 3's counts (out of 272,964 total); service
  // weights follow Table 2's per-service totals; adoption rates are the
  // measured "% IPv6-ready" columns.
  {
    Provider p;
    p.org_name = "Cloudflare, Inc.";
    p.asns = {13335, 209242};
    p.domain_share = 0.217;
    p.generic_v6_rate = 0.87;  // org-wide IPv6-full is 85.2%
    p.services = {
        svc("Cloudflare CDN", "cdn.cloudflare.net", P::default_on, 0.701, 4402),
    };
    add(p);
  }
  {
    Provider p;
    p.org_name = "Amazon.com, Inc.";
    p.asns = {16509, 14618};
    p.domain_share = 0.212;
    p.generic_v6_rate = 0.12;
    p.services = {
        svc("Amazon CloudFront CDN", "cloudfront.net", P::default_on, 0.711, 12851),
        svc("Amazon Elastic Load Balancer", "elb.amazonaws.com", P::opt_in, 0.074, 2731),
        svc("Amazon S3", "s3.amazonaws.com", P::opt_in_code, 0.004, 1862),
        svc("Amazon API Gateway", "execute-api.amazonaws.com", P::opt_in_code, 0.0, 419),
        svc("Amazon Global Accelerator", "awsglobalaccelerator.com", P::opt_in, 0.027, 150),
        svc("Amazon Web App. Firewall", "waf.amazonaws.com", P::opt_in_code, 0.0, 134),
    };
    add(p);
  }
  {
    Provider p;
    p.org_name = "Google LLC";
    p.asns = {15169, 396982};
    p.domain_share = 0.149;
    p.generic_v6_rate = 0.67;
    p.services = {
        svc("Google Cloud Run", "run.app", P::default_on, 1.0, 334),
        svc("Google App Engine", "appspot.com", P::default_on, 1.0, 150),
    };
    add(p);
  }
  {
    Provider p;
    p.org_name = "Akamai International B.V.";
    p.asns = {20940};
    p.domain_share = 0.0386;
    p.generic_v6_rate = 0.50;
    p.services = {
        svc("Akamai CDN", "edgekey.net", P::default_on, 0.488, 7419),
        svc("Akamai NetStorage", "akamaihd.net", P::default_on, 0.484, 1633),
    };
    add(p);
  }
  {
    Provider p;
    p.org_name = "Fastly, Inc.";
    p.asns = {54113};
    p.domain_share = 0.0284;
    p.generic_v6_rate = 0.343;
    add(p);
  }
  {
    Provider p;
    p.org_name = "Microsoft Corporation";
    p.asns = {8075};
    p.domain_share = 0.0201;
    p.generic_v6_rate = 0.10;
    p.services = {
        svc("Azure Stack/IoT Edge", "azure-devices.net", P::opt_in, 1.0, 1134),
        svc("Azure Front Door CDN", "azurefd.net", P::always_on, 1.0, 913),
        svc("Azure Cloud Services / VMs", "cloudapp.azure.com", P::opt_in, 0.003, 607),
        svc("Azure Websites", "azurewebsites.net", P::unsupported, 0.0, 544),
        svc("Azure Blob Storage", "blob.core.windows.net", P::unsupported, 0.0, 354),
    };
    add(p);
  }
  {
    Provider p;
    p.org_name = "Akamai Technologies, Inc.";
    p.asns = {16625};
    p.domain_share = 0.0198;
    p.generic_v6_rate = 0.034;
    add(p);
  }
  {
    Provider p;
    p.org_name = "Cloudflare London, LLC";
    p.asns = {203898};
    p.domain_share = 0.0127;
    p.generic_v6_rate = 0.166;
    add(p);
  }
  {
    Provider p;
    p.org_name = "Hetzner Online GmbH";
    p.asns = {24940};
    p.domain_share = 0.0121;
    p.generic_v6_rate = 0.174;
    add(p);
  }
  {
    Provider p;
    p.org_name = "OVH SAS";
    p.asns = {16276};
    p.domain_share = 0.0115;
    p.generic_v6_rate = 0.130;
    add(p);
  }
  {
    Provider p;
    p.org_name = "Hangzhou Alibaba Advertising Co.,Ltd.";
    p.asns = {37963};
    p.domain_share = 0.0110;
    p.generic_v6_rate = 0.202;
    add(p);
  }
  {
    Provider p;
    p.org_name = "Datacamp Limited";
    p.asns = {60068};
    p.domain_share = 0.0106;
    p.generic_v6_rate = 0.40;
    p.services = {
        svc("CDN77", "cdn77.org", P::opt_in, 0.887, 759),
        svc("bunny.net CDN", "b-cdn.net", P::default_on, 0.167, 1300),
    };
    add(p);
  }
  {
    Provider p;
    p.org_name = "DigitalOcean, LLC";
    p.asns = {14061};
    p.domain_share = 0.0070;
    p.generic_v6_rate = 0.092;
    add(p);
  }
  {
    Provider p;
    p.org_name = "Incapsula Inc";
    p.asns = {19551};
    p.domain_share = 0.0050;
    p.generic_v6_rate = 0.035;
    add(p);
  }
  {
    Provider p;
    // Bunnyway's tenants take AAAA records in Bunnyway address space while
    // their A records are served from Datacamp's (the partnership §5.1
    // unpicks): org-level attribution therefore sees it as 99.5% IPv6-only.
    Provider& q = p;
    q.org_name = "BUNNYWAY, informacijske storitve d.o.o.";
    q.asns = {200325};
    q.domain_share = 0.0048;
    q.generic_v6_rate = 0.995;
    q.a_records_hosted_by = "Datacamp Limited";
    q.services = {
        svc("bunny.net CDN", "bunnyinfra.net", P::default_on, 0.999, 1004),
    };
    add(p);
  }
  {
    // Everything else: the long tail of small hosts outside the top-15.
    Provider p;
    p.org_name = "Other Hosting";
    p.asns = {399999};
    p.domain_share = 0.24;
    p.generic_v6_rate = 0.45;
    add(p);
  }

  // Address plan + BGP announcements: each ASN owns a /12 of v4 at
  // 41.0.0.0 and a /44 of v6 at 2a00::, indexed by global ASN slot.
  std::uint32_t slot = 0;
  for (size_t i = 0; i < providers_.size(); ++i) {
    primary_asn_.push_back(providers_[i].asns.front());
    for (net::Asn asn : providers_[i].asns) {
      // /12 per AS slot carved from 40.0.0.0/8 onward; addition (not OR)
      // so slots past 15 carry cleanly into the next /8.
      std::uint32_t base_value = (40u << 24) + (slot << 20);
      as_map_.announce(net::Prefix4(net::IPv4Addr(base_value), 12), asn);
      std::uint64_t hi = (0x2a00ull << 48) | (static_cast<std::uint64_t>(slot) << 24);
      as_map_.announce(
          net::Prefix6(net::IPv6Addr::from_halves(hi, 0), 44), asn);
      as_map_.register_name(asn, providers_[i].org_name);
      asn_slot_v4_[asn] = base_value;
      asn_slot_hi_[asn] = hi;
      org_by_asn_[asn] = providers_[i].org_name;
      provider_by_asn_[asn] = i;
      ++slot;
    }
  }
}

std::optional<size_t> ProviderCatalog::find(std::string_view org_name) const {
  for (size_t i = 0; i < providers_.size(); ++i)
    if (providers_[i].org_name == org_name) return i;
  return std::nullopt;
}

std::string ProviderCatalog::org_of_asn(net::Asn asn) const {
  auto it = org_by_asn_.find(asn);
  return it == org_by_asn_.end() ? std::string{} : it->second;
}

net::IPv4Addr ProviderCatalog::v4_address(size_t provider,
                                          std::uint32_t i) const {
  assert(provider < providers_.size());
  auto base = asn_slot_v4_.at(primary_asn_[provider]);
  return net::IPv4Addr(base | ((i + 1) & 0x000fffffu));
}

net::IPv6Addr ProviderCatalog::v6_address(size_t provider,
                                          std::uint32_t i) const {
  assert(provider < providers_.size());
  auto hi = asn_slot_hi_.at(primary_asn_[provider]);
  return net::IPv6Addr::from_halves(hi, i + 1);
}

std::optional<size_t> ProviderCatalog::provider_of(const net::IpAddr& a) const {
  auto asn = as_map_.lookup(a);
  if (!asn) return std::nullopt;
  auto it = provider_by_asn_.find(*asn);
  if (it == provider_by_asn_.end()) return std::nullopt;
  return it->second;
}

void ProviderCatalog::providers_of(std::span<const net::IpAddr> addrs,
                                   std::span<std::optional<size_t>> out) const {
  std::vector<std::optional<net::Asn>> asns(addrs.size());
  as_map_.lookup_batch(addrs, asns);
  for (size_t i = 0; i < addrs.size(); ++i) {
    out[i] = std::nullopt;
    if (!asns[i]) continue;
    auto it = provider_by_asn_.find(*asns[i]);
    if (it != provider_by_asn_.end()) out[i] = it->second;
  }
}

std::optional<size_t> ProviderCatalog::a_record_host(size_t provider) const {
  const auto& quirk = providers_[provider].a_records_hosted_by;
  if (quirk.empty()) return std::nullopt;
  return find(quirk);
}

}  // namespace nbv6::cloud
