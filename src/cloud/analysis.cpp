#include "cloud/analysis.h"

#include <algorithm>
#include <unordered_map>

namespace nbv6::cloud {

std::vector<DomainRecord> collect_domain_records(
    const dns::Resolver& resolver, std::span<const std::string> names,
    const std::function<std::string(std::string_view)>& etld1_of) {
  std::vector<DomainRecord> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    auto dual = resolver.resolve_dual(name);
    if (!dual.reachable()) continue;
    DomainRecord r;
    r.fqdn = dns::canonicalize(name);
    r.etld1 = etld1_of(r.fqdn);
    if (dual.has_v4()) r.a_addr = dual.v4.addresses.front();
    if (dual.has_v6()) r.aaaa_addr = dual.v6.addresses.front();
    r.cname_terminal =
        dual.has_v4() ? dual.v4.terminal() : dual.v6.terminal();
    out.push_back(std::move(r));
  }
  return out;
}

namespace {

/// Per-record provider attribution: (A-record provider, AAAA-record
/// provider) indices. All present addresses go through the catalog's
/// batch LPM path in one pass instead of two trie walks per record.
std::vector<std::pair<std::optional<size_t>, std::optional<size_t>>>
attribute_records(std::span<const DomainRecord> records,
                  const ProviderCatalog& catalog) {
  std::vector<net::IpAddr> addrs;
  addrs.reserve(2 * records.size());
  for (const auto& r : records) {
    if (r.a_addr) addrs.push_back(*r.a_addr);
    if (r.aaaa_addr) addrs.push_back(*r.aaaa_addr);
  }
  std::vector<std::optional<size_t>> providers(addrs.size());
  catalog.providers_of(addrs, providers);

  std::vector<std::pair<std::optional<size_t>, std::optional<size_t>>> out;
  out.reserve(records.size());
  size_t k = 0;
  for (const auto& r : records) {
    std::pair<std::optional<size_t>, std::optional<size_t>> p;
    if (r.a_addr) p.first = providers[k++];
    if (r.aaaa_addr) p.second = providers[k++];
    out.push_back(p);
  }
  return out;
}

}  // namespace

std::vector<ProviderBreakdownRow> provider_breakdown(
    std::span<const DomainRecord> records, const ProviderCatalog& catalog) {
  const auto attributed = attribute_records(records, catalog);
  std::map<size_t, ProviderBreakdownRow> rows;  // keyed by provider index
  ProviderBreakdownRow overall;
  overall.org = "Overall";

  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    // Global classification, independent of attribution.
    ++overall.total;
    if (r.has_a() && r.has_aaaa())
      ++overall.v6_full;
    else if (r.has_a())
      ++overall.v4_only;
    else
      ++overall.v6_only;

    const auto& [prov_a, prov_6] = attributed[i];

    auto classify_under = [&](size_t prov) {
      auto& row = rows[prov];
      row.org = catalog.at(prov).org_name;
      ++row.total;
      bool a_here = prov_a == prov && r.has_a();
      bool aaaa_here = prov_6 == prov && r.has_aaaa();
      if (a_here && aaaa_here)
        ++row.v6_full;
      else if (a_here)
        ++row.v4_only;  // its AAAA, if any, lives in someone else's space
      else
        ++row.v6_only;
    };

    if (prov_a) classify_under(*prov_a);
    if (prov_6 && prov_6 != prov_a) classify_under(*prov_6);
  }

  std::vector<ProviderBreakdownRow> out;
  out.push_back(overall);
  for (auto& [_, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin() + 1, out.end(),
            [](const ProviderBreakdownRow& a, const ProviderBreakdownRow& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.org < b.org;
            });
  return out;
}

std::vector<ServiceAdoptionRow> service_breakdown(
    std::span<const DomainRecord> records, const ProviderCatalog& catalog) {
  // Build a suffix table once: suffix -> (provider, service).
  struct Slot {
    size_t provider;
    size_t service;
  };
  std::vector<std::pair<std::string, Slot>> suffixes;
  for (size_t p = 0; p < catalog.size(); ++p) {
    const auto& services = catalog.at(p).services;
    for (size_t s = 0; s < services.size(); ++s)
      suffixes.emplace_back(services[s].cname_suffix, Slot{p, s});
  }

  auto match = [&suffixes](std::string_view terminal) -> const Slot* {
    for (const auto& [suffix, slot] : suffixes) {
      if (terminal.size() > suffix.size() &&
          terminal.ends_with(suffix) &&
          terminal[terminal.size() - suffix.size() - 1] == '.') {
        return &slot;
      }
      if (terminal == suffix) return &slot;
    }
    return nullptr;
  };

  std::map<std::pair<size_t, size_t>, ServiceAdoptionRow> rows;
  for (const auto& r : records) {
    const Slot* slot = match(r.cname_terminal);
    if (slot == nullptr) continue;
    auto& row = rows[{slot->provider, slot->service}];
    if (row.total == 0) {
      const auto& svc = catalog.at(slot->provider).services[slot->service];
      row.provider_org = catalog.at(slot->provider).org_name;
      row.service_name = svc.name;
      row.policy = svc.policy;
    }
    ++row.total;
    if (r.has_aaaa()) ++row.v6_ready;
  }

  std::vector<ServiceAdoptionRow> out;
  out.reserve(rows.size());
  for (auto& [_, row] : rows) out.push_back(std::move(row));
  // Provider order, then descending readiness within provider (Table 2).
  std::sort(out.begin(), out.end(),
            [](const ServiceAdoptionRow& a, const ServiceAdoptionRow& b) {
              if (a.provider_org != b.provider_org)
                return a.provider_org < b.provider_org;
              return a.pct_ready() > b.pct_ready();
            });
  return out;
}

MultiCloudComparison::MultiCloudComparison(
    std::span<const DomainRecord> records, const ProviderCatalog& catalog,
    const std::map<std::string, std::string>& merge, double alpha) {
  auto canonical_org = [&merge](std::string org) {
    auto it = merge.find(org);
    return it == merge.end() ? org : it->second;
  };

  // Tenant -> org -> (subdomains, IPv6-full subdomains). A subdomain is
  // attributed to the org hosting its A record (falling back to the AAAA
  // org for AAAA-only names); "IPv6-full" means it has both record types.
  struct Share {
    int n = 0;
    int full = 0;
  };
  std::map<std::string, std::map<std::string, Share>> tenants;
  const auto attributed = attribute_records(records, catalog);
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    const auto prov = attributed[i].first ? attributed[i].first
                                          : attributed[i].second;
    if (!prov || r.etld1.empty()) continue;
    auto& share = tenants[r.etld1][canonical_org(catalog.at(*prov).org_name)];
    ++share.n;
    if (r.has_a() && r.has_aaaa()) ++share.full;
  }

  // Keep multi-cloud tenants only.
  std::map<std::string, std::vector<std::pair<std::string, double>>>
      fractions_by_org_pairable;
  std::vector<const std::map<std::string, Share>*> multi;
  std::map<std::string, bool> org_seen;
  for (const auto& [etld1, shares] : tenants) {
    if (shares.size() < 2) continue;
    ++tenant_count_;
    multi.push_back(&shares);
    for (const auto& [org, _] : shares) org_seen[org] = true;
  }
  for (const auto& [org, _] : org_seen) orgs_.push_back(org);

  // Pairwise Wilcoxon over shared tenants' IPv6-full fractions.
  std::vector<double> raw_p;
  std::vector<size_t> tested;  // indices into pairs_
  for (size_t i = 0; i < orgs_.size(); ++i) {
    for (size_t j = i + 1; j < orgs_.size(); ++j) {
      PairComparison pc;
      pc.org1 = orgs_[i];
      pc.org2 = orgs_[j];

      std::vector<double> diffs;
      for (const auto* shares : multi) {
        auto it1 = shares->find(pc.org1);
        auto it2 = shares->find(pc.org2);
        if (it1 == shares->end() || it2 == shares->end()) continue;
        double f1 = static_cast<double>(it1->second.full) / it1->second.n;
        double f2 = static_cast<double>(it2->second.full) / it2->second.n;
        if (f1 != f2) diffs.push_back(f1 - f2);
      }
      pc.differing_tenants = static_cast<int>(diffs.size());
      pc.comparable = diffs.size() >= 2;  // the paper's minimum
      if (pc.comparable) {
        if (auto w = stats::wilcoxon_signed_rank(diffs)) {
          pc.effect_size_r = w->effect_size_r;
          pc.p_value = w->p_value;
          raw_p.push_back(pc.p_value);
          tested.push_back(pairs_.size());
        } else {
          pc.comparable = false;
        }
      }
      pairs_.push_back(std::move(pc));
    }
  }

  auto holm = stats::holm_bonferroni(raw_p, alpha);
  for (size_t k = 0; k < tested.size(); ++k)
    pairs_[tested[k]].significant = holm.reject[k];
}

int MultiCloudComparison::wins(const std::string& org) const {
  int w = 0;
  for (const auto& p : pairs_) {
    if (!p.significant) continue;
    if (p.org1 == org && p.effect_size_r > 0) ++w;
    if (p.org2 == org && p.effect_size_r < 0) ++w;
  }
  return w;
}

}  // namespace nbv6::cloud
