#include "web/crawler.h"

#include <algorithm>
#include <unordered_set>

namespace nbv6::web {

Crawler::Crawler(const Universe& universe, const dns::ZoneDb& zone,
                 Epoch epoch, CrawlerConfig cfg)
    : universe_(&universe),
      zone_(&zone),
      resolver_(zone),
      epoch_(epoch),
      cfg_(cfg) {}

void Crawler::load_page(const Page& page, SiteCrawl& out,
                        stats::Rng& rng) const {
  // Dedup observations by (fqdn, type): re-fetches of the same resource on
  // later pages don't create new observations. The seen-set is rebuilt from
  // the accumulated observations; pages are small, so this stays cheap.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(out.resources.size() * 2);
  for (const auto& r : out.resources)
    seen.insert((static_cast<std::uint64_t>(r.fqdn) << 3) |
                static_cast<std::uint64_t>(r.type));

  for (const auto& ref : page.resources) {
    std::uint64_t key = (static_cast<std::uint64_t>(ref.fqdn) << 3) |
                        static_cast<std::uint64_t>(ref.type);
    if (!seen.insert(key).second) continue;

    const Fqdn& f = universe_->fqdns()[ref.fqdn];
    auto dual = resolver_.resolve_dual(f.name);

    ResourceObservation obs;
    obs.fqdn = ref.fqdn;
    obs.type = ref.type;
    obs.first_party = universe_->psl().same_site(f.name, out.main_host);
    obs.has_a = dual.has_v4();
    obs.has_aaaa = dual.has_v6();
    obs.failed = !dual.reachable();
    if (obs.has_a && obs.has_aaaa) {
      obs.used = rng.chance(cfg_.he_v4_win_prob) ? net::Family::v4
                                                 : net::Family::v6;
    } else {
      obs.used = obs.has_aaaa ? net::Family::v6 : net::Family::v4;
    }
    out.resources.push_back(obs);
  }

  for ([[maybe_unused]] auto ext : page.external_links) {
    // The paper's crawler only follows links inside the site's eTLD+1;
    // external link targets are refused, never loaded.
    ++out.external_links_refused;
  }
}

SiteCrawl Crawler::crawl_impl(std::uint32_t site_index, stats::Rng& rng,
                              int link_clicks) const {
  const Site& site = universe_->sites()[site_index];
  SiteCrawl out;
  out.site_index = site_index;
  out.fate = universe_->fate(site, epoch_);

  // Resolve the main domain. NXDOMAIN sites are unregistered, so the
  // failure is discovered through DNS exactly as a real crawler would.
  const Fqdn& main = universe_->fqdns()[site.main_fqdn];
  auto dual = resolver_.resolve_dual(main.name);
  if (!dual.reachable()) {
    out.fate = SiteFate::nxdomain;
    return out;
  }
  if (out.fate == SiteFate::other_failure) {
    // DNS answered but the TLS/HTTP exchange fails.
    return out;
  }
  out.fate = SiteFate::ok;

  // Follow the main-page redirect; classification applies to the final
  // page of the redirect chain (§4.2).
  std::uint32_t effective_main = site.main_fqdn;
  if (site.redirect_to) {
    effective_main = *site.redirect_to;
    dual = resolver_.resolve_dual(universe_->fqdns()[effective_main].name);
    if (!dual.reachable()) {
      out.fate = SiteFate::other_failure;  // broken redirect target
      return out;
    }
  }
  out.main_host = universe_->fqdns()[effective_main].name;
  out.main_has_a = dual.has_v4();
  out.main_has_aaaa = dual.has_v6();
  out.unknown_primary =
      !universe_->psl().registrable_domain(out.main_host).has_value();
  if (out.main_has_a && out.main_has_aaaa) {
    out.main_used = rng.chance(cfg_.he_v4_win_prob) ? net::Family::v4
                                                    : net::Family::v6;
  } else {
    out.main_used = out.main_has_aaaa ? net::Family::v6 : net::Family::v4;
  }

  // Load the main page.
  load_page(site.pages[0], out, rng);
  out.pages_loaded = 1;

  // Click up to `link_clicks` distinct same-site links, chosen at random
  // like OpenWPM's five clicks.
  std::vector<std::uint32_t> candidates = site.pages[0].internal_links;
  for (int c = 0; c < link_clicks && !candidates.empty(); ++c) {
    size_t pick = rng.below(candidates.size());
    std::uint32_t page_idx = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    load_page(site.pages[page_idx], out, rng);
    ++out.pages_loaded;
  }
  return out;
}

SiteCrawl Crawler::crawl(std::uint32_t site_index, stats::Rng& rng) const {
  return crawl_impl(site_index, rng, cfg_.link_clicks);
}

SiteCrawl Crawler::crawl_main_page_only(std::uint32_t site_index,
                                        stats::Rng& rng) const {
  return crawl_impl(site_index, rng, 0);
}

std::vector<SiteCrawl> Crawler::crawl_all(std::uint64_t seed) const {
  std::vector<SiteCrawl> out;
  out.reserve(universe_->sites().size());
  for (std::uint32_t i = 0; i < universe_->sites().size(); ++i) {
    stats::Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    out.push_back(crawl(i, rng));
  }
  return out;
}

}  // namespace nbv6::web
