#include "web/metrics.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "stats/descriptive.h"

namespace nbv6::web {

VersionSubdomainEstimate estimate_version_subdomain_misclassification(
    const Universe& universe, std::span<const SiteCrawl> crawls,
    std::span<const SiteClassification> classifications) {
  auto has_version_marker = [](std::string_view name) {
    return name.find("ipv4") != std::string_view::npos ||
           name.find("px4") != std::string_view::npos ||
           // bare "v4" as its own label or label prefix
           name.rfind("v4.", 0) == 0 ||
           name.find(".v4.") != std::string_view::npos;
  };

  VersionSubdomainEstimate est;
  for (size_t i = 0; i < crawls.size(); ++i) {
    if (classifications[i].cls != SiteClass::ipv6_partial) continue;
    ++est.partial_sites;
    bool all_marked = true;
    bool any = false;
    for (const auto& r : crawls[i].resources) {
      if (r.failed || !(r.has_a && !r.has_aaaa)) continue;
      any = true;
      if (!has_version_marker(universe.fqdns()[r.fqdn].name)) {
        all_marked = false;
        break;
      }
    }
    if (any && all_marked) ++est.suspect_sites;
  }
  return est;
}

SpanAnalysis::SpanAnalysis(const Universe& universe,
                           std::span<const SiteCrawl> crawls,
                           std::span<const SiteClassification> classifications) {
  assert(crawls.size() == classifications.size());

  // Working state per dependency domain.
  struct Acc {
    std::vector<double> contributions;
    std::array<int, kResourceTypeCount> type_site_counts{};
    int third_party_span = 0;
  };
  std::unordered_map<std::string, Acc> acc;

  const auto& psl = universe.psl();

  for (size_t i = 0; i < crawls.size(); ++i) {
    if (classifications[i].cls != SiteClass::ipv6_partial) continue;
    const SiteCrawl& crawl = crawls[i];

    PartialSiteDeps deps;
    deps.site_index = crawl.site_index;

    // Per-site, per-domain tallies of v4-only resources and the types each
    // domain served (types counted once per site).
    std::map<std::string, std::array<bool, kResourceTypeCount>> types_here;
    std::map<std::string, bool> third_party_here;
    for (const auto& r : crawl.resources) {
      if (r.failed) continue;
      ++deps.total_resources;
      if (!(r.has_a && !r.has_aaaa)) continue;
      ++deps.v4only_resources;
      const auto& name = universe.fqdns()[r.fqdn].name;
      auto etld1 = psl.registrable_domain(name).value_or(name);
      ++deps.v4only_domains[etld1];
      types_here[etld1][static_cast<size_t>(r.type)] = true;
      if (!r.first_party) third_party_here[etld1] = true;
      if (r.first_party) deps.has_first_party_v4only = true;
    }

    deps.only_first_party_v4only =
        deps.has_first_party_v4only && third_party_here.empty();
    if (deps.only_first_party_v4only) ++first_party_only_;

    for (const auto& [etld1, count] : deps.v4only_domains) {
      Acc& a = acc[etld1];
      a.contributions.push_back(static_cast<double>(count) /
                                static_cast<double>(deps.v4only_resources));
      const auto& t = types_here[etld1];
      for (size_t k = 0; k < kResourceTypeCount; ++k)
        if (t[k]) ++a.type_site_counts[k];
      if (third_party_here.contains(etld1)) ++a.third_party_span;
    }

    partial_sites_.push_back(std::move(deps));
  }

  impacts_.reserve(acc.size());
  for (auto& [etld1, a] : acc) {
    DomainImpact d;
    d.etld1 = etld1;
    d.span = static_cast<int>(a.contributions.size());
    d.median_contribution = stats::median(a.contributions);
    d.type_site_counts = a.type_site_counts;
    d.third_party_span = a.third_party_span;
    impacts_.push_back(std::move(d));
  }
  std::sort(impacts_.begin(), impacts_.end(),
            [](const DomainImpact& x, const DomainImpact& y) {
              if (x.span != y.span) return x.span > y.span;
              return x.etld1 < y.etld1;
            });
}

std::vector<DomainImpact> SpanAnalysis::heavy_hitters(int min_span) const {
  std::vector<DomainImpact> out;
  for (const auto& d : impacts_) {
    if (d.span < min_span) break;  // impacts_ is sorted by span desc
    out.push_back(d);
  }
  return out;
}

std::vector<int> SpanAnalysis::whatif_adoption_curve() const {
  // Each partial site becomes full when ALL of its IPv4-only dependency
  // domains have enabled IPv6. Enabling proceeds in descending span order
  // (impacts_ order). Track per-site remaining-dependency counts.
  std::unordered_map<std::string, std::vector<size_t>> dependents;
  std::vector<int> remaining(partial_sites_.size(), 0);
  for (size_t i = 0; i < partial_sites_.size(); ++i) {
    remaining[i] = static_cast<int>(partial_sites_[i].v4only_domains.size());
    for (const auto& [etld1, _] : partial_sites_[i].v4only_domains)
      dependents[etld1].push_back(i);
  }

  std::vector<int> curve;
  curve.reserve(impacts_.size());
  int fixed = 0;
  for (const auto& d : impacts_) {
    auto it = dependents.find(d.etld1);
    if (it != dependents.end()) {
      for (size_t site : it->second) {
        if (--remaining[site] == 0) ++fixed;
      }
    }
    curve.push_back(fixed);
  }
  return curve;
}

}  // namespace nbv6::web
