#include "web/classify.h"

namespace nbv6::web {

std::string_view to_string(SiteClass c) {
  switch (c) {
    case SiteClass::loading_failure_nxdomain:
      return "Loading-Failure (NXDOMAIN)";
    case SiteClass::loading_failure_other:
      return "Loading-Failure (Others)";
    case SiteClass::unknown_primary:
      return "Unknown Primary Domain";
    case SiteClass::ipv4_only:
      return "IPv4-only (A-only domain)";
    case SiteClass::ipv6_partial:
      return "IPv6-partial (some A-only resources)";
    case SiteClass::ipv6_full:
      return "IPv6-full (AAAA for all resources)";
  }
  return "?";
}

SiteClassification classify(const SiteCrawl& crawl) {
  SiteClassification out;

  if (crawl.fate == SiteFate::nxdomain) {
    out.cls = SiteClass::loading_failure_nxdomain;
    return out;
  }
  if (crawl.fate == SiteFate::other_failure) {
    out.cls = SiteClass::loading_failure_other;
    return out;
  }
  if (crawl.unknown_primary) {
    out.cls = SiteClass::unknown_primary;
    return out;
  }

  bool any_v4_used = crawl.main_used == net::Family::v4;
  for (const auto& r : crawl.resources) {
    if (r.failed) continue;  // failure is orthogonal to IP version (§4.2)
    ++out.total_resources;
    if (r.has_a && !r.has_aaaa) ++out.v4only_resources;
    if (r.used == net::Family::v4) any_v4_used = true;
  }
  out.v4only_fraction =
      out.total_resources == 0
          ? 0.0
          : static_cast<double>(out.v4only_resources) / out.total_resources;

  if (!crawl.main_has_aaaa) {
    out.cls = SiteClass::ipv4_only;
    return out;
  }
  out.cls = out.v4only_resources > 0 ? SiteClass::ipv6_partial
                                     : SiteClass::ipv6_full;
  if (out.cls == SiteClass::ipv6_full) out.browser_used_v4 = any_v4_used;
  return out;
}

ClassificationCounts tabulate(std::span<const SiteClassification> cls) {
  ClassificationCounts c;
  c.total = static_cast<int>(cls.size());
  for (const auto& s : cls) {
    switch (s.cls) {
      case SiteClass::loading_failure_nxdomain:
        ++c.nxdomain;
        break;
      case SiteClass::loading_failure_other:
        ++c.other_failure;
        break;
      case SiteClass::unknown_primary:
        ++c.connection_success;
        ++c.unknown_primary;
        break;
      case SiteClass::ipv4_only:
        ++c.connection_success;
        ++c.ipv4_only;
        break;
      case SiteClass::ipv6_partial:
        ++c.connection_success;
        ++c.aaaa_enabled;
        ++c.ipv6_partial;
        break;
      case SiteClass::ipv6_full:
        ++c.connection_success;
        ++c.aaaa_enabled;
        ++c.ipv6_full;
        if (s.browser_used_v4)
          ++c.full_browser_used_v4;
        else
          ++c.full_browser_used_v6_only;
        break;
    }
  }
  return c;
}

std::vector<SiteClassification> classify_all(
    std::span<const SiteCrawl> crawls) {
  std::vector<SiteClassification> out;
  out.reserve(crawls.size());
  for (const auto& c : crawls) out.push_back(classify(c));
  return out;
}

}  // namespace nbv6::web
