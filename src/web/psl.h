// Public Suffix List and eTLD+1 (registrable domain) extraction.
//
// The paper's unit of "site" and of resource-domain aggregation is the
// eTLD+1: "a domain name consisting of one label and a public suffix"
// (§4.1, following the Mozilla PSL). Same-site link-click crawling, the
// first- vs third-party split, span/median-contribution, and multi-cloud
// tenant grouping all key on it.
//
// This is a self-contained PSL engine with the standard matching rules
// (normal rules, wildcard rules like *.ck, exception rules like !www.ck)
// preloaded with a representative rule set; callers can add rules.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace nbv6::web {

class PublicSuffixList {
 public:
  /// An empty list (only the implicit "*" root rule applies).
  PublicSuffixList() = default;

  /// The built-in rule set: gTLDs, common ccTLDs and second-level public
  /// suffixes, a wildcard rule, and an exception rule, enough to exercise
  /// every branch of the algorithm.
  static PublicSuffixList builtin();

  /// Add one rule in PSL syntax ("com", "co.uk", "*.ck", "!www.ck").
  void add_rule(std::string_view rule);

  /// Longest matching public suffix of `host` ("a.b.co.uk" -> "co.uk").
  /// Per the PSL algorithm, an unlisted TLD matches the implicit "*" rule.
  [[nodiscard]] std::string public_suffix(std::string_view host) const;

  /// Registrable domain: public suffix plus one label
  /// ("x.assets.example.co.uk" -> "example.co.uk"). nullopt when `host`
  /// itself is a public suffix (no registrable domain exists).
  [[nodiscard]] std::optional<std::string> registrable_domain(
      std::string_view host) const;

  /// True when `a` and `b` share their registrable domain — the paper's
  /// same-site test for link clicks and the first-party test for
  /// resources.
  [[nodiscard]] bool same_site(std::string_view a, std::string_view b) const;

 private:
  std::unordered_set<std::string> rules_;
  std::unordered_set<std::string> wildcard_rules_;   // stored without "*."
  std::unordered_set<std::string> exception_rules_;  // stored without "!"
};

/// Split a hostname into labels ("a.b.c" -> {"a","b","c"}).
std::vector<std::string_view> split_labels(std::string_view host);

}  // namespace nbv6::web
