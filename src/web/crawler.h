// The browser-like crawler of §4.1.
//
// For one site, the crawler mirrors OpenWPM's procedure against the
// synthetic universe: resolve the main domain (both families), follow its
// redirect, load the main page's resources, then click up to five randomly
// chosen links constrained to the same eTLD+1 (off-site links are refused
// via the PSL same-site test), recording for every fetched resource its
// FQDN, resource type, party, DNS outcome per family, and which family the
// Happy Eyeballs race actually used.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/resolver.h"
#include "dns/zone.h"
#include "stats/rng.h"
#include "web/universe.h"

namespace nbv6::web {

struct CrawlerConfig {
  /// Same-site links to click beyond the main page (paper: 5).
  int link_clicks = 5;
  /// Per dual-stack fetch, the probability IPv4 wins the Happy Eyeballs
  /// race anyway (the paper's "about 1 in 10 *sites*" via ~30 fetches).
  double he_v4_win_prob = 0.004;
};

struct ResourceObservation {
  std::uint32_t fqdn = 0;
  ResourceType type = ResourceType::image;
  bool first_party = false;
  bool has_a = false;
  bool has_aaaa = false;
  /// Family the fetch used (meaningful when the fetch succeeded).
  net::Family used = net::Family::v4;
  /// DNS failed entirely for this resource (excluded from readiness math,
  /// as the paper excludes failure-orthogonal resources).
  bool failed = false;
};

struct SiteCrawl {
  std::uint32_t site_index = 0;
  SiteFate fate = SiteFate::ok;
  /// Host has no registrable domain (the "Unknown Primary Domain" bucket).
  bool unknown_primary = false;
  bool main_has_a = false;
  bool main_has_aaaa = false;
  /// Family used to fetch the main page.
  net::Family main_used = net::Family::v4;
  /// Name of the final (post-redirect) main host.
  std::string main_host;
  /// Distinct (FQDN, type) observations across all loaded pages.
  std::vector<ResourceObservation> resources;
  /// Off-site links refused by the same-site rule (sanity counter).
  int external_links_refused = 0;
  /// Pages actually loaded (main + clicked links).
  int pages_loaded = 0;
};

class Crawler {
 public:
  Crawler(const Universe& universe, const dns::ZoneDb& zone, Epoch epoch,
          CrawlerConfig cfg = {});

  /// Crawl one site. `rng` drives link selection and Happy Eyeballs.
  [[nodiscard]] SiteCrawl crawl(std::uint32_t site_index,
                                stats::Rng& rng) const;

  /// Crawl every site in the universe with a per-site deterministic RNG.
  [[nodiscard]] std::vector<SiteCrawl> crawl_all(std::uint64_t seed) const;

  /// Crawl without clicking links (the ablation of §4.2: main page only
  /// raises IPv6-full from 12.5% to 14.1%).
  [[nodiscard]] SiteCrawl crawl_main_page_only(std::uint32_t site_index,
                                               stats::Rng& rng) const;

 private:
  SiteCrawl crawl_impl(std::uint32_t site_index, stats::Rng& rng,
                       int link_clicks) const;
  void load_page(const Page& page, SiteCrawl& out, stats::Rng& rng) const;

  const Universe* universe_;
  const dns::ZoneDb* zone_;
  dns::Resolver resolver_;
  Epoch epoch_;
  CrawlerConfig cfg_;
};

}  // namespace nbv6::web
