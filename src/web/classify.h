// Degrees-of-IPv6-support classification (§4.2).
//
// The paper's taxonomy applied to a crawl: loading failures (NXDOMAIN vs
// other) are set aside; reachable sites split into IPv4-only (no AAAA on
// the main domain), IPv6-partial (AAAA main but some A-only resources),
// and IPv6-full (AAAA everywhere); full sites further split by whether the
// browser actually used IPv6 for everything or IPv4 won a race somewhere.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "web/crawler.h"

namespace nbv6::web {

enum class SiteClass : std::uint8_t {
  loading_failure_nxdomain,
  loading_failure_other,
  unknown_primary,
  ipv4_only,
  ipv6_partial,
  ipv6_full,
};
std::string_view to_string(SiteClass c);

struct SiteClassification {
  SiteClass cls = SiteClass::loading_failure_nxdomain;
  /// Successfully resolved resources (failures excluded, per §4.2).
  int total_resources = 0;
  /// Resources with an A record but no AAAA.
  int v4only_resources = 0;
  /// v4only / total, 0 when no resources.
  double v4only_fraction = 0.0;
  /// For IPv6-full sites: did any fetch (main or resource) ride IPv4?
  bool browser_used_v4 = false;
};

/// Classify one crawl result.
SiteClassification classify(const SiteCrawl& crawl);

/// Aggregate counts over a crawl set — the rows of Figure 5's table.
struct ClassificationCounts {
  int total = 0;
  int nxdomain = 0;
  int other_failure = 0;
  int connection_success = 0;
  int unknown_primary = 0;
  int ipv4_only = 0;
  int aaaa_enabled = 0;  ///< ipv6_partial + ipv6_full
  int ipv6_partial = 0;
  int ipv6_full = 0;
  int full_browser_used_v4 = 0;
  int full_browser_used_v6_only = 0;

  /// Percentages relative to connection successes, as the paper reports.
  [[nodiscard]] double pct_of_success(int n) const {
    return connection_success == 0
               ? 0.0
               : 100.0 * n / static_cast<double>(connection_success);
  }
};

ClassificationCounts tabulate(std::span<const SiteClassification> cls);

/// Classify every crawl.
std::vector<SiteClassification> classify_all(std::span<const SiteCrawl> crawls);

}  // namespace nbv6::web
