// Impact metrics for IPv4-only resource domains (§4.3).
//
// Over the IPv6-partial population, this module computes, per IPv4-only
// eTLD+1 dependency: its *span* (how many partial sites depend on it), its
// *median contribution* (the median across dependents of the fraction of a
// site's IPv4-only resources it supplies), its first-/third-party role, its
// category, and its per-resource-type reach (Figs. 8, 9, 18). It also runs
// the §4.3 what-if simulation: enable IPv6 on IPv4-only domains in
// descending span order and count the partial sites that become full
// (Fig. 10).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "web/classify.h"
#include "web/crawler.h"
#include "web/universe.h"

namespace nbv6::web {

/// One IPv6-partial site's IPv4-only dependency picture.
struct PartialSiteDeps {
  std::uint32_t site_index = 0;
  int total_resources = 0;
  int v4only_resources = 0;
  /// Distinct eTLD+1 domains supplying the IPv4-only resources, with how
  /// many of the site's IPv4-only resources each supplies.
  std::map<std::string, int> v4only_domains;
  bool has_first_party_v4only = false;
  /// Partial purely because of first-party IPv4-only resources (§4.3's 565
  /// easily-fixable sites).
  bool only_first_party_v4only = false;
};

/// Impact statistics of one IPv4-only dependency domain.
struct DomainImpact {
  std::string etld1;
  int span = 0;
  double median_contribution = 0.0;
  /// Number of dependent partial sites on which this domain serves each
  /// resource type (Fig. 18 rows).
  std::array<int, kResourceTypeCount> type_site_counts{};
  /// Dependent sites where the domain is third-party.
  int third_party_span = 0;
};

/// §4.4's misclassification estimate: a dual-stack site may deliberately
/// load version-specific subdomains (names containing "v4", "ipv4", "px4")
/// when fetched over IPv4, making an actually-IPv6-full site look partial.
/// Counts IPv6-partial sites where EVERY IPv4-only resource FQDN carries
/// such a version marker (the paper finds 106 of ~24k, 0.4%).
struct VersionSubdomainEstimate {
  int suspect_sites = 0;   ///< partial purely due to version-marked FQDNs
  int partial_sites = 0;
  [[nodiscard]] double fraction() const {
    return partial_sites == 0
               ? 0.0
               : static_cast<double>(suspect_sites) / partial_sites;
  }
};

VersionSubdomainEstimate estimate_version_subdomain_misclassification(
    const Universe& universe, std::span<const SiteCrawl> crawls,
    std::span<const SiteClassification> classifications);

class SpanAnalysis {
 public:
  SpanAnalysis(const Universe& universe, std::span<const SiteCrawl> crawls,
               std::span<const SiteClassification> classifications);

  [[nodiscard]] const std::vector<PartialSiteDeps>& partial_sites() const {
    return partial_sites_;
  }

  /// Impacts sorted by descending span.
  [[nodiscard]] const std::vector<DomainImpact>& impacts() const {
    return impacts_;
  }

  /// Impacts with span >= threshold (the paper's 396 heavy hitters at
  /// span >= 100 on the full-size universe).
  [[nodiscard]] std::vector<DomainImpact> heavy_hitters(int min_span) const;

  /// What-if adoption curve: entry k = number of currently-partial sites
  /// that are IPv6-full once the top (k+1) domains by span have enabled
  /// IPv6 (Fig. 10's y-values, cumulative).
  [[nodiscard]] std::vector<int> whatif_adoption_curve() const;

  /// Count of partial sites with first-party-only IPv4 dependencies.
  [[nodiscard]] int first_party_only_count() const {
    return first_party_only_;
  }

 private:
  std::vector<PartialSiteDeps> partial_sites_;
  std::vector<DomainImpact> impacts_;
  int first_party_only_ = 0;
};

}  // namespace nbv6::web
