#include "web/universe.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nbv6::web {

std::string_view to_string(ResourceType t) {
  switch (t) {
    case ResourceType::image:
      return "image";
    case ResourceType::script:
      return "script";
    case ResourceType::stylesheet:
      return "stylesheet";
    case ResourceType::xmlhttprequest:
      return "xmlhttprequest";
    case ResourceType::sub_frame:
      return "sub_frame";
    case ResourceType::font:
      return "font";
    case ResourceType::media:
      return "media";
    case ResourceType::beacon:
      return "beacon";
  }
  return "?";
}

std::string_view to_string(DomainCategory c) {
  switch (c) {
    case DomainCategory::ads:
      return "ads";
    case DomainCategory::trackers:
      return "trackers";
    case DomainCategory::analytics:
      return "analytics";
    case DomainCategory::content_delivery:
      return "content delivery";
    case DomainCategory::information_technology:
      return "information technology";
    case DomainCategory::social:
      return "social";
    case DomainCategory::first_party:
      return "first party";
  }
  return "?";
}

std::string_view to_string(Epoch e) {
  switch (e) {
    case Epoch::oct2024:
      return "Oct 2024";
    case Epoch::apr2025:
      return "Apr 2025";
    case Epoch::jul2025:
      return "Jul 2025";
  }
  return "?";
}

double category_base_adoption(DomainCategory c) {
  switch (c) {
    case DomainCategory::ads:
      return 0.45;
    case DomainCategory::trackers:
      return 0.55;
    case DomainCategory::analytics:
      return 0.80;
    case DomainCategory::content_delivery:
      return 0.94;
    case DomainCategory::information_technology:
      return 0.88;
    case DomainCategory::social:
      return 0.96;
    case DomainCategory::first_party:
      return 0.6;
  }
  return 0.6;
}

double category_adoption_factor(DomainCategory c) {
  // Advertising lags hardest (nearly half of Fig. 9's heavy hitters);
  // social platforms lead (Facebook, Wikimedia at >90% in Fig. 4).
  switch (c) {
    case DomainCategory::ads:
      return 0.42;
    case DomainCategory::trackers:
      return 0.48;
    case DomainCategory::analytics:
      return 0.55;
    case DomainCategory::content_delivery:
      return 0.95;
    case DomainCategory::information_technology:
      return 0.72;
    case DomainCategory::social:
      return 1.20;
    case DomainCategory::first_party:
      return 1.0;
  }
  return 1.0;
}

namespace {

// Paper-named heavy hitters seeded into the most popular pool slots so the
// Fig. 9 / Fig. 18 outputs read like the originals.
struct SeedDomain {
  const char* name;
  DomainCategory cat;
};
constexpr SeedDomain kSeedThirdParties[] = {
    {"doubleclick.net", DomainCategory::ads},
    {"adnxs.com", DomainCategory::ads},
    {"criteo.com", DomainCategory::ads},
    {"amazon-adsystem.com", DomainCategory::ads},
    {"rubiconproject.com", DomainCategory::ads},
    {"pubmatic.com", DomainCategory::ads},
    {"crwdcntrl.net", DomainCategory::trackers},
    {"demdex.net", DomainCategory::trackers},
    {"tapad.com", DomainCategory::trackers},
    {"dnacdn.net", DomainCategory::content_delivery},
    {"openx.net", DomainCategory::ads},
    {"rlcdn.com", DomainCategory::content_delivery},
    {"clarity.ms", DomainCategory::analytics},
    {"id5-sync.com", DomainCategory::trackers},
    {"adsrvr.org", DomainCategory::ads},
    {"33across.com", DomainCategory::ads},
    {"smartadserver.com", DomainCategory::ads},
    {"agkn.com", DomainCategory::analytics},
    {"lijit.com", DomainCategory::ads},
    {"3lift.com", DomainCategory::ads},
};

// Relative popularity of the seeds, proportional to their Fig. 18 spans
// (doubleclick.net appears on 6666 of the paper's 24,384 partial sites).
constexpr double kSeedSpanTargets[] = {
    6666, 5752, 4773, 4370, 4343, 4243, 4193, 4059, 4005, 3744,
    3691, 3453, 3389, 3276, 3242, 3151, 3104, 3038, 2870, 2825,
};
static_assert(std::size(kSeedSpanTargets) == std::size(kSeedThirdParties));

const char* category_prefix(DomainCategory c) {
  switch (c) {
    case DomainCategory::ads:
      return "ads";
    case DomainCategory::trackers:
      return "trk";
    case DomainCategory::analytics:
      return "metrics";
    case DomainCategory::content_delivery:
      return "cdn";
    case DomainCategory::information_technology:
      return "svc";
    case DomainCategory::social:
      return "social";
    case DomainCategory::first_party:
      return "site";
  }
  return "x";
}

DomainCategory sample_category(stats::Rng& rng) {
  double u = rng.uniform();
  if (u < 0.28) return DomainCategory::ads;
  if (u < 0.42) return DomainCategory::trackers;
  if (u < 0.54) return DomainCategory::analytics;
  if (u < 0.70) return DomainCategory::content_delivery;
  if (u < 0.93) return DomainCategory::information_technology;
  return DomainCategory::social;
}

ResourceType sample_type_for_category(DomainCategory c, stats::Rng& rng) {
  double u = rng.uniform();
  switch (c) {
    case DomainCategory::ads:
      // Display ads: creatives, bid scripts, iframes, pixels.
      if (u < 0.40) return ResourceType::image;
      if (u < 0.60) return ResourceType::script;
      if (u < 0.80) return ResourceType::sub_frame;
      if (u < 0.93) return ResourceType::xmlhttprequest;
      return ResourceType::beacon;
    case DomainCategory::trackers:
      if (u < 0.45) return ResourceType::image;  // tracking pixels
      if (u < 0.70) return ResourceType::xmlhttprequest;
      if (u < 0.88) return ResourceType::script;
      return ResourceType::beacon;
    case DomainCategory::analytics:
      if (u < 0.50) return ResourceType::script;
      if (u < 0.85) return ResourceType::xmlhttprequest;
      return ResourceType::beacon;
    case DomainCategory::content_delivery:
      if (u < 0.35) return ResourceType::image;
      if (u < 0.60) return ResourceType::script;
      if (u < 0.75) return ResourceType::stylesheet;
      if (u < 0.90) return ResourceType::font;
      return ResourceType::media;
    case DomainCategory::information_technology:
      if (u < 0.40) return ResourceType::script;
      if (u < 0.65) return ResourceType::xmlhttprequest;
      if (u < 0.85) return ResourceType::image;
      return ResourceType::sub_frame;
    case DomainCategory::social:
      if (u < 0.40) return ResourceType::sub_frame;  // embeds
      if (u < 0.70) return ResourceType::script;
      return ResourceType::image;
    case DomainCategory::first_party:
      break;
  }
  if (u < 0.45) return ResourceType::image;
  if (u < 0.65) return ResourceType::script;
  if (u < 0.80) return ResourceType::stylesheet;
  if (u < 0.92) return ResourceType::xmlhttprequest;
  return ResourceType::font;
}

const char* kTlds[] = {"com", "com", "com", "com", "org", "net",  "io",
                       "co",  "de",  "fr",  "nl",  "ru",  "co.uk", "com.au",
                       "com.br", "in", "it", "pl", "jp", "app"};

}  // namespace

Universe::Universe(const UniverseConfig& cfg,
                   const cloud::ProviderCatalog& providers)
    : cfg_(cfg), providers_(&providers), psl_(PublicSuffixList::builtin()) {
  stats::Rng rng(cfg_.seed);
  build_third_parties(rng);
  build_sites(rng);
}

std::uint32_t Universe::add_tenant(std::string etld1, DomainCategory cat) {
  auto id = static_cast<std::uint32_t>(tenants_.size());
  tenant_by_name_.emplace(etld1, id);
  Tenant t;
  t.etld1 = std::move(etld1);
  t.category = cat;
  tenants_.push_back(std::move(t));
  return id;
}

std::uint32_t Universe::add_fqdn(std::string name, std::uint32_t tenant,
                                 int provider, int service, double rate,
                                 stats::Rng& rng) {
  auto id = static_cast<std::uint32_t>(fqdns_.size());
  Fqdn f;
  f.name = std::move(name);
  f.tenant = tenant;
  f.provider = provider;
  f.service = service;
  f.adopt_u = rng.uniform();
  f.adoption_rate = rate;
  fqdns_.push_back(std::move(f));
  tenants_[tenant].fqdns.push_back(id);
  return id;
}

std::pair<int, int> Universe::sample_hosting(stats::Rng& rng, bool prefer_cdn,
                                             double service_affinity) {
  const auto& provs = providers_->providers();

  // Weighted provider draw by domain share; top-list sites lean toward the
  // big CDN-first providers (that preference is itself part of why the top
  // of the list is more IPv6-ready).
  size_t provider;
  if (prefer_cdn && rng.chance(0.6)) {
    static constexpr const char* kCdnFirst[] = {
        "Cloudflare, Inc.", "Amazon.com, Inc.", "Google LLC",
        "Akamai International B.V.", "Fastly, Inc."};
    auto name = kCdnFirst[rng.below(std::size(kCdnFirst))];
    provider = providers_->find(name).value();
  } else {
    double total = 0;
    for (const auto& p : provs) total += p.domain_share;
    double u = rng.uniform() * total;
    provider = 0;
    for (size_t i = 0; i < provs.size(); ++i) {
      u -= provs[i].domain_share;
      if (u <= 0) {
        provider = i;
        break;
      }
    }
  }

  // Within a provider: a catalogued service (weighted by tenant share) or
  // generic hosting.
  const auto& services = provs[provider].services;
  if (!services.empty() && rng.chance(service_affinity)) {
    double total = 0;
    for (const auto& s : services) total += s.weight;
    double u = rng.uniform() * total;
    for (size_t i = 0; i < services.size(); ++i) {
      u -= services[i].weight;
      if (u <= 0) return {static_cast<int>(provider), static_cast<int>(i)};
    }
  }
  return {static_cast<int>(provider), -1};
}

void Universe::build_third_parties(stats::Rng& rng) {
  const auto n = static_cast<size_t>(
      std::max(8.0, cfg_.third_party_ratio * cfg_.site_count));

  for (size_t t = 0; t < n; ++t) {
    DomainCategory cat;
    std::string etld1;
    if (t < std::size(kSeedThirdParties)) {
      cat = kSeedThirdParties[t].cat;
      etld1 = kSeedThirdParties[t].name;
    } else {
      cat = sample_category(rng);
      etld1 = std::string(category_prefix(cat)) + std::to_string(t) + "." +
              kTlds[rng.below(std::size(kTlds))];
    }
    auto tenant = add_tenant(etld1, cat);

    // Ad-tech and trackers tend to run their own stacks on generic
    // hosting; everyone else leans on catalogued cloud services.
    // Only a small slice of resource FQDNs ride CNAME-identifiable cloud
    // services (the paper finds ~20k of 430k domains on such suffixes);
    // ad-tech mostly runs its own stacks.
    double affinity =
        (cat == DomainCategory::ads || cat == DomainCategory::trackers)
            ? 0.06
            : 0.10;

    int nfqdns = static_cast<int>(rng.between(1, 4));
    auto [p0, s0] = sample_hosting(rng, /*prefer_cdn=*/t < 200, affinity);
    for (int k = 0; k < nfqdns; ++k) {
      int provider = p0;
      int service = s0;
      if (k > 0 && rng.chance(cfg_.multi_cloud_prob)) {
        std::tie(provider, service) = sample_hosting(rng, false, affinity);
      }
      // Adoption causality: on a catalogued service, the service's policy
      // and measured rate determine AAAA presence outright (an always-on
      // service cannot be disabled; Table 2's rates ARE the outcome).
      // Generic hosting leaves it to the tenant: category culture (ads
      // lag, social leads) scaled by how IPv6-forward the host is.
      double rate;
      if (service >= 0) {
        const auto& svc = providers_->at(static_cast<size_t>(provider))
                              .services[static_cast<size_t>(service)];
        rate = svc.policy == cloud::V6Policy::always_on ? 1.0
                                                        : svc.v6_adoption;
      } else {
        double host_mult = std::clamp(
            providers_->at(static_cast<size_t>(provider)).generic_v6_rate /
                0.45,
            0.25, 2.0);
        rate = std::clamp(category_base_adoption(cat) * host_mult, 0.02, 0.98);
      }
      // Pool-head overrides: the seeded ad-tech giants stay IPv4-only;
      // other highly popular infrastructure domains are mature dual-stack.
      if (t < std::size(kSeedThirdParties)) {
        rate = cfg_.seed_third_party_adoption;
      } else if (t < static_cast<size_t>(cfg_.popular_third_party_count) &&
                 cat != DomainCategory::ads &&
                 cat != DomainCategory::trackers) {
        // Popular non-ad infrastructure is mature dual-stack; popular ad
        // networks keep their category's laggard rate, which is exactly
        // what makes them the high-span IPv4-only heavy hitters of
        // Figs. 9 and 18.
        rate = std::max(rate, cfg_.popular_third_party_adoption);
      }
      static constexpr const char* kSubLabels[] = {"cdn", "static", "api",
                                                   "edge"};
      std::string name =
          k == 0 ? tenants_[tenant].etld1
                 : std::string(kSubLabels[static_cast<size_t>(k) - 1]) + "." +
                       tenants_[tenant].etld1;
      auto id = add_fqdn(std::move(name), tenant, provider, service, rate, rng);

      // Zipf popularity by tenant rank; split across the tenant's FQDNs.
      // Seed weights are assigned in a second pass below.
      double w = 1.0 / std::pow(static_cast<double>(t + 1),
                                cfg_.third_party_zipf) /
                 nfqdns;
      third_party_pool_.push_back(id);
      third_party_weights_.push_back(w);
      if (t >= static_cast<size_t>(cfg_.popular_third_party_count))
        tail_pool_.push_back(id);
    }
  }

  // Second pass: the seeded commercial web stack carries kSeedMass of all
  // third-party embeds, split across the seeds in proportion to their
  // paper-reported spans. This is what gives Fig. 18 its shape.
  constexpr double kSeedMass = 0.35;
  double rest = 0.0;
  double seed_span_total = 0.0;
  for (size_t i = 0; i < third_party_pool_.size(); ++i)
    if (fqdns_[third_party_pool_[i]].tenant >= std::size(kSeedThirdParties))
      rest += third_party_weights_[i];
  for (double v : kSeedSpanTargets) seed_span_total += v;
  for (size_t i = 0; i < third_party_pool_.size(); ++i) {
    auto tenant = fqdns_[third_party_pool_[i]].tenant;
    if (tenant >= std::size(kSeedThirdParties)) continue;
    double share = kSeedSpanTargets[tenant] / seed_span_total;
    double per_fqdn =
        share / static_cast<double>(tenants_[tenant].fqdns.size());
    third_party_weights_[i] = rest * kSeedMass / (1.0 - kSeedMass) * per_fqdn;
  }
}

void Universe::build_sites(stats::Rng& rng) {
  stats::DiscreteSampler tp_sampler(third_party_weights_);
  sites_.reserve(static_cast<size_t>(cfg_.site_count));

  for (int rank = 0; rank < cfg_.site_count; ++rank) {
    Site site;
    site.rank = rank;
    site.fail_u = rng.uniform();

    // A sprinkle of sites whose "domain" is itself a public suffix — the
    // paper's tiny "Unknown Primary Domain" bucket (8/6/3 sites).
    bool unknown_primary = rank > 100 && rank % 30011 == 7;
    std::string etld1 =
        unknown_primary
            ? "zone" + std::to_string(rank) + ".ck"  // *.ck is a PSL wildcard
            : "site" + std::to_string(rank) + "." +
                  kTlds[rng.below(std::size(kTlds))];
    auto tenant = add_tenant(etld1, DomainCategory::first_party);
    site.tenant = tenant;

    // Main-domain IPv6 adoption (Fig. 6's gradient): the larger of the
    // site's own propensity (rising with rank) and the hosting provider's
    // default behaviour — a site proxied by an IPv6-forward host gets AAAA
    // without lifting a finger (§5's causal insight). Site apexes carry
    // direct A/AAAA records (apex names cannot CNAME).
    auto [prov, svc] = sample_hosting(rng, /*prefer_cdn=*/rank < 2000,
                                      /*service_affinity=*/0.0);
    svc = -1;
    if (!rng.chance(cfg_.cloud_hosted_fraction)) prov = -1;

    double own_choice =
        cfg_.site_adoption_base +
        cfg_.site_adoption_boost * std::exp(-rank / cfg_.site_adoption_decay);
    double hosting_default =
        prov >= 0 ? providers_->at(static_cast<size_t>(prov)).generic_v6_rate
                  : 0.0;
    double site_rate = std::max(own_choice, hosting_default);
    double site_u = rng.uniform();

    site.main_fqdn = add_fqdn(etld1, tenant, prov, svc, site_rate, rng);
    fqdns_[site.main_fqdn].adopt_u = site_u;

    // First-party subdomains. When the site is AAAA-enabled these usually
    // follow suit, but not always (assets.national-geographic.org, §4.3).
    static constexpr const char* kFp[] = {"www", "static", "img", "api"};
    std::vector<std::uint32_t> fp_ids{site.main_fqdn};
    for (int k = 0; k < cfg_.first_party_fqdns; ++k) {
      double rate = cfg_.first_party_adoption_given_site_v6;
      auto id = add_fqdn(std::string(kFp[k]) + "." + etld1, tenant, prov, svc,
                         rate, rng);
      // First-party AAAA is conditional on the site itself being AAAA:
      // encode by making the subdomain's latent draw fail whenever the
      // site's does.
      if (site_u >= site_rate) fqdns_[id].adoption_rate = 0.0;
      fp_ids.push_back(id);
    }

    // A sprinkle of sites deliberately serve version-specific subdomains
    // ("ipv4.<site>" stays A-only by design) — §4.4's misclassification
    // edge case (the paper estimates 106 such sites, 0.4% of partial).
    if (rng.chance(0.004)) {
      auto id = add_fqdn("ipv4." + etld1, tenant, prov, svc, 0.0, rng);
      fp_ids.push_back(id);
    }

    // Optional redirect main -> www (the crawler follows it).
    if (rng.chance(0.15)) site.redirect_to = fp_ids[1];

    // The site's third-party stack: a site embeds the same handful of ad,
    // analytics, and CDN partners on every page, so distinct third-party
    // dependencies per site stay bounded (and heavy hitters recur across
    // sites — the Fig. 8 span skew). Ad-free sites (no monetization)
    // skip ads/tracker domains entirely; they are where IPv6-full sites
    // mostly come from.
    // The most popular sites monetize through their own (dual-stack)
    // platforms more often than through embedded third-party ad stacks.
    double ads_p = cfg_.ads_site_fraction * (rank < 300 ? 0.45 : 1.0);
    bool has_ads = rng.chance(ads_p);
    // Ad-free sites carry none of the commercial ad/tracking stack — no
    // seeds, no ads, no trackers. They are where IPv6-full comes from.
    auto allowed = [&](std::uint32_t pick) {
      if (has_ads) return true;
      const auto& f = fqdns_[pick];
      if (f.tenant < std::size(kSeedThirdParties)) return false;
      auto cat = tenants_[f.tenant].category;
      return cat != DomainCategory::ads && cat != DomainCategory::trackers;
    };
    std::vector<std::uint32_t> site_tp;
    int ntp = static_cast<int>(rng.between(4, has_ads ? 12 : 8));
    for (int k = 0; k < ntp; ++k) {
      std::uint32_t pick = third_party_pool_[tp_sampler.sample(rng)];
      for (int tries = 0; tries < 12 && !allowed(pick); ++tries)
        pick = third_party_pool_[tp_sampler.sample(rng)];
      if (allowed(pick)) site_tp.push_back(pick);
    }
    // Every site also has a couple of niche partners nobody else uses
    // (its CMS vendor, a regional CDN): uniform draws from the deep tail.
    // These are why fixing only the top-span domains cannot fix every
    // partial site (Fig. 10's long tail).
    // Ad-carrying (commercial) sites integrate more vendors; minimal
    // ad-free sites often have none.
    int nniche = static_cast<int>(
        has_ads ? rng.between(1, 3) : rng.between(0, 1));
    for (int k = 0; k < nniche && !tail_pool_.empty(); ++k) {
      std::uint32_t pick = tail_pool_[rng.below(tail_pool_.size())];
      for (int tries = 0; tries < 12 && !allowed(pick); ++tries)
        pick = tail_pool_[rng.below(tail_pool_.size())];
      if (allowed(pick)) site_tp.push_back(pick);
    }
    if (site_tp.empty())
      site_tp.push_back(third_party_pool_[tp_sampler.sample(rng)]);

    // Pages.
    int nsub = static_cast<int>(
        rng.between(cfg_.subpages_min, cfg_.subpages_max));
    site.pages.resize(static_cast<size_t>(1 + nsub));
    for (size_t pi = 0; pi < site.pages.size(); ++pi) {
      Page& page = site.pages[pi];
      int nres = static_cast<int>(rng.between(cfg_.resources_per_page_min,
                                              cfg_.resources_per_page_max));
      page.resources.reserve(static_cast<size_t>(nres));
      for (int r = 0; r < nres; ++r) {
        ResourceRef ref;
        if (rng.chance(0.38)) {
          ref.fqdn = fp_ids[rng.below(fp_ids.size())];
          ref.type = sample_type_for_category(DomainCategory::first_party, rng);
        } else {
          ref.fqdn = site_tp[rng.below(site_tp.size())];
          ref.type = sample_type_for_category(
              tenants_[fqdns_[ref.fqdn].tenant].category, rng);
        }
        page.resources.push_back(ref);
      }
      // Link structure: the main page links to every subpage; subpages
      // link onward to a couple of peers.
      if (pi == 0) {
        for (std::uint32_t j = 1; j <= static_cast<std::uint32_t>(nsub); ++j)
          page.internal_links.push_back(j);
      } else if (nsub > 1) {
        page.internal_links.push_back(
            1 + static_cast<std::uint32_t>(rng.below(static_cast<std::uint64_t>(nsub))));
      }
      // Off-site links the crawler must refuse (same-site check).
      if (rng.chance(0.3) && !third_party_pool_.empty()) {
        page.external_links.push_back(
            third_party_pool_[tp_sampler.sample(rng)]);
      }
    }

    sites_.push_back(std::move(site));
  }
}

SiteFate Universe::fate(const Site& s, Epoch e) const {
  const auto ei = static_cast<int>(e);
  double nx = cfg_.nxdomain_rate + cfg_.epoch_failure_drift * ei * 0.7;
  double other = cfg_.other_failure_rate + cfg_.epoch_failure_drift * ei * 0.3;
  if (s.fail_u < nx) return SiteFate::nxdomain;
  if (s.fail_u < nx + other) return SiteFate::other_failure;
  return SiteFate::ok;
}

bool Universe::has_aaaa(std::uint32_t fqdn, Epoch e) const {
  const Fqdn& f = fqdns_[fqdn];
  double rate = f.adoption_rate +
                cfg_.epoch_adoption_drift * static_cast<int>(e);
  return f.adopt_u < std::min(1.0, rate);
}

dns::ZoneDb Universe::build_zone(Epoch e) const {
  dns::ZoneDb zone;

  auto register_fqdn = [&](std::uint32_t id) {
    const Fqdn& f = fqdns_[id];
    bool aaaa = has_aaaa(id, e);

    std::string owner = f.name;
    if (f.provider >= 0 && f.service >= 0) {
      // CNAME chain into the provider service's namespace: the §5.3
      // identification signal.
      const auto& svc = providers_->at(static_cast<size_t>(f.provider))
                            .services[static_cast<size_t>(f.service)];
      std::string target = "t";
      target += std::to_string(id);
      target += '.';
      target += svc.cname_suffix;
      zone.add_cname(owner, target);
      owner = std::move(target);
    }

    if (f.provider >= 0) {
      auto prov = static_cast<size_t>(f.provider);
      // Attribution quirk: some providers (Bunnyway) serve AAAA from their
      // own AS while the A records sit in a partner's address space.
      size_t a_prov = providers_->a_record_host(prov).value_or(prov);
      zone.add_a(owner, providers_->v4_address(a_prov, id));
      if (aaaa) zone.add_aaaa(owner, providers_->v6_address(prov, id));
    } else {
      // Self-hosted: address space outside every provider announcement.
      zone.add_a(owner, net::IPv4Addr((93u << 24) + id + 1));
      if (aaaa)
        zone.add_aaaa(owner, net::IPv6Addr::from_halves(
                                 (0x2c0full << 48) | 1, id + 1));
    }
  };

  // Third-party and site-owned FQDNs; NXDOMAIN sites stay unregistered
  // (that IS their failure mode).
  std::vector<bool> skip(fqdns_.size(), false);
  for (const auto& site : sites_) {
    if (fate(site, e) == SiteFate::nxdomain) {
      for (auto id : tenants_[site.tenant].fqdns) skip[id] = true;
    }
  }
  for (std::uint32_t id = 0; id < fqdns_.size(); ++id)
    if (!skip[id]) register_fqdn(id);

  return zone;
}

std::optional<DomainCategory> Universe::categorize(
    std::string_view etld1) const {
  auto it = tenant_by_name_.find(etld1);
  if (it == tenant_by_name_.end()) return std::nullopt;
  return tenants_[it->second].category;
}

std::optional<std::uint32_t> Universe::find_tenant(
    std::string_view etld1) const {
  auto it = tenant_by_name_.find(etld1);
  if (it == tenant_by_name_.end()) return std::nullopt;
  return it->second;
}

}  // namespace nbv6::web
