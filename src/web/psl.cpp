#include "web/psl.h"

#include <algorithm>
#include <vector>

namespace nbv6::web {

std::vector<std::string_view> split_labels(std::string_view host) {
  std::vector<std::string_view> labels;
  size_t start = 0;
  while (start <= host.size()) {
    size_t dot = host.find('.', start);
    if (dot == std::string_view::npos) {
      labels.push_back(host.substr(start));
      break;
    }
    labels.push_back(host.substr(start, dot - start));
    start = dot + 1;
  }
  return labels;
}

void PublicSuffixList::add_rule(std::string_view rule) {
  if (rule.empty()) return;
  if (rule[0] == '!') {
    exception_rules_.emplace(rule.substr(1));
  } else if (rule.rfind("*.", 0) == 0) {
    wildcard_rules_.emplace(rule.substr(2));
  } else {
    rules_.emplace(rule);
  }
}

PublicSuffixList PublicSuffixList::builtin() {
  PublicSuffixList psl;
  static constexpr const char* kRules[] = {
      // gTLDs and common new TLDs.
      "com", "org", "net", "edu", "gov", "mil", "int", "io", "co", "ai",
      "app", "dev", "cloud", "online", "shop", "site", "xyz", "info", "biz",
      "tv", "me", "us", "ca", "de", "fr", "nl", "es", "it", "pl", "ru", "cn",
      "in", "br", "mx", "se", "no", "fi", "ch", "at", "be", "cz", "gr", "pt",
      "ro", "hu", "dk", "ie", "il", "tr", "za", "kr", "vn", "id", "th", "my",
      "sg", "hk", "tw", "ar", "cl", "pe", "ve",
      // Two-level public suffixes.
      "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk",
      "com.au", "net.au", "org.au", "edu.au",
      "co.jp", "ne.jp", "or.jp", "ac.jp",
      "com.br", "net.br", "org.br",
      "co.in", "net.in", "org.in",
      "com.cn", "net.cn", "org.cn",
      "co.nz", "net.nz", "org.nz",
      "com.mx", "com.ar", "com.tr", "com.sg", "com.hk", "com.tw",
      "co.kr", "co.za", "com.vn",
      // Private-registry suffixes on the real PSL that matter for
      // third-party hosting analysis.
      "github.io", "gitlab.io", "netlify.app", "vercel.app", "web.app",
      "firebaseapp.com", "herokuapp.com", "azurewebsites.net",
      "cloudfront.net", "appspot.com", "run.app", "b-cdn.net",
      "amazonaws.com",
      // Wildcard and exception rules (the ck classic).
      "*.ck", "!www.ck",
  };
  for (auto* r : kRules) psl.add_rule(r);
  return psl;
}

std::string PublicSuffixList::public_suffix(std::string_view host) const {
  auto labels = split_labels(host);
  if (labels.empty()) return std::string(host);

  // Walk suffixes from the full host down; track the longest match. PSL
  // semantics: exception beats wildcard; wildcard "*.X" makes "<label>.X"
  // a suffix; otherwise the literal rules; fall back to the last label
  // (implicit "*").
  int best = -1;  // index into labels where the suffix starts
  for (size_t start = 0; start < labels.size(); ++start) {
    std::string suffix;
    for (size_t i = start; i < labels.size(); ++i) {
      if (!suffix.empty()) suffix += '.';
      suffix += labels[i];
    }
    if (exception_rules_.contains(suffix)) {
      // The exception rule says this exact name is NOT a public suffix;
      // its public suffix is one label shorter.
      best = static_cast<int>(start) + 1;
      break;
    }
    if (rules_.contains(suffix)) {
      best = static_cast<int>(start);
      break;
    }
    // Wildcard: "*.X" matches "<l>.X...": check the parent.
    if (start + 1 < labels.size()) {
      std::string parent;
      for (size_t i = start + 1; i < labels.size(); ++i) {
        if (!parent.empty()) parent += '.';
        parent += labels[i];
      }
      if (wildcard_rules_.contains(parent)) {
        best = static_cast<int>(start);
        break;
      }
    }
  }
  if (best < 0) best = static_cast<int>(labels.size()) - 1;  // implicit "*"

  std::string out;
  for (size_t i = static_cast<size_t>(best); i < labels.size(); ++i) {
    if (!out.empty()) out += '.';
    out += labels[i];
  }
  return out;
}

std::optional<std::string> PublicSuffixList::registrable_domain(
    std::string_view host) const {
  std::string suffix = public_suffix(host);
  if (suffix.size() >= host.size()) return std::nullopt;  // host IS a suffix
  // One more label than the suffix.
  std::string_view rest = host.substr(0, host.size() - suffix.size() - 1);
  size_t last_dot = rest.rfind('.');
  std::string_view label =
      last_dot == std::string_view::npos ? rest : rest.substr(last_dot + 1);
  if (label.empty()) return std::nullopt;
  return std::string(label) + "." + suffix;
}

bool PublicSuffixList::same_site(std::string_view a,
                                 std::string_view b) const {
  auto ra = registrable_domain(a);
  auto rb = registrable_domain(b);
  return ra && rb && *ra == *rb;
}

}  // namespace nbv6::web
