// The synthetic web universe: the stand-in for the live Tranco top-100k
// crawl of §4 and §5.
//
// The generator builds, deterministically from a seed, a population of
// top-list websites and shared third-party resource domains whose joint
// structure matches the causal mechanisms the paper measures:
//
//   - Sites occupy Tranco-like ranks; a site's main-domain AAAA probability
//     rises toward the top of the list (Fig. 6's gradient).
//   - Every page embeds first-party subdomain resources and third-party
//     resources drawn Zipf-heavily from a shared pool, so a few domains
//     (ads, trackers, CDNs) accumulate enormous span while most appear on
//     one or two sites (Fig. 8's long tail).
//   - Third-party adoption varies by category — advertising lags hardest —
//     which is what makes three-quarters of AAAA-enabled sites only
//     IPv6-partial (Figs. 5, 9).
//   - Every FQDN is hosted somewhere: a cloud provider + service (CNAME
//     chain to the service suffix) or self-hosted. Service IPv6 policy
//     drives resource-domain AAAA presence, giving §5 its provider and
//     service contrasts, including the Bunnyway/Datacamp and Akamai
//     split-attribution quirks.
//   - A latent adoption propensity per FQDN plus per-epoch thresholds
//     yields slow, consistent growth across the paper's three measurement
//     epochs (Oct 2024, Apr 2025, Jul 2025).
//
// Everything is registered in a dns::ZoneDb per epoch, so the crawler and
// the cloud analyses operate purely through DNS + BGP lookups, exactly like
// the paper's pipeline.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cloud/providers.h"
#include "dns/zone.h"
#include "stats/rng.h"
#include "web/psl.h"

namespace nbv6::web {

/// Resource types as browsers (and Fig. 18) classify fetches.
enum class ResourceType : std::uint8_t {
  image,
  script,
  stylesheet,
  xmlhttprequest,
  sub_frame,
  font,
  media,
  beacon,
};
constexpr int kResourceTypeCount = 8;
std::string_view to_string(ResourceType t);

/// Third-party domain categories, following the VirusTotal taxonomy the
/// paper applies to heavy hitters (Fig. 9).
enum class DomainCategory : std::uint8_t {
  ads,
  trackers,
  analytics,
  content_delivery,
  information_technology,
  social,
  first_party,  ///< site-owned domains (not third-party at all)
};
constexpr int kDomainCategoryCount = 7;
std::string_view to_string(DomainCategory c);

/// One measurement epoch. The paper's three runs.
enum class Epoch : std::uint8_t { oct2024 = 0, apr2025 = 1, jul2025 = 2 };
constexpr int kEpochCount = 3;
std::string_view to_string(Epoch e);

/// A fully qualified domain name in the universe.
struct Fqdn {
  std::string name;
  std::uint32_t tenant = 0;   ///< owning eTLD+1 (index into tenants())
  int provider = -1;          ///< cloud provider index; -1 = self-hosted
  int service = -1;           ///< provider service index; -1 = generic hosting
  double adopt_u = 1.0;       ///< latent adoption propensity in [0,1)
  double adoption_rate = 0;   ///< epoch-0 threshold; drifts upward per epoch
};

/// An eTLD+1 and the FQDNs under it.
struct Tenant {
  std::string etld1;
  DomainCategory category = DomainCategory::first_party;
  std::vector<std::uint32_t> fqdns;
};

struct ResourceRef {
  std::uint32_t fqdn = 0;
  ResourceType type = ResourceType::image;
};

struct Page {
  std::vector<ResourceRef> resources;
  /// Indices of same-site pages this page links to.
  std::vector<std::uint32_t> internal_links;
  /// FQDNs of off-site link targets (the crawler must refuse these).
  std::vector<std::uint32_t> external_links;
};

/// Why a site fails to load, when it does (§4.2's loading-failure split).
enum class SiteFate : std::uint8_t { ok, nxdomain, other_failure };

struct Site {
  std::uint32_t tenant = 0;
  std::uint32_t main_fqdn = 0;
  int rank = 0;  ///< 0-based Tranco-style rank
  double fail_u = 1.0;  ///< latent failure propensity
  /// Optional redirect: main_fqdn 301s here before content loads.
  std::optional<std::uint32_t> redirect_to;
  std::vector<Page> pages;  ///< pages[0] is the main page
};

struct UniverseConfig {
  int site_count = 100'000;
  /// Third-party tenant pool size as a fraction of site count.
  double third_party_ratio = 0.35;
  /// Zipf exponent for third-party popularity (span heavy-tail).
  double third_party_zipf = 1.15;
  /// Pages per site beyond the main page (the crawler clicks 5).
  int subpages_min = 4;
  int subpages_max = 7;
  int resources_per_page_min = 6;
  int resources_per_page_max = 26;
  /// First-party subdomains per site and the AAAA rate they enjoy when the
  /// site's main domain is AAAA-enabled (set below 1.0 to produce §4.3's
  /// rare first-party-only-partial sites).
  int first_party_fqdns = 3;
  double first_party_adoption_given_site_v6 = 0.985;
  /// Site main-domain adoption is max(own choice, hosting default): the
  /// site's own propensity rises toward the top of the list, and sites on
  /// IPv6-forward hosts get AAAA by default (the §5 mechanism).
  /// own_choice(rank) = base + boost * exp(-rank/decay).
  double site_adoption_base = 0.18;
  double site_adoption_boost = 0.42;
  double site_adoption_decay = 400.0;
  /// Fraction of sites that embed an ads/tracker stack at all; ad-free
  /// sites are the main source of IPv6-full sites.
  double ads_site_fraction = 0.55;
  /// Third-party pool-head domains (below) outside the seeded ad-tech set
  /// are treated as mature infrastructure with high adoption.
  int popular_third_party_count = 3000;
  double popular_third_party_adoption = 0.97;
  /// Seeded ad-tech heavy hitters stay essentially IPv4-only (Fig. 18).
  double seed_third_party_adoption = 0.05;
  /// Loading failures at epoch 0 (grow slightly per epoch as domains rot).
  double nxdomain_rate = 0.124;
  double other_failure_rate = 0.0445;
  /// Per-epoch additive drift on adoption thresholds and failure rates.
  double epoch_adoption_drift = 0.006;
  double epoch_failure_drift = 0.006;
  /// Fraction of site mains hosted in a catalogued cloud (rest self-host).
  double cloud_hosted_fraction = 0.78;
  /// Probability a multi-FQDN third-party tenant spreads across providers.
  double multi_cloud_prob = 0.35;
  std::uint64_t seed = 0x7eb0'1234;
};

/// Per-category adoption multipliers (ads lag, social leads).
double category_adoption_factor(DomainCategory c);

/// Baseline AAAA adoption for a third-party domain of a category when the
/// hosting choice is left to the tenant (generic/self hosting).
double category_base_adoption(DomainCategory c);

class Universe {
 public:
  explicit Universe(const UniverseConfig& cfg,
                    const cloud::ProviderCatalog& providers);

  [[nodiscard]] const UniverseConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<Site>& sites() const { return sites_; }
  [[nodiscard]] const std::vector<Tenant>& tenants() const { return tenants_; }
  [[nodiscard]] const std::vector<Fqdn>& fqdns() const { return fqdns_; }
  [[nodiscard]] const cloud::ProviderCatalog& providers() const {
    return *providers_;
  }
  [[nodiscard]] const PublicSuffixList& psl() const { return psl_; }

  /// Site fate at an epoch (failure rates drift upward).
  [[nodiscard]] SiteFate fate(const Site& s, Epoch e) const;

  /// Does this FQDN publish an AAAA at this epoch? (A records are
  /// universal for non-failed names.)
  [[nodiscard]] bool has_aaaa(std::uint32_t fqdn, Epoch e) const;

  /// Build the DNS zone for an epoch: A/AAAA/CNAME records for every FQDN
  /// of every non-NXDOMAIN site and all third-party domains, with CNAME
  /// chains into provider service suffixes and addresses drawn from
  /// provider space (honouring the Bunnyway-style A-record quirks).
  [[nodiscard]] dns::ZoneDb build_zone(Epoch e) const;

  /// The VirusTotal-categorizer stand-in: category of an eTLD+1.
  [[nodiscard]] std::optional<DomainCategory> categorize(
      std::string_view etld1) const;

  /// Tenant index of an eTLD+1, if present.
  [[nodiscard]] std::optional<std::uint32_t> find_tenant(
      std::string_view etld1) const;

 private:
  void build_third_parties(stats::Rng& rng);
  void build_sites(stats::Rng& rng);
  std::uint32_t add_tenant(std::string etld1, DomainCategory cat);
  std::uint32_t add_fqdn(std::string name, std::uint32_t tenant, int provider,
                         int service, double rate, stats::Rng& rng);
  /// Sample a (provider, service) pair; `prefer_cdn` biases toward
  /// default-on CDN services (top-ranked sites); `service_affinity` is the
  /// chance a tenant of a service-bearing provider uses a catalogued
  /// service rather than generic hosting.
  std::pair<int, int> sample_hosting(stats::Rng& rng, bool prefer_cdn,
                                     double service_affinity = 0.65);

  UniverseConfig cfg_;
  const cloud::ProviderCatalog* providers_;
  PublicSuffixList psl_;
  std::vector<Site> sites_;
  std::vector<Tenant> tenants_;
  std::vector<Fqdn> fqdns_;
  /// Third-party FQDN ids weighted by Zipf popularity, for page building.
  std::vector<std::uint32_t> third_party_pool_;
  std::vector<double> third_party_weights_;
  /// FQDNs of unpopular tenants, for uniform niche-partner draws.
  std::vector<std::uint32_t> tail_pool_;
  std::map<std::string, std::uint32_t, std::less<>> tenant_by_name_;
};

}  // namespace nbv6::web
