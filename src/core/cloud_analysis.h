// Cloud-side adoption analysis (§5): glue from a server survey's observed
// FQDNs to the cloud attribution pipeline.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cloud/analysis.h"
#include "core/server_analysis.h"
#include "web/universe.h"

namespace nbv6::core {

/// Resolve every FQDN a survey observed and build cloud DomainRecords
/// (addresses, CNAME terminals, eTLD+1 via the universe's PSL).
std::vector<cloud::DomainRecord> build_domain_records(
    const web::Universe& universe, const ServerSurvey& survey);

/// The paper's merged-entity map for Fig. 12 ("Cloudflare (All)",
/// "Akamai (All)").
std::map<std::string, std::string> paper_org_merge_map();

struct CloudReport {
  std::vector<cloud::ProviderBreakdownRow> providers;   ///< Table 3 / Fig. 11
  std::vector<cloud::ServiceAdoptionRow> services;      ///< Table 2
};

CloudReport analyze_cloud(const web::Universe& universe,
                          const ServerSurvey& survey);

}  // namespace nbv6::core
