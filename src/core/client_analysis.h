// Client-side adoption analysis (§3): from flow-monitor aggregates to the
// paper's tables and series.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "engine/fleet.h"
#include "flowmon/monitor.h"
#include "net/asn.h"
#include "stats/descriptive.h"
#include "stats/stl.h"
#include "traffic/service_catalog.h"

namespace nbv6::core {

/// One residence row of Table 1 (one scope's half).
struct ScopeReport {
  double total_gb = 0;
  double v4_gb = 0;
  double v6_gb = 0;
  double overall_byte_fraction = 0;  ///< bytes-weighted IPv6 fraction
  stats::Summary daily_byte_fraction;
  double total_flows_m = 0;
  double v4_flows_m = 0;
  double v6_flows_m = 0;
  double overall_flow_fraction = 0;
  stats::Summary daily_flow_fraction;
};

struct ResidenceReport {
  std::string name;
  ScopeReport external;
  ScopeReport internal;
};

/// Build Table 1's row for one residence from its monitor.
ResidenceReport analyze_residence(const std::string& name,
                                  const flowmon::FlowMonitor& monitor);

/// Population-level reporting: Table-1-style rows for every residence of
/// a fleet run plus the merged fleet row, and the cross-residence spread
/// of per-home adoption (the Table 1 "daily mean" column generalized from
/// five homes to a population).
struct FleetReport {
  std::vector<ResidenceReport> residences;  ///< index-aligned with the run
  ResidenceReport fleet;                    ///< from the merged monitor
  /// Per-residence overall external IPv6 fractions, homes with traffic
  /// only, in residence order (paired: byte_fracs[i] and flow_fracs[i]
  /// are the same home — ready for paired tests like Wilcoxon).
  std::vector<double> byte_fracs;
  std::vector<double> flow_fracs;
  stats::Summary residence_byte_fraction;  ///< summarize(byte_fracs)
  stats::Summary residence_flow_fraction;  ///< summarize(flow_fracs)
};

FleetReport analyze_fleet(const engine::FleetResult& result);

/// Per-AS IPv6 usage at one residence (§3.4, Figs. 3-4). Only ASes with at
/// least `min_traffic_share` of the residence's external bytes are kept
/// (paper: 0.01%).
struct AsUsage {
  net::Asn asn = 0;
  std::string as_name;
  std::uint64_t bytes = 0;
  std::uint64_t v6_bytes = 0;
  [[nodiscard]] double v6_fraction() const {
    return bytes == 0 ? 0.0 : static_cast<double>(v6_bytes) / static_cast<double>(bytes);
  }
};

std::vector<AsUsage> as_usage(const flowmon::FlowMonitor& monitor,
                              const net::AsMap& as_map,
                              double min_traffic_share = 1e-4);

/// Per-domain usage via reverse DNS (§3.4's domain-level view; Fig. 17).
struct DomainUsage {
  std::string domain;
  std::uint64_t bytes = 0;
  std::uint64_t v6_bytes = 0;
  [[nodiscard]] double v6_fraction() const {
    return bytes == 0 ? 0.0 : static_cast<double>(v6_bytes) / static_cast<double>(bytes);
  }
};

std::vector<DomainUsage> domain_usage(const flowmon::FlowMonitor& monitor,
                                      const traffic::ServiceCatalog& catalog,
                                      std::uint64_t min_bytes = 0);

/// Cross-residence join: entities (AS or domain) observed at >= k
/// residences, with the per-residence IPv6 fractions (the box-plot data of
/// Figs. 4 and 17).
struct CrossResidenceUsage {
  net::Asn asn = 0;  ///< 0 for domain-keyed joins
  std::string key;   ///< AS name or domain
  std::vector<double> fractions;  ///< one per residence where observed
};

std::vector<CrossResidenceUsage> ases_at_min_residences(
    const std::vector<std::vector<AsUsage>>& per_residence, int min_residences);

std::vector<CrossResidenceUsage> domains_at_min_residences(
    const std::vector<std::vector<DomainUsage>>& per_residence,
    int min_residences, std::uint64_t min_total_bytes);

/// MSTL decomposition of a residence's hourly external IPv6 fraction with
/// daily (24h) and weekly (168h) seasons — Fig. 2's panels.
struct DiurnalDecomposition {
  std::vector<double> observed;
  std::vector<double> trend;
  std::vector<double> daily;
  std::vector<double> weekly;
  std::vector<double> remainder;
};

DiurnalDecomposition diurnal_decomposition(const flowmon::FlowMonitor& monitor,
                                           bool by_bytes);

}  // namespace nbv6::core
