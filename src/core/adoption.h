// The paper's central abstraction: non-binary (graded) IPv6 adoption.
//
// Instead of the binary "can X do IPv6?", every entity in the ecosystem
// gets a grade: how much of its activity/assets actually are IPv6. One
// taxonomy serves all three perspectives — a client's traffic fraction, a
// website's resource coverage, a cloud tenant population's readiness.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace nbv6::core {

/// Discrete adoption levels (the §4 website taxonomy, reused generally).
enum class AdoptionLevel : std::uint8_t {
  none,     ///< no IPv6 at all (IPv4-only)
  partial,  ///< some activity/assets on IPv6, some IPv4-only
  full,     ///< everything available over IPv6
};

std::string_view to_string(AdoptionLevel level);

/// A graded measurement: the continuous fraction plus the discrete level
/// derived from it.
struct GradedAdoption {
  /// Fraction of activity (bytes, flows, resources, tenants) on IPv6.
  double fraction = 0.0;
  AdoptionLevel level = AdoptionLevel::none;

  /// Derive the level from a fraction with exact-boundary semantics:
  /// 0 -> none, 1 -> full, otherwise partial.
  static GradedAdoption from_fraction(double f);
};

}  // namespace nbv6::core
