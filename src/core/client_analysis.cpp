#include "core/client_analysis.h"

#include <algorithm>
#include <map>

namespace nbv6::core {
namespace {

constexpr double kGb = 1e9;
constexpr double kMillion = 1e6;

ScopeReport scope_report(const flowmon::FlowMonitor& monitor,
                         flowmon::Scope scope) {
  const auto& totals = monitor.totals(scope);
  ScopeReport r;
  r.total_gb = static_cast<double>(totals.total_bytes()) / kGb;
  r.v4_gb = static_cast<double>(totals.v4.bytes) / kGb;
  r.v6_gb = static_cast<double>(totals.v6.bytes) / kGb;
  r.overall_byte_fraction = std::max(0.0, totals.v6_byte_fraction());
  r.total_flows_m = static_cast<double>(totals.total_flows()) / kMillion;
  r.v4_flows_m = static_cast<double>(totals.v4.flows) / kMillion;
  r.v6_flows_m = static_cast<double>(totals.v6.flows) / kMillion;
  r.overall_flow_fraction = std::max(0.0, totals.v6_flow_fraction());

  auto daily_bytes = monitor.daily_v6_fractions(scope, /*by_bytes=*/true);
  auto daily_flows = monitor.daily_v6_fractions(scope, /*by_bytes=*/false);
  r.daily_byte_fraction = stats::summarize(daily_bytes);
  r.daily_flow_fraction = stats::summarize(daily_flows);
  return r;
}

}  // namespace

ResidenceReport analyze_residence(const std::string& name,
                                  const flowmon::FlowMonitor& monitor) {
  ResidenceReport r;
  r.name = name;
  r.external = scope_report(monitor, flowmon::Scope::external);
  r.internal = scope_report(monitor, flowmon::Scope::internal);
  return r;
}

FleetReport analyze_fleet(const engine::FleetResult& result) {
  FleetReport out;
  out.residences.reserve(result.residences.size());
  for (const auto& run : result.residences) {
    out.residences.push_back(
        analyze_residence(run.config.name, run.monitor));
    const auto& ext = run.monitor.totals(flowmon::Scope::external);
    if (ext.total_bytes() == 0) continue;  // vacant/invisible homes
    out.byte_fracs.push_back(ext.v6_byte_fraction());
    out.flow_fracs.push_back(ext.v6_flow_fraction());
  }
  out.fleet = analyze_residence("fleet", result.fleet);
  out.residence_byte_fraction = stats::summarize(out.byte_fracs);
  out.residence_flow_fraction = stats::summarize(out.flow_fracs);
  return out;
}

std::vector<AsUsage> as_usage(const flowmon::FlowMonitor& monitor,
                              const net::AsMap& as_map,
                              double min_traffic_share) {
  // Attribute every destination in one batch LPM pass, then aggregate.
  const auto& dests = monitor.destination_tallies();
  std::vector<net::IpAddr> addrs;
  addrs.reserve(dests.size());
  for (const auto& dest : dests) addrs.push_back(dest.addr);
  const auto asns = as_map.lookup_batch(addrs);

  std::map<net::Asn, AsUsage> by_asn;
  std::uint64_t total = 0;
  for (size_t i = 0; i < dests.size(); ++i) {
    const auto& dest = dests[i];
    total += dest.tally.bytes;
    if (!asns[i]) continue;
    auto& u = by_asn[*asns[i]];
    u.asn = *asns[i];
    u.bytes += dest.tally.bytes;
    if (dest.addr.is_v6()) u.v6_bytes += dest.tally.bytes;
  }

  const auto threshold =
      static_cast<std::uint64_t>(min_traffic_share * static_cast<double>(total));
  std::vector<AsUsage> out;
  for (auto& [asn, u] : by_asn) {
    if (u.bytes < threshold) continue;
    u.as_name = as_map.name(asn);
    out.push_back(std::move(u));
  }
  std::sort(out.begin(), out.end(),
            [](const AsUsage& a, const AsUsage& b) { return a.bytes > b.bytes; });
  return out;
}

std::vector<DomainUsage> domain_usage(const flowmon::FlowMonitor& monitor,
                                      const traffic::ServiceCatalog& catalog,
                                      std::uint64_t min_bytes) {
  std::map<std::string, DomainUsage> by_domain;
  for (const auto& dest : monitor.destination_tallies()) {
    std::string domain = catalog.reverse_dns(dest.addr);
    if (domain.empty()) continue;  // no PTR — unmapped space
    auto& u = by_domain[domain];
    u.domain = domain;
    u.bytes += dest.tally.bytes;
    if (dest.addr.is_v6()) u.v6_bytes += dest.tally.bytes;
  }
  std::vector<DomainUsage> out;
  for (auto& [_, u] : by_domain)
    if (u.bytes >= min_bytes) out.push_back(std::move(u));
  std::sort(out.begin(), out.end(), [](const DomainUsage& a, const DomainUsage& b) {
    return a.bytes > b.bytes;
  });
  return out;
}

std::vector<CrossResidenceUsage> ases_at_min_residences(
    const std::vector<std::vector<AsUsage>>& per_residence,
    int min_residences) {
  std::map<net::Asn, CrossResidenceUsage> joined;
  for (const auto& residence : per_residence) {
    for (const auto& u : residence) {
      auto& j = joined[u.asn];
      j.asn = u.asn;
      j.key = u.as_name;
      j.fractions.push_back(u.v6_fraction());
    }
  }
  std::vector<CrossResidenceUsage> out;
  for (auto& [_, j] : joined)
    if (static_cast<int>(j.fractions.size()) >= min_residences)
      out.push_back(std::move(j));
  return out;
}

std::vector<CrossResidenceUsage> domains_at_min_residences(
    const std::vector<std::vector<DomainUsage>>& per_residence,
    int min_residences, std::uint64_t min_total_bytes) {
  struct Acc {
    CrossResidenceUsage usage;
    std::uint64_t total_bytes = 0;
  };
  std::map<std::string, Acc> joined;
  for (const auto& residence : per_residence) {
    for (const auto& u : residence) {
      auto& j = joined[u.domain];
      j.usage.key = u.domain;
      j.usage.fractions.push_back(u.v6_fraction());
      j.total_bytes += u.bytes;
    }
  }
  std::vector<CrossResidenceUsage> out;
  for (auto& [_, j] : joined) {
    if (static_cast<int>(j.usage.fractions.size()) < min_residences) continue;
    if (j.total_bytes < min_total_bytes) continue;
    out.push_back(std::move(j.usage));
  }
  return out;
}

DiurnalDecomposition diurnal_decomposition(const flowmon::FlowMonitor& monitor,
                                           bool by_bytes) {
  DiurnalDecomposition d;
  d.observed = monitor.hourly_v6_fraction_series(by_bytes);

  stats::MstlConfig cfg;
  cfg.periods = {24, 168};  // daily and weekly, hourly samples
  auto res = stats::mstl_decompose(d.observed, cfg);
  d.trend = std::move(res.trend);
  if (!res.seasonals.empty()) d.daily = std::move(res.seasonals[0]);
  if (res.seasonals.size() > 1) d.weekly = std::move(res.seasonals[1]);
  d.remainder = std::move(res.remainder);
  return d;
}

}  // namespace nbv6::core
