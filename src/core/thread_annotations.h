// Clang Thread Safety Analysis wiring for the concurrent engine pieces.
//
// PR 9 made correctness depend on a hand-enforced invariant: every member
// the ThreadPool / PassCache / ForestRun mutexes guard must only ever be
// touched with the right lock held. TSan catches violations at runtime —
// if the racing schedule happens to fire in CI. This header turns the
// invariant into a compile-time check instead: mutex-guarded members carry
// NBV6_GUARDED_BY, lock-requiring helpers carry NBV6_REQUIRES, and the
// clang CI legs build with -Wthread-safety -Werror=thread-safety, so an
// unguarded access is a build failure, not a lucky TSan catch.
//
// The macros expand to clang's capability attributes and compile away on
// every other compiler (gcc builds are unaffected).
//
// libstdc++'s std::mutex is not capability-annotated, so the analysis
// cannot see std::lock_guard acquire anything. The annotated wrappers
// below (Mutex / MutexLock / CondVar) are therefore the repo's one way to
// lock: same semantics, same cost (MutexLock is a lock_guard-shaped RAII
// over std::mutex; CondVar is a std::condition_variable_any, whose only
// overhead is one uncontended internal lock per wait/notify — noise next
// to the coarse pass/task granularity it is used at).
//
// How to annotate a new mutex-guarded structure (also in README):
//   1. Declare the lock as `core::Mutex mu_;`.
//   2. Mark every member it protects `NBV6_GUARDED_BY(mu_)`.
//   3. Lock with `MutexLock lock(mu_);` (never a bare std::mutex).
//   4. Mark helpers that assume the lock `NBV6_REQUIRES(mu_)` instead of
//      re-locking.
//   5. Rewrite condition-variable predicates as explicit while loops
//      (`while (!pred) cv_.wait(lock);`) — a predicate lambda is analyzed
//      as a separate function and would not see the held capability.
#pragma once

#include <condition_variable>
#include <mutex>

// clang-tidy objects to an unparenthesized macro argument here, but
// attribute arguments cannot be parenthesized; this is the canonical
// expansion shape (same as abseil's thread_annotations.h).
#if defined(__clang__)
#define NBV6_THREAD_ANNOTATION_(x) __attribute__((x))  // NOLINT(bugprone-macro-parentheses)
#else
#define NBV6_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a lockable capability ("mutex").
#define NBV6_CAPABILITY(x) NBV6_THREAD_ANNOTATION_(capability(x))
/// Marks a RAII class whose constructor acquires and destructor releases.
#define NBV6_SCOPED_CAPABILITY NBV6_THREAD_ANNOTATION_(scoped_lockable)
/// Member access requires holding the given capability.
#define NBV6_GUARDED_BY(x) NBV6_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee access requires holding the given capability.
#define NBV6_PT_GUARDED_BY(x) NBV6_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function acquires the capability (and did not hold it on entry).
#define NBV6_ACQUIRE(...) \
  NBV6_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function tries to acquire; first argument is the success return value.
#define NBV6_TRY_ACQUIRE(...) \
  NBV6_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Function releases the capability (must hold it on entry).
#define NBV6_RELEASE(...) \
  NBV6_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Caller must already hold the capability (helper called under the lock).
#define NBV6_REQUIRES(...) \
  NBV6_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (function acquires it itself).
#define NBV6_EXCLUDES(...) NBV6_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Tells the analysis the capability is held from this point on.
#define NBV6_ASSERT_CAPABILITY(x) NBV6_THREAD_ANNOTATION_(assert_capability(x))
/// Function returns a reference to the given capability.
#define NBV6_RETURN_CAPABILITY(x) NBV6_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the protocol cannot be expressed.
#define NBV6_NO_THREAD_SAFETY_ANALYSIS \
  NBV6_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace nbv6::core {

/// std::mutex with the capability annotation the analysis needs. Same
/// layout and cost; BasicLockable, so std::condition_variable_any (and
/// generic std code) can use it directly.
class NBV6_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NBV6_ACQUIRE() { m_.lock(); }
  void unlock() NBV6_RELEASE() { m_.unlock(); }
  bool try_lock() NBV6_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Statically asserts the lock is held (for code paths the analysis
  /// cannot follow, e.g. a callback invoked under a caller's lock).
  void assert_held() const NBV6_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex m_;
};

/// lock_guard/unique_lock replacement the analysis understands. Also a
/// BasicLockable over the owned mutex, so CondVar::wait can drop and
/// reacquire it in place.
class NBV6_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NBV6_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NBV6_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // For condition_variable_any: it unlocks around the block and relocks
  // before returning, so the scope's acquire/release bracketing that the
  // analysis tracks stays truthful at every statement it can see.
  void lock() NBV6_ACQUIRE() { mu_.lock(); }
  void unlock() NBV6_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex/MutexLock. Waits must follow the explicit
/// while-loop shape (see the header comment) so the guarded predicate
/// reads stay inside the scope that holds the capability.
class CondVar {
 public:
  void wait(MutexLock& lock) { cv_.wait(lock); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace nbv6::core
