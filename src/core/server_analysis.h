// Server-side adoption analysis (§4): one-call survey of a web universe.
#pragma once

#include <span>
#include <vector>

#include "web/classify.h"
#include "web/crawler.h"
#include "web/metrics.h"
#include "web/universe.h"

namespace nbv6::core {

struct ServerSurvey {
  web::Epoch epoch = web::Epoch::jul2025;
  std::vector<web::SiteCrawl> crawls;
  std::vector<web::SiteClassification> classifications;
  web::ClassificationCounts counts;
};

/// Crawl every site of `universe` at `epoch` and classify. Deterministic
/// in `seed`.
ServerSurvey run_server_survey(const web::Universe& universe, web::Epoch epoch,
                               std::uint64_t seed,
                               web::CrawlerConfig cfg = {});

/// Readiness by top-N rank prefix (Fig. 6). Percentages are of
/// connection-success sites within the prefix.
struct TopNBreakdown {
  int n = 0;
  double pct_v4only = 0;
  double pct_partial = 0;
  double pct_full = 0;
};

std::vector<TopNBreakdown> topn_breakdown(const web::Universe& universe,
                                          const ServerSurvey& survey,
                                          std::span<const int> ns);

/// The §4.2 ablation: classify from main pages only (no link clicks) and
/// report the IPv6-full share difference.
struct LinkClickAblation {
  double pct_full_with_clicks = 0;
  double pct_full_main_only = 0;
};

LinkClickAblation link_click_ablation(const web::Universe& universe,
                                      web::Epoch epoch, std::uint64_t seed);

/// All distinct resource+main FQDN names observed by a survey — the §5
/// input dataset (the paper's 265k FQDNs).
std::vector<std::string> observed_fqdn_names(const web::Universe& universe,
                                             const ServerSurvey& survey);

}  // namespace nbv6::core
