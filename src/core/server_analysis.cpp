#include "core/server_analysis.h"

#include <algorithm>
#include <unordered_set>

namespace nbv6::core {

ServerSurvey run_server_survey(const web::Universe& universe, web::Epoch epoch,
                               std::uint64_t seed, web::CrawlerConfig cfg) {
  ServerSurvey s;
  s.epoch = epoch;
  auto zone = universe.build_zone(epoch);
  web::Crawler crawler(universe, zone, epoch, cfg);
  s.crawls = crawler.crawl_all(seed);
  s.classifications = web::classify_all(s.crawls);
  s.counts = web::tabulate(s.classifications);
  return s;
}

std::vector<TopNBreakdown> topn_breakdown(const web::Universe& universe,
                                          const ServerSurvey& survey,
                                          std::span<const int> ns) {
  std::vector<TopNBreakdown> out;
  for (int n : ns) {
    std::vector<web::SiteClassification> subset;
    for (size_t i = 0; i < survey.crawls.size(); ++i) {
      int rank = universe.sites()[survey.crawls[i].site_index].rank;
      if (rank < n) subset.push_back(survey.classifications[i]);
    }
    auto counts = web::tabulate(subset);
    TopNBreakdown row;
    row.n = n;
    row.pct_v4only = counts.pct_of_success(counts.ipv4_only);
    row.pct_partial = counts.pct_of_success(counts.ipv6_partial);
    row.pct_full = counts.pct_of_success(counts.ipv6_full);
    out.push_back(row);
  }
  return out;
}

LinkClickAblation link_click_ablation(const web::Universe& universe,
                                      web::Epoch epoch, std::uint64_t seed) {
  auto zone = universe.build_zone(epoch);
  web::Crawler crawler(universe, zone, epoch);

  std::vector<web::SiteClassification> with_clicks;
  std::vector<web::SiteClassification> main_only;
  for (std::uint32_t i = 0; i < universe.sites().size(); ++i) {
    stats::Rng rng1(seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    stats::Rng rng2(seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    with_clicks.push_back(web::classify(crawler.crawl(i, rng1)));
    main_only.push_back(web::classify(crawler.crawl_main_page_only(i, rng2)));
  }
  auto c1 = web::tabulate(with_clicks);
  auto c2 = web::tabulate(main_only);

  LinkClickAblation a;
  a.pct_full_with_clicks = c1.pct_of_success(c1.ipv6_full);
  a.pct_full_main_only = c2.pct_of_success(c2.ipv6_full);
  return a;
}

std::vector<std::string> observed_fqdn_names(const web::Universe& universe,
                                             const ServerSurvey& survey) {
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::string> out;
  auto push = [&](std::uint32_t fqdn) {
    if (seen.insert(fqdn).second)
      out.push_back(universe.fqdns()[fqdn].name);
  };
  for (const auto& crawl : survey.crawls) {
    if (crawl.fate != web::SiteFate::ok) continue;
    for (const auto& r : crawl.resources)
      if (!r.failed) push(r.fqdn);
    // The main host itself is part of the observed FQDN population.
    push(universe.sites()[crawl.site_index].main_fqdn);
  }
  return out;
}

}  // namespace nbv6::core
