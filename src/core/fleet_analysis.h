// Fleet-scale statistical reporting: from per-residence shards to the
// paper's population-level comparisons.
//
// The fleet engine leaves every residence's monitor intact next to the
// merged fleet view; this layer extracts per-residence scalar metrics from
// those shards (fanned out over the engine's ThreadPool, index-addressed so
// any lane count is bit-identical), groups residences by the strata the
// scenario sampler recorded (dual-stack vs broken-CPE, streamer vs
// baseline, ...), and renders
//   - unpaired Wilcoxon rank-sum panels between group pairs, Holm-corrected
//     across metrics (Fig. 12's family-wise control applied fleet-wide),
//   - paired signed-rank panels between metric pairs over one group, and
//   - population CDFs and box-plot summaries per metric (Figs. 1/3/4 scaled
//     from five homes to the population).
#pragma once

#include <cstdio>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/fleet.h"
#include "stats/descriptive.h"
#include "stats/fleet_stats.h"

namespace nbv6::core {

// ------------------------------------------------------ metric extraction

/// Per-residence scalar metrics, each a pure function of one shard.
enum class FleetMetric {
  v6_byte_fraction,        ///< overall external IPv6 byte fraction
  v6_flow_fraction,        ///< overall external IPv6 flow fraction
  daily_v6_byte_fraction,  ///< mean of the daily external byte-fraction series
  external_gb,             ///< external bytes, GB
  external_flows_k,        ///< external flows, thousands
  internal_gb,             ///< internal (LAN) bytes, GB
  he_failure_rate,         ///< Happy Eyeballs failures per session
  sessions_k,              ///< sessions attempted, thousands
  outage_suppressed_k,     ///< sessions lost to outage days, thousands
  service_outage_k,        ///< sessions lost to per-service outages, thousands
  cgn_failure_rate,        ///< CGN port-budget failures per session
};

const char* to_string(FleetMetric m);

/// The panel every report defaults to.
std::vector<FleetMetric> default_fleet_metrics();

/// values[m][i] = metric m at residence i; NaN when undefined there (no
/// traffic in the relevant scope). Row-aligned with `metrics`.
struct FleetMetricMatrix {
  std::vector<FleetMetric> metrics;
  std::vector<std::vector<double>> values;

  [[nodiscard]] std::span<const double> row(FleetMetric m) const;
  [[nodiscard]] size_t residences() const {
    return values.empty() ? 0 : values[0].size();
  }
};

/// Extract every requested metric from every shard. `pool` fans residences
/// out (nullptr runs sequentially); each shard's metrics land in its own
/// index-addressed slot, so results are bit-identical for any lane count.
FleetMetricMatrix extract_metrics(const engine::FleetResult& result,
                                  std::span<const FleetMetric> metrics,
                                  engine::ThreadPool* pool = nullptr);

// ------------------------------------------------------------ day windows

/// Inclusive simulated-day range. The scenario timeline changes conditions
/// mid-observation; windows let every analysis compare the days before an
/// event against the days after it. Defaults cover the whole horizon.
struct DayWindow {
  int first = 0;
  int last = std::numeric_limits<int>::max();

  [[nodiscard]] bool contains(int day) const {
    return day >= first && day <= last;
  }
  /// An inverted window (last < first) contains no day and is treated as
  /// degenerate input everywhere: windowed extract_metrics returns all-NaN
  /// and compare_windows a defined empty panel.
  [[nodiscard]] bool valid() const { return first <= last; }
  friend bool operator==(const DayWindow&, const DayWindow&) = default;
};

/// extract_metrics() restricted to the sessions and flows of the days
/// inside `window`, computed from each shard monitor's per-day aggregates
/// and the simulator's per-day session stats (so he_failure_rate,
/// sessions_k, and outage_suppressed_k are real numbers in any window that
/// intersects the horizon). A residence whose simulated horizon does not
/// intersect `window` — including every residence when the window is
/// inverted — extracts as NaN for every metric: no simulated day, no value.
FleetMetricMatrix extract_metrics(const engine::FleetResult& result,
                                  std::span<const FleetMetric> metrics,
                                  DayWindow window,
                                  engine::ThreadPool* pool = nullptr);

// ----------------------------------------------------------- group specs

/// Residence groups definable from sampled stratum labels.
enum class FleetGroup {
  all,
  active,          ///< not vacant
  dual_stack,      ///< ISP delegates IPv6
  v4_only,         ///< ISP does not
  healthy_v6,      ///< dual-stack, CPE/device IPv6 intact
  broken_cpe,      ///< dual-stack but flaky device IPv6
  heavy_streamer,
  baseline,        ///< neither heavy streamer nor vacant
  opt_out,         ///< partial router visibility
  fully_visible,
};

const char* to_string(FleetGroup g);

[[nodiscard]] bool in_group(const engine::ResidenceTraits& t, FleetGroup g);

/// Residence indices belonging to `g`, in index order.
std::vector<size_t> group_members(
    std::span<const engine::ResidenceTraits> traits, FleetGroup g);

/// The default comparison pairs: each isolates one causal factor the paper
/// identifies for cross-residence variation.
std::vector<std::pair<FleetGroup, FleetGroup>> default_group_pairs();

// ------------------------------------------------------------- reporting

/// One group pair's panel: every metric tested A vs B with the unpaired
/// rank-sum test, Holm-corrected across the panel's metrics.
struct GroupComparison {
  FleetGroup group_a;
  FleetGroup group_b;
  std::vector<stats::PanelRow> rows;
};

GroupComparison compare_groups(const FleetMetricMatrix& matrix,
                               std::span<const engine::ResidenceTraits> traits,
                               FleetGroup a, FleetGroup b,
                               double alpha = 0.05);

/// Paired signed-rank panel over one group: each (first, second) metric
/// pair tested across the residences where both are defined, Holm-corrected
/// across the pairs.
GroupComparison compare_metrics_paired(
    const FleetMetricMatrix& matrix,
    std::span<const engine::ResidenceTraits> traits, FleetGroup group,
    std::span<const std::pair<FleetMetric, FleetMetric>> metric_pairs,
    double alpha = 0.05);

/// Pre/post-event panel: every metric tested `pre` vs `post` with the
/// paired signed-rank test across the residences of `group` where the
/// metric is defined in both windows, Holm-corrected across metrics.
/// group_a == group_b == `group` in the result; rows keep the plain metric
/// name (the window pair is the caller's context). Requires index-aligned
/// traits on the result (throws std::invalid_argument otherwise) and is
/// deterministic for any `pool` lane count. Degenerate windows — inverted,
/// or entirely outside the simulated horizon — yield a defined empty panel
/// (no rows), mirroring the Wilcoxon layer's NaN hardening.
GroupComparison compare_windows(const engine::FleetResult& result,
                                std::span<const FleetMetric> metrics,
                                DayWindow pre, DayWindow post,
                                FleetGroup group = FleetGroup::all,
                                engine::ThreadPool* pool = nullptr,
                                double alpha = 0.05);

/// One metric's population distribution: streaming CDF (bin-resolution
/// quantiles, mergeable) next to the exact box plot and summary.
struct PopulationDistribution {
  FleetMetric metric;
  size_t defined = 0;  ///< residences where the metric is defined
  stats::StreamingCdf cdf;
  stats::BoxPlot box;
  stats::Summary summary;
};

/// Distributions for every matrix row. Fraction metrics bin over [0, 1];
/// unbounded metrics over [0, observed max].
std::vector<PopulationDistribution> population_distributions(
    const FleetMetricMatrix& matrix, int bins = 128);

/// The full fleet-statistics report.
struct FleetStatsReport {
  FleetMetricMatrix matrix;
  std::vector<GroupComparison> comparisons;  ///< unpaired, default pairs
  GroupComparison paired;                    ///< flow- vs byte-fraction etc.
  std::vector<PopulationDistribution> distributions;
};

/// Build the whole report from a fleet run that carried traits
/// (run(FleetConfig) / run(SampledFleet)); throws std::invalid_argument
/// when the result has no index-aligned traits. Deterministic per
/// (result, alpha) for any `pool` lane count.
FleetStatsReport fleet_stats_report(const engine::FleetResult& result,
                                    engine::ThreadPool* pool = nullptr,
                                    double alpha = 0.05);

// ------------------------------------------------------------- rendering

/// Panel as TSV: one row per metric, preceded by the column header when
/// `header` (pass false to append panels into one file).
void write_panel_tsv(std::FILE* out, const GroupComparison& cmp,
                     bool header = true);

/// CDF curves as CSV rows "metric,q,value", `points + 1` rows per metric.
void write_cdf_csv(std::FILE* out,
                   std::span<const PopulationDistribution> dists,
                   int points = 100);

/// Box/summary rows as CSV "metric,count,mean,sd,min,p25,median,p75,max".
void write_summary_csv(std::FILE* out,
                       std::span<const PopulationDistribution> dists);

}  // namespace nbv6::core
