// Standard scenario passes for the pass-graph pipeline runtime.
//
// engine/pipeline.h supplies the type-agnostic DAG scheduler; this header
// registers the concrete scenario chain on it:
//
//   sample        ->  "population"     (engine::SampledFleet)
//   timeline      ->  "planned_fleet"  (engine::SampledFleet)
//   simulate      ->  "fleet_result"   (engine::FleetResult)
//   metrics       ->  "metric_matrix"  (core::FleetMetricMatrix)
//   report        ->  "stats_report"   (core::FleetStatsReport)
//   window_panel  ->  "window_panel"   (core::GroupComparison)
//
// and, when a sink directory is configured, three uncached file-sink
// passes ("panel_tsv", "cdf_csv", "summary_csv") that render the report
// into figure-ready files and output the written paths.
//
// Every pass wraps the exact production stage function (sample_stage,
// apply_timeline, simulate_fleet, extract_metrics, fleet_stats_report,
// compare_windows, write_*) — the pipelined run of a scenario is
// byte-identical to the standalone FleetEngine::run path, which the
// golden-parity test pins across lane counts.
//
// The config digests draw a deliberate line through FleetConfig: the
// sample pass digests only the population slice (residences, seed,
// fractions, arrivals, horizon, catalog content), the timeline pass only
// the timeline slice (events, seed, horizon, plan mode). Scenario variants
// that differ only in their timeline therefore share one cached sample
// pass — the base population is sampled once per sweep, not once per
// variant.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/fleet_analysis.h"
#include "engine/config_tracking.h"
#include "engine/fleet.h"
#include "engine/pipeline.h"
#include "engine/timeline.h"
#include "traffic/service_catalog.h"

namespace nbv6::core {

// --------------------------------------------------------------- digests

/// Digest of the population slice of `cfg` (everything sample_stage reads)
/// plus the catalog content. Excludes threads, timeline, and plan mode:
/// none of them can change what is sampled.
std::uint64_t population_digest(const engine::FleetConfig& cfg,
                                const traffic::ServiceCatalog& catalog);

/// Digest of the timeline slice: events (every field), master seed,
/// horizon, and plan mode. Lazy and materialized plans are byte-identical
/// downstream, but the planned_fleet value itself differs in representation
/// (DayPlanFn vs materialized vectors), so mode is part of the identity.
std::uint64_t timeline_digest(const engine::FleetConfig& cfg,
                              engine::TimelinePlanMode mode);

// ---------------------------------------------------------- registration

/// Knobs for the standard passes.
struct ScenarioPassOptions {
  engine::TimelinePlanMode plan_mode = engine::TimelinePlanMode::lazy;
  /// Holm-correction level for the report and window panel.
  double alpha = 0.05;
  /// Non-empty: also register the three file-sink passes, writing
  /// <sink_dir>/<scenario_tag>_{panel.tsv,cdf.csv,summary.csv}. Sink
  /// passes are never cached (they exist for their side effect).
  std::string sink_dir;
  /// File-name prefix for sink outputs (e.g. the scenario stem).
  std::string scenario_tag = "scenario";
};

/// Register the standard scenario chain on `pipe`. `cfg` is captured by
/// value; `catalog` by reference and must outlive the pipeline. Digests
/// are derived from the captured config, so a pipeline is dirtied by
/// re-registering (Pipeline::replace via replace_scenario_config) rather
/// than by mutating shared state.
void register_scenario_passes(engine::Pipeline& pipe,
                              const engine::FleetConfig& cfg,
                              const traffic::ServiceCatalog& catalog,
                              const ScenarioPassOptions& opts = {});

/// Convenience: a fresh pipeline with the standard passes registered.
engine::Pipeline make_scenario_pipeline(const engine::FleetConfig& cfg,
                                        const traffic::ServiceCatalog& catalog,
                                        const ScenarioPassOptions& opts = {});

/// Resource names safe to release mid-forest (engine::ForestScheduler's
/// Options::transient): intermediates every scenario pipeline consumes
/// exactly once and no caller reads back after the run. "population" and
/// "planned_fleet" are whole sampled fleets — the forest's dominant RSS
/// term — while "fleet_result"/"stats_report"/"window_panel" stay bound
/// (they are what a sweep exists to read).
std::vector<std::string> scenario_transient_resources();

// ------------------------------------------------------------- auditing

/// One standard pass's observed FleetConfig read sets: which fields its
/// digest slice covered (recorded while computing the config digest) and
/// which fields its body actually read (recorded while the pass ran).
struct PassReadAudit {
  std::string pass;
  engine::ConfigReadSet digest_reads;
  engine::ConfigReadSet run_reads;
};

/// Negative-test seam for the digest auditor: when set, replaces the
/// corresponding digest computation so a test can seed a deliberately
/// incomplete slice and prove the audit catches it.
struct ScenarioAuditHooks {
  std::function<std::uint64_t(const engine::FleetConfig&,
                              const traffic::ServiceCatalog&)>
      population_digest;
};

/// Run the six standard scenario passes once, inline and uncached, under
/// config read tracking, and report each pass's digest_reads vs run_reads.
/// File-sink passes are not registered (they read paths, not config).
/// This is the enforcement side of the digest-slice contract documented at
/// the top of this header: tests/digest_audit_test.cpp fails when any pass
/// reads a field its digest slice misses — the PR 8/9 stale-cache class.
std::vector<PassReadAudit> audit_scenario_passes(
    const engine::FleetConfig& cfg, const traffic::ServiceCatalog& catalog,
    const ScenarioPassOptions& opts = {},
    const ScenarioAuditHooks& hooks = {});

/// Fields the pass body read that its digest slice does not cover, minus
/// the one deliberate exclusion: `threads`. Lane count must never change
/// results (the engine's determinism invariant), so it is excluded from
/// every digest on purpose. A non-empty result is a stale-cache bug.
engine::ConfigReadSet uncovered_config_reads(const PassReadAudit& audit);

/// "days, seed, timeline"-style rendering for audit failure messages.
std::string describe_read_set(const engine::ConfigReadSet& reads);

/// Swap a new scenario config into an already-registered pipeline,
/// replacing the sample/timeline/window passes in place (execution
/// counters survive — the sweep driver's per-pass reuse assertions count
/// across variants this way). Passes whose config slice is unchanged keep
/// their digest and therefore stay cache-warm.
void replace_scenario_config(engine::Pipeline& pipe,
                             const engine::FleetConfig& cfg,
                             const traffic::ServiceCatalog& catalog,
                             const ScenarioPassOptions& opts = {});

}  // namespace nbv6::core
