#include "core/fleet_analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "stats/wilcoxon.h"

namespace nbv6::core {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// One shard's value for one metric; NaN when undefined there.
double metric_value(const engine::ResidenceRun& run, FleetMetric m) {
  const auto& mon = run.monitor;
  const auto& ext = mon.totals(flowmon::Scope::external);
  switch (m) {
    case FleetMetric::v6_byte_fraction: {
      double f = ext.v6_byte_fraction();
      return f < 0 ? kNan : f;
    }
    case FleetMetric::v6_flow_fraction: {
      double f = ext.v6_flow_fraction();
      return f < 0 ? kNan : f;
    }
    case FleetMetric::daily_v6_byte_fraction: {
      auto daily = mon.daily_v6_fractions(flowmon::Scope::external, true);
      return daily.empty() ? kNan : stats::mean(daily);
    }
    case FleetMetric::external_gb:
      return static_cast<double>(ext.total_bytes()) / 1e9;
    case FleetMetric::external_flows_k:
      return static_cast<double>(ext.total_flows()) / 1e3;
    case FleetMetric::internal_gb:
      return static_cast<double>(
                 mon.totals(flowmon::Scope::internal).total_bytes()) /
             1e9;
    case FleetMetric::he_failure_rate:
      return run.stats.sessions == 0
                 ? kNan
                 : static_cast<double>(run.stats.he_failures) /
                       static_cast<double>(run.stats.sessions);
    case FleetMetric::sessions_k:
      return static_cast<double>(run.stats.sessions) / 1e3;
    case FleetMetric::outage_suppressed_k:
      return static_cast<double>(run.stats.outage_suppressed) / 1e3;
    case FleetMetric::service_outage_k:
      return static_cast<double>(run.stats.service_outage_failed) / 1e3;
    case FleetMetric::cgn_failure_rate:
      return run.stats.sessions == 0
                 ? kNan
                 : static_cast<double>(run.stats.cgn_failures) /
                       static_cast<double>(run.stats.sessions);
  }
  return kNan;
}

/// `metric_value` restricted to the days inside `window`, recomputed from
/// the monitor's per-day aggregates and the simulator's per-day session
/// stats. Mirrors metric_value's undefined-value conventions; a window
/// that does not intersect the residence's simulated horizon (inverted, or
/// entirely past the last day) is NaN for every metric — there is no day
/// to count, so even the count metrics are undefined rather than zero.
double metric_value_window(const engine::ResidenceRun& run, FleetMetric m,
                           const DayWindow& window) {
  if (!window.valid() || window.first >= run.config.days || window.last < 0)
    return kNan;
  const auto& mon = run.monitor;
  auto windowed = [&window](const std::map<int, flowmon::FamilySplit>& daily) {
    flowmon::FamilySplit sum;
    for (const auto& [day, split] : daily)
      if (window.contains(day)) sum += split;
    return sum;
  };
  // The windowed slice of the per-day session-stat series; the simulator
  // sizes `daily` to the horizon, so the clamp is belt and braces for
  // hand-built results.
  auto windowed_stats = [&window, &run] {
    traffic::DaySessionStats sum;
    const auto& daily = run.stats.daily;
    for (size_t d = 0; d < daily.size(); ++d)
      if (window.contains(static_cast<int>(d))) sum += daily[d];
    return sum;
  };
  switch (m) {
    case FleetMetric::v6_byte_fraction: {
      double f = windowed(mon.daily(flowmon::Scope::external)).v6_byte_fraction();
      return f < 0 ? kNan : f;
    }
    case FleetMetric::v6_flow_fraction: {
      double f = windowed(mon.daily(flowmon::Scope::external)).v6_flow_fraction();
      return f < 0 ? kNan : f;
    }
    case FleetMetric::daily_v6_byte_fraction: {
      double sum = 0;
      size_t n = 0;
      for (const auto& [day, split] : mon.daily(flowmon::Scope::external)) {
        if (!window.contains(day)) continue;
        double f = split.v6_byte_fraction();
        if (f < 0) continue;  // empty day
        sum += f;
        ++n;
      }
      return n == 0 ? kNan : sum / static_cast<double>(n);
    }
    case FleetMetric::external_gb:
      return static_cast<double>(
                 windowed(mon.daily(flowmon::Scope::external)).total_bytes()) /
             1e9;
    case FleetMetric::external_flows_k:
      return static_cast<double>(
                 windowed(mon.daily(flowmon::Scope::external)).total_flows()) /
             1e3;
    case FleetMetric::internal_gb:
      return static_cast<double>(
                 windowed(mon.daily(flowmon::Scope::internal)).total_bytes()) /
             1e9;
    case FleetMetric::he_failure_rate: {
      const auto s = windowed_stats();
      return s.sessions == 0 ? kNan
                             : static_cast<double>(s.he_failures) /
                                   static_cast<double>(s.sessions);
    }
    case FleetMetric::sessions_k:
      return static_cast<double>(windowed_stats().sessions) / 1e3;
    case FleetMetric::outage_suppressed_k:
      return static_cast<double>(windowed_stats().outage_suppressed) / 1e3;
    case FleetMetric::service_outage_k:
      return static_cast<double>(windowed_stats().service_outage_failed) / 1e3;
    case FleetMetric::cgn_failure_rate: {
      const auto s = windowed_stats();
      return s.sessions == 0 ? kNan
                             : static_cast<double>(s.cgn_failures) /
                                   static_cast<double>(s.sessions);
    }
  }
  return kNan;
}

/// Defined (non-NaN) values of `row` at the given residence indices.
std::vector<double> defined_at(std::span<const double> row,
                               std::span<const size_t> indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (size_t i : indices)
    if (!std::isnan(row[i])) out.push_back(row[i]);
  return out;
}

bool is_fraction_metric(FleetMetric m) {
  switch (m) {
    case FleetMetric::v6_byte_fraction:
    case FleetMetric::v6_flow_fraction:
    case FleetMetric::daily_v6_byte_fraction:
    case FleetMetric::he_failure_rate:
    case FleetMetric::cgn_failure_rate:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* to_string(FleetMetric m) {
  switch (m) {
    case FleetMetric::v6_byte_fraction: return "v6_byte_fraction";
    case FleetMetric::v6_flow_fraction: return "v6_flow_fraction";
    case FleetMetric::daily_v6_byte_fraction: return "daily_v6_byte_fraction";
    case FleetMetric::external_gb: return "external_gb";
    case FleetMetric::external_flows_k: return "external_flows_k";
    case FleetMetric::internal_gb: return "internal_gb";
    case FleetMetric::he_failure_rate: return "he_failure_rate";
    case FleetMetric::sessions_k: return "sessions_k";
    case FleetMetric::outage_suppressed_k: return "outage_suppressed_k";
    case FleetMetric::service_outage_k: return "service_outage_k";
    case FleetMetric::cgn_failure_rate: return "cgn_failure_rate";
  }
  return "?";
}

std::vector<FleetMetric> default_fleet_metrics() {
  return {FleetMetric::v6_byte_fraction,
          FleetMetric::v6_flow_fraction,
          FleetMetric::daily_v6_byte_fraction,
          FleetMetric::external_gb,
          FleetMetric::external_flows_k,
          FleetMetric::internal_gb,
          FleetMetric::he_failure_rate};
}

std::span<const double> FleetMetricMatrix::row(FleetMetric m) const {
  for (size_t i = 0; i < metrics.size(); ++i)
    if (metrics[i] == m) return values[i];
  return {};
}

FleetMetricMatrix extract_metrics(const engine::FleetResult& result,
                                  std::span<const FleetMetric> metrics,
                                  engine::ThreadPool* pool) {
  FleetMetricMatrix out;
  out.metrics.assign(metrics.begin(), metrics.end());
  out.values.assign(metrics.size(),
                    std::vector<double>(result.residences.size(), kNan));

  // One task per residence, writing that residence's column of every row:
  // pure per-shard work into preallocated slots, so the fan-out is
  // bit-identical for any lane count.
  auto extract_one = [&](std::size_t i) {
    for (size_t m = 0; m < out.metrics.size(); ++m)
      out.values[m][i] = metric_value(result.residences[i], out.metrics[m]);
  };
  if (pool != nullptr) {
    pool->parallel_for(result.residences.size(), extract_one);
  } else {
    for (std::size_t i = 0; i < result.residences.size(); ++i) extract_one(i);
  }
  return out;
}

FleetMetricMatrix extract_metrics(const engine::FleetResult& result,
                                  std::span<const FleetMetric> metrics,
                                  DayWindow window,
                                  engine::ThreadPool* pool) {
  FleetMetricMatrix out;
  out.metrics.assign(metrics.begin(), metrics.end());
  out.values.assign(metrics.size(),
                    std::vector<double>(result.residences.size(), kNan));
  // Same index-addressed fan-out as the unwindowed extraction: any lane
  // count is bit-identical.
  auto extract_one = [&](std::size_t i) {
    for (size_t m = 0; m < out.metrics.size(); ++m)
      out.values[m][i] =
          metric_value_window(result.residences[i], out.metrics[m], window);
  };
  if (pool != nullptr) {
    pool->parallel_for(result.residences.size(), extract_one);
  } else {
    for (std::size_t i = 0; i < result.residences.size(); ++i) extract_one(i);
  }
  return out;
}

GroupComparison compare_windows(const engine::FleetResult& result,
                                std::span<const FleetMetric> metrics,
                                DayWindow pre, DayWindow post,
                                FleetGroup group, engine::ThreadPool* pool,
                                double alpha) {
  if (result.traits.size() != result.residences.size())
    throw std::invalid_argument(
        "compare_windows: result carries no index-aligned traits "
        "(run the engine via a FleetConfig or SampledFleet)");
  GroupComparison out{group, group, {}};
  // Degenerate windows are a defined no-result, not a silent wrong answer:
  // an inverted window contains no day, so there is nothing to test. (A
  // window past every residence's horizon falls out the same way — every
  // windowed metric extracts as NaN, leaving no testable pair.)
  if (!pre.valid() || !post.valid()) return out;
  auto members = group_members(result.traits, group);
  auto m_pre = extract_metrics(result, metrics, pre, pool);
  auto m_post = extract_metrics(result, metrics, post, pool);

  for (size_t m = 0; m < metrics.size(); ++m) {
    // Residences of the group where the metric is defined in both windows.
    std::vector<double> xs, ys;
    for (size_t i : members) {
      double a = m_pre.values[m][i];
      double b = m_post.values[m][i];
      if (std::isnan(a) || std::isnan(b)) continue;
      xs.push_back(a);
      ys.push_back(b);
    }
    auto test = stats::wilcoxon_signed_rank(xs, ys);
    if (!test) continue;  // no residence defined in both windows
    stats::PanelRow row;
    row.metric = to_string(metrics[m]);
    row.paired = true;
    row.n_a = row.n_b = test->n;
    row.median_a = stats::median(xs);
    row.median_b = stats::median(ys);
    row.z = test->z;
    row.effect_r = test->effect_size_r;
    row.p_raw = test->p_value;
    out.rows.push_back(std::move(row));
  }
  stats::holm_adjust(out.rows, alpha);
  return out;
}

const char* to_string(FleetGroup g) {
  switch (g) {
    case FleetGroup::all: return "all";
    case FleetGroup::active: return "active";
    case FleetGroup::dual_stack: return "dual_stack";
    case FleetGroup::v4_only: return "v4_only";
    case FleetGroup::healthy_v6: return "healthy_v6";
    case FleetGroup::broken_cpe: return "broken_cpe";
    case FleetGroup::heavy_streamer: return "heavy_streamer";
    case FleetGroup::baseline: return "baseline";
    case FleetGroup::opt_out: return "opt_out";
    case FleetGroup::fully_visible: return "fully_visible";
  }
  return "?";
}

bool in_group(const engine::ResidenceTraits& t, FleetGroup g) {
  switch (g) {
    case FleetGroup::all: return true;
    case FleetGroup::active: return !t.vacant;
    case FleetGroup::dual_stack: return t.dual_stack_isp;
    case FleetGroup::v4_only: return !t.dual_stack_isp;
    case FleetGroup::healthy_v6: return t.dual_stack_isp && !t.broken_v6;
    case FleetGroup::broken_cpe: return t.dual_stack_isp && t.broken_v6;
    // Streamer and baseline both exclude vacant homes so the default
    // streamer-vs-baseline panel compares like with like.
    case FleetGroup::heavy_streamer: return t.heavy_streamer && !t.vacant;
    case FleetGroup::baseline: return !t.heavy_streamer && !t.vacant;
    case FleetGroup::opt_out: return t.opt_out;
    case FleetGroup::fully_visible: return !t.opt_out;
  }
  return false;
}

std::vector<size_t> group_members(
    std::span<const engine::ResidenceTraits> traits, FleetGroup g) {
  std::vector<size_t> out;
  for (size_t i = 0; i < traits.size(); ++i)
    if (in_group(traits[i], g)) out.push_back(i);
  return out;
}

std::vector<std::pair<FleetGroup, FleetGroup>> default_group_pairs() {
  return {
      {FleetGroup::healthy_v6, FleetGroup::broken_cpe},
      {FleetGroup::dual_stack, FleetGroup::v4_only},
      {FleetGroup::heavy_streamer, FleetGroup::baseline},
      {FleetGroup::fully_visible, FleetGroup::opt_out},
  };
}

GroupComparison compare_groups(const FleetMetricMatrix& matrix,
                               std::span<const engine::ResidenceTraits> traits,
                               FleetGroup a, FleetGroup b, double alpha) {
  GroupComparison out{a, b, {}};
  auto idx_a = group_members(traits, a);
  auto idx_b = group_members(traits, b);

  for (size_t m = 0; m < matrix.metrics.size(); ++m) {
    auto xs = defined_at(matrix.values[m], idx_a);
    auto ys = defined_at(matrix.values[m], idx_b);
    auto test = stats::wilcoxon_rank_sum(xs, ys);
    if (!test) continue;  // a group has no defined values for this metric
    stats::PanelRow row;
    row.metric = to_string(matrix.metrics[m]);
    row.n_a = test->n1;
    row.n_b = test->n2;
    row.median_a = stats::median(xs);
    row.median_b = stats::median(ys);
    row.z = test->z;
    row.effect_r = test->effect_size_r;
    row.p_raw = test->p_value;
    out.rows.push_back(std::move(row));
  }
  stats::holm_adjust(out.rows, alpha);
  return out;
}

GroupComparison compare_metrics_paired(
    const FleetMetricMatrix& matrix,
    std::span<const engine::ResidenceTraits> traits, FleetGroup group,
    std::span<const std::pair<FleetMetric, FleetMetric>> metric_pairs,
    double alpha) {
  GroupComparison out{group, group, {}};
  auto members = group_members(traits, group);

  for (const auto& [ma, mb] : metric_pairs) {
    auto row_a = matrix.row(ma);
    auto row_b = matrix.row(mb);
    if (row_a.empty() || row_b.empty()) continue;
    // Pairs where both metrics are defined at the same residence.
    std::vector<double> xs, ys;
    for (size_t i : members) {
      if (std::isnan(row_a[i]) || std::isnan(row_b[i])) continue;
      xs.push_back(row_a[i]);
      ys.push_back(row_b[i]);
    }
    auto test = stats::wilcoxon_signed_rank(xs, ys);
    if (!test) continue;
    stats::PanelRow row;
    row.metric = std::string(to_string(ma)) + " vs " + to_string(mb);
    row.paired = true;
    row.n_a = row.n_b = test->n;
    row.median_a = stats::median(xs);
    row.median_b = stats::median(ys);
    row.z = test->z;
    row.effect_r = test->effect_size_r;
    row.p_raw = test->p_value;
    out.rows.push_back(std::move(row));
  }
  stats::holm_adjust(out.rows, alpha);
  return out;
}

std::vector<PopulationDistribution> population_distributions(
    const FleetMetricMatrix& matrix, int bins) {
  std::vector<PopulationDistribution> out;
  out.reserve(matrix.metrics.size());
  for (size_t m = 0; m < matrix.metrics.size(); ++m) {
    std::vector<double> defined;
    defined.reserve(matrix.values[m].size());
    for (double v : matrix.values[m])
      if (!std::isnan(v)) defined.push_back(v);

    // Fractions live on [0, 1]; unbounded metrics bin over the observed
    // range (an upstream producer can instead stream into a pre-sized
    // StreamingCdf — the accumulator itself never needs the vector).
    double hi = 1.0;
    if (!is_fraction_metric(matrix.metrics[m])) {
      hi = defined.empty() ? 1.0 : *std::max_element(defined.begin(),
                                                     defined.end());
      if (hi <= 0.0) hi = 1.0;
    }
    PopulationDistribution d{matrix.metrics[m], defined.size(),
                             stats::StreamingCdf(0.0, hi, bins),
                             {}, {}};
    d.cdf.add(defined);
    d.box = stats::boxplot(defined);
    d.summary = stats::summarize(defined);
    out.push_back(std::move(d));
  }
  return out;
}

FleetStatsReport fleet_stats_report(const engine::FleetResult& result,
                                    engine::ThreadPool* pool, double alpha) {
  // Traits index into the metric rows; a hand-built result with mismatched
  // sizes must fail here rather than read out of bounds in a comparison.
  if (result.traits.size() != result.residences.size())
    throw std::invalid_argument(
        "fleet_stats_report: result carries no index-aligned traits "
        "(run the engine via a FleetConfig or SampledFleet)");
  FleetStatsReport report;
  auto metrics = default_fleet_metrics();
  report.matrix = extract_metrics(result, metrics, pool);
  for (auto [a, b] : default_group_pairs())
    report.comparisons.push_back(
        compare_groups(report.matrix, result.traits, a, b, alpha));
  const std::vector<std::pair<FleetMetric, FleetMetric>> paired_pairs = {
      {FleetMetric::v6_flow_fraction, FleetMetric::v6_byte_fraction},
      {FleetMetric::v6_byte_fraction, FleetMetric::daily_v6_byte_fraction},
  };
  report.paired = compare_metrics_paired(report.matrix, result.traits,
                                         FleetGroup::active, paired_pairs,
                                         alpha);
  report.distributions = population_distributions(report.matrix);
  return report;
}

void write_panel_tsv(std::FILE* out, const GroupComparison& cmp,
                     bool header) {
  if (header)
    std::fprintf(out,
                 "group_a\tgroup_b\tmetric\tpaired\tn_a\tn_b\tmedian_a\t"
                 "median_b\tz\teffect_r\tp_raw\tp_holm\tsignificant\n");
  for (const auto& r : cmp.rows) {
    std::fprintf(out,
                 "%s\t%s\t%s\t%d\t%zu\t%zu\t%.6g\t%.6g\t%.4f\t%.4f\t%.6g\t"
                 "%.6g\t%d\n",
                 to_string(cmp.group_a), to_string(cmp.group_b),
                 r.metric.c_str(), r.paired ? 1 : 0, r.n_a, r.n_b, r.median_a,
                 r.median_b, r.z, r.effect_r, r.p_raw, r.p_holm,
                 r.significant ? 1 : 0);
  }
}

void write_cdf_csv(std::FILE* out,
                   std::span<const PopulationDistribution> dists,
                   int points) {
  std::fprintf(out, "metric,q,value\n");
  for (const auto& d : dists) {
    for (int i = 0; i <= points; ++i) {
      double q = static_cast<double>(i) / points;
      std::fprintf(out, "%s,%.4f,%.6g\n", to_string(d.metric), q,
                   d.cdf.quantile(q));
    }
  }
}

void write_summary_csv(std::FILE* out,
                       std::span<const PopulationDistribution> dists) {
  std::fprintf(out, "metric,count,mean,sd,min,p25,median,p75,max\n");
  for (const auto& d : dists) {
    const auto& s = d.summary;
    std::fprintf(out, "%s,%zu,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
                 to_string(d.metric), s.count, s.mean, s.stddev, s.min, s.p25,
                 s.median, s.p75, s.max);
  }
}

}  // namespace nbv6::core
