#include "core/adoption.h"

namespace nbv6::core {

std::string_view to_string(AdoptionLevel level) {
  switch (level) {
    case AdoptionLevel::none:
      return "IPv4-only";
    case AdoptionLevel::partial:
      return "IPv6-partial";
    case AdoptionLevel::full:
      return "IPv6-full";
  }
  return "?";
}

GradedAdoption GradedAdoption::from_fraction(double f) {
  GradedAdoption g;
  g.fraction = f;
  if (f <= 0.0)
    g.level = AdoptionLevel::none;
  else if (f >= 1.0)
    g.level = AdoptionLevel::full;
  else
    g.level = AdoptionLevel::partial;
  return g;
}

}  // namespace nbv6::core
