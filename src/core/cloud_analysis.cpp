#include "core/cloud_analysis.h"

#include "dns/resolver.h"

namespace nbv6::core {

std::vector<cloud::DomainRecord> build_domain_records(
    const web::Universe& universe, const ServerSurvey& survey) {
  auto names = observed_fqdn_names(universe, survey);
  auto zone = universe.build_zone(survey.epoch);
  dns::Resolver resolver(zone);
  const auto& psl = universe.psl();
  return cloud::collect_domain_records(
      resolver, names, [&psl](std::string_view host) {
        return psl.registrable_domain(host).value_or(std::string(host));
      });
}

std::map<std::string, std::string> paper_org_merge_map() {
  return {
      {"Cloudflare, Inc.", "Cloudflare (All)"},
      {"Cloudflare London, LLC", "Cloudflare (All)"},
      {"Akamai International B.V.", "Akamai (All)"},
      {"Akamai Technologies, Inc.", "Akamai (All)"},
  };
}

CloudReport analyze_cloud(const web::Universe& universe,
                          const ServerSurvey& survey) {
  auto records = build_domain_records(universe, survey);
  CloudReport report;
  report.providers =
      cloud::provider_breakdown(records, universe.providers());
  report.services = cloud::service_breakdown(records, universe.providers());
  return report;
}

}  // namespace nbv6::core
