#include "core/scenario_pipeline.h"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "engine/run_spec.h"

namespace nbv6::core {

namespace {

using engine::DigestBuilder;
using engine::FleetConfig;
using engine::Pass;
using engine::PassContext;
using engine::Pipeline;
using engine::PipelineValue;
using engine::SampledFleet;

// The pre/post windows every scenario panel compares: the horizon's two
// halves (the same split tests/testutil.cpp uses, so the pipelined panel
// is byte-identical to the standalone one).
DayWindow pre_window(const FleetConfig& cfg) { return {0, cfg.days / 2 - 1}; }
DayWindow post_window(const FleetConfig& cfg) {
  return {cfg.days / 2, cfg.days - 1};
}

std::uint64_t metrics_digest(const std::vector<FleetMetric>& metrics) {
  DigestBuilder db;
  db.u64(metrics.size());
  for (FleetMetric m : metrics) db.u64(static_cast<std::uint64_t>(m));
  return db.value();
}

std::uint64_t panel_digest(const FleetConfig& cfg, double alpha) {
  const DayWindow pre = pre_window(cfg);
  const DayWindow post = post_window(cfg);
  return DigestBuilder()
      .i64(pre.first)
      .i64(pre.last)
      .i64(post.first)
      .i64(post.last)
      .u64(static_cast<std::uint64_t>(FleetGroup::all))
      .f64(alpha)
      .value();
}

Pass sample_pass(const FleetConfig& cfg,
                 const traffic::ServiceCatalog& catalog) {
  Pass p;
  p.name = "sample";
  p.outputs = {"population"};
  p.config_digest = population_digest(cfg, catalog);
  p.run = [cfg, &catalog](PassContext& ctx) {
    ctx.out("population", engine::sample_stage(cfg, catalog));
  };
  return p;
}

Pass timeline_pass(const FleetConfig& cfg, engine::TimelinePlanMode mode) {
  Pass p;
  p.name = "timeline";
  p.inputs = {"population"};
  p.outputs = {"planned_fleet"};
  p.config_digest = timeline_digest(cfg, mode);
  p.run = [cfg, mode](PassContext& ctx) {
    // Inputs are immutable; plan onto a copy. An empty timeline still
    // re-binds the copy so downstream passes have one resource to consume.
    SampledFleet planned = ctx.in<SampledFleet>("population");
    engine::apply_timeline(planned, cfg.timeline, cfg.seed, cfg.days, mode);
    ctx.out("planned_fleet", std::move(planned));
  };
  return p;
}

Pass simulate_pass(const traffic::ServiceCatalog& catalog) {
  Pass p;
  p.name = "simulate";
  p.inputs = {"planned_fleet"};
  p.outputs = {"fleet_result"};
  p.config_digest = catalog.content_digest();
  p.run = [&catalog](PassContext& ctx) {
    ctx.out("fleet_result",
            engine::simulate_fleet(catalog,
                                   ctx.in<SampledFleet>("planned_fleet"),
                                   ctx.pool()));
  };
  return p;
}

Pass metrics_pass() {
  Pass p;
  p.name = "metrics";
  p.inputs = {"fleet_result"};
  p.outputs = {"metric_matrix"};
  p.config_digest = metrics_digest(default_fleet_metrics());
  p.run = [](PassContext& ctx) {
    const auto metrics = default_fleet_metrics();
    ctx.out("metric_matrix",
            extract_metrics(ctx.in<engine::FleetResult>("fleet_result"),
                            metrics, ctx.pool()));
  };
  return p;
}

Pass report_pass(double alpha) {
  Pass p;
  p.name = "report";
  p.inputs = {"fleet_result"};
  p.outputs = {"stats_report"};
  p.config_digest = DigestBuilder().f64(alpha).value();
  p.run = [alpha](PassContext& ctx) {
    ctx.out("stats_report",
            fleet_stats_report(ctx.in<engine::FleetResult>("fleet_result"),
                               ctx.pool(), alpha));
  };
  return p;
}

Pass window_panel_pass(const FleetConfig& cfg, double alpha) {
  Pass p;
  p.name = "window_panel";
  p.inputs = {"fleet_result"};
  p.outputs = {"window_panel"};
  p.config_digest = panel_digest(cfg, alpha);
  p.run = [cfg, alpha](PassContext& ctx) {
    const auto metrics = default_fleet_metrics();
    ctx.out("window_panel",
            compare_windows(ctx.in<engine::FleetResult>("fleet_result"),
                            metrics, pre_window(cfg), post_window(cfg),
                            FleetGroup::all, ctx.pool(), alpha));
  };
  return p;
}

// One file-sink pass: renders into <dir>/<tag>_<suffix> and outputs the
// written path. Uncached — a sink exists for its side effect, so it
// re-executes every run (rewriting the file from the cached upstream
// values costs nothing compared to simulation).
Pass file_sink_pass(std::string name, std::string input, std::string output,
                    std::string path,
                    std::function<void(std::FILE*, const PipelineValue&)>
                        render) {
  Pass p;
  p.name = std::move(name);
  p.inputs = {input};
  p.outputs = {output};
  p.cache_outputs = false;
  p.config_digest = DigestBuilder().str(path).value();
  p.run = [path = std::move(path), input = std::move(input),
           output = std::move(output),
           render = std::move(render)](PassContext& ctx) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
      throw std::runtime_error("cannot write '" + path + "'");
    render(f, ctx.input_value(input));
    std::fclose(f);
    ctx.out(output, path);
  };
  return p;
}

}  // namespace

std::uint64_t population_digest(const FleetConfig& cfg,
                                const traffic::ServiceCatalog& catalog) {
  return DigestBuilder()
      .str("population")
      .i64(cfg.residences)
      .i64(cfg.days)
      .u64(cfg.seed)
      .f64(cfg.dual_stack_isp_frac)
      .f64(cfg.broken_v6_frac)
      .f64(cfg.heavy_streamer_frac)
      .f64(cfg.background_only_frac)
      .f64(cfg.opt_out_frac)
      .f64(cfg.absence_prob)
      .f64(cfg.activity_scale_min)
      .f64(cfg.activity_scale_max)
      .u64(static_cast<std::uint64_t>(cfg.arrival->mode))
      .i64(cfg.arrival->ticks_per_hour)
      .u64(catalog.content_digest())
      .value();
}

std::uint64_t timeline_digest(const FleetConfig& cfg,
                              engine::TimelinePlanMode mode) {
  DigestBuilder db;
  db.str("timeline").u64(cfg.seed).i64(cfg.days).u64(
      static_cast<std::uint64_t>(mode));
  db.u64(cfg.timeline->events.size());
  for (const auto& ev : cfg.timeline->events) {
    db.u64(static_cast<std::uint64_t>(ev.kind))
        .i64(ev.start_day)
        .i64(ev.end_day)
        .f64(ev.fraction)
        .f64(ev.amplitude)
        .i64(ev.period_days)
        .i64(ev.duration_days)
        .i64(ev.service)
        .i64(ev.port_budget)
        .f64(ev.turnover_rate)
        .f64(ev.mult)
        .i64(ev.hour)
        .i64(ev.hour_span);
  }
  return db.value();
}

void register_scenario_passes(Pipeline& pipe, const FleetConfig& cfg,
                              const traffic::ServiceCatalog& catalog,
                              const ScenarioPassOptions& opts) {
  pipe.add(sample_pass(cfg, catalog))
      .add(timeline_pass(cfg, opts.plan_mode))
      .add(simulate_pass(catalog))
      .add(metrics_pass())
      .add(report_pass(opts.alpha))
      .add(window_panel_pass(cfg, opts.alpha));
  if (opts.sink_dir.empty()) return;

  const std::string base = opts.sink_dir + "/" + opts.scenario_tag;
  pipe.add(file_sink_pass(
      "panel_tsv", "window_panel", "panel_tsv_path", base + "_panel.tsv",
      [](std::FILE* f, const PipelineValue& v) {
        write_panel_tsv(f, v.get<GroupComparison>());
      }));
  pipe.add(file_sink_pass(
      "cdf_csv", "stats_report", "cdf_csv_path", base + "_cdf.csv",
      [](std::FILE* f, const PipelineValue& v) {
        write_cdf_csv(f, v.get<FleetStatsReport>().distributions);
      }));
  pipe.add(file_sink_pass(
      "summary_csv", "stats_report", "summary_csv_path", base + "_summary.csv",
      [](std::FILE* f, const PipelineValue& v) {
        write_summary_csv(f, v.get<FleetStatsReport>().distributions);
      }));
}

Pipeline make_scenario_pipeline(const FleetConfig& cfg,
                                const traffic::ServiceCatalog& catalog,
                                const ScenarioPassOptions& opts) {
  Pipeline pipe;
  register_scenario_passes(pipe, cfg, catalog, opts);
  return pipe;
}

std::vector<std::string> scenario_transient_resources() {
  return {"population", "planned_fleet"};
}

std::vector<PassReadAudit> audit_scenario_passes(
    const FleetConfig& cfg, const traffic::ServiceCatalog& catalog,
    const ScenarioPassOptions& opts, const ScenarioAuditHooks& hooks) {
  // Build the standard passes with no tracker active: the factories copy
  // cfg into their run lambdas, and a copy must not count as a read.
  std::vector<Pass> passes;
  passes.push_back(sample_pass(cfg, catalog));
  passes.push_back(timeline_pass(cfg, opts.plan_mode));
  passes.push_back(simulate_pass(catalog));
  passes.push_back(metrics_pass());
  passes.push_back(report_pass(opts.alpha));
  passes.push_back(window_panel_pass(cfg, opts.alpha));

  auto audits = std::make_shared<std::vector<PassReadAudit>>();
  audits->resize(passes.size());

  // Per-pass digest read sets: re-run each pass's digest computation under
  // its own tracker scope. The recomputed value also replaces the pass's
  // config_digest, so a hooked (deliberately broken) slice is the one the
  // audit actually measures.
  for (std::size_t i = 0; i < passes.size(); ++i) {
    Pass& p = passes[i];
    engine::ConfigReadTracker::Scope scope;
    if (p.name == "sample") {
      p.config_digest = hooks.population_digest
                            ? hooks.population_digest(cfg, catalog)
                            : population_digest(cfg, catalog);
    } else if (p.name == "timeline") {
      p.config_digest = timeline_digest(cfg, opts.plan_mode);
    } else if (p.name == "simulate") {
      p.config_digest = catalog.content_digest();
    } else if (p.name == "metrics") {
      p.config_digest = metrics_digest(default_fleet_metrics());
    } else if (p.name == "report") {
      p.config_digest = DigestBuilder().f64(opts.alpha).value();
    } else if (p.name == "window_panel") {
      p.config_digest = panel_digest(cfg, opts.alpha);
    }
    (*audits)[i].pass = p.name;
    (*audits)[i].digest_reads = scope.reads();
  }

  // Per-pass run read sets: wrap each body in a tracker scope. The
  // pipeline runs uncached (every pass executes) and poolless (every read
  // lands on this thread, where the scope is active).
  Pipeline pipe;
  for (std::size_t i = 0; i < passes.size(); ++i) {
    Pass p = std::move(passes[i]);
    auto inner = std::move(p.run);
    p.run = [inner = std::move(inner), audits, i](PassContext& ctx) {
      engine::ConfigReadTracker::Scope scope;
      inner(ctx);
      (*audits)[i].run_reads = scope.reads();
    };
    pipe.add(std::move(p));
  }
  pipe.run(/*cache=*/nullptr, /*pool=*/nullptr);
  return *audits;
}

engine::ConfigReadSet uncovered_config_reads(const PassReadAudit& audit) {
  engine::ConfigReadSet uncovered = audit.run_reads & ~audit.digest_reads;
  // The one field read at run time that is digest-excluded by design:
  // thread count can never change what a pass computes (lane invariance is
  // golden-pinned), so it must not change pass identity either.
  uncovered.reset(static_cast<std::size_t>(engine::ConfigField::threads));
  return uncovered;
}

std::string describe_read_set(const engine::ConfigReadSet& reads) {
  std::string out;
  for (std::size_t i = 0; i < engine::kConfigFieldCount; ++i) {
    if (!reads.test(i)) continue;
    if (!out.empty()) out += ", ";
    out += to_string(static_cast<engine::ConfigField>(i));
  }
  return out;
}

void replace_scenario_config(Pipeline& pipe, const FleetConfig& cfg,
                             const traffic::ServiceCatalog& catalog,
                             const ScenarioPassOptions& opts) {
  pipe.replace(sample_pass(cfg, catalog));
  pipe.replace(timeline_pass(cfg, opts.plan_mode));
  pipe.replace(window_panel_pass(cfg, opts.alpha));
}

}  // namespace nbv6::core
