// IPv4 and IPv6 address value types.
//
// These are the foundation of the whole library: flow records, DNS answers,
// BGP prefixes, and anonymization all traffic in these types. Both types are
// small trivially-copyable values with total ordering so they can key maps.
//
// Formatting follows RFC 5952 for IPv6 (lowercase hex, longest zero run
// compressed, no leading zeros) and dotted-quad for IPv4. Parsing accepts
// every textual form RFC 4291 defines, including "::" compression and
// embedded dotted-quad tails ("::ffff:192.0.2.1").
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace nbv6::net {

/// Address family discriminator used across the library.
enum class Family : std::uint8_t { v4 = 4, v6 = 6 };

/// Human-readable name ("IPv4" / "IPv6").
std::string_view to_string(Family f);

/// An IPv4 address stored in host byte order.
class IPv4Addr {
 public:
  constexpr IPv4Addr() = default;
  constexpr explicit IPv4Addr(std::uint32_t host_order) : value_(host_order) {}
  constexpr IPv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parse dotted-quad text. Returns nullopt on any malformed input
  /// (empty, out-of-range octet, stray characters, too few/many octets).
  static std::optional<IPv4Addr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// Octet i, with octet 0 the most significant ("a" in a.b.c.d).
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Bit i counted from the most significant bit (bit 0 = top bit).
  [[nodiscard]] constexpr bool bit(int i) const {
    return ((value_ >> (31 - i)) & 1u) != 0;
  }

  friend constexpr auto operator<=>(IPv4Addr, IPv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv6 address stored as 16 network-order bytes.
class IPv6Addr {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr IPv6Addr() = default;
  constexpr explicit IPv6Addr(const Bytes& b) : bytes_(b) {}

  /// Construct from eight 16-bit groups (the textual grouping).
  static IPv6Addr from_groups(const std::array<std::uint16_t, 8>& groups);

  /// Construct from high and low 64-bit halves (host order). Convenient for
  /// synthetic address construction: high = routing prefix + subnet,
  /// low = interface identifier.
  static IPv6Addr from_halves(std::uint64_t hi, std::uint64_t lo);

  /// Parse RFC 4291 text: full form, "::" compression, embedded IPv4 tail.
  static std::optional<IPv6Addr> parse(std::string_view text);

  [[nodiscard]] const Bytes& bytes() const { return bytes_; }
  [[nodiscard]] std::uint16_t group(int i) const {
    return static_cast<std::uint16_t>((bytes_[2 * i] << 8) | bytes_[2 * i + 1]);
  }
  [[nodiscard]] std::uint64_t high64() const;
  [[nodiscard]] std::uint64_t low64() const;

  /// RFC 5952 canonical text.
  [[nodiscard]] std::string to_string() const;

  /// Bit i counted from the most significant bit of byte 0.
  [[nodiscard]] bool bit(int i) const {
    return ((bytes_[i / 8] >> (7 - i % 8)) & 1) != 0;
  }

  friend auto operator<=>(const IPv6Addr&, const IPv6Addr&) = default;

 private:
  Bytes bytes_{};
};

/// A tagged union of the two address families.
///
/// Most of the measurement pipeline is family-agnostic (a flow endpoint, a
/// DNS answer), so this small discriminated value avoids templating the
/// world on the family.
class IpAddr {
 public:
  constexpr IpAddr() : family_(Family::v4), v4_() {}
  constexpr IpAddr(IPv4Addr a) : family_(Family::v4), v4_(a) {}  // NOLINT: implicit by design
  constexpr IpAddr(IPv6Addr a) : family_(Family::v6), v6_(a) {}  // NOLINT: implicit by design

  /// Parse either family; tries IPv4 first, then IPv6.
  static std::optional<IpAddr> parse(std::string_view text);

  [[nodiscard]] constexpr Family family() const { return family_; }
  [[nodiscard]] constexpr bool is_v4() const { return family_ == Family::v4; }
  [[nodiscard]] constexpr bool is_v6() const { return family_ == Family::v6; }

  /// Preconditions: matching family. Checked in debug builds.
  [[nodiscard]] IPv4Addr v4() const;
  [[nodiscard]] IPv6Addr v6() const;

  [[nodiscard]] std::string to_string() const;

  // Inline: address equality sits inside every conntrack probe's key
  // comparison, the hottest compare in the flow-ingest path.
  friend bool operator==(const IpAddr& a, const IpAddr& b) {
    if (a.family_ != b.family_) return false;
    return a.family_ == Family::v4 ? a.v4_ == b.v4_ : a.v6_ == b.v6_;
  }
  friend std::strong_ordering operator<=>(const IpAddr& a, const IpAddr& b);

 private:
  Family family_;
  // Not a std::variant: both members are trivial and tiny, and keeping the
  // layout flat keeps IpAddr trivially copyable.
  IPv4Addr v4_{};
  IPv6Addr v6_{};
};

}  // namespace nbv6::net
