#include "net/cryptopan.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <numeric>
#include <tuple>
#include <vector>

using std::size_t;

namespace nbv6::net {
namespace {

// Cache geometry: direct-mapped, power-of-two sized. 64Ki v4 entries
// (1 MiB) and 32Ki v6 entries (0.75 MiB) bound the total footprint while
// comfortably holding the working set of a day's flow batch.
constexpr size_t kCache4Bits = 16;
constexpr size_t kCache6Bits = 15;
constexpr std::uint64_t kEmptyKey4 = ~std::uint64_t{0};

// splitmix64 finalizer — a cheap, well-mixed hash for table indexing.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Top-i-bits mask of a 32-bit word (i in [0, 32]).
constexpr std::uint32_t top_mask32(int i) {
  return i == 0 ? 0u : ~std::uint32_t{0} << (32 - i);
}
constexpr std::uint64_t top_mask64(int i) {
  return i == 0 ? 0ull : ~std::uint64_t{0} << (64 - i);
}

}  // namespace

CryptoPan::CryptoPan(const Secret& secret, bool enable_prefix_cache)
    : cipher_([&secret] {
        Aes128::Key key{};
        for (int i = 0; i < 16; ++i)
          key[static_cast<size_t>(i)] = secret[static_cast<size_t>(i)];
        return Aes128(key);
      }()),
      cache_enabled_(enable_prefix_cache) {
  // Per the reference implementation, the second half of the secret is
  // itself encrypted once to form the canonical padding block.
  Aes128::Block raw_pad{};
  for (int i = 0; i < 16; ++i)
    raw_pad[static_cast<size_t>(i)] = secret[static_cast<size_t>(16 + i)];
  const Aes128::Block pad = cipher_.encrypt(raw_pad);
  for (int w = 0; w < 4; ++w) {
    pad_words_[static_cast<size_t>(w)] =
        (std::uint32_t{pad[static_cast<size_t>(4 * w)]} << 24) |
        (std::uint32_t{pad[static_cast<size_t>(4 * w + 1)]} << 16) |
        (std::uint32_t{pad[static_cast<size_t>(4 * w + 2)]} << 8) |
        std::uint32_t{pad[static_cast<size_t>(4 * w + 3)]};
  }
  if (cache_enabled_) {
    cache4_.assign(size_t{1} << kCache4Bits, CacheEntry4{kEmptyKey4, 0});
    cache6_.assign(size_t{1} << kCache6Bits, CacheEntry6{0, 0, 0xff, 0});
  }
}

std::uint8_t CryptoPan::chunk_flips(std::uint32_t addr, int chunk) const {
  // The flips of positions [8c, 8c+8) depend on address prefixes of length
  // 8c .. 8c+7, all contained in the first 8c+8 bits — the cache key.
  const int end = 8 * chunk + 8;
  const std::uint32_t prefix = addr >> (32 - end);
  const std::uint64_t key =
      (std::uint64_t{prefix} << 2) | static_cast<std::uint64_t>(chunk);

  CacheEntry4* slot = nullptr;
  if (cache_enabled_) {
    slot = &cache4_[mix64(key) & ((size_t{1} << kCache4Bits) - 1)];
    if (slot->key == key) return slot->flips;
  }

  // PRF input for bit i: original bits [0, i) then padding — only word 0
  // ever differs from the padding block for a v4 address, so each step is
  // one masked merge instead of an O(i) block rebuild.
  std::uint8_t flips = 0;
  for (int i = 8 * chunk; i < end; ++i) {
    const std::uint32_t w0 =
        (addr & top_mask32(i)) | (pad_words_[0] & ~top_mask32(i));
    const auto out = cipher_.encrypt_words(
        {w0, pad_words_[1], pad_words_[2], pad_words_[3]});
    ++prf_calls_;
    flips = static_cast<std::uint8_t>((flips << 1) | (out[0] >> 31));
  }
  if (slot != nullptr) *slot = CacheEntry4{key, flips};
  return flips;
}

std::uint8_t CryptoPan::chunk_flips(std::uint64_t hi, std::uint64_t lo,
                                    int chunk) const {
  const int end = 8 * chunk + 8;
  // Mask the address down to the chunk-end prefix for an exact cache key.
  const std::uint64_t mhi = end >= 64 ? hi : hi & top_mask64(end);
  const std::uint64_t mlo = end <= 64 ? 0 : lo & top_mask64(end - 64);

  CacheEntry6* slot = nullptr;
  if (cache_enabled_) {
    const std::uint64_t h =
        mix64(mhi ^ mix64(mlo ^ static_cast<std::uint64_t>(chunk)));
    slot = &cache6_[h & ((size_t{1} << kCache6Bits) - 1)];
    if (slot->chunk == chunk && slot->hi == mhi && slot->lo == mlo)
      return slot->flips;
  }

  // Words 0..3 hold the address big-endian; word `wi` is the one the
  // current chunk lives in (chunks are byte-aligned, so they never span
  // words). Words above are pure address bits, words below pure padding.
  const std::uint32_t aw[4] = {
      static_cast<std::uint32_t>(hi >> 32), static_cast<std::uint32_t>(hi),
      static_cast<std::uint32_t>(lo >> 32), static_cast<std::uint32_t>(lo)};
  const int wi = chunk / 4;
  std::array<std::uint32_t, 4> block;
  for (int w = 0; w < 4; ++w)
    block[static_cast<size_t>(w)] =
        w < wi ? aw[w] : pad_words_[static_cast<size_t>(w)];

  std::uint8_t flips = 0;
  for (int i = 8 * chunk; i < end; ++i) {
    const int b = i % 32;
    block[static_cast<size_t>(wi)] =
        (aw[wi] & top_mask32(b)) |
        (pad_words_[static_cast<size_t>(wi)] & ~top_mask32(b));
    const auto out = cipher_.encrypt_words(block);
    ++prf_calls_;
    flips = static_cast<std::uint8_t>((flips << 1) | (out[0] >> 31));
  }
  if (slot != nullptr)
    *slot = CacheEntry6{mhi, mlo, static_cast<std::uint8_t>(chunk), flips};
  return flips;
}

IPv4Addr CryptoPan::anonymize(IPv4Addr addr, int bits) const {
  assert(bits >= 0 && bits <= 32);
  if (bits == 0) return addr;
  const std::uint32_t in = addr.value();
  const int start = 32 - bits;

  // Gather flip bits chunk by chunk, then keep only the low `bits`.
  std::uint32_t flips = 0;
  for (int c = start / 8; c < 4; ++c)
    flips |= std::uint32_t{chunk_flips(in, c)} << (24 - 8 * c);
  flips &= bits == 32 ? ~std::uint32_t{0} : (std::uint32_t{1} << bits) - 1;
  return IPv4Addr(in ^ flips);
}

IPv6Addr CryptoPan::anonymize(const IPv6Addr& addr, int bits) const {
  assert(bits >= 0 && bits <= 128);
  if (bits == 0) return addr;
  const std::uint64_t hi = addr.high64();
  const std::uint64_t lo = addr.low64();
  const int start = 128 - bits;

  std::uint64_t flips_hi = 0, flips_lo = 0;
  for (int c = start / 8; c < 16; ++c) {
    const std::uint64_t f = chunk_flips(hi, lo, c);
    if (c < 8)
      flips_hi |= f << (56 - 8 * c);
    else
      flips_lo |= f << (120 - 8 * c);
  }
  // Mask flips outside the anonymized range.
  if (bits <= 64) {
    flips_hi = 0;
    flips_lo &= bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  } else if (bits < 128) {
    flips_hi &= (std::uint64_t{1} << (bits - 64)) - 1;
  }
  return IPv6Addr::from_halves(hi ^ flips_hi, lo ^ flips_lo);
}

IpAddr CryptoPan::anonymize_paper_policy(const IpAddr& addr) const {
  if (addr.is_v4()) return anonymize(addr.v4(), 8);
  return anonymize(addr.v6(), 64);
}

void CryptoPan::anonymize_batch(std::span<const IPv4Addr> in,
                                std::span<IPv4Addr> out, int bits) const {
  assert(in.size() == out.size());
  for (size_t i = 0; i < in.size(); ++i) out[i] = anonymize(in[i], bits);
}

void CryptoPan::anonymize_batch(std::span<const IPv6Addr> in,
                                std::span<IPv6Addr> out, int bits) const {
  assert(in.size() == out.size());
  // Flow batches repeat /64s heavily (every flow from one home shares the
  // delegated prefix), but arrive interleaved across homes — the access
  // pattern that thrashes a direct-mapped prefix cache. Process in
  // (hi, lo)-sorted order instead: equal addresses collapse to one
  // computation, shared prefixes hit the cache back to back, and the
  // index indirection scatters each result to its original slot, so the
  // output order — and every output value (anonymize is pure) — is
  // exactly the naive loop's.
  const size_t n = in.size();
  if (n < 2) {
    for (size_t i = 0; i < n; ++i) out[i] = anonymize(in[i], bits);
    return;
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  auto key = [&in](std::uint32_t i) {
    return std::make_tuple(in[i].high64(), in[i].low64());
  };
  std::sort(order.begin(), order.end(),
            [&key](std::uint32_t a, std::uint32_t b) { return key(a) < key(b); });
  IPv6Addr prev_in, prev_out;
  bool have_prev = false;
  for (std::uint32_t idx : order) {
    const IPv6Addr& a = in[idx];
    if (!have_prev || !(a == prev_in)) {
      prev_in = a;
      prev_out = anonymize(a, bits);
      have_prev = true;
    }
    out[idx] = prev_out;
  }
}

void CryptoPan::anonymize_paper_policy_batch(std::span<const IpAddr> in,
                                             std::span<IpAddr> out) const {
  assert(in.size() == out.size());
  // Route the v6 portion through the sorted batch layout above; v4 stays
  // a straight loop (its cache is rarely contended at /8 depth).
  std::vector<std::uint32_t> v6_idx;
  std::vector<IPv6Addr> v6_in;
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i].is_v4()) {
      out[i] = anonymize(in[i].v4(), 8);
    } else {
      v6_idx.push_back(static_cast<std::uint32_t>(i));
      v6_in.push_back(in[i].v6());
    }
  }
  if (v6_in.empty()) return;
  std::vector<IPv6Addr> v6_out(v6_in.size());
  anonymize_batch(std::span<const IPv6Addr>(v6_in), std::span(v6_out), 64);
  for (size_t k = 0; k < v6_idx.size(); ++k) out[v6_idx[k]] = v6_out[k];
}

}  // namespace nbv6::net
