#include "net/cryptopan.h"

#include <cassert>

namespace nbv6::net {
namespace {

// Copies bit i (MSB-first within the 16-byte block) of src into dst.
void set_bit(Aes128::Block& b, int i, bool v) {
  auto byte = static_cast<size_t>(i / 8);
  int shift = 7 - i % 8;
  if (v)
    b[byte] |= static_cast<std::uint8_t>(1u << shift);
  else
    b[byte] &= static_cast<std::uint8_t>(~(1u << shift));
}

bool get_bit(const Aes128::Block& b, int i) {
  return ((b[static_cast<size_t>(i / 8)] >> (7 - i % 8)) & 1) != 0;
}

}  // namespace

CryptoPan::CryptoPan(const Secret& secret)
    : cipher_([&secret] {
        Aes128::Key key{};
        for (int i = 0; i < 16; ++i) key[static_cast<size_t>(i)] = secret[static_cast<size_t>(i)];
        return Aes128(key);
      }()) {
  // Per the reference implementation, the second half of the secret is
  // itself encrypted once to form the canonical padding block.
  Aes128::Block raw_pad{};
  for (int i = 0; i < 16; ++i) raw_pad[static_cast<size_t>(i)] = secret[static_cast<size_t>(16 + i)];
  pad_ = cipher_.encrypt(raw_pad);
}

bool CryptoPan::prf_bit(const Aes128::Block& prefix_padded) const {
  Aes128::Block out = cipher_.encrypt(prefix_padded);
  return (out[0] & 0x80) != 0;  // most significant bit of the first byte
}

IPv4Addr CryptoPan::anonymize(IPv4Addr addr, int bits) const {
  assert(bits >= 0 && bits <= 32);
  // Work over the full 32-bit address laid out in the top of a block; only
  // the last `bits` positions get flipped, so the untouched prefix is
  // copied through verbatim.
  const int start = 32 - bits;
  std::uint32_t in = addr.value();
  std::uint32_t out = in & (bits == 32 ? 0u : ~0u << bits);

  for (int i = start; i < 32; ++i) {
    // Block = original bits [0, i) followed by padding bits [i, 128).
    Aes128::Block block = pad_;
    for (int j = 0; j < i; ++j)
      set_bit(block, j, ((in >> (31 - j)) & 1) != 0);
    bool flip = prf_bit(block);
    std::uint32_t orig_bit = (in >> (31 - i)) & 1;
    std::uint32_t new_bit = orig_bit ^ static_cast<std::uint32_t>(flip);
    out |= new_bit << (31 - i);
  }
  return IPv4Addr(out);
}

IPv6Addr CryptoPan::anonymize(const IPv6Addr& addr, int bits) const {
  assert(bits >= 0 && bits <= 128);
  const int start = 128 - bits;
  Aes128::Block in{};
  for (size_t i = 0; i < 16; ++i) in[i] = addr.bytes()[i];
  Aes128::Block out = in;

  for (int i = start; i < 128; ++i) {
    Aes128::Block block = pad_;
    for (int j = 0; j < i; ++j) set_bit(block, j, get_bit(in, j));
    bool flip = prf_bit(block);
    set_bit(out, i, get_bit(in, i) ^ flip);
  }
  IPv6Addr::Bytes result{};
  for (size_t i = 0; i < 16; ++i) result[i] = out[i];
  return IPv6Addr(result);
}

IpAddr CryptoPan::anonymize_paper_policy(const IpAddr& addr) const {
  if (addr.is_v4()) return anonymize(addr.v4(), 8);
  return anonymize(addr.v6(), 64);
}

}  // namespace nbv6::net
