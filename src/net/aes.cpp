#include "net/aes.h"

#include <cstddef>

#if defined(__AES__) && defined(__SSSE3__)
#include <tmmintrin.h>
#include <wmmintrin.h>
#endif

using std::size_t;

namespace nbv6::net {
namespace {

// The AES S-box (FIPS 197, Fig. 7).
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

// Round constants for key expansion.
constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

// Multiply by x in GF(2^8) modulo the AES polynomial.
constexpr std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

constexpr std::uint32_t rotr8(std::uint32_t v) { return (v >> 8) | (v << 24); }

// T-tables: Te0[x] packs MixColumns applied to SubBytes(x) for the first
// state row, MSB-first — {02·S[x], S[x], S[x], 03·S[x]}. Te1..Te3 are the
// same column rotated down one row each, so a round's output word is
//   Te0[b0] ^ Te1[b1] ^ Te2[b2] ^ Te3[b3] ^ rk
// with b0..b3 drawn along the ShiftRows diagonal.
struct Tables {
  std::uint32_t te0[256], te1[256], te2[256], te3[256];
};

constexpr Tables make_tables() {
  Tables t{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t s = kSbox[i];
    std::uint8_t s2 = xtime(s);
    std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
    std::uint32_t w = (std::uint32_t{s2} << 24) | (std::uint32_t{s} << 16) |
                      (std::uint32_t{s} << 8) | std::uint32_t{s3};
    t.te0[i] = w;
    t.te1[i] = rotr8(w);
    t.te2[i] = rotr8(rotr8(w));
    t.te3[i] = rotr8(rotr8(rotr8(w)));
  }
  return t;
}

constexpr Tables kT = make_tables();

}  // namespace

Aes128::Aes128(const Key& key) {
  // Key expansion (FIPS 197 §5.2) directly over big-endian packed words.
  for (int i = 0; i < 4; ++i) {
    round_keys_[static_cast<size_t>(i)] =
        (std::uint32_t{key[static_cast<size_t>(4 * i)]} << 24) |
        (std::uint32_t{key[static_cast<size_t>(4 * i + 1)]} << 16) |
        (std::uint32_t{key[static_cast<size_t>(4 * i + 2)]} << 8) |
        std::uint32_t{key[static_cast<size_t>(4 * i + 3)]};
  }
  for (int i = 4; i < 44; ++i) {
    std::uint32_t t = round_keys_[static_cast<size_t>(i - 1)];
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      t = (t << 8) | (t >> 24);
      t = (std::uint32_t{kSbox[(t >> 24) & 0xff]} << 24) |
          (std::uint32_t{kSbox[(t >> 16) & 0xff]} << 16) |
          (std::uint32_t{kSbox[(t >> 8) & 0xff]} << 8) |
          std::uint32_t{kSbox[t & 0xff]};
      t ^= std::uint32_t{kRcon[i / 4]} << 24;
    }
    round_keys_[static_cast<size_t>(i)] =
        round_keys_[static_cast<size_t>(i - 4)] ^ t;
  }
  for (int i = 0; i < 44; ++i)
    round_keys_raw_[static_cast<size_t>(i)] =
        __builtin_bswap32(round_keys_[static_cast<size_t>(i)]);
}

#if defined(__AES__) && defined(__SSSE3__)
namespace {

// Hardware core: one AESENC per round against the precomputed raw-order
// schedule. Operates on the FIPS byte-order state AES-NI expects.
inline __m128i hw_encrypt(__m128i s, const std::uint32_t* rk_raw) {
  auto load_rk = [rk_raw](int r) {
    return _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(rk_raw + 4 * r));
  };
  s = _mm_xor_si128(s, load_rk(0));
  s = _mm_aesenc_si128(s, load_rk(1));
  s = _mm_aesenc_si128(s, load_rk(2));
  s = _mm_aesenc_si128(s, load_rk(3));
  s = _mm_aesenc_si128(s, load_rk(4));
  s = _mm_aesenc_si128(s, load_rk(5));
  s = _mm_aesenc_si128(s, load_rk(6));
  s = _mm_aesenc_si128(s, load_rk(7));
  s = _mm_aesenc_si128(s, load_rk(8));
  s = _mm_aesenc_si128(s, load_rk(9));
  return _mm_aesenclast_si128(s, load_rk(10));
}

}  // namespace
#endif

std::array<std::uint32_t, 4> Aes128::encrypt_words(
    const std::array<std::uint32_t, 4>& words) const {
#if defined(__AES__) && defined(__SSSE3__)
  // The caller-facing words are big-endian packed, so reverse bytes within
  // each 32-bit lane on the way in and out.
  const __m128i kLaneSwap =
      _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
  __m128i s =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(words.data()));
  s = hw_encrypt(_mm_shuffle_epi8(s, kLaneSwap), round_keys_raw_.data());
  s = _mm_shuffle_epi8(s, kLaneSwap);
  std::array<std::uint32_t, 4> out;
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data()), s);
  return out;
#else
  const std::uint32_t* rk = round_keys_.data();
  std::uint32_t s0 = words[0] ^ rk[0];
  std::uint32_t s1 = words[1] ^ rk[1];
  std::uint32_t s2 = words[2] ^ rk[2];
  std::uint32_t s3 = words[3] ^ rk[3];

  // Nine full rounds, fully unrolled so the table indices and key offsets
  // are compile-time constants (the serial dependency chain per round is
  // one L1 load plus a three-deep XOR tree).
  std::uint32_t t0, t1, t2, t3;
#define NBV6_AES_ROUND(r)                                     \
  t0 = kT.te0[s0 >> 24] ^ kT.te1[(s1 >> 16) & 0xff] ^         \
       kT.te2[(s2 >> 8) & 0xff] ^ kT.te3[s3 & 0xff] ^ rk[4 * (r)];     \
  t1 = kT.te0[s1 >> 24] ^ kT.te1[(s2 >> 16) & 0xff] ^         \
       kT.te2[(s3 >> 8) & 0xff] ^ kT.te3[s0 & 0xff] ^ rk[4 * (r) + 1]; \
  t2 = kT.te0[s2 >> 24] ^ kT.te1[(s3 >> 16) & 0xff] ^         \
       kT.te2[(s0 >> 8) & 0xff] ^ kT.te3[s1 & 0xff] ^ rk[4 * (r) + 2]; \
  t3 = kT.te0[s3 >> 24] ^ kT.te1[(s0 >> 16) & 0xff] ^         \
       kT.te2[(s1 >> 8) & 0xff] ^ kT.te3[s2 & 0xff] ^ rk[4 * (r) + 3]; \
  s0 = t0;                                                    \
  s1 = t1;                                                    \
  s2 = t2;                                                    \
  s3 = t3;
  NBV6_AES_ROUND(1)
  NBV6_AES_ROUND(2)
  NBV6_AES_ROUND(3)
  NBV6_AES_ROUND(4)
  NBV6_AES_ROUND(5)
  NBV6_AES_ROUND(6)
  NBV6_AES_ROUND(7)
  NBV6_AES_ROUND(8)
  NBV6_AES_ROUND(9)
#undef NBV6_AES_ROUND

  // Final round: SubBytes + ShiftRows only (no MixColumns).
  auto sub4 = [](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                 std::uint32_t d) {
    return (std::uint32_t{kSbox[a >> 24]} << 24) |
           (std::uint32_t{kSbox[(b >> 16) & 0xff]} << 16) |
           (std::uint32_t{kSbox[(c >> 8) & 0xff]} << 8) |
           std::uint32_t{kSbox[d & 0xff]};
  };
  return {sub4(s0, s1, s2, s3) ^ rk[40], sub4(s1, s2, s3, s0) ^ rk[41],
          sub4(s2, s3, s0, s1) ^ rk[42], sub4(s3, s0, s1, s2) ^ rk[43]};
#endif
}

Aes128::Block Aes128::encrypt(const Block& plaintext) const {
#if defined(__AES__) && defined(__SSSE3__)
  // Block bytes are already in the order AES-NI consumes — no marshalling.
  __m128i s =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(plaintext.data()));
  s = hw_encrypt(s, round_keys_raw_.data());
  Block out;
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data()), s);
  return out;
#else
  std::array<std::uint32_t, 4> w;
  for (int i = 0; i < 4; ++i) {
    w[static_cast<size_t>(i)] =
        (std::uint32_t{plaintext[static_cast<size_t>(4 * i)]} << 24) |
        (std::uint32_t{plaintext[static_cast<size_t>(4 * i + 1)]} << 16) |
        (std::uint32_t{plaintext[static_cast<size_t>(4 * i + 2)]} << 8) |
        std::uint32_t{plaintext[static_cast<size_t>(4 * i + 3)]};
  }
  w = encrypt_words(w);
  Block out;
  for (int i = 0; i < 4; ++i) {
    out[static_cast<size_t>(4 * i)] =
        static_cast<std::uint8_t>(w[static_cast<size_t>(i)] >> 24);
    out[static_cast<size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(w[static_cast<size_t>(i)] >> 16);
    out[static_cast<size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(w[static_cast<size_t>(i)] >> 8);
    out[static_cast<size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(w[static_cast<size_t>(i)]);
  }
  return out;
#endif
}

}  // namespace nbv6::net
