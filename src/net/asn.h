// Autonomous-system attribution: a BGP-like table mapping address prefixes
// to origin AS numbers.
//
// Used twice in the reproduction, exactly as in the paper: §3.4 maps flow
// destination addresses to service ASes ("from BGP routing tables"), and
// §5.1 maps resource addresses to cloud providers. Longest-prefix match
// over both families via the LPM tries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/ip.h"
#include "net/lpm_trie.h"
#include "net/prefix.h"

namespace nbv6::net {

using Asn = std::uint32_t;

/// Routing-table view: prefix announcements with origin ASNs, plus an
/// AS-number → AS-name registry (the "AS name" column of Figure 4).
class AsMap {
 public:
  void announce(const Prefix4& p, Asn asn) { v4_.insert(p, asn); }
  void announce(const Prefix6& p, Asn asn) { v6_.insert(p, asn); }

  void register_name(Asn asn, std::string name) {
    names_[asn] = std::move(name);
  }

  /// Origin AS of the longest matching announcement, if any.
  [[nodiscard]] std::optional<Asn> lookup(const IpAddr& addr) const {
    if (addr.is_v4()) return v4_.lookup(addr.v4());
    return v6_.lookup(addr.v6());
  }

  [[nodiscard]] std::string name(Asn asn) const {
    auto it = names_.find(asn);
    return it == names_.end() ? "AS" + std::to_string(asn) : it->second;
  }

  [[nodiscard]] size_t announcement_count() const {
    return v4_.size() + v6_.size();
  }

 private:
  LpmTrie4<Asn> v4_;
  LpmTrie6<Asn> v6_;
  std::unordered_map<Asn, std::string> names_;
};

}  // namespace nbv6::net
