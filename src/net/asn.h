// Autonomous-system attribution: a BGP-like table mapping address prefixes
// to origin AS numbers.
//
// Used twice in the reproduction, exactly as in the paper: §3.4 maps flow
// destination addresses to service ASes ("from BGP routing tables"), and
// §5.1 maps resource addresses to cloud providers. Longest-prefix match
// over both families via the LPM tries.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.h"
#include "net/lpm_trie.h"
#include "net/prefix.h"

namespace nbv6::net {

using Asn = std::uint32_t;

/// Routing-table view: prefix announcements with origin ASNs, plus an
/// AS-number → AS-name registry (the "AS name" column of Figure 4).
class AsMap {
 public:
  void announce(const Prefix4& p, Asn asn) { v4_.insert(p, asn); }
  void announce(const Prefix6& p, Asn asn) { v6_.insert(p, asn); }

  void register_name(Asn asn, std::string name) {
    names_[asn] = std::move(name);
  }

  /// Origin AS of the longest matching announcement, if any.
  [[nodiscard]] std::optional<Asn> lookup(const IpAddr& addr) const {
    if (addr.is_v4()) return v4_.lookup(addr.v4());
    return v6_.lookup(addr.v6());
  }

  /// Batch attribution: partition by family and run each family through
  /// its trie's batch-lookup path. `out[i]` corresponds to `addrs[i]`.
  void lookup_batch(std::span<const IpAddr> addrs,
                    std::span<std::optional<Asn>> out) const {
    std::vector<IPv4Addr> a4;
    std::vector<IPv6Addr> a6;
    std::vector<size_t> i4, i6;
    for (size_t i = 0; i < addrs.size(); ++i) {
      if (addrs[i].is_v4()) {
        a4.push_back(addrs[i].v4());
        i4.push_back(i);
      } else {
        a6.push_back(addrs[i].v6());
        i6.push_back(i);
      }
    }
    std::vector<std::optional<Asn>> r4(a4.size()), r6(a6.size());
    v4_.lookup_batch(a4, r4);
    v6_.lookup_batch(a6, r6);
    for (size_t k = 0; k < i4.size(); ++k) out[i4[k]] = r4[k];
    for (size_t k = 0; k < i6.size(); ++k) out[i6[k]] = r6[k];
  }

  [[nodiscard]] std::vector<std::optional<Asn>> lookup_batch(
      std::span<const IpAddr> addrs) const {
    std::vector<std::optional<Asn>> out(addrs.size());
    lookup_batch(addrs, out);
    return out;
  }

  [[nodiscard]] std::string name(Asn asn) const {
    auto it = names_.find(asn);
    return it == names_.end() ? "AS" + std::to_string(asn) : it->second;
  }

  [[nodiscard]] size_t announcement_count() const {
    return v4_.size() + v6_.size();
  }

 private:
  LpmTrie4<Asn> v4_;
  LpmTrie6<Asn> v6_;
  std::unordered_map<Asn, std::string> names_;
};

}  // namespace nbv6::net
