// CIDR prefixes for both families.
//
// A prefix is stored normalized: bits past the prefix length are zero, so
// equal prefixes compare equal regardless of how they were constructed.
// Prefixes are the key type of the BGP table (cloud/bgp_table.h) and the
// unit of allocation in the synthetic address plan.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "net/ip.h"

namespace nbv6::net {

/// An IPv4 CIDR prefix, e.g. 192.0.2.0/24.
class Prefix4 {
 public:
  constexpr Prefix4() = default;

  /// Construct, zeroing host bits. `length` must be in [0, 32].
  Prefix4(IPv4Addr addr, int length);

  /// Parse "a.b.c.d/len".
  static std::optional<Prefix4> parse(std::string_view text);

  [[nodiscard]] IPv4Addr address() const { return addr_; }
  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] bool contains(IPv4Addr a) const;
  [[nodiscard]] bool contains(const Prefix4& other) const;
  [[nodiscard]] std::string to_string() const;

  /// Number of addresses covered (2^(32-length)), as 64-bit to avoid
  /// overflow at /0.
  [[nodiscard]] std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  friend constexpr auto operator<=>(const Prefix4&, const Prefix4&) = default;

 private:
  IPv4Addr addr_{};
  int length_ = 0;
};

/// An IPv6 CIDR prefix, e.g. 2001:db8::/32.
class Prefix6 {
 public:
  Prefix6() = default;
  Prefix6(IPv6Addr addr, int length);

  static std::optional<Prefix6> parse(std::string_view text);

  [[nodiscard]] const IPv6Addr& address() const { return addr_; }
  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] bool contains(const IPv6Addr& a) const;
  [[nodiscard]] bool contains(const Prefix6& other) const;
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Prefix6&, const Prefix6&) = default;

 private:
  IPv6Addr addr_{};
  int length_ = 0;
};

/// Zero all bits of `a` past the first `length` bits.
IPv4Addr mask_to_length(IPv4Addr a, int length);
IPv6Addr mask_to_length(const IPv6Addr& a, int length);

}  // namespace nbv6::net
