#include "net/flow.h"

namespace nbv6::net {

std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::tcp:
      return "tcp";
    case Protocol::udp:
      return "udp";
    case Protocol::icmp:
      return "icmp";
  }
  return "?";
}

std::string FlowKey::to_string() const {
  std::string out(net::to_string(protocol));
  out += ' ';
  out += src.to_string();
  out += ':';
  out += std::to_string(src_port);
  out += " -> ";
  out += dst.to_string();
  out += ':';
  out += std::to_string(dst_port);
  return out;
}

std::strong_ordering operator<=>(const FlowKey& a, const FlowKey& b) {
  if (auto c = a.protocol <=> b.protocol; c != 0) return c;
  if (auto c = a.src <=> b.src; c != 0) return c;
  if (auto c = a.dst <=> b.dst; c != 0) return c;
  if (auto c = a.src_port <=> b.src_port; c != 0) return c;
  return a.dst_port <=> b.dst_port;
}

size_t FlowKeyHash::operator()(const FlowKey& k) const noexcept {
  // FNV-1a over the flat fields; quality is ample for a flow table.
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(k.protocol));
  auto mix_addr = [&](const IpAddr& a) {
    if (a.is_v4()) {
      mix(a.v4().value());
    } else {
      mix(a.v6().high64());
      mix(a.v6().low64());
    }
  };
  mix_addr(k.src);
  mix_addr(k.dst);
  mix((std::uint64_t{k.src_port} << 16) | k.dst_port);
  return static_cast<size_t>(h);
}

}  // namespace nbv6::net
