#include "net/flow.h"

namespace nbv6::net {

std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::tcp:
      return "tcp";
    case Protocol::udp:
      return "udp";
    case Protocol::icmp:
      return "icmp";
  }
  return "?";
}

std::string FlowKey::to_string() const {
  std::string out(net::to_string(protocol));
  out += ' ';
  out += src.to_string();
  out += ':';
  out += std::to_string(src_port);
  out += " -> ";
  out += dst.to_string();
  out += ':';
  out += std::to_string(dst_port);
  return out;
}

std::strong_ordering operator<=>(const FlowKey& a, const FlowKey& b) {
  if (auto c = a.protocol <=> b.protocol; c != 0) return c;
  if (auto c = a.src <=> b.src; c != 0) return c;
  if (auto c = a.dst <=> b.dst; c != 0) return c;
  if (auto c = a.src_port <=> b.src_port; c != 0) return c;
  return a.dst_port <=> b.dst_port;
}

namespace {

// wyhash-style multiply-fold: full 128-bit product of the two halves,
// xor-folded. One multiply per 64 bits of input, strong enough avalanche
// for open addressing.
inline std::uint64_t mum(std::uint64_t a, std::uint64_t b) noexcept {
  unsigned __int128 m = static_cast<unsigned __int128>(a) * b;
  return static_cast<std::uint64_t>(m) ^ static_cast<std::uint64_t>(m >> 64);
}

constexpr std::uint64_t kSeed0 = 0xa0761d6478bd642full;
constexpr std::uint64_t kSeed1 = 0xe7037ed1a0b428dbull;
constexpr std::uint64_t kSeed2 = 0x8ebc6af09c88c6e3ull;

}  // namespace

std::uint64_t fused_flow_hash(const FlowKey& k) noexcept {
  // Fold protocol, per-endpoint family bits, and ports into one lane word.
  const std::uint64_t lane =
      (static_cast<std::uint64_t>(k.protocol) << 40) |
      (static_cast<std::uint64_t>(k.src.is_v6()) << 33) |
      (static_cast<std::uint64_t>(k.dst.is_v6()) << 32) |
      (std::uint64_t{k.src_port} << 16) | k.dst_port;
  std::uint64_t h;
  if (k.src.is_v4() && k.dst.is_v4()) {
    const std::uint64_t addrs = (std::uint64_t{k.src.v4().value()} << 32) |
                                k.dst.v4().value();
    h = mum(lane ^ kSeed0, addrs ^ kSeed1);
  } else {
    auto hi64 = [](const IpAddr& a) {
      return a.is_v4() ? std::uint64_t{a.v4().value()} : a.v6().high64();
    };
    auto lo64 = [](const IpAddr& a) {
      return a.is_v4() ? std::uint64_t{0} : a.v6().low64();
    };
    h = mum(lane ^ kSeed0, hi64(k.src) ^ kSeed1);
    h = mum(h ^ lo64(k.src), hi64(k.dst) ^ kSeed2);
    h = mum(h ^ lo64(k.dst), kSeed1);
  }
  h = mum(h, kSeed2);
  return h == 0 ? kSeed0 : h;  // reserve 0 for flat-table empty slots
}

}  // namespace nbv6::net
