// CryptoPAN prefix-preserving IP address anonymization (Xu et al., ICNP'02).
//
// The paper's data-release pipeline (§A) scrambles the low 8 bits of IPv4
// addresses and the low /64 of IPv6 addresses with CryptoPAN before flow
// logs leave a residence router. We implement the full algorithm — any bit
// range can be anonymized — plus convenience entry points matching the
// paper's policy.
//
// Prefix preservation: if two addresses share their first k bits, their
// anonymized forms also share exactly their first k bits (within the
// anonymized range). This is what lets anonymized data still support
// prefix-level analyses like per-AS aggregation.
#pragma once

#include <array>
#include <cstdint>

#include "net/aes.h"
#include "net/ip.h"

namespace nbv6::net {

/// Prefix-preserving anonymizer keyed by a 32-byte secret: 16 bytes of AES
/// key and 16 bytes of padding block, per the reference implementation.
class CryptoPan {
 public:
  using Secret = std::array<std::uint8_t, 32>;

  explicit CryptoPan(const Secret& secret);

  /// Anonymize the low `bits` bits of an IPv4 address, preserving prefixes
  /// within that range and leaving the top (32 - bits) bits untouched.
  /// `bits` in [0, 32]. The paper's policy is bits = 8.
  [[nodiscard]] IPv4Addr anonymize(IPv4Addr addr, int bits = 32) const;

  /// Anonymize the low `bits` bits of an IPv6 address. The paper's policy
  /// is bits = 64 (scramble the interface identifier, keep the /64 prefix).
  [[nodiscard]] IPv6Addr anonymize(const IPv6Addr& addr, int bits = 64) const;

  /// Family-dispatching convenience applying the paper's policy
  /// (v4: low 8 bits; v6: low 64 bits).
  [[nodiscard]] IpAddr anonymize_paper_policy(const IpAddr& addr) const;

 private:
  /// One pseudo-random bit derived from the first `len` bits of `block`
  /// (remaining bits replaced by padding), the core CryptoPAN PRF step.
  [[nodiscard]] bool prf_bit(const Aes128::Block& prefix_padded) const;

  Aes128 cipher_;
  Aes128::Block pad_{};
};

}  // namespace nbv6::net
