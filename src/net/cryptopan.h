// CryptoPAN prefix-preserving IP address anonymization (Xu et al., ICNP'02).
//
// The paper's data-release pipeline (§A) scrambles the low 8 bits of IPv4
// addresses and the low /64 of IPv6 addresses with CryptoPAN before flow
// logs leave a residence router. We implement the full algorithm — any bit
// range can be anonymized — plus convenience entry points matching the
// paper's policy.
//
// Prefix preservation: if two addresses share their first k bits, their
// anonymized forms also share exactly their first k bits (within the
// anonymized range). This is what lets anonymized data still support
// prefix-level analyses like per-AS aggregation.
//
// Performance: the PRF input for bit i is the original address's first i
// bits followed by padding, so it is built incrementally (one word mutated
// per step) instead of re-assembling the whole block per bit. Because the
// PRF depends only on the bit-prefix, its outputs are memoized in a
// direct-mapped prefix cache at byte-chunk granularity: one cache entry
// holds the eight flip bits of one address byte, keyed by the address
// prefix through that byte. Flow batches with shared prefixes (the common
// case for a residence's flow log) then pay the AES cost only for the
// bytes that actually differ. The cache makes anonymize() non-reentrant:
// a CryptoPan instance must not be shared across threads without external
// synchronization.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "net/aes.h"
#include "net/ip.h"

namespace nbv6::net {

/// Prefix-preserving anonymizer keyed by a 32-byte secret: 16 bytes of AES
/// key and 16 bytes of padding block, per the reference implementation.
class CryptoPan {
 public:
  using Secret = std::array<std::uint8_t, 32>;

  /// `enable_prefix_cache = false` disables PRF memoization (every bit
  /// recomputed through AES); results are identical either way — the flag
  /// exists for equivalence testing and memory-constrained callers.
  explicit CryptoPan(const Secret& secret, bool enable_prefix_cache = true);

  /// Anonymize the low `bits` bits of an IPv4 address, preserving prefixes
  /// within that range and leaving the top (32 - bits) bits untouched.
  /// `bits` in [0, 32]. The paper's policy is bits = 8.
  [[nodiscard]] IPv4Addr anonymize(IPv4Addr addr, int bits = 32) const;

  /// Anonymize the low `bits` bits of an IPv6 address. The paper's policy
  /// is bits = 64 (scramble the interface identifier, keep the /64 prefix).
  [[nodiscard]] IPv6Addr anonymize(const IPv6Addr& addr, int bits = 64) const;

  /// Family-dispatching convenience applying the paper's policy
  /// (v4: low 8 bits; v6: low 64 bits).
  [[nodiscard]] IpAddr anonymize_paper_policy(const IpAddr& addr) const;

  /// Batch entry points. Semantically identical to mapping the scalar call
  /// over `in`, but intended for flow-export batches: shared prefixes
  /// across the batch hit the PRF cache, so the amortized cost per address
  /// approaches one AES call per differing byte. The v6 batch additionally
  /// processes addresses in (hi, lo)-sorted order — repeated /64s land
  /// back to back, so duplicates collapse to one computation and shared
  /// prefixes stop conflict-evicting each other in the direct-mapped
  /// cache — and scatters results back, so output order and every output
  /// value match the naive loop exactly. `out.size()` must equal
  /// `in.size()`.
  void anonymize_batch(std::span<const IPv4Addr> in, std::span<IPv4Addr> out,
                       int bits = 32) const;
  void anonymize_batch(std::span<const IPv6Addr> in, std::span<IPv6Addr> out,
                       int bits = 64) const;
  void anonymize_paper_policy_batch(std::span<const IpAddr> in,
                                    std::span<IpAddr> out) const;

  /// Number of AES block encryptions performed so far (cache misses only).
  /// Exposed so tests and benchmarks can observe cache amortization.
  [[nodiscard]] std::uint64_t prf_calls() const { return prf_calls_; }

 private:
  // One byte-chunk of cached PRF output for a v4 prefix: `flips` bit
  // (7 - j) is the PRF bit for address position 8*chunk + j.
  struct CacheEntry4 {
    std::uint64_t key;  // (prefix through chunk end) << 2 | chunk
    std::uint8_t flips;
  };
  struct CacheEntry6 {
    std::uint64_t hi, lo;  // address masked to the chunk-end prefix
    std::uint8_t chunk;    // 0..15; 0xff = empty slot
    std::uint8_t flips;
  };

  /// Flip bits for v4 byte `chunk` (positions [8c, 8c+8)) of `addr`,
  /// through the cache when enabled.
  [[nodiscard]] std::uint8_t chunk_flips(std::uint32_t addr, int chunk) const;
  /// Same for the v6 byte `chunk` of the address given as two halves.
  [[nodiscard]] std::uint8_t chunk_flips(std::uint64_t hi, std::uint64_t lo,
                                         int chunk) const;

  Aes128 cipher_;
  // The canonical padding block, packed as big-endian words (the form the
  // incremental PRF input assembly consumes).
  std::array<std::uint32_t, 4> pad_words_{};
  bool cache_enabled_;
  mutable std::vector<CacheEntry4> cache4_;
  mutable std::vector<CacheEntry6> cache6_;
  mutable std::uint64_t prf_calls_ = 0;
};

}  // namespace nbv6::net
