#include "net/prefix.h"

#include <cassert>
#include <charconv>

namespace nbv6::net {
namespace {

std::optional<int> parse_length(std::string_view text, int max) {
  int len = -1;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), len);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  if (len < 0 || len > max) return std::nullopt;
  return len;
}

}  // namespace

IPv4Addr mask_to_length(IPv4Addr a, int length) {
  assert(length >= 0 && length <= 32);
  if (length == 0) return IPv4Addr(0);
  std::uint32_t mask = length == 32 ? ~0u : ~0u << (32 - length);
  return IPv4Addr(a.value() & mask);
}

IPv6Addr mask_to_length(const IPv6Addr& a, int length) {
  assert(length >= 0 && length <= 128);
  IPv6Addr::Bytes b = a.bytes();
  int full_bytes = length / 8;
  int rem = length % 8;
  if (rem != 0) {
    b[static_cast<size_t>(full_bytes)] &=
        static_cast<std::uint8_t>(0xff << (8 - rem));
    ++full_bytes;
  }
  for (size_t i = static_cast<size_t>(full_bytes); i < 16; ++i) b[i] = 0;
  return IPv6Addr(b);
}

Prefix4::Prefix4(IPv4Addr addr, int length)
    : addr_(mask_to_length(addr, length)), length_(length) {}

std::optional<Prefix4> Prefix4::parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IPv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  auto len = parse_length(text.substr(slash + 1), 32);
  if (!len) return std::nullopt;
  return Prefix4(*addr, *len);
}

bool Prefix4::contains(IPv4Addr a) const {
  return mask_to_length(a, length_) == addr_;
}

bool Prefix4::contains(const Prefix4& other) const {
  return other.length_ >= length_ && contains(other.addr_);
}

std::string Prefix4::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

Prefix6::Prefix6(IPv6Addr addr, int length)
    : addr_(mask_to_length(addr, length)), length_(length) {}

std::optional<Prefix6> Prefix6::parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IPv6Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  auto len = parse_length(text.substr(slash + 1), 128);
  if (!len) return std::nullopt;
  return Prefix6(*addr, *len);
}

bool Prefix6::contains(const IPv6Addr& a) const {
  return mask_to_length(a, length_) == addr_;
}

bool Prefix6::contains(const Prefix6& other) const {
  return other.length_ >= length_ && contains(other.addr_);
}

std::string Prefix6::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

}  // namespace nbv6::net
