// AES-128 block encryption, from scratch.
//
// Present solely as the pseudo-random function inside CryptoPAN
// (net/cryptopan.h), the prefix-preserving address anonymizer the paper's
// release pipeline uses (§A). Encryption-only (CryptoPAN never decrypts),
// single block, no modes; constant-time behaviour is NOT a goal here — this
// anonymizes research data offline, it is not a TLS stack.
//
// Implementation: the classic 32-bit T-table formulation (SubBytes,
// ShiftRows and MixColumns fused into four 256-entry uint32 tables), which
// turns each round into 16 table loads and a handful of XORs. One CryptoPAN
// address costs up to 32 (v4) / 128 (v6) block encryptions, so the per-block
// constant dominates every anonymization benchmark.
#pragma once

#include <array>
#include <cstdint>

namespace nbv6::net {

/// AES-128 in encrypt-only form.
class Aes128 {
 public:
  using Block = std::array<std::uint8_t, 16>;
  using Key = std::array<std::uint8_t, 16>;

  explicit Aes128(const Key& key);

  /// Encrypt one 16-byte block (ECB, single block).
  [[nodiscard]] Block encrypt(const Block& plaintext) const;

  /// Encrypt a block already packed as four big-endian words (the state
  /// layout encrypt() uses internally). Lets callers that maintain their
  /// own word-packed state (CryptoPAN's incremental PRF input) skip the
  /// byte<->word marshalling on both sides.
  [[nodiscard]] std::array<std::uint32_t, 4> encrypt_words(
      const std::array<std::uint32_t, 4>& words) const;

 private:
  // 44 expanded key words (AES-128 = 10 rounds + initial), packed
  // big-endian: word i holds key bytes 4i..4i+3 MSB-first.
  std::array<std::uint32_t, 44> round_keys_{};
  // The same schedule in raw FIPS byte order (word i byte-swapped), loadable
  // directly by the hardware-AES path without per-round marshalling.
  std::array<std::uint32_t, 44> round_keys_raw_{};
};

}  // namespace nbv6::net
