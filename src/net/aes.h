// AES-128 block encryption, from scratch.
//
// Present solely as the pseudo-random function inside CryptoPAN
// (net/cryptopan.h), the prefix-preserving address anonymizer the paper's
// release pipeline uses (§A). Encryption-only (CryptoPAN never decrypts),
// single block, no modes; constant-time behaviour is NOT a goal here — this
// anonymizes research data offline, it is not a TLS stack.
#pragma once

#include <array>
#include <cstdint>

namespace nbv6::net {

/// AES-128 in encrypt-only form.
class Aes128 {
 public:
  using Block = std::array<std::uint8_t, 16>;
  using Key = std::array<std::uint8_t, 16>;

  explicit Aes128(const Key& key);

  /// Encrypt one 16-byte block (ECB, single block).
  [[nodiscard]] Block encrypt(const Block& plaintext) const;

 private:
  // 11 round keys of 16 bytes each (AES-128 = 10 rounds + initial).
  std::array<std::array<std::uint8_t, 16>, 11> round_keys_{};
};

}  // namespace nbv6::net
