#include "net/ip.h"

#include <cassert>
#include <charconv>
#include <cstdio>

namespace nbv6::net {
namespace {

// Parses a decimal octet (0-255) from text, advancing `pos`.
// Rejects empty runs and values over 255. Leading zeros are accepted
// ("010" == 10), matching the liberal behaviour of inet_pton on Linux for
// dotted-quad text without octal interpretation.
std::optional<std::uint8_t> parse_octet(std::string_view text, size_t& pos) {
  std::uint32_t value = 0;
  size_t digits = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<std::uint32_t>(text[pos] - '0');
    if (value > 255) return std::nullopt;
    ++pos;
    ++digits;
    if (digits > 3) return std::nullopt;
  }
  if (digits == 0) return std::nullopt;
  return static_cast<std::uint8_t>(value);
}

std::optional<int> hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return std::nullopt;
}

}  // namespace

std::string_view to_string(Family f) {
  return f == Family::v4 ? "IPv4" : "IPv6";
}

std::optional<IPv4Addr> IPv4Addr::parse(std::string_view text) {
  size_t pos = 0;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    auto octet = parse_octet(text, pos);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (pos != text.size()) return std::nullopt;
  return IPv4Addr(value);
}

std::string IPv4Addr::to_string() const {
  char buf[16];
  int n = std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1),
                        octet(2), octet(3));
  return std::string(buf, static_cast<size_t>(n));
}

IPv6Addr IPv6Addr::from_groups(const std::array<std::uint16_t, 8>& groups) {
  Bytes b{};
  for (int i = 0; i < 8; ++i) {
    b[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    b[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xff);
  }
  return IPv6Addr(b);
}

IPv6Addr IPv6Addr::from_halves(std::uint64_t hi, std::uint64_t lo) {
  Bytes b{};
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<std::uint8_t>(hi >> (8 * (7 - i)));
    b[8 + i] = static_cast<std::uint8_t>(lo >> (8 * (7 - i)));
  }
  return IPv6Addr(b);
}

std::uint64_t IPv6Addr::high64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes_[i];
  return v;
}

std::uint64_t IPv6Addr::low64() const {
  std::uint64_t v = 0;
  for (int i = 8; i < 16; ++i) v = (v << 8) | bytes_[i];
  return v;
}

std::optional<IPv6Addr> IPv6Addr::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;

  // Split into the part before "::" and the part after. At most one "::".
  std::array<std::uint16_t, 8> head{};
  std::array<std::uint16_t, 8> tail{};
  int head_n = 0;
  int tail_n = 0;
  bool seen_gap = false;

  size_t pos = 0;

  // Leading "::".
  if (text.size() >= 2 && text[0] == ':' && text[1] == ':') {
    seen_gap = true;
    pos = 2;
  } else if (text[0] == ':') {
    return std::nullopt;  // single leading colon
  }

  auto push_group = [&](std::uint16_t g) -> bool {
    if (head_n + tail_n >= 8) return false;
    if (seen_gap)
      tail[tail_n++] = g;
    else
      head[head_n++] = g;
    return true;
  };

  // Parses one hex group or an embedded IPv4 tail at `pos`.
  while (pos < text.size()) {
    // Try embedded IPv4 (only valid as the final two groups).
    size_t dot = text.find('.', pos);
    size_t next_colon = text.find(':', pos);
    if (dot != std::string_view::npos &&
        (next_colon == std::string_view::npos || dot < next_colon)) {
      auto v4 = IPv4Addr::parse(text.substr(pos));
      if (!v4) return std::nullopt;
      std::uint32_t v = v4->value();
      if (!push_group(static_cast<std::uint16_t>(v >> 16))) return std::nullopt;
      if (!push_group(static_cast<std::uint16_t>(v & 0xffff)))
        return std::nullopt;
      pos = text.size();
      break;
    }

    // Hex group: 1-4 hex digits.
    std::uint32_t g = 0;
    int digits = 0;
    while (pos < text.size()) {
      auto d = hex_digit(text[pos]);
      if (!d) break;
      g = (g << 4) | static_cast<std::uint32_t>(*d);
      ++digits;
      ++pos;
      if (digits > 4) return std::nullopt;
    }
    if (digits == 0) return std::nullopt;
    if (!push_group(static_cast<std::uint16_t>(g))) return std::nullopt;

    if (pos == text.size()) break;
    if (text[pos] != ':') return std::nullopt;
    ++pos;
    if (pos < text.size() && text[pos] == ':') {
      if (seen_gap) return std::nullopt;  // second "::"
      seen_gap = true;
      ++pos;
      if (pos == text.size()) break;  // trailing "::"
    } else if (pos == text.size()) {
      return std::nullopt;  // trailing single colon
    }
  }

  int total = head_n + tail_n;
  if (seen_gap) {
    if (total >= 8) return std::nullopt;  // "::" must cover >= 1 zero group
  } else {
    if (total != 8) return std::nullopt;
  }

  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < head_n; ++i) groups[static_cast<size_t>(i)] = head[static_cast<size_t>(i)];
  for (int i = 0; i < tail_n; ++i)
    groups[static_cast<size_t>(8 - tail_n + i)] = tail[static_cast<size_t>(i)];
  return from_groups(groups);
}

std::string IPv6Addr::to_string() const {
  // RFC 5952: find the longest run of >=2 zero groups; leftmost on ties.
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(i) == 0) {
      int j = i;
      while (j < 8 && group(j) == 0) ++j;
      if (j - i > best_len) {
        best_len = j - i;
        best_start = i;
      }
      i = j;
    } else {
      ++i;
    }
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  out.reserve(40);
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    if (i == best_start) {
      out += "::";
      i += best_len - 1;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof buf, "%x", group(i));
    out += buf;
  }
  if (out.empty()) out = "::";
  return out;
}

IPv4Addr IpAddr::v4() const {
  assert(family_ == Family::v4);
  return v4_;
}

IPv6Addr IpAddr::v6() const {
  assert(family_ == Family::v6);
  return v6_;
}

std::optional<IpAddr> IpAddr::parse(std::string_view text) {
  if (auto a = IPv4Addr::parse(text)) return IpAddr(*a);
  if (auto a = IPv6Addr::parse(text)) return IpAddr(*a);
  return std::nullopt;
}

std::string IpAddr::to_string() const {
  return is_v4() ? v4_.to_string() : v6_.to_string();
}

std::strong_ordering operator<=>(const IpAddr& a, const IpAddr& b) {
  if (a.family_ != b.family_)
    return a.family_ == Family::v4 ? std::strong_ordering::less
                                   : std::strong_ordering::greater;
  if (a.is_v4()) return a.v4_ <=> b.v4_;
  return a.v6_ <=> b.v6_;
}

}  // namespace nbv6::net
