// Longest-prefix-match tries for IPv4 and IPv6.
//
// The BGP table that attributes resource addresses to cloud providers
// (cloud/providers.h) and the AS attribution path (net/asn.h) both do LPM
// over route announcements, and the attribution loops run once per resolved
// address — millions of lookups at experiment scale.
//
// Implementation: an arena-backed, path-compressed (Patricia) binary trie.
// All nodes live contiguously in one std::vector (no per-node heap
// allocation, good locality, trivially destroyed), and runs of
// single-child nodes are collapsed into up-to-64-bit "skip" strings, so a
// lookup visits O(distinct branch points) nodes instead of O(address bits).
// A batch-lookup entry point amortizes the per-call setup over address
// vectors (the shape the attribution loops naturally have).
//
// Large tries additionally carry a root stride table: 2^14 slots indexed
// by the top address bits, each recording where in the trie a lookup for
// that slot resumes plus the best match accumulated above that point. It
// collapses the first 14 levels of pointer chasing into one array read.
// The table is rebuilt lazily on the first lookup after a mutation —
// matching the build-then-query shape of every call site — which makes
// lookups non-reentrant against concurrent inserts (document users:
// single-threaded, or external synchronization).
//
// Values are stored by copy. Inserting at an existing (address, length)
// replaces the stored value.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/ip.h"
#include "net/prefix.h"

namespace nbv6::net {

namespace detail {

/// Canonical bit-string key: `W` 64-bit words, bits MSB-first, address bit
/// i at word i/64, bit (63 - i%64).
template <int W>
using LpmKeyWords = std::array<std::uint64_t, static_cast<size_t>(W)>;

inline LpmKeyWords<1> lpm_key(const IPv4Addr& a) {
  return {std::uint64_t{a.value()} << 32};
}
inline LpmKeyWords<2> lpm_key(const IPv6Addr& a) {
  return {a.high64(), a.low64()};
}

constexpr int lpm_key_bits(const IPv4Addr&) { return 32; }
constexpr int lpm_key_bits(const IPv6Addr&) { return 128; }

template <size_t W>
inline bool key_bit(const std::array<std::uint64_t, W>& k, int i) {
  return ((k[static_cast<size_t>(i >> 6)] >> (63 - (i & 63))) & 1) != 0;
}

/// Bits [pos, pos+len) of the key, left-aligned in a uint64 (len <= 64).
template <size_t W>
inline std::uint64_t key_extract(const std::array<std::uint64_t, W>& k,
                                 int pos, int len) {
  if (len == 0) return 0;
  const auto word = static_cast<size_t>(pos >> 6);
  const int off = pos & 63;
  std::uint64_t v = k[word] << off;
  if (off != 0 && word + 1 < W) v |= k[word + 1] >> (64 - off);
  return len == 64 ? v : v & (~std::uint64_t{0} << (64 - len));
}

}  // namespace detail

/// Patricia LPM trie generic over (Addr, Prefix, V).
///
/// `Prefix` must expose address()/length(); `Addr` must be convertible to a
/// canonical bit key via detail::lpm_key.
template <typename Addr, typename Prefix, typename V>
class LpmTrie {
 public:
  LpmTrie() { nodes_.push_back(Node{}); }  // root: empty skip, no value

  /// Insert or replace the value at `prefix`.
  void insert(const Prefix& prefix, V value) {
    stride_dirty_ = true;
    const auto key = detail::lpm_key(prefix.address());
    const int len = prefix.length();
    std::uint32_t cur = 0;
    int depth = 0;
    for (;;) {
      const int sl = nodes_[cur].skip_len;
      const int cmplen = std::min(sl, len - depth);
      const std::uint64_t kb = detail::key_extract(key, depth, cmplen);
      const std::uint64_t sb =
          cmplen == 0 ? 0
                      : nodes_[cur].skip & (~std::uint64_t{0} << (64 - cmplen));
      int common = cmplen;
      if (kb != sb)
        common = std::min(cmplen, std::countl_zero(kb ^ sb));
      if (common < sl) {
        split(cur, common);
        continue;  // skip now fully matchable at this node
      }
      depth += sl;
      if (depth == len) {
        if (nodes_[cur].value < 0) {
          nodes_[cur].value = static_cast<std::int32_t>(values_.size());
          values_.push_back(std::move(value));
          ++size_;
        } else {
          values_[static_cast<size_t>(nodes_[cur].value)] = std::move(value);
        }
        return;
      }
      const int b = detail::key_bit(key, depth) ? 1 : 0;
      if (nodes_[cur].child[b] == kNil) {
        const std::int32_t vidx = static_cast<std::int32_t>(values_.size());
        values_.push_back(std::move(value));
        ++size_;
        const std::uint32_t chain = make_chain(key, depth + 1, len, vidx);
        nodes_[cur].child[b] = chain;  // after make_chain: no stale refs
        return;
      }
      cur = nodes_[cur].child[b];
      ++depth;
    }
  }

  /// Longest-prefix match: the value of the most specific stored prefix
  /// containing `addr`, or nullopt when nothing matches.
  [[nodiscard]] std::optional<V> lookup(const Addr& addr) const {
    ensure_stride();
    const std::int32_t idx = lookup_index(detail::lpm_key(addr),
                                          detail::lpm_key_bits(addr));
    if (idx < 0) return std::nullopt;
    return values_[static_cast<size_t>(idx)];
  }

  /// Batch lookup: `out[i]` receives the LPM result for `addrs[i]`.
  /// Equivalent to calling lookup() per element; one call site for the
  /// attribution loops and a single place to add prefetching later.
  void lookup_batch(std::span<const Addr> addrs,
                    std::span<std::optional<V>> out) const {
    ensure_stride();
    for (size_t i = 0; i < addrs.size(); ++i) {
      const std::int32_t idx = lookup_index(detail::lpm_key(addrs[i]),
                                            detail::lpm_key_bits(addrs[i]));
      out[i] = idx < 0 ? std::nullopt
                       : std::optional<V>(values_[static_cast<size_t>(idx)]);
    }
  }

  [[nodiscard]] std::vector<std::optional<V>> lookup_batch(
      std::span<const Addr> addrs) const {
    std::vector<std::optional<V>> out(addrs.size());
    lookup_batch(addrs, out);
    return out;
  }

  /// Exact-match lookup at a specific prefix.
  [[nodiscard]] std::optional<V> at(const Prefix& prefix) const {
    const auto key = detail::lpm_key(prefix.address());
    const int len = prefix.length();
    std::uint32_t cur = 0;
    int depth = 0;
    for (;;) {
      const Node& n = nodes_[cur];
      if (n.skip_len > len - depth) return std::nullopt;
      if (n.skip_len > 0 &&
          detail::key_extract(key, depth, n.skip_len) !=
              (n.skip & (~std::uint64_t{0} << (64 - n.skip_len))))
        return std::nullopt;
      depth += n.skip_len;
      if (depth == len) {
        if (n.value < 0) return std::nullopt;
        return values_[static_cast<size_t>(n.value)];
      }
      const std::uint32_t c = n.child[detail::key_bit(key, depth) ? 1 : 0];
      if (c == kNil) return std::nullopt;
      cur = c;
      ++depth;
    }
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Arena footprint, for tests and capacity planning.
  [[nodiscard]] size_t node_count() const { return nodes_.size(); }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    std::uint64_t skip = 0;  // left-aligned compressed path bits
    std::uint32_t child[2] = {kNil, kNil};
    std::int32_t value = -1;  // index into values_, -1 = none
    std::uint8_t skip_len = 0;  // 0..64
  };

  using Key = decltype(detail::lpm_key(std::declval<Addr>()));

  [[nodiscard]] std::int32_t lookup_index(const Key& key, int max_bits) const {
    std::uint32_t cur = 0;
    int depth = 0;
    std::int32_t best = -1;
    if (!stride_.empty()) {
      const StrideEntry& e =
          stride_[static_cast<size_t>(key[0] >> (64 - kStrideBits))];
      best = e.best;
      if (e.node == kNil) return best;
      cur = e.node;
      depth = e.depth;
    }
    for (;;) {
      const Node& n = nodes_[cur];
      if (n.skip_len > 0) {
        if (n.skip_len > max_bits - depth ||
            detail::key_extract(key, depth, n.skip_len) !=
                (n.skip & (~std::uint64_t{0} << (64 - n.skip_len))))
          return best;
        depth += n.skip_len;
      }
      if (n.value >= 0) best = n.value;
      if (depth >= max_bits) return best;
      const std::uint32_t c = n.child[detail::key_bit(key, depth) ? 1 : 0];
      if (c == kNil) return best;
      cur = c;
      ++depth;
    }
  }

  /// Split node `idx` so its skip becomes its first `common` bits; the
  /// remainder (branch bit + tail) moves to a freshly arena-allocated
  /// child. Parent links stay valid because `idx` keeps its slot.
  void split(std::uint32_t idx, int common) {
    Node upper = nodes_[idx];
    Node lower = upper;
    const int bb = ((upper.skip >> (63 - common)) & 1) != 0 ? 1 : 0;
    lower.skip = common + 1 >= 64 ? 0 : upper.skip << (common + 1);
    lower.skip_len = static_cast<std::uint8_t>(upper.skip_len - common - 1);
    const auto lower_idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(lower);
    Node& n = nodes_[idx];
    n.skip_len = static_cast<std::uint8_t>(common);
    n.skip = common == 0 ? 0 : upper.skip & (~std::uint64_t{0} << (64 - common));
    n.child[bb] = lower_idx;
    n.child[1 - bb] = kNil;
    n.value = -1;
  }

  /// Arena-allocate a path carrying bits [pos, len) of `key` ending in a
  /// node that stores `vidx`. At most ceil((len-pos)/65) nodes (a skip is
  /// capped at 64 bits; the link to a continuation node consumes one more).
  std::uint32_t make_chain(const Key& key, int pos, int len,
                           std::int32_t vidx) {
    Node n;
    const int sl = std::min(64, len - pos);
    n.skip = detail::key_extract(key, pos, sl);
    n.skip_len = static_cast<std::uint8_t>(sl);
    pos += sl;
    if (pos == len) {
      n.value = vidx;
    } else {
      const int b = detail::key_bit(key, pos) ? 1 : 0;
      n.child[b] = make_chain(key, pos + 1, len, vidx);
    }
    nodes_.push_back(n);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  // ---------------------------------------------------------- stride table
  static constexpr int kStrideBits = 14;
  // Below this size the plain walk is already cheap; don't pay the table.
  static constexpr size_t kStrideMinPrefixes = 64;

  struct StrideEntry {
    std::uint32_t node;  // where the walk resumes; kNil = dead end
    std::int32_t best;   // best value index accumulated above `node`
    std::uint8_t depth;  // trie depth at which `node`'s processing begins
  };

  void ensure_stride() const {
    if (!stride_dirty_) return;
    stride_dirty_ = false;
    if (size_ < kStrideMinPrefixes) {
      stride_.clear();
      return;
    }
    stride_.assign(size_t{1} << kStrideBits, StrideEntry{kNil, -1, 0});
    build_stride(0, 0, 0, -1);
  }

  /// Fill every slot whose top-`kStrideBits` address bits are consistent
  /// with reaching `node` at depth `d` along path `p` (the d low bits of
  /// p), with `best` accumulated strictly above the node.
  void build_stride(std::uint32_t node, int d, std::uint32_t p,
                    std::int32_t best) const {
    const Node& n = nodes_[node];
    const int nd = d + n.skip_len;
    if (nd >= kStrideBits) {
      // The walk restarted at (node, d) re-verifies the skip itself, so
      // every slot under path p shares this entry — both the slots that
      // match the skip and the ones that diverge inside it.
      fill_stride(p, d, StrideEntry{node, best, static_cast<std::uint8_t>(d)});
      return;
    }
    if (n.skip_len > 0) {
      // Slots that diverge from the address path inside this node's skip
      // stay on this default entry; the recursion below overwrites the
      // slots that match the skip.
      fill_stride(p, d, StrideEntry{node, best, static_cast<std::uint8_t>(d)});
    }
    const std::uint32_t p2 =
        n.skip_len == 0
            ? p
            : (p << n.skip_len) |
                  static_cast<std::uint32_t>(n.skip >> (64 - n.skip_len));
    const std::int32_t best2 = n.value >= 0 ? n.value : best;
    for (int b = 0; b < 2; ++b) {
      const std::uint32_t p3 = (p2 << 1) | static_cast<std::uint32_t>(b);
      if (n.child[b] == kNil)
        fill_stride(p3, nd + 1, StrideEntry{kNil, best2, 0});
      else
        build_stride(n.child[b], nd + 1, p3, best2);
    }
  }

  void fill_stride(std::uint32_t p, int d, StrideEntry e) const {
    const size_t lo = size_t{p} << (kStrideBits - d);
    const size_t hi = size_t{p + 1} << (kStrideBits - d);
    for (size_t s = lo; s < hi; ++s) stride_[s] = e;
  }

  std::vector<Node> nodes_;
  std::vector<V> values_;
  size_t size_ = 0;
  mutable std::vector<StrideEntry> stride_;
  mutable bool stride_dirty_ = true;
};

template <typename V>
using LpmTrie4 = LpmTrie<IPv4Addr, Prefix4, V>;
template <typename V>
using LpmTrie6 = LpmTrie<IPv6Addr, Prefix6, V>;

}  // namespace nbv6::net
