// Longest-prefix-match binary tries for IPv4 and IPv6.
//
// The BGP table that attributes resource addresses to cloud providers
// (cloud/bgp_table.h) needs LPM over hundreds of synthetic route
// announcements. A path-less binary trie keyed on address bits is simple,
// correct, and plenty fast at this scale; a production FIB would compress
// paths, but correctness is what the tests lean on (they compare against a
// linear-scan oracle).
//
// Values are stored by copy. Inserting at an existing (address, length)
// replaces the stored value.
#pragma once

#include <memory>
#include <optional>

#include "net/ip.h"
#include "net/prefix.h"

namespace nbv6::net {

namespace detail {

/// Bit accessor shared by both key widths: returns bit `i` (MSB-first) of
/// an address.
inline bool key_bit(const IPv4Addr& a, int i) { return a.bit(i); }
inline bool key_bit(const IPv6Addr& a, int i) { return a.bit(i); }

}  // namespace detail

/// Binary LPM trie generic over (Addr, Prefix, V).
///
/// `Prefix` must expose address()/length(); `Addr` must expose bit(i).
template <typename Addr, typename Prefix, typename V>
class LpmTrie {
 public:
  LpmTrie() : root_(std::make_unique<Node>()) {}

  /// Insert or replace the value at `prefix`.
  void insert(const Prefix& prefix, V value) {
    Node* node = root_.get();
    for (int i = 0; i < prefix.length(); ++i) {
      auto& child = detail::key_bit(prefix.address(), i) ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// Longest-prefix match: the value of the most specific stored prefix
  /// containing `addr`, or nullopt when nothing matches.
  [[nodiscard]] std::optional<V> lookup(const Addr& addr) const {
    const Node* node = root_.get();
    std::optional<V> best;
    int i = 0;
    while (node != nullptr) {
      if (node->value) best = node->value;
      if (i >= max_bits()) break;
      const auto& child = detail::key_bit(addr, i) ? node->one : node->zero;
      node = child.get();
      ++i;
    }
    return best;
  }

  /// Exact-match lookup at a specific prefix.
  [[nodiscard]] std::optional<V> at(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (int i = 0; i < prefix.length(); ++i) {
      const auto& child =
          detail::key_bit(prefix.address(), i) ? node->one : node->zero;
      if (!child) return std::nullopt;
      node = child.get();
    }
    return node->value;
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
    std::optional<V> value;
  };

  static constexpr int max_bits() {
    if constexpr (std::is_same_v<Addr, IPv4Addr>)
      return 32;
    else
      return 128;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

template <typename V>
using LpmTrie4 = LpmTrie<IPv4Addr, Prefix4, V>;
template <typename V>
using LpmTrie6 = LpmTrie<IPv6Addr, Prefix6, V>;

}  // namespace nbv6::net
