// Flow identification: the 5-tuple the residence monitor keys on.
//
// Mirrors what the paper's OpenWRT conntrack monitor records (§3.1): protocol
// (TCP, UDP, or ICMP), source and destination addresses and ports, and for
// ICMP the type/code/id triple instead of ports.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/ip.h"

namespace nbv6::net {

enum class Protocol : std::uint8_t { tcp = 6, udp = 17, icmp = 1 };

std::string_view to_string(Protocol p);

/// A connection-tracking key. For TCP/UDP, `src_port`/`dst_port` are the
/// transport ports; for ICMP they carry type/code and the echo identifier
/// respectively, matching how conntrack disambiguates ICMP "flows".
struct FlowKey {
  Protocol protocol = Protocol::tcp;
  IpAddr src;
  IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  [[nodiscard]] Family family() const { return src.family(); }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
  friend std::strong_ordering operator<=>(const FlowKey& a, const FlowKey& b);
};

/// Fused 5-tuple hash: the whole key is folded through three (IPv4) or
/// five (IPv6) 128-bit multiply-fold rounds instead of a per-byte loop.
/// Never returns 0, so flat tables can use 0 as their empty-slot marker.
/// This is the hash of the flow-ingest hot path (engine::FlatConntrack).
std::uint64_t fused_flow_hash(const FlowKey& k) noexcept;

/// Hash for unordered containers keyed by FlowKey. Delegates to
/// fused_flow_hash so the std::unordered_map and flat-table paths agree.
struct FlowKeyHash {
  size_t operator()(const FlowKey& k) const noexcept {
    return static_cast<size_t>(fused_flow_hash(k));
  }
};

}  // namespace nbv6::net
