// Flow identification: the 5-tuple the residence monitor keys on.
//
// Mirrors what the paper's OpenWRT conntrack monitor records (§3.1): protocol
// (TCP, UDP, or ICMP), source and destination addresses and ports, and for
// ICMP the type/code/id triple instead of ports.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/ip.h"

namespace nbv6::net {

enum class Protocol : std::uint8_t { tcp = 6, udp = 17, icmp = 1 };

std::string_view to_string(Protocol p);

/// A connection-tracking key. For TCP/UDP, `src_port`/`dst_port` are the
/// transport ports; for ICMP they carry type/code and the echo identifier
/// respectively, matching how conntrack disambiguates ICMP "flows".
struct FlowKey {
  Protocol protocol = Protocol::tcp;
  IpAddr src;
  IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  [[nodiscard]] Family family() const { return src.family(); }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
  friend std::strong_ordering operator<=>(const FlowKey& a, const FlowKey& b);
};

/// Hash for unordered containers keyed by FlowKey.
struct FlowKeyHash {
  size_t operator()(const FlowKey& k) const noexcept;
};

}  // namespace nbv6::net
