#include "flowmon/export.h"

#include <charconv>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace nbv6::flowmon {
namespace {

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (start <= line.size()) {
    size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

template <typename T>
std::optional<T> parse_num(std::string_view s) {
  T v{};
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<net::Protocol> parse_proto(std::string_view s) {
  if (s == "tcp") return net::Protocol::tcp;
  if (s == "udp") return net::Protocol::udp;
  if (s == "icmp") return net::Protocol::icmp;
  return std::nullopt;
}

}  // namespace

FlowRecord anonymize(const FlowRecord& record, const net::CryptoPan& cpan) {
  FlowRecord out = record;
  out.key.src = cpan.anonymize_paper_policy(record.key.src);
  out.key.dst = cpan.anonymize_paper_policy(record.key.dst);
  return out;
}

std::vector<FlowRecord> anonymize_batch(std::span<const FlowRecord> records,
                                        const net::CryptoPan& cpan) {
  // Gather endpoints into one address batch (src, dst interleaved), run
  // them through the cache-amortized batch anonymizer, scatter back.
  std::vector<net::IpAddr> addrs;
  addrs.reserve(2 * records.size());
  for (const auto& r : records) {
    addrs.push_back(r.key.src);
    addrs.push_back(r.key.dst);
  }
  std::vector<net::IpAddr> anon(addrs.size());
  cpan.anonymize_paper_policy_batch(addrs, anon);

  std::vector<FlowRecord> out(records.begin(), records.end());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].key.src = anon[2 * i];
    out[i].key.dst = anon[2 * i + 1];
  }
  return out;
}

std::string serialize(const FlowRecord& r) {
  std::ostringstream out;
  out << net::to_string(r.key.protocol) << '\t' << r.key.src.to_string()
      << '\t' << r.key.src_port << '\t' << r.key.dst.to_string() << '\t'
      << r.key.dst_port << '\t' << r.start << '\t' << r.end << '\t'
      << r.bytes_out << '\t' << r.bytes_in << '\t' << r.packets_out << '\t'
      << r.packets_in << '\t'
      << (r.scope == Scope::external ? "external" : "internal");
  return out.str();
}

std::optional<FlowRecord> deserialize(std::string_view line) {
  auto f = split_tabs(line);
  if (f.size() != 12) return std::nullopt;

  FlowRecord r;
  auto proto = parse_proto(f[0]);
  auto src = net::IpAddr::parse(f[1]);
  auto sport = parse_num<std::uint16_t>(f[2]);
  auto dst = net::IpAddr::parse(f[3]);
  auto dport = parse_num<std::uint16_t>(f[4]);
  auto start = parse_num<Timestamp>(f[5]);
  auto end = parse_num<Timestamp>(f[6]);
  auto bytes_out = parse_num<std::uint64_t>(f[7]);
  auto bytes_in = parse_num<std::uint64_t>(f[8]);
  auto pkts_out = parse_num<std::uint64_t>(f[9]);
  auto pkts_in = parse_num<std::uint64_t>(f[10]);
  if (!proto || !src || !sport || !dst || !dport || !start || !end ||
      !bytes_out || !bytes_in || !pkts_out || !pkts_in) {
    return std::nullopt;
  }
  if (f[11] == "external")
    r.scope = Scope::external;
  else if (f[11] == "internal")
    r.scope = Scope::internal;
  else
    return std::nullopt;
  // Mixed-family flows don't exist; reject them at the wire.
  if (src->family() != dst->family()) return std::nullopt;

  r.key.protocol = *proto;
  r.key.src = *src;
  r.key.src_port = *sport;
  r.key.dst = *dst;
  r.key.dst_port = *dport;
  r.start = *start;
  r.end = *end;
  r.bytes_out = *bytes_out;
  r.bytes_in = *bytes_in;
  r.packets_out = *pkts_out;
  r.packets_in = *pkts_in;
  return r;
}

void Exporter::add(const FlowRecord& record) {
  queue_[record.day()].push_back(record);
}

DailyExport Exporter::flush_day(int day) {
  DailyExport batch;
  batch.day = day;
  auto it = queue_.find(day);
  if (it == queue_.end()) return batch;
  batch.records = anonymize_batch(it->second, cpan_);
  queue_.erase(it);
  return batch;
}

std::vector<int> Exporter::pending_days() const {
  std::vector<int> days;
  days.reserve(queue_.size());
  for (const auto& [day, _] : queue_) days.push_back(day);
  return days;
}

size_t Exporter::pending_records() const {
  size_t n = 0;
  for (const auto& [_, records] : queue_) n += records.size();
  return n;
}

void Exporter::write(std::ostream& out, const DailyExport& batch) {
  out << "# day " << batch.day << '\n';
  for (const auto& r : batch.records) out << serialize(r) << '\n';
}

std::optional<DailyExport> Exporter::read(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  DailyExport batch;
  if (line.rfind("# day ", 0) != 0) return std::nullopt;
  auto day = parse_num<int>(std::string_view(line).substr(6));
  if (!day) return std::nullopt;
  batch.day = *day;
  while (in.peek() != '#' && std::getline(in, line)) {
    if (line.empty()) continue;
    auto r = deserialize(line);
    if (!r) return std::nullopt;
    batch.records.push_back(*r);
  }
  return batch;
}

}  // namespace nbv6::flowmon
