#include "flowmon/monitor.h"

namespace nbv6::flowmon {

std::string_view to_string(Scope s) {
  return s == Scope::external ? "external" : "internal";
}

FlowMonitor::FlowMonitor(ConntrackTable& table, bool retain_records)
    : retain_records_(retain_records) {
  attach(table);
}

ConntrackListener FlowMonitor::make_listener() {
  ConntrackListener listener;
  listener.on_new = [this](const net::FlowKey&, Timestamp) { ++new_events_; };
  listener.on_destroy = [this](const FlowRecord& r) {
    ++destroy_events_;
    ingest(r);
  };
  return listener;
}

void FlowMonitor::merge(const FlowMonitor& o) {
  for (size_t i = 0; i < totals_.size(); ++i) totals_[i] += o.totals_[i];
  for (size_t i = 0; i < daily_.size(); ++i)
    for (const auto& [day, split] : o.daily_[i]) daily_[i][day] += split;
  for (const auto& [hour, split] : o.hourly_external_)
    hourly_external_[hour] += split;
  for (const auto& [addr, tally] : o.dest_external_)
    dest_external_[addr] += tally;
  new_events_ += o.new_events_;
  destroy_events_ += o.destroy_events_;
  if (retain_records_)
    records_.insert(records_.end(), o.records_.begin(), o.records_.end());
}

void FlowMonitor::ingest(const FlowRecord& r) {
  const bool v6 = r.family() == net::Family::v6;
  Tally t{r.total_bytes(), 1};

  auto& total = totals_[index(r.scope)];
  auto& daily = daily_[index(r.scope)][r.day()];
  if (v6) {
    total.v6 += t;
    daily.v6 += t;
  } else {
    total.v4 += t;
    daily.v4 += t;
  }

  if (r.scope == Scope::external) {
    int hour = static_cast<int>(r.start / kSecondsPerHour);
    auto& hourly = hourly_external_[hour];
    if (v6)
      hourly.v6 += t;
    else
      hourly.v4 += t;
    dest_external_[r.key.dst] += t;
  }

  if (retain_records_) records_.push_back(r);
}

std::vector<double> FlowMonitor::daily_v6_fractions(Scope s,
                                                    bool by_bytes) const {
  std::vector<double> out;
  for (const auto& [day, split] : daily_[index(s)]) {
    double f = by_bytes ? split.v6_byte_fraction() : split.v6_flow_fraction();
    if (f >= 0.0) out.push_back(f);
  }
  return out;
}

std::vector<double> FlowMonitor::hourly_v6_fraction_series(
    bool by_bytes) const {
  std::vector<double> out;
  if (hourly_external_.empty()) return out;
  int first = hourly_external_.begin()->first;
  int last = hourly_external_.rbegin()->first;
  double prev = 0.0;
  for (int h = first; h <= last; ++h) {
    auto it = hourly_external_.find(h);
    if (it != hourly_external_.end()) {
      double f = by_bytes ? it->second.v6_byte_fraction()
                          : it->second.v6_flow_fraction();
      if (f >= 0.0) prev = f;
    }
    out.push_back(prev);
  }
  return out;
}

std::vector<DestTally> FlowMonitor::destination_tallies() const {
  std::vector<DestTally> out;
  out.reserve(dest_external_.size());
  for (const auto& [addr, tally] : dest_external_)
    out.push_back({addr, tally});
  return out;
}

}  // namespace nbv6::flowmon
