// Connection-tracking table with NEW/DESTROY event delivery.
//
// Models the Linux conntrack facility the paper's router monitor subscribes
// to (§3.1): flows are opened (NEW), accumulate per-direction byte and
// packet counters while live (nf_conntrack_acct), and emit a DESTROY event
// carrying the final counters when closed or when the idle timeout garbage-
// collects them. Listeners (the FlowMonitor) receive both events.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "flowmon/flow_record.h"
#include "net/flow.h"

namespace nbv6::flowmon {

/// Event callbacks. NEW carries only the key and time; DESTROY carries the
/// completed record.
struct ConntrackListener {
  std::function<void(const net::FlowKey&, Timestamp)> on_new;
  std::function<void(const FlowRecord&)> on_destroy;
};

class ConntrackTable {
 public:
  /// `idle_timeout` in seconds: flows with no activity for this long are
  /// evicted on the next sweep, as real conntrack does.
  explicit ConntrackTable(Timestamp idle_timeout = 600)
      : idle_timeout_(idle_timeout) {}

  void subscribe(ConntrackListener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Open a flow. Opening an existing live flow is a no-op (packets of a
  /// tracked connection don't re-fire NEW).
  void open(const net::FlowKey& key, Timestamp now, Scope scope);

  /// Account traffic on a live flow. Opens the flow implicitly if unknown
  /// (conntrack mid-stream pickup). Returns false if the key had to be
  /// implicitly opened.
  bool account(const net::FlowKey& key, Timestamp now, std::uint64_t bytes_out,
               std::uint64_t bytes_in, std::uint64_t pkts_out = 0,
               std::uint64_t pkts_in = 0, Scope scope = Scope::external);

  /// Close a flow now, emitting DESTROY. Returns false if unknown.
  bool close(const net::FlowKey& key, Timestamp now);

  /// Evict flows idle past the timeout. Returns number evicted.
  size_t sweep(Timestamp now);

  /// Close everything (end of capture).
  void flush(Timestamp now);

  [[nodiscard]] size_t live_count() const { return live_.size(); }

 private:
  struct Live {
    FlowRecord record;
    Timestamp last_activity = 0;
  };

  void emit_destroy(const FlowRecord& r);

  Timestamp idle_timeout_;
  std::unordered_map<net::FlowKey, Live, net::FlowKeyHash> live_;
  std::vector<ConntrackListener> listeners_;
};

}  // namespace nbv6::flowmon
