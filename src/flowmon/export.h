// Flow-log export: the router-to-server data path of §3.1 and §A.
//
// Each residence router uploads its day's flow records. Before anything
// leaves the router, endpoint addresses are anonymized with CryptoPAN under
// the paper's policy (IPv4: scramble the low 8 bits; IPv6: the low /64),
// which preserves prefixes so AS- and domain-level aggregation still work
// downstream. Records serialize to a line-oriented text format (one record
// per line, tab-separated) that round-trips exactly.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "flowmon/flow_record.h"
#include "net/cryptopan.h"

namespace nbv6::flowmon {

/// Anonymize one record's endpoints in place (paper policy). Ports,
/// counters, and timestamps are unchanged — they carry no identity.
FlowRecord anonymize(const FlowRecord& record, const net::CryptoPan& cpan);

/// Anonymize a whole batch through CryptoPan's batch entry point: endpoint
/// addresses across the batch share prefixes (one residence, few remote
/// /24s), so the PRF cache amortizes the AES work across records.
std::vector<FlowRecord> anonymize_batch(std::span<const FlowRecord> records,
                                        const net::CryptoPan& cpan);

/// Serialize one record to a single line (no trailing newline):
/// proto \t src \t sport \t dst \t dport \t start \t end \t
/// bytes_out \t bytes_in \t pkts_out \t pkts_in \t scope
std::string serialize(const FlowRecord& record);

/// Parse a line produced by serialize(). Returns nullopt on any malformed
/// field (wrong column count, bad address, bad number).
std::optional<FlowRecord> deserialize(std::string_view line);

/// A day's upload batch.
struct DailyExport {
  int day = 0;
  std::vector<FlowRecord> records;
};

/// Collects records by day and produces anonymized, serialized uploads —
/// the piece that runs on the router.
class Exporter {
 public:
  explicit Exporter(const net::CryptoPan::Secret& secret) : cpan_(secret) {}

  /// Queue a record (typically from a ConntrackTable DESTROY callback).
  void add(const FlowRecord& record);

  /// Anonymized batch for `day` (records whose start falls on that day),
  /// removing them from the queue. Empty batch if none.
  DailyExport flush_day(int day);

  /// All days currently queued, ascending.
  [[nodiscard]] std::vector<int> pending_days() const;

  [[nodiscard]] size_t pending_records() const;

  /// Write a batch in the wire format (one line per record, preceded by a
  /// "# day N" header line).
  static void write(std::ostream& out, const DailyExport& batch);

  /// Read one batch back (server side).
  static std::optional<DailyExport> read(std::istream& in);

 private:
  net::CryptoPan cpan_;
  std::map<int, std::vector<FlowRecord>> queue_;
};

}  // namespace nbv6::flowmon
