// FlowMonitor: the router-side aggregation the paper's measurement runs on.
//
// Subscribes to a ConntrackTable and incrementally maintains exactly the
// aggregates §3 reports on:
//   - per-(day, scope, family) byte and flow tallies (Table 1, Fig. 1),
//   - per-(hour, family) external tallies (the MSTL series of Fig. 2),
//   - per-destination-address external tallies (the AS- and domain-level
//     service analysis of §3.4, Figs. 3/4/17).
//
// Aggregation is streaming: the monitor never retains raw flow records
// unless asked (tests do), mirroring the privacy posture of the real
// deployment where only flow summaries leave the router.
#pragma once

#include <array>
#include <map>
#include <vector>

#include "flowmon/conntrack.h"
#include "flowmon/flow_record.h"
#include "net/ip.h"

namespace nbv6::flowmon {

/// Byte and flow counters for one (family) cell.
struct Tally {
  std::uint64_t bytes = 0;
  std::uint64_t flows = 0;

  Tally& operator+=(const Tally& o) {
    bytes += o.bytes;
    flows += o.flows;
    return *this;
  }

  friend bool operator==(const Tally&, const Tally&) = default;
};

/// v4/v6 split of a tally with the fraction helpers every table needs.
struct FamilySplit {
  Tally v4;
  Tally v6;

  [[nodiscard]] std::uint64_t total_bytes() const { return v4.bytes + v6.bytes; }
  [[nodiscard]] std::uint64_t total_flows() const { return v4.flows + v6.flows; }
  /// Fraction of bytes that are IPv6; nullopt-like -1 when no traffic.
  [[nodiscard]] double v6_byte_fraction() const {
    auto t = total_bytes();
    return t == 0 ? -1.0 : static_cast<double>(v6.bytes) / static_cast<double>(t);
  }
  [[nodiscard]] double v6_flow_fraction() const {
    auto t = total_flows();
    return t == 0 ? -1.0 : static_cast<double>(v6.flows) / static_cast<double>(t);
  }

  FamilySplit& operator+=(const FamilySplit& o) {
    v4 += o.v4;
    v6 += o.v6;
    return *this;
  }

  friend bool operator==(const FamilySplit&, const FamilySplit&) = default;
};

/// Per-destination tally; family is implied by the address.
struct DestTally {
  net::IpAddr addr;
  Tally tally;

  friend bool operator==(const DestTally& a, const DestTally& b) {
    return a.addr == b.addr && a.tally == b.tally;
  }
};

class FlowMonitor {
 public:
  /// A detached monitor: aggregates only, no table. Used as the reduction
  /// target when merging shard monitors into a fleet view, and by attach().
  explicit FlowMonitor(bool retain_records = false)
      : retain_records_(retain_records) {}

  /// Wires the monitor into `table`. `retain_records` keeps every record
  /// (tests and small runs only).
  explicit FlowMonitor(ConntrackTable& table, bool retain_records = false);

  /// Subscribe this monitor to any conntrack-shaped table (ConntrackTable,
  /// engine::FlatConntrack, ...). The table must not outlive the monitor,
  /// and the monitor must not be moved while attached (the listener holds
  /// a pointer to it); moving it *after* the table is gone is fine.
  template <typename Table>
  void attach(Table& table) {
    table.subscribe(make_listener());
  }

  /// Fold another monitor's aggregates into this one. Associative and
  /// commutative over the counter state (all sums), so any reduction tree
  /// over shard monitors yields bit-identical totals/daily/hourly views.
  /// Records are appended in call order when both monitors retain them.
  void merge(const FlowMonitor& other);

  // --- aggregate views -----------------------------------------------

  /// Overall totals for one scope.
  [[nodiscard]] const FamilySplit& totals(Scope s) const {
    return totals_[index(s)];
  }

  /// Day-indexed series for one scope (sorted by day).
  [[nodiscard]] const std::map<int, FamilySplit>& daily(Scope s) const {
    return daily_[index(s)];
  }

  /// Daily IPv6 fractions for one scope, skipping empty days. `by_bytes`
  /// selects byte- vs flow-fractions. This is the Figure 1 series and the
  /// "daily mean (s.d.)" column of Table 1.
  [[nodiscard]] std::vector<double> daily_v6_fractions(Scope s,
                                                       bool by_bytes) const;

  /// Hour-indexed external series (hour = absolute hour since epoch).
  [[nodiscard]] const std::map<int, FamilySplit>& hourly_external() const {
    return hourly_external_;
  }

  /// Hourly external IPv6 fraction series over [first, last] hours present,
  /// with gaps filled by carrying the previous value (MSTL needs a regular
  /// series). Empty when no external traffic.
  [[nodiscard]] std::vector<double> hourly_v6_fraction_series(
      bool by_bytes) const;

  /// Per-destination external tallies (unordered).
  [[nodiscard]] std::vector<DestTally> destination_tallies() const;

  /// Total external traffic bytes (both families).
  [[nodiscard]] std::uint64_t external_bytes() const {
    return totals(Scope::external).total_bytes();
  }

  [[nodiscard]] const std::vector<FlowRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t new_events() const { return new_events_; }
  [[nodiscard]] std::uint64_t destroy_events() const { return destroy_events_; }

 private:
  static size_t index(Scope s) { return s == Scope::external ? 0 : 1; }
  ConntrackListener make_listener();
  void ingest(const FlowRecord& r);

  bool retain_records_;
  std::array<FamilySplit, 2> totals_{};
  std::array<std::map<int, FamilySplit>, 2> daily_{};
  std::map<int, FamilySplit> hourly_external_;
  std::map<net::IpAddr, Tally> dest_external_;
  std::vector<FlowRecord> records_;
  std::uint64_t new_events_ = 0;
  std::uint64_t destroy_events_ = 0;
};

}  // namespace nbv6::flowmon
