#include "flowmon/conntrack.h"

namespace nbv6::flowmon {

void ConntrackTable::open(const net::FlowKey& key, Timestamp now, Scope scope) {
  auto [it, inserted] = live_.try_emplace(key);
  if (!inserted) return;
  it->second.record.key = key;
  it->second.record.start = now;
  it->second.record.scope = scope;
  it->second.last_activity = now;
  for (const auto& l : listeners_)
    if (l.on_new) l.on_new(key, now);
}

bool ConntrackTable::account(const net::FlowKey& key, Timestamp now,
                             std::uint64_t bytes_out, std::uint64_t bytes_in,
                             std::uint64_t pkts_out, std::uint64_t pkts_in,
                             Scope scope) {
  auto it = live_.find(key);
  bool known = it != live_.end();
  if (!known) {
    open(key, now, scope);
    it = live_.find(key);
  }
  auto& rec = it->second.record;
  rec.bytes_out += bytes_out;
  rec.bytes_in += bytes_in;
  // When the caller doesn't model packets, approximate one packet per
  // 1400 bytes (full-ish MTU) so packet counters stay plausible.
  rec.packets_out += pkts_out > 0 ? pkts_out : (bytes_out + 1399) / 1400;
  rec.packets_in += pkts_in > 0 ? pkts_in : (bytes_in + 1399) / 1400;
  it->second.last_activity = now;
  return known;
}

bool ConntrackTable::close(const net::FlowKey& key, Timestamp now) {
  auto it = live_.find(key);
  if (it == live_.end()) return false;
  it->second.record.end = now;
  emit_destroy(it->second.record);
  live_.erase(it);
  return true;
}

size_t ConntrackTable::sweep(Timestamp now) {
  size_t evicted = 0;
  for (auto it = live_.begin(); it != live_.end();) {
    if (now - it->second.last_activity >= idle_timeout_) {
      it->second.record.end = it->second.last_activity;
      emit_destroy(it->second.record);
      it = live_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

void ConntrackTable::flush(Timestamp now) {
  for (auto& [key, live] : live_) {
    live.record.end = now;
    emit_destroy(live.record);
  }
  live_.clear();
}

void ConntrackTable::emit_destroy(const FlowRecord& r) {
  for (const auto& l : listeners_)
    if (l.on_destroy) l.on_destroy(r);
}

}  // namespace nbv6::flowmon
