// Flow records: what the residence router's monitor exports.
//
// One record per conntrack DESTROY event, carrying the 5-tuple, lifetime,
// and per-direction byte/packet counters (the nf_conntrack_acct data the
// paper's monitor reads, §3.1).
#pragma once

#include <cstdint>
#include <string>

#include "net/flow.h"

namespace nbv6::flowmon {

/// Seconds since an arbitrary epoch; the traffic generator uses seconds
/// since its simulation start.
using Timestamp = std::int64_t;

constexpr Timestamp kSecondsPerDay = 86400;
constexpr Timestamp kSecondsPerHour = 3600;

/// LAN-to-WAN vs LAN-to-LAN, the two scopes of Table 1.
enum class Scope : std::uint8_t { external, internal };

std::string_view to_string(Scope s);

struct FlowRecord {
  net::FlowKey key;
  Timestamp start = 0;
  Timestamp end = 0;
  /// Originator-to-responder ("out") and responder-to-originator ("in").
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t packets_in = 0;
  Scope scope = Scope::external;

  [[nodiscard]] std::uint64_t total_bytes() const {
    return bytes_out + bytes_in;
  }
  [[nodiscard]] net::Family family() const { return key.family(); }
  [[nodiscard]] int day() const {
    return static_cast<int>(start / kSecondsPerDay);
  }
  [[nodiscard]] int hour_of_day() const {
    return static_cast<int>((start % kSecondsPerDay) / kSecondsPerHour);
  }
};

}  // namespace nbv6::flowmon
