#include "dns/resolver.h"

#include <algorithm>

namespace nbv6::dns {

std::string_view to_string(ResolveStatus s) {
  switch (s) {
    case ResolveStatus::ok:
      return "ok";
    case ResolveStatus::nodata:
      return "nodata";
    case ResolveStatus::nxdomain:
      return "nxdomain";
    case ResolveStatus::cname_loop:
      return "cname_loop";
  }
  return "?";
}

ResolveResult Resolver::resolve(std::string_view name,
                                net::Family family) const {
  ResolveResult r;
  // The chain walk never owns intermediate names: after the initial
  // canonicalization, `current` is a view into the zone's own storage
  // (stable while the const resolver runs), so each CNAME hop costs one
  // heterogeneous map probe (ZoneDb::lookup answers existence, CNAME, and
  // terminal record sets in a single find) instead of several probes and a
  // std::string round-trip. Only the reported chain materializes strings.
  const std::string first = canonicalize(name);
  std::string_view current = first;
  r.chain.emplace_back(first);

  for (int hop = 0; hop <= kMaxChain; ++hop) {
    const ZoneDb::NameView view = db_->lookup(current);
    if (!view.exists) {
      r.status = ResolveStatus::nxdomain;
      return r;
    }
    if (!view.cname.empty()) {
      // Loop detection: a repeated name means the chain cycles.
      if (std::find(r.chain.begin(), r.chain.end(), view.cname) !=
          r.chain.end()) {
        r.status = ResolveStatus::cname_loop;
        return r;
      }
      current = view.cname;
      r.chain.emplace_back(current);
      continue;
    }
    // Terminal name: collect addresses of the requested family.
    if (family == net::Family::v4) {
      r.addresses.reserve(view.a->size());
      for (auto a : *view.a) r.addresses.emplace_back(a);
    } else {
      r.addresses.reserve(view.aaaa->size());
      for (const auto& a : *view.aaaa) r.addresses.emplace_back(a);
    }
    r.status = r.addresses.empty() ? ResolveStatus::nodata : ResolveStatus::ok;
    return r;
  }
  r.status = ResolveStatus::cname_loop;
  return r;
}

Resolver::DualStack Resolver::resolve_dual(std::string_view name) const {
  DualStack d;
  d.v4 = resolve(name, net::Family::v4);
  d.v6 = resolve(name, net::Family::v6);
  return d;
}

}  // namespace nbv6::dns
