#include "dns/resolver.h"

#include <algorithm>

namespace nbv6::dns {

std::string_view to_string(ResolveStatus s) {
  switch (s) {
    case ResolveStatus::ok:
      return "ok";
    case ResolveStatus::nodata:
      return "nodata";
    case ResolveStatus::nxdomain:
      return "nxdomain";
    case ResolveStatus::cname_loop:
      return "cname_loop";
  }
  return "?";
}

ResolveResult Resolver::resolve(std::string_view name,
                                net::Family family) const {
  ResolveResult r;
  std::string current = canonicalize(name);
  r.chain.push_back(current);

  for (int hop = 0; hop <= kMaxChain; ++hop) {
    if (!db_->exists(current)) {
      r.status = ResolveStatus::nxdomain;
      return r;
    }
    std::string target = db_->cname(current);
    if (!target.empty()) {
      // Loop detection: a repeated name means the chain cycles.
      if (std::find(r.chain.begin(), r.chain.end(), target) != r.chain.end()) {
        r.status = ResolveStatus::cname_loop;
        return r;
      }
      current = target;
      r.chain.push_back(current);
      continue;
    }
    // Terminal name: collect addresses of the requested family.
    if (family == net::Family::v4) {
      for (auto a : db_->a_records(current)) r.addresses.emplace_back(a);
    } else {
      for (const auto& a : db_->aaaa_records(current))
        r.addresses.emplace_back(a);
    }
    r.status = r.addresses.empty() ? ResolveStatus::nodata : ResolveStatus::ok;
    return r;
  }
  r.status = ResolveStatus::cname_loop;
  return r;
}

Resolver::DualStack Resolver::resolve_dual(std::string_view name) const {
  DualStack d;
  d.v4 = resolve(name, net::Family::v4);
  d.v6 = resolve(name, net::Family::v6);
  return d;
}

}  // namespace nbv6::dns
