// A stub resolver over a ZoneDb.
//
// Follows CNAME chains (bounded, loop-safe), distinguishes NXDOMAIN (name
// owns nothing anywhere on the chain) from NODATA (name exists but lacks
// the queried type) — the distinction §4.2's loading-failure taxonomy
// needs — and reports the chain itself, which the cloud service
// identification of §5.3 mines for service suffixes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dns/zone.h"
#include "net/ip.h"

namespace nbv6::dns {

enum class ResolveStatus : std::uint8_t {
  ok,          ///< at least one address of the requested family
  nodata,      ///< terminal name exists but has no record of this type
  nxdomain,    ///< some name on the chain does not exist at all
  cname_loop,  ///< CNAME chain exceeded the hop limit or looped
};

std::string_view to_string(ResolveStatus s);

struct ResolveResult {
  ResolveStatus status = ResolveStatus::nxdomain;
  /// Addresses of the requested family at the chain's terminal name.
  std::vector<net::IpAddr> addresses;
  /// Names traversed, starting with the canonicalized query name and
  /// ending with the terminal (non-CNAME) name.
  std::vector<std::string> chain;

  [[nodiscard]] bool ok() const { return status == ResolveStatus::ok; }
  /// Terminal name of the chain (canonical), or empty if none.
  [[nodiscard]] std::string terminal() const {
    return chain.empty() ? std::string{} : chain.back();
  }
};

class Resolver {
 public:
  explicit Resolver(const ZoneDb& db) : db_(&db) {}

  /// Resolve `name` for the requested family, following CNAMEs.
  [[nodiscard]] ResolveResult resolve(std::string_view name,
                                      net::Family family) const;

  /// Convenience wrappers.
  [[nodiscard]] ResolveResult resolve_a(std::string_view name) const {
    return resolve(name, net::Family::v4);
  }
  [[nodiscard]] ResolveResult resolve_aaaa(std::string_view name) const {
    return resolve(name, net::Family::v6);
  }

  /// Dual-stack view of one name, the unit of §4's classification.
  struct DualStack {
    ResolveResult v4;
    ResolveResult v6;
    [[nodiscard]] bool has_v4() const { return v4.ok(); }
    [[nodiscard]] bool has_v6() const { return v6.ok(); }
    /// Reachable over at least one family.
    [[nodiscard]] bool reachable() const { return has_v4() || has_v6(); }
  };
  [[nodiscard]] DualStack resolve_dual(std::string_view name) const;

  /// Maximum CNAME hops before declaring a loop (mirrors common resolver
  /// limits).
  static constexpr int kMaxChain = 16;

 private:
  const ZoneDb* db_;
};

}  // namespace nbv6::dns
