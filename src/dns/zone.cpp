#include "dns/zone.h"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <utility>

namespace nbv6::dns {

std::string_view to_string(RecordType t) {
  switch (t) {
    case RecordType::a:
      return "A";
    case RecordType::aaaa:
      return "AAAA";
    case RecordType::cname:
      return "CNAME";
  }
  return "?";
}

std::string canonicalize(std::string_view name) {
  if (!name.empty() && name.back() == '.') name.remove_suffix(1);
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool is_canonical(std::string_view name) {
  if (!name.empty() && name.back() == '.') return false;
  return std::none_of(name.begin(), name.end(),
                      [](unsigned char c) { return c >= 'A' && c <= 'Z'; });
}

std::uint64_t ZoneDb::hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint32_t ZoneDb::find_index(std::string_view canon) const {
  if (slots_.empty()) return kNoEntry;
  const std::size_t mask = slots_.size() - 1;
  std::size_t s = hash_name(canon) & mask;
  while (slots_[s] != 0) {
    const std::uint32_t idx = slots_[s] - 1;
    if (entries_[idx].name == canon) return idx;
    s = (s + 1) & mask;
  }
  return kNoEntry;
}

const ZoneDb::Entry* ZoneDb::find_entry(std::string_view name) const {
  const std::uint32_t idx =
      is_canonical(name) ? find_index(name) : find_index(canonicalize(name));
  return idx == kNoEntry ? nullptr : &entries_[idx];
}

void ZoneDb::grow_slots() {
  const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
  slots_.assign(cap, 0);
  const std::size_t mask = cap - 1;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    std::size_t s = hash_name(entries_[i].name) & mask;
    while (slots_[s] != 0) s = (s + 1) & mask;
    slots_[s] = i + 1;
  }
}

ZoneDb::Entry& ZoneDb::intern(std::string canon) {
  // Keep load under 3/4 so probe chains stay short.
  if ((entries_.size() + 1) * 4 > slots_.size() * 3) grow_slots();
  const std::size_t mask = slots_.size() - 1;
  std::size_t s = hash_name(canon) & mask;
  while (slots_[s] != 0) {
    Entry& e = entries_[slots_[s] - 1];
    if (e.name == canon) return e;
    s = (s + 1) & mask;
  }
  Entry e;
  e.name = std::move(canon);
  entries_.push_back(std::move(e));
  slots_[s] = static_cast<std::uint32_t>(entries_.size());
  sorted_valid_ = false;
  return entries_.back();
}

void ZoneDb::erase_entry(std::uint32_t idx) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t s = hash_name(entries_[idx].name) & mask;
  while (slots_[s] != idx + 1) s = (s + 1) & mask;

  // Backward-shift deletion: refill the hole with any later chain member
  // that is still reachable from its ideal slot through the hole, so no
  // probe sequence ever crosses an empty slot to reach its entry.
  slots_[s] = 0;
  std::size_t j = s;
  while (true) {
    j = (j + 1) & mask;
    if (slots_[j] == 0) break;
    const std::size_t ideal = hash_name(entries_[slots_[j] - 1].name) & mask;
    if (((j - ideal) & mask) >= ((j - s) & mask)) {
      slots_[s] = slots_[j];
      slots_[j] = 0;
      s = j;
    }
  }

  // Swap-pop the dense store; the moved entry's slot gets its new index.
  const std::uint32_t last = static_cast<std::uint32_t>(entries_.size()) - 1;
  if (idx != last) {
    entries_[idx] = std::move(entries_[last]);
    std::size_t t = hash_name(entries_[idx].name) & mask;
    while (slots_[t] != last + 1) t = (t + 1) & mask;
    slots_[t] = idx + 1;
  }
  entries_.pop_back();
  sorted_valid_ = false;
}

void ZoneDb::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_.resize(entries_.size());
  std::iota(sorted_.begin(), sorted_.end(), 0u);
  std::sort(sorted_.begin(), sorted_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return entries_[a].name < entries_[b].name;
            });
  sorted_valid_ = true;
}

bool ZoneDb::add_a(std::string_view name, net::IPv4Addr addr) {
  auto& e = intern(canonicalize(name));
  if (!e.cname.empty()) return false;
  if (std::find(e.a.begin(), e.a.end(), addr) == e.a.end()) e.a.push_back(addr);
  return true;
}

bool ZoneDb::add_aaaa(std::string_view name, net::IPv6Addr addr) {
  auto& e = intern(canonicalize(name));
  if (!e.cname.empty()) return false;
  if (std::find(e.aaaa.begin(), e.aaaa.end(), addr) == e.aaaa.end())
    e.aaaa.push_back(addr);
  return true;
}

bool ZoneDb::add_cname(std::string_view name, std::string_view target) {
  auto& e = intern(canonicalize(name));
  if (!e.a.empty() || !e.aaaa.empty()) return false;
  if (!e.cname.empty() && e.cname != canonicalize(target)) return false;
  e.cname = canonicalize(target);
  return true;
}

size_t ZoneDb::remove(std::string_view name, RecordType type) {
  const std::uint32_t idx =
      is_canonical(name) ? find_index(name) : find_index(canonicalize(name));
  if (idx == kNoEntry) return 0;
  Entry& e = entries_[idx];
  size_t removed = 0;
  switch (type) {
    case RecordType::a:
      removed = e.a.size();
      e.a.clear();
      break;
    case RecordType::aaaa:
      removed = e.aaaa.size();
      e.aaaa.clear();
      break;
    case RecordType::cname:
      removed = e.cname.empty() ? 0 : 1;
      e.cname.clear();
      break;
  }
  if (e.empty()) erase_entry(idx);
  return removed;
}

std::vector<net::IPv4Addr> ZoneDb::a_records(std::string_view name) const {
  const Entry* e = find_entry(name);
  return e == nullptr ? std::vector<net::IPv4Addr>{} : e->a;
}

std::vector<net::IPv6Addr> ZoneDb::aaaa_records(std::string_view name) const {
  const Entry* e = find_entry(name);
  return e == nullptr ? std::vector<net::IPv6Addr>{} : e->aaaa;
}

std::string ZoneDb::cname(std::string_view name) const {
  return std::string(cname_view(name));
}

std::string_view ZoneDb::cname_view(std::string_view name) const {
  const Entry* e = find_entry(name);
  return e == nullptr ? std::string_view{} : std::string_view(e->cname);
}

bool ZoneDb::exists(std::string_view name) const {
  return find_entry(name) != nullptr;
}

ZoneDb::NameView ZoneDb::lookup(std::string_view name) const {
  const Entry* e = find_entry(name);
  if (e == nullptr) return {};
  return {true, std::string_view(e->cname), &e->a, &e->aaaa};
}

}  // namespace nbv6::dns
