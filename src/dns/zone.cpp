#include "dns/zone.h"

#include <algorithm>
#include <cctype>

namespace nbv6::dns {

std::string_view to_string(RecordType t) {
  switch (t) {
    case RecordType::a:
      return "A";
    case RecordType::aaaa:
      return "AAAA";
    case RecordType::cname:
      return "CNAME";
  }
  return "?";
}

std::string canonicalize(std::string_view name) {
  if (!name.empty() && name.back() == '.') name.remove_suffix(1);
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool is_canonical(std::string_view name) {
  if (!name.empty() && name.back() == '.') return false;
  return std::none_of(name.begin(), name.end(),
                      [](unsigned char c) { return c >= 'A' && c <= 'Z'; });
}

const ZoneDb::Entry* ZoneDb::find_entry(std::string_view name) const {
  if (is_canonical(name)) {
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second;
  }
  auto it = entries_.find(canonicalize(name));
  return it == entries_.end() ? nullptr : &it->second;
}

bool ZoneDb::add_a(std::string_view name, net::IPv4Addr addr) {
  auto& e = entries_[canonicalize(name)];
  if (!e.cname.empty()) return false;
  if (std::find(e.a.begin(), e.a.end(), addr) == e.a.end()) e.a.push_back(addr);
  return true;
}

bool ZoneDb::add_aaaa(std::string_view name, net::IPv6Addr addr) {
  auto& e = entries_[canonicalize(name)];
  if (!e.cname.empty()) return false;
  if (std::find(e.aaaa.begin(), e.aaaa.end(), addr) == e.aaaa.end())
    e.aaaa.push_back(addr);
  return true;
}

bool ZoneDb::add_cname(std::string_view name, std::string_view target) {
  auto canon = canonicalize(name);
  auto& e = entries_[canon];
  if (!e.a.empty() || !e.aaaa.empty()) return false;
  if (!e.cname.empty() && e.cname != canonicalize(target)) return false;
  e.cname = canonicalize(target);
  return true;
}

size_t ZoneDb::remove(std::string_view name, RecordType type) {
  auto it = entries_.find(canonicalize(name));
  if (it == entries_.end()) return 0;
  size_t removed = 0;
  switch (type) {
    case RecordType::a:
      removed = it->second.a.size();
      it->second.a.clear();
      break;
    case RecordType::aaaa:
      removed = it->second.aaaa.size();
      it->second.aaaa.clear();
      break;
    case RecordType::cname:
      removed = it->second.cname.empty() ? 0 : 1;
      it->second.cname.clear();
      break;
  }
  if (it->second.empty()) entries_.erase(it);
  return removed;
}

std::vector<net::IPv4Addr> ZoneDb::a_records(std::string_view name) const {
  const Entry* e = find_entry(name);
  return e == nullptr ? std::vector<net::IPv4Addr>{} : e->a;
}

std::vector<net::IPv6Addr> ZoneDb::aaaa_records(std::string_view name) const {
  const Entry* e = find_entry(name);
  return e == nullptr ? std::vector<net::IPv6Addr>{} : e->aaaa;
}

std::string ZoneDb::cname(std::string_view name) const {
  return std::string(cname_view(name));
}

std::string_view ZoneDb::cname_view(std::string_view name) const {
  const Entry* e = find_entry(name);
  return e == nullptr ? std::string_view{} : std::string_view(e->cname);
}

bool ZoneDb::exists(std::string_view name) const {
  return find_entry(name) != nullptr;
}

ZoneDb::NameView ZoneDb::lookup(std::string_view name) const {
  const Entry* e = find_entry(name);
  if (e == nullptr) return {};
  return {true, std::string_view(e->cname), &e->a, &e->aaaa};
}

}  // namespace nbv6::dns
