// In-memory DNS zone database.
//
// The synthetic stand-in for the live DNS the paper's crawler queries: the
// web universe (web/universe.h) registers A, AAAA, and CNAME records here,
// and the crawler + cloud analyses resolve against it. Names are normalized
// to lowercase without a trailing dot.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/ip.h"

namespace nbv6::dns {

enum class RecordType : std::uint8_t { a, aaaa, cname };

std::string_view to_string(RecordType t);

/// Lowercase, strip one trailing dot. DNS names in this codebase are always
/// stored in this canonical form.
std::string canonicalize(std::string_view name);

/// A zone database mapping owner names to records. Multiple A/AAAA records
/// per name are allowed (round-robin sets); at most one CNAME per name, and
/// a name with a CNAME may hold no other records (RFC 1034 §3.6.2).
class ZoneDb {
 public:
  /// All three add more-or-less what you expect; each returns false (and
  /// changes nothing) when the RFC 1034 CNAME-exclusivity rule would be
  /// violated.
  bool add_a(std::string_view name, net::IPv4Addr addr);
  bool add_aaaa(std::string_view name, net::IPv6Addr addr);
  bool add_cname(std::string_view name, std::string_view target);

  /// Remove every record of `type` at `name`. Returns number removed.
  size_t remove(std::string_view name, RecordType type);

  [[nodiscard]] std::vector<net::IPv4Addr> a_records(std::string_view name) const;
  [[nodiscard]] std::vector<net::IPv6Addr> aaaa_records(std::string_view name) const;
  /// CNAME target, or empty string if none.
  [[nodiscard]] std::string cname(std::string_view name) const;

  /// True when the name owns any record at all.
  [[nodiscard]] bool exists(std::string_view name) const;

  [[nodiscard]] size_t name_count() const { return entries_.size(); }

  /// Visit every name in the database (canonical form, sorted).
  template <typename Fn>
  void for_each_name(Fn&& fn) const {
    for (const auto& [name, entry] : entries_) fn(name);
  }

 private:
  struct Entry {
    std::vector<net::IPv4Addr> a;
    std::vector<net::IPv6Addr> aaaa;
    std::string cname;  // empty = none
    [[nodiscard]] bool empty() const {
      return a.empty() && aaaa.empty() && cname.empty();
    }
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace nbv6::dns
