// In-memory DNS zone database.
//
// The synthetic stand-in for the live DNS the paper's crawler queries: the
// web universe (web/universe.h) registers A, AAAA, and CNAME records here,
// and the crawler + cloud analyses resolve against it. Names are normalized
// to lowercase without a trailing dot.
//
// Storage is an interning store: entries live in one dense vector and an
// open-addressing slot table (linear probing over FNV-1a name hashes) maps
// canonical names to entry indices. Resolution chains probe the flat table
// instead of walking a red-black tree — BM_DnsResolveChain's hot path is a
// hash and a few contiguous slot reads per hop rather than O(log n)
// pointer-chasing string compares. The sorted iteration order
// for_each_name has always promised is preserved via a lazily rebuilt
// sorted index.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/ip.h"

namespace nbv6::dns {

enum class RecordType : std::uint8_t { a, aaaa, cname };

std::string_view to_string(RecordType t);

/// Lowercase, strip one trailing dot. DNS names in this codebase are always
/// stored in this canonical form.
std::string canonicalize(std::string_view name);

/// True when canonicalize(name) == name, i.e. no uppercase letters and no
/// trailing dot. Lookups on canonical names take the allocation-free path.
bool is_canonical(std::string_view name);

/// A zone database mapping owner names to records. Multiple A/AAAA records
/// per name are allowed (round-robin sets); at most one CNAME per name, and
/// a name with a CNAME may hold no other records (RFC 1034 §3.6.2).
class ZoneDb {
 public:
  /// All three add more-or-less what you expect; each returns false (and
  /// changes nothing) when the RFC 1034 CNAME-exclusivity rule would be
  /// violated.
  bool add_a(std::string_view name, net::IPv4Addr addr);
  bool add_aaaa(std::string_view name, net::IPv6Addr addr);
  bool add_cname(std::string_view name, std::string_view target);

  /// Remove every record of `type` at `name`. Returns number removed.
  size_t remove(std::string_view name, RecordType type);

  [[nodiscard]] std::vector<net::IPv4Addr> a_records(std::string_view name) const;
  [[nodiscard]] std::vector<net::IPv6Addr> aaaa_records(std::string_view name) const;
  /// CNAME target, or empty string if none.
  [[nodiscard]] std::string cname(std::string_view name) const;
  /// CNAME target as a view into the zone's own storage (empty if none).
  /// Valid until the zone is modified — the resolver's chain walk uses this
  /// to follow hops without allocating a std::string per hop.
  [[nodiscard]] std::string_view cname_view(std::string_view name) const;

  /// True when the name owns any record at all.
  [[nodiscard]] bool exists(std::string_view name) const;

  /// Everything one resolution hop needs from a single table probe. Views
  /// and pointers reference the zone's own storage: valid until the zone
  /// is modified.
  struct NameView {
    bool exists = false;
    std::string_view cname;                     ///< empty = none
    const std::vector<net::IPv4Addr>* a = nullptr;     ///< null iff !exists
    const std::vector<net::IPv6Addr>* aaaa = nullptr;  ///< null iff !exists
  };
  [[nodiscard]] NameView lookup(std::string_view name) const;

  [[nodiscard]] size_t name_count() const { return entries_.size(); }

  /// Visit every name in the database (canonical form, sorted).
  template <typename Fn>
  void for_each_name(Fn&& fn) const {
    ensure_sorted();
    for (std::uint32_t idx : sorted_) fn(entries_[idx].name);
  }

 private:
  struct Entry {
    std::string name;  ///< canonical owner name (the interned key)
    std::vector<net::IPv4Addr> a;
    std::vector<net::IPv6Addr> aaaa;
    std::string cname;  // empty = none
    [[nodiscard]] bool empty() const {
      return a.empty() && aaaa.empty() && cname.empty();
    }
  };

  static constexpr std::uint32_t kNoEntry = 0xffffffffu;

  static std::uint64_t hash_name(std::string_view name);

  /// Heterogeneous lookup: canonical names (the overwhelmingly common case
  /// — every stored record and every CNAME target is canonical) probe the
  /// slot table directly from the string_view; only non-canonical queries
  /// pay for a canonicalized copy.
  [[nodiscard]] const Entry* find_entry(std::string_view name) const;
  [[nodiscard]] std::uint32_t find_index(std::string_view canon) const;

  /// Find-or-insert the entry for an already-canonical name.
  Entry& intern(std::string canon);
  /// Rebuild the slot table at double capacity (or the initial 16).
  void grow_slots();
  /// Swap-pop `idx` out of the dense store, patching both affected slots
  /// (backward-shift deletion keeps every probe chain intact).
  void erase_entry(std::uint32_t idx);

  void ensure_sorted() const;

  /// Dense record store; erasure swap-pops, so indices are not stable.
  std::vector<Entry> entries_;
  /// Open-addressing table: entry index + 1, 0 = empty. Power-of-two size,
  /// linear probing, grown past 3/4 load.
  std::vector<std::uint32_t> slots_;
  /// Entry indices in name order, rebuilt lazily after mutations — keeps
  /// for_each_name's sorted contract without ordering the hot path.
  mutable std::vector<std::uint32_t> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace nbv6::dns
