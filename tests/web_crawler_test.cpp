#include <gtest/gtest.h>

#include "core/server_analysis.h"
#include "web/classify.h"
#include "web/crawler.h"
#include "web/metrics.h"
#include "web/universe.h"

namespace nbv6::web {
namespace {

UniverseConfig small_config() {
  UniverseConfig cfg;
  cfg.site_count = 1200;
  cfg.seed = 777;
  return cfg;
}

class CrawlerTest : public ::testing::Test {
 protected:
  CrawlerTest()
      : universe_(small_config(), providers_),
        zone_(universe_.build_zone(Epoch::jul2025)),
        crawler_(universe_, zone_, Epoch::jul2025) {}

  cloud::ProviderCatalog providers_;
  Universe universe_;
  dns::ZoneDb zone_;
  Crawler crawler_;
};

TEST_F(CrawlerTest, CrawlMatchesSiteFate) {
  stats::Rng rng(1);
  for (std::uint32_t i = 0; i < 200; ++i) {
    auto crawl = crawler_.crawl(i, rng);
    EXPECT_EQ(crawl.fate,
              universe_.fate(universe_.sites()[i], Epoch::jul2025));
  }
}

TEST_F(CrawlerTest, OkCrawlLoadsResources) {
  stats::Rng rng(2);
  int ok = 0;
  for (std::uint32_t i = 0; i < 300; ++i) {
    auto crawl = crawler_.crawl(i, rng);
    if (crawl.fate != SiteFate::ok) continue;
    ++ok;
    EXPECT_FALSE(crawl.resources.empty()) << i;
    EXPECT_GE(crawl.pages_loaded, 1);
    EXPECT_LE(crawl.pages_loaded, 6);  // main + up to 5 clicks
    EXPECT_FALSE(crawl.main_host.empty());
  }
  EXPECT_GT(ok, 200);
}

TEST_F(CrawlerTest, ResourcesAreDeduplicated) {
  stats::Rng rng(3);
  for (std::uint32_t i = 0; i < 100; ++i) {
    auto crawl = crawler_.crawl(i, rng);
    std::set<std::pair<std::uint32_t, int>> seen;
    for (const auto& r : crawl.resources) {
      auto key = std::pair{r.fqdn, static_cast<int>(r.type)};
      EXPECT_TRUE(seen.insert(key).second) << "dup resource on site " << i;
    }
  }
}

TEST_F(CrawlerTest, FirstPartyDetectionUsesEtld1) {
  stats::Rng rng(4);
  for (std::uint32_t i = 0; i < 150; ++i) {
    auto crawl = crawler_.crawl(i, rng);
    if (crawl.fate != SiteFate::ok || crawl.unknown_primary) continue;
    const auto& site_tenant =
        universe_.tenants()[universe_.sites()[i].tenant];
    for (const auto& r : crawl.resources) {
      bool same_tenant =
          universe_.fqdns()[r.fqdn].tenant == universe_.sites()[i].tenant;
      EXPECT_EQ(r.first_party, same_tenant)
          << universe_.fqdns()[r.fqdn].name << " on " << site_tenant.etld1;
    }
  }
}

TEST_F(CrawlerTest, MainPageOnlySeesSubsetOfResources) {
  for (std::uint32_t i = 0; i < 100; ++i) {
    stats::Rng rng1(50 + i), rng2(50 + i);
    auto full = crawler_.crawl(i, rng1);
    auto main_only = crawler_.crawl_main_page_only(i, rng2);
    if (full.fate != SiteFate::ok) continue;
    EXPECT_LE(main_only.resources.size(), full.resources.size());
    EXPECT_EQ(main_only.pages_loaded, 1);
  }
}

TEST_F(CrawlerTest, DualStackResourcesPreferV6) {
  stats::Rng rng(5);
  int dual = 0, used_v6 = 0;
  for (std::uint32_t i = 0; i < 300; ++i) {
    auto crawl = crawler_.crawl(i, rng);
    for (const auto& r : crawl.resources) {
      if (r.has_a && r.has_aaaa) {
        ++dual;
        used_v6 += r.used == net::Family::v6;
      } else if (r.has_a) {
        EXPECT_EQ(r.used, net::Family::v4);
      }
    }
  }
  ASSERT_GT(dual, 100);
  // Happy Eyeballs: v6 nearly always wins for dual-stack fetches.
  EXPECT_GT(static_cast<double>(used_v6) / dual, 0.98);
}

// ------------------------------------------------------------ classify

TEST_F(CrawlerTest, ClassificationPartitionIsExact) {
  auto survey = core::run_server_survey(universe_, Epoch::jul2025, 9);
  const auto& c = survey.counts;
  EXPECT_EQ(c.total, 1200);
  EXPECT_EQ(c.total, c.nxdomain + c.other_failure + c.connection_success);
  EXPECT_EQ(c.connection_success,
            c.unknown_primary + c.ipv4_only + c.aaaa_enabled);
  EXPECT_EQ(c.aaaa_enabled, c.ipv6_partial + c.ipv6_full);
  EXPECT_EQ(c.ipv6_full,
            c.full_browser_used_v4 + c.full_browser_used_v6_only);
}

TEST_F(CrawlerTest, FullSitesHaveNoV4OnlyResources) {
  auto survey = core::run_server_survey(universe_, Epoch::jul2025, 10);
  for (size_t i = 0; i < survey.crawls.size(); ++i) {
    const auto& cls = survey.classifications[i];
    if (cls.cls == SiteClass::ipv6_full) {
      EXPECT_EQ(cls.v4only_resources, 0);
    }
    if (cls.cls == SiteClass::ipv6_partial) {
      EXPECT_GT(cls.v4only_resources, 0);
      EXPECT_GT(cls.v4only_fraction, 0.0);
      EXPECT_LE(cls.v4only_fraction, 1.0);
    }
  }
}

TEST_F(CrawlerTest, Ipv4OnlySitesLackMainAaaa) {
  auto survey = core::run_server_survey(universe_, Epoch::jul2025, 11);
  for (size_t i = 0; i < survey.crawls.size(); ++i) {
    if (survey.classifications[i].cls == SiteClass::ipv4_only) {
      EXPECT_FALSE(survey.crawls[i].main_has_aaaa);
    }
  }
}

TEST_F(CrawlerTest, AdoptionGrowsAcrossEpochs) {
  auto oct = core::run_server_survey(universe_, Epoch::oct2024, 12);
  auto jul = core::run_server_survey(universe_, Epoch::jul2025, 12);
  EXPECT_GE(jul.counts.pct_of_success(jul.counts.aaaa_enabled),
            oct.counts.pct_of_success(oct.counts.aaaa_enabled));
  EXPECT_GE(jul.counts.nxdomain, oct.counts.nxdomain);
}

TEST_F(CrawlerTest, TopNBreakdownGradient) {
  auto survey = core::run_server_survey(universe_, Epoch::jul2025, 13);
  std::vector<int> ns{100, 1200};
  auto rows = core::topn_breakdown(universe_, survey, ns);
  ASSERT_EQ(rows.size(), 2u);
  // Top-100 sites should be more IPv6-ready than the whole list.
  EXPECT_GT(rows[0].pct_full + rows[0].pct_partial,
            rows[1].pct_full + rows[1].pct_partial);
}

TEST_F(CrawlerTest, LinkClickAblationFindsMoreFullSitesMainOnly) {
  auto ab = core::link_click_ablation(universe_, Epoch::jul2025, 14);
  // Fewer pages -> fewer chances to hit an IPv4-only resource.
  EXPECT_GE(ab.pct_full_main_only, ab.pct_full_with_clicks);
}

// ------------------------------------------------------------ metrics

TEST_F(CrawlerTest, SpanAnalysisInvariants) {
  auto survey = core::run_server_survey(universe_, Epoch::jul2025, 15);
  SpanAnalysis span(universe_, survey.crawls, survey.classifications);

  EXPECT_EQ(span.partial_sites().size(),
            static_cast<size_t>(survey.counts.ipv6_partial));

  int prev = INT32_MAX;
  for (const auto& d : span.impacts()) {
    EXPECT_LE(d.span, prev);  // sorted descending
    prev = d.span;
    EXPECT_GE(d.span, 1);
    EXPECT_GE(d.median_contribution, 0.0);
    EXPECT_LE(d.median_contribution, 1.0);
    EXPECT_LE(d.third_party_span, d.span);
  }

  // Each partial site's per-domain counts sum to its v4-only resources.
  for (const auto& site : span.partial_sites()) {
    int sum = 0;
    for (const auto& [_, n] : site.v4only_domains) sum += n;
    EXPECT_EQ(sum, site.v4only_resources);
    EXPECT_GT(site.v4only_resources, 0);
    EXPECT_LE(site.v4only_resources, site.total_resources);
  }
}

TEST_F(CrawlerTest, HeavyHittersRespectThreshold) {
  auto survey = core::run_server_survey(universe_, Epoch::jul2025, 16);
  SpanAnalysis span(universe_, survey.crawls, survey.classifications);
  auto hh = span.heavy_hitters(20);
  for (const auto& d : hh) EXPECT_GE(d.span, 20);
  // Threshold 1 returns everything.
  EXPECT_EQ(span.heavy_hitters(1).size(), span.impacts().size());
}

TEST_F(CrawlerTest, WhatIfCurveIsMonotoneAndTerminal) {
  auto survey = core::run_server_survey(universe_, Epoch::jul2025, 17);
  SpanAnalysis span(universe_, survey.crawls, survey.classifications);
  auto curve = span.whatif_adoption_curve();
  ASSERT_FALSE(curve.empty());
  int prev = 0;
  for (int v : curve) {
    EXPECT_GE(v, prev);
    prev = v;
  }
  // Enabling every IPv4-only dependency fixes every partial site.
  EXPECT_EQ(curve.back(),
            static_cast<int>(span.partial_sites().size()));
}

TEST_F(CrawlerTest, WhatIfTopDomainsFixDisproportionately) {
  auto survey = core::run_server_survey(universe_, Epoch::jul2025, 18);
  SpanAnalysis span(universe_, survey.crawls, survey.classifications);
  auto curve = span.whatif_adoption_curve();
  if (curve.size() < 100) GTEST_SKIP() << "universe too small";
  // The first 10% of domains fix more sites than the last 10%.
  size_t tenth = curve.size() / 10;
  int first = curve[tenth - 1];
  int last = curve.back() - curve[curve.size() - tenth - 1];
  EXPECT_GT(first, last);
}

TEST_F(CrawlerTest, AdsDominateHeavyHitterCategories) {
  auto survey = core::run_server_survey(universe_, Epoch::jul2025, 19);
  SpanAnalysis span(universe_, survey.crawls, survey.classifications);
  auto hh = span.heavy_hitters(10);
  if (hh.size() < 20) GTEST_SKIP() << "universe too small";
  std::map<DomainCategory, int> counts;
  for (const auto& d : hh) {
    auto cat = universe_.categorize(d.etld1);
    if (cat) ++counts[*cat];
  }
  // Ads should be the plurality category (Fig. 9's headline).
  int ads = counts[DomainCategory::ads];
  for (const auto& [cat, n] : counts) {
    if (cat == DomainCategory::ads) continue;
    EXPECT_GE(ads, n) << "category " << to_string(cat);
  }
}

}  // namespace
}  // namespace nbv6::web
