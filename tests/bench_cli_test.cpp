// The shared experiment-harness flag grammar (bench/bench_cli.h): one
// parser, one --help, and the deprecated env-var fallback path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_cli.h"

namespace {

using nbv6::bench::Cli;

/// argv builder: keeps the strings alive and hands out char* the way
/// main() receives them.
struct Argv {
  explicit Argv(std::vector<std::string> args) : store(std::move(args)) {
    ptrs.push_back(const_cast<char*>("prog"));
    for (auto& a : store) ptrs.push_back(a.data());
  }
  int argc() { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> store;
  std::vector<char*> ptrs;
};

TEST(BenchCli, ParsesEqualsAndSpaceForms) {
  int n = 1;
  std::uint64_t seed = 0;
  double frac = 0.0;
  std::string name = "default";
  Cli cli("t", "test");
  cli.flag_int("n", &n, "");
  cli.flag_u64("seed", &seed, "");
  cli.flag_double("frac", &frac, "");
  cli.flag_string("name", &name, "");
  Argv a({"--n=42", "--seed", "123456789012345", "--frac=0.25", "--name",
          "abc"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(n, 42);
  EXPECT_EQ(seed, 123456789012345ull);
  EXPECT_DOUBLE_EQ(frac, 0.25);
  EXPECT_EQ(name, "abc");
}

TEST(BenchCli, BoolFlagsBareAndExplicit) {
  bool on = false;
  bool off = true;
  Cli cli("t", "test");
  cli.flag_bool("on", &on, "");
  cli.flag_bool("off", &off, "");
  Argv a({"--on", "--off=false"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_TRUE(on);
  EXPECT_FALSE(off);
}

TEST(BenchCli, UnknownFlagFailsWithExitCode2) {
  Cli cli("t", "test");
  Argv a({"--nope=1"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.exit_code(), 2);
}

TEST(BenchCli, MalformedValueFails) {
  int n = 0;
  Cli cli("t", "test");
  cli.flag_int("n", &n, "");
  Argv a({"--n=not_a_number"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.exit_code(), 2);
}

TEST(BenchCli, MissingValueFails) {
  int n = 0;
  Cli cli("t", "test");
  cli.flag_int("n", &n, "");
  Argv a({"--n"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.exit_code(), 2);
}

TEST(BenchCli, HelpReturnsFalseWithExitCode0) {
  Cli cli("t", "test");
  Argv a({"--help"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.exit_code(), 0);
}

TEST(BenchCli, PositionalsConsumeInOrder) {
  std::string first = "f-default";
  std::string second = "s-default";
  Cli cli("t", "test");
  cli.positional("first", &first, "");
  cli.positional("second", &second, "");
  Argv a({"one"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(first, "one");
  EXPECT_EQ(second, "s-default");  // optional: default survives

  Argv b({"one", "two", "three"});
  Cli cli2("t", "test");
  cli2.positional("first", &first, "");
  cli2.positional("second", &second, "");
  EXPECT_FALSE(cli2.parse(b.argc(), b.argv()));  // third has no slot
  EXPECT_EQ(cli2.exit_code(), 2);
}

TEST(BenchCli, DeprecatedEnvAppliesWhenFlagAbsent) {
  ::setenv("NBV6_TEST_CLI_N", "77", 1);
  int n = 1;
  Cli cli("t", "test");
  cli.flag_int("n", &n, "", "NBV6_TEST_CLI_N");
  Argv a({});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(n, 77);
  ::unsetenv("NBV6_TEST_CLI_N");
}

TEST(BenchCli, FlagBeatsDeprecatedEnv) {
  ::setenv("NBV6_TEST_CLI_N", "77", 1);
  int n = 1;
  Cli cli("t", "test");
  cli.flag_int("n", &n, "", "NBV6_TEST_CLI_N");
  Argv a({"--n=5"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(n, 5);
  ::unsetenv("NBV6_TEST_CLI_N");
}

TEST(BenchCli, MalformedEnvValueFails) {
  ::setenv("NBV6_TEST_CLI_N", "banana", 1);
  int n = 1;
  Cli cli("t", "test");
  cli.flag_int("n", &n, "", "NBV6_TEST_CLI_N");
  Argv a({});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.exit_code(), 2);
  ::unsetenv("NBV6_TEST_CLI_N");
}

}  // namespace
