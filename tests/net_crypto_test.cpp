#include <gtest/gtest.h>

#include "net/aes.h"
#include "net/cryptopan.h"
#include "stats/rng.h"

namespace nbv6::net {
namespace {

Aes128::Block hex_block(const char* hex) {
  Aes128::Block b{};
  for (int i = 0; i < 16; ++i) {
    auto nib = [&](char c) -> std::uint8_t {
      if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
      return static_cast<std::uint8_t>(c - 'a' + 10);
    };
    b[static_cast<size_t>(i)] = static_cast<std::uint8_t>(
        (nib(hex[2 * i]) << 4) | nib(hex[2 * i + 1]));
  }
  return b;
}

// FIPS-197 Appendix B: the canonical AES-128 example.
TEST(Aes128, Fips197AppendixB) {
  Aes128 aes(hex_block("2b7e151628aed2a6abf7158809cf4f3c"));
  auto ct = aes.encrypt(hex_block("3243f6a8885a308d313198a2e0370734"));
  EXPECT_EQ(ct, hex_block("3925841d02dc09fbdc118597196a0b32"));
}

// FIPS-197 Appendix C.1: sequential key/plaintext vector.
TEST(Aes128, Fips197AppendixC1) {
  Aes128 aes(hex_block("000102030405060708090a0b0c0d0e0f"));
  auto ct = aes.encrypt(hex_block("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(ct, hex_block("69c4e0d86a7b0430d8cdb78070b4c55a"));
}

// NIST SP 800-38A ECB-AES128 vector #1.
TEST(Aes128, Sp80038aEcbVector) {
  Aes128 aes(hex_block("2b7e151628aed2a6abf7158809cf4f3c"));
  auto ct = aes.encrypt(hex_block("6bc1bee22e409f96e93d7e117393172a"));
  EXPECT_EQ(ct, hex_block("3ad77bb40d7a3660a89ecaf32466ef97"));
}

TEST(Aes128, Deterministic) {
  Aes128 aes(hex_block("000102030405060708090a0b0c0d0e0f"));
  auto a = aes.encrypt(hex_block("00000000000000000000000000000000"));
  auto b = aes.encrypt(hex_block("00000000000000000000000000000000"));
  EXPECT_EQ(a, b);
}

TEST(Aes128, KeySensitivity) {
  Aes128 a(hex_block("000102030405060708090a0b0c0d0e0f"));
  Aes128 b(hex_block("010102030405060708090a0b0c0d0e0f"));
  auto pt = hex_block("00112233445566778899aabbccddeeff");
  EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

// ------------------------------------------------------------ CryptoPAN

CryptoPan::Secret test_secret(std::uint8_t fill = 0x5a) {
  CryptoPan::Secret s{};
  for (size_t i = 0; i < s.size(); ++i)
    s[i] = static_cast<std::uint8_t>(fill + i);
  return s;
}

TEST(CryptoPan, Deterministic) {
  CryptoPan cp(test_secret());
  auto a = IPv4Addr(192, 0, 2, 77);
  EXPECT_EQ(cp.anonymize(a).value(), cp.anonymize(a).value());
}

TEST(CryptoPan, DifferentKeysDiffer) {
  CryptoPan cp1(test_secret(0x11));
  CryptoPan cp2(test_secret(0x22));
  auto a = IPv4Addr(192, 0, 2, 77);
  EXPECT_NE(cp1.anonymize(a).value(), cp2.anonymize(a).value());
}

TEST(CryptoPan, PaperPolicyPreservesV4Top24Bits) {
  CryptoPan cp(test_secret());
  auto a = IPv4Addr(203, 0, 113, 200);
  auto anon = cp.anonymize_paper_policy(IpAddr{a});
  ASSERT_TRUE(anon.is_v4());
  EXPECT_EQ(anon.v4().value() >> 8, a.value() >> 8);
}

TEST(CryptoPan, PaperPolicyPreservesV6Top64Bits) {
  CryptoPan cp(test_secret());
  auto a = *IPv6Addr::parse("2001:db8:1:2:3:4:5:6");
  auto anon = cp.anonymize_paper_policy(IpAddr{a});
  ASSERT_TRUE(anon.is_v6());
  EXPECT_EQ(anon.v6().high64(), a.high64());
  EXPECT_NE(anon.v6().low64(), a.low64());  // with overwhelming probability
}

// The defining property: shared k-bit prefixes stay shared exactly.
class CryptoPanPrefixProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CryptoPanPrefixProperty, V4FullAnonymizationPreservesPrefixes) {
  CryptoPan cp(test_secret());
  stats::Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    auto a = IPv4Addr(static_cast<std::uint32_t>(rng()));
    auto b = IPv4Addr(static_cast<std::uint32_t>(rng()));
    auto ea = cp.anonymize(a).value();
    auto eb = cp.anonymize(b).value();
    std::uint32_t xor_in = a.value() ^ b.value();
    std::uint32_t xor_out = ea ^ eb;
    // Leading zero count of the XOR equals the shared prefix length, which
    // must be identical before and after.
    auto lz = [](std::uint32_t v) { return v == 0 ? 32 : __builtin_clz(v); };
    EXPECT_EQ(lz(xor_in), lz(xor_out))
        << a.to_string() << " vs " << b.to_string();
  }
}

TEST_P(CryptoPanPrefixProperty, V6Lower64PreservesPrefixes) {
  CryptoPan cp(test_secret());
  stats::Rng rng(GetParam() ^ 0x1234);
  const std::uint64_t hi = 0x20010db8'00010002ull;
  for (int trial = 0; trial < 40; ++trial) {
    auto a = IPv6Addr::from_halves(hi, rng());
    auto b = IPv6Addr::from_halves(hi, rng());
    auto ea = cp.anonymize(a, 64);
    auto eb = cp.anonymize(b, 64);
    auto lz = [](std::uint64_t v) {
      return v == 0 ? 64 : __builtin_clzll(v);
    };
    EXPECT_EQ(lz(a.low64() ^ b.low64()), lz(ea.low64() ^ eb.low64()));
    EXPECT_EQ(ea.high64(), hi);
  }
}

TEST_P(CryptoPanPrefixProperty, AnonymizationIsInjective) {
  // Prefix preservation implies injectivity on the anonymized range;
  // sample-check it.
  CryptoPan cp(test_secret());
  stats::Rng rng(GetParam() ^ 0x777);
  std::map<std::uint32_t, std::uint32_t> seen;
  for (int trial = 0; trial < 200; ++trial) {
    auto a = IPv4Addr(static_cast<std::uint32_t>(rng()));
    auto e = cp.anonymize(a).value();
    auto [it, inserted] = seen.emplace(e, a.value());
    if (!inserted) {
      EXPECT_EQ(it->second, a.value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoPanPrefixProperty,
                         ::testing::Values(7u, 99u, 2024u));

TEST(CryptoPan, ZeroBitsIsIdentity) {
  CryptoPan cp(test_secret());
  auto a = IPv4Addr(198, 51, 100, 17);
  EXPECT_EQ(cp.anonymize(a, 0).value(), a.value());
  auto b = *IPv6Addr::parse("2001:db8::42");
  EXPECT_EQ(cp.anonymize(b, 0), b);
}

// ------------------------------------------------- reference equivalence
//
// The original (seed) CryptoPAN rebuilt the whole PRF input block for
// every bit. It is re-implemented here verbatim as the oracle: the
// incremental/cached production implementation must be bit-identical.

class ReferenceCryptoPan {
 public:
  explicit ReferenceCryptoPan(const CryptoPan::Secret& secret)
      : cipher_([&secret] {
          Aes128::Key key{};
          for (int i = 0; i < 16; ++i) key[static_cast<size_t>(i)] = secret[static_cast<size_t>(i)];
          return Aes128(key);
        }()) {
    Aes128::Block raw_pad{};
    for (int i = 0; i < 16; ++i)
      raw_pad[static_cast<size_t>(i)] = secret[static_cast<size_t>(16 + i)];
    pad_ = cipher_.encrypt(raw_pad);
  }

  [[nodiscard]] std::uint32_t anonymize_v4(std::uint32_t in, int bits) const {
    const int start = 32 - bits;
    std::uint32_t out = in & (bits == 32 ? 0u : ~0u << bits);
    for (int i = start; i < 32; ++i) {
      Aes128::Block block = pad_;
      for (int j = 0; j < i; ++j) set_bit(block, j, ((in >> (31 - j)) & 1) != 0);
      std::uint32_t flip = prf_bit(block) ? 1 : 0;
      out |= (((in >> (31 - i)) & 1) ^ flip) << (31 - i);
    }
    return out;
  }

  [[nodiscard]] IPv6Addr anonymize_v6(const IPv6Addr& addr, int bits) const {
    const int start = 128 - bits;
    Aes128::Block in{};
    for (size_t i = 0; i < 16; ++i) in[i] = addr.bytes()[i];
    Aes128::Block out = in;
    for (int i = start; i < 128; ++i) {
      Aes128::Block block = pad_;
      for (int j = 0; j < i; ++j) set_bit(block, j, get_bit(in, j));
      set_bit(out, i, get_bit(in, i) ^ prf_bit(block));
    }
    IPv6Addr::Bytes result{};
    for (size_t i = 0; i < 16; ++i) result[i] = out[i];
    return IPv6Addr(result);
  }

 private:
  static void set_bit(Aes128::Block& b, int i, bool v) {
    auto byte = static_cast<size_t>(i / 8);
    int shift = 7 - i % 8;
    if (v)
      b[byte] |= static_cast<std::uint8_t>(1u << shift);
    else
      b[byte] &= static_cast<std::uint8_t>(~(1u << shift));
  }
  static bool get_bit(const Aes128::Block& b, int i) {
    return ((b[static_cast<size_t>(i / 8)] >> (7 - i % 8)) & 1) != 0;
  }
  [[nodiscard]] bool prf_bit(const Aes128::Block& block) const {
    return (cipher_.encrypt(block)[0] & 0x80) != 0;
  }

  Aes128 cipher_;
  Aes128::Block pad_{};
};

TEST(CryptoPanEquivalence, V4MatchesReferenceAllBitLengths) {
  auto secret = test_secret(0x3c);
  ReferenceCryptoPan ref(secret);
  CryptoPan cached(secret);
  CryptoPan uncached(secret, /*enable_prefix_cache=*/false);
  stats::Rng rng(555);
  for (int trial = 0; trial < 300; ++trial) {
    auto a = static_cast<std::uint32_t>(rng());
    int bits = static_cast<int>(rng.below(33));
    std::uint32_t want = ref.anonymize_v4(a, bits);
    EXPECT_EQ(cached.anonymize(IPv4Addr(a), bits).value(), want)
        << IPv4Addr(a).to_string() << "/" << bits;
    EXPECT_EQ(uncached.anonymize(IPv4Addr(a), bits).value(), want)
        << IPv4Addr(a).to_string() << "/" << bits;
  }
}

TEST(CryptoPanEquivalence, V6MatchesReferenceAllBitLengths) {
  auto secret = test_secret(0x71);
  ReferenceCryptoPan ref(secret);
  CryptoPan cached(secret);
  CryptoPan uncached(secret, /*enable_prefix_cache=*/false);
  stats::Rng rng(556);
  for (int trial = 0; trial < 60; ++trial) {
    auto a = IPv6Addr::from_halves(rng(), rng());
    int bits = static_cast<int>(rng.below(129));
    auto want = ref.anonymize_v6(a, bits);
    EXPECT_EQ(cached.anonymize(a, bits), want) << a.to_string() << "/" << bits;
    EXPECT_EQ(uncached.anonymize(a, bits), want) << a.to_string() << "/" << bits;
  }
}

TEST(CryptoPanEquivalence, CachedAndUncachedAgreeOnRepeats) {
  // Repeated and prefix-sharing addresses are exactly where the cache
  // takes over; cached results must not drift from uncached ones.
  auto secret = test_secret(0x09);
  CryptoPan cached(secret);
  CryptoPan uncached(secret, false);
  stats::Rng rng(557);
  for (int trial = 0; trial < 200; ++trial) {
    // Cluster addresses under a handful of /24s to force heavy cache reuse.
    auto a = IPv4Addr((0xC6336400u & 0xffffff00u) |
                      (static_cast<std::uint32_t>(rng.below(4)) << 8) |
                      static_cast<std::uint32_t>(rng.below(256)));
    EXPECT_EQ(cached.anonymize(a).value(), uncached.anonymize(a).value());
  }
}

TEST(CryptoPanBatch, MatchesScalarAndAmortizesPrfWork) {
  auto secret = test_secret(0x42);
  CryptoPan scalar_cp(secret);
  CryptoPan batch_cp(secret);
  stats::Rng rng(558);

  std::vector<IPv4Addr> in;
  for (int i = 0; i < 500; ++i) {
    // One /16 worth of flow endpoints — the flow-batch shape.
    in.emplace_back(0xCB007100u | static_cast<std::uint32_t>(rng.below(65536)));
  }
  std::vector<IPv4Addr> out(in.size());
  batch_cp.anonymize_batch(in, out);
  for (size_t i = 0; i < in.size(); ++i)
    EXPECT_EQ(out[i].value(), scalar_cp.anonymize(in[i]).value());

  // The batch shares the top two bytes, so cached PRF work must be far
  // below the uncached cost of 32 AES calls per address.
  CryptoPan uncached(secret, false);
  std::vector<IPv4Addr> out2(in.size());
  uncached.anonymize_batch(in, out2);
  EXPECT_EQ(out, out2);
  EXPECT_LT(batch_cp.prf_calls(), uncached.prf_calls() / 2);
}

TEST(CryptoPanBatch, SortedV6LayoutMatchesScalarOnSharedPrefixes) {
  // A randomized flow-batch shape: a handful of /64s (homes), many
  // addresses each, interleaved in arrival order with exact duplicates —
  // the access pattern the sorted batch layout reorders. Results must be
  // element-for-element identical to the scalar call in original order,
  // with and without the prefix cache.
  auto secret = test_secret(0x5A);
  CryptoPan scalar_cp(secret);
  for (std::uint64_t round = 0; round < 5; ++round) {
    stats::Rng rng(1000 + round);
    std::vector<std::uint64_t> prefixes;
    for (int p = 0; p < 6; ++p)
      prefixes.push_back(0x20010DB800000000ull | rng());
    std::vector<IPv6Addr> in;
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t hi = prefixes[rng.below(prefixes.size())];
      // Low bits from a tiny pool so exact duplicates occur often.
      in.push_back(IPv6Addr::from_halves(hi, rng.below(32)));
    }
    std::vector<IPv6Addr> out(in.size()), out_uncached(in.size());
    CryptoPan batch_cp(secret);
    batch_cp.anonymize_batch(in, out);
    CryptoPan uncached(secret, false);
    uncached.anonymize_batch(in, out_uncached);
    for (size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(out[i], scalar_cp.anonymize(in[i], 64)) << "round " << round
                                                        << " index " << i;
      EXPECT_EQ(out[i], out_uncached[i]);
    }
    // Duplicate collapse: 400 draws from ~192 distinct addresses must do
    // far fewer PRF calls than 400 independent anonymizations even before
    // the cache is considered.
    EXPECT_LT(uncached.prf_calls(), 400ull * 64ull);
  }
}

TEST(CryptoPanBatch, PaperPolicyBatchMatchesScalar) {
  auto secret = test_secret(0x77);
  CryptoPan cp(secret);
  stats::Rng rng(559);
  std::vector<IpAddr> in;
  for (int i = 0; i < 60; ++i) {
    if (i % 2 == 0)
      in.emplace_back(IPv4Addr(static_cast<std::uint32_t>(rng())));
    else
      in.emplace_back(IPv6Addr::from_halves(rng(), rng()));
  }
  std::vector<IpAddr> out(in.size());
  cp.anonymize_paper_policy_batch(in, out);
  for (size_t i = 0; i < in.size(); ++i)
    EXPECT_EQ(out[i], cp.anonymize_paper_policy(in[i]));
}

}  // namespace
}  // namespace nbv6::net
