#include "net/ip.h"

#include <gtest/gtest.h>

namespace nbv6::net {
namespace {

// ---------------------------------------------------------------- IPv4

TEST(IPv4Addr, ParsesDottedQuad) {
  auto a = IPv4Addr::parse("192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xC0000201u);
}

TEST(IPv4Addr, ParsesExtremes) {
  EXPECT_EQ(IPv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(IPv4Addr::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(IPv4Addr, RejectsMalformed) {
  EXPECT_FALSE(IPv4Addr::parse(""));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3"));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(IPv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(IPv4Addr::parse("1..2.3"));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3.4 "));
  EXPECT_FALSE(IPv4Addr::parse(" 1.2.3.4"));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3.1000"));
  EXPECT_FALSE(IPv4Addr::parse("-1.2.3.4"));
}

TEST(IPv4Addr, FormatsCanonically) {
  EXPECT_EQ(IPv4Addr(10, 0, 0, 1).to_string(), "10.0.0.1");
  EXPECT_EQ(IPv4Addr(255, 255, 255, 255).to_string(), "255.255.255.255");
}

TEST(IPv4Addr, OctetAccess) {
  IPv4Addr a(1, 2, 3, 4);
  EXPECT_EQ(a.octet(0), 1);
  EXPECT_EQ(a.octet(1), 2);
  EXPECT_EQ(a.octet(2), 3);
  EXPECT_EQ(a.octet(3), 4);
}

TEST(IPv4Addr, BitAccessMsbFirst) {
  IPv4Addr a(0x80000001u);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_FALSE(a.bit(30));
  EXPECT_TRUE(a.bit(31));
}

TEST(IPv4Addr, Ordering) {
  EXPECT_LT(IPv4Addr(1, 0, 0, 0), IPv4Addr(2, 0, 0, 0));
  EXPECT_EQ(IPv4Addr(9, 9, 9, 9), *IPv4Addr::parse("9.9.9.9"));
}

// A parameterized round-trip sweep over representative addresses.
class IPv4RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(IPv4RoundTrip, ParseFormatIdentity) {
  auto a = IPv4Addr::parse(GetParam());
  ASSERT_TRUE(a.has_value()) << GetParam();
  EXPECT_EQ(a->to_string(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Representative, IPv4RoundTrip,
                         ::testing::Values("0.0.0.0", "127.0.0.1", "8.8.8.8",
                                           "10.0.0.1", "172.16.254.3",
                                           "192.168.1.100", "203.0.113.9",
                                           "255.255.255.255", "1.2.3.4",
                                           "100.64.0.1"));

// ---------------------------------------------------------------- IPv6

TEST(IPv6Addr, ParsesFullForm) {
  auto a = IPv6Addr::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  EXPECT_EQ(a->group(7), 0x0001);
}

TEST(IPv6Addr, ParsesCompressed) {
  auto a = IPv6Addr::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  for (int i = 2; i < 7; ++i) EXPECT_EQ(a->group(i), 0) << i;
  EXPECT_EQ(a->group(7), 1);
}

TEST(IPv6Addr, ParsesLoopbackAndAny) {
  EXPECT_EQ(IPv6Addr::parse("::1")->low64(), 1u);
  EXPECT_EQ(IPv6Addr::parse("::")->low64(), 0u);
  EXPECT_EQ(IPv6Addr::parse("::")->high64(), 0u);
}

TEST(IPv6Addr, ParsesLeadingGap) {
  auto a = IPv6Addr::parse("::ffff:1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(6), 0xffff);
  EXPECT_EQ(a->group(7), 1);
}

TEST(IPv6Addr, ParsesTrailingGap) {
  auto a = IPv6Addr::parse("fe80::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0xfe80);
  EXPECT_EQ(a->low64(), 0u);
}

TEST(IPv6Addr, ParsesEmbeddedIPv4) {
  auto a = IPv6Addr::parse("::ffff:192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(5), 0xffff);
  EXPECT_EQ(a->group(6), 0xc000);
  EXPECT_EQ(a->group(7), 0x0201);
}

TEST(IPv6Addr, RejectsMalformed) {
  EXPECT_FALSE(IPv6Addr::parse(""));
  EXPECT_FALSE(IPv6Addr::parse(":"));
  EXPECT_FALSE(IPv6Addr::parse(":::"));
  EXPECT_FALSE(IPv6Addr::parse("1:2:3:4:5:6:7"));        // too few
  EXPECT_FALSE(IPv6Addr::parse("1:2:3:4:5:6:7:8:9"));    // too many
  EXPECT_FALSE(IPv6Addr::parse("1::2::3"));              // double gap
  EXPECT_FALSE(IPv6Addr::parse("12345::"));              // group too long
  EXPECT_FALSE(IPv6Addr::parse("g::1"));                 // bad hex
  EXPECT_FALSE(IPv6Addr::parse("1:2:3:4:5:6:7:8::"));    // gap with 8 groups
  EXPECT_FALSE(IPv6Addr::parse("::ffff:300.0.2.1"));     // bad v4 tail
  EXPECT_FALSE(IPv6Addr::parse("1:"));                   // trailing colon
}

TEST(IPv6Addr, FormatsRfc5952) {
  // Longest zero run compressed; leftmost wins ties; lowercase hex.
  EXPECT_EQ(IPv6Addr::parse("2001:0db8:0:0:0:0:0:1")->to_string(),
            "2001:db8::1");
  EXPECT_EQ(IPv6Addr::parse("0:0:0:0:0:0:0:0")->to_string(), "::");
  EXPECT_EQ(IPv6Addr::parse("0:0:0:0:0:0:0:1")->to_string(), "::1");
  EXPECT_EQ(IPv6Addr::parse("2001:db8:0:1:1:1:1:1")->to_string(),
            "2001:db8:0:1:1:1:1:1");  // single zero group NOT compressed
  EXPECT_EQ(IPv6Addr::parse("2001:0:0:1:0:0:0:1")->to_string(),
            "2001:0:0:1::1");  // longest run wins
  EXPECT_EQ(IPv6Addr::parse("2001:0:0:1:0:0:1:1")->to_string(),
            "2001::1:0:0:1:1");  // leftmost wins ties
  EXPECT_EQ(IPv6Addr::parse("FE80::A")->to_string(), "fe80::a");
}

TEST(IPv6Addr, FromHalvesRoundTrip) {
  auto a = IPv6Addr::from_halves(0x20010db8'00000000ull, 0x1234ull);
  EXPECT_EQ(a.high64(), 0x20010db8'00000000ull);
  EXPECT_EQ(a.low64(), 0x1234ull);
  EXPECT_EQ(a.to_string(), "2001:db8::1234");
}

TEST(IPv6Addr, BitAccess) {
  auto a = IPv6Addr::from_halves(0x8000000000000000ull, 1);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(127));
  EXPECT_FALSE(a.bit(126));
}

class IPv6RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(IPv6RoundTrip, ParseFormatIdentity) {
  auto a = IPv6Addr::parse(GetParam());
  ASSERT_TRUE(a.has_value()) << GetParam();
  EXPECT_EQ(a->to_string(), GetParam());
  // Round-trip again: formatting is a fixed point.
  auto b = IPv6Addr::parse(a->to_string());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(
    Representative, IPv6RoundTrip,
    ::testing::Values("::", "::1", "2001:db8::1", "fe80::1", "2600::",
                      "2001:db8:0:1:1:1:1:1", "2001:0:0:1::1",
                      "abcd:ef01:2345:6789:abcd:ef01:2345:6789",
                      "64:ff9b::c000:201", "2606:4700::6810:85e5"));

// ---------------------------------------------------------------- IpAddr

TEST(IpAddr, FamilyDispatch) {
  IpAddr a{IPv4Addr(1, 2, 3, 4)};
  IpAddr b{*IPv6Addr::parse("::1")};
  EXPECT_TRUE(a.is_v4());
  EXPECT_TRUE(b.is_v6());
  EXPECT_EQ(a.family(), Family::v4);
  EXPECT_EQ(b.family(), Family::v6);
  EXPECT_EQ(a.to_string(), "1.2.3.4");
  EXPECT_EQ(b.to_string(), "::1");
}

TEST(IpAddr, ParseEitherFamily) {
  EXPECT_TRUE(IpAddr::parse("10.1.1.1")->is_v4());
  EXPECT_TRUE(IpAddr::parse("2001:db8::")->is_v6());
  EXPECT_FALSE(IpAddr::parse("not-an-address"));
}

TEST(IpAddr, CrossFamilyOrderingV4First) {
  IpAddr v4{IPv4Addr(255, 255, 255, 255)};
  IpAddr v6{*IPv6Addr::parse("::")};
  EXPECT_LT(v4, v6);
  EXPECT_NE(v4, v6);
}

TEST(IpAddr, EqualitySameFamilyOnly) {
  IpAddr a{IPv4Addr(1, 1, 1, 1)};
  IpAddr b{IPv4Addr(1, 1, 1, 1)};
  IpAddr c{IPv4Addr(1, 1, 1, 2)};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FamilyNames, ToString) {
  EXPECT_EQ(to_string(Family::v4), "IPv4");
  EXPECT_EQ(to_string(Family::v6), "IPv6");
}

}  // namespace
}  // namespace nbv6::net
