// Golden-replay conformance: every committed scenario runs sample →
// timeline → simulate → analyze, serializes canonically, and must match
// the committed golden byte for byte — at 1, 4, and 8 worker lanes.
//
// This pins the entire pipeline's numeric output: the deterministic
// sampler, the per-(seed,index,day) timeline derivation, the sharded
// simulation, the monitor reduction, metric extraction, the Wilcoxon
// panels with Holm correction, and the streaming CDFs. Any refactor that
// changes a single double anywhere surfaces as a one-line diff here. The
// CI matrix runs this suite under gcc and clang in Debug and Release, so
// the goldens also assert cross-compiler, cross-optimization stability
// (the build sets -ffp-contract=off to keep that true on FMA hardware).
//
// Regenerate after an intentional behaviour change with:
//   ./build/golden_replay_test --update
// then review the golden diff like any other code change.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/fleet.h"
#include "testutil.h"
#include "traffic/service_catalog.h"

namespace {

bool g_update_goldens = false;

using nbv6::testutil::canonical_serialize;
using nbv6::testutil::first_diff;
using nbv6::testutil::run_scenario;

TEST(GoldenReplay, ScenariosExistAndParse) {
  auto files = nbv6::testutil::scenario_files();
  // The ISSUE floor: at least six committed scenario files.
  ASSERT_GE(files.size(), 6u) << "scenarios missing from "
                              << nbv6::testutil::scenarios_dir();
  for (const auto& f : files) {
    SCOPED_TRACE(f);
    auto cfg = nbv6::engine::FleetConfig::load(f);
    EXPECT_TRUE(cfg.has_value()) << "unparseable scenario: " << f;
  }
}

TEST(GoldenReplay, BitIdenticalAcrossLanesAndMatchesGolden) {
  auto catalog = nbv6::traffic::build_paper_catalog();
  auto files = nbv6::testutil::scenario_files();
  ASSERT_FALSE(files.empty());

  for (const auto& file : files) {
    const std::string stem = nbv6::testutil::scenario_stem(file);
    SCOPED_TRACE(stem);
    auto cfg = nbv6::engine::FleetConfig::load(file);
    ASSERT_TRUE(cfg.has_value());

    // The same scenario at three lane counts: serializations must be
    // byte-identical (thread count can never change a replay).
    std::string reference;
    for (int lanes : {1, 4, 8}) {
      auto run = run_scenario(*cfg, catalog, lanes);
      std::string text = canonical_serialize(run);
      if (lanes == 1) {
        reference = std::move(text);
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(text, reference)
            << "lane count " << lanes << " diverged from sequential:\n"
            << first_diff(text, reference);
      }
    }

    const std::string golden_path =
        nbv6::testutil::golden_dir() + "/" + stem + ".golden.txt";
    if (g_update_goldens) {
      ASSERT_TRUE(nbv6::testutil::write_file(golden_path, reference))
          << "cannot write " << golden_path;
      continue;
    }
    auto golden = nbv6::testutil::read_file(golden_path);
    ASSERT_TRUE(golden.has_value())
        << "missing golden " << golden_path
        << " — run ./golden_replay_test --update and commit the result";
    EXPECT_EQ(reference, *golden)
        << "replay diverged from golden " << golden_path << ":\n"
        << first_diff(reference, *golden)
        << "\nIf the change is intentional, regenerate with --update and "
           "review the golden diff.";
  }
}

// Lazy day-plan evaluation (the engine default) and up-front materialized
// plans are two routes to the same pure function; a full scenario run must
// serialize byte-identically either way, at every lane count. One
// timeline-heavy scenario suffices here — the plan layer itself is compared
// cell by cell across all scenarios in timeline_test.
TEST(GoldenReplay, LazyAndMaterializedPlansAreByteIdentical) {
  auto catalog = nbv6::traffic::build_paper_catalog();
  // One batch-mode timeline scenario plus the open-loop trio: the lazy and
  // materialized plan routes must agree for the tick-sliced arrival engine
  // and both new event kinds, not just the original per-hour batch.
  for (const char* name : {"nat64_migration", "open_loop_ramp", "flash_crowd",
                           "uniform_arrivals"}) {
    SCOPED_TRACE(name);
    const std::string file =
        nbv6::testutil::scenarios_dir() + "/" + name + ".cfg";
    auto cfg = nbv6::engine::FleetConfig::load(file);
    ASSERT_TRUE(cfg.has_value());

    const std::string lazy =
        canonical_serialize(run_scenario(*cfg, catalog, 1));
    ASSERT_FALSE(lazy.empty());
    for (int lanes : {1, 4, 8}) {
      auto run = run_scenario(*cfg, catalog, lanes,
                              nbv6::engine::TimelinePlanMode::materialized);
      std::string text = canonical_serialize(run);
      EXPECT_EQ(text, lazy)
          << "materialized plans at " << lanes << " lane(s) diverged from the "
          << "lazy run:\n" << first_diff(text, lazy);
    }
  }
}

// `--update` hygiene: regenerating a golden must be idempotent. Two fully
// independent runs of the same scenario (fresh config load, fresh engine,
// fresh serialization) must produce identical bytes — if they don't, any
// golden produced by --update is a coin flip and the whole conformance
// suite is built on sand. This is stronger than SerializerIsPure below,
// which only re-serializes one in-memory run.
TEST(GoldenReplay, UpdateIsIdempotentAcrossIndependentRuns) {
  auto catalog = nbv6::traffic::build_paper_catalog();
  auto files = nbv6::testutil::scenario_files();
  ASSERT_FALSE(files.empty());
  for (const auto& file : files) {
    const std::string stem = nbv6::testutil::scenario_stem(file);
    SCOPED_TRACE(stem);
    std::string first;
    for (int pass = 0; pass < 2; ++pass) {
      auto cfg = nbv6::engine::FleetConfig::load(file);
      ASSERT_TRUE(cfg.has_value());
      std::string text = canonical_serialize(run_scenario(*cfg, catalog, 4));
      if (pass == 0) {
        first = std::move(text);
        ASSERT_FALSE(first.empty());
      } else {
        EXPECT_EQ(text, first)
            << "two independent runs of " << stem << " diverged:\n"
            << first_diff(text, first);
      }
    }
  }
}

// Repeated serialization of one in-memory run must be a fixed point —
// guards against the serializer itself consuming hidden state.
TEST(GoldenReplay, SerializerIsPure) {
  auto catalog = nbv6::traffic::build_paper_catalog();
  nbv6::engine::FleetConfig cfg;
  cfg.residences = 6;
  cfg.days = 8;
  cfg.seed = 3;
  auto run = run_scenario(cfg, catalog, 2);
  EXPECT_EQ(canonical_serialize(run), canonical_serialize(run));
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--update") g_update_goldens = true;
  return RUN_ALL_TESTS();
}
