#include <gtest/gtest.h>

#include <map>

#include "stats/descriptive.h"
#include "stats/rng.h"

namespace nbv6::stats {
namespace {

// ------------------------------------------------------------ descriptive

TEST(Descriptive, MeanAndVariance) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyAndSingleton) {
  std::vector<double> empty;
  std::vector<double> one{3.0};
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(variance(one), 0.0);
  EXPECT_EQ(median(one), 3.0);
  EXPECT_EQ(quantile(one, 0.99), 3.0);
}

TEST(Descriptive, QuantileType7Interpolation) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);  // numpy default agrees
}

TEST(Descriptive, QuantileUnsortedInput) {
  std::vector<double> xs{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Descriptive, SummaryFields) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Ecdf, StepFunction) {
  std::vector<double> xs{1, 2, 2, 3};
  Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.0), 0.75);
  EXPECT_DOUBLE_EQ(f(3.0), 1.0);
  EXPECT_DOUBLE_EQ(f(99.0), 1.0);
}

TEST(Ecdf, InverseQuantile) {
  std::vector<double> xs{10, 20, 30, 40};
  Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f.inverse(0.25), 10.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.26), 20.0);
  EXPECT_DOUBLE_EQ(f.inverse(1.0), 40.0);
}

TEST(Ecdf, CurveDedupesValues) {
  std::vector<double> xs{1, 1, 1, 2};
  auto pts = Ecdf(xs).curve();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].first, 1.0);
  EXPECT_DOUBLE_EQ(pts[0].second, 0.75);
  EXPECT_DOUBLE_EQ(pts[1].second, 1.0);
}

TEST(BoxPlot, QuartilesAndWhiskers) {
  // 1..11 plus an outlier at 100.
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100};
  auto b = boxplot(xs);
  EXPECT_NEAR(b.median, 6.5, 1e-9);
  EXPECT_GT(b.q3, b.q1);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 100.0);
  EXPECT_LE(b.whisker_high, 11.0);  // whisker clamps to data within fence
  EXPECT_DOUBLE_EQ(b.whisker_low, 1.0);
}

TEST(BoxPlot, NoOutliersWhenTight) {
  std::vector<double> xs{5, 5, 5, 5, 5};
  auto b = boxplot(xs);
  EXPECT_TRUE(b.outliers.empty());
  EXPECT_DOUBLE_EQ(b.whisker_low, 5.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 5.0);
}

// ------------------------------------------------------------ rng

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  Rng a2(42);
  EXPECT_NE(a2(), c());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(5.0, 1.5), 5.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(DiscreteSampler, RespectsWeights) {
  std::vector<double> w{1.0, 0.0, 3.0};
  DiscreteSampler s(w);
  Rng rng(8);
  std::map<size_t, int> counts;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[s.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(DiscreteSampler, SingleBucket) {
  std::vector<double> w{2.5};
  DiscreteSampler s(w);
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.sample(rng), 0u);
}

TEST(ZipfSampler, HeadHeavierThanTail) {
  ZipfSampler z(1000, 1.1);
  Rng rng(10);
  int head = 0, tail = 0;
  for (int i = 0; i < 20000; ++i) {
    auto r = z.sample(rng);
    if (r < 10) ++head;
    if (r >= 500) ++tail;
  }
  EXPECT_GT(head, tail * 3);
}

}  // namespace
}  // namespace nbv6::stats
