#include <gtest/gtest.h>

#include "cloud/providers.h"
#include "dns/resolver.h"
#include "web/universe.h"

namespace nbv6::web {
namespace {

UniverseConfig small_config() {
  UniverseConfig cfg;
  cfg.site_count = 800;
  cfg.seed = 1234;
  return cfg;
}

class UniverseTest : public ::testing::Test {
 protected:
  UniverseTest() : universe_(small_config(), providers_) {}
  cloud::ProviderCatalog providers_;
  Universe universe_;
};

TEST_F(UniverseTest, BuildsRequestedSites) {
  EXPECT_EQ(universe_.sites().size(), 800u);
  for (size_t i = 0; i < universe_.sites().size(); ++i)
    EXPECT_EQ(universe_.sites()[i].rank, static_cast<int>(i));
}

TEST_F(UniverseTest, EverySiteHasPagesAndResources) {
  for (const auto& site : universe_.sites()) {
    ASSERT_GE(site.pages.size(), 2u);
    EXPECT_FALSE(site.pages[0].resources.empty());
    EXPECT_FALSE(site.pages[0].internal_links.empty());
    for (auto link : site.pages[0].internal_links)
      EXPECT_LT(link, site.pages.size());
  }
}

TEST_F(UniverseTest, FqdnTenantLinksAreConsistent) {
  for (std::uint32_t id = 0; id < universe_.fqdns().size(); ++id) {
    const auto& f = universe_.fqdns()[id];
    ASSERT_LT(f.tenant, universe_.tenants().size());
    const auto& t = universe_.tenants()[f.tenant];
    bool found = false;
    for (auto fid : t.fqdns) found |= fid == id;
    EXPECT_TRUE(found) << f.name;
    // Every FQDN name ends with its tenant's eTLD+1.
    EXPECT_TRUE(f.name == t.etld1 ||
                f.name.ends_with("." + t.etld1))
        << f.name << " vs " << t.etld1;
  }
}

TEST_F(UniverseTest, AdoptionIsMonotoneAcrossEpochs) {
  // The per-epoch drift only ever adds AAAA records.
  for (std::uint32_t id = 0; id < universe_.fqdns().size(); ++id) {
    bool prev = universe_.has_aaaa(id, Epoch::oct2024);
    for (auto e : {Epoch::apr2025, Epoch::jul2025}) {
      bool cur = universe_.has_aaaa(id, e);
      EXPECT_TRUE(cur || !prev) << "adoption regressed for fqdn " << id;
      prev = cur;
    }
  }
}

TEST_F(UniverseTest, FailuresGrowAcrossEpochs) {
  int nx[3] = {0, 0, 0};
  for (const auto& site : universe_.sites()) {
    for (int e = 0; e < 3; ++e)
      if (universe_.fate(site, static_cast<Epoch>(e)) == SiteFate::nxdomain)
        ++nx[e];
  }
  EXPECT_LE(nx[0], nx[1]);
  EXPECT_LE(nx[1], nx[2]);
  EXPECT_GT(nx[0], 0);
}

TEST_F(UniverseTest, TopRanksAdoptMoreThanTail) {
  int top_aaaa = 0, top_n = 0, tail_aaaa = 0, tail_n = 0;
  for (const auto& site : universe_.sites()) {
    if (universe_.fate(site, Epoch::jul2025) != SiteFate::ok) continue;
    bool aaaa = universe_.has_aaaa(site.main_fqdn, Epoch::jul2025);
    if (site.rank < 100) {
      ++top_n;
      top_aaaa += aaaa;
    } else if (site.rank >= 400) {
      ++tail_n;
      tail_aaaa += aaaa;
    }
  }
  ASSERT_GT(top_n, 0);
  ASSERT_GT(tail_n, 0);
  EXPECT_GT(static_cast<double>(top_aaaa) / top_n,
            static_cast<double>(tail_aaaa) / tail_n);
}

TEST_F(UniverseTest, ZoneOmitsNxdomainSites) {
  auto zone = universe_.build_zone(Epoch::jul2025);
  dns::Resolver resolver(zone);
  for (const auto& site : universe_.sites()) {
    const auto& name = universe_.fqdns()[site.main_fqdn].name;
    auto res = resolver.resolve_dual(name);
    if (universe_.fate(site, Epoch::jul2025) == SiteFate::nxdomain) {
      EXPECT_FALSE(res.reachable()) << name;
    } else {
      EXPECT_TRUE(res.has_v4()) << name;  // A records are universal
    }
  }
}

TEST_F(UniverseTest, ZoneAaaaMatchesAdoptionModel) {
  auto zone = universe_.build_zone(Epoch::jul2025);
  dns::Resolver resolver(zone);
  int checked = 0;
  for (const auto& site : universe_.sites()) {
    if (universe_.fate(site, Epoch::jul2025) != SiteFate::ok) continue;
    const auto& f = universe_.fqdns()[site.main_fqdn];
    auto res = resolver.resolve_dual(f.name);
    EXPECT_EQ(res.has_v6(), universe_.has_aaaa(site.main_fqdn, Epoch::jul2025))
        << f.name;
    ++checked;
  }
  EXPECT_GT(checked, 500);
}

TEST_F(UniverseTest, ServiceHostedFqdnsHaveCnameChains) {
  auto zone = universe_.build_zone(Epoch::jul2025);
  dns::Resolver resolver(zone);
  int chained = 0;
  for (const auto& f : universe_.fqdns()) {
    if (f.provider < 0 || f.service < 0) continue;
    auto res = resolver.resolve_a(f.name);
    if (res.status != dns::ResolveStatus::ok) continue;
    const auto& svc = providers_.at(static_cast<size_t>(f.provider))
                          .services[static_cast<size_t>(f.service)];
    EXPECT_GE(res.chain.size(), 2u) << f.name;
    EXPECT_TRUE(res.terminal().ends_with(svc.cname_suffix)) << f.name;
    ++chained;
  }
  // Only a modest share of third-party FQDNs ride catalogued services
  // (matching the paper's ~20k of 430k), so the count is small at this
  // universe size but must be present.
  EXPECT_GT(chained, 15);
}

TEST_F(UniverseTest, ProviderAddressesAttributeBack) {
  auto zone = universe_.build_zone(Epoch::jul2025);
  dns::Resolver resolver(zone);
  int attributed = 0;
  for (const auto& f : universe_.fqdns()) {
    if (f.provider < 0) continue;
    auto res = resolver.resolve_a(f.name);
    if (res.status != dns::ResolveStatus::ok) continue;
    auto prov = providers_.provider_of(res.addresses.front());
    ASSERT_TRUE(prov.has_value()) << f.name;
    // The A record may sit in a partner's space (Bunnyway quirk).
    auto expected = providers_.a_record_host(static_cast<size_t>(f.provider))
                        .value_or(static_cast<size_t>(f.provider));
    EXPECT_EQ(*prov, expected) << f.name;
    ++attributed;
    if (attributed > 400) break;
  }
  EXPECT_GT(attributed, 100);
}

TEST_F(UniverseTest, BunnywayQuirkSplitsFamilies) {
  auto bunny = providers_.find("BUNNYWAY, informacijske storitve d.o.o.");
  auto datacamp = providers_.find("Datacamp Limited");
  ASSERT_TRUE(bunny && datacamp);
  auto zone = universe_.build_zone(Epoch::jul2025);
  dns::Resolver resolver(zone);

  int seen = 0;
  for (const auto& f : universe_.fqdns()) {
    if (f.provider != static_cast<int>(*bunny)) continue;
    auto dual = resolver.resolve_dual(f.name);
    if (dual.has_v4()) {
      EXPECT_EQ(providers_.provider_of(dual.v4.addresses.front()), *datacamp);
      ++seen;
    }
    if (dual.has_v6()) {
      EXPECT_EQ(providers_.provider_of(dual.v6.addresses.front()), *bunny);
    }
  }
  EXPECT_GT(seen, 0);
}

TEST_F(UniverseTest, CategorizerKnowsThirdParties) {
  EXPECT_EQ(universe_.categorize("doubleclick.net"), DomainCategory::ads);
  EXPECT_EQ(universe_.categorize("demdex.net"), DomainCategory::trackers);
  EXPECT_FALSE(universe_.categorize("unknown-domain.example").has_value());
}

TEST_F(UniverseTest, DeterministicBySeed) {
  Universe again(small_config(), providers_);
  ASSERT_EQ(again.fqdns().size(), universe_.fqdns().size());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(again.fqdns()[i].name, universe_.fqdns()[i].name);
    EXPECT_EQ(again.fqdns()[i].adopt_u, universe_.fqdns()[i].adopt_u);
  }
}

TEST_F(UniverseTest, CategoryFactorsOrderAdsLast) {
  EXPECT_LT(category_adoption_factor(DomainCategory::ads),
            category_adoption_factor(DomainCategory::analytics));
  EXPECT_LT(category_adoption_factor(DomainCategory::analytics),
            category_adoption_factor(DomainCategory::social));
}

TEST(ProviderCatalogTest, Top15PlusTail) {
  cloud::ProviderCatalog catalog;
  EXPECT_GE(catalog.size(), 16u);
  EXPECT_TRUE(catalog.find("Cloudflare, Inc."));
  EXPECT_TRUE(catalog.find("Amazon.com, Inc."));
  EXPECT_FALSE(catalog.find("Nonexistent Cloud"));
}

TEST(ProviderCatalogTest, AddressPlanRoundTrips) {
  cloud::ProviderCatalog catalog;
  for (size_t p = 0; p < catalog.size(); ++p) {
    auto v4 = catalog.v4_address(p, 12345);
    auto v6 = catalog.v6_address(p, 12345);
    EXPECT_EQ(catalog.provider_of(net::IpAddr{v4}).value(), p)
        << catalog.at(p).org_name;
    EXPECT_EQ(catalog.provider_of(net::IpAddr{v6}).value(), p)
        << catalog.at(p).org_name;
  }
}

TEST(ProviderCatalogTest, OrgOfAsnJoins) {
  cloud::ProviderCatalog catalog;
  EXPECT_EQ(catalog.org_of_asn(13335), "Cloudflare, Inc.");
  EXPECT_EQ(catalog.org_of_asn(16509), "Amazon.com, Inc.");
  EXPECT_EQ(catalog.org_of_asn(999999999), "");
}

TEST(ProviderCatalogTest, ServicePoliciesMatchPaper) {
  cloud::ProviderCatalog catalog;
  auto ms = catalog.find("Microsoft Corporation").value();
  bool found_front_door = false;
  for (const auto& s : catalog.at(ms).services) {
    if (s.name == "Azure Front Door CDN") {
      found_front_door = true;
      EXPECT_EQ(s.policy, cloud::V6Policy::always_on);
      EXPECT_DOUBLE_EQ(s.v6_adoption, 1.0);
    }
  }
  EXPECT_TRUE(found_front_door);

  auto amazon = catalog.find("Amazon.com, Inc.").value();
  bool found_s3 = false;
  for (const auto& s : catalog.at(amazon).services) {
    if (s.name == "Amazon S3") {
      found_s3 = true;
      EXPECT_EQ(s.policy, cloud::V6Policy::opt_in_code);
      EXPECT_LT(s.v6_adoption, 0.01);  // 0.4% after nine years
    }
  }
  EXPECT_TRUE(found_s3);
}

}  // namespace
}  // namespace nbv6::web
