// ForestScheduler: overlapped cross-variant pass scheduling over one shared
// PassCache — byte-identical to the serial per-pipeline loop at any worker
// count, with in-flight dedup and transient resource release asserted via
// execution counters and shared_ptr use counts.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario_pipeline.h"
#include "engine/fleet.h"
#include "engine/pipeline.h"
#include "engine/thread_pool.h"
#include "testutil.h"
#include "traffic/service_catalog.h"

namespace {

using namespace nbv6;
using engine::ForestScheduler;
using engine::Pass;
using engine::PassCache;
using engine::PassContext;
using engine::Pipeline;

// Pass bodies may execute on pool workers, so counters are atomic.
Pass count_pass(std::string name, std::vector<std::string> inputs,
                std::vector<std::string> outputs,
                std::atomic<int>* counter = nullptr,
                std::uint64_t config_digest = 0) {
  Pass p;
  p.name = std::move(name);
  p.inputs = std::move(inputs);
  p.outputs = std::move(outputs);
  p.config_digest = config_digest;
  p.run = [outputs = p.outputs, counter](PassContext& ctx) {
    if (counter != nullptr) counter->fetch_add(1);
    for (const auto& out : outputs) ctx.out(out, int{1});
  };
  return p;
}

// ------------------------------------------------------- in-flight dedup

// Two pipelines share one digest-identical generator pass but diverge
// downstream. The forest must run the generator exactly once — the second
// pipeline binds the in-flight twin's result, not a second execution.
TEST(ForestScheduler, DedupsDigestIdenticalPassesAcrossPipelines) {
  std::atomic<int> gen_runs{0};
  std::atomic<int> use1_runs{0};
  std::atomic<int> use2_runs{0};

  Pipeline p1;
  p1.add(count_pass("gen", {}, {"base"}, &gen_runs));
  p1.add(count_pass("use", {"base"}, {"out"}, &use1_runs, /*digest=*/1));
  Pipeline p2;
  p2.add(count_pass("gen", {}, {"base"}, &gen_runs));
  p2.add(count_pass("use", {"base"}, {"out"}, &use2_runs, /*digest=*/2));

  engine::ThreadPool pool(2);
  PassCache cache;
  ForestScheduler::Options opts;
  opts.pool = &pool;
  opts.workers = 2;
  const auto stats = ForestScheduler::run({&p1, &p2}, cache, opts);

  EXPECT_EQ(gen_runs.load(), 1);
  EXPECT_EQ(use1_runs.load(), 1);
  EXPECT_EQ(use2_runs.load(), 1);
  EXPECT_EQ(p1.executions("gen") + p2.executions("gen"), 1u);
  EXPECT_EQ(stats.executed, 3u);
  // Both gen twins are seed-ready before anything executes, so the second
  // is always an in-flight waiter, never a cache hit.
  EXPECT_EQ(stats.deduped, 1u);
  EXPECT_EQ(stats.cached, 0u);
  EXPECT_EQ(p1.output<int>("out"), 1);
  EXPECT_EQ(p2.output<int>("out"), 1);
}

// ------------------------------------------------------- warm-cache seed

// Regression: seeding against a pre-warmed cache completes frontier nodes
// synchronously, and finish_node's recursion completes their dependents
// before the seed loop reaches them. on_ready must fire once per node —
// double-firing double-counted done_count_ (a phantom "stalled" error),
// double-bound outputs, and double-decremented transient refcounts.
TEST(ForestScheduler, WarmCacheSeedCompletesEachNodeOnce) {
  std::atomic<int> gen_runs{0};
  std::atomic<int> mid_runs{0};
  auto make_pipe = [&](std::uint64_t use_digest) {
    auto pipe = std::make_unique<Pipeline>();
    pipe->add(count_pass("gen", {}, {"base"}, &gen_runs));
    pipe->add(count_pass("mid", {"base"}, {"refined"}, &mid_runs));
    pipe->add(count_pass("use", {"refined"}, {"out"}, nullptr, use_digest));
    return pipe;
  };

  for (int workers : {1, 2}) {
    PassCache cache;
    {  // Serial warm-up: every digest in both variants lands in the cache.
      auto w1 = make_pipe(1);
      auto w2 = make_pipe(2);
      w1->run(&cache);
      w2->run(&cache);
    }
    gen_runs = 0;
    mid_runs = 0;

    std::unique_ptr<engine::ThreadPool> pool;
    if (workers > 1) pool = std::make_unique<engine::ThreadPool>(workers);
    auto p1 = make_pipe(1);
    auto p2 = make_pipe(2);
    ForestScheduler::Options opts;
    opts.pool = pool.get();
    opts.workers = workers;
    const auto stats = ForestScheduler::run({p1.get(), p2.get()}, cache, opts);

    // Fully warm: every node binds from cache, exactly once, nothing runs.
    EXPECT_EQ(stats.cached, 6u) << workers << " workers";
    EXPECT_EQ(stats.executed, 0u) << workers << " workers";
    EXPECT_EQ(stats.deduped, 0u) << workers << " workers";
    EXPECT_EQ(gen_runs.load(), 0) << workers << " workers";
    EXPECT_EQ(mid_runs.load(), 0) << workers << " workers";
    EXPECT_EQ(p1->output<int>("out"), 1);
    EXPECT_EQ(p2->output<int>("out"), 1);
  }
}

// ---------------------------------------------------- transient release

// A payload type whose liveness the test can observe from outside: the
// pass wraps a copy of the test's shared token, so the token's use_count
// tracks how many pipeline/cache handles still exist.
struct Tracked {
  std::shared_ptr<int> token;
};

TEST(ForestScheduler, ReleasesTransientAfterLastConsumer) {
  auto token = std::make_shared<int>(7);

  Pipeline pipe;
  Pass gen;
  gen.name = "gen";
  gen.outputs = {"tmp"};
  gen.run = [token](PassContext& ctx) { ctx.out("tmp", Tracked{token}); };
  pipe.add(std::move(gen));
  pipe.add(count_pass("use", {"tmp"}, {"final"}));

  PassCache cache;
  ForestScheduler::Options opts;
  opts.transient = {"tmp"};
  const auto stats = ForestScheduler::run({&pipe}, cache, opts);

  // Released: unbound from the pipeline and erased from the cache — the
  // test's own token is the only remaining reference. (The gen lambda
  // holds `token` itself, not the wrapped copy, so it contributes the
  // baseline count of 2: test + lambda.)
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_EQ(stats.released, 1u);
  EXPECT_EQ(stats.peak_resident, 1u);
  EXPECT_THROW((void)pipe.output_value("tmp"), std::logic_error);
  EXPECT_EQ(pipe.output<int>("final"), 1);
  // gen's cache entry was erased; use's survives.
  EXPECT_EQ(cache.size(), 1u);
}

// A transient shared by two pipelines (digest-identical producer) is
// released only after the *forest-wide* last consumer — and releasing
// drops every holder's handle plus the cache entry.
TEST(ForestScheduler, SharedTransientReleasedForestWide) {
  auto token = std::make_shared<int>(9);

  auto make_pipe = [&token](std::uint64_t use_digest) {
    auto pipe = std::make_unique<Pipeline>();
    Pass gen;
    gen.name = "gen";
    gen.outputs = {"base"};
    gen.run = [token](PassContext& ctx) { ctx.out("base", Tracked{token}); };
    pipe->add(std::move(gen));
    pipe->add(count_pass("use", {"base"}, {"out"}, nullptr, use_digest));
    return pipe;
  };
  auto p1 = make_pipe(1);
  auto p2 = make_pipe(2);

  engine::ThreadPool pool(2);
  PassCache cache;
  ForestScheduler::Options opts;
  opts.pool = &pool;
  opts.workers = 2;
  opts.transient = {"base"};
  const auto stats = ForestScheduler::run({p1.get(), p2.get()}, cache, opts);

  // Two lambdas hold the raw token; every wrapped copy (two bound_ entries
  // and the cache entry) is gone.
  EXPECT_EQ(token.use_count(), 3);
  EXPECT_EQ(stats.released, 1u);
  EXPECT_EQ(p1->output<int>("out"), 1);
  EXPECT_EQ(p2->output<int>("out"), 1);
  EXPECT_EQ(cache.size(), 2u);  // the two use passes
}

// A consumerless transient shared by two digest-identical producers must
// not be released (and its cache entry evicted) until *both* producing
// pipelines have bound it — early release forced the twin to re-execute
// the deduped pass and double-counted stats.released.
TEST(ForestScheduler, ConsumerlessSharedTransientReleasedOnceAfterAllProducers) {
  auto token = std::make_shared<int>(3);
  std::atomic<int> gen_runs{0};

  auto make_pipe = [&]() {
    auto pipe = std::make_unique<Pipeline>();
    Pass gen;
    gen.name = "gen";
    gen.outputs = {"tmp"};
    gen.run = [token, &gen_runs](PassContext& ctx) {
      gen_runs.fetch_add(1);
      ctx.out("tmp", Tracked{token});
    };
    pipe->add(std::move(gen));
    return pipe;
  };
  auto p1 = make_pipe();
  auto p2 = make_pipe();

  PassCache cache;
  ForestScheduler::Options opts;
  opts.transient = {"tmp"};
  const auto stats = ForestScheduler::run({p1.get(), p2.get()}, cache, opts);

  // One execution for the whole forest (the twin is an in-flight waiter),
  // one release, and no surviving handle beyond the two gen lambdas.
  EXPECT_EQ(gen_runs.load(), 1);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.deduped, 1u);
  EXPECT_EQ(stats.released, 1u);
  EXPECT_EQ(stats.peak_resident, 1u);
  EXPECT_EQ(token.use_count(), 3);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_THROW((void)p1->output_value("tmp"), std::logic_error);
  EXPECT_THROW((void)p2->output_value("tmp"), std::logic_error);
}

// ------------------------------------------------------ failure handling

TEST(ForestScheduler, PassFailureClearsEveryPipelinesBoundState) {
  Pipeline ok;
  ok.add(count_pass("a", {}, {"x"}));
  Pipeline bad;
  Pass boom;
  boom.name = "boom";
  boom.outputs = {"y"};
  boom.run = [](PassContext&) { throw std::runtime_error("forest boom"); };
  bad.add(std::move(boom));

  engine::ThreadPool pool(2);
  PassCache cache;
  ForestScheduler::Options opts;
  opts.pool = &pool;
  opts.workers = 2;
  EXPECT_THROW(ForestScheduler::run({&ok, &bad}, cache, opts),
               std::runtime_error);
  // No partial state anywhere in the forest.
  EXPECT_THROW((void)ok.output_value("x"), std::logic_error);
  EXPECT_THROW((void)bad.output_value("y"), std::logic_error);
}

TEST(ForestScheduler, RejectsDuplicateAndNullPipelines) {
  Pipeline pipe;
  pipe.add(count_pass("a", {}, {"x"}));
  PassCache cache;
  EXPECT_THROW(ForestScheduler::run({&pipe, &pipe}, cache, {}),
               std::invalid_argument);
  EXPECT_THROW(ForestScheduler::run({nullptr}, cache, {}),
               std::invalid_argument);
}

// ------------------------------------------- scenario forest determinism

engine::FleetConfig tiny_config() {
  engine::FleetConfig cfg;
  cfg.residences = 6;
  cfg.days = 6;
  cfg.seed = 11;
  return cfg;
}

std::vector<engine::FleetConfig> variant_configs(int variants) {
  std::vector<engine::FleetConfig> cfgs;
  for (int v = 0; v < variants; ++v) {
    engine::FleetConfig cfg = tiny_config();
    if (v > 0) {
      engine::TimelineEvent fix;
      fix.kind = engine::TimelineEventKind::cpe_fix;
      fix.start_day = 1;
      fix.end_day = cfg.days - 1;
      fix.fraction = static_cast<double>(v) / variants;
      cfg.timeline->events.push_back(fix);
    }
    cfgs.push_back(std::move(cfg));
  }
  return cfgs;
}

std::string serialize_pipe(const engine::FleetConfig& cfg, Pipeline& pipe) {
  testutil::ScenarioRun run;
  run.cfg = cfg;
  run.result = pipe.output<engine::FleetResult>("fleet_result");
  run.report = pipe.output<core::FleetStatsReport>("stats_report");
  run.window_panel = pipe.output<core::GroupComparison>("window_panel");
  return testutil::canonical_serialize(run);
}

// The determinism pin: a 25-variant what-if forest run overlapped at 1, 2,
// and 8 workers produces byte-identical per-variant outputs to the plain
// serial pipeline loop, samples the base population exactly once (asserted
// via execution counters — in-flight dedup, since every sample twin is
// seed-ready before any executes), and releases every transient fleet.
TEST(ForestScheduler, TwentyFiveVariantForestMatchesSerialByteForByte) {
  const auto catalog = traffic::build_paper_catalog();
  const int variants = 25;
  const auto cfgs = variant_configs(variants);

  // Serial reference: one pipeline per variant, shared cache, run in order.
  std::vector<std::string> expected;
  {
    PassCache cache;
    std::vector<std::unique_ptr<Pipeline>> pipes;
    for (int v = 0; v < variants; ++v) {
      pipes.push_back(std::make_unique<Pipeline>(
          core::make_scenario_pipeline(cfgs[v], catalog)));
      pipes.back()->run(&cache);
      expected.push_back(serialize_pipe(cfgs[v], *pipes.back()));
    }
  }

  for (int workers : {1, 2, 8}) {
    std::unique_ptr<engine::ThreadPool> pool;
    if (workers > 1) pool = std::make_unique<engine::ThreadPool>(workers);

    PassCache cache;
    std::vector<std::unique_ptr<Pipeline>> pipes;
    std::vector<Pipeline*> ptrs;
    for (int v = 0; v < variants; ++v) {
      pipes.push_back(std::make_unique<Pipeline>(
          core::make_scenario_pipeline(cfgs[v], catalog)));
      ptrs.push_back(pipes.back().get());
    }
    ForestScheduler::Options opts;
    opts.pool = pool.get();
    opts.workers = workers;
    opts.transient = core::scenario_transient_resources();
    const auto stats = ForestScheduler::run(ptrs, cache, opts);

    std::uint64_t sample_execs = 0;
    for (const auto& p : pipes) sample_execs += p->executions("sample");
    EXPECT_EQ(sample_execs, 1u) << workers << " workers";
    EXPECT_EQ(stats.deduped, static_cast<std::size_t>(variants - 1))
        << workers << " workers";
    // Every transient instance released: one shared population plus one
    // planned fleet per variant.
    EXPECT_EQ(stats.released, static_cast<std::size_t>(variants + 1))
        << workers << " workers";
    // The RSS cap: residency tracks the worker count, not the variant
    // count (serial depth-first holds exactly population + one planned
    // fleet; overlapped runs stay within a couple of the in-flight limit).
    if (workers == 1) {
      EXPECT_EQ(stats.peak_resident, 2u);
    } else {
      EXPECT_LE(stats.peak_resident, static_cast<std::size_t>(workers) + 3)
          << workers << " workers";
    }

    for (int v = 0; v < variants; ++v) {
      EXPECT_EQ(serialize_pipe(cfgs[v], *pipes[v]), expected[v])
          << "variant " << v << " @ " << workers << " workers";
    }
  }
}

// The warm-cache path on the real scenario chain, transients enabled:
// results must land exactly as if each pipeline had run alone against the
// same warm cache (the header's equivalence promise), and the transient
// entries leave the cache just as in the cold forest run. Regression for
// the seed-time double-on_ready bug, which only a pre-warmed cache hits.
TEST(ForestScheduler, ScenarioForestAgainstWarmCacheMatchesSerial) {
  const auto catalog = traffic::build_paper_catalog();
  const auto cfgs = variant_configs(3);

  PassCache cache;
  std::vector<std::string> expected;
  for (const auto& cfg : cfgs) {  // serial warm-up, also the reference
    Pipeline pipe = core::make_scenario_pipeline(cfg, catalog);
    pipe.run(&cache);
    expected.push_back(serialize_pipe(cfg, pipe));
  }

  std::vector<std::unique_ptr<Pipeline>> pipes;
  std::vector<Pipeline*> ptrs;
  for (const auto& cfg : cfgs) {
    pipes.push_back(std::make_unique<Pipeline>(
        core::make_scenario_pipeline(cfg, catalog)));
    ptrs.push_back(pipes.back().get());
  }
  ForestScheduler::Options opts;
  opts.transient = core::scenario_transient_resources();
  const auto stats = ForestScheduler::run(ptrs, cache, opts);

  EXPECT_EQ(stats.executed, 0u);
  EXPECT_EQ(stats.cached, 18u);  // 3 variants x 6 passes, all warm
  for (std::size_t v = 0; v < cfgs.size(); ++v) {
    EXPECT_EQ(serialize_pipe(cfgs[v], *pipes[v]), expected[v])
        << "variant " << v;
  }
  // Transient release behaves as in the cold run: the shared sample entry
  // and the three timeline entries are erased, 12 survive.
  EXPECT_EQ(cache.size(), 12u);
}

// Transient release on the scenario chain observable from the cache side:
// the sample and timeline entries are erased once consumed, so a warm
// re-run re-executes them while the kept suffix still hits.
TEST(ForestScheduler, ScenarioTransientsLeaveCacheAfterForestRun) {
  const auto catalog = traffic::build_paper_catalog();
  const auto cfgs = variant_configs(3);

  PassCache cache;
  std::vector<std::unique_ptr<Pipeline>> pipes;
  std::vector<Pipeline*> ptrs;
  for (const auto& cfg : cfgs) {
    pipes.push_back(std::make_unique<Pipeline>(
        core::make_scenario_pipeline(cfg, catalog)));
    ptrs.push_back(pipes.back().get());
  }
  ForestScheduler::Options opts;
  opts.transient = core::scenario_transient_resources();
  ForestScheduler::run(ptrs, cache, opts);

  // 3 variants x 6 cacheable passes = 18 stored minus 1 sample (shared,
  // erased) minus 3 timelines (erased) = 12 surviving entries.
  EXPECT_EQ(cache.size(), 12u);

  // Warm serial re-run of variant 0: the released prefix re-executes, the
  // kept suffix binds from cache.
  const auto warm = pipes[0]->run(&cache);
  EXPECT_EQ(warm.executed, 2u);  // sample + timeline
  EXPECT_EQ(warm.cached, 4u);    // simulate, metrics, report, window_panel
}

}  // namespace
