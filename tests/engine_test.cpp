// Fleet-engine tests: thread-pool behaviour, scenario sampling
// determinism, monitor merge algebra, and the headline guarantee — a
// multi-threaded fleet run is bit-identical to the sequential run of the
// same residence seeds.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/client_analysis.h"
#include "engine/firehose.h"
#include "engine/fleet.h"
#include "engine/flat_conntrack.h"
#include "engine/run_spec.h"
#include "engine/thread_pool.h"
#include "flowmon/monitor.h"
#include "traffic/generator.h"

namespace nbv6::engine {
namespace {

// ---------------------------------------------------------- thread pool

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForHandlesDegenerateCounts) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(64, [&](size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPool, ParallelForRethrowsLaneExceptionsOnTheCaller) {
  ThreadPool pool(4);
  // A throw from any lane — worker or caller — must surface on the caller
  // after the batch drains, and the pool must stay usable.
  std::atomic<int> ran{0};
  auto throwing = [&](size_t i) {
    if (i == 37) throw std::runtime_error("lane 37 exploded");
    ran.fetch_add(1);
  };
  EXPECT_THROW(pool.parallel_for(100, throwing), std::runtime_error);
  // Ticket hand-out stops on the throw, so not every index runs — but none
  // runs twice, and the count is sane.
  EXPECT_LE(ran.load(), 99);

  // Index 0 throws: with two lanes, the caller often observes a
  // worker-thrown exception (pre-fix this terminated the process).
  for (int round = 0; round < 8; ++round) {
    EXPECT_THROW(
        pool.parallel_for(64,
                          [](size_t i) {
                            if (i == 0) throw std::runtime_error("first");
                          }),
        std::runtime_error);
  }

  // The pool is fully reusable after exceptional batches.
  std::atomic<int> sum{0};
  pool.parallel_for(64, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

// ------------------------------------------------------ scenario layer

TEST(FleetConfigParse, RoundTripsKnownKeys) {
  auto cfg = FleetConfig::parse(
      "# a comment\n"
      "residences = 16\n"
      "days=7\n"
      "threads = 2\n"
      "seed = 99\n"
      "dual_stack_isp_frac = 0.5  # inline comment\n"
      "heavy_streamer_frac = 0.75\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->residences, 16);
  EXPECT_EQ(cfg->days, 7);
  EXPECT_EQ(cfg->threads, 2);
  EXPECT_EQ(cfg->seed, 99u);
  EXPECT_DOUBLE_EQ(cfg->dual_stack_isp_frac, 0.5);
  EXPECT_DOUBLE_EQ(cfg->heavy_streamer_frac, 0.75);
  // Untouched keys keep defaults.
  EXPECT_DOUBLE_EQ(cfg->opt_out_frac, FleetConfig{}.opt_out_frac);
}

TEST(FleetConfigParse, RejectsUnknownKeysAndBadValues) {
  EXPECT_FALSE(FleetConfig::parse("no_such_knob = 1\n").has_value());
  EXPECT_FALSE(FleetConfig::parse("days = banana\n").has_value());
  EXPECT_FALSE(FleetConfig::parse("residences = 0\n").has_value());
  EXPECT_FALSE(FleetConfig::parse("just a line\n").has_value());
}

TEST(FleetConfigParse, RejectsOutOfRangeAndNonFiniteValues) {
  // Fractions are probabilities: outside [0, 1] is a config bug, not a
  // clamp candidate.
  EXPECT_FALSE(FleetConfig::parse("dual_stack_isp_frac = 1.5\n").has_value());
  EXPECT_FALSE(FleetConfig::parse("broken_v6_frac = -0.1\n").has_value());
  EXPECT_FALSE(FleetConfig::parse("opt_out_frac = 2\n").has_value());
  // strtod parses these happily; the validator must not.
  EXPECT_FALSE(FleetConfig::parse("absence_prob = nan\n").has_value());
  EXPECT_FALSE(FleetConfig::parse("heavy_streamer_frac = inf\n").has_value());
  EXPECT_FALSE(FleetConfig::parse("activity_scale_max = -inf\n").has_value());
  EXPECT_FALSE(FleetConfig::parse("activity_scale_min = -1\n").has_value());
  // Inverted activity range.
  EXPECT_FALSE(FleetConfig::parse("activity_scale_min = 5\n"
                                  "activity_scale_max = 2\n").has_value());
  // Boundary values are fine.
  auto ok = FleetConfig::parse("dual_stack_isp_frac = 0\n"
                               "opt_out_frac = 1\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_DOUBLE_EQ(ok->dual_stack_isp_frac, 0.0);
  EXPECT_DOUBLE_EQ(ok->opt_out_frac, 1.0);
}

TEST(FleetConfigParse, RejectsDuplicateScalarKeys) {
  EXPECT_FALSE(FleetConfig::parse("days = 7\ndays = 8\n").has_value());
  EXPECT_FALSE(
      FleetConfig::parse("seed = 1\nresidences = 4\nseed = 2\n").has_value());
  // Timeline event keys are the documented exception: repeatable.
  auto cfg = FleetConfig::parse(
      "timeline.outage = day=3\n"
      "timeline.outage = day=5\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->timeline->events.size(), 2u);
}

TEST(FleetConfigParse, RoundTripsTimelineKeys) {
  // A config carrying every event kind parses into the equivalent
  // hand-built timeline (the round-trip the golden scenarios rely on).
  auto cfg = FleetConfig::parse(
      "residences = 8\n"
      "days = 40\n"
      "timeline.seasonal = start=0 end=39 amp=0.35 period=21\n"
      "timeline.rollout_wave = start=10 end=28 frac=0.7\n"
      "timeline.cpe_fix = start=20 end=26 frac=0.8\n"
      "timeline.outage = start=22 end=24 frac=0.4\n"
      "timeline.nat64_migration = start=30 end=39 frac=0.35\n");
  ASSERT_TRUE(cfg.has_value());

  Timeline expected;
  expected.events = {
      *Timeline::parse_event("seasonal", "start=0 end=39 amp=0.35 period=21"),
      *Timeline::parse_event("rollout_wave", "start=10 end=28 frac=0.7"),
      *Timeline::parse_event("cpe_fix", "start=20 end=26 frac=0.8"),
      *Timeline::parse_event("outage", "start=22 end=24 frac=0.4"),
      *Timeline::parse_event("nat64_migration", "start=30 end=39 frac=0.35"),
  };
  EXPECT_EQ(cfg->timeline, expected);
}

TEST(FleetConfigParse, ErrorMessagesCarryLineAndToken) {
  auto msg = [](std::string_view text) {
    std::string error;
    EXPECT_FALSE(FleetConfig::parse(text, &error).has_value()) << text;
    return error;
  };
  EXPECT_EQ(msg("days = 7\nno_such_knob = 1\n"),
            "line 2: unknown key 'no_such_knob'");
  EXPECT_EQ(msg("days = banana\n"),
            "line 1: invalid value 'banana' for key 'days'");
  EXPECT_EQ(msg("days = 7\n\ndays = 8\n"), "line 3: duplicate key 'days'");
  EXPECT_EQ(msg("just a line\n"), "line 1: missing '=' in 'just a line'");
  // Timeline rejections carry the full key plus the event parser's message.
  EXPECT_EQ(msg("timeline.nope = day=1\n"),
            "line 1: timeline.nope: unknown timeline event kind 'nope'");
  EXPECT_EQ(msg("days = 9\ntimeline.outage = banana=3\n"),
            "line 2: timeline.outage: unknown event key 'banana'");
  // Horizon violations name the event's own line, wherever `days` sits.
  EXPECT_EQ(msg("timeline.outage = day=50\ndays = 30\n"),
            "line 1: timeline.outage: window starts on day 50, at or past "
            "the 30-day horizon");
  // Post-loop validation failures are line-less but still specific.
  EXPECT_EQ(msg("residences = 0\n"), "residences must be >= 1 (got 0)");
  EXPECT_EQ(msg("activity_scale_min = 5\nactivity_scale_max = 2\n"),
            "activity_scale_min exceeds activity_scale_max");
  // Success leaves the error buffer untouched.
  std::string error = "sentinel";
  EXPECT_TRUE(FleetConfig::parse("days = 7\n", &error).has_value());
  EXPECT_EQ(error, "sentinel");
}

TEST(SampleFleet, DeterministicPerSeedAndIndex) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 32;
  cfg.days = 30;

  auto a = sample_fleet(cfg, catalog);
  auto b = sample_fleet(cfg, catalog);
  ASSERT_EQ(a.size(), 32u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].activity_scale, b[i].activity_scale);
    EXPECT_EQ(a[i].service_weight_overrides, b[i].service_weight_overrides);
    EXPECT_EQ(a[i].away_day_ranges, b[i].away_day_ranges);
  }

  // Residence i's config must not depend on the population size: growing
  // the fleet keeps the existing households stable.
  cfg.residences = 48;
  auto c = sample_fleet(cfg, catalog);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, c[i].seed);
    EXPECT_DOUBLE_EQ(a[i].device_v6_ok_frac, c[i].device_v6_ok_frac);
  }

  // Different master seeds produce different populations.
  cfg.residences = 32;
  cfg.seed = 777;
  auto d = sample_fleet(cfg, catalog);
  int diff = 0;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i].seed != d[i].seed) ++diff;
  EXPECT_GT(diff, 16);
}

TEST(SampleFleet, DetailedSamplerDrawsTheSameStream) {
  // sample_fleet_detailed() must reproduce sample_fleet()'s configs
  // exactly (same RNG draws) while adding the stratum labels.
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 64;
  cfg.days = 30;
  cfg.seed = 11;

  auto plain = sample_fleet(cfg, catalog);
  auto detailed = sample_fleet_detailed(cfg, catalog);
  ASSERT_EQ(detailed.configs.size(), plain.size());
  ASSERT_EQ(detailed.traits.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(detailed.configs[i].seed, plain[i].seed);
    EXPECT_DOUBLE_EQ(detailed.configs[i].activity_scale,
                     plain[i].activity_scale);
    EXPECT_DOUBLE_EQ(detailed.configs[i].device_v6_ok_frac,
                     plain[i].device_v6_ok_frac);
    EXPECT_DOUBLE_EQ(detailed.configs[i].visibility, plain[i].visibility);
    EXPECT_EQ(detailed.configs[i].away_day_ranges, plain[i].away_day_ranges);

    // Labels consistent with the config they describe.
    const auto& t = detailed.traits[i];
    if (!t.dual_stack_isp) {
      EXPECT_DOUBLE_EQ(detailed.configs[i].device_v6_ok_frac, 0.0);
    }
    if (t.broken_v6) {
      EXPECT_TRUE(t.dual_stack_isp);
    }
    if (t.vacant) {
      EXPECT_DOUBLE_EQ(detailed.configs[i].activity_scale, 0.0);
    }
    EXPECT_EQ(t.opt_out, detailed.configs[i].visibility < 1.0);
    EXPECT_EQ(t.scripted_absence,
              !detailed.configs[i].away_day_ranges.empty());
  }
}

TEST(FleetEngine, RunCarriesTraitsThrough) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 6;
  cfg.days = 1;
  auto sampled = sample_fleet_detailed(cfg, catalog);

  FleetEngine engine(catalog, 2);
  auto from_sampled = engine.run(sampled);
  EXPECT_EQ(from_sampled.traits, sampled.traits);
  auto from_cfg = engine.run(cfg);
  EXPECT_EQ(from_cfg.traits, sampled.traits);
  // Raw config vectors carry no strata.
  auto from_raw = engine.run(sampled.configs);
  EXPECT_TRUE(from_raw.traits.empty());
}

TEST(SampleFleet, PopulationMixKnobsShapeThePopulation) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 200;
  cfg.days = 10;
  cfg.dual_stack_isp_frac = 0.0;
  auto v4_only = sample_fleet(cfg, catalog);
  for (const auto& r : v4_only) EXPECT_DOUBLE_EQ(r.device_v6_ok_frac, 0.0);

  cfg.dual_stack_isp_frac = 1.0;
  cfg.broken_v6_frac = 0.0;
  auto all_v6 = sample_fleet(cfg, catalog);
  for (const auto& r : all_v6) EXPECT_DOUBLE_EQ(r.device_v6_ok_frac, 1.0);

  cfg.background_only_frac = 1.0;
  auto vacant = sample_fleet(cfg, catalog);
  for (const auto& r : vacant) EXPECT_DOUBLE_EQ(r.activity_scale, 0.0);
}

// ------------------------------------------------------- merge algebra

flowmon::FlowMonitor run_residence(const traffic::ServiceCatalog& catalog,
                                   traffic::ResidenceConfig cfg) {
  FlatConntrack table;
  flowmon::FlowMonitor mon;
  mon.attach(table);
  traffic::ResidenceSimulator sim(catalog, cfg);
  sim.run(table);
  return mon;
}

void expect_same_aggregates(const flowmon::FlowMonitor& a,
                            const flowmon::FlowMonitor& b) {
  using flowmon::Scope;
  EXPECT_EQ(a.totals(Scope::external), b.totals(Scope::external));
  EXPECT_EQ(a.totals(Scope::internal), b.totals(Scope::internal));
  EXPECT_EQ(a.daily(Scope::external), b.daily(Scope::external));
  EXPECT_EQ(a.daily(Scope::internal), b.daily(Scope::internal));
  EXPECT_EQ(a.hourly_external(), b.hourly_external());
  EXPECT_EQ(a.destination_tallies(), b.destination_tallies());
  EXPECT_EQ(a.new_events(), b.new_events());
  EXPECT_EQ(a.destroy_events(), b.destroy_events());
  // Derived fraction series are pure functions of the integer state.
  EXPECT_EQ(a.daily_v6_fractions(Scope::external, true),
            b.daily_v6_fractions(Scope::external, true));
  EXPECT_EQ(a.hourly_v6_fraction_series(true),
            b.hourly_v6_fraction_series(true));
}

TEST(MonitorMerge, AssociativeAndOrderIndependent) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig fc;
  fc.residences = 3;
  fc.days = 3;
  auto configs = sample_fleet(fc, catalog);
  auto m0 = run_residence(catalog, configs[0]);
  auto m1 = run_residence(catalog, configs[1]);
  auto m2 = run_residence(catalog, configs[2]);

  // (m0 + m1) + m2
  flowmon::FlowMonitor left;
  left.merge(m0);
  left.merge(m1);
  left.merge(m2);
  // m0 + (m1 + m2)
  flowmon::FlowMonitor inner;
  inner.merge(m1);
  inner.merge(m2);
  flowmon::FlowMonitor right;
  right.merge(m0);
  right.merge(inner);
  expect_same_aggregates(left, right);

  // Counter state is also commutative: reversed order, same aggregates.
  flowmon::FlowMonitor rev;
  rev.merge(m2);
  rev.merge(m1);
  rev.merge(m0);
  expect_same_aggregates(left, rev);
}

TEST(MonitorMerge, MergingEmptyIsIdentity) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig fc;
  fc.residences = 1;
  fc.days = 2;
  auto configs = sample_fleet(fc, catalog);
  auto m = run_residence(catalog, configs[0]);

  flowmon::FlowMonitor merged;
  merged.merge(m);
  merged.merge(flowmon::FlowMonitor{});
  expect_same_aggregates(merged, m);
}

// -------------------------------------------------- fleet determinism

// The acceptance bar: a 4-lane fleet run of 64 residences produces
// aggregates bit-identical to the sequential run of the same seeds.
TEST(FleetEngine, FourThreadRunMatchesSequentialBitForBit) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 64;
  cfg.days = 2;  // short horizon keeps the test fast; 64 shards is the point
  cfg.seed = 20260726;
  auto configs = sample_fleet(cfg, catalog);

  FleetEngine sequential(catalog, /*threads=*/1);
  FleetEngine parallel(catalog, /*threads=*/4);
  auto seq = sequential.run(configs);
  auto par = parallel.run(configs);

  // Fleet-level reduction: bit-identical.
  expect_same_aggregates(seq.fleet, par.fleet);
  EXPECT_EQ(seq.totals.sessions, par.totals.sessions);
  EXPECT_EQ(seq.totals.flows, par.totals.flows);
  EXPECT_EQ(seq.totals.skipped_invisible, par.totals.skipped_invisible);
  EXPECT_EQ(seq.totals.he_failures, par.totals.he_failures);

  // Every shard individually too.
  ASSERT_EQ(seq.residences.size(), par.residences.size());
  for (size_t i = 0; i < seq.residences.size(); ++i) {
    EXPECT_EQ(seq.residences[i].stats.sessions,
              par.residences[i].stats.sessions)
        << "residence " << i;
    EXPECT_EQ(seq.residences[i].stats.flows, par.residences[i].stats.flows);
    expect_same_aggregates(seq.residences[i].monitor,
                           par.residences[i].monitor);
  }

  // And thread count must not matter beyond 4 either.
  FleetEngine wide(catalog, /*threads=*/8);
  auto w = wide.run(configs);
  expect_same_aggregates(seq.fleet, w.fleet);
}

TEST(FleetEngine, FlatShardMatchesReferenceTableAggregates) {
  // One residence simulated into the reference unordered_map table and
  // into a flat shard: monitor aggregates must agree exactly.
  auto catalog = traffic::build_paper_catalog();
  FleetConfig fc;
  fc.residences = 1;
  fc.days = 4;
  auto configs = sample_fleet(fc, catalog);

  flowmon::ConntrackTable ref_table;
  flowmon::FlowMonitor ref_mon(ref_table);
  traffic::ResidenceSimulator ref_sim(catalog, configs[0]);
  auto ref_stats = ref_sim.run(ref_table);

  FlatConntrack flat_table;
  flowmon::FlowMonitor flat_mon;
  flat_mon.attach(flat_table);
  traffic::ResidenceSimulator flat_sim(catalog, configs[0]);
  auto flat_stats = flat_sim.run(flat_table);

  EXPECT_EQ(ref_stats.sessions, flat_stats.sessions);
  EXPECT_EQ(ref_stats.flows, flat_stats.flows);
  expect_same_aggregates(ref_mon, flat_mon);
}

TEST(FleetEngine, FleetViewFeedsCoreAnalyses) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 8;
  cfg.days = 3;
  FleetEngine engine(catalog, 2);
  auto result = engine.run(cfg);

  EXPECT_EQ(result.residences.size(), 8u);
  EXPECT_GT(result.totals.flows, 0u);
  // The merged view is a plain FlowMonitor: totals must equal the sum of
  // the shard totals.
  std::uint64_t shard_bytes = 0;
  for (const auto& r : result.residences)
    shard_bytes += r.monitor.external_bytes();
  EXPECT_EQ(result.fleet.external_bytes(), shard_bytes);

  // And the core reporting layer consumes the fleet result directly.
  auto report = core::analyze_fleet(result);
  EXPECT_EQ(report.residences.size(), 8u);
  EXPECT_EQ(report.fleet.name, "fleet");
  EXPECT_NEAR(report.fleet.external.total_gb,
              static_cast<double>(shard_bytes) / 1e9, 1e-9);
  EXPECT_GT(report.residence_byte_fraction.count, 0u);
}

// ------------------------------------------------------ RunSpec wrappers
// The unified entry point must agree exactly with each legacy entry point
// it replaced — same stage functions underneath, so any divergence is a
// wiring bug.

TEST(RunSpec, SampleDetailMatchesSampleFleetDetailed) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 12;
  cfg.days = 5;
  cfg.seed = 99;

  auto via_spec = RunSpec(cfg).detail(RunDetail::sample).run(catalog);
  auto legacy = sample_fleet_detailed(cfg, catalog);
  ASSERT_EQ(via_spec.sampled.configs.size(), legacy.configs.size());
  EXPECT_EQ(via_spec.sampled.traits, legacy.traits);
  for (size_t i = 0; i < legacy.configs.size(); ++i) {
    EXPECT_EQ(via_spec.sampled.configs[i].seed, legacy.configs[i].seed) << i;
    EXPECT_EQ(via_spec.sampled.configs[i].days, legacy.configs[i].days) << i;
  }
  // Sample detail stops before simulation.
  EXPECT_FALSE(via_spec.result.has_value());
  EXPECT_EQ(via_spec.flows_streamed, 0u);
}

TEST(RunSpec, PlanDetailAppliesTimeline) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 6;
  cfg.days = 8;
  cfg.seed = 3;
  TimelineEvent ev;
  ev.kind = TimelineEventKind::outage;
  ev.start_day = 2;
  ev.end_day = 5;
  ev.fraction = 1.0;
  cfg.timeline->events.push_back(ev);

  auto planned = RunSpec(cfg)
                     .detail(RunDetail::plan)
                     .plan_mode(TimelinePlanMode::materialized)
                     .run(catalog);
  ASSERT_EQ(planned.sampled.configs.size(), 6u);
  // Materialized plans land on every sampled config.
  for (const auto& rc : planned.sampled.configs)
    EXPECT_EQ(rc.day_plan.size(), static_cast<size_t>(cfg.days));
  EXPECT_FALSE(planned.result.has_value());
}

TEST(RunSpec, AggregateMatchesFleetEngineRun) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 10;
  cfg.days = 6;
  cfg.seed = 17;

  auto out = RunSpec(cfg).lanes(4).run(catalog);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(out.lanes, 4);

  FleetEngine legacy(catalog, 4);
  auto direct = legacy.run(cfg);
  EXPECT_EQ(out.result->totals.sessions, direct.totals.sessions);
  EXPECT_EQ(out.result->totals.flows, direct.totals.flows);
  EXPECT_EQ(out.result->totals.he_failures, direct.totals.he_failures);
  EXPECT_EQ(out.result->fleet.external_bytes(), direct.fleet.external_bytes());
  EXPECT_EQ(out.totals.sessions, direct.totals.sessions);
  EXPECT_EQ(out.result->traits, direct.traits);
}

TEST(RunSpec, FirehoseSinkMatchesFirehoseRun) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 8;
  cfg.days = 4;
  cfg.seed = 5;
  cfg.arrival->mode = traffic::ArrivalMode::poisson;
  cfg.arrival->ticks_per_hour = 6;

  std::uint64_t spec_bytes = 0;
  auto out = RunSpec(cfg)
                 .lanes(4)
                 .firehose([&](const FlowEvent& ev) {
                   spec_bytes += ev.bytes_out + ev.bytes_in;
                 })
                 .run(catalog);
  // Streaming trades retained monitors for throughput: no FleetResult.
  EXPECT_FALSE(out.result.has_value());

  std::uint64_t hose_bytes = 0;
  Firehose hose(catalog, 4);
  auto legacy = hose.run(cfg, [&](const FlowEvent& ev) {
    hose_bytes += ev.bytes_out + ev.bytes_in;
  });
  EXPECT_EQ(out.flows_streamed, legacy.flows);
  EXPECT_EQ(spec_bytes, hose_bytes);
  EXPECT_EQ(out.totals.sessions, legacy.totals.sessions);
  EXPECT_EQ(out.lanes, legacy.lanes);
}

}  // namespace
}  // namespace nbv6::engine
