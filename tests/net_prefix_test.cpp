#include "net/prefix.h"

#include <gtest/gtest.h>

#include "net/lpm_trie.h"
#include "stats/rng.h"

namespace nbv6::net {
namespace {

TEST(Prefix4, NormalizesHostBits) {
  Prefix4 p(IPv4Addr(192, 0, 2, 255), 24);
  EXPECT_EQ(p.address(), IPv4Addr(192, 0, 2, 0));
  EXPECT_EQ(p.length(), 24);
}

TEST(Prefix4, ParseAndFormat) {
  auto p = Prefix4::parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
  EXPECT_EQ(Prefix4::parse("10.1.2.3/8")->to_string(), "10.0.0.0/8");
}

TEST(Prefix4, ParseRejects) {
  EXPECT_FALSE(Prefix4::parse("10.0.0.0"));
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/33"));
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/-1"));
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/"));
  EXPECT_FALSE(Prefix4::parse("10.0.0/8"));
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/8x"));
}

TEST(Prefix4, ContainsAddress) {
  Prefix4 p(IPv4Addr(192, 0, 2, 0), 24);
  EXPECT_TRUE(p.contains(IPv4Addr(192, 0, 2, 0)));
  EXPECT_TRUE(p.contains(IPv4Addr(192, 0, 2, 255)));
  EXPECT_FALSE(p.contains(IPv4Addr(192, 0, 3, 0)));
}

TEST(Prefix4, ContainsPrefix) {
  Prefix4 outer(IPv4Addr(10, 0, 0, 0), 8);
  Prefix4 inner(IPv4Addr(10, 5, 0, 0), 16);
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Prefix4, ZeroLengthContainsEverything) {
  Prefix4 all(IPv4Addr(0), 0);
  EXPECT_TRUE(all.contains(IPv4Addr(255, 255, 255, 255)));
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
}

TEST(Prefix4, HostRoute) {
  Prefix4 host(IPv4Addr(1, 2, 3, 4), 32);
  EXPECT_TRUE(host.contains(IPv4Addr(1, 2, 3, 4)));
  EXPECT_FALSE(host.contains(IPv4Addr(1, 2, 3, 5)));
  EXPECT_EQ(host.size(), 1u);
}

TEST(Prefix6, NormalizesHostBits) {
  Prefix6 p(*IPv6Addr::parse("2001:db8::ffff"), 32);
  EXPECT_EQ(p.address(), *IPv6Addr::parse("2001:db8::"));
}

TEST(Prefix6, NonByteAlignedLength) {
  Prefix6 p(*IPv6Addr::parse("2001:db8:80ff::"), 33);
  // Bit 33 onward zeroed: group 2 keeps only its top bit.
  EXPECT_EQ(p.address(), *IPv6Addr::parse("2001:db8:8000::"));
  EXPECT_TRUE(p.contains(*IPv6Addr::parse("2001:db8:80ff::1")));
  EXPECT_FALSE(p.contains(*IPv6Addr::parse("2001:db8:7fff::")));
}

TEST(Prefix6, ParseAndFormat) {
  auto p = Prefix6::parse("2600::/12");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "2600::/12");
  EXPECT_FALSE(Prefix6::parse("2600::/129"));
  EXPECT_FALSE(Prefix6::parse("2600::"));
}

TEST(MaskToLength, EdgeLengths) {
  EXPECT_EQ(mask_to_length(IPv4Addr(0xffffffffu), 0).value(), 0u);
  EXPECT_EQ(mask_to_length(IPv4Addr(0xffffffffu), 32).value(), 0xffffffffu);
  EXPECT_EQ(mask_to_length(*IPv6Addr::parse("ffff::ffff"), 128),
            *IPv6Addr::parse("ffff::ffff"));
  EXPECT_EQ(mask_to_length(*IPv6Addr::parse("ffff::ffff"), 0),
            *IPv6Addr::parse("::"));
}

// ------------------------------------------------------------ LPM trie

TEST(LpmTrie, EmptyReturnsNothing) {
  LpmTrie4<int> trie;
  EXPECT_FALSE(trie.lookup(IPv4Addr(1, 2, 3, 4)).has_value());
  EXPECT_TRUE(trie.empty());
}

TEST(LpmTrie, DefaultRouteMatchesAll) {
  LpmTrie4<int> trie;
  trie.insert(Prefix4(IPv4Addr(0), 0), 42);
  EXPECT_EQ(trie.lookup(IPv4Addr(8, 8, 8, 8)).value(), 42);
  EXPECT_EQ(trie.lookup(IPv4Addr(0)).value(), 42);
}

TEST(LpmTrie, LongestMatchWins) {
  LpmTrie4<int> trie;
  trie.insert(Prefix4(IPv4Addr(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix4(IPv4Addr(10, 1, 0, 0), 16), 2);
  trie.insert(Prefix4(IPv4Addr(10, 1, 2, 0), 24), 3);
  EXPECT_EQ(trie.lookup(IPv4Addr(10, 9, 9, 9)).value(), 1);
  EXPECT_EQ(trie.lookup(IPv4Addr(10, 1, 9, 9)).value(), 2);
  EXPECT_EQ(trie.lookup(IPv4Addr(10, 1, 2, 9)).value(), 3);
  EXPECT_FALSE(trie.lookup(IPv4Addr(11, 0, 0, 1)).has_value());
}

TEST(LpmTrie, InsertReplacesValue) {
  LpmTrie4<int> trie;
  Prefix4 p(IPv4Addr(10, 0, 0, 0), 8);
  trie.insert(p, 1);
  trie.insert(p, 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(IPv4Addr(10, 0, 0, 1)).value(), 2);
}

TEST(LpmTrie, ExactAt) {
  LpmTrie4<int> trie;
  trie.insert(Prefix4(IPv4Addr(10, 0, 0, 0), 8), 1);
  EXPECT_EQ(trie.at(Prefix4(IPv4Addr(10, 0, 0, 0), 8)).value(), 1);
  EXPECT_FALSE(trie.at(Prefix4(IPv4Addr(10, 0, 0, 0), 16)).has_value());
}

TEST(LpmTrie, HostRoutesV6) {
  LpmTrie6<std::string> trie;
  trie.insert(Prefix6(*IPv6Addr::parse("2001:db8::1"), 128), "host");
  trie.insert(Prefix6(*IPv6Addr::parse("2001:db8::"), 32), "net");
  EXPECT_EQ(trie.lookup(*IPv6Addr::parse("2001:db8::1")).value(), "host");
  EXPECT_EQ(trie.lookup(*IPv6Addr::parse("2001:db8::2")).value(), "net");
}

// Property: trie lookup == linear-scan oracle over random prefix sets.
class LpmOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmOracleTest, MatchesLinearScanV4) {
  stats::Rng rng(GetParam());
  std::vector<std::pair<Prefix4, int>> prefixes;
  LpmTrie4<int> trie;
  for (int i = 0; i < 200; ++i) {
    auto addr = IPv4Addr(static_cast<std::uint32_t>(rng()));
    int len = static_cast<int>(rng.below(33));
    Prefix4 p(addr, len);
    // Skip duplicates so oracle values stay unambiguous.
    bool dup = false;
    for (auto& [q, _] : prefixes) dup |= (q == p);
    if (dup) continue;
    prefixes.emplace_back(p, i);
    trie.insert(p, i);
  }
  for (int t = 0; t < 500; ++t) {
    auto probe = IPv4Addr(static_cast<std::uint32_t>(rng()));
    // Oracle: most specific containing prefix.
    int best_len = -1;
    std::optional<int> best;
    for (const auto& [p, v] : prefixes) {
      if (p.contains(probe) && p.length() > best_len) {
        best_len = p.length();
        best = v;
      }
    }
    EXPECT_EQ(trie.lookup(probe), best) << probe.to_string();
  }
}

TEST_P(LpmOracleTest, MatchesLinearScanV6) {
  stats::Rng rng(GetParam() ^ 0xabcdef);
  std::vector<std::pair<Prefix6, int>> prefixes;
  LpmTrie6<int> trie;
  for (int i = 0; i < 120; ++i) {
    auto addr = IPv6Addr::from_halves(rng(), rng());
    int len = static_cast<int>(rng.below(129));
    Prefix6 p(addr, len);
    bool dup = false;
    for (auto& [q, _] : prefixes) dup |= (q == p);
    if (dup) continue;
    prefixes.emplace_back(p, i);
    trie.insert(p, i);
  }
  for (int t = 0; t < 300; ++t) {
    auto probe = IPv6Addr::from_halves(rng(), rng());
    int best_len = -1;
    std::optional<int> best;
    for (const auto& [p, v] : prefixes) {
      if (p.contains(probe) && p.length() > best_len) {
        best_len = p.length();
        best = v;
      }
    }
    EXPECT_EQ(trie.lookup(probe), best) << probe.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmOracleTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

TEST_P(LpmOracleTest, BatchLookupMatchesScalar) {
  stats::Rng rng(GetParam() ^ 0xba7c4u);
  LpmTrie4<int> trie;
  for (int i = 0; i < 300; ++i) {
    trie.insert(Prefix4(IPv4Addr(static_cast<std::uint32_t>(rng())),
                        static_cast<int>(rng.below(33))),
                i);
  }
  std::vector<IPv4Addr> probes;
  for (int t = 0; t < 400; ++t)
    probes.emplace_back(static_cast<std::uint32_t>(rng()));
  auto batch = trie.lookup_batch(probes);
  ASSERT_EQ(batch.size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i)
    EXPECT_EQ(batch[i], trie.lookup(probes[i])) << probes[i].to_string();
}

TEST(LpmTrie, InterleavedInsertAndLookupStaysConsistent) {
  // The stride accelerator is rebuilt lazily after mutations; alternate
  // insert and lookup phases to exercise the invalidation path.
  stats::Rng rng(2718);
  std::vector<std::pair<Prefix4, int>> prefixes;
  LpmTrie4<int> trie;
  auto oracle = [&](IPv4Addr probe) {
    int best_len = -1;
    std::optional<int> best;
    for (const auto& [p, v] : prefixes)
      if (p.contains(probe) && p.length() > best_len) {
        best_len = p.length();
        best = v;
      }
    return best;
  };
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 60; ++i) {
      Prefix4 p(IPv4Addr(static_cast<std::uint32_t>(rng())),
                static_cast<int>(rng.below(33)));
      bool dup = false;
      for (auto& [q, _] : prefixes) dup |= (q == p);
      if (dup) continue;
      int v = round * 1000 + i;
      prefixes.emplace_back(p, v);
      trie.insert(p, v);
    }
    for (int t = 0; t < 100; ++t) {
      auto probe = IPv4Addr(static_cast<std::uint32_t>(rng()));
      EXPECT_EQ(trie.lookup(probe), oracle(probe)) << probe.to_string();
    }
  }
}

TEST(LpmTrie, PathCompressionBoundsArena) {
  // 500 random host routes in a bit-per-node trie would need ~16000 nodes;
  // path compression keeps the arena within a small multiple of the
  // prefix count.
  stats::Rng rng(31415);
  LpmTrie4<int> trie;
  for (int i = 0; i < 500; ++i)
    trie.insert(Prefix4(IPv4Addr(static_cast<std::uint32_t>(rng())), 32), i);
  EXPECT_LE(trie.node_count(), 3 * trie.size() + 1);
}

}  // namespace
}  // namespace nbv6::net
