#include <gtest/gtest.h>

#include "flowmon/conntrack.h"
#include "flowmon/monitor.h"

namespace nbv6::flowmon {
namespace {

net::FlowKey make_key(std::uint8_t host, std::uint16_t port,
                      bool v6 = false) {
  net::FlowKey k;
  k.protocol = net::Protocol::tcp;
  if (v6) {
    k.src = net::IPv6Addr::from_halves(0x26008800ull << 32, host);
    k.dst = net::IPv6Addr::from_halves(0x2600ull << 48, host);
  } else {
    k.src = net::IPv4Addr(192, 168, 1, host);
    k.dst = net::IPv4Addr(20, 0, 0, host);
  }
  k.src_port = port;
  k.dst_port = 443;
  return k;
}

TEST(Conntrack, NewAndDestroyEventsFire) {
  ConntrackTable table;
  int news = 0, destroys = 0;
  ConntrackListener l;
  l.on_new = [&](const net::FlowKey&, Timestamp) { ++news; };
  l.on_destroy = [&](const FlowRecord&) { ++destroys; };
  table.subscribe(std::move(l));

  auto k = make_key(1, 1000);
  table.open(k, 10, Scope::external);
  EXPECT_EQ(news, 1);
  EXPECT_EQ(table.live_count(), 1u);
  table.close(k, 20);
  EXPECT_EQ(destroys, 1);
  EXPECT_EQ(table.live_count(), 0u);
}

TEST(Conntrack, ReopenLiveFlowIsNoop) {
  ConntrackTable table;
  int news = 0;
  ConntrackListener l;
  l.on_new = [&](const net::FlowKey&, Timestamp) { ++news; };
  table.subscribe(std::move(l));
  auto k = make_key(1, 1000);
  table.open(k, 10, Scope::external);
  table.open(k, 15, Scope::external);
  EXPECT_EQ(news, 1);
}

TEST(Conntrack, AccountingAccumulates) {
  ConntrackTable table;
  FlowRecord last;
  ConntrackListener l;
  l.on_destroy = [&](const FlowRecord& r) { last = r; };
  table.subscribe(std::move(l));

  auto k = make_key(2, 1001);
  table.open(k, 100, Scope::external);
  EXPECT_TRUE(table.account(k, 101, 500, 10000));
  EXPECT_TRUE(table.account(k, 102, 300, 7000));
  table.close(k, 200);
  EXPECT_EQ(last.bytes_out, 800u);
  EXPECT_EQ(last.bytes_in, 17000u);
  EXPECT_EQ(last.total_bytes(), 17800u);
  EXPECT_EQ(last.start, 100);
  EXPECT_EQ(last.end, 200);
  EXPECT_GT(last.packets_in, 0u);
}

TEST(Conntrack, MidstreamPickupOpensImplicitly) {
  ConntrackTable table;
  auto k = make_key(3, 1002);
  EXPECT_FALSE(table.account(k, 50, 10, 10));  // false: implicitly opened
  EXPECT_EQ(table.live_count(), 1u);
}

TEST(Conntrack, CloseUnknownFlowFails) {
  ConntrackTable table;
  EXPECT_FALSE(table.close(make_key(4, 1003), 10));
}

TEST(Conntrack, SweepEvictsIdleFlows) {
  ConntrackTable table(/*idle_timeout=*/60);
  int destroys = 0;
  ConntrackListener l;
  l.on_destroy = [&](const FlowRecord&) { ++destroys; };
  table.subscribe(std::move(l));

  table.open(make_key(5, 1004), 0, Scope::external);
  table.open(make_key(6, 1005), 50, Scope::external);
  EXPECT_EQ(table.sweep(59), 0u);   // nothing idle >= 60s yet
  EXPECT_EQ(table.sweep(60), 1u);   // first flow idle exactly 60s
  EXPECT_EQ(destroys, 1);
  EXPECT_EQ(table.live_count(), 1u);
}

TEST(Conntrack, FlushClosesEverything) {
  ConntrackTable table;
  int destroys = 0;
  ConntrackListener l;
  l.on_destroy = [&](const FlowRecord&) { ++destroys; };
  table.subscribe(std::move(l));
  table.open(make_key(7, 1), 0, Scope::external);
  table.open(make_key(8, 2), 0, Scope::internal);
  table.flush(100);
  EXPECT_EQ(destroys, 2);
  EXPECT_EQ(table.live_count(), 0u);
}

// ------------------------------------------------------------ monitor

TEST(Monitor, SplitsByFamilyAndScope) {
  ConntrackTable table;
  FlowMonitor mon(table);

  auto k4 = make_key(1, 10, false);
  table.open(k4, 10, Scope::external);
  table.account(k4, 10, 100, 900);
  table.close(k4, 20);

  auto k6 = make_key(2, 11, true);
  table.open(k6, 30, Scope::external);
  table.account(k6, 30, 500, 2500);
  table.close(k6, 40);

  auto ki = make_key(3, 12, false);
  table.open(ki, 50, Scope::internal);
  table.account(ki, 50, 50, 50);
  table.close(ki, 60);

  const auto& ext = mon.totals(Scope::external);
  EXPECT_EQ(ext.v4.bytes, 1000u);
  EXPECT_EQ(ext.v6.bytes, 3000u);
  EXPECT_EQ(ext.v4.flows, 1u);
  EXPECT_EQ(ext.v6.flows, 1u);
  EXPECT_NEAR(ext.v6_byte_fraction(), 0.75, 1e-12);
  EXPECT_NEAR(ext.v6_flow_fraction(), 0.5, 1e-12);

  const auto& in = mon.totals(Scope::internal);
  EXPECT_EQ(in.v4.bytes, 100u);
  EXPECT_EQ(in.total_flows(), 1u);
}

TEST(Monitor, EmptyFractionIsSentinel) {
  ConntrackTable table;
  FlowMonitor mon(table);
  EXPECT_LT(mon.totals(Scope::external).v6_byte_fraction(), 0.0);
}

TEST(Monitor, DailyBucketsByStartTime) {
  ConntrackTable table;
  FlowMonitor mon(table);

  auto day0 = make_key(1, 20, true);
  table.open(day0, 1000, Scope::external);
  table.account(day0, 1000, 0, 100);
  table.close(day0, 1001);

  auto day2 = make_key(2, 21, false);
  table.open(day2, 2 * kSecondsPerDay + 5, Scope::external);
  table.account(day2, 2 * kSecondsPerDay + 5, 0, 300);
  table.close(day2, 2 * kSecondsPerDay + 10);

  const auto& daily = mon.daily(Scope::external);
  ASSERT_EQ(daily.size(), 2u);
  EXPECT_NEAR(daily.at(0).v6_byte_fraction(), 1.0, 1e-12);
  EXPECT_NEAR(daily.at(2).v6_byte_fraction(), 0.0, 1e-12);

  auto fracs = mon.daily_v6_fractions(Scope::external, true);
  ASSERT_EQ(fracs.size(), 2u);
  EXPECT_DOUBLE_EQ(fracs[0], 1.0);
  EXPECT_DOUBLE_EQ(fracs[1], 0.0);
}

TEST(Monitor, HourlySeriesFillsGaps) {
  ConntrackTable table;
  FlowMonitor mon(table);

  auto h0 = make_key(1, 30, true);
  table.open(h0, 0, Scope::external);
  table.account(h0, 0, 0, 100);
  table.close(h0, 1);

  auto h3 = make_key(2, 31, false);
  table.open(h3, 3 * kSecondsPerHour, Scope::external);
  table.account(h3, 3 * kSecondsPerHour, 0, 100);
  table.close(h3, 3 * kSecondsPerHour + 1);

  auto series = mon.hourly_v6_fraction_series(true);
  ASSERT_EQ(series.size(), 4u);  // hours 0..3
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[1], 1.0);  // gap carries previous value
  EXPECT_DOUBLE_EQ(series[2], 1.0);
  EXPECT_DOUBLE_EQ(series[3], 0.0);
}

TEST(Monitor, DestinationTalliesExternalOnly) {
  ConntrackTable table;
  FlowMonitor mon(table);

  auto ext = make_key(1, 40, false);
  table.open(ext, 0, Scope::external);
  table.account(ext, 0, 10, 90);
  table.close(ext, 1);

  auto internal = make_key(2, 41, false);
  table.open(internal, 0, Scope::internal);
  table.account(internal, 0, 10, 10);
  table.close(internal, 1);

  auto tallies = mon.destination_tallies();
  ASSERT_EQ(tallies.size(), 1u);
  EXPECT_EQ(tallies[0].addr, ext.dst);
  EXPECT_EQ(tallies[0].tally.bytes, 100u);
}

TEST(Monitor, RetainsRecordsWhenAsked) {
  ConntrackTable table;
  FlowMonitor keep(table, /*retain_records=*/true);
  auto k = make_key(1, 50);
  table.open(k, 0, Scope::external);
  table.close(k, 1);
  EXPECT_EQ(keep.records().size(), 1u);
  EXPECT_EQ(keep.new_events(), 1u);
  EXPECT_EQ(keep.destroy_events(), 1u);
}

TEST(FlowRecordHelpers, DayAndHour) {
  FlowRecord r;
  r.start = 2 * kSecondsPerDay + 5 * kSecondsPerHour + 123;
  EXPECT_EQ(r.day(), 2);
  EXPECT_EQ(r.hour_of_day(), 5);
}

TEST(FlowKeyHashing, DistinctKeysUsuallyDiffer) {
  net::FlowKeyHash h;
  auto a = make_key(1, 1000);
  auto b = make_key(1, 1001);
  auto c = make_key(2, 1000, true);
  EXPECT_NE(h(a), h(b));
  EXPECT_NE(h(a), h(c));
  EXPECT_EQ(h(a), h(make_key(1, 1000)));
}

}  // namespace
}  // namespace nbv6::flowmon
