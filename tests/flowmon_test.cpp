#include <gtest/gtest.h>

#include <map>

#include "engine/flat_conntrack.h"
#include "flowmon/conntrack.h"
#include "flowmon/monitor.h"
#include "stats/rng.h"

namespace nbv6::flowmon {
namespace {

net::FlowKey make_key(std::uint8_t host, std::uint16_t port,
                      bool v6 = false) {
  net::FlowKey k;
  k.protocol = net::Protocol::tcp;
  if (v6) {
    k.src = net::IPv6Addr::from_halves(0x26008800ull << 32, host);
    k.dst = net::IPv6Addr::from_halves(0x2600ull << 48, host);
  } else {
    k.src = net::IPv4Addr(192, 168, 1, host);
    k.dst = net::IPv4Addr(20, 0, 0, host);
  }
  k.src_port = port;
  k.dst_port = 443;
  return k;
}

// Shared fixture: every conntrack behaviour test runs against both the
// std::unordered_map reference table and the flat open-addressing table,
// pinning engine::FlatConntrack to ConntrackTable semantics.
template <typename Table>
class ConntrackLike : public ::testing::Test {};

using ConntrackImpls = ::testing::Types<ConntrackTable, engine::FlatConntrack>;
TYPED_TEST_SUITE(ConntrackLike, ConntrackImpls);

TYPED_TEST(ConntrackLike, NewAndDestroyEventsFire) {
  TypeParam table;
  int news = 0, destroys = 0;
  ConntrackListener l;
  l.on_new = [&](const net::FlowKey&, Timestamp) { ++news; };
  l.on_destroy = [&](const FlowRecord&) { ++destroys; };
  table.subscribe(std::move(l));

  auto k = make_key(1, 1000);
  table.open(k, 10, Scope::external);
  EXPECT_EQ(news, 1);
  EXPECT_EQ(table.live_count(), 1u);
  table.close(k, 20);
  EXPECT_EQ(destroys, 1);
  EXPECT_EQ(table.live_count(), 0u);
}

TYPED_TEST(ConntrackLike, ReopenLiveFlowIsNoop) {
  TypeParam table;
  int news = 0;
  ConntrackListener l;
  l.on_new = [&](const net::FlowKey&, Timestamp) { ++news; };
  table.subscribe(std::move(l));
  auto k = make_key(1, 1000);
  table.open(k, 10, Scope::external);
  table.open(k, 15, Scope::external);
  EXPECT_EQ(news, 1);
}

TYPED_TEST(ConntrackLike, AccountingAccumulates) {
  TypeParam table;
  FlowRecord last;
  ConntrackListener l;
  l.on_destroy = [&](const FlowRecord& r) { last = r; };
  table.subscribe(std::move(l));

  auto k = make_key(2, 1001);
  table.open(k, 100, Scope::external);
  EXPECT_TRUE(table.account(k, 101, 500, 10000));
  EXPECT_TRUE(table.account(k, 102, 300, 7000));
  table.close(k, 200);
  EXPECT_EQ(last.bytes_out, 800u);
  EXPECT_EQ(last.bytes_in, 17000u);
  EXPECT_EQ(last.total_bytes(), 17800u);
  EXPECT_EQ(last.start, 100);
  EXPECT_EQ(last.end, 200);
  EXPECT_GT(last.packets_in, 0u);
}

TYPED_TEST(ConntrackLike, MidstreamPickupOpensImplicitly) {
  TypeParam table;
  auto k = make_key(3, 1002);
  EXPECT_FALSE(table.account(k, 50, 10, 10));  // false: implicitly opened
  EXPECT_EQ(table.live_count(), 1u);
}

TYPED_TEST(ConntrackLike, CloseUnknownFlowFails) {
  TypeParam table;
  EXPECT_FALSE(table.close(make_key(4, 1003), 10));
}

TYPED_TEST(ConntrackLike, SweepEvictsIdleFlows) {
  TypeParam table(/*idle_timeout=*/60);
  int destroys = 0;
  ConntrackListener l;
  l.on_destroy = [&](const FlowRecord&) { ++destroys; };
  table.subscribe(std::move(l));

  table.open(make_key(5, 1004), 0, Scope::external);
  table.open(make_key(6, 1005), 50, Scope::external);
  EXPECT_EQ(table.sweep(59), 0u);   // nothing idle >= 60s yet
  EXPECT_EQ(table.sweep(60), 1u);   // first flow idle exactly 60s
  EXPECT_EQ(destroys, 1);
  EXPECT_EQ(table.live_count(), 1u);
}

TYPED_TEST(ConntrackLike, FlushClosesEverything) {
  TypeParam table;
  int destroys = 0;
  ConntrackListener l;
  l.on_destroy = [&](const FlowRecord&) { ++destroys; };
  table.subscribe(std::move(l));
  table.open(make_key(7, 1), 0, Scope::external);
  table.open(make_key(8, 2), 0, Scope::internal);
  table.flush(100);
  EXPECT_EQ(destroys, 2);
  EXPECT_EQ(table.live_count(), 0u);
}

// High-churn workload crossing several table growths: bookkeeping must
// stay exact through rehashes and backward-shift deletions.
TYPED_TEST(ConntrackLike, ChurnThroughGrowthKeepsBookkeeping) {
  TypeParam table(/*idle_timeout=*/600);
  std::uint64_t destroyed_bytes = 0;
  int destroys = 0;
  ConntrackListener l;
  l.on_destroy = [&](const FlowRecord& r) {
    ++destroys;
    destroyed_bytes += r.total_bytes();
  };
  table.subscribe(std::move(l));

  constexpr int kFlows = 5000;
  for (int i = 0; i < kFlows; ++i) {
    auto k = make_key(static_cast<std::uint8_t>(i % 251),
                      static_cast<std::uint16_t>(i), i % 3 == 0);
    table.open(k, i, Scope::external);
    table.account(k, i, 100, 900);
    if (i % 2 == 0) table.close(k, i + 5);  // half stay live
  }
  EXPECT_EQ(table.live_count(), kFlows / 2u);
  EXPECT_EQ(destroys, kFlows / 2);
  // Evict the rest via sweep (all idle long past the timeout).
  EXPECT_EQ(table.sweep(kFlows + 700), kFlows / 2u);
  EXPECT_EQ(table.live_count(), 0u);
  EXPECT_EQ(destroys, kFlows);
  EXPECT_EQ(destroyed_bytes, static_cast<std::uint64_t>(kFlows) * 1000u);
}

// The two implementations must agree flow-by-flow, not just in aggregate:
// drive an identical randomized open/account/close/sweep schedule into both
// and compare the full per-key destroy records.
TEST(FlatConntrackEquivalence, MatchesReferenceTablePerFlow) {
  ConntrackTable ref(/*idle_timeout=*/120);
  engine::FlatConntrack flat(/*idle_timeout=*/120);
  std::map<net::FlowKey, FlowRecord> ref_records, flat_records;
  ConntrackListener rl, fl;
  rl.on_destroy = [&](const FlowRecord& r) { ref_records[r.key] = r; };
  fl.on_destroy = [&](const FlowRecord& r) { flat_records[r.key] = r; };
  ref.subscribe(std::move(rl));
  flat.subscribe(std::move(fl));

  std::uint64_t x = 42;
  for (int step = 0; step < 20000; ++step) {
    std::uint64_t r = stats::splitmix64(x);
    auto k = make_key(static_cast<std::uint8_t>(r % 97),
                      static_cast<std::uint16_t>((r >> 8) % 500),
                      (r >> 20) % 2 == 0);
    Timestamp now = step;
    switch ((r >> 32) % 4) {
      case 0:
        ref.open(k, now, Scope::external);
        flat.open(k, now, Scope::external);
        break;
      case 1:
        EXPECT_EQ(ref.account(k, now, r % 1000, r % 3000),
                  flat.account(k, now, r % 1000, r % 3000));
        break;
      case 2:
        EXPECT_EQ(ref.close(k, now), flat.close(k, now));
        break;
      case 3:
        if (step % 500 == 0) {
          EXPECT_EQ(ref.sweep(now), flat.sweep(now));
        }
        break;
    }
    ASSERT_EQ(ref.live_count(), flat.live_count()) << "step " << step;
  }
  ref.flush(30000);
  flat.flush(30000);
  ASSERT_EQ(ref_records.size(), flat_records.size());
  for (const auto& [key, rec] : ref_records) {
    auto it = flat_records.find(key);
    ASSERT_TRUE(it != flat_records.end()) << key.to_string();
    EXPECT_EQ(rec.start, it->second.start);
    EXPECT_EQ(rec.end, it->second.end);
    EXPECT_EQ(rec.bytes_out, it->second.bytes_out);
    EXPECT_EQ(rec.bytes_in, it->second.bytes_in);
    EXPECT_EQ(rec.packets_out, it->second.packets_out);
    EXPECT_EQ(rec.packets_in, it->second.packets_in);
  }
}

// ------------------------------------------------------------ monitor

TEST(Monitor, SplitsByFamilyAndScope) {
  ConntrackTable table;
  FlowMonitor mon(table);

  auto k4 = make_key(1, 10, false);
  table.open(k4, 10, Scope::external);
  table.account(k4, 10, 100, 900);
  table.close(k4, 20);

  auto k6 = make_key(2, 11, true);
  table.open(k6, 30, Scope::external);
  table.account(k6, 30, 500, 2500);
  table.close(k6, 40);

  auto ki = make_key(3, 12, false);
  table.open(ki, 50, Scope::internal);
  table.account(ki, 50, 50, 50);
  table.close(ki, 60);

  const auto& ext = mon.totals(Scope::external);
  EXPECT_EQ(ext.v4.bytes, 1000u);
  EXPECT_EQ(ext.v6.bytes, 3000u);
  EXPECT_EQ(ext.v4.flows, 1u);
  EXPECT_EQ(ext.v6.flows, 1u);
  EXPECT_NEAR(ext.v6_byte_fraction(), 0.75, 1e-12);
  EXPECT_NEAR(ext.v6_flow_fraction(), 0.5, 1e-12);

  const auto& in = mon.totals(Scope::internal);
  EXPECT_EQ(in.v4.bytes, 100u);
  EXPECT_EQ(in.total_flows(), 1u);
}

TEST(Monitor, EmptyFractionIsSentinel) {
  ConntrackTable table;
  FlowMonitor mon(table);
  EXPECT_LT(mon.totals(Scope::external).v6_byte_fraction(), 0.0);
}

TEST(Monitor, DailyBucketsByStartTime) {
  ConntrackTable table;
  FlowMonitor mon(table);

  auto day0 = make_key(1, 20, true);
  table.open(day0, 1000, Scope::external);
  table.account(day0, 1000, 0, 100);
  table.close(day0, 1001);

  auto day2 = make_key(2, 21, false);
  table.open(day2, 2 * kSecondsPerDay + 5, Scope::external);
  table.account(day2, 2 * kSecondsPerDay + 5, 0, 300);
  table.close(day2, 2 * kSecondsPerDay + 10);

  const auto& daily = mon.daily(Scope::external);
  ASSERT_EQ(daily.size(), 2u);
  EXPECT_NEAR(daily.at(0).v6_byte_fraction(), 1.0, 1e-12);
  EXPECT_NEAR(daily.at(2).v6_byte_fraction(), 0.0, 1e-12);

  auto fracs = mon.daily_v6_fractions(Scope::external, true);
  ASSERT_EQ(fracs.size(), 2u);
  EXPECT_DOUBLE_EQ(fracs[0], 1.0);
  EXPECT_DOUBLE_EQ(fracs[1], 0.0);
}

TEST(Monitor, HourlySeriesFillsGaps) {
  ConntrackTable table;
  FlowMonitor mon(table);

  auto h0 = make_key(1, 30, true);
  table.open(h0, 0, Scope::external);
  table.account(h0, 0, 0, 100);
  table.close(h0, 1);

  auto h3 = make_key(2, 31, false);
  table.open(h3, 3 * kSecondsPerHour, Scope::external);
  table.account(h3, 3 * kSecondsPerHour, 0, 100);
  table.close(h3, 3 * kSecondsPerHour + 1);

  auto series = mon.hourly_v6_fraction_series(true);
  ASSERT_EQ(series.size(), 4u);  // hours 0..3
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[1], 1.0);  // gap carries previous value
  EXPECT_DOUBLE_EQ(series[2], 1.0);
  EXPECT_DOUBLE_EQ(series[3], 0.0);
}

TEST(Monitor, DestinationTalliesExternalOnly) {
  ConntrackTable table;
  FlowMonitor mon(table);

  auto ext = make_key(1, 40, false);
  table.open(ext, 0, Scope::external);
  table.account(ext, 0, 10, 90);
  table.close(ext, 1);

  auto internal = make_key(2, 41, false);
  table.open(internal, 0, Scope::internal);
  table.account(internal, 0, 10, 10);
  table.close(internal, 1);

  auto tallies = mon.destination_tallies();
  ASSERT_EQ(tallies.size(), 1u);
  EXPECT_EQ(tallies[0].addr, ext.dst);
  EXPECT_EQ(tallies[0].tally.bytes, 100u);
}

TEST(Monitor, RetainsRecordsWhenAsked) {
  ConntrackTable table;
  FlowMonitor keep(table, /*retain_records=*/true);
  auto k = make_key(1, 50);
  table.open(k, 0, Scope::external);
  table.close(k, 1);
  EXPECT_EQ(keep.records().size(), 1u);
  EXPECT_EQ(keep.new_events(), 1u);
  EXPECT_EQ(keep.destroy_events(), 1u);
}

TEST(FlowRecordHelpers, DayAndHour) {
  FlowRecord r;
  r.start = 2 * kSecondsPerDay + 5 * kSecondsPerHour + 123;
  EXPECT_EQ(r.day(), 2);
  EXPECT_EQ(r.hour_of_day(), 5);
}

TEST(FlowKeyHashing, DistinctKeysUsuallyDiffer) {
  net::FlowKeyHash h;
  auto a = make_key(1, 1000);
  auto b = make_key(1, 1001);
  auto c = make_key(2, 1000, true);
  EXPECT_NE(h(a), h(b));
  EXPECT_NE(h(a), h(c));
  EXPECT_EQ(h(a), h(make_key(1, 1000)));
}

}  // namespace
}  // namespace nbv6::flowmon
