// Timeline tests: event-spec parsing (including the extended FleetConfig
// section), the purity guarantee — day states depend only on (seed, index,
// day, horizon) — and the end-to-end behavioural effects of each event
// kind on a simulated fleet.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/fleet_analysis.h"
#include "engine/fleet.h"
#include "engine/timeline.h"
#include "testutil.h"
#include "traffic/service_catalog.h"

namespace nbv6::engine {
namespace {

// ------------------------------------------------------------- parsing

TEST(TimelineParse, EventSpecsRoundTrip) {
  auto ev = Timeline::parse_event("rollout_wave", "start=10 end=30 frac=0.8");
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, TimelineEventKind::rollout_wave);
  EXPECT_EQ(ev->start_day, 10);
  EXPECT_EQ(ev->end_day, 30);
  EXPECT_DOUBLE_EQ(ev->fraction, 0.8);

  auto fix = Timeline::parse_event("cpe_fix", "day=20");
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->start_day, 20);
  EXPECT_EQ(fix->end_day, 20);
  EXPECT_DOUBLE_EQ(fix->fraction, 1.0);  // default

  auto outage = Timeline::parse_event("outage", "start=5 end=35 frac=0.25 len=4");
  ASSERT_TRUE(outage.has_value());
  EXPECT_EQ(outage->duration_days, 4);

  auto seasonal = Timeline::parse_event("seasonal", "amp=0.5 period=28");
  ASSERT_TRUE(seasonal.has_value());
  EXPECT_DOUBLE_EQ(seasonal->amplitude, 0.5);
  EXPECT_EQ(seasonal->period_days, 28);
  // No end: runs to the horizon.
  EXPECT_EQ(seasonal->end_day, std::numeric_limits<int>::max());
}

TEST(TimelineParse, RejectsBadSpecs) {
  // Unknown kind / key.
  EXPECT_FALSE(Timeline::parse_event("comet_strike", "day=3").has_value());
  EXPECT_FALSE(Timeline::parse_event("outage", "banana=3").has_value());
  // Kind-inapplicable keys.
  EXPECT_FALSE(Timeline::parse_event("rollout_wave", "amp=0.5").has_value());
  EXPECT_FALSE(Timeline::parse_event("seasonal", "len=4").has_value());
  // Ranges.
  EXPECT_FALSE(Timeline::parse_event("outage", "start=9 end=3").has_value());
  EXPECT_FALSE(Timeline::parse_event("outage", "frac=1.5").has_value());
  EXPECT_FALSE(Timeline::parse_event("outage", "frac=nan").has_value());
  EXPECT_FALSE(Timeline::parse_event("seasonal", "amp=inf").has_value());
  EXPECT_FALSE(Timeline::parse_event("outage", "start=-2").has_value());
  // day= conflicts with start=/end=, and duplicates are rejected.
  EXPECT_FALSE(Timeline::parse_event("outage", "day=3 start=1").has_value());
  EXPECT_FALSE(Timeline::parse_event("outage", "start=1 start=2").has_value());
  // Malformed tokens.
  EXPECT_FALSE(Timeline::parse_event("outage", "start").has_value());
}

TEST(TimelineParse, FleetConfigTimelineSection) {
  auto cfg = FleetConfig::parse(
      "residences = 8\n"
      "days = 30\n"
      "timeline.rollout_wave = start=5 end=15 frac=0.5\n"
      "timeline.outage = start=20 end=22  # storm\n"
      "timeline.outage = start=2 end=28 frac=0.1 len=3\n"
      "timeline.seasonal = amp=0.25 period=14\n");
  ASSERT_TRUE(cfg.has_value());
  ASSERT_EQ(cfg->timeline->events.size(), 4u);
  EXPECT_EQ(cfg->timeline->events[0].kind, TimelineEventKind::rollout_wave);
  EXPECT_EQ(cfg->timeline->events[1].kind, TimelineEventKind::outage);
  EXPECT_EQ(cfg->timeline->events[2].duration_days, 3);
  EXPECT_EQ(cfg->timeline->events[3].kind, TimelineEventKind::seasonal);

  // Bad event lines fail the whole config parse.
  EXPECT_FALSE(FleetConfig::parse("timeline.outage = start=9 end=1\n"));
  EXPECT_FALSE(FleetConfig::parse("timeline.nope = day=1\n"));
}

TEST(TimelineParse, RejectsEventsStartingPastTheHorizon) {
  // An event whose window opens at or past the last simulated day can
  // never fire: that is a scenario bug, not intent, and must fail loudly —
  // wherever the `days` line sits relative to the event line.
  EXPECT_FALSE(FleetConfig::parse("days = 30\n"
                                  "timeline.outage = day=30\n"));
  EXPECT_FALSE(FleetConfig::parse("timeline.outage = start=100 end=120\n"
                                  "days = 30\n"));
  EXPECT_FALSE(FleetConfig::parse("days = 30\n"
                                  "timeline.nat64_migration = start=45\n"));
  // The last in-horizon start day is fine, as are open-ended windows and
  // windows whose tail runs past the horizon (evaluation clamps them).
  EXPECT_TRUE(FleetConfig::parse("days = 30\n"
                                 "timeline.outage = day=29\n"));
  EXPECT_TRUE(FleetConfig::parse("days = 30\n"
                                 "timeline.seasonal = amp=0.2\n"));
  EXPECT_TRUE(FleetConfig::parse("days = 30\n"
                                 "timeline.rollout_wave = start=10 end=90\n"));
  // The default horizon (no `days` line) is validated the same way.
  EXPECT_TRUE(FleetConfig::parse("timeline.outage = day=29\n"));
  EXPECT_FALSE(FleetConfig::parse("timeline.outage = day=30\n"));

  // Round trip: every committed scenario still parses under the rule.
  for (const auto& file : nbv6::testutil::scenario_files()) {
    SCOPED_TRACE(file);
    EXPECT_TRUE(FleetConfig::load(file).has_value());
  }
}

// -------------------------------------------------------------- purity

TEST(TimelineDayStateTest, PureFunctionOfSeedIndexDay) {
  Timeline tl;
  tl.events.push_back(
      *Timeline::parse_event("rollout_wave", "start=5 end=25 frac=0.6"));
  tl.events.push_back(
      *Timeline::parse_event("outage", "start=10 end=30 frac=0.3 len=3"));
  tl.events.push_back(
      *Timeline::parse_event("seasonal", "amp=0.4 period=14"));

  ResidenceTraits v4_home;   // v4-only base
  ResidenceTraits ds_home;
  ds_home.dual_stack_isp = true;

  const std::uint64_t seed = 99;
  const int days = 40;

  // Same (seed, index, day) -> same state, no matter the call order or how
  // many other (index, day) pairs were evaluated in between.
  auto probe = [&](int index, int day) {
    return timeline_day_state(tl, seed, index, day, days,
                              index % 2 ? ds_home : v4_home);
  };
  std::vector<TimelineDayState> forward, scrambled;
  for (int i = 0; i < 16; ++i)
    for (int d = 0; d < days; ++d) forward.push_back(probe(i, d));
  for (int d = days - 1; d >= 0; --d)
    for (int i = 15; i >= 0; --i) scrambled.push_back(probe(i, d));
  // Reindex scrambled back to forward order and compare.
  for (int i = 0; i < 16; ++i)
    for (int d = 0; d < days; ++d) {
      size_t fwd = static_cast<size_t>(i) * days + static_cast<size_t>(d);
      size_t scr = static_cast<size_t>(days - 1 - d) * 16 +
                   static_cast<size_t>(15 - i);
      EXPECT_EQ(forward[fwd], scrambled[scr]) << "i=" << i << " d=" << d;
    }

  // Monotone events stay monotone: once rolled out / migrated, never back.
  for (int i = 0; i < 16; ++i) {
    bool was_v6 = false;
    for (int d = 0; d < days; ++d) {
      auto s = probe(i, d);
      if (was_v6) {
        EXPECT_TRUE(s.isp_v6) << "rollback at i=" << i << " d=" << d;
      }
      was_v6 = s.isp_v6;
    }
  }
}

TEST(TimelineApply, PrefixStableUnderPopulationGrowth) {
  // Residence i's day plans must not depend on the population size —
  // the same stability sample_fleet guarantees for static configs.
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 12;
  cfg.days = 20;
  cfg.seed = 7;
  cfg.timeline->events.push_back(
      *Timeline::parse_event("rollout_wave", "start=3 end=12 frac=0.7"));
  cfg.timeline->events.push_back(
      *Timeline::parse_event("outage", "start=8 end=10 frac=0.4"));

  auto small = sample_fleet_detailed(cfg, catalog);
  apply_timeline(small, cfg.timeline, cfg.seed, cfg.days,
                 TimelinePlanMode::materialized);

  cfg.residences = 40;
  auto big = sample_fleet_detailed(cfg, catalog);
  apply_timeline(big, cfg.timeline, cfg.seed, cfg.days,
                 TimelinePlanMode::materialized);
  // And the lazy providers for the grown population must agree day by day
  // with the small population's materialized plans.
  auto big_lazy = sample_fleet_detailed(cfg, catalog);
  apply_timeline(big_lazy, cfg.timeline, cfg.seed, cfg.days);

  for (size_t i = 0; i < small.configs.size(); ++i) {
    EXPECT_EQ(small.configs[i].day_plan, big.configs[i].day_plan) << i;
    ASSERT_TRUE(big_lazy.configs[i].day_plan_fn) << i;
    for (int d = 0; d < cfg.days; ++d)
      EXPECT_EQ(big_lazy.configs[i].day_plan_fn(d),
                small.configs[i].day_plan[static_cast<size_t>(d)])
          << "residence " << i << " day " << d;
  }
}

TEST(TimelineApply, LazyMatchesMaterializedOnAllScenarios) {
  // The lazy provider and the materialized vector are two routes to the
  // same pure function; every committed scenario must agree on every
  // (residence, day) cell. (Full-simulation byte-parity is pinned by the
  // golden-replay suite; this covers the plan layer exhaustively and
  // cheaply.)
  auto catalog = traffic::build_paper_catalog();
  for (const auto& file : nbv6::testutil::scenario_files()) {
    SCOPED_TRACE(file);
    auto cfg = FleetConfig::load(file);
    ASSERT_TRUE(cfg.has_value());

    auto lazy = sample_fleet_detailed(*cfg, catalog);
    apply_timeline(lazy, cfg->timeline, cfg->seed, cfg->days,
                   TimelinePlanMode::lazy);
    auto mat = sample_fleet_detailed(*cfg, catalog);
    apply_timeline(mat, cfg->timeline, cfg->seed, cfg->days,
                   TimelinePlanMode::materialized);

    if (cfg->timeline->empty()) {
      // The static fast path: neither mode installs anything.
      for (const auto& c : lazy.configs) {
        EXPECT_TRUE(c.day_plan.empty());
        EXPECT_FALSE(c.day_plan_fn);
      }
      continue;
    }
    for (size_t i = 0; i < lazy.configs.size(); ++i) {
      // The default path must not keep any residences x days allocation.
      EXPECT_TRUE(lazy.configs[i].day_plan.empty()) << i;
      ASSERT_TRUE(lazy.configs[i].day_plan_fn) << i;
      EXPECT_FALSE(mat.configs[i].day_plan_fn) << i;
      ASSERT_EQ(mat.configs[i].day_plan.size(),
                static_cast<size_t>(cfg->days));
      for (int d = 0; d < cfg->days; ++d)
        EXPECT_EQ(lazy.configs[i].day_plan_fn(d),
                  mat.configs[i].day_plan[static_cast<size_t>(d)])
            << "residence " << i << " day " << d;
    }
  }
}

TEST(TimelineDayStateTest, ExtremeStartAndLenStayDefined) {
  // Parser-legal but absurd values (start and len at INT_MAX) must not
  // overflow the window arithmetic; the event simply never fires inside
  // the horizon.
  Timeline tl;
  tl.events.push_back(
      *Timeline::parse_event("outage", "start=2147483647 len=2147483647"));
  ResidenceTraits base;
  base.dual_stack_isp = true;
  for (int day = 0; day < 10; ++day) {
    auto s = timeline_day_state(tl, 1, 0, day, 10, base);
    EXPECT_FALSE(s.outage) << day;
  }
}

TEST(TimelineApply, LazyFallsBackToStaticOutsideTheHorizon) {
  // The materialized vector falls back to the static configuration for
  // any day outside [0, days): the simulator's bounds check returns
  // kStaticDayPlan. The lazy provider must match even when a config's
  // horizon is later extended past the days given to apply_timeline —
  // fired events must not leak into days the timeline never covered.
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 6;
  cfg.days = 12;
  cfg.seed = 31;
  cfg.timeline->events.push_back(
      *Timeline::parse_event("nat64_migration", "start=2 frac=1.0"));
  cfg.timeline->events.push_back(
      *Timeline::parse_event("seasonal", "amp=0.5 period=7"));

  auto fleet = sample_fleet_detailed(cfg, catalog);
  apply_timeline(fleet, cfg.timeline, cfg.seed, cfg.days);
  for (const auto& c : fleet.configs) {
    ASSERT_TRUE(c.day_plan_fn);
    for (int day : {-1, cfg.days.get(), cfg.days + 1, cfg.days + 300})
      EXPECT_EQ(c.day_plan_fn(day), traffic::kStaticDayPlan) << day;
    // Inside the horizon the migration is in force (frac=1.0, day 2+).
    EXPECT_TRUE(c.day_plan_fn(cfg.days - 1).nat64);
  }
}

TEST(TimelineApply, EmptyTimelineLeavesPlansEmpty) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 4;
  cfg.days = 10;
  auto fleet = sample_fleet_detailed(cfg, catalog);
  apply_timeline(fleet, Timeline{}, cfg.seed, cfg.days);
  for (const auto& c : fleet.configs) {
    EXPECT_TRUE(c.day_plan.empty());
    EXPECT_FALSE(c.day_plan_fn);  // static fast path stays function-free
  }
}

// ------------------------------------------------------------ behaviour

TEST(TimelineBehaviour, RolloutWaveRaisesPostWindowV6) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 32;
  cfg.days = 20;
  cfg.seed = 42;
  cfg.dual_stack_isp_frac = 0.0;  // nobody starts with IPv6
  cfg.broken_v6_frac = 0.0;
  cfg.timeline->events.push_back(
      *Timeline::parse_event("rollout_wave", "start=10 end=10 frac=1.0"));

  FleetEngine engine(catalog, 2);
  auto result = engine.run(cfg);

  auto metrics = std::vector<core::FleetMetric>{
      core::FleetMetric::v6_byte_fraction};
  auto pre = core::extract_metrics(result, metrics, core::DayWindow{0, 9});
  auto post = core::extract_metrics(result, metrics, core::DayWindow{10, 19});
  // Pre-rollout: v4-only homes push (essentially) no external v6 bytes;
  // post-rollout every home has working IPv6.
  size_t improved = 0, defined = 0;
  for (size_t i = 0; i < result.residences.size(); ++i) {
    double a = pre.values[0][i];
    double b = post.values[0][i];
    if (std::isnan(a) || std::isnan(b)) continue;
    ++defined;
    EXPECT_LT(a, 0.35) << i;  // HE dup flows leak a few v6 bytes at most
    if (b > a) ++improved;
  }
  ASSERT_GT(defined, 20u);
  EXPECT_GT(improved, defined * 8 / 10);

  // And the panel machinery agrees: significant pre/post shift.
  auto panel = core::compare_windows(result, metrics, core::DayWindow{0, 9},
                                     core::DayWindow{10, 19});
  ASSERT_EQ(panel.rows.size(), 1u);
  EXPECT_LT(panel.rows[0].median_a, panel.rows[0].median_b);
  EXPECT_TRUE(panel.rows[0].significant);
}

TEST(TimelineBehaviour, OutageSilencesExternalTrafficOnly) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 12;
  cfg.days = 9;
  cfg.seed = 5;
  cfg.background_only_frac = 0.0;
  cfg.timeline->events.push_back(
      *Timeline::parse_event("outage", "start=3 end=5 frac=1.0"));

  FleetEngine engine(catalog, 2);
  auto result = engine.run(cfg);
  EXPECT_GT(result.totals.outage_suppressed, 0u);

  for (const auto& run : result.residences) {
    const auto& ext = run.monitor.daily(flowmon::Scope::external);
    const auto& internal = run.monitor.daily(flowmon::Scope::internal);
    for (int day = 3; day <= 5; ++day) {
      auto it = ext.find(day);
      EXPECT_TRUE(it == ext.end() || it->second.total_flows() == 0)
          << run.config.name << " day " << day << " leaked external flows";
    }
    // The LAN stays noisy through the outage (flows start every hour, so
    // with 3 whole days some internal traffic is effectively certain).
    std::uint64_t internal_flows = 0;
    for (int day = 3; day <= 5; ++day) {
      auto it = internal.find(day);
      if (it != internal.end()) internal_flows += it->second.total_flows();
    }
    EXPECT_GT(internal_flows, 0u) << run.config.name;
  }
}

TEST(TimelineBehaviour, Nat64MakesWanAllV6) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 12;
  cfg.days = 8;
  cfg.seed = 11;
  cfg.broken_v6_frac = 0.0;
  cfg.timeline->events.push_back(
      *Timeline::parse_event("nat64_migration", "day=4 frac=1.0"));

  FleetEngine engine(catalog, 2);
  auto result = engine.run(cfg);
  auto metrics = std::vector<core::FleetMetric>{
      core::FleetMetric::v6_flow_fraction};
  // Window starts the day AFTER the migration day: sessions late on the
  // last pre-NAT64 evening can start flows up to a minute past midnight,
  // so day 4 still carries a handful of v4 stragglers by design.
  auto post = core::extract_metrics(result, metrics, core::DayWindow{5, 7});
  for (size_t i = 0; i < result.residences.size(); ++i) {
    double f = post.values[0][i];
    if (std::isnan(f)) continue;  // vacant-ish home with no external flows
    EXPECT_DOUBLE_EQ(f, 1.0) << "residence " << i
                             << " saw v4 WAN flows behind NAT64";
  }
}

TEST(TimelineBehaviour, SeasonalScalesActivityUpAndDown) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 24;
  cfg.days = 28;
  cfg.seed = 13;
  cfg.background_only_frac = 0.0;
  cfg.absence_prob = 0.0;
  // period=28: days 0-13 get the positive half-sine, days 14-27 the
  // negative half.
  cfg.timeline->events.push_back(
      *Timeline::parse_event("seasonal", "start=0 end=27 amp=0.9 period=28"));

  FleetEngine engine(catalog, 2);
  auto with = engine.run(cfg);
  cfg.timeline->events.clear();
  auto without = engine.run(cfg);

  auto day_flows = [](const engine::FleetResult& r, int lo, int hi) {
    std::uint64_t sum = 0;
    for (const auto& [day, split] : r.fleet.daily(flowmon::Scope::external))
      if (day >= lo && day <= hi) sum += split.total_flows();
    return sum;
  };
  // The boosted half clearly outgrows the suppressed half relative to the
  // flat run.
  double boost = static_cast<double>(day_flows(with, 0, 13)) /
                 static_cast<double>(day_flows(without, 0, 13));
  double damp = static_cast<double>(day_flows(with, 14, 27)) /
                static_cast<double>(day_flows(without, 14, 27));
  EXPECT_GT(boost, 1.1);
  EXPECT_LT(damp, 0.9);
}

// ------------------------------------------- adversarial event kinds

TEST(TimelineParse, AdversarialKindsParseWithTheirKeys) {
  auto renum = Timeline::parse_event("prefix_renumber", "start=5 end=20 frac=0.5");
  ASSERT_TRUE(renum.has_value());
  EXPECT_EQ(renum->kind, TimelineEventKind::prefix_renumber);

  auto svc = Timeline::parse_event("service_outage", "start=3 end=9 svc=7 len=2");
  ASSERT_TRUE(svc.has_value());
  EXPECT_EQ(svc->service, 7);
  EXPECT_EQ(svc->duration_days, 2);

  auto cgn = Timeline::parse_event("cgn_exhaustion", "day=4 ports=0");
  ASSERT_TRUE(cgn.has_value());
  EXPECT_EQ(cgn->port_budget, 0);  // zero budget is legal: no v4 WAN at all

  auto turn = Timeline::parse_event("device_turnover", "start=0 end=9 rate=0.75");
  ASSERT_TRUE(turn.has_value());
  EXPECT_DOUBLE_EQ(turn->turnover_rate, 0.75);

  // Required keys and kind-applicability.
  EXPECT_FALSE(Timeline::parse_event("service_outage", "day=1").has_value());
  EXPECT_FALSE(Timeline::parse_event("cgn_exhaustion", "day=1").has_value());
  EXPECT_FALSE(Timeline::parse_event("service_outage", "day=1 svc=64").has_value());
  EXPECT_FALSE(Timeline::parse_event("service_outage", "day=1 svc=-1").has_value());
  EXPECT_FALSE(Timeline::parse_event("cgn_exhaustion", "day=1 ports=-5").has_value());
  EXPECT_FALSE(Timeline::parse_event("device_turnover", "day=1 rate=1.5").has_value());
  EXPECT_FALSE(Timeline::parse_event("prefix_renumber", "day=1 svc=3").has_value());
  EXPECT_FALSE(Timeline::parse_event("cgn_exhaustion", "day=1 ports=10 len=2").has_value());
}

TEST(TimelineParse, ErrorMessagesNameTheOffendingToken) {
  auto msg = [](std::string_view kind, std::string_view spec) {
    std::string error;
    EXPECT_FALSE(Timeline::parse_event(kind, spec, &error).has_value());
    return error;
  };
  EXPECT_NE(msg("comet_strike", "day=3").find("unknown timeline event kind "
                                              "'comet_strike'"),
            std::string::npos);
  EXPECT_NE(msg("outage", "banana=3").find("unknown event key 'banana'"),
            std::string::npos);
  EXPECT_NE(msg("rollout_wave", "amp=0.5").find("not valid for kind "
                                                "'rollout_wave'"),
            std::string::npos);
  EXPECT_NE(msg("outage", "start=1 start=2").find("duplicate event key "
                                                  "'start'"),
            std::string::npos);
  EXPECT_NE(msg("outage", "frac=1.5").find("invalid value '1.5' for event "
                                           "key 'frac'"),
            std::string::npos);
  EXPECT_NE(msg("outage", "start=9 end=3").find("precedes"),
            std::string::npos);
  EXPECT_NE(msg("outage", "start").find("malformed token 'start'"),
            std::string::npos);
  EXPECT_NE(msg("service_outage", "day=1").find("'svc' is required"),
            std::string::npos);
  EXPECT_NE(msg("cgn_exhaustion", "day=1").find("'ports' is required"),
            std::string::npos);
  EXPECT_NE(msg("outage", "day=3 start=1").find("conflicts"),
            std::string::npos);
}

TEST(TimelineDayStateTest, PrefixRenumberStacksEpochsPermanently) {
  Timeline tl;
  tl.events.push_back(*Timeline::parse_event("prefix_renumber", "day=5"));
  tl.events.push_back(*Timeline::parse_event("prefix_renumber", "day=10"));
  ResidenceTraits base;
  base.dual_stack_isp = true;
  for (int index = 0; index < 8; ++index) {
    int prev = 0;
    for (int day = 0; day < 20; ++day) {
      auto s = timeline_day_state(tl, 99, index, day, 20, base);
      EXPECT_GE(s.prefix_epoch, prev) << "epoch rolled back";
      prev = s.prefix_epoch;
      if (day < 5) {
        EXPECT_EQ(s.prefix_epoch, 0);
      }
      if (day >= 10) {
        EXPECT_EQ(s.prefix_epoch, 2);  // both rotations landed
      }
    }
  }
}

TEST(TimelineDayStateTest, CgnBudgetTakesTheMinimumOfOverlappingEvents) {
  Timeline tl;
  tl.events.push_back(
      *Timeline::parse_event("cgn_exhaustion", "start=2 end=10 ports=500"));
  tl.events.push_back(
      *Timeline::parse_event("cgn_exhaustion", "start=5 end=7 ports=100"));
  ResidenceTraits base;
  for (int day = 0; day < 14; ++day) {
    auto s = timeline_day_state(tl, 7, 0, day, 14, base);
    if (day < 2 || day > 10) {
      EXPECT_EQ(s.cgn_port_budget, -1) << "day " << day;
    } else if (day >= 5 && day <= 7) {
      EXPECT_EQ(s.cgn_port_budget, 100) << "day " << day;
    } else {
      EXPECT_EQ(s.cgn_port_budget, 500) << "day " << day;
    }
  }
}

TEST(TimelineDayStateTest, DeviceTurnoverRampsAndPersists) {
  Timeline tl;
  tl.events.push_back(
      *Timeline::parse_event("device_turnover", "start=4 end=7 rate=0.8"));
  ResidenceTraits base;
  base.dual_stack_isp = true;
  double prev = 0.0;
  for (int day = 0; day < 12; ++day) {
    auto s = timeline_day_state(tl, 3, 0, day, 12, base);
    EXPECT_GE(s.v6_ok_uplift, 0.0);
    EXPECT_LE(s.v6_ok_uplift, 1.0);
    if (day < 4) {
      EXPECT_EQ(s.v6_ok_uplift, 0.0) << "day " << day;
    } else {
      EXPECT_GE(s.v6_ok_uplift, prev) << "uplift must never regress";
    }
    prev = s.v6_ok_uplift;
  }
  // Terminal value: the full rate by the window's end, held afterwards.
  auto end_state = timeline_day_state(tl, 3, 0, 7, 12, base);
  auto after = timeline_day_state(tl, 3, 0, 11, 12, base);
  EXPECT_DOUBLE_EQ(end_state.v6_ok_uplift, 0.8);
  EXPECT_DOUBLE_EQ(after.v6_ok_uplift, 0.8);
}

TEST(TimelineApply, DayPlanCarriesAdversarialState) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 6;
  cfg.days = 12;
  cfg.seed = 21;
  cfg.timeline->events.push_back(
      *Timeline::parse_event("prefix_renumber", "day=3"));
  cfg.timeline->events.push_back(
      *Timeline::parse_event("service_outage", "start=4 end=8 svc=2"));
  cfg.timeline->events.push_back(
      *Timeline::parse_event("cgn_exhaustion", "start=6 end=9 ports=40"));

  auto fleet = sample_fleet_detailed(cfg, catalog);
  apply_timeline(fleet, cfg.timeline, cfg.seed, cfg.days);
  for (const auto& rc : fleet.configs) {
    ASSERT_TRUE(static_cast<bool>(rc.day_plan_fn));
    EXPECT_EQ(rc.day_plan_fn(0).prefix_epoch, 0);
    EXPECT_EQ(rc.day_plan_fn(11).prefix_epoch, 1);
    EXPECT_EQ(rc.day_plan_fn(5).service_down_mask, std::uint64_t{1} << 2);
    EXPECT_EQ(rc.day_plan_fn(0).service_down_mask, 0u);
    EXPECT_EQ(rc.day_plan_fn(7).cgn_port_budget, 40);
    EXPECT_EQ(rc.day_plan_fn(0).cgn_port_budget, -1);
  }
}

TEST(TimelineBehaviour, ServiceOutageRejectsSessionsInWindowOnly) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 16;
  cfg.days = 12;
  cfg.seed = 5;
  // Popular service index 0 down for days 4..7 everywhere.
  cfg.timeline->events.push_back(
      *Timeline::parse_event("service_outage", "start=4 end=7 svc=0"));

  FleetEngine engine(catalog, 2);
  auto result = engine.run(cfg);
  EXPECT_GT(result.totals.service_outage_failed, 0u);
  EXPECT_GT(result.totals.flows, 0u);  // other services keep flowing
  for (size_t d = 0; d < result.totals.daily.size(); ++d) {
    if (d >= 4 && d <= 7) continue;
    EXPECT_EQ(result.totals.daily[d].service_outage_failed, 0u)
        << "failures outside the outage window on day " << d;
  }
  std::uint64_t in_window = 0;
  for (size_t d = 4; d <= 7; ++d)
    in_window += result.totals.daily[d].service_outage_failed;
  EXPECT_EQ(in_window, result.totals.service_outage_failed);
}

TEST(TimelineBehaviour, CgnExhaustionFailsV4SessionsAboveBudget) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 16;
  cfg.days = 10;
  cfg.seed = 11;
  cfg.dual_stack_isp_frac = 0.0;  // all-v4 fleet: every WAN session is CGN'd
  cfg.timeline->events.push_back(
      *Timeline::parse_event("cgn_exhaustion", "start=5 end=9 ports=10"));

  FleetEngine engine(catalog, 2);
  auto result = engine.run(cfg);
  EXPECT_GT(result.totals.cgn_failures, 0u);
  for (size_t d = 0; d < 5; ++d)
    EXPECT_EQ(result.totals.daily[d].cgn_failures, 0u)
        << "failures before the exhaustion window on day " << d;

  // An unconstrained rerun has no CGN failures at all.
  FleetConfig open = cfg;
  open.timeline->events.clear();
  auto baseline = engine.run(open);
  EXPECT_EQ(baseline.totals.cgn_failures, 0u);
}

TEST(TimelineBehaviour, DeviceTurnoverRaisesV6UseInBrokenHomes) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 24;
  cfg.days = 16;
  cfg.seed = 13;
  cfg.dual_stack_isp_frac = 1.0;
  cfg.broken_v6_frac = 1.0;  // every home starts with flaky device IPv6
  cfg.timeline->events.push_back(
      *Timeline::parse_event("device_turnover", "start=8 end=15 rate=1"));

  FleetEngine engine(catalog, 2);
  auto result = engine.run(cfg);
  auto metrics =
      std::vector<core::FleetMetric>{core::FleetMetric::v6_byte_fraction};
  auto panel = core::compare_windows(result, metrics, core::DayWindow{0, 7},
                                     core::DayWindow{8, 15});
  ASSERT_EQ(panel.rows.size(), 1u);
  EXPECT_LT(panel.rows[0].median_a, panel.rows[0].median_b);
}

TEST(TimelineBehaviour, CpeFixHealsBrokenHomes) {
  auto catalog = traffic::build_paper_catalog();
  FleetConfig cfg;
  cfg.residences = 24;
  cfg.days = 16;
  cfg.seed = 17;
  cfg.dual_stack_isp_frac = 1.0;
  cfg.broken_v6_frac = 1.0;  // everyone starts broken
  cfg.timeline->events.push_back(
      *Timeline::parse_event("cpe_fix", "day=8 frac=1.0"));

  FleetEngine engine(catalog, 2);
  auto result = engine.run(cfg);
  auto metrics = std::vector<core::FleetMetric>{
      core::FleetMetric::v6_byte_fraction};
  auto panel = core::compare_windows(result, metrics, core::DayWindow{0, 7},
                                     core::DayWindow{8, 15});
  ASSERT_EQ(panel.rows.size(), 1u);
  EXPECT_LT(panel.rows[0].median_a, panel.rows[0].median_b);
}

// ------------------------------------------- open-loop arrival shaping

TEST(TimelineParse, ArrivalShapingKindsParseWithTheirKeys) {
  auto ramp = Timeline::parse_event("lambda_ramp", "start=7 end=21 mult=3");
  ASSERT_TRUE(ramp.has_value());
  EXPECT_EQ(ramp->kind, TimelineEventKind::lambda_ramp);
  EXPECT_DOUBLE_EQ(ramp->mult, 3.0);

  auto crowd = Timeline::parse_event("flash_crowd",
                                     "day=4 hour=20 hours=2 mult=6");
  ASSERT_TRUE(crowd.has_value());
  EXPECT_EQ(crowd->kind, TimelineEventKind::flash_crowd);
  EXPECT_EQ(crowd->hour, 20);
  EXPECT_EQ(crowd->hour_span, 2);
  EXPECT_DOUBLE_EQ(crowd->mult, 6.0);
  // `hours` defaults to a single burst hour.
  EXPECT_EQ(Timeline::parse_event("flash_crowd", "day=1 hour=8 mult=2")
                ->hour_span, 1);

  // Required keys, ranges, and kind-applicability.
  EXPECT_FALSE(Timeline::parse_event("lambda_ramp", "day=1").has_value());
  EXPECT_FALSE(Timeline::parse_event("lambda_ramp", "day=1 mult=0").has_value());
  EXPECT_FALSE(
      Timeline::parse_event("lambda_ramp", "day=1 mult=17").has_value());
  EXPECT_FALSE(
      Timeline::parse_event("lambda_ramp", "day=1 mult=2 hour=3").has_value());
  EXPECT_FALSE(Timeline::parse_event("flash_crowd", "day=1 mult=2").has_value());
  EXPECT_FALSE(
      Timeline::parse_event("flash_crowd", "day=1 hour=20").has_value());
  EXPECT_FALSE(Timeline::parse_event("flash_crowd",
                                     "day=1 hour=24 mult=2").has_value());
  EXPECT_FALSE(Timeline::parse_event("flash_crowd",
                                     "day=1 hour=3 hours=0 mult=2").has_value());
  EXPECT_FALSE(Timeline::parse_event("flash_crowd",
                                     "day=1 hour=3 hours=25 mult=2").has_value());
  EXPECT_FALSE(Timeline::parse_event("outage", "day=1 mult=2").has_value());
  EXPECT_FALSE(Timeline::parse_event("seasonal", "hour=3").has_value());

  std::string error;
  Timeline::parse_event("lambda_ramp", "day=1", &error);
  EXPECT_NE(error.find("'mult' is required"), std::string::npos);
  Timeline::parse_event("flash_crowd", "day=1 mult=2", &error);
  EXPECT_NE(error.find("'hour' is required"), std::string::npos);
}

TEST(TimelineDayStateTest, LambdaRampClimbsLinearlyAndHolds) {
  Timeline tl;
  tl.events.push_back(
      *Timeline::parse_event("lambda_ramp", "start=4 end=7 mult=5"));
  ResidenceTraits base;
  double prev = 1.0;
  for (int day = 0; day < 12; ++day) {
    auto s = timeline_day_state(tl, 3, 0, day, 12, base);
    if (day < 4) {
      // Pre-window days must be *exactly* 1.0 — batch-mode bit identity
      // depends on the multiplier being the multiplicative identity.
      EXPECT_EQ(s.lambda_mult, 1.0) << "day " << day;
    } else {
      EXPECT_GE(s.lambda_mult, prev) << "ramp must never regress";
      EXPECT_LE(s.lambda_mult, 5.0);
    }
    prev = s.lambda_mult;
  }
  EXPECT_DOUBLE_EQ(timeline_day_state(tl, 3, 0, 7, 12, base).lambda_mult, 5.0);
  EXPECT_DOUBLE_EQ(timeline_day_state(tl, 3, 0, 11, 12, base).lambda_mult, 5.0);
}

TEST(TimelineDayStateTest, StackedRampsComposeAndClampAtSixteen) {
  Timeline tl;
  for (int i = 0; i < 3; ++i)
    tl.events.push_back(
        *Timeline::parse_event("lambda_ramp", "start=0 end=0 mult=8"));
  ResidenceTraits base;
  // 8^3 = 512 raw; the composite clamps to the documented ceiling.
  auto s = timeline_day_state(tl, 5, 0, 3, 6, base);
  EXPECT_DOUBLE_EQ(s.lambda_mult, 16.0);
}

TEST(TimelineDayStateTest, FlashCrowdsUnionHoursAndMultiplyIntensity) {
  Timeline tl;
  tl.events.push_back(
      *Timeline::parse_event("flash_crowd", "start=2 end=4 hour=20 hours=2 mult=3"));
  tl.events.push_back(
      *Timeline::parse_event("flash_crowd", "day=3 hour=21 hours=3 mult=2"));
  ResidenceTraits base;
  for (int day = 0; day < 6; ++day) {
    auto s = timeline_day_state(tl, 9, 0, day, 6, base);
    if (day < 2 || day > 4) {
      EXPECT_EQ(s.flash_hour_mask, 0u) << "day " << day;
      EXPECT_EQ(s.flash_mult, 1.0) << "day " << day;
    } else if (day == 3) {
      // Both crowds active: hours {20,21} ∪ {21,22,23}, intensity 3*2.
      EXPECT_EQ(s.flash_hour_mask,
                (1u << 20) | (1u << 21) | (1u << 22) | (1u << 23));
      EXPECT_DOUBLE_EQ(s.flash_mult, 6.0);
    } else {
      EXPECT_EQ(s.flash_hour_mask, (1u << 20) | (1u << 21)) << "day " << day;
      EXPECT_DOUBLE_EQ(s.flash_mult, 3.0) << "day " << day;
    }
  }
  // A span running past hour 23 drops the overflow instead of wrapping.
  Timeline late;
  late.events.push_back(
      *Timeline::parse_event("flash_crowd", "day=0 hour=23 hours=4 mult=2"));
  auto s = timeline_day_state(late, 9, 0, 0, 2, base);
  EXPECT_EQ(s.flash_hour_mask, 1u << 23);
}

}  // namespace
}  // namespace nbv6::engine
