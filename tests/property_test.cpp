// Cross-module property sweeps over randomized inputs: invariants that
// must hold for ANY input, checked across many seeds via TEST_P.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/ip.h"
#include "net/prefix.h"
#include "stats/descriptive.h"
#include "stats/rng.h"
#include "stats/stl.h"
#include "stats/wilcoxon.h"
#include "web/psl.h"

namespace nbv6 {
namespace {

class Seeded : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  stats::Rng rng_{GetParam()};
};

// ------------------------------------------------------ address round-trips

TEST_P(Seeded, RandomV4RoundTripsThroughText) {
  for (int i = 0; i < 500; ++i) {
    net::IPv4Addr a(static_cast<std::uint32_t>(rng_()));
    auto parsed = net::IPv4Addr::parse(a.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, a);
  }
}

TEST_P(Seeded, RandomV6RoundTripsThroughText) {
  for (int i = 0; i < 500; ++i) {
    auto a = net::IPv6Addr::from_halves(rng_(), rng_());
    auto parsed = net::IPv6Addr::parse(a.to_string());
    ASSERT_TRUE(parsed.has_value()) << a.to_string();
    EXPECT_EQ(*parsed, a) << a.to_string();
  }
}

TEST_P(Seeded, RandomV6WithZeroRunsRoundTrips) {
  // Force zero groups to stress the :: compression logic.
  for (int i = 0; i < 500; ++i) {
    std::array<std::uint16_t, 8> groups{};
    for (auto& g : groups)
      g = rng_.chance(0.6) ? 0 : static_cast<std::uint16_t>(rng_());
    auto a = net::IPv6Addr::from_groups(groups);
    auto parsed = net::IPv6Addr::parse(a.to_string());
    ASSERT_TRUE(parsed.has_value()) << a.to_string();
    EXPECT_EQ(*parsed, a) << a.to_string();
  }
}

// ------------------------------------------------------------ prefix algebra

TEST_P(Seeded, PrefixContainmentIsTransitive) {
  for (int i = 0; i < 300; ++i) {
    auto addr = net::IPv4Addr(static_cast<std::uint32_t>(rng_()));
    int l1 = static_cast<int>(rng_.below(33));
    int l2 = static_cast<int>(rng_.below(33));
    int l3 = static_cast<int>(rng_.below(33));
    int lo = std::min({l1, l2, l3}), hi = std::max({l1, l2, l3});
    int mid = l1 + l2 + l3 - lo - hi;
    net::Prefix4 outer(addr, lo), middle(addr, mid), inner(addr, hi);
    EXPECT_TRUE(outer.contains(middle));
    EXPECT_TRUE(middle.contains(inner));
    EXPECT_TRUE(outer.contains(inner));
  }
}

TEST_P(Seeded, MaskIsIdempotent) {
  for (int i = 0; i < 300; ++i) {
    auto a = net::IPv4Addr(static_cast<std::uint32_t>(rng_()));
    int len = static_cast<int>(rng_.below(33));
    auto once = net::mask_to_length(a, len);
    EXPECT_EQ(net::mask_to_length(once, len), once);
    auto a6 = net::IPv6Addr::from_halves(rng_(), rng_());
    int len6 = static_cast<int>(rng_.below(129));
    auto once6 = net::mask_to_length(a6, len6);
    EXPECT_EQ(net::mask_to_length(once6, len6), once6);
  }
}

// ------------------------------------------------------------ statistics

TEST_P(Seeded, QuantilesAreMonotone) {
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng_.normal(0, 10);
  double prev = -1e300;
  for (double q = 0.0; q <= 1.0001; q += 0.05) {
    double v = stats::quantile(xs, std::min(1.0, q));
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST_P(Seeded, EcdfInverseIsRightInverse) {
  std::vector<double> xs(150);
  for (auto& x : xs) x = rng_.uniform(-5, 5);
  stats::Ecdf cdf(xs);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    // F(F^-1(q)) >= q, and F^-1 returns an actual sample.
    double v = cdf.inverse(q);
    EXPECT_GE(cdf(v) + 1e-12, q);
    EXPECT_NE(std::find(xs.begin(), xs.end(), v), xs.end());
  }
}

TEST_P(Seeded, BoxplotPartitionsData) {
  std::vector<double> xs(120);
  for (auto& x : xs) x = rng_.lognormal(0, 1.5);
  auto b = stats::boxplot(xs);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.whisker_low, b.q1);
  EXPECT_GE(b.whisker_high, b.q3);
  // Every point is inside the whiskers or reported as an outlier.
  for (double x : xs) {
    bool inside = x >= b.whisker_low && x <= b.whisker_high;
    bool outlier = std::find(b.outliers.begin(), b.outliers.end(), x) !=
                   b.outliers.end();
    EXPECT_TRUE(inside || outlier) << x;
  }
}

TEST_P(Seeded, StlReconstructsAnySeries) {
  const size_t n = 24 * 10;
  std::vector<double> ys(n);
  for (auto& y : ys) y = rng_.uniform(0, 1);
  stats::StlConfig cfg;
  cfg.period = 24;
  auto r = stats::stl_decompose(ys, cfg);
  for (size_t i = 0; i < n; i += 7)
    EXPECT_NEAR(r.trend[i] + r.seasonal[i] + r.remainder[i], ys[i], 1e-9);
}

TEST_P(Seeded, WilcoxonPIsValidProbability) {
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 2 + rng_.below(40);
    std::vector<double> d(n);
    for (auto& x : d) x = rng_.normal(0, 1);
    auto r = stats::wilcoxon_signed_rank(d);
    if (!r) continue;
    EXPECT_GT(r->p_value, 0.0);
    EXPECT_LE(r->p_value, 1.0);
    EXPECT_GE(r->effect_size_r, -1.0);
    EXPECT_LE(r->effect_size_r, 1.0);
  }
}

TEST_P(Seeded, WilcoxonNullIsRarelySignificant) {
  // Under the null (symmetric differences), p < 0.05 should be ~5%.
  int significant = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> d(30);
    for (auto& x : d) x = rng_.normal(0, 1);
    auto r = stats::wilcoxon_signed_rank(d);
    if (r && r->p_value < 0.05) ++significant;
  }
  EXPECT_LT(significant, trials / 5);  // generous bound, flake-proof
}

TEST_P(Seeded, HolmNeverRejectsMoreThanBonferroniAllows) {
  size_t m = 1 + rng_.below(20);
  std::vector<double> p(m);
  for (auto& x : p) x = rng_.uniform();
  auto holm = stats::holm_bonferroni(p, 0.05);
  // Anything Bonferroni rejects, Holm must also reject (Holm dominates).
  for (size_t i = 0; i < m; ++i) {
    if (p[i] <= 0.05 / static_cast<double>(m)) {
      EXPECT_TRUE(holm.reject[i]);
    }
    if (holm.reject[i]) {
      EXPECT_LE(p[i], 0.05);
    }
  }
}

// ------------------------------------------------------------ PSL

TEST_P(Seeded, RegistrableDomainIsIdempotent) {
  auto psl = web::PublicSuffixList::builtin();
  static constexpr const char* kTlds[] = {"com", "co.uk", "io", "zz", "de"};
  for (int i = 0; i < 200; ++i) {
    std::string host;
    int labels = 1 + static_cast<int>(rng_.below(4));
    for (int l = 0; l < labels; ++l) {
      host += "l";
      host += std::to_string(rng_.below(50));
      host += ".";
    }
    host += kTlds[rng_.below(std::size(kTlds))];
    auto reg = psl.registrable_domain(host);
    ASSERT_TRUE(reg.has_value()) << host;
    // The registrable domain of a registrable domain is itself.
    EXPECT_EQ(psl.registrable_domain(*reg), *reg) << host;
    // And the host is same-site with its own registrable domain.
    EXPECT_TRUE(psl.same_site(host, *reg));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Seeded,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

}  // namespace
}  // namespace nbv6
