#include <gtest/gtest.h>

#include <set>

#include "core/client_analysis.h"
#include "flowmon/monitor.h"
#include "traffic/generator.h"
#include "traffic/happy_eyeballs.h"
#include "traffic/residence.h"
#include "traffic/service_catalog.h"

namespace nbv6::traffic {
namespace {

// ------------------------------------------------------------ catalog

TEST(ServiceCatalog, PaperCatalogHasTheNamedServices) {
  auto cat = build_paper_catalog();
  EXPECT_GE(cat.size(), 35u);
  // Leaders and laggards the paper calls out.
  ASSERT_TRUE(cat.find_by_asn(32590));  // Valve
  ASSERT_TRUE(cat.find_by_asn(30103));  // Zoom
  ASSERT_TRUE(cat.find_by_asn(46489));  // Twitch
  ASSERT_TRUE(cat.find_by_asn(47));     // USC
  EXPECT_EQ(cat.at(*cat.find_by_asn(30103)).v6_readiness, 0.0);
  EXPECT_EQ(cat.at(*cat.find_by_asn(46489)).v6_readiness, 0.0);
  EXPECT_GT(cat.at(*cat.find_by_asn(32590)).v6_readiness, 0.8);
  EXPECT_GT(cat.at(*cat.find_by_asn(15169)).v6_readiness, 0.9);  // Google
}

TEST(ServiceCatalog, V4OnlyServicesHaveNoV6Prefix) {
  auto cat = build_paper_catalog();
  for (const auto& s : cat.services()) {
    if (s.v6_readiness == 0.0) {
      EXPECT_FALSE(s.prefix6.has_value()) << s.name;
    } else {
      EXPECT_TRUE(s.prefix6.has_value()) << s.name;
    }
  }
}

TEST(ServiceCatalog, EndpointDualStackShareMatchesReadiness) {
  auto cat = build_paper_catalog();
  for (size_t i = 0; i < cat.size(); ++i) {
    int dual = 0;
    for (int j = 0; j < ServiceCatalog::kEndpointsPerService; ++j)
      if (cat.endpoint(i, j).v6) ++dual;
    double expected = cat.at(i).v6_readiness;
    double got = static_cast<double>(dual) / ServiceCatalog::kEndpointsPerService;
    EXPECT_NEAR(got, expected, 0.55 / ServiceCatalog::kEndpointsPerService + 1e-9)
        << cat.at(i).name;
  }
}

TEST(ServiceCatalog, EndpointsLiveInsideServicePrefixes) {
  auto cat = build_paper_catalog();
  for (size_t i = 0; i < cat.size(); ++i) {
    const auto& s = cat.at(i);
    for (int j = 0; j < ServiceCatalog::kEndpointsPerService; ++j) {
      auto e = cat.endpoint(i, j);
      EXPECT_TRUE(s.prefix4.contains(e.v4)) << s.name;
      if (e.v6) {
        EXPECT_TRUE(s.prefix6->contains(*e.v6)) << s.name;
      }
    }
  }
}

TEST(ServiceCatalog, BgpAttributionRoundTrips) {
  auto cat = build_paper_catalog();
  for (size_t i = 0; i < cat.size(); ++i) {
    auto e = cat.endpoint(i, 3);
    auto asn = cat.as_map().lookup(net::IpAddr{e.v4});
    ASSERT_TRUE(asn.has_value());
    EXPECT_EQ(*asn, cat.at(i).asn);
    if (e.v6) {
      auto asn6 = cat.as_map().lookup(net::IpAddr{*e.v6});
      ASSERT_TRUE(asn6.has_value());
      EXPECT_EQ(*asn6, cat.at(i).asn);
    }
  }
}

TEST(ServiceCatalog, ReverseDnsMapsEndpointsToDomains) {
  auto cat = build_paper_catalog();
  auto idx = cat.find_by_asn(2906).value();  // Netflix AS-SSI
  auto e = cat.endpoint(idx, 0);
  EXPECT_EQ(cat.reverse_dns(net::IpAddr{e.v4}), "nflxvideo.net");
  EXPECT_EQ(cat.reverse_dns(net::IpAddr{net::IPv4Addr(8, 8, 8, 8)}), "");
}

TEST(ServiceCatalog, CategoriesCoverAllFive) {
  auto cat = build_paper_catalog();
  std::set<ServiceCategory> seen;
  for (const auto& s : cat.services()) seen.insert(s.category);
  EXPECT_EQ(seen.size(), 5u);
}

// ------------------------------------------------------------ happy eyeballs

TEST(HappyEyeballs, V6PreferredWhenBothWork) {
  stats::Rng rng(1);
  HappyEyeballsConfig cfg;
  cfg.dup_flow_prob = 0.0;
  auto d = happy_eyeballs_race(true, true, true, 20, 20, rng, cfg);
  EXPECT_FALSE(d.failed);
  EXPECT_EQ(d.used, net::Family::v6);
  EXPECT_FALSE(d.opened_both);
}

TEST(HappyEyeballs, V4WinsOnlyWithBigRttGap) {
  stats::Rng rng(2);
  HappyEyeballsConfig cfg;
  // v6 slower but within the 250ms head start: v6 still wins.
  auto d1 = happy_eyeballs_race(true, true, true, 20, 200, rng, cfg);
  EXPECT_EQ(d1.used, net::Family::v6);
  // v6 slower than v4 + head start: v4 wins, both flows recorded.
  auto d2 = happy_eyeballs_race(true, true, true, 20, 400, rng, cfg);
  EXPECT_EQ(d2.used, net::Family::v4);
  EXPECT_TRUE(d2.opened_both);
}

TEST(HappyEyeballs, BrokenV6FallsBack) {
  stats::Rng rng(3);
  auto d = happy_eyeballs_race(true, true, false, 20, 20, rng);
  EXPECT_EQ(d.used, net::Family::v4);
  EXPECT_TRUE(d.opened_both);  // the dead v6 attempt still left a flow
}

TEST(HappyEyeballs, V4OnlyEndpoint) {
  stats::Rng rng(4);
  auto d = happy_eyeballs_race(true, false, true, 20, 20, rng);
  EXPECT_EQ(d.used, net::Family::v4);
  EXPECT_FALSE(d.opened_both);
}

TEST(HappyEyeballs, V6OnlyEndpoint) {
  stats::Rng rng(5);
  auto d = happy_eyeballs_race(false, true, true, 20, 20, rng);
  EXPECT_EQ(d.used, net::Family::v6);
}

TEST(HappyEyeballs, TotalFailure) {
  stats::Rng rng(6);
  auto d = happy_eyeballs_race(false, true, false, 20, 20, rng);
  EXPECT_TRUE(d.failed);
  auto d2 = happy_eyeballs_race(false, false, true, 20, 20, rng);
  EXPECT_TRUE(d2.failed);
}

TEST(HappyEyeballs, DupFlowProbabilityApplies) {
  stats::Rng rng(7);
  HappyEyeballsConfig cfg;
  cfg.dup_flow_prob = 1.0;
  auto d = happy_eyeballs_race(true, true, true, 20, 20, rng, cfg);
  EXPECT_EQ(d.used, net::Family::v6);
  EXPECT_TRUE(d.opened_both);
}

// ------------------------------------------------------------ residences

TEST(Residences, FiveConfiguredLikeThePaper) {
  auto rs = paper_residences();
  ASSERT_EQ(rs.size(), 5u);
  EXPECT_EQ(rs[0].name, "A");
  EXPECT_EQ(rs[4].name, "E");
  // C has broken device IPv6; D and E have partial visibility.
  EXPECT_LT(rs[2].device_v6_ok_frac, 0.6);
  EXPECT_LT(rs[3].visibility, 1.0);
  EXPECT_LT(rs[4].visibility, 1.0);
  // A has the spring-break absence scripted.
  EXPECT_FALSE(rs[0].away_day_ranges.empty());
}

TEST(Generator, PresenceIsDiurnal) {
  auto cat = build_paper_catalog();
  auto cfg = paper_residences()[0];
  ResidenceSimulator sim(cat, cfg);
  // Evening peak beats 3am; away days are fully quiet.
  EXPECT_GT(sim.presence(10, 21), sim.presence(10, 3) * 3);
  int away_day = cfg.away_day_ranges[0].first;
  EXPECT_EQ(sim.presence(away_day, 21), 0.0);
}

TEST(Generator, WorkdayDipOnWeekdaysOnly) {
  auto cat = build_paper_catalog();
  ResidenceConfig cfg;
  cfg.name = "T";
  cfg.start_weekday = 0;  // day 0 = Monday
  ResidenceSimulator sim(cat, cfg);
  EXPECT_LT(sim.presence(0, 13), sim.presence(5, 13));  // Mon < Sat at 1pm
}

TEST(Generator, ShortRunProducesSaneTraffic) {
  auto cat = build_paper_catalog();
  ResidenceConfig cfg = paper_residences()[0];
  cfg.days = 7;
  flowmon::ConntrackTable table;
  flowmon::FlowMonitor mon(table);
  ResidenceSimulator sim(cat, cfg);
  auto stats = sim.run(table);

  EXPECT_GT(stats.sessions, 100u);
  EXPECT_GT(stats.flows, stats.sessions);  // sessions have >= 1 flow
  EXPECT_EQ(table.live_count(), 0u);       // everything flushed

  const auto& ext = mon.totals(flowmon::Scope::external);
  EXPECT_GT(ext.total_bytes(), 0u);
  EXPECT_GT(ext.v6.bytes, 0u);  // dual-stack residence sends some v6
  EXPECT_GT(ext.v4.bytes, 0u);  // and some services are v4-only

  const auto& in = mon.totals(flowmon::Scope::internal);
  EXPECT_GT(in.total_flows(), 0u);
}

TEST(Generator, DeterministicBySeed) {
  auto cat = build_paper_catalog();
  ResidenceConfig cfg = paper_residences()[1];
  cfg.days = 3;

  auto run_once = [&] {
    flowmon::ConntrackTable table;
    flowmon::FlowMonitor mon(table);
    ResidenceSimulator sim(cat, cfg);
    sim.run(table);
    return mon.totals(flowmon::Scope::external).total_bytes();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Generator, BrokenDeviceV6SuppressesV6Share) {
  auto cat = build_paper_catalog();
  ResidenceConfig good;
  good.name = "G";
  good.days = 14;
  good.device_v6_ok_frac = 1.0;
  good.seed = 99;
  ResidenceConfig broken = good;
  broken.name = "B";
  broken.device_v6_ok_frac = 0.2;

  auto fraction = [&](const ResidenceConfig& cfg) {
    flowmon::ConntrackTable table;
    flowmon::FlowMonitor mon(table);
    ResidenceSimulator sim(cat, cfg);
    sim.run(table);
    return mon.totals(flowmon::Scope::external).v6_byte_fraction();
  };
  EXPECT_GT(fraction(good), fraction(broken) + 0.15);
}

TEST(Generator, VisibilityScalesVolumeDown) {
  auto cat = build_paper_catalog();
  ResidenceConfig full;
  full.name = "F";
  full.days = 7;
  full.seed = 7;
  ResidenceConfig partial = full;
  partial.visibility = 0.3;

  auto volume = [&](const ResidenceConfig& cfg) {
    flowmon::ConntrackTable table;
    flowmon::FlowMonitor mon(table);
    ResidenceSimulator sim(cat, cfg);
    sim.run(table);
    return mon.totals(flowmon::Scope::external).total_bytes();
  };
  EXPECT_GT(volume(full), volume(partial));
}

TEST(Generator, AwayPeriodKillsInteractiveTraffic) {
  auto cat = build_paper_catalog();
  ResidenceConfig cfg;
  cfg.name = "A";
  cfg.days = 4;
  cfg.away_day_ranges = {{1, 2}};
  cfg.seed = 5;
  flowmon::ConntrackTable table;
  flowmon::FlowMonitor mon(table);
  ResidenceSimulator sim(cat, cfg);
  sim.run(table);

  const auto& daily = mon.daily(flowmon::Scope::external);
  auto bytes_on = [&](int day) -> std::uint64_t {
    auto it = daily.find(day);
    return it == daily.end() ? 0 : it->second.total_bytes();
  };
  // Away days still see background chatter but far less than present days.
  EXPECT_LT(bytes_on(1) + bytes_on(2), (bytes_on(0) + bytes_on(3)) / 2);
}

// ------------------------------------------------- client analysis (core)

TEST(ClientAnalysis, AsUsageAttributesTraffic) {
  auto cat = build_paper_catalog();
  ResidenceConfig cfg = paper_residences()[0];
  cfg.days = 10;
  flowmon::ConntrackTable table;
  flowmon::FlowMonitor mon(table);
  ResidenceSimulator sim(cat, cfg);
  sim.run(table);

  auto usage = core::as_usage(mon, cat.as_map(), 0.0);
  EXPECT_GT(usage.size(), 10u);
  std::uint64_t total = 0;
  for (const auto& u : usage) {
    total += u.bytes;
    EXPECT_GE(u.v6_fraction(), 0.0);
    EXPECT_LE(u.v6_fraction(), 1.0);
    EXPECT_FALSE(u.as_name.empty());
  }
  // All external bytes land in some catalogued AS.
  EXPECT_EQ(total, mon.totals(flowmon::Scope::external).total_bytes());
}

TEST(ClientAnalysis, V4OnlyServicesShowZeroV6) {
  auto cat = build_paper_catalog();
  ResidenceConfig cfg = paper_residences()[2];  // Twitch/Zoom heavy
  cfg.days = 10;
  flowmon::ConntrackTable table;
  flowmon::FlowMonitor mon(table);
  ResidenceSimulator sim(cat, cfg);
  sim.run(table);

  for (const auto& u : core::as_usage(mon, cat.as_map(), 0.0)) {
    if (u.asn == 30103 || u.asn == 46489 || u.asn == 47) {
      EXPECT_EQ(u.v6_fraction(), 0.0) << u.as_name;
    }
  }
}

TEST(ClientAnalysis, ResidenceReportConsistency) {
  auto cat = build_paper_catalog();
  ResidenceConfig cfg = paper_residences()[0];
  cfg.days = 5;
  flowmon::ConntrackTable table;
  flowmon::FlowMonitor mon(table);
  ResidenceSimulator sim(cat, cfg);
  sim.run(table);

  auto report = core::analyze_residence("A", mon);
  EXPECT_EQ(report.name, "A");
  EXPECT_NEAR(report.external.total_gb,
              report.external.v4_gb + report.external.v6_gb, 1e-9);
  EXPECT_GE(report.external.overall_byte_fraction, 0.0);
  EXPECT_LE(report.external.overall_byte_fraction, 1.0);
  EXPECT_EQ(report.external.daily_byte_fraction.count, 5u);
}

TEST(ClientAnalysis, CrossResidenceJoinFiltersByPresence) {
  std::vector<std::vector<core::AsUsage>> per_res(3);
  core::AsUsage a;
  a.asn = 100;
  a.as_name = "EVERYWHERE";
  a.bytes = 10;
  per_res[0].push_back(a);
  per_res[1].push_back(a);
  per_res[2].push_back(a);
  core::AsUsage b;
  b.asn = 200;
  b.as_name = "RARE";
  b.bytes = 10;
  per_res[0].push_back(b);

  auto joined = core::ases_at_min_residences(per_res, 3);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].asn, 100u);
  EXPECT_EQ(joined[0].fractions.size(), 3u);
}

TEST(ClientAnalysis, DiurnalDecompositionShapes) {
  auto cat = build_paper_catalog();
  ResidenceConfig cfg = paper_residences()[0];
  cfg.days = 28;  // four weeks: enough for the weekly season
  flowmon::ConntrackTable table;
  flowmon::FlowMonitor mon(table);
  ResidenceSimulator sim(cat, cfg);
  sim.run(table);

  auto d = core::diurnal_decomposition(mon, /*by_bytes=*/true);
  ASSERT_FALSE(d.observed.empty());
  EXPECT_EQ(d.trend.size(), d.observed.size());
  EXPECT_EQ(d.daily.size(), d.observed.size());
  EXPECT_EQ(d.weekly.size(), d.observed.size());
  // Reconstruction identity.
  for (size_t i = 0; i < d.observed.size(); i += 37) {
    EXPECT_NEAR(d.trend[i] + d.daily[i] + d.weekly[i] + d.remainder[i],
                d.observed[i], 1e-9);
  }
}

}  // namespace
}  // namespace nbv6::traffic
