// Fleet-statistics tests: the unpaired rank-sum test against hand-computed
// exact p-values, the streaming CDF/quantile accumulator against the
// sorted-vector reference, Holm panel adjustment against hand-computed
// sets, and the acceptance bar — the Wilcoxon group-comparison report is
// bit-identical across 1, 4, and 8 engine lanes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/fleet_analysis.h"
#include "engine/fleet.h"
#include "stats/descriptive.h"
#include "stats/fleet_stats.h"
#include "stats/rng.h"
#include "traffic/service_catalog.h"

namespace nbv6 {
namespace {

// --------------------------------------------------- Wilcoxon rank-sum

TEST(RankSum, FullySeparatedExactP) {
  // xs all below ys: U1 = 0. Only {1,2,3} of C(6,3) = 20 rank subsets
  // reaches the minimum sum, so two-sided p = 2/20 = 0.1 (scipy
  // mannwhitneyu, method="exact", agrees).
  std::vector<double> xs{1, 2, 3}, ys{4, 5, 6};
  auto r = stats::wilcoxon_rank_sum(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->n1, 3u);
  EXPECT_EQ(r->n2, 3u);
  EXPECT_DOUBLE_EQ(r->u1, 0.0);
  EXPECT_NEAR(r->p_value, 0.1, 1e-12);
  EXPECT_LT(r->z, 0.0);  // first sample tends smaller
  // z from the exact variance: (0 - 4.5) / sqrt(3*3*7/12).
  EXPECT_NEAR(r->z, -4.5 / std::sqrt(5.25), 1e-12);
}

TEST(RankSum, SwappedSamplesMirror) {
  std::vector<double> xs{1, 2, 3}, ys{4, 5, 6};
  auto fwd = stats::wilcoxon_rank_sum(xs, ys);
  auto rev = stats::wilcoxon_rank_sum(ys, xs);
  ASSERT_TRUE(fwd && rev);
  EXPECT_DOUBLE_EQ(rev->u1, 9.0);  // U1 + U2 = n1 * n2
  EXPECT_DOUBLE_EQ(fwd->p_value, rev->p_value);
  EXPECT_DOUBLE_EQ(fwd->z, -rev->z);
  EXPECT_DOUBLE_EQ(fwd->effect_size_r, -rev->effect_size_r);
}

TEST(RankSum, UnequalSizesExactP) {
  // xs = {5,6,7} above ys = {1,2,3,4}: U1 = 12 = n1*n2 (max). One of
  // C(7,3) = 35 subsets per tail: p = 2/35.
  std::vector<double> xs{5, 6, 7}, ys{1, 2, 3, 4};
  auto r = stats::wilcoxon_rank_sum(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->u1, 12.0);
  EXPECT_NEAR(r->p_value, 2.0 / 35.0, 1e-12);
  EXPECT_GT(r->z, 0.0);
}

TEST(RankSum, IdenticalSamplesNoEvidence) {
  std::vector<double> xs{1, 2, 3, 4}, ys{1, 2, 3, 4};
  auto r = stats::wilcoxon_rank_sum(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->u1, 8.0);  // n1 * n2 / 2: dead centre
  EXPECT_DOUBLE_EQ(r->z, 0.0);
  EXPECT_DOUBLE_EQ(r->p_value, 1.0);
}

TEST(RankSum, AllValuesTiedNoVariance) {
  std::vector<double> xs{2, 2, 2}, ys{2, 2, 2, 2};
  auto r = stats::wilcoxon_rank_sum(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->p_value, 1.0);
  EXPECT_DOUBLE_EQ(r->z, 0.0);
}

TEST(RankSum, EmptySampleRejected) {
  std::vector<double> xs{1.0}, empty;
  EXPECT_FALSE(stats::wilcoxon_rank_sum(xs, empty).has_value());
  EXPECT_FALSE(stats::wilcoxon_rank_sum(empty, xs).has_value());
}

TEST(RankSum, NormalApproximationSeparatesShiftedSamples) {
  // Large no-overlap samples take the normal-approximation path (n > 12)
  // and must still be decisively significant with the right sign.
  std::vector<double> xs, ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(10.0 + i);
    ys.push_back(100.0 + i);
  }
  auto r = stats::wilcoxon_rank_sum(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_LT(r->p_value, 1e-9);
  EXPECT_LT(r->z, -6.0);
  EXPECT_LT(r->effect_size_r, -0.8);

  // Interleaved samples: no separation, high p.
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) (i % 2 == 0 ? a : b).push_back(i);
  auto r2 = stats::wilcoxon_rank_sum(a, b);
  ASSERT_TRUE(r2.has_value());
  EXPECT_GT(r2->p_value, 0.5);
}

TEST(RankSum, NegativeValuesHandled) {
  // Signed-value ranking must keep ordering intact for negative inputs.
  std::vector<double> xs{-3, -2, -1}, ys{1, 2, 3};
  auto r = stats::wilcoxon_rank_sum(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->u1, 0.0);
  EXPECT_NEAR(r->p_value, 0.1, 1e-12);
}

// -------------------------------------------- rank-sum degenerate inputs
// Raw fleet metric columns stream in with NaN undefined-value sentinels;
// every degenerate shape must yield a defined no-result (nullopt) or a
// defined no-evidence result — never NaN statistics, never UB.

TEST(RankSumDegenerate, NanObservationsDropped) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> xs{nan, 1.0, 2.0, nan, 3.0};
  std::vector<double> ys{4.0, nan, 5.0, 6.0};
  auto dirty = stats::wilcoxon_rank_sum(xs, ys);
  std::vector<double> cx{1.0, 2.0, 3.0}, cy{4.0, 5.0, 6.0};
  auto clean = stats::wilcoxon_rank_sum(cx, cy);
  ASSERT_TRUE(dirty.has_value());
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(dirty->n1, clean->n1);
  EXPECT_EQ(dirty->n2, clean->n2);
  EXPECT_DOUBLE_EQ(dirty->u1, clean->u1);
  EXPECT_DOUBLE_EQ(dirty->p_value, clean->p_value);
}

TEST(RankSumDegenerate, AllNanSideNoResult) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> xs{nan, nan}, ys{1.0, 2.0};
  EXPECT_FALSE(stats::wilcoxon_rank_sum(xs, ys).has_value());
  EXPECT_FALSE(stats::wilcoxon_rank_sum(ys, xs).has_value());
}

TEST(RankSumDegenerate, SingleObservationEachSideDefined) {
  std::vector<double> xs{1.0}, ys{2.0};
  auto r = stats::wilcoxon_rank_sum(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->n1, 1u);
  EXPECT_EQ(r->n2, 1u);
  // 1-vs-1 carries no evidence: exact two-sided p = 1.
  EXPECT_DOUBLE_EQ(r->p_value, 1.0);
  EXPECT_FALSE(std::isnan(r->z));
  EXPECT_FALSE(std::isnan(r->effect_size_r));
}

TEST(RankSumDegenerate, SingleTiedPairNoVariance) {
  std::vector<double> xs{2.0}, ys{2.0};
  auto r = stats::wilcoxon_rank_sum(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->p_value, 1.0);
  EXPECT_DOUBLE_EQ(r->z, 0.0);
}

TEST(CompareGroupsDegenerate, EmptyAndUndefinedGroupsYieldNoRows) {
  // A fleet where one comparison group is empty and another has all-NaN
  // metric values: compare_groups must skip those rows (a defined
  // no-result) and holm-adjust whatever remains without incident.
  core::FleetMetricMatrix matrix;
  matrix.metrics = {core::FleetMetric::v6_byte_fraction,
                    core::FleetMetric::external_gb};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  matrix.values = {{nan, nan, nan, nan}, {1.0, 2.0, 3.0, 4.0}};

  std::vector<engine::ResidenceTraits> traits(4);
  traits[0].dual_stack_isp = true;
  traits[1].dual_stack_isp = true;
  traits[2].dual_stack_isp = true;
  traits[3].dual_stack_isp = true;  // v4_only group is EMPTY

  auto cmp = core::compare_groups(matrix, traits, core::FleetGroup::dual_stack,
                                  core::FleetGroup::v4_only);
  EXPECT_TRUE(cmp.rows.empty());  // empty group: nothing testable, no crash

  // Against a non-empty complement, the all-NaN metric row is skipped but
  // the defined metric still tests.
  traits[3].dual_stack_isp = false;
  cmp = core::compare_groups(matrix, traits, core::FleetGroup::dual_stack,
                             core::FleetGroup::v4_only);
  ASSERT_EQ(cmp.rows.size(), 1u);
  EXPECT_EQ(cmp.rows[0].metric,
            core::to_string(core::FleetMetric::external_gb));
  EXPECT_FALSE(std::isnan(cmp.rows[0].p_holm));
}

// ------------------------------------------------------- StreamingCdf

TEST(StreamingCdf, MomentsMatchExactStatistics) {
  stats::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(0.0, 1.0));

  stats::StreamingCdf acc(0.0, 1.0, 128);
  acc.add(xs);
  EXPECT_EQ(acc.count(), 500u);
  EXPECT_DOUBLE_EQ(acc.min(), stats::min(xs));
  EXPECT_DOUBLE_EQ(acc.max(), stats::max(xs));
  EXPECT_NEAR(acc.mean(), stats::mean(xs), 1e-12);
  EXPECT_NEAR(acc.stddev(), stats::stddev(xs), 1e-12);
}

TEST(StreamingCdf, QuantilesTrackSortedVectorReference) {
  stats::Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.uniform(0.0, 1.0));

  const int bins = 256;
  const double bin_width = 1.0 / bins;
  stats::StreamingCdf acc(0.0, 1.0, bins);
  acc.add(xs);

  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double ref = stats::quantile(xs, q);
    // Linear interpolation inside a bin bounds the error by one bin width
    // (plus the rank-definition gap, well under a bin at n = 2000).
    EXPECT_NEAR(acc.quantile(q), ref, 2 * bin_width) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(acc.quantile(0.0), stats::min(xs));
  EXPECT_DOUBLE_EQ(acc.quantile(1.0), stats::max(xs));
}

TEST(StreamingCdf, CdfTracksEmpiricalReference) {
  stats::Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(0.0, 1.0));
  stats::StreamingCdf acc(0.0, 1.0, 256);
  acc.add(xs);
  stats::Ecdf ref(xs);

  for (double x : {0.05, 0.2, 0.5, 0.8, 0.95}) {
    EXPECT_NEAR(acc.cdf(x), ref(x), 0.02) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(acc.cdf(stats::min(xs) - 0.001), 0.0);
  EXPECT_DOUBLE_EQ(acc.cdf(stats::max(xs)), 1.0);
}

TEST(StreamingCdf, MergeEqualsSinglePass) {
  stats::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 800; ++i) xs.push_back(rng.uniform(0.0, 2.0));

  stats::StreamingCdf whole(0.0, 2.0, 64);
  whole.add(xs);

  // Four shard accumulators merged in index order — the fleet reduction
  // pattern. Bin counts are integers, so the merged CDF/quantile state is
  // exactly the single-pass state; moments agree to rounding.
  stats::StreamingCdf merged(0.0, 2.0, 64);
  for (int shard = 0; shard < 4; ++shard) {
    stats::StreamingCdf part(0.0, 2.0, 64);
    for (size_t i = static_cast<size_t>(shard) * 200;
         i < static_cast<size_t>(shard + 1) * 200; ++i)
      part.add(xs[i]);
    merged.merge(part);
  }

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  for (int b = 0; b < whole.bins(); ++b)
    EXPECT_EQ(merged.bin_count(b), whole.bin_count(b)) << "bin " << b;
  for (double q : {0.1, 0.5, 0.9})
    EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q));
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.stddev(), whole.stddev(), 1e-12);
}

TEST(StreamingCdf, OutOfRangeValuesClampIntoEdgeBins) {
  stats::StreamingCdf acc(0.0, 1.0, 10);
  acc.add(-5.0);
  acc.add(0.5);
  acc.add(7.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.min(), -5.0);  // exact extremes survive clamping
  EXPECT_DOUBLE_EQ(acc.max(), 7.0);
  EXPECT_EQ(acc.bin_count(0), 1u);
  EXPECT_EQ(acc.bin_count(9), 1u);
  EXPECT_DOUBLE_EQ(acc.quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(acc.quantile(1.0), 7.0);
}

TEST(StreamingCdf, InvalidLayoutsThrow) {
  EXPECT_THROW(stats::StreamingCdf(1.0, 1.0, 8), std::invalid_argument);
  EXPECT_THROW(stats::StreamingCdf(2.0, 1.0, 8), std::invalid_argument);

  stats::StreamingCdf a(0.0, 1.0, 8);
  stats::StreamingCdf wrong_range(0.0, 2.0, 8);
  stats::StreamingCdf wrong_bins(0.0, 1.0, 16);
  EXPECT_THROW(a.merge(wrong_range), std::invalid_argument);
  EXPECT_THROW(a.merge(wrong_bins), std::invalid_argument);
}

TEST(StreamingCdf, RejectedMergeLeavesTheTargetUntouched) {
  // The layout guard gives the strong exception guarantee: after a caught
  // mismatch the target accumulator must be bit-for-bit what it was before
  // — no half-merged bins, no polluted moments.
  stats::StreamingCdf acc(0.0, 1.0, 8);
  acc.add(0.25);
  acc.add(0.75);
  acc.add(2.0);  // clamps into the top bin, extreme survives
  const auto count_before = acc.count();
  const double mean_before = acc.mean();
  const double max_before = acc.max();
  std::vector<std::uint64_t> bins_before;
  for (std::size_t b = 0; b < 8; ++b) bins_before.push_back(acc.bin_count(b));

  stats::StreamingCdf incompatible(0.0, 2.0, 8);
  incompatible.add(1.5);
  EXPECT_FALSE(acc.compatible_with(incompatible));
  EXPECT_THROW(acc.merge(incompatible), std::invalid_argument);

  EXPECT_EQ(acc.count(), count_before);
  EXPECT_DOUBLE_EQ(acc.mean(), mean_before);
  EXPECT_DOUBLE_EQ(acc.max(), max_before);
  for (std::size_t b = 0; b < 8; ++b)
    EXPECT_EQ(acc.bin_count(b), bins_before[b]) << "bin " << b;

  // A compatible merge still works after the rejection.
  stats::StreamingCdf ok(0.0, 1.0, 8);
  ok.add(0.5);
  EXPECT_TRUE(acc.compatible_with(ok));
  acc.merge(ok);
  EXPECT_EQ(acc.count(), count_before + 1);
}

TEST(StreamingCdf, HugeAndInfiniteValuesClampSafely) {
  // Huge finite values land in the edge bins without the float-to-integer
  // cast ever going out of range (UB); infinities are skipped like NaN so
  // they cannot poison the Welford moments.
  const double inf = std::numeric_limits<double>::infinity();
  stats::StreamingCdf acc(0.0, 1.0, 8);
  acc.add(1e300);
  acc.add(-1e300);
  acc.add(inf);
  acc.add(-inf);
  acc.add(0.5);
  EXPECT_EQ(acc.count(), 3u);  // the two infinities carry no information
  EXPECT_EQ(acc.bin_count(0), 1u);
  EXPECT_EQ(acc.bin_count(7), 1u);
  EXPECT_DOUBLE_EQ(acc.min(), -1e300);
  EXPECT_DOUBLE_EQ(acc.max(), 1e300);
  EXPECT_DOUBLE_EQ(acc.cdf(0.75), 2.0 / 3.0);  // {-1e300, 0.5} below
  // Moments stay NaN-free (the squared deviations of ~1e300 values
  // legitimately overflow the double range, so stddev may be inf).
  EXPECT_TRUE(std::isfinite(acc.mean()));
  EXPECT_FALSE(std::isnan(acc.stddev()));
}

TEST(StreamingCdf, NanValuesAreSkipped) {
  // NaN is the fleet layer's undefined-metric sentinel: streaming a raw
  // metric column must behave exactly like streaming the defined values.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> xs{nan, 0.25, nan, 0.75, nan};
  stats::StreamingCdf acc(0.0, 1.0, 16);
  acc.add(xs);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_DOUBLE_EQ(acc.min(), 0.25);
  EXPECT_DOUBLE_EQ(acc.max(), 0.75);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.5);
}

TEST(StreamingCdf, EmptyAccumulatorIsInert) {
  stats::StreamingCdf acc(0.0, 1.0, 8);
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(acc.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  auto s = acc.summary();
  EXPECT_EQ(s.count, 0u);

  stats::StreamingCdf other(0.0, 1.0, 8);
  other.add(0.25);
  other.merge(acc);  // merging an empty accumulator is the identity
  EXPECT_EQ(other.count(), 1u);
  EXPECT_DOUBLE_EQ(other.mean(), 0.25);
}

// ------------------------------------------------------- Holm panels

TEST(HolmPanel, HandComputedAdjustment) {
  // Raw p = {0.01, 0.04, 0.03, 0.005}, m = 4. Sorted step-down:
  //   0.005*4 = 0.02, 0.01*3 = 0.03, 0.03*2 = 0.06, 0.04*1 = 0.04 -> 0.06
  // after the monotonicity clamp. At alpha = 0.05 the step-down rejects
  // 0.005 (<= 0.0125) and 0.01 (<= 0.0167), then stops at 0.03 > 0.025.
  std::vector<stats::PanelRow> rows(4);
  rows[0].p_raw = 0.01;
  rows[1].p_raw = 0.04;
  rows[2].p_raw = 0.03;
  rows[3].p_raw = 0.005;
  stats::holm_adjust(rows, 0.05);

  EXPECT_NEAR(rows[0].p_holm, 0.03, 1e-12);
  EXPECT_NEAR(rows[1].p_holm, 0.06, 1e-12);
  EXPECT_NEAR(rows[2].p_holm, 0.06, 1e-12);
  EXPECT_NEAR(rows[3].p_holm, 0.02, 1e-12);
  EXPECT_TRUE(rows[0].significant);
  EXPECT_FALSE(rows[1].significant);
  EXPECT_FALSE(rows[2].significant);
  EXPECT_TRUE(rows[3].significant);
}

TEST(HolmPanel, SingleRowUnchanged) {
  std::vector<stats::PanelRow> rows(1);
  rows[0].p_raw = 0.04;
  stats::holm_adjust(rows, 0.05);
  EXPECT_NEAR(rows[0].p_holm, 0.04, 1e-12);
  EXPECT_TRUE(rows[0].significant);
}

// ------------------------------------- fleet report lane determinism

// Two GroupComparisons must agree bit-for-bit (every double compared with
// ==): the acceptance bar for the fleet-statistics fan-out.
void expect_identical_comparison(const core::GroupComparison& a,
                                 const core::GroupComparison& b) {
  EXPECT_EQ(a.group_a, b.group_a);
  EXPECT_EQ(a.group_b, b.group_b);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    const auto& ra = a.rows[i];
    const auto& rb = b.rows[i];
    EXPECT_EQ(ra.metric, rb.metric);
    EXPECT_EQ(ra.paired, rb.paired);
    EXPECT_EQ(ra.n_a, rb.n_a);
    EXPECT_EQ(ra.n_b, rb.n_b);
    EXPECT_EQ(ra.median_a, rb.median_a);
    EXPECT_EQ(ra.median_b, rb.median_b);
    EXPECT_EQ(ra.z, rb.z);
    EXPECT_EQ(ra.effect_r, rb.effect_r);
    EXPECT_EQ(ra.p_raw, rb.p_raw);
    EXPECT_EQ(ra.p_holm, rb.p_holm);
    EXPECT_EQ(ra.significant, rb.significant);
  }
}

TEST(FleetStatsReport, BitIdenticalAcrossOneFourAndEightLanes) {
  auto catalog = traffic::build_paper_catalog();
  engine::FleetConfig cfg;
  cfg.residences = 48;
  cfg.days = 2;
  cfg.seed = 20260726;
  auto sampled = engine::sample_fleet_detailed(cfg, catalog);

  std::vector<core::FleetStatsReport> reports;
  for (int lanes : {1, 4, 8}) {
    engine::FleetEngine engine(catalog, lanes);
    auto result = engine.run(sampled);
    reports.push_back(core::fleet_stats_report(result, engine.pool()));
  }

  const auto& ref = reports[0];
  ASSERT_FALSE(ref.comparisons.empty());
  ASSERT_FALSE(ref.paired.rows.empty());
  for (size_t r = 1; r < reports.size(); ++r) {
    const auto& cur = reports[r];
    // Metric matrix: every extracted value bit-identical.
    ASSERT_EQ(cur.matrix.metrics, ref.matrix.metrics);
    for (size_t m = 0; m < ref.matrix.values.size(); ++m) {
      ASSERT_EQ(cur.matrix.values[m].size(), ref.matrix.values[m].size());
      for (size_t i = 0; i < ref.matrix.values[m].size(); ++i) {
        double va = ref.matrix.values[m][i];
        double vb = cur.matrix.values[m][i];
        if (std::isnan(va)) {
          EXPECT_TRUE(std::isnan(vb));
        } else {
          EXPECT_EQ(va, vb);
        }
      }
    }
    // Wilcoxon panels with Holm-corrected p-values: bit-identical.
    ASSERT_EQ(cur.comparisons.size(), ref.comparisons.size());
    for (size_t c = 0; c < ref.comparisons.size(); ++c)
      expect_identical_comparison(cur.comparisons[c], ref.comparisons[c]);
    expect_identical_comparison(cur.paired, ref.paired);
    // Population distributions: identical bin state and summaries.
    ASSERT_EQ(cur.distributions.size(), ref.distributions.size());
    for (size_t d = 0; d < ref.distributions.size(); ++d) {
      const auto& da = ref.distributions[d];
      const auto& db = cur.distributions[d];
      EXPECT_EQ(da.metric, db.metric);
      EXPECT_EQ(da.defined, db.defined);
      EXPECT_EQ(da.cdf.count(), db.cdf.count());
      for (int b = 0; b < da.cdf.bins(); ++b)
        EXPECT_EQ(da.cdf.bin_count(b), db.cdf.bin_count(b));
      for (double q : {0.25, 0.5, 0.75})
        EXPECT_EQ(da.cdf.quantile(q), db.cdf.quantile(q));
    }
  }
}

TEST(FleetStatsReport, PanelsSeparateKnownStrata) {
  // A fleet with clearly separated strata: broken-CPE and v4-only homes
  // must sit significantly below their counterparts on the byte-fraction
  // metric after Holm correction.
  auto catalog = traffic::build_paper_catalog();
  engine::FleetConfig cfg;
  cfg.residences = 96;
  cfg.days = 2;
  cfg.seed = 7;
  cfg.dual_stack_isp_frac = 0.7;
  cfg.broken_v6_frac = 0.3;
  engine::FleetEngine engine(catalog, 4);
  auto result = engine.run(cfg);
  ASSERT_EQ(result.traits.size(), 96u);

  auto report = core::fleet_stats_report(result, engine.pool());
  bool found = false;
  for (const auto& cmp : report.comparisons) {
    if (cmp.group_a != core::FleetGroup::dual_stack ||
        cmp.group_b != core::FleetGroup::v4_only)
      continue;
    for (const auto& row : cmp.rows) {
      if (row.metric != core::to_string(core::FleetMetric::v6_byte_fraction))
        continue;
      found = true;
      EXPECT_GT(row.z, 0.0);  // dual-stack homes push more v6 bytes
      EXPECT_TRUE(row.significant) << "p_holm=" << row.p_holm;
      EXPECT_LE(row.p_holm, 0.05);
      EXPECT_GE(row.p_holm, row.p_raw);  // Holm never helps
    }
  }
  EXPECT_TRUE(found);
}

TEST(FleetStatsReport, MisalignedTraitsRejected) {
  auto catalog = traffic::build_paper_catalog();
  engine::FleetConfig cfg;
  cfg.residences = 4;
  cfg.days = 1;
  auto sampled = engine::sample_fleet_detailed(cfg, catalog);
  engine::FleetEngine engine(catalog, 1);

  // A hand-built SampledFleet with mismatched sizes fails up front...
  engine::SampledFleet bad;
  bad.configs = sampled.configs;
  bad.traits.assign(8, engine::ResidenceTraits{});
  EXPECT_THROW(engine.run(bad), std::invalid_argument);

  // ...and a result without traits (raw config run) cannot feed the
  // group-comparison report.
  auto traitless = engine.run(sampled.configs);
  EXPECT_THROW(core::fleet_stats_report(traitless, nullptr),
               std::invalid_argument);
}

TEST(ExtractMetrics, PoolAndSequentialAgree) {
  auto catalog = traffic::build_paper_catalog();
  engine::FleetConfig cfg;
  cfg.residences = 12;
  cfg.days = 2;
  engine::FleetEngine engine(catalog, 4);
  auto result = engine.run(cfg);

  auto metrics = core::default_fleet_metrics();
  auto par = core::extract_metrics(result, metrics, engine.pool());
  auto seq = core::extract_metrics(result, metrics, nullptr);
  ASSERT_EQ(par.values.size(), seq.values.size());
  for (size_t m = 0; m < par.values.size(); ++m)
    for (size_t i = 0; i < par.values[m].size(); ++i) {
      if (std::isnan(seq.values[m][i])) {
        EXPECT_TRUE(std::isnan(par.values[m][i]));
      } else {
        EXPECT_EQ(par.values[m][i], seq.values[m][i]);
      }
    }
}

TEST(GroupMembers, PartitionsAndComplements) {
  auto catalog = traffic::build_paper_catalog();
  engine::FleetConfig cfg;
  cfg.residences = 200;
  cfg.days = 1;
  auto sampled = engine::sample_fleet_detailed(cfg, catalog);
  ASSERT_EQ(sampled.traits.size(), 200u);

  auto all = core::group_members(sampled.traits, core::FleetGroup::all);
  EXPECT_EQ(all.size(), 200u);

  // dual_stack / v4_only partition the fleet; healthy_v6 / broken_cpe
  // partition dual_stack; opt_out / fully_visible partition the fleet.
  auto ds = core::group_members(sampled.traits, core::FleetGroup::dual_stack);
  auto v4 = core::group_members(sampled.traits, core::FleetGroup::v4_only);
  EXPECT_EQ(ds.size() + v4.size(), 200u);
  auto healthy =
      core::group_members(sampled.traits, core::FleetGroup::healthy_v6);
  auto broken =
      core::group_members(sampled.traits, core::FleetGroup::broken_cpe);
  EXPECT_EQ(healthy.size() + broken.size(), ds.size());
  auto opt = core::group_members(sampled.traits, core::FleetGroup::opt_out);
  auto vis =
      core::group_members(sampled.traits, core::FleetGroup::fully_visible);
  EXPECT_EQ(opt.size() + vis.size(), 200u);

  // Traits must match the sampled configs they describe.
  for (size_t i : v4)
    EXPECT_DOUBLE_EQ(sampled.configs[i].device_v6_ok_frac, 0.0);
  for (size_t i : opt) EXPECT_LT(sampled.configs[i].visibility, 1.0);
  for (size_t i :
       core::group_members(sampled.traits, core::FleetGroup::active))
    EXPECT_FALSE(sampled.traits[i].vacant);
}

}  // namespace
}  // namespace nbv6
