// Differential scenario fuzzing (the ctest `fuzz` label).
//
// Each generated config runs the full invariant battery in
// testutil::fuzz_check_scenario: parse/render round trip, lazy vs
// materialized day-plan cells, 1/4/8-lane byte-identical replays, and
// windowed metric finiteness. The scenario count and base seed come from
// NBV6_FUZZ_SCENARIOS / NBV6_FUZZ_SEED so CI can run a deep sweep while
// the default local run stays fast; a failure prints the offending config
// text verbatim, which is the whole reproducer.
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "engine/scenario_fuzz.h"
#include "testutil.h"
#include "traffic/arrival.h"
#include "traffic/service_catalog.h"

namespace nbv6 {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

TEST(ScenarioFuzz, GeneratedScenariosAlwaysParse) {
  // Generation is validity-directed: every emitted text must parse. A
  // rejection here means the generator and the grammar disagree — exactly
  // the silent drift this test exists to catch.
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const std::string text = engine::generate_scenario_text(seed);
    std::string error;
    auto cfg = engine::FleetConfig::parse(text, &error);
    ASSERT_TRUE(cfg.has_value())
        << "seed " << seed << ": " << error << "\n" << text;
  }
}

TEST(ScenarioFuzz, GeneratorCoversTheEventGrammar) {
  // Across a modest seed range, every event kind and every window shape
  // must appear — otherwise the fuzzer silently stopped exercising part of
  // the vocabulary.
  std::set<std::string> kinds;
  std::set<traffic::ArrivalMode> modes;
  bool saw_day = false, saw_open = false, saw_closed = false;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    auto cfg = engine::FleetConfig::parse(engine::generate_scenario_text(seed));
    ASSERT_TRUE(cfg.has_value());
    modes.insert(cfg->arrival->mode);
    for (const auto& ev : cfg->timeline->events) {
      kinds.insert(engine::to_string(ev.kind));
      if (ev.start_day == ev.end_day) saw_day = true;
      else if (ev.end_day == std::numeric_limits<int>::max()) saw_open = true;
      else saw_closed = true;
    }
  }
  EXPECT_EQ(kinds.size(), 11u) << "missing event kinds in generator output";
  EXPECT_EQ(modes.size(), 3u) << "missing arrival modes in generator output";
  EXPECT_TRUE(saw_day);
  EXPECT_TRUE(saw_open);
  EXPECT_TRUE(saw_closed);
}

TEST(ScenarioFuzz, RendererRoundTripsCommittedScenarios) {
  // The canonical renderer must be a lossless fixed point for every
  // committed scenario, not just generated ones — it is the promotion path
  // from surviving fuzz config to examples/scenarios/.
  const auto files = testutil::scenario_files();
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    auto text = testutil::read_file(path);
    ASSERT_TRUE(text.has_value()) << path;
    auto err = engine::check_parse_round_trip(*text);
    EXPECT_FALSE(err.has_value())
        << testutil::scenario_stem(path) << ": " << err.value_or("");
  }
}

TEST(ScenarioFuzz, DifferentialInvariantsHoldOnGeneratedScenarios) {
  const auto catalog = traffic::build_paper_catalog();
  const std::uint64_t count = env_u64("NBV6_FUZZ_SCENARIOS", 64);
  const std::uint64_t base = env_u64("NBV6_FUZZ_SEED", 0x1a5c0ffeeull);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string text = engine::generate_scenario_text(base + i);
    auto err = testutil::fuzz_check_scenario(text, catalog);
    ASSERT_FALSE(err.has_value())
        << "scenario seed " << (base + i) << " failed: " << *err
        << "\n---- config ----\n" << text;
    if ((i + 1) % 32 == 0)
      std::fprintf(stderr, "  fuzz: %llu/%llu scenarios clean\n",
                   static_cast<unsigned long long>(i + 1),
                   static_cast<unsigned long long>(count));
  }
}

}  // namespace
}  // namespace nbv6
