// Shared test utilities: fleet builders and canonical serializers.
//
// The golden-replay suite needs two things no production header provides:
// a one-call "run this scenario file end to end" builder (sample →
// timeline → simulate → analyze), and a canonical text form of the whole
// outcome whose equality is exactly bit-equality of the underlying state.
// Both live here so future conformance tests (and ad-hoc debugging — the
// serializer makes any two runs diffable) reuse them instead of growing
// private copies.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/fleet_analysis.h"
#include "engine/fleet.h"
#include "traffic/service_catalog.h"

namespace nbv6::testutil {

// ------------------------------------------------------------------ paths

/// Repo source root (the NBV6_SOURCE_DIR compile definition).
std::string source_dir();
/// Committed scenario configs: <source>/examples/scenarios.
std::string scenarios_dir();
/// Committed golden replays: <source>/tests/golden.
std::string golden_dir();

/// Absolute paths of every *.cfg under scenarios_dir(), sorted by name so
/// iteration order never depends on directory enumeration order.
std::vector<std::string> scenario_files();

/// "rollout_wave" from ".../rollout_wave.cfg".
std::string scenario_stem(const std::string& path);

// ---------------------------------------------------------------- builder

/// One scenario run, end to end: the sampled + timeline-applied fleet
/// simulated on `lanes` lanes, with the full statistics report and a
/// pre/post panel over the horizon's two halves (the day-dimension check).
struct ScenarioRun {
  engine::FleetConfig cfg;
  engine::FleetResult result;
  core::FleetStatsReport report;
  core::GroupComparison window_panel;
};

/// `mode` selects how the timeline reaches the simulator: lazy per-day
/// evaluation (the engine default) or up-front materialized plans. The two
/// must serialize byte-identically — the parity the golden-replay suite
/// pins.
ScenarioRun run_scenario(
    const engine::FleetConfig& cfg, const traffic::ServiceCatalog& catalog,
    int lanes,
    engine::TimelinePlanMode mode = engine::TimelinePlanMode::lazy);

// ------------------------------------------------------------- serializer

/// Canonical, diff-friendly text form of a run. Every double renders with
/// %.17g (equal text iff bit-identical doubles); high-volume aggregates
/// (the hourly series, per-destination tallies) fold to a count plus an
/// order-stable FNV-1a checksum over their integer state. Lane count is
/// deliberately absent: serializations of the same scenario at different
/// lane counts must be byte-identical.
std::string canonical_serialize(const ScenarioRun& run);

// ------------------------------------------------------- fuzz differential

/// The full differential check the scenario fuzzer runs on one generated
/// config text, in order:
///   1. parse -> render -> reparse round trip (engine::check_parse_round_trip)
///   2. lazy vs materialized day plans, cell by cell (engine::check_plan_parity)
///   3. byte-identical canonical serializations across 1/4/8-lane replays
///      and across lazy vs materialized simulation of the 1-lane run
///   4. windowed extract_metrics finiteness: over the full horizon, both
///      halves, first/middle/last single days, and every event's clamped
///      window, no metric may be +-inf, and count/sum metrics (sessions_k,
///      external_gb, ...) may not be NaN either — only rate/fraction
///      metrics may be undefined when a window saw no traffic.
/// nullopt when every check passes; otherwise a description of the first
/// failure, prefixed with the stage that caught it.
std::optional<std::string> fuzz_check_scenario(
    const std::string& text, const traffic::ServiceCatalog& catalog);

// ------------------------------------------------------------------- io

std::optional<std::string> read_file(const std::string& path);
bool write_file(const std::string& path, std::string_view content);

/// Human-readable location of the first difference ("line N:\n  a: ...\n
/// b: ..."), empty when equal. Keeps golden-mismatch failures readable
/// instead of dumping two multi-kilobyte blobs.
std::string first_diff(std::string_view a, std::string_view b);

}  // namespace nbv6::testutil
