// Day-resolved session statistics: the per-day SimulationStats series the
// simulator accumulates, its shard merge in the fleet engine, and the
// windowed analyses it unblocks — finite he_failure_rate (and session /
// outage counts) inside any DayWindow, feeding real pre/post panels across
// the NAT64 migration scenario. Also pins the degenerate-window hardening:
// inverted or out-of-horizon windows are defined no-results, never NaN
// panels or silent wrong answers.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "core/fleet_analysis.h"
#include "engine/fleet.h"
#include "testutil.h"
#include "traffic/service_catalog.h"

namespace nbv6 {
namespace {

/// One shared run of the committed NAT64 migration scenario (24 homes x
/// 42 days, migration staggered across days 12-30) — the PR's acceptance
/// scenario, simulated once for the whole suite.
class Nat64ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto catalog = traffic::build_paper_catalog();
    auto cfg = engine::FleetConfig::load(testutil::scenarios_dir() +
                                         "/nat64_migration.cfg");
    ASSERT_TRUE(cfg.has_value());
    cfg_ = *cfg;
    engine::FleetEngine engine(catalog, 2);
    result_ = engine.run(cfg_);
  }
  static void TearDownTestSuite() { result_.reset(); }

  static engine::FleetConfig cfg_;
  static std::optional<engine::FleetResult> result_;
};

engine::FleetConfig Nat64ScenarioTest::cfg_;
std::optional<engine::FleetResult> Nat64ScenarioTest::result_;

TEST_F(Nat64ScenarioTest, DailySeriesSumsToHorizonTotals) {
  ASSERT_TRUE(result_.has_value());
  traffic::DaySessionStats fleet_sum;
  for (const auto& run : result_->residences) {
    ASSERT_EQ(run.stats.daily.size(), static_cast<size_t>(cfg_.days))
        << run.config.name;
    traffic::DaySessionStats sum;
    for (const auto& d : run.stats.daily) sum += d;
    EXPECT_EQ(sum.sessions, run.stats.sessions) << run.config.name;
    EXPECT_EQ(sum.he_failures, run.stats.he_failures) << run.config.name;
    EXPECT_EQ(sum.outage_suppressed, run.stats.outage_suppressed)
        << run.config.name;
    fleet_sum += sum;
  }
  // The engine's reduction merged the same series fleet-wide.
  ASSERT_EQ(result_->totals.daily.size(), static_cast<size_t>(cfg_.days));
  traffic::DaySessionStats merged;
  for (const auto& d : result_->totals.daily) merged += d;
  EXPECT_EQ(merged, fleet_sum);
  EXPECT_EQ(merged.sessions, result_->totals.sessions);
  EXPECT_EQ(merged.he_failures, result_->totals.he_failures);
}

TEST_F(Nat64ScenarioTest, WindowedHeFailureRateIsFinite) {
  ASSERT_TRUE(result_.has_value());
  const std::vector<core::FleetMetric> metrics = {
      core::FleetMetric::he_failure_rate, core::FleetMetric::sessions_k,
      core::FleetMetric::outage_suppressed_k};
  for (core::DayWindow w :
       {core::DayWindow{0, 11}, core::DayWindow{12, cfg_.days - 1},
        core::DayWindow{}}) {
    auto m = core::extract_metrics(*result_, metrics, w);
    size_t finite_rates = 0;
    for (size_t i = 0; i < result_->residences.size(); ++i) {
      const auto& run = result_->residences[i];
      // Sessions attempted inside the window.
      std::uint64_t sessions = 0;
      for (size_t d = 0; d < run.stats.daily.size(); ++d)
        if (w.contains(static_cast<int>(d)))
          sessions += run.stats.daily[d].sessions;
      double rate = m.values[0][i];
      if (sessions == 0) {
        EXPECT_TRUE(std::isnan(rate)) << i;  // undefined, not fake zero
      } else {
        ASSERT_TRUE(std::isfinite(rate)) << "residence " << i;
        EXPECT_GE(rate, 0.0);
        EXPECT_LE(rate, 1.0);
        ++finite_rates;
      }
      // Count metrics are plain finite counts in every in-horizon window.
      EXPECT_TRUE(std::isfinite(m.values[1][i])) << i;
      EXPECT_TRUE(std::isfinite(m.values[2][i])) << i;
      EXPECT_DOUBLE_EQ(m.values[1][i],
                       static_cast<double>(sessions) / 1e3);
    }
    // Most of a 24-home fleet has sessions in any multi-day window.
    EXPECT_GT(finite_rates, result_->residences.size() / 2) << w.first;
  }
}

TEST_F(Nat64ScenarioTest, PrePostPanelReportsRealPValues) {
  ASSERT_TRUE(result_.has_value());
  // Migration waves land inside days 12-30: pre-migration vs the rest.
  auto metrics = core::default_fleet_metrics();
  auto panel = core::compare_windows(*result_, metrics, core::DayWindow{0, 11},
                                     core::DayWindow{12, cfg_.days - 1});
  ASSERT_FALSE(panel.rows.empty());
  const stats::PanelRow* he_row = nullptr;
  for (const auto& r : panel.rows) {
    EXPECT_TRUE(std::isfinite(r.p_raw)) << r.metric;
    EXPECT_GT(r.p_raw, 0.0) << r.metric;
    EXPECT_LE(r.p_raw, 1.0) << r.metric;
    EXPECT_TRUE(std::isfinite(r.p_holm)) << r.metric;
    EXPECT_TRUE(std::isfinite(r.z)) << r.metric;
    if (r.metric == "he_failure_rate") he_row = &r;
  }
  // The fix's acceptance: the failure-rate row exists and carries a real
  // test over a real pairing (broken-v6 homes start failing hard once
  // migrated, so the post median cannot sit below the pre median).
  ASSERT_NE(he_row, nullptr)
      << "he_failure_rate missing from the windowed panel";
  // Zero pre/post differences are discarded (Wilcoxon's treatment), so n
  // counts the homes the migration actually broke: v4-only and broken-CPE
  // homes behind the new v6-only access network.
  EXPECT_GE(he_row->n_a, 3u);
  EXPECT_GE(he_row->median_b, he_row->median_a);
}

TEST_F(Nat64ScenarioTest, DegenerateWindowsAreDefinedNoResults) {
  ASSERT_TRUE(result_.has_value());
  auto metrics = core::default_fleet_metrics();
  const core::DayWindow inverted{20, 5};
  const core::DayWindow past_horizon{cfg_.days, cfg_.days + 100};
  const core::DayWindow before_horizon{-40, -1};
  EXPECT_FALSE(inverted.valid());
  EXPECT_TRUE(past_horizon.valid());  // well-formed, just no data

  for (const auto& w : {inverted, past_horizon, before_horizon}) {
    // Extraction: every metric undefined — no simulated day, no value.
    auto m = core::extract_metrics(*result_, metrics, w);
    for (const auto& row : m.values)
      for (double v : row) EXPECT_TRUE(std::isnan(v)) << w.first;
    // Panels: a defined empty result, in either window slot.
    EXPECT_TRUE(core::compare_windows(*result_, metrics, w,
                                      core::DayWindow{0, cfg_.days - 1})
                    .rows.empty())
        << w.first;
    EXPECT_TRUE(core::compare_windows(*result_, metrics,
                                      core::DayWindow{0, cfg_.days - 1}, w)
                    .rows.empty())
        << w.first;
  }
}

TEST(FleetDayStats, PerDayMergeBitIdenticalAcrossLanes) {
  auto catalog = traffic::build_paper_catalog();
  engine::FleetConfig cfg;
  cfg.residences = 16;
  cfg.days = 12;
  cfg.seed = 404;
  cfg.timeline->events.push_back(*engine::Timeline::parse_event(
      "outage", "start=3 end=8 frac=0.5 len=2"));
  cfg.timeline->events.push_back(
      *engine::Timeline::parse_event("nat64_migration", "start=6 frac=0.4"));

  std::optional<engine::FleetResult> reference;
  for (int lanes : {1, 4, 8}) {
    engine::FleetEngine engine(catalog, lanes);
    auto result = engine.run(cfg);
    if (!reference.has_value()) {
      reference = std::move(result);
      continue;
    }
    ASSERT_EQ(result.residences.size(), reference->residences.size());
    for (size_t i = 0; i < result.residences.size(); ++i)
      EXPECT_EQ(result.residences[i].stats.daily,
                reference->residences[i].stats.daily)
          << "lanes=" << lanes << " residence " << i;
    EXPECT_EQ(result.totals.daily, reference->totals.daily)
        << "lanes=" << lanes;
  }
}

TEST(FleetDayStats, OutageDaysCarrySuppressedSessions) {
  // A whole-window outage must show up in the day-resolved series exactly
  // inside its window — and in windowed outage_suppressed_k extraction.
  auto catalog = traffic::build_paper_catalog();
  engine::FleetConfig cfg;
  cfg.residences = 8;
  cfg.days = 10;
  cfg.seed = 21;
  cfg.background_only_frac = 0.0;
  cfg.timeline->events.push_back(
      *engine::Timeline::parse_event("outage", "start=4 end=6 frac=1.0"));

  engine::FleetEngine engine(catalog, 2);
  auto result = engine.run(cfg);
  ASSERT_EQ(result.totals.daily.size(), 10u);
  for (int d = 0; d < 10; ++d) {
    const auto& ds = result.totals.daily[static_cast<size_t>(d)];
    if (d >= 4 && d <= 6) {
      EXPECT_GT(ds.outage_suppressed, 0u) << d;
      EXPECT_EQ(ds.sessions, 0u) << d;  // nothing reaches the WAN
    } else {
      EXPECT_EQ(ds.outage_suppressed, 0u) << d;
    }
  }

  const std::vector<core::FleetMetric> metrics = {
      core::FleetMetric::outage_suppressed_k};
  auto in = core::extract_metrics(result, metrics, core::DayWindow{4, 6});
  auto out = core::extract_metrics(result, metrics, core::DayWindow{0, 3});
  for (size_t i = 0; i < result.residences.size(); ++i) {
    ASSERT_TRUE(std::isfinite(in.values[0][i])) << i;
    EXPECT_GT(in.values[0][i], 0.0) << i;
    EXPECT_DOUBLE_EQ(out.values[0][i], 0.0) << i;
  }
}

}  // namespace
}  // namespace nbv6
