#include <gtest/gtest.h>

#include "cloud/analysis.h"
#include "cloud/providers.h"
#include "core/cloud_analysis.h"
#include "core/server_analysis.h"
#include "web/universe.h"

namespace nbv6::cloud {
namespace {

// Hand-built records exercising the attribution rules precisely.
class ProviderBreakdownUnit : public ::testing::Test {
 protected:
  DomainRecord rec(const std::string& fqdn, const std::string& etld1,
                   std::optional<size_t> a_prov,
                   std::optional<size_t> aaaa_prov) {
    DomainRecord r;
    r.fqdn = fqdn;
    r.etld1 = etld1;
    r.cname_terminal = fqdn;
    if (a_prov) r.a_addr = net::IpAddr{catalog_.v4_address(*a_prov, id_)};
    if (aaaa_prov)
      r.aaaa_addr = net::IpAddr{catalog_.v6_address(*aaaa_prov, id_)};
    ++id_;
    return r;
  }

  const ProviderBreakdownRow* find(
      const std::vector<ProviderBreakdownRow>& rows,
      const std::string& org) {
    for (const auto& r : rows)
      if (r.org == org) return &r;
    return nullptr;
  }

  ProviderCatalog catalog_;
  std::uint32_t id_ = 1;
};

TEST_F(ProviderBreakdownUnit, FullDomainCountsUnderItsOrg) {
  size_t cf = catalog_.find("Cloudflare, Inc.").value();
  std::vector<DomainRecord> records{rec("a.example.com", "example.com", cf, cf)};
  auto rows = provider_breakdown(records, catalog_);
  auto* row = find(rows, "Cloudflare, Inc.");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->total, 1);
  EXPECT_EQ(row->v6_full, 1);
  EXPECT_EQ(rows[0].org, "Overall");
  EXPECT_EQ(rows[0].v6_full, 1);
}

TEST_F(ProviderBreakdownUnit, V4OnlyDomain) {
  size_t ovh = catalog_.find("OVH SAS").value();
  std::vector<DomainRecord> records{
      rec("b.example.com", "example.com", ovh, std::nullopt)};
  auto rows = provider_breakdown(records, catalog_);
  auto* row = find(rows, "OVH SAS");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->v4_only, 1);
  EXPECT_EQ(row->v6_full, 0);
}

TEST_F(ProviderBreakdownUnit, SplitFamiliesCountUnderBothOrgs) {
  // The Bunnyway/Datacamp pattern: A in one org, AAAA in another.
  size_t bunny =
      catalog_.find("BUNNYWAY, informacijske storitve d.o.o.").value();
  size_t datacamp = catalog_.find("Datacamp Limited").value();
  std::vector<DomainRecord> records{
      rec("cdn.tenant.net", "tenant.net", datacamp, bunny)};
  auto rows = provider_breakdown(records, catalog_);

  auto* b = find(rows, "BUNNYWAY, informacijske storitve d.o.o.");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->v6_only, 1);  // only its AAAA lives here
  auto* d = find(rows, "Datacamp Limited");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->v4_only, 1);  // only its A lives here
  // Globally the domain is dual-stack.
  EXPECT_EQ(rows[0].v6_full, 1);
}

TEST_F(ProviderBreakdownUnit, UnknownSpaceOnlyCountsOverall) {
  DomainRecord r;
  r.fqdn = "self.example.org";
  r.etld1 = "example.org";
  r.a_addr = net::IpAddr{net::IPv4Addr(93, 0, 0, 1)};  // unannounced space
  std::vector<DomainRecord> records{r};
  auto rows = provider_breakdown(records, catalog_);
  EXPECT_EQ(rows.size(), 1u);  // Overall only
  EXPECT_EQ(rows[0].v4_only, 1);
}

TEST_F(ProviderBreakdownUnit, PercentageHelper) {
  ProviderBreakdownRow row;
  row.total = 200;
  EXPECT_DOUBLE_EQ(row.pct(50), 25.0);
  ProviderBreakdownRow empty;
  EXPECT_DOUBLE_EQ(empty.pct(0), 0.0);
}

// --------------------------------------------------- service identification

TEST(ServiceBreakdownUnit, MatchesCnameSuffix) {
  ProviderCatalog catalog;
  DomainRecord r1;
  r1.fqdn = "assets.shop.com";
  r1.etld1 = "shop.com";
  r1.cname_terminal = "t1.cloudfront.net";
  r1.a_addr = net::IpAddr{net::IPv4Addr(41, 0, 0, 1)};
  r1.aaaa_addr = net::IpAddr{net::IPv6Addr::from_halves(0x2a00ull << 48, 1)};

  DomainRecord r2 = r1;
  r2.fqdn = "img.shop.com";
  r2.cname_terminal = "t2.cloudfront.net";
  r2.aaaa_addr.reset();

  DomainRecord r3 = r1;
  r3.fqdn = "www.other.com";
  r3.cname_terminal = "www.other.com";  // no service suffix

  std::vector<DomainRecord> records{r1, r2, r3};
  auto rows = service_breakdown(records, catalog);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].service_name, "Amazon CloudFront CDN");
  EXPECT_EQ(rows[0].total, 2);
  EXPECT_EQ(rows[0].v6_ready, 1);
  EXPECT_DOUBLE_EQ(rows[0].pct_ready(), 50.0);
}

TEST(ServiceBreakdownUnit, SuffixRequiresLabelBoundary) {
  ProviderCatalog catalog;
  DomainRecord r;
  r.fqdn = "x.test";
  r.etld1 = "x.test";
  r.cname_terminal = "evilcloudfront.net";  // not ".cloudfront.net"
  r.a_addr = net::IpAddr{net::IPv4Addr(41, 0, 0, 1)};
  std::vector<DomainRecord> records{r};
  EXPECT_TRUE(service_breakdown(records, catalog).empty());
}

// --------------------------------------------------- multi-cloud comparison

class MultiCloudUnit : public ::testing::Test {
 protected:
  // Tenant with subdomains on two providers; `full1`/`full2` of them
  // IPv6-full respectively (one subdomain per provider).
  void add_tenant(const std::string& etld1, size_t prov1, bool full1,
                  size_t prov2, bool full2) {
    auto mk = [&](size_t prov, bool full, int k) {
      DomainRecord r;
      r.fqdn = "sub" + std::to_string(k) + "." + etld1;
      r.etld1 = etld1;
      r.cname_terminal = r.fqdn;
      r.a_addr = net::IpAddr{catalog_.v4_address(prov, id_)};
      if (full) r.aaaa_addr = net::IpAddr{catalog_.v6_address(prov, id_)};
      ++id_;
      records_.push_back(std::move(r));
    };
    mk(prov1, full1, 1);
    mk(prov2, full2, 2);
  }

  ProviderCatalog catalog_;
  std::vector<DomainRecord> records_;
  std::uint32_t id_ = 1;
};

TEST_F(MultiCloudUnit, DetectsConsistentPreference) {
  size_t cf = catalog_.find("Cloudflare, Inc.").value();
  size_t ovh = catalog_.find("OVH SAS").value();
  // 12 tenants, all IPv6-full on Cloudflare and not on OVH.
  for (int i = 0; i < 12; ++i)
    add_tenant("tenant" + std::to_string(i) + ".com", cf, true, ovh, false);

  MultiCloudComparison cmp(records_, catalog_);
  EXPECT_EQ(cmp.multi_cloud_tenant_count(), 12);
  ASSERT_EQ(cmp.pairs().size(), 1u);
  const auto& p = cmp.pairs()[0];
  EXPECT_TRUE(p.comparable);
  EXPECT_EQ(p.differing_tenants, 12);
  // org1/org2 order is alphabetical; Cloudflare < OVH.
  EXPECT_EQ(p.org1, "Cloudflare, Inc.");
  EXPECT_GT(p.effect_size_r, 0.9);
  EXPECT_TRUE(p.significant);
}

TEST_F(MultiCloudUnit, NoDifferenceNotSignificant) {
  size_t cf = catalog_.find("Cloudflare, Inc.").value();
  size_t goog = catalog_.find("Google LLC").value();
  for (int i = 0; i < 10; ++i) {
    std::string name = "t";
    name += std::to_string(i);
    name += ".com";
    add_tenant(name, cf, true, goog, true);
  }
  MultiCloudComparison cmp(records_, catalog_);
  ASSERT_EQ(cmp.pairs().size(), 1u);
  EXPECT_FALSE(cmp.pairs()[0].comparable);  // zero differing tenants
  EXPECT_FALSE(cmp.pairs()[0].significant);
}

TEST_F(MultiCloudUnit, SingleCloudTenantsIgnored) {
  size_t cf = catalog_.find("Cloudflare, Inc.").value();
  DomainRecord r;
  r.fqdn = "only.solo.com";
  r.etld1 = "solo.com";
  r.cname_terminal = r.fqdn;
  r.a_addr = net::IpAddr{catalog_.v4_address(cf, 1)};
  records_.push_back(r);
  MultiCloudComparison cmp(records_, catalog_);
  EXPECT_EQ(cmp.multi_cloud_tenant_count(), 0);
}

TEST_F(MultiCloudUnit, MergeMapJoinsEntities) {
  size_t cf1 = catalog_.find("Cloudflare, Inc.").value();
  size_t cf2 = catalog_.find("Cloudflare London, LLC").value();
  size_t ovh = catalog_.find("OVH SAS").value();
  for (int i = 0; i < 6; ++i)
    add_tenant("m" + std::to_string(i) + ".com", i % 2 ? cf1 : cf2, true, ovh,
               false);

  auto merge = core::paper_org_merge_map();
  MultiCloudComparison cmp(records_, catalog_, merge);
  bool found = false;
  for (const auto& p : cmp.pairs()) {
    if (p.org1 == "Cloudflare (All)" || p.org2 == "Cloudflare (All)") {
      found = true;
      EXPECT_EQ(p.differing_tenants, 6);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MultiCloudUnit, WinsCountsSignificantPairs) {
  size_t cf = catalog_.find("Cloudflare, Inc.").value();
  size_t ovh = catalog_.find("OVH SAS").value();
  size_t digo = catalog_.find("DigitalOcean, LLC").value();
  for (int i = 0; i < 10; ++i) {
    add_tenant("x" + std::to_string(i) + ".com", cf, true, ovh, false);
    add_tenant("y" + std::to_string(i) + ".com", cf, true, digo, false);
  }
  MultiCloudComparison cmp(records_, catalog_);
  EXPECT_EQ(cmp.wins("Cloudflare, Inc."), 2);
  EXPECT_EQ(cmp.wins("OVH SAS"), 0);
}

// --------------------------------------------------- end-to-end (core glue)

TEST(CloudEndToEnd, SurveyFeedsCloudReport) {
  cloud::ProviderCatalog providers;
  web::UniverseConfig cfg;
  cfg.site_count = 1500;
  cfg.seed = 31337;
  web::Universe universe(cfg, providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 5);
  auto report = core::analyze_cloud(universe, survey);

  ASSERT_FALSE(report.providers.empty());
  EXPECT_EQ(report.providers[0].org, "Overall");
  EXPECT_GT(report.providers[0].total, 1000);

  // Per-row class counts partition each row's total.
  for (const auto& row : report.providers) {
    EXPECT_EQ(row.total, row.v4_only + row.v6_full + row.v6_only) << row.org;
  }

  // Cloudflare should show far higher IPv6-full share than OVH.
  const cloud::ProviderBreakdownRow* cf = nullptr;
  const cloud::ProviderBreakdownRow* ovh = nullptr;
  for (const auto& row : report.providers) {
    if (row.org == "Cloudflare, Inc.") cf = &row;
    if (row.org == "OVH SAS") ovh = &row;
  }
  ASSERT_NE(cf, nullptr);
  if (ovh != nullptr && ovh->total > 30) {
    EXPECT_GT(cf->pct(cf->v6_full), ovh->pct(ovh->v6_full));
  }

  // Service table: always-on services read ~100% ready.
  bool saw_front_door = false;
  for (const auto& svc : report.services) {
    if (svc.service_name == "Azure Front Door CDN" && svc.total >= 5) {
      saw_front_door = true;
      EXPECT_GT(svc.pct_ready(), 95.0);
    }
    if (svc.service_name == "Amazon S3" && svc.total >= 20) {
      EXPECT_LT(svc.pct_ready(), 10.0);
    }
  }
  (void)saw_front_door;  // presence depends on sampling at this scale
}

TEST(CloudEndToEnd, MultiCloudComparisonOnUniverse) {
  cloud::ProviderCatalog providers;
  web::UniverseConfig cfg;
  cfg.site_count = 1500;
  cfg.multi_cloud_prob = 0.5;
  cfg.seed = 424242;
  web::Universe universe(cfg, providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 6);
  auto records = core::build_domain_records(universe, survey);
  MultiCloudComparison cmp(records, providers, core::paper_org_merge_map());

  EXPECT_GT(cmp.multi_cloud_tenant_count(), 20);
  EXPECT_GE(cmp.orgs().size(), 3u);
  int comparable = 0;
  for (const auto& p : cmp.pairs()) comparable += p.comparable;
  EXPECT_GT(comparable, 0);
  for (const auto& p : cmp.pairs()) {
    EXPECT_GE(p.effect_size_r, -1.0);
    EXPECT_LE(p.effect_size_r, 1.0);
    if (p.significant) {
      EXPECT_TRUE(p.comparable);
    }
  }
}

}  // namespace
}  // namespace nbv6::cloud
