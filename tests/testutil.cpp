#include "testutil.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "engine/scenario_fuzz.h"

namespace nbv6::testutil {

namespace {

// FNV-1a over explicit integer state: stable across platforms/compilers
// (unlike hashing doubles' text or std::hash).
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
};

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out.append(buf, static_cast<size_t>(std::min<int>(n, sizeof buf - 1)));
}

// %.17g: shortest text that still round-trips any double exactly, so two
// serializations are equal iff every double is bit-identical.
void append_d(std::string& out, double v) {
  append(out, "%.17g", v);
}

void append_split(std::string& out, const char* label,
                  const flowmon::FamilySplit& s) {
  append(out,
         "%s v4_bytes=%" PRIu64 " v6_bytes=%" PRIu64 " v4_flows=%" PRIu64
         " v6_flows=%" PRIu64 "\n",
         label, s.v4.bytes, s.v6.bytes, s.v4.flows, s.v6.flows);
}

void append_panel(std::string& out, const char* label,
                  const core::GroupComparison& cmp) {
  append(out, "panel %s %s vs %s rows=%zu\n", label,
         core::to_string(cmp.group_a), core::to_string(cmp.group_b),
         cmp.rows.size());
  for (const auto& r : cmp.rows) {
    append(out, "  row %s paired=%d n_a=%zu n_b=%zu median_a=", r.metric.c_str(),
           r.paired ? 1 : 0, r.n_a, r.n_b);
    append_d(out, r.median_a);
    out += " median_b=";
    append_d(out, r.median_b);
    out += " z=";
    append_d(out, r.z);
    out += " effect_r=";
    append_d(out, r.effect_r);
    out += " p_raw=";
    append_d(out, r.p_raw);
    out += " p_holm=";
    append_d(out, r.p_holm);
    append(out, " significant=%d\n", r.significant ? 1 : 0);
  }
}

}  // namespace

std::string source_dir() { return NBV6_SOURCE_DIR; }

std::string scenarios_dir() { return source_dir() + "/examples/scenarios"; }

std::string golden_dir() { return source_dir() + "/tests/golden"; }

std::vector<std::string> scenario_files() {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(scenarios_dir(), ec)) {
    if (entry.path().extension() == ".cfg")
      out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string scenario_stem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

ScenarioRun run_scenario(const engine::FleetConfig& cfg,
                         const traffic::ServiceCatalog& catalog, int lanes,
                         engine::TimelinePlanMode mode) {
  ScenarioRun run;
  run.cfg = cfg;
  engine::FleetEngine engine(catalog, lanes);
  run.result = engine.run(cfg, mode);  // sample + timeline + simulate
  run.report = core::fleet_stats_report(run.result, engine.pool());
  // Pre/post panel over the horizon's halves: with timeline events this is
  // the before/after comparison; without, a self-check near the null.
  core::DayWindow pre{0, cfg.days / 2 - 1};
  core::DayWindow post{cfg.days / 2, cfg.days - 1};
  auto metrics = core::default_fleet_metrics();
  run.window_panel =
      core::compare_windows(run.result, metrics, pre, post,
                            core::FleetGroup::all, engine.pool());
  return run;
}

std::string canonical_serialize(const ScenarioRun& run) {
  using flowmon::Scope;
  std::string out;
  out.reserve(1 << 16);

  const auto& cfg = run.cfg;
  append(out, "scenario residences=%d days=%d seed=%" PRIu64 " events=%zu",
         cfg.residences.get(), cfg.days.get(), cfg.seed.get(),
         cfg.timeline->events.size());
  // Open-loop runs name their arrival process in the header; batch runs
  // keep the original line so every pre-existing golden stays byte-exact.
  if (cfg.arrival->mode != traffic::ArrivalMode::batch) {
    append(out, " arrival=%s ticks_per_hour=%d",
           traffic::to_string(cfg.arrival->mode), cfg.arrival->ticks_per_hour);
  }
  out += '\n';

  const auto& totals = run.result.totals;
  append(out,
         "totals sessions=%" PRIu64 " flows=%" PRIu64 " invisible=%" PRIu64
         " he_failures=%" PRIu64 " outage_suppressed=%" PRIu64
         " service_outage=%" PRIu64 " cgn_failures=%" PRIu64 "\n",
         totals.sessions, totals.flows, totals.skipped_invisible,
         totals.he_failures, totals.outage_suppressed,
         totals.service_outage_failed, totals.cgn_failures);

  // ---- day-resolved session stats -----------------------------------
  // Fleet-level per-day rows in full (small: one per simulated day), the
  // per-residence series folded to an FNV checksum like the other
  // high-volume aggregates.
  for (size_t d = 0; d < totals.daily.size(); ++d) {
    const auto& ds = totals.daily[d];
    append(out,
           "day_stats day=%zu sessions=%" PRIu64 " he_failures=%" PRIu64
           " outage_suppressed=%" PRIu64 " service_outage=%" PRIu64
           " cgn_failures=%" PRIu64 "\n",
           d, ds.sessions, ds.he_failures, ds.outage_suppressed,
           ds.service_outage_failed, ds.cgn_failures);
  }
  {
    Fnv fnv;
    size_t entries = 0;
    for (const auto& r : run.result.residences) {
      for (size_t d = 0; d < r.stats.daily.size(); ++d) {
        const auto& ds = r.stats.daily[d];
        fnv.add(static_cast<std::uint64_t>(d));
        fnv.add(ds.sessions);
        fnv.add(ds.he_failures);
        fnv.add(ds.outage_suppressed);
        fnv.add(ds.service_outage_failed);
        fnv.add(ds.cgn_failures);
        ++entries;
      }
    }
    append(out, "residence_day_stats entries=%zu fnv=%016" PRIx64 "\n",
           entries, fnv.h);
  }

  // ---- fleet-level monitor state ------------------------------------
  const auto& fleet = run.result.fleet;
  append_split(out, "fleet external", fleet.totals(Scope::external));
  append_split(out, "fleet internal", fleet.totals(Scope::internal));
  for (Scope s : {Scope::external, Scope::internal}) {
    for (const auto& [day, split] : fleet.daily(s)) {
      append(out,
             "daily %s day=%d v4_bytes=%" PRIu64 " v6_bytes=%" PRIu64
             " v4_flows=%" PRIu64 " v6_flows=%" PRIu64 "\n",
             s == Scope::external ? "external" : "internal", day,
             split.v4.bytes, split.v6.bytes, split.v4.flows, split.v6.flows);
    }
  }
  {
    Fnv fnv;
    for (const auto& [hour, split] : fleet.hourly_external()) {
      fnv.add(static_cast<std::uint64_t>(hour));
      fnv.add(split.v4.bytes);
      fnv.add(split.v6.bytes);
      fnv.add(split.v4.flows);
      fnv.add(split.v6.flows);
    }
    append(out, "hourly_external count=%zu fnv=%016" PRIx64 "\n",
           fleet.hourly_external().size(), fnv.h);
  }
  {
    Fnv fnv;
    auto dests = fleet.destination_tallies();  // map-ordered: deterministic
    for (const auto& d : dests) {
      if (d.addr.is_v4()) {
        fnv.add(d.addr.v4().value());
      } else {
        fnv.add(d.addr.v6().high64());
        fnv.add(d.addr.v6().low64());
      }
      fnv.add(d.tally.bytes);
      fnv.add(d.tally.flows);
    }
    append(out, "destinations count=%zu fnv=%016" PRIx64 "\n", dests.size(),
           fnv.h);
  }

  // ---- per-residence shards -----------------------------------------
  for (size_t i = 0; i < run.result.residences.size(); ++i) {
    const auto& r = run.result.residences[i];
    const auto& ext = r.monitor.totals(Scope::external);
    const auto& internal = r.monitor.totals(Scope::internal);
    const auto& t = run.result.traits[i];
    append(out,
           "residence %zu name=%s sessions=%" PRIu64 " flows=%" PRIu64
           " he=%" PRIu64 " outage=%" PRIu64 " svc_outage=%" PRIu64
           " cgn=%" PRIu64 " ext_v4b=%" PRIu64
           " ext_v6b=%" PRIu64 " ext_v4f=%" PRIu64 " ext_v6f=%" PRIu64
           " int_b=%" PRIu64
           " traits=ds:%d,broken:%d,streamer:%d,vacant:%d,opt:%d,abs:%d\n",
           i, r.config.name.c_str(), r.stats.sessions, r.stats.flows,
           r.stats.he_failures, r.stats.outage_suppressed,
           r.stats.service_outage_failed, r.stats.cgn_failures, ext.v4.bytes,
           ext.v6.bytes, ext.v4.flows, ext.v6.flows, internal.total_bytes(),
           t.dual_stack_isp ? 1 : 0, t.broken_v6 ? 1 : 0,
           t.heavy_streamer ? 1 : 0, t.vacant ? 1 : 0, t.opt_out ? 1 : 0,
           t.scripted_absence ? 1 : 0);
  }

  // ---- metric matrix -------------------------------------------------
  for (size_t m = 0; m < run.report.matrix.metrics.size(); ++m) {
    append(out, "matrix %s", core::to_string(run.report.matrix.metrics[m]));
    for (double v : run.report.matrix.values[m]) {
      out += ' ';
      append_d(out, v);
    }
    out += '\n';
  }

  // ---- panels --------------------------------------------------------
  for (const auto& cmp : run.report.comparisons)
    append_panel(out, "unpaired", cmp);
  append_panel(out, "paired", run.report.paired);
  append_panel(out, "window_pre_post", run.window_panel);

  // ---- population distributions -------------------------------------
  for (const auto& d : run.report.distributions) {
    append(out, "distribution %s defined=%zu count=%" PRIu64,
           core::to_string(d.metric), d.defined, d.cdf.count());
    const auto& s = d.summary;
    const double vals[] = {s.mean,          s.stddev,        s.min,
                           s.p25,           s.median,        s.p75,
                           s.max,           d.cdf.quantile(0.25),
                           d.cdf.quantile(0.5), d.cdf.quantile(0.75)};
    const char* names[] = {"mean", "sd",  "min",  "p25",  "median",
                           "p75",  "max", "cq25", "cq50", "cq75"};
    for (size_t k = 0; k < std::size(vals); ++k) {
      append(out, " %s=", names[k]);
      append_d(out, vals[k]);
    }
    out += '\n';
  }
  return out;
}

std::optional<std::string> fuzz_check_scenario(
    const std::string& text, const traffic::ServiceCatalog& catalog) {
  if (auto err = engine::check_parse_round_trip(text))
    return "round-trip: " + *err;

  std::string parse_error;
  auto cfg = engine::FleetConfig::parse(text, &parse_error);
  if (!cfg) return "parse: " + parse_error;  // unreachable after round-trip

  if (auto err = engine::check_plan_parity(*cfg, catalog))
    return "plan-parity: " + *err;

  // Lane-count invariance and lazy/materialized simulation parity, both
  // stated as byte equality of the canonical serialization.
  const ScenarioRun base = run_scenario(*cfg, catalog, 1);
  const std::string base_text = canonical_serialize(base);
  for (int lanes : {4, 8}) {
    const std::string other =
        canonical_serialize(run_scenario(*cfg, catalog, lanes));
    if (other != base_text)
      return "lane-parity: 1-lane vs " + std::to_string(lanes) +
             "-lane serializations differ\n" + first_diff(base_text, other);
  }
  {
    const std::string mat = canonical_serialize(run_scenario(
        *cfg, catalog, 1, engine::TimelinePlanMode::materialized));
    if (mat != base_text)
      return "mode-parity: lazy vs materialized serializations differ\n" +
             first_diff(base_text, mat);
  }

  // Windowed metric finiteness. Count/sum metrics must be real numbers on
  // any window that intersects the horizon; rate/fraction metrics may be
  // NaN (undefined: nothing happened) but never infinite.
  const core::FleetMetric kAllMetrics[] = {
      core::FleetMetric::v6_byte_fraction,
      core::FleetMetric::v6_flow_fraction,
      core::FleetMetric::daily_v6_byte_fraction,
      core::FleetMetric::external_gb,
      core::FleetMetric::external_flows_k,
      core::FleetMetric::internal_gb,
      core::FleetMetric::he_failure_rate,
      core::FleetMetric::sessions_k,
      core::FleetMetric::outage_suppressed_k,
      core::FleetMetric::service_outage_k,
      core::FleetMetric::cgn_failure_rate,
  };
  auto is_sum_metric = [](core::FleetMetric m) {
    switch (m) {
      case core::FleetMetric::external_gb:
      case core::FleetMetric::external_flows_k:
      case core::FleetMetric::internal_gb:
      case core::FleetMetric::sessions_k:
      case core::FleetMetric::outage_suppressed_k:
      case core::FleetMetric::service_outage_k:
        return true;
      default:
        return false;
    }
  };

  const int days = cfg->days;
  std::vector<core::DayWindow> windows;
  windows.push_back({0, days - 1});
  if (days >= 2) {
    windows.push_back({0, days / 2 - 1});
    windows.push_back({days / 2, days - 1});
  }
  for (int d : {0, days / 2, days - 1}) windows.push_back({d, d});
  for (const auto& ev : cfg->timeline->events) {
    const int first = std::clamp(ev.start_day, 0, days - 1);
    const int last = std::clamp(ev.end_day, first, days - 1);
    windows.push_back({first, last});
  }

  for (const auto& w : windows) {
    const auto matrix =
        core::extract_metrics(base.result, kAllMetrics, w, nullptr);
    for (size_t m = 0; m < matrix.metrics.size(); ++m) {
      for (size_t i = 0; i < matrix.values[m].size(); ++i) {
        const double v = matrix.values[m][i];
        if (std::isinf(v) ||
            (std::isnan(v) && is_sum_metric(matrix.metrics[m])))
          return std::string("window-finiteness: metric ") +
                 core::to_string(matrix.metrics[m]) + " residence " +
                 std::to_string(i) + " window [" + std::to_string(w.first) +
                 ", " + std::to_string(w.last) + "] = " + std::to_string(v);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  if (!outf) return false;
  outf.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(outf);
}

std::string first_diff(std::string_view a, std::string_view b) {
  if (a == b) return {};
  size_t line = 1;
  size_t pa = 0, pb = 0;
  while (pa < a.size() && pb < b.size()) {
    size_t ea = a.find('\n', pa);
    size_t eb = b.find('\n', pb);
    std::string_view la = a.substr(pa, ea == std::string_view::npos
                                           ? std::string_view::npos
                                           : ea - pa);
    std::string_view lb = b.substr(pb, eb == std::string_view::npos
                                           ? std::string_view::npos
                                           : eb - pb);
    if (la != lb) {
      std::string out = "line " + std::to_string(line) + ":\n  a: ";
      out.append(la.substr(0, 200));
      out += "\n  b: ";
      out.append(lb.substr(0, 200));
      return out;
    }
    if (ea == std::string_view::npos || eb == std::string_view::npos) break;
    pa = ea + 1;
    pb = eb + 1;
    ++line;
  }
  return "line " + std::to_string(line) +
         ": one side ends early (sizes " + std::to_string(a.size()) + " vs " +
         std::to_string(b.size()) + ")";
}

}  // namespace nbv6::testutil
