#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/adoption.h"
#include "core/cloud_analysis.h"
#include "core/server_analysis.h"
#include "web/metrics.h"

namespace nbv6::core {
namespace {

TEST(GradedAdoption, LevelsFromFractions) {
  EXPECT_EQ(GradedAdoption::from_fraction(0.0).level, AdoptionLevel::none);
  EXPECT_EQ(GradedAdoption::from_fraction(1.0).level, AdoptionLevel::full);
  EXPECT_EQ(GradedAdoption::from_fraction(0.5).level, AdoptionLevel::partial);
  EXPECT_EQ(GradedAdoption::from_fraction(0.001).level,
            AdoptionLevel::partial);
  EXPECT_EQ(GradedAdoption::from_fraction(0.999).level,
            AdoptionLevel::partial);
}

TEST(GradedAdoption, Names) {
  EXPECT_EQ(to_string(AdoptionLevel::none), "IPv4-only");
  EXPECT_EQ(to_string(AdoptionLevel::partial), "IPv6-partial");
  EXPECT_EQ(to_string(AdoptionLevel::full), "IPv6-full");
}

class SurveyFixture : public ::testing::Test {
 protected:
  SurveyFixture() {
    web::UniverseConfig cfg;
    cfg.site_count = 2000;
    cfg.seed = 555;
    universe_ = std::make_unique<web::Universe>(cfg, providers_);
    survey_ = run_server_survey(*universe_, web::Epoch::jul2025, 3);
  }
  cloud::ProviderCatalog providers_;
  std::unique_ptr<web::Universe> universe_;
  ServerSurvey survey_;
};

TEST_F(SurveyFixture, SurveyIsDeterministic) {
  auto again = run_server_survey(*universe_, web::Epoch::jul2025, 3);
  EXPECT_EQ(again.counts.ipv6_full, survey_.counts.ipv6_full);
  EXPECT_EQ(again.counts.ipv6_partial, survey_.counts.ipv6_partial);
  EXPECT_EQ(again.counts.nxdomain, survey_.counts.nxdomain);
}

TEST_F(SurveyFixture, DifferentSeedsVaryOnlyStochastics) {
  // DNS truths don't depend on the crawl seed, so classification counts
  // move only through Happy-Eyeballs races and link-click choices.
  auto other = run_server_survey(*universe_, web::Epoch::jul2025, 99);
  EXPECT_EQ(other.counts.nxdomain, survey_.counts.nxdomain);
  EXPECT_EQ(other.counts.ipv4_only, survey_.counts.ipv4_only);
  EXPECT_NEAR(other.counts.ipv6_full, survey_.counts.ipv6_full,
              0.1 * survey_.counts.ipv6_full + 20);
}

TEST_F(SurveyFixture, ObservedFqdnsAreUniqueAndReachable) {
  auto names = observed_fqdn_names(*universe_, survey_);
  EXPECT_GT(names.size(), 1000u);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST_F(SurveyFixture, DomainRecordsResolveConsistently) {
  auto records = build_domain_records(*universe_, survey_);
  EXPECT_GT(records.size(), 1000u);
  for (const auto& r : records) {
    EXPECT_TRUE(r.has_a() || r.has_aaaa()) << r.fqdn;
    EXPECT_FALSE(r.etld1.empty());
    EXPECT_FALSE(r.cname_terminal.empty());
    if (r.a_addr) {
      EXPECT_TRUE(r.a_addr->is_v4());
    }
    if (r.aaaa_addr) {
      EXPECT_TRUE(r.aaaa_addr->is_v6());
    }
  }
}

TEST_F(SurveyFixture, MergeMapCoversBothSplitEntities) {
  auto merge = paper_org_merge_map();
  EXPECT_EQ(merge.at("Cloudflare, Inc."), "Cloudflare (All)");
  EXPECT_EQ(merge.at("Cloudflare London, LLC"), "Cloudflare (All)");
  EXPECT_EQ(merge.at("Akamai International B.V."), "Akamai (All)");
  EXPECT_EQ(merge.at("Akamai Technologies, Inc."), "Akamai (All)");
}

TEST_F(SurveyFixture, VersionSubdomainEstimatorFindsPlantedSites) {
  auto est = web::estimate_version_subdomain_misclassification(
      *universe_, survey_.crawls, survey_.classifications);
  EXPECT_EQ(est.partial_sites, survey_.counts.ipv6_partial);
  EXPECT_GE(est.suspect_sites, 0);
  // The planted rate is 0.4%-ish of sites; suspects are rare but bounded.
  EXPECT_LT(est.fraction(), 0.05);
}

TEST_F(SurveyFixture, VersionSubdomainEstimatorCountsOnlyPureCases) {
  // A hand-built crawl: one partial site whose sole IPv4-only resource is
  // version-marked, one with a mixed set.
  web::SiteCrawl pure;
  pure.fate = web::SiteFate::ok;
  pure.main_has_a = pure.main_has_aaaa = true;
  pure.main_host = universe_->fqdns()[universe_->sites()[0].main_fqdn].name;

  // Find a planted ipv4.* FQDN if present; otherwise skip.
  std::optional<std::uint32_t> marked;
  std::optional<std::uint32_t> unmarked;
  for (std::uint32_t i = 0; i < universe_->fqdns().size(); ++i) {
    const auto& n = universe_->fqdns()[i].name;
    if (n.rfind("ipv4.", 0) == 0) marked = i;
    if (n.rfind("www.", 0) == 0 && !unmarked) unmarked = i;
  }
  if (!marked) GTEST_SKIP() << "no planted version subdomain at this scale";

  web::ResourceObservation obs;
  obs.fqdn = *marked;
  obs.has_a = true;
  obs.has_aaaa = false;
  pure.resources.push_back(obs);

  web::SiteCrawl mixed = pure;
  web::ResourceObservation other;
  other.fqdn = *unmarked;
  other.has_a = true;
  other.has_aaaa = false;
  mixed.resources.push_back(other);

  std::vector<web::SiteCrawl> crawls{pure, mixed};
  auto classifications = web::classify_all(crawls);
  ASSERT_EQ(classifications[0].cls, web::SiteClass::ipv6_partial);
  ASSERT_EQ(classifications[1].cls, web::SiteClass::ipv6_partial);

  auto est = web::estimate_version_subdomain_misclassification(
      *universe_, crawls, classifications);
  EXPECT_EQ(est.partial_sites, 2);
  EXPECT_EQ(est.suspect_sites, 1);
}

}  // namespace
}  // namespace nbv6::core
