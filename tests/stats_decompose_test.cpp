#include <gtest/gtest.h>

#include <cmath>

#include "engine/thread_pool.h"
#include "stats/descriptive.h"
#include "stats/loess.h"
#include "stats/rng.h"
#include "stats/stl.h"

namespace nbv6::stats {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ------------------------------------------------------------ LOESS

TEST(Loess, ReproducesConstant) {
  std::vector<double> ys(50, 7.5);
  LoessConfig cfg;
  auto out = loess(ys, cfg);
  for (double v : out) EXPECT_NEAR(v, 7.5, 1e-9);
}

TEST(Loess, Degree1ReproducesLine) {
  // Local linear regression fits straight lines exactly, interior and edge.
  std::vector<double> ys(60);
  for (size_t i = 0; i < ys.size(); ++i) ys[i] = 2.0 * static_cast<double>(i) - 5.0;
  LoessConfig cfg;
  cfg.degree = 1;
  cfg.span_fraction = 0.4;
  auto out = loess(ys, cfg);
  for (size_t i = 0; i < ys.size(); ++i) EXPECT_NEAR(out[i], ys[i], 1e-8) << i;
}

TEST(Loess, Degree0SmoothsToLocalMean) {
  std::vector<double> ys{0, 0, 0, 10, 0, 0, 0};
  LoessConfig cfg;
  cfg.degree = 0;
  // Span 5: the spike's direct neighbours carry nonzero tricube weight
  // (the window edge itself always weighs zero).
  cfg.span_points = 5;
  auto out = loess(ys, cfg);
  // The spike spreads into neighbours but the far edges stay near zero.
  EXPECT_LT(out[0], 1.0);
  EXPECT_GT(out[3], 2.0);
  EXPECT_LT(out[3], 10.0);
}

TEST(Loess, SmoothsNoiseTowardTrend) {
  Rng rng(11);
  std::vector<double> ys(200);
  for (size_t i = 0; i < ys.size(); ++i)
    ys[i] = 0.05 * static_cast<double>(i) + rng.normal(0, 0.5);
  LoessConfig cfg;
  cfg.span_fraction = 0.3;
  auto out = loess(ys, cfg);
  // Residuals of the smooth against the true trend shrink vs raw noise.
  double raw = 0, smooth = 0;
  for (size_t i = 0; i < ys.size(); ++i) {
    double truth = 0.05 * static_cast<double>(i);
    raw += std::abs(ys[i] - truth);
    smooth += std::abs(out[i] - truth);
  }
  EXPECT_LT(smooth, raw * 0.5);
}

TEST(Loess, RobustnessDownweightsOutlier) {
  std::vector<double> ys(21, 1.0);
  ys[10] = 100.0;
  std::vector<double> rob(21, 1.0);
  rob[10] = 0.0;  // fully suppress the outlier
  LoessConfig cfg;
  cfg.span_points = 7;
  auto with = loess(ys, cfg, rob);
  EXPECT_NEAR(with[10], 1.0, 1e-6);
}

TEST(Loess, EmptyAndSingle) {
  LoessConfig cfg;
  EXPECT_TRUE(loess(std::vector<double>{}, cfg).empty());
  auto one = loess(std::vector<double>{42.0}, cfg);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 42.0);
}

// ------------------------------------------------------------ STL

std::vector<double> synth_series(size_t n, double trend_slope,
                                 double daily_amp, double noise_sd,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i);
    ys[i] = 0.5 + trend_slope * t +
            daily_amp * std::sin(2 * kPi * t / 24.0) +
            rng.normal(0, noise_sd);
  }
  return ys;
}

TEST(Stl, ReconstructionIdentity) {
  auto ys = synth_series(24 * 14, 0.0005, 0.2, 0.05, 12);
  StlConfig cfg;
  cfg.period = 24;
  auto r = stl_decompose(ys, cfg);
  ASSERT_EQ(r.trend.size(), ys.size());
  for (size_t i = 0; i < ys.size(); ++i) {
    EXPECT_NEAR(r.trend[i] + r.seasonal[i] + r.remainder[i], ys[i], 1e-9);
  }
}

TEST(Stl, RecoversSeasonalAmplitude) {
  auto ys = synth_series(24 * 21, 0.0, 0.3, 0.02, 13);
  StlConfig cfg;
  cfg.period = 24;
  auto r = stl_decompose(ys, cfg);
  // Seasonal component should swing roughly ±0.3 mid-series.
  double lo = 0, hi = 0;
  for (size_t i = ys.size() / 4; i < 3 * ys.size() / 4; ++i) {
    lo = std::min(lo, r.seasonal[i]);
    hi = std::max(hi, r.seasonal[i]);
  }
  EXPECT_NEAR(hi, 0.3, 0.1);
  EXPECT_NEAR(lo, -0.3, 0.1);
}

TEST(Stl, TrendFollowsSlope) {
  auto ys = synth_series(24 * 21, 0.001, 0.2, 0.02, 14);
  StlConfig cfg;
  cfg.period = 24;
  auto r = stl_decompose(ys, cfg);
  // Compare trend rise over the middle half against the truth.
  size_t a = ys.size() / 4, b = 3 * ys.size() / 4;
  double rise = r.trend[b] - r.trend[a];
  double truth = 0.001 * static_cast<double>(b - a);
  EXPECT_NEAR(rise, truth, truth * 0.5);
}

TEST(Stl, SeasonalAveragesToZero) {
  auto ys = synth_series(24 * 21, 0.0, 0.25, 0.05, 15);
  StlConfig cfg;
  cfg.period = 24;
  auto r = stl_decompose(ys, cfg);
  EXPECT_NEAR(mean(r.seasonal), 0.0, 0.03);
}

TEST(Stl, RobustIterationsToleratesSpikes) {
  auto ys = synth_series(24 * 14, 0.0, 0.2, 0.02, 16);
  ys[100] += 5.0;  // gross outlier
  StlConfig cfg;
  cfg.period = 24;
  cfg.outer_iterations = 2;
  auto r = stl_decompose(ys, cfg);
  // The outlier should land in the remainder, not the trend.
  EXPECT_GT(std::abs(r.remainder[100]), 3.0);
  EXPECT_LT(std::abs(r.trend[100] - r.trend[99]), 0.5);
}

// ------------------------------------------------------------ MSTL

TEST(Mstl, ReconstructionIdentity) {
  Rng rng(17);
  const size_t n = 24 * 7 * 6;
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i);
    ys[i] = 0.5 + 0.2 * std::sin(2 * kPi * t / 24.0) +
            0.1 * std::sin(2 * kPi * t / 168.0) + rng.normal(0, 0.03);
  }
  MstlConfig cfg;
  cfg.periods = {24, 168};
  auto r = mstl_decompose(ys, cfg);
  ASSERT_EQ(r.seasonals.size(), 2u);
  for (size_t i = 0; i < n; ++i) {
    double sum = r.trend[i] + r.seasonals[0][i] + r.seasonals[1][i] +
                 r.remainder[i];
    EXPECT_NEAR(sum, ys[i], 1e-9);
  }
}

TEST(Mstl, SeparatesTwoPeriods) {
  Rng rng(18);
  const size_t n = 24 * 7 * 8;
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i);
    ys[i] = 0.3 * std::sin(2 * kPi * t / 24.0) +
            0.15 * std::sin(2 * kPi * t / 168.0) + rng.normal(0, 0.02);
  }
  MstlConfig cfg;
  cfg.periods = {24, 168};
  auto r = mstl_decompose(ys, cfg);
  // Daily amplitude ~0.3, weekly ~0.15 (mid-series peaks).
  auto amp = [&](const std::vector<double>& s) {
    double hi = 0;
    for (size_t i = n / 4; i < 3 * n / 4; ++i) hi = std::max(hi, std::abs(s[i]));
    return hi;
  };
  EXPECT_NEAR(amp(r.seasonals[0]), 0.3, 0.12);
  EXPECT_NEAR(amp(r.seasonals[1]), 0.15, 0.12);
  EXPECT_GT(amp(r.seasonals[0]), amp(r.seasonals[1]));
}

TEST(Mstl, DropsUnsupportablePeriods) {
  std::vector<double> ys(60, 1.0);
  MstlConfig cfg;
  cfg.periods = {24, 168};  // 168 needs >= 336 points; 24 needs 48 and fits
  auto r = mstl_decompose(ys, cfg);
  EXPECT_EQ(r.seasonals.size(), 1u);
}

TEST(Mstl, NoPeriodsFallsBackToTrendOnly) {
  std::vector<double> ys(10, 2.0);
  MstlConfig cfg;
  cfg.periods = {24};
  auto r = mstl_decompose(ys, cfg);
  EXPECT_TRUE(r.seasonals.empty());
  for (size_t i = 0; i < ys.size(); ++i)
    EXPECT_NEAR(r.trend[i] + r.remainder[i], ys[i], 1e-9);
}

TEST(Mstl, ConstantSeriesHasZeroSeasonals) {
  std::vector<double> ys(24 * 10, 3.3);
  MstlConfig cfg;
  cfg.periods = {24};
  auto r = mstl_decompose(ys, cfg);
  for (double v : r.seasonals[0]) EXPECT_NEAR(v, 0.0, 1e-6);
  for (double v : r.remainder) EXPECT_NEAR(v, 0.0, 1e-6);
}

// ------------------------------------------------------------ workspace

TEST(StlWorkspaceTest, SharedWorkspaceMatchesFreshWorkspace) {
  auto ys1 = synth_series(24 * 14, 0.0005, 0.2, 0.05, 21);
  auto ys2 = synth_series(24 * 21, 0.001, 0.3, 0.02, 22);
  StlConfig cfg;
  cfg.period = 24;
  cfg.outer_iterations = 1;

  StlWorkspace shared;
  StlResult a1, a2;
  stl_decompose(ys1, cfg, shared, a1);
  stl_decompose(ys2, cfg, shared, a2);  // reused, different length

  auto b1 = stl_decompose(ys1, cfg);
  auto b2 = stl_decompose(ys2, cfg);
  EXPECT_EQ(a1.trend, b1.trend);
  EXPECT_EQ(a1.seasonal, b1.seasonal);
  EXPECT_EQ(a2.trend, b2.trend);
  EXPECT_EQ(a2.seasonal, b2.seasonal);
}

TEST(StlWorkspaceTest, RepeatedDecompositionsDoNotReallocate) {
  auto ys = synth_series(24 * 14, 0.0, 0.2, 0.05, 23);
  StlConfig cfg;
  cfg.period = 24;
  StlWorkspace ws;
  StlResult r;
  stl_decompose(ys, cfg, ws, r);
  // Buffers are at their high-water marks now; further same-shape runs
  // must reuse them in place.
  const double* detrended = ws.detrended.data();
  const double* cycle = ws.cycle.data();
  const double* lowpass = ws.lowpass.data();
  const double* trend = r.trend.data();
  for (int rep = 0; rep < 3; ++rep) stl_decompose(ys, cfg, ws, r);
  EXPECT_EQ(ws.detrended.data(), detrended);
  EXPECT_EQ(ws.cycle.data(), cycle);
  EXPECT_EQ(ws.lowpass.data(), lowpass);
  EXPECT_EQ(r.trend.data(), trend);
}

TEST(MstlWorkspaceTest, SharedWorkspaceMatchesFreshWorkspace) {
  Rng rng(24);
  const size_t n = 24 * 7 * 4;
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i);
    ys[i] = 0.2 * std::sin(2 * kPi * t / 24.0) +
            0.1 * std::sin(2 * kPi * t / 168.0) + rng.normal(0, 0.02);
  }
  MstlConfig cfg;
  cfg.periods = {24, 168};
  StlWorkspace ws;
  MstlResult a;
  mstl_decompose(ys, cfg, ws, a);
  mstl_decompose(ys, cfg, ws, a);  // reuse
  auto b = mstl_decompose(ys, cfg);
  EXPECT_EQ(a.trend, b.trend);
  ASSERT_EQ(a.seasonals.size(), b.seasonals.size());
  for (size_t k = 0; k < a.seasonals.size(); ++k)
    EXPECT_EQ(a.seasonals[k], b.seasonals[k]);
}

// ------------------------------------------------------- parallel STL

TEST(ParallelStl, PooledCycleSubseriesMatchesSequentialBitForBit) {
  // The per-phase LOESS fits are period-independent; fanning them across a
  // pool must not change a single bit of any component.
  auto ys = synth_series(24 * 21, 0.0008, 0.25, 0.04, 31);
  StlConfig cfg;
  cfg.period = 24;
  cfg.outer_iterations = 1;  // exercise the robustness-weighted path too

  auto seq = stl_decompose(ys, cfg);

  engine::ThreadPool pool(4);
  cfg.pool = &pool;
  StlWorkspace ws;
  StlResult par;
  stl_decompose(ys, cfg, ws, par);

  EXPECT_EQ(seq.trend, par.trend);
  EXPECT_EQ(seq.seasonal, par.seasonal);
  EXPECT_EQ(seq.remainder, par.remainder);

  // Workspace reuse across pooled runs stays exact as well.
  StlResult par2;
  stl_decompose(ys, cfg, ws, par2);
  EXPECT_EQ(par.seasonal, par2.seasonal);
}

TEST(ParallelStl, PooledMstlMatchesSequential) {
  Rng rng(77);
  const size_t n = 24 * 7 * 6;
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i);
    ys[i] = 0.5 + 0.2 * std::sin(2 * kPi * t / 24.0) +
            0.1 * std::sin(2 * kPi * t / 168.0) + rng.normal(0, 0.03);
  }
  MstlConfig cfg;
  cfg.periods = {24, 168};
  auto seq = mstl_decompose(ys, cfg);

  engine::ThreadPool pool(4);
  cfg.pool = &pool;
  auto par = mstl_decompose(ys, cfg);

  EXPECT_EQ(seq.trend, par.trend);
  ASSERT_EQ(seq.seasonals.size(), par.seasonals.size());
  for (size_t k = 0; k < seq.seasonals.size(); ++k)
    EXPECT_EQ(seq.seasonals[k], par.seasonals[k]);
  EXPECT_EQ(seq.remainder, par.remainder);
}

// ------------------------------------------------------- moving average

TEST(MovingAverage, EvenWindowCancelsPeriodicSignalExactly) {
  // The centered 2xMA at w == period sums exactly one full period with
  // half-weighted endpoints p apart (equal values), so a pure
  // period-periodic signal averages to its mean at every interior point.
  // This is the property STL's low-pass relies on; a naive symmetric
  // (w+1)-point window does not have it.
  const int period = 24;
  std::vector<double> ys(24 * 8);
  for (size_t i = 0; i < ys.size(); ++i)
    ys[i] = std::sin(2 * kPi * static_cast<double>(i) / period);
  std::vector<double> out(ys.size());
  moving_average_into(ys, period, out);
  const int h = period / 2;
  for (size_t i = static_cast<size_t>(h); i + static_cast<size_t>(h) < ys.size(); ++i)
    EXPECT_NEAR(out[i], 0.0, 1e-12) << i;
}

TEST(MovingAverage, OddWindowIsPlainCenteredMean) {
  std::vector<double> ys{1, 2, 3, 4, 5, 6, 7};
  std::vector<double> out(ys.size());
  moving_average_into(ys, 3, out);
  EXPECT_DOUBLE_EQ(out[0], 1.5);  // truncated edge: (1+2)/2
  EXPECT_DOUBLE_EQ(out[3], 4.0);
  EXPECT_DOUBLE_EQ(out[6], 6.5);
}

TEST(MovingAverage, EvenWindowReproducesLinearSeries) {
  // Centered 2xMA is symmetric, so linear trends pass through unchanged.
  std::vector<double> ys(40);
  for (size_t i = 0; i < ys.size(); ++i) ys[i] = 3.0 * static_cast<double>(i) - 7.0;
  std::vector<double> out(ys.size());
  moving_average_into(ys, 4, out);
  for (size_t i = 2; i + 2 < ys.size(); ++i) EXPECT_NEAR(out[i], ys[i], 1e-9);
}

}  // namespace
}  // namespace nbv6::stats
