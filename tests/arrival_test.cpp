// Open-loop arrival engine: determinism, distributional correctness, and
// firehose emission invariants.
//
// The contract under test is the one the golden suite pins indirectly:
// every arrival draw is a pure function of (seed, residence index, day,
// tick), batch mode is bit-identical to the pre-open-loop generator, and
// the firehose's canonical tick-major emission order is independent of
// lane count.
#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "engine/firehose.h"
#include "engine/fleet.h"
#include "stats/rng.h"
#include "testutil.h"
#include "traffic/arrival.h"
#include "traffic/generator.h"
#include "traffic/service_catalog.h"

namespace nbv6 {
namespace {

using testutil::canonical_serialize;
using testutil::first_diff;
using testutil::run_scenario;
using traffic::ArrivalMode;

TEST(ArrivalMode_, NamesRoundTrip) {
  for (ArrivalMode m :
       {ArrivalMode::batch, ArrivalMode::poisson, ArrivalMode::uniform}) {
    ArrivalMode parsed = ArrivalMode::batch;
    EXPECT_TRUE(traffic::parse_arrival_mode(traffic::to_string(m), parsed))
        << traffic::to_string(m);
    EXPECT_EQ(parsed, m);
  }
  ArrivalMode out = ArrivalMode::batch;
  EXPECT_FALSE(traffic::parse_arrival_mode("open_loop", out));
  EXPECT_FALSE(traffic::parse_arrival_mode("", out));
  EXPECT_FALSE(traffic::parse_arrival_mode("Poisson", out));
}

TEST(ArrivalStream, IsPureInSeedDayAndTick) {
  // Same coordinates → the same stream, draw for draw. Any neighbouring
  // coordinate → a different stream (the draws decorrelate immediately).
  auto draws = [](std::uint64_t seed, int day, int tick) {
    stats::Rng rng = traffic::arrival_tick_rng(seed, day, tick);
    std::vector<std::uint64_t> v;
    for (int i = 0; i < 8; ++i) v.push_back(rng());
    return v;
  };
  const auto base = draws(42, 3, 1234);
  EXPECT_EQ(base, draws(42, 3, 1234));
  EXPECT_NE(base, draws(43, 3, 1234));
  EXPECT_NE(base, draws(42, 4, 1234));
  EXPECT_NE(base, draws(42, 3, 1235));
  EXPECT_NE(base, draws(42, 3, 1233));
}

TEST(ArrivalDraws, PoissonMatchesItsMoments) {
  // Mean within 4 sigma of lambda, variance within 10% — loose enough to
  // be seed-robust, tight enough to catch an off-by-one-region bug. The
  // 250 case exercises the chunked (lambda > 30) path.
  for (double lambda : {0.5, 5.0, 24.0, 250.0}) {
    SCOPED_TRACE(lambda);
    stats::Rng rng(7);
    const int n = 20000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
      double c = traffic::poisson_count(rng, lambda);
      sum += c;
      sum_sq += c * c;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, lambda, 4.0 * std::sqrt(lambda / n));
    EXPECT_NEAR(var, lambda, 0.10 * lambda);
  }
}

TEST(ArrivalDraws, UniformRenewalIsSubPoissonWithExactMean) {
  stats::Rng rng(11);
  const int n = 20000;
  const double lambda = 8.0;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double c = traffic::uniform_count(rng, lambda);
    sum += c;
    sum_sq += c * c;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, lambda, 4.0 * std::sqrt(lambda / n));
  // U(0, 2/lambda) gaps have CoV^2 = 1/3, so the count variance sits well
  // below the Poisson var = mean line — the point of offering the mode.
  EXPECT_LT(var, 0.6 * lambda);
}

TEST(ArrivalDraws, UniformRenewalSurvivesPerTickRestarts) {
  // The per-tick restart is the dangerous part of a renewal process: a
  // naive "first gap ~ U(0, 2/lambda)" restart inflates small-rate means
  // badly (most ticks would re-draw a short first gap). The equilibrium
  // first-gap draw keeps E[count] = lambda even at per-tick lambda << 1.
  for (double lambda : {0.25, 1.0, 3.0}) {
    SCOPED_TRACE(lambda);
    double total = 0.0;
    const int ticks = 40000;
    for (int t = 0; t < ticks; ++t) {
      stats::Rng rng = traffic::arrival_tick_rng(99, t / 1440, t % 1440);
      total += traffic::uniform_count(rng, lambda);
    }
    const double mean = total / ticks;
    EXPECT_NEAR(mean, lambda, 4.0 * std::sqrt(lambda / ticks));
  }
}

TEST(ArrivalDraws, RunawayRatesAreClamped) {
  stats::Rng rng(5);
  const int c = traffic::draw_arrivals(ArrivalMode::poisson, rng, 1e18);
  EXPECT_GT(c, 0.97 * traffic::kMaxTickLambda);
  EXPECT_LT(c, 1.03 * traffic::kMaxTickLambda);
}

TEST(ArrivalEngine, BatchModeIsBitIdenticalToTheDefaultPath) {
  // An explicit `arrival.mode = batch` — whatever the tick granularity
  // says — must replay byte-for-byte like a config that never mentions
  // arrivals at all: batch mode *is* the original per-hour generator.
  auto catalog = traffic::build_paper_catalog();
  engine::FleetConfig cfg;
  cfg.residences = 8;
  cfg.days = 6;
  cfg.seed = 77;
  const std::string def = canonical_serialize(run_scenario(cfg, catalog, 2));

  engine::FleetConfig explicit_batch = cfg;
  explicit_batch.arrival->mode = ArrivalMode::batch;
  explicit_batch.arrival->ticks_per_hour = 7;  // ignored in batch mode
  const std::string batch =
      canonical_serialize(run_scenario(explicit_batch, catalog, 2));
  EXPECT_EQ(batch, def) << first_diff(batch, def);
}

TEST(ArrivalEngine, OpenLoopRunsAreLaneInvariant) {
  auto catalog = traffic::build_paper_catalog();
  for (ArrivalMode mode : {ArrivalMode::poisson, ArrivalMode::uniform}) {
    SCOPED_TRACE(traffic::to_string(mode));
    engine::FleetConfig cfg;
    cfg.residences = 10;
    cfg.days = 5;
    cfg.seed = 123;
    cfg.arrival->mode = mode;
    cfg.arrival->ticks_per_hour = 7;  // does not divide 3600: worst case
    const std::string base = canonical_serialize(run_scenario(cfg, catalog, 1));
    for (int lanes : {4, 8}) {
      const std::string other =
          canonical_serialize(run_scenario(cfg, catalog, lanes));
      EXPECT_EQ(other, base) << lanes << " lanes diverged:\n"
                             << first_diff(other, base);
    }
  }
}

// One firehose run reduced to comparable facts: flow count, an
// order-sensitive checksum over every emitted field, and a flag that the
// canonical (day, tick, residence) emission order was non-decreasing.
struct FirehoseDigest {
  std::uint64_t flows = 0;
  std::uint64_t fnv = 1469598103934665603ull;
  bool ordered = true;
  std::uint64_t sessions = 0;
};

FirehoseDigest digest_run(const engine::FleetConfig& cfg, int threads) {
  auto catalog = traffic::build_paper_catalog();
  engine::Firehose hose(catalog, threads);
  FirehoseDigest d;
  std::tuple<int, int, std::uint32_t> prev{-1, -1, 0};
  auto mix = [&d](std::uint64_t v) {
    d.fnv = (d.fnv ^ v) * 1099511628211ull;
  };
  auto result = hose.run(cfg, [&](const engine::FlowEvent& ev) {
    ++d.flows;
    std::tuple<int, int, std::uint32_t> cur{ev.day, ev.tick, ev.residence};
    if (cur < prev) d.ordered = false;
    prev = cur;
    mix(ev.residence);
    mix(static_cast<std::uint64_t>(ev.day));
    mix(static_cast<std::uint64_t>(ev.tick));
    mix(static_cast<std::uint64_t>(ev.start));
    mix(static_cast<std::uint64_t>(ev.end));
    mix(ev.bytes_out);
    mix(ev.bytes_in);
    mix(static_cast<std::uint64_t>(ev.scope));
    mix(static_cast<std::uint64_t>(ev.key.src_port) << 16 | ev.key.dst_port);
    if (ev.key.dst.is_v4()) {
      mix(ev.key.dst.v4().value());
    } else {
      mix(ev.key.dst.v6().high64());
      mix(ev.key.dst.v6().low64());
    }
  });
  EXPECT_EQ(result.flows, d.flows);
  d.sessions = result.totals.sessions;
  return d;
}

TEST(Firehose, EmissionIsCanonicalAndLaneInvariant) {
  engine::FleetConfig cfg;
  cfg.residences = 10;
  cfg.days = 4;
  cfg.seed = 9;
  cfg.arrival->mode = ArrivalMode::poisson;
  cfg.arrival->ticks_per_hour = 6;

  const FirehoseDigest base = digest_run(cfg, 1);
  EXPECT_GT(base.flows, 0u);
  EXPECT_TRUE(base.ordered);
  for (int threads : {4, 8}) {
    SCOPED_TRACE(threads);
    const FirehoseDigest other = digest_run(cfg, threads);
    EXPECT_TRUE(other.ordered);
    EXPECT_EQ(other.flows, base.flows);
    EXPECT_EQ(other.fnv, base.fnv);
    EXPECT_EQ(other.sessions, base.sessions);
  }
}

TEST(Firehose, BatchModeStreamsTheSameFleetTotalsAsTheEngine) {
  // The firehose in batch mode replays the exact per-hour generator, so
  // its stats must agree with a FleetEngine run of the same config.
  engine::FleetConfig cfg;
  cfg.residences = 8;
  cfg.days = 5;
  cfg.seed = 31;

  auto catalog = traffic::build_paper_catalog();
  engine::FleetEngine ref(catalog, 2);
  const auto expected = ref.run(cfg);

  const FirehoseDigest d = digest_run(cfg, 2);
  EXPECT_EQ(d.sessions, expected.totals.sessions);
  EXPECT_EQ(d.flows, expected.totals.flows);
}

TEST(Firehose, FlashCrowdConcentratesEmissionInItsHours) {
  // Identical configs, with and without a flash crowd in hours 20-21:
  // the crowd's hour slots must carry several times more arrivals while
  // the rest of the day stays on the base schedule.
  engine::FleetConfig cfg;
  cfg.residences = 12;
  cfg.days = 6;
  cfg.seed = 55;
  cfg.arrival->mode = ArrivalMode::poisson;
  cfg.arrival->ticks_per_hour = 4;

  engine::FleetConfig crowd = cfg;
  {
    auto ev = engine::Timeline::parse_event(
        "flash_crowd", "start=0 end=5 frac=1 hour=20 hours=2 mult=8");
    ASSERT_TRUE(ev.has_value());
    crowd.timeline->events.push_back(*ev);
  }

  auto hour_counts = [](const engine::FleetConfig& c) {
    auto catalog = traffic::build_paper_catalog();
    engine::Firehose hose(catalog, 2);
    std::vector<std::uint64_t> hours(24, 0);
    hose.run(c, [&](const engine::FlowEvent& ev) {
      ++hours[static_cast<size_t>(ev.tick) / 4 % 24];
    });
    return hours;
  };
  const auto base = hour_counts(cfg);
  const auto surged = hour_counts(crowd);
  ASSERT_GT(base[20] + base[21], 0u);
  EXPECT_GT(surged[20] + surged[21], 4 * (base[20] + base[21]));
  // Off-burst hours are shaped only by presence; the crowd must not leak.
  EXPECT_LT(surged[10] + surged[11], 2 * (base[10] + base[11] + 8));
}

}  // namespace
}  // namespace nbv6
