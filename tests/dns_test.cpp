#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "dns/resolver.h"
#include "dns/zone.h"

namespace nbv6::dns {
namespace {

net::IPv4Addr v4(std::uint8_t d) { return net::IPv4Addr(192, 0, 2, d); }
net::IPv6Addr v6(std::uint64_t lo) {
  return net::IPv6Addr::from_halves(0x20010db8ull << 32, lo);
}

TEST(Canonicalize, LowercasesAndStripsDot) {
  EXPECT_EQ(canonicalize("WWW.Example.COM."), "www.example.com");
  EXPECT_EQ(canonicalize("a.b"), "a.b");
  EXPECT_EQ(canonicalize(""), "");
}

TEST(ZoneDb, AddAndReadBack) {
  ZoneDb zone;
  EXPECT_TRUE(zone.add_a("www.example.com", v4(1)));
  EXPECT_TRUE(zone.add_aaaa("www.example.com", v6(1)));
  EXPECT_EQ(zone.a_records("www.example.com").size(), 1u);
  EXPECT_EQ(zone.aaaa_records("WWW.EXAMPLE.COM").size(), 1u);
  EXPECT_TRUE(zone.exists("www.example.com"));
  EXPECT_FALSE(zone.exists("other.example.com"));
}

TEST(ZoneDb, DuplicateAddressesCollapse) {
  ZoneDb zone;
  zone.add_a("x.test", v4(1));
  zone.add_a("x.test", v4(1));
  zone.add_a("x.test", v4(2));
  EXPECT_EQ(zone.a_records("x.test").size(), 2u);
}

TEST(ZoneDb, CnameExclusivity) {
  ZoneDb zone;
  EXPECT_TRUE(zone.add_cname("alias.test", "target.test"));
  // RFC 1034: no other data beside a CNAME.
  EXPECT_FALSE(zone.add_a("alias.test", v4(1)));
  EXPECT_FALSE(zone.add_aaaa("alias.test", v6(1)));
  // And no CNAME on a name with addresses.
  zone.add_a("addr.test", v4(2));
  EXPECT_FALSE(zone.add_cname("addr.test", "elsewhere.test"));
  // Re-adding the same CNAME is fine; a different one is not.
  EXPECT_TRUE(zone.add_cname("alias.test", "target.test"));
  EXPECT_FALSE(zone.add_cname("alias.test", "other.test"));
}

TEST(ZoneDb, RemoveCleansUp) {
  ZoneDb zone;
  zone.add_a("x.test", v4(1));
  EXPECT_EQ(zone.remove("x.test", RecordType::a), 1u);
  EXPECT_FALSE(zone.exists("x.test"));
  EXPECT_EQ(zone.remove("x.test", RecordType::a), 0u);
}

TEST(ZoneDb, RemoveAaaaOnlyDowngrades) {
  ZoneDb zone;
  zone.add_a("dual.test", v4(1));
  zone.add_aaaa("dual.test", v6(1));
  EXPECT_EQ(zone.remove("dual.test", RecordType::aaaa), 1u);
  EXPECT_TRUE(zone.exists("dual.test"));
  EXPECT_TRUE(zone.aaaa_records("dual.test").empty());
  EXPECT_EQ(zone.a_records("dual.test").size(), 1u);
}

TEST(Resolver, DirectAddressLookup) {
  ZoneDb zone;
  zone.add_a("host.test", v4(9));
  zone.add_aaaa("host.test", v6(9));
  Resolver r(zone);
  auto a = r.resolve_a("host.test");
  EXPECT_EQ(a.status, ResolveStatus::ok);
  ASSERT_EQ(a.addresses.size(), 1u);
  EXPECT_TRUE(a.addresses[0].is_v4());
  auto aaaa = r.resolve_aaaa("host.test");
  EXPECT_EQ(aaaa.status, ResolveStatus::ok);
  EXPECT_TRUE(aaaa.addresses[0].is_v6());
}

TEST(Resolver, NxdomainVsNodata) {
  ZoneDb zone;
  zone.add_a("v4only.test", v4(1));
  Resolver r(zone);
  EXPECT_EQ(r.resolve_aaaa("v4only.test").status, ResolveStatus::nodata);
  EXPECT_EQ(r.resolve_a("missing.test").status, ResolveStatus::nxdomain);
}

TEST(Resolver, FollowsCnameChain) {
  ZoneDb zone;
  zone.add_cname("www.site.test", "edge.cdn.test");
  zone.add_cname("edge.cdn.test", "pop.cdn.test");
  zone.add_a("pop.cdn.test", v4(5));
  Resolver r(zone);
  auto res = r.resolve_a("www.site.test");
  EXPECT_EQ(res.status, ResolveStatus::ok);
  ASSERT_EQ(res.chain.size(), 3u);
  EXPECT_EQ(res.chain.front(), "www.site.test");
  EXPECT_EQ(res.terminal(), "pop.cdn.test");
}

TEST(Resolver, CnameToNxdomain) {
  ZoneDb zone;
  zone.add_cname("www.site.test", "gone.test");
  Resolver r(zone);
  EXPECT_EQ(r.resolve_a("www.site.test").status, ResolveStatus::nxdomain);
}

TEST(Resolver, CnameToNodata) {
  ZoneDb zone;
  zone.add_cname("www.site.test", "v4only.test");
  zone.add_a("v4only.test", v4(1));
  Resolver r(zone);
  EXPECT_EQ(r.resolve_aaaa("www.site.test").status, ResolveStatus::nodata);
  EXPECT_EQ(r.resolve_a("www.site.test").status, ResolveStatus::ok);
}

TEST(Resolver, DetectsLoop) {
  ZoneDb zone;
  zone.add_cname("a.test", "b.test");
  zone.add_cname("b.test", "a.test");
  Resolver r(zone);
  EXPECT_EQ(r.resolve_a("a.test").status, ResolveStatus::cname_loop);
}

TEST(Resolver, SelfLoop) {
  ZoneDb zone;
  // A CNAME pointing at itself: add_cname normalizes but permits it
  // (it's a data error the resolver must survive).
  zone.add_cname("self.test", "self.test");
  Resolver r(zone);
  EXPECT_EQ(r.resolve_a("self.test").status, ResolveStatus::cname_loop);
}

TEST(Resolver, DualStackView) {
  ZoneDb zone;
  zone.add_a("dual.test", v4(1));
  zone.add_aaaa("dual.test", v6(1));
  zone.add_a("v4.test", v4(2));
  zone.add_aaaa("v6.test", v6(2));
  Resolver r(zone);

  auto dual = r.resolve_dual("dual.test");
  EXPECT_TRUE(dual.has_v4());
  EXPECT_TRUE(dual.has_v6());
  EXPECT_TRUE(dual.reachable());

  auto v4only = r.resolve_dual("v4.test");
  EXPECT_TRUE(v4only.has_v4());
  EXPECT_FALSE(v4only.has_v6());
  EXPECT_TRUE(v4only.reachable());

  auto v6only = r.resolve_dual("v6.test");
  EXPECT_FALSE(v6only.has_v4());
  EXPECT_TRUE(v6only.has_v6());

  auto missing = r.resolve_dual("nope.test");
  EXPECT_FALSE(missing.reachable());
}

TEST(Resolver, CaseInsensitiveQueries) {
  ZoneDb zone;
  zone.add_a("MiXeD.Test", v4(3));
  Resolver r(zone);
  EXPECT_EQ(r.resolve_a("mixed.test").status, ResolveStatus::ok);
  EXPECT_EQ(r.resolve_a("MIXED.TEST.").status, ResolveStatus::ok);
}

TEST(Canonical, DetectsCanonicalForm) {
  EXPECT_TRUE(is_canonical("www.example.com"));
  EXPECT_TRUE(is_canonical(""));
  EXPECT_TRUE(is_canonical("a-b.c0.net"));
  EXPECT_FALSE(is_canonical("WWW.example.com"));
  EXPECT_FALSE(is_canonical("example.com."));
  EXPECT_FALSE(is_canonical("."));
}

TEST(ZoneDb, HeterogeneousLookupMatchesCanonicalized) {
  // The allocation-free canonical fast path and the canonicalizing slow
  // path must answer identically for every spelling of a name.
  ZoneDb db;
  db.add_a("www.Example.COM.", net::IPv4Addr(192, 0, 2, 1));
  db.add_cname("alias.example.com", "www.example.com");
  for (const char* spelling :
       {"www.example.com", "WWW.EXAMPLE.COM", "www.example.com.",
        "wWw.eXample.Com."}) {
    EXPECT_TRUE(db.exists(spelling)) << spelling;
    ASSERT_EQ(db.a_records(spelling).size(), 1u) << spelling;
    EXPECT_EQ(db.a_records(spelling)[0], net::IPv4Addr(192, 0, 2, 1));
  }
  EXPECT_EQ(db.cname("ALIAS.example.com."), "www.example.com");
  EXPECT_EQ(db.cname_view("alias.example.com"), "www.example.com");
  EXPECT_TRUE(db.cname_view("www.example.com").empty());
  EXPECT_TRUE(db.cname_view("missing.example.com").empty());
}

TEST(Resolver, MixedCaseChainResolvesAndReportsCanonicalChain) {
  ZoneDb db;
  db.add_cname("Shop.Example.com", "edge.CDN.net");
  db.add_a("edge.cdn.net", net::IPv4Addr(203, 0, 113, 9));
  Resolver r(db);
  auto res = r.resolve_a("SHOP.EXAMPLE.COM.");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.chain.size(), 2u);
  EXPECT_EQ(res.chain[0], "shop.example.com");
  EXPECT_EQ(res.chain[1], "edge.cdn.net");
  EXPECT_EQ(res.terminal(), "edge.cdn.net");
}

TEST(ResolveStatusNames, ToString) {
  EXPECT_EQ(to_string(ResolveStatus::ok), "ok");
  EXPECT_EQ(to_string(ResolveStatus::nodata), "nodata");
  EXPECT_EQ(to_string(ResolveStatus::nxdomain), "nxdomain");
  EXPECT_EQ(to_string(ResolveStatus::cname_loop), "cname_loop");
}

// ----------------------------------------------- interned-store checking
// The open-addressing interning store must behave exactly like the
// ordered-map implementation it replaced: same records, same removal
// semantics, same sorted iteration.

TEST(ZoneDbIntern, ForEachNameStaysSortedAcrossMutation) {
  ZoneDb zone;
  for (const char* n : {"mmm.example", "aaa.example", "zzz.example",
                        "kkk.example", "bbb.example"})
    zone.add_a(n, v4(1));
  zone.remove("kkk.example", RecordType::a);
  zone.add_a("ccc.example", v4(2));

  std::vector<std::string> seen;
  zone.for_each_name([&](const std::string& n) { seen.push_back(n); });
  const std::vector<std::string> want{"aaa.example", "bbb.example",
                                      "ccc.example", "mmm.example",
                                      "zzz.example"};
  EXPECT_EQ(seen, want);
}

TEST(ZoneDbIntern, RandomizedDifferentialAgainstOrderedMap) {
  // Reference model: the exact structure the pre-interning ZoneDb used.
  struct Ref {
    std::vector<net::IPv4Addr> a;
    std::string cname;
  };
  std::map<std::string, Ref> ref;
  ZoneDb zone;

  std::mt19937_64 rng(20260808);
  auto rand_name = [&rng] {
    std::string name = "h";
    name += std::to_string(rng() % 64);
    name += ".example";
    return name;
  };
  for (int step = 0; step < 4000; ++step) {
    const std::string name = rand_name();
    switch (rng() % 4) {
      case 0: {  // add A
        const auto addr = v4(static_cast<std::uint8_t>(rng() % 8));
        const bool ok = zone.add_a(name, addr);
        auto& r = ref[name];
        if (!r.cname.empty()) {
          EXPECT_FALSE(ok);
          if (ref[name].a.empty() && ref[name].cname.empty()) ref.erase(name);
        } else {
          EXPECT_TRUE(ok);
          if (std::find(r.a.begin(), r.a.end(), addr) == r.a.end())
            r.a.push_back(addr);
        }
        break;
      }
      case 1: {  // add CNAME
        const std::string target = rand_name();
        const bool ok = zone.add_cname(name, target);
        auto& r = ref[name];
        if (!r.a.empty() || (!r.cname.empty() && r.cname != target)) {
          EXPECT_FALSE(ok) << name;
          if (r.a.empty() && r.cname.empty()) ref.erase(name);
        } else {
          EXPECT_TRUE(ok) << name;
          r.cname = target;
        }
        break;
      }
      case 2: {  // remove A set
        const size_t got = zone.remove(name, RecordType::a);
        auto it = ref.find(name);
        const size_t want = it == ref.end() ? 0 : it->second.a.size();
        EXPECT_EQ(got, want) << name;
        if (it != ref.end()) {
          it->second.a.clear();
          if (it->second.cname.empty()) ref.erase(it);
        }
        break;
      }
      default: {  // remove CNAME
        const size_t got = zone.remove(name, RecordType::cname);
        auto it = ref.find(name);
        const size_t want =
            it == ref.end() || it->second.cname.empty() ? 0 : 1;
        EXPECT_EQ(got, want) << name;
        if (it != ref.end()) {
          it->second.cname.clear();
          if (it->second.a.empty()) ref.erase(it);
        }
        break;
      }
    }
  }

  // Full-state comparison at the end of the walk.
  ASSERT_EQ(zone.name_count(), ref.size());
  std::vector<std::string> names;
  zone.for_each_name([&](const std::string& n) { names.push_back(n); });
  ASSERT_EQ(names.size(), ref.size());
  size_t i = 0;
  for (const auto& [name, r] : ref) {
    EXPECT_EQ(names[i++], name);  // sorted order == map order
    EXPECT_EQ(zone.a_records(name), r.a) << name;
    EXPECT_EQ(zone.cname(name), r.cname) << name;
    EXPECT_TRUE(zone.exists(name));
  }
}

TEST(ZoneDbIntern, LookupSurvivesTableGrowth) {
  ZoneDb zone;
  // Push far past several grow_slots() rebuilds.
  for (int i = 0; i < 5000; ++i)
    zone.add_a("host" + std::to_string(i) + ".example", v4(1));
  EXPECT_EQ(zone.name_count(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const std::string name = "host" + std::to_string(i) + ".example";
    EXPECT_TRUE(zone.exists(name)) << name;
    EXPECT_EQ(zone.a_records(name).size(), 1u) << name;
  }
  EXPECT_FALSE(zone.exists("host5000.example"));
}

}  // namespace
}  // namespace nbv6::dns
