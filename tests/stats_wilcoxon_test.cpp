#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "stats/wilcoxon.h"

namespace nbv6::stats {
namespace {

TEST(Midranks, SimpleDistinct) {
  std::vector<double> v{3.0, -1.0, 2.0};
  auto r = midranks(v);  // |v| = 3,1,2 -> ranks 3,1,2
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Midranks, TiesShareAverage) {
  std::vector<double> v{1.0, -1.0, 2.0, 2.0};
  auto r = midranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.5);
  EXPECT_DOUBLE_EQ(r[1], 1.5);
  EXPECT_DOUBLE_EQ(r[2], 3.5);
  EXPECT_DOUBLE_EQ(r[3], 3.5);
}

TEST(Wilcoxon, AllPositiveExactP) {
  // diffs 1..5: W+ = 15 (max); exact two-sided p = 2/2^5 = 0.0625 (scipy
  // agrees).
  std::vector<double> d{1, 2, 3, 4, 5};
  auto r = wilcoxon_signed_rank(d);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->n, 5u);
  EXPECT_DOUBLE_EQ(r->w_plus, 15.0);
  EXPECT_NEAR(r->p_value, 0.0625, 1e-12);
  EXPECT_GT(r->effect_size_r, 0.8);
}

TEST(Wilcoxon, OneNegativeExactP) {
  // |-1| has rank 1; W+ = 14; p = 2 * P(W <= 1) = 4/32 = 0.125.
  std::vector<double> d{-1, 2, 3, 4, 5};
  auto r = wilcoxon_signed_rank(d);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->w_plus, 14.0);
  EXPECT_NEAR(r->p_value, 0.125, 1e-12);
}

TEST(Wilcoxon, SymmetryOfSign) {
  std::vector<double> d{1, 2, 3, 4, 5};
  std::vector<double> neg{-1, -2, -3, -4, -5};
  auto rp = wilcoxon_signed_rank(d);
  auto rn = wilcoxon_signed_rank(neg);
  ASSERT_TRUE(rp && rn);
  EXPECT_NEAR(rp->p_value, rn->p_value, 1e-12);
  EXPECT_NEAR(rp->effect_size_r, -rn->effect_size_r, 1e-12);
}

TEST(Wilcoxon, ZerosDiscarded) {
  std::vector<double> d{0, 0, 1, 2, 3, 4, 5, 0};
  auto r = wilcoxon_signed_rank(d);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->n, 5u);
  EXPECT_DOUBLE_EQ(r->w_plus, 15.0);
}

TEST(Wilcoxon, AllZerosUntestable) {
  std::vector<double> d{0, 0, 0};
  EXPECT_FALSE(wilcoxon_signed_rank(d).has_value());
}

TEST(Wilcoxon, BalancedDiffsNearNull) {
  std::vector<double> d{1, -1.5, 2, -2.5, 3, -3.5, 4, -4.5};
  auto r = wilcoxon_signed_rank(d);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->p_value, 0.3);
  EXPECT_NEAR(r->effect_size_r, 0.0, 0.35);
}

TEST(Wilcoxon, PairedOverload) {
  std::vector<double> xs{5, 6, 7, 8, 9};
  std::vector<double> ys{1, 2, 3, 4, 5};
  auto r = wilcoxon_signed_rank(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->effect_size_r, 0.0);
  // All diffs are +4 (fully tied), so the tie-corrected normal
  // approximation applies: z = (15 - 7.5 - 0.5) / sqrt(11.25) ~ 2.087.
  EXPECT_NEAR(r->z, 2.087, 0.01);
  EXPECT_LT(r->p_value, 0.05);
}

TEST(Wilcoxon, LargeSampleNormalApprox) {
  // 40 positive diffs of distinct magnitudes: overwhelming evidence.
  std::vector<double> d;
  for (int i = 1; i <= 40; ++i) d.push_back(i);
  auto r = wilcoxon_signed_rank(d);
  ASSERT_TRUE(r.has_value());
  EXPECT_LT(r->p_value, 1e-6);
  EXPECT_GT(r->z, 4.0);
  EXPECT_NEAR(r->effect_size_r, r->z / std::sqrt(40.0), 1e-12);
}

TEST(Wilcoxon, TiesUseNormalApprox) {
  // Ties in |d| force the tie-corrected path even for small n.
  std::vector<double> d{1, 1, 1, 1, 1, 1, -1, -1};
  auto r = wilcoxon_signed_rank(d);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->p_value, 0.05);
  EXPECT_LE(r->p_value, 1.0);
}

TEST(Wilcoxon, EffectSizeClamped) {
  std::vector<double> d{1, 2, 3};
  auto r = wilcoxon_signed_rank(d);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(r->effect_size_r, -1.0);
  EXPECT_LE(r->effect_size_r, 1.0);
}

// Exact-vs-approximate consistency: for moderate n the two p-values should
// agree to within a few percent.
TEST(Wilcoxon, ExactMatchesApproximationAtBoundary) {
  std::vector<double> d;
  for (int i = 1; i <= 25; ++i) d.push_back(i % 3 == 0 ? -i : i);
  auto exact = wilcoxon_signed_rank(d);  // n = 25, no ties -> exact
  ASSERT_TRUE(exact.has_value());
  // Recompute z-based two-sided p.
  double approx_p = 2.0 * (1.0 - normal_cdf(std::abs(exact->z)));
  EXPECT_NEAR(exact->p_value, approx_p, 0.05);
}

// ------------------------------------------------------------ Holm

TEST(Holm, SingleHypothesis) {
  std::vector<double> p{0.03};
  auto r = holm_bonferroni(p, 0.05);
  EXPECT_TRUE(r.reject[0]);
  EXPECT_DOUBLE_EQ(r.adjusted_p[0], 0.03);
}

TEST(Holm, StepDownExample) {
  std::vector<double> p{0.01, 0.04, 0.03, 0.005};
  auto r = holm_bonferroni(p, 0.05);
  EXPECT_TRUE(r.reject[3]);   // 0.005 * 4 = 0.02
  EXPECT_TRUE(r.reject[0]);   // 0.01 * 3 = 0.03
  EXPECT_FALSE(r.reject[2]);  // 0.03 * 2 = 0.06 > 0.05 -> stop
  EXPECT_FALSE(r.reject[1]);  // stopped
  EXPECT_NEAR(r.adjusted_p[3], 0.02, 1e-12);
  EXPECT_NEAR(r.adjusted_p[0], 0.03, 1e-12);
  EXPECT_NEAR(r.adjusted_p[2], 0.06, 1e-12);
  // Monotonicity: later adjusted p never dips below an earlier one.
  EXPECT_GE(r.adjusted_p[1], r.adjusted_p[2]);
}

TEST(Holm, NothingSignificant) {
  std::vector<double> p{0.5, 0.9, 0.7};
  auto r = holm_bonferroni(p, 0.05);
  for (bool b : r.reject) EXPECT_FALSE(b);
}

TEST(Holm, EverythingTiny) {
  std::vector<double> p{1e-8, 1e-9, 1e-7};
  auto r = holm_bonferroni(p, 0.05);
  for (bool b : r.reject) EXPECT_TRUE(b);
}

TEST(Holm, AdjustedPCappedAtOne) {
  std::vector<double> p{0.9, 0.95};
  auto r = holm_bonferroni(p, 0.05);
  for (double q : r.adjusted_p) EXPECT_LE(q, 1.0);
}

TEST(Holm, EmptyInput) {
  auto r = holm_bonferroni({}, 0.05);
  EXPECT_TRUE(r.reject.empty());
  EXPECT_TRUE(r.adjusted_p.empty());
}

TEST(Holm, MoreConservativeThanUnadjusted) {
  std::vector<double> p{0.02, 0.04, 0.045};
  auto r = holm_bonferroni(p, 0.05);
  for (size_t i = 0; i < p.size(); ++i) EXPECT_GE(r.adjusted_p[i], p[i]);
}

// ------------------------------------------------ degenerate inputs
// The fleet layer feeds raw metric columns into these tests; every
// degenerate shape must come back as a defined no-result or a defined
// no-evidence result — never NaN statistics, never UB.

TEST(WilcoxonDegenerate, MismatchedLengthsNoResult) {
  std::vector<double> xs{1.0, 2.0, 3.0}, ys{1.0, 2.0};
  EXPECT_FALSE(wilcoxon_signed_rank(xs, ys).has_value());
}

TEST(WilcoxonDegenerate, NanDifferencesDropped) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaN pairs vanish; the rest behave exactly like the clean sample.
  std::vector<double> xs{nan, 5.0, 6.0, 7.0, nan};
  std::vector<double> ys{1.0, 1.0, 2.0, 3.0, 2.0};
  auto with_nan = wilcoxon_signed_rank(xs, ys);
  std::vector<double> cx{5.0, 6.0, 7.0}, cy{1.0, 2.0, 3.0};
  auto clean = wilcoxon_signed_rank(cx, cy);
  ASSERT_TRUE(with_nan.has_value());
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(with_nan->n, clean->n);
  EXPECT_DOUBLE_EQ(with_nan->w_plus, clean->w_plus);
  EXPECT_DOUBLE_EQ(with_nan->p_value, clean->p_value);
  EXPECT_FALSE(std::isnan(with_nan->z));
}

TEST(WilcoxonDegenerate, AllNanNoResult) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> d{nan, nan, nan};
  EXPECT_FALSE(wilcoxon_signed_rank(d).has_value());
}

TEST(WilcoxonDegenerate, SinglePairDefined) {
  std::vector<double> xs{2.0}, ys{1.0};
  auto r = wilcoxon_signed_rank(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->n, 1u);
  // One positive difference: W+ = 1, exact two-sided p = 1 (both tails).
  EXPECT_DOUBLE_EQ(r->w_plus, 1.0);
  EXPECT_DOUBLE_EQ(r->p_value, 1.0);
  EXPECT_FALSE(std::isnan(r->effect_size_r));
}

TEST(HolmDegenerate, NanPValuesNeverRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> p{0.001, nan, 0.01, nan};
  auto r = holm_bonferroni(p, 0.05);
  EXPECT_TRUE(r.reject[0]);
  EXPECT_FALSE(r.reject[1]);
  EXPECT_TRUE(r.reject[2]);
  EXPECT_FALSE(r.reject[3]);
  // NaNs adjust as 1.0 and nothing in the output is NaN.
  for (double adj : r.adjusted_p) EXPECT_FALSE(std::isnan(adj));
  EXPECT_DOUBLE_EQ(r.adjusted_p[1], 1.0);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_cdf(5.0), 1.0, 1e-6);
}

}  // namespace
}  // namespace nbv6::stats
