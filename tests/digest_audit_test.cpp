// Digest-coverage auditor: every config field a scenario pass reads must
// be covered by that pass's digest slice, or the content-addressed
// PassCache can serve stale hits when the uncovered field changes — the
// PR 8/9 bug class. The audit records per-field FleetConfig reads (see
// engine/config_tracking.h) separately for each pass's digest computation
// and its body, then checks run_reads ⊆ digest_reads ∪ {threads} for
// every committed scenario. A negative test seeds a deliberately broken
// population digest and proves the auditor catches it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scenario_pipeline.h"
#include "engine/config_tracking.h"
#include "engine/fleet.h"
#include "engine/pipeline.h"
#include "testutil.h"
#include "traffic/service_catalog.h"

namespace {

using namespace nbv6;
using engine::ConfigField;
using engine::ConfigReadSet;
using engine::ConfigReadTracker;
using engine::FleetConfig;

std::size_t bit(ConfigField f) { return static_cast<std::size_t>(f); }

// --------------------------------------------------- tracking primitives

TEST(ConfigTracking, OffByDefault) {
  FleetConfig cfg;
  // No scope active: reads must not crash and must record nowhere.
  EXPECT_GE(cfg.days, 1);
  ConfigReadTracker::Scope scope;
  EXPECT_TRUE(scope.reads().none());
}

TEST(ConfigTracking, RecordsScalarStructAndWholeValueReads) {
  FleetConfig cfg;
  ConfigReadTracker::Scope scope;
  const int d = cfg.days;
  (void)d;
  (void)cfg.timeline->events.size();      // struct member via operator->
  const engine::Timeline& t = cfg.timeline;  // whole-value conversion
  (void)t;
  EXPECT_TRUE(scope.reads().test(bit(ConfigField::days)));
  EXPECT_TRUE(scope.reads().test(bit(ConfigField::timeline)));
  EXPECT_FALSE(scope.reads().test(bit(ConfigField::seed)));
}

TEST(ConfigTracking, CopyAndWriteDoNotRecord) {
  FleetConfig cfg;
  ConfigReadTracker::Scope scope;
  FleetConfig copy = cfg;  // by-value capture of a config is not a read
  copy.days = 3;
  copy.seed.mut() += 1;
  copy.timeline->events.clear();
  EXPECT_TRUE(scope.reads().none());
}

TEST(ConfigTracking, ScopesNestAndRestore) {
  FleetConfig cfg;
  ConfigReadTracker::Scope outer;
  {
    ConfigReadTracker::Scope inner;
    (void)static_cast<int>(cfg.days);
    EXPECT_TRUE(inner.reads().test(bit(ConfigField::days)));
  }
  // The inner scope's reads stay its own; the outer scope is active again.
  EXPECT_TRUE(outer.reads().none());
  (void)static_cast<std::uint64_t>(cfg.seed);
  EXPECT_TRUE(outer.reads().test(bit(ConfigField::seed)));
}

// ------------------------------------------------------------- the audit

// The audit simulates the full scenario; a small fleet keeps the sweep
// over every committed scenario cheap without changing which fields the
// passes read (field reads depend on code paths, not population size —
// the one day-count-dependent path, absence sampling, keys off `days`,
// which scenarios control).
FleetConfig shrunk(FleetConfig cfg) {
  if (cfg.residences > 8) cfg.residences = 8;
  return cfg;
}

TEST(DigestAudit, EveryCommittedScenarioIsCovered) {
  const auto catalog = traffic::build_paper_catalog();
  const auto files = testutil::scenario_files();
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    std::string err;
    auto cfg = FleetConfig::load(path, &err);
    ASSERT_TRUE(cfg.has_value()) << path << ": " << err;
    const auto audits = core::audit_scenario_passes(shrunk(*cfg), catalog);
    ASSERT_EQ(audits.size(), 6u) << path;
    for (const auto& a : audits) {
      const ConfigReadSet uncovered = core::uncovered_config_reads(a);
      EXPECT_TRUE(uncovered.none())
          << path << ": pass '" << a.pass << "' reads {"
          << core::describe_read_set(a.run_reads)
          << "} but its digest slice only covers {"
          << core::describe_read_set(a.digest_reads) << "}; uncovered: {"
          << core::describe_read_set(uncovered) << "}";
    }
  }
}

TEST(DigestAudit, SamplePassActuallyReadsThePopulationSlice) {
  // Guard against a vacuous auditor: if tracking broke (recording nothing),
  // EveryCommittedScenarioIsCovered would pass trivially. The default
  // config must show sample reading its core fields.
  const auto catalog = traffic::build_paper_catalog();
  const auto audits = core::audit_scenario_passes(shrunk(FleetConfig{}), catalog);
  const auto& sample = audits.front();
  ASSERT_EQ(sample.pass, "sample");
  for (ConfigField f :
       {ConfigField::residences, ConfigField::seed, ConfigField::arrival,
        ConfigField::dual_stack_isp_frac, ConfigField::broken_v6_frac}) {
    EXPECT_TRUE(sample.run_reads.test(bit(f)))
        << "sample did not read " << std::string(to_string(f));
    EXPECT_TRUE(sample.digest_reads.test(bit(f)))
        << "population digest missed " << std::string(to_string(f));
  }
}

TEST(DigestAudit, CatchesAnOmittedDigestField) {
  // Seed the PR 8/9 bug on purpose: a population digest that forgets
  // broken_v6_frac. Two configs differing only there would collide in the
  // cache; the auditor must flag the omission.
  const auto catalog = traffic::build_paper_catalog();
  core::ScenarioAuditHooks hooks;
  hooks.population_digest = [](const FleetConfig& cfg,
                               const traffic::ServiceCatalog& cat) {
    return engine::DigestBuilder()
        .str("population")
        .i64(cfg.residences)
        .i64(cfg.days)
        .u64(cfg.seed)
        .f64(cfg.dual_stack_isp_frac)
        // broken_v6_frac deliberately omitted
        .f64(cfg.heavy_streamer_frac)
        .f64(cfg.background_only_frac)
        .f64(cfg.opt_out_frac)
        .f64(cfg.absence_prob)
        .f64(cfg.activity_scale_min)
        .f64(cfg.activity_scale_max)
        .u64(static_cast<std::uint64_t>(cfg.arrival->mode))
        .i64(cfg.arrival->ticks_per_hour)
        .u64(cat.content_digest())
        .value();
  };
  const auto audits =
      core::audit_scenario_passes(shrunk(FleetConfig{}), catalog, {}, hooks);
  const auto& sample = audits.front();
  ASSERT_EQ(sample.pass, "sample");
  const ConfigReadSet uncovered = core::uncovered_config_reads(sample);
  EXPECT_TRUE(uncovered.test(bit(ConfigField::broken_v6_frac)))
      << "auditor failed to flag the seeded omission; uncovered: {"
      << core::describe_read_set(uncovered) << "}";
  // And only that field: the rest of the slice is intact.
  ConfigReadSet expected;
  expected.set(bit(ConfigField::broken_v6_frac));
  EXPECT_EQ(uncovered, expected)
      << "unexpected extra uncovered fields: {"
      << core::describe_read_set(uncovered) << "}";
}

}  // namespace
