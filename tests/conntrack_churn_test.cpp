// Deletion-heavy churn: randomized differential test of the flat
// open-addressing conntrack against the std::unordered_map reference
// implementation (flowmon::ConntrackTable).
//
// The existing conntrack suites cover steady-state behaviour; this one
// targets exactly the machinery that only misbehaves under churn:
//   - backward-shift deletion (erase bursts punch holes mid-probe-chain),
//   - hot-slot memo invalidation (close the memoized key, then touch it
//     again; rehash and shifts making the memo stale), and
//   - grow/rehash interleaved with live traffic.
// Every operation is applied to both tables; live counts, sweep eviction
// counts, return codes, event counts, and the full multiset of DESTROY
// records must agree at every checkpoint.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "engine/flat_conntrack.h"
#include "flowmon/conntrack.h"
#include "flowmon/flow_record.h"
#include "stats/rng.h"

namespace nbv6::engine {
namespace {

using flowmon::FlowRecord;
using flowmon::Scope;
using flowmon::Timestamp;

net::FlowKey make_key(std::uint32_t id, bool v6) {
  net::FlowKey k;
  k.protocol = (id % 3 == 0) ? net::Protocol::udp : net::Protocol::tcp;
  if (v6) {
    k.src = net::IPv6Addr::from_halves(0x2600'8800'0000'0001ull, 0x10 + (id % 7));
    k.dst = net::IPv6Addr::from_halves(0x2001'0db8'0000'0000ull, id);
  } else {
    k.src = net::IPv4Addr(192, 168, 1, static_cast<std::uint8_t>(10 + id % 40));
    k.dst = net::IPv4Addr(static_cast<std::uint32_t>(0x08080000u + id));
  }
  k.src_port = static_cast<std::uint16_t>(20000 + id % 9999);
  k.dst_port = 443;
  return k;
}

/// Collects DESTROY records; NEW events just counted.
struct Sink {
  std::vector<FlowRecord> destroyed;
  std::uint64_t news = 0;

  flowmon::ConntrackListener listener() {
    return {[this](const net::FlowKey&, Timestamp) { ++news; },
            [this](const FlowRecord& r) { destroyed.push_back(r); }};
  }
};

bool record_less(const FlowRecord& a, const FlowRecord& b) {
  if (auto c = a.key <=> b.key; c != 0) return c < 0;
  if (a.start != b.start) return a.start < b.start;
  if (a.end != b.end) return a.end < b.end;
  return a.bytes_out + a.bytes_in < b.bytes_out + b.bytes_in;
}

void expect_same_records(std::vector<FlowRecord> a, std::vector<FlowRecord> b,
                         const char* where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  std::sort(a.begin(), a.end(), record_less);
  std::sort(b.begin(), b.end(), record_less);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << where << " record " << i;
    EXPECT_EQ(a[i].start, b[i].start) << where << " record " << i;
    EXPECT_EQ(a[i].end, b[i].end) << where << " record " << i;
    EXPECT_EQ(a[i].bytes_out, b[i].bytes_out) << where << " record " << i;
    EXPECT_EQ(a[i].bytes_in, b[i].bytes_in) << where << " record " << i;
    EXPECT_EQ(a[i].packets_out, b[i].packets_out) << where << " record " << i;
    EXPECT_EQ(a[i].packets_in, b[i].packets_in) << where << " record " << i;
    EXPECT_EQ(a[i].scope, b[i].scope) << where << " record " << i;
  }
}

TEST(FlatConntrackChurn, RandomizedDifferentialWithEraseBursts) {
  // Tiny initial capacity so the op stream forces several grows.
  FlatConntrack flat(/*idle_timeout=*/120, /*initial_capacity=*/4);
  flowmon::ConntrackTable ref(/*idle_timeout=*/120);
  Sink flat_sink, ref_sink;
  flat.subscribe(flat_sink.listener());
  ref.subscribe(ref_sink.listener());

  stats::Rng rng(0xC0FFEE);
  std::vector<net::FlowKey> live;  // keys we believe are open
  Timestamp now = 0;

  auto apply_open = [&](const net::FlowKey& k) {
    Scope scope = rng.chance(0.8) ? Scope::external : Scope::internal;
    flat.open(k, now, scope);
    ref.open(k, now, scope);
  };
  auto apply_account = [&](const net::FlowKey& k) {
    std::uint64_t out_b = rng.below(100000);
    std::uint64_t in_b = rng.below(2000000);
    bool fa = flat.account(k, now, out_b, in_b, 1, 2);
    bool fb = ref.account(k, now, out_b, in_b, 1, 2);
    EXPECT_EQ(fa, fb);
  };
  auto apply_close = [&](const net::FlowKey& k) {
    bool fa = flat.close(k, now);
    bool fb = ref.close(k, now);
    EXPECT_EQ(fa, fb);
  };

  std::uint32_t next_id = 0;
  for (int phase = 0; phase < 40; ++phase) {
    // Insert-heavy burst: open a few dozen flows, account on them (and on
    // the most recent key repeatedly: hot-memo hits).
    int inserts = 10 + static_cast<int>(rng.below(40));
    for (int i = 0; i < inserts; ++i) {
      net::FlowKey k = make_key(next_id++, rng.chance(0.4));
      apply_open(k);
      live.push_back(k);
      apply_account(k);
      if (rng.chance(0.5)) apply_account(k);  // consecutive hot-slot hits
      now += static_cast<Timestamp>(rng.below(5));
    }
    ASSERT_EQ(flat.live_count(), ref.live_count()) << "after inserts";

    // Hot-slot memo attack: touch one key, close it, then account it again
    // (stale memo must fall back to the probe and implicitly re-open).
    if (!live.empty()) {
      size_t pick = static_cast<size_t>(rng.below(live.size()));
      net::FlowKey k = live[pick];
      apply_account(k);
      apply_close(k);
      apply_account(k);  // re-opens: memo points at an erased slot
      apply_close(k);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    // Erase burst: close a random half (or nearly all, sometimes) of the
    // live flows in random order — this is what exercises backward-shift
    // deletion across probe chains.
    double kill_frac = rng.chance(0.25) ? 0.9 : 0.5;
    size_t targets = static_cast<size_t>(
        static_cast<double>(live.size()) * kill_frac);
    for (size_t i = 0; i < targets && !live.empty(); ++i) {
      size_t pick = static_cast<size_t>(rng.below(live.size()));
      apply_close(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(flat.live_count(), ref.live_count()) << "after erase burst";

    // Double-close and close-of-unknown: both must report false on both.
    net::FlowKey ghost = make_key(0xFFFF0000u + static_cast<std::uint32_t>(phase), false);
    EXPECT_EQ(flat.close(ghost, now), ref.close(ghost, now));

    // Occasional idle sweep; eviction counts must match, and our live list
    // must drop everything idle past the timeout.
    if (phase % 5 == 4) {
      now += 121;  // everything currently live is idle past the timeout
      size_t ea = flat.sweep(now);
      size_t eb = ref.sweep(now);
      EXPECT_EQ(ea, eb) << "sweep at phase " << phase;
      live.clear();
      ASSERT_EQ(flat.live_count(), 0u);
      ASSERT_EQ(ref.live_count(), 0u);
    }
    now += static_cast<Timestamp>(rng.below(30));
  }

  flat.flush(now);
  ref.flush(now);
  EXPECT_EQ(flat.live_count(), 0u);
  EXPECT_EQ(ref.live_count(), 0u);

  EXPECT_EQ(flat_sink.news, ref_sink.news);
  expect_same_records(flat_sink.destroyed, ref_sink.destroyed, "final");
}

TEST(FlatConntrackChurn, BackwardShiftKeepsChainsFindable) {
  // Deterministic small-table scenario: fill one table tight, erase from
  // the middle of probe chains, and verify every surviving key is still
  // findable (account must NOT implicitly re-open it).
  FlatConntrack flat(600, 4);
  std::vector<net::FlowKey> keys;
  for (std::uint32_t i = 0; i < 64; ++i) keys.push_back(make_key(i, i % 2));
  for (const auto& k : keys) flat.open(k, 1, Scope::external);
  ASSERT_EQ(flat.live_count(), 64u);

  // Erase every third key, then every key accounted must be a hit.
  for (size_t i = 0; i < keys.size(); i += 3) flat.close(keys[i], 2);
  for (size_t i = 0; i < keys.size(); ++i) {
    bool known = flat.account(keys[i], 3, 10, 10);
    if (i % 3 == 0) {
      EXPECT_FALSE(known) << i << " was closed, account should re-open";
    } else {
      EXPECT_TRUE(known) << i << " should have survived the erase burst";
    }
  }
}

}  // namespace
}  // namespace nbv6::engine
