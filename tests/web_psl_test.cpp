#include <gtest/gtest.h>

#include "web/psl.h"

namespace nbv6::web {
namespace {

TEST(SplitLabels, Basic) {
  auto l = split_labels("a.b.c");
  ASSERT_EQ(l.size(), 3u);
  EXPECT_EQ(l[0], "a");
  EXPECT_EQ(l[2], "c");
  EXPECT_EQ(split_labels("single").size(), 1u);
}

TEST(Psl, SimpleTld) {
  auto psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.public_suffix("example.com"), "com");
  EXPECT_EQ(psl.public_suffix("www.example.com"), "com");
}

TEST(Psl, TwoLevelSuffix) {
  auto psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.public_suffix("example.co.uk"), "co.uk");
  EXPECT_EQ(psl.public_suffix("deep.sub.example.co.uk"), "co.uk");
}

TEST(Psl, RegistrableDomain) {
  auto psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.registrable_domain("www.example.com").value(), "example.com");
  EXPECT_EQ(psl.registrable_domain("a.b.example.co.uk").value(),
            "example.co.uk");
  EXPECT_EQ(psl.registrable_domain("example.com").value(), "example.com");
}

TEST(Psl, SuffixItselfHasNoRegistrableDomain) {
  auto psl = PublicSuffixList::builtin();
  EXPECT_FALSE(psl.registrable_domain("com").has_value());
  EXPECT_FALSE(psl.registrable_domain("co.uk").has_value());
}

TEST(Psl, WildcardRule) {
  auto psl = PublicSuffixList::builtin();
  // *.ck: any single label under ck is itself a public suffix.
  EXPECT_EQ(psl.public_suffix("foo.ck"), "foo.ck");
  EXPECT_FALSE(psl.registrable_domain("foo.ck").has_value());
  EXPECT_EQ(psl.registrable_domain("site.foo.ck").value(), "site.foo.ck");
}

TEST(Psl, ExceptionRule) {
  auto psl = PublicSuffixList::builtin();
  // !www.ck: www.ck is NOT a public suffix despite *.ck.
  EXPECT_EQ(psl.public_suffix("www.ck"), "ck");
  EXPECT_EQ(psl.registrable_domain("www.ck").value(), "www.ck");
  EXPECT_EQ(psl.registrable_domain("a.www.ck").value(), "www.ck");
}

TEST(Psl, PrivateRegistrySuffixes) {
  auto psl = PublicSuffixList::builtin();
  // github.io style: each user site is its own registrable domain.
  EXPECT_EQ(psl.registrable_domain("alice.github.io").value(),
            "alice.github.io");
  EXPECT_EQ(psl.registrable_domain("x.alice.github.io").value(),
            "alice.github.io");
  EXPECT_EQ(psl.registrable_domain("tenant.cloudfront.net").value(),
            "tenant.cloudfront.net");
}

TEST(Psl, UnlistedTldUsesImplicitStar) {
  auto psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.public_suffix("example.zz"), "zz");
  EXPECT_EQ(psl.registrable_domain("www.example.zz").value(), "example.zz");
}

TEST(Psl, SameSite) {
  auto psl = PublicSuffixList::builtin();
  EXPECT_TRUE(psl.same_site("www.example.com", "static.example.com"));
  EXPECT_TRUE(psl.same_site("example.com", "example.com"));
  EXPECT_FALSE(psl.same_site("example.com", "example.org"));
  EXPECT_FALSE(psl.same_site("a.example.co.uk", "a.other.co.uk"));
  // A public suffix has no site identity at all.
  EXPECT_FALSE(psl.same_site("com", "example.com"));
}

TEST(Psl, EmptyListUsesImplicitStarOnly) {
  PublicSuffixList psl;
  EXPECT_EQ(psl.public_suffix("a.b.c"), "c");
  EXPECT_EQ(psl.registrable_domain("a.b.c").value(), "b.c");
}

TEST(Psl, AddCustomRule) {
  PublicSuffixList psl;
  psl.add_rule("custom.suffix");
  EXPECT_EQ(psl.public_suffix("x.custom.suffix"), "custom.suffix");
  EXPECT_EQ(psl.registrable_domain("a.x.custom.suffix").value(),
            "x.custom.suffix");
}

class PslSweep
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(PslSweep, RegistrableDomainMatches) {
  auto psl = PublicSuffixList::builtin();
  auto [host, expected] = GetParam();
  auto got = psl.registrable_domain(host);
  ASSERT_TRUE(got.has_value()) << host;
  EXPECT_EQ(*got, expected) << host;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PslSweep,
    ::testing::Values(
        std::pair{"www.google.com", "google.com"},
        std::pair{"s3.eu.amazonaws.com", "eu.amazonaws.com"},
        std::pair{"a.b.c.d.example.org", "example.org"},
        std::pair{"shop.example.com.au", "example.com.au"},
        std::pair{"media.example.de", "example.de"},
        std::pair{"x.y.site42.io", "site42.io"},
        std::pair{"cdn.assets.example.net", "example.net"},
        std::pair{"app.example.co.jp", "example.co.jp"}));

}  // namespace
}  // namespace nbv6::web
