#include <gtest/gtest.h>

#include <sstream>

#include "flowmon/export.h"
#include "net/asn.h"

namespace nbv6::flowmon {
namespace {

net::CryptoPan::Secret secret() {
  net::CryptoPan::Secret s{};
  for (size_t i = 0; i < s.size(); ++i) s[i] = static_cast<std::uint8_t>(i * 3);
  return s;
}

FlowRecord sample_record(bool v6 = false, Timestamp start = 100) {
  FlowRecord r;
  r.key.protocol = net::Protocol::tcp;
  if (v6) {
    r.key.src = *net::IPv6Addr::parse("2600:8800:1::10");
    r.key.dst = *net::IPv6Addr::parse("2600:1::77");
  } else {
    r.key.src = net::IPv4Addr(192, 168, 1, 10);
    r.key.dst = net::IPv4Addr(20, 3, 4, 5);
  }
  r.key.src_port = 43210;
  r.key.dst_port = 443;
  r.start = start;
  r.end = start + 25;
  r.bytes_out = 1234;
  r.bytes_in = 567890;
  r.packets_out = 10;
  r.packets_in = 400;
  r.scope = Scope::external;
  return r;
}

TEST(ExportAnonymize, BatchMatchesPerRecord) {
  net::CryptoPan cpan(secret());
  std::vector<FlowRecord> records;
  for (int i = 0; i < 40; ++i) {
    auto r = sample_record(i % 2 == 1, 100 + i);
    r.key.src_port = static_cast<std::uint16_t>(40000 + i);
    records.push_back(r);
  }
  auto batch = anonymize_batch(records, cpan);
  ASSERT_EQ(batch.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    auto one = anonymize(records[i], cpan);
    EXPECT_EQ(batch[i].key.src, one.key.src);
    EXPECT_EQ(batch[i].key.dst, one.key.dst);
    EXPECT_EQ(batch[i].key.src_port, one.key.src_port);
    EXPECT_EQ(batch[i].bytes_out, one.bytes_out);
  }
}

TEST(ExportSerialize, RoundTripsV4) {
  auto r = sample_record(false);
  auto line = serialize(r);
  auto back = deserialize(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->key, r.key);
  EXPECT_EQ(back->start, r.start);
  EXPECT_EQ(back->end, r.end);
  EXPECT_EQ(back->bytes_out, r.bytes_out);
  EXPECT_EQ(back->bytes_in, r.bytes_in);
  EXPECT_EQ(back->packets_out, r.packets_out);
  EXPECT_EQ(back->packets_in, r.packets_in);
  EXPECT_EQ(back->scope, r.scope);
}

TEST(ExportSerialize, RoundTripsV6) {
  auto r = sample_record(true);
  r.scope = Scope::internal;
  auto back = deserialize(serialize(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->key, r.key);
  EXPECT_EQ(back->scope, Scope::internal);
}

TEST(ExportSerialize, RejectsMalformedLines) {
  EXPECT_FALSE(deserialize(""));
  EXPECT_FALSE(deserialize("tcp\t1.2.3.4"));                     // too few
  EXPECT_FALSE(deserialize(serialize(sample_record()) + "\textra"));
  auto good = serialize(sample_record());
  // Corrupt the protocol and an address.
  auto bad1 = good;
  bad1.replace(0, 3, "xxx");
  EXPECT_FALSE(deserialize(bad1));
  auto bad2 = good;
  bad2.replace(bad2.find("192.168.1.10"), 12, "not-an-addr!");
  EXPECT_FALSE(deserialize(bad2));
}

TEST(ExportSerialize, RejectsMixedFamilies) {
  // Hand-forge a v4 source with a v6 destination.
  std::string line =
      "tcp\t192.168.1.10\t1\t2600::1\t443\t0\t1\t1\t1\t1\t1\texternal";
  EXPECT_FALSE(deserialize(line));
}

TEST(ExportAnonymize, PaperPolicyAppliedToBothEndpoints) {
  net::CryptoPan cpan(secret());
  auto r = sample_record(false);
  auto anon = anonymize(r, cpan);
  // Top 24 bits survive, counters untouched.
  EXPECT_EQ(anon.key.src.v4().value() >> 8, r.key.src.v4().value() >> 8);
  EXPECT_EQ(anon.key.dst.v4().value() >> 8, r.key.dst.v4().value() >> 8);
  EXPECT_EQ(anon.bytes_in, r.bytes_in);
  EXPECT_EQ(anon.key.src_port, r.key.src_port);
}

TEST(ExportAnonymize, V6KeepsPrefix) {
  net::CryptoPan cpan(secret());
  auto r = sample_record(true);
  auto anon = anonymize(r, cpan);
  EXPECT_EQ(anon.key.src.v6().high64(), r.key.src.v6().high64());
  EXPECT_NE(anon.key.src.v6().low64(), r.key.src.v6().low64());
}

TEST(Exporter, BatchesByDay) {
  Exporter exporter(secret());
  exporter.add(sample_record(false, 10));                      // day 0
  exporter.add(sample_record(false, kSecondsPerDay + 10));     // day 1
  exporter.add(sample_record(true, kSecondsPerDay + 20));      // day 1
  EXPECT_EQ(exporter.pending_records(), 3u);
  EXPECT_EQ(exporter.pending_days(), (std::vector<int>{0, 1}));

  auto day1 = exporter.flush_day(1);
  EXPECT_EQ(day1.records.size(), 2u);
  EXPECT_EQ(exporter.pending_records(), 1u);
  // Flushing again yields nothing.
  EXPECT_TRUE(exporter.flush_day(1).records.empty());
}

TEST(Exporter, FlushedRecordsAreAnonymized) {
  Exporter exporter(secret());
  auto r = sample_record(false, 10);
  exporter.add(r);
  auto batch = exporter.flush_day(0);
  ASSERT_EQ(batch.records.size(), 1u);
  // The low byte is scrambled with overwhelming probability under this
  // secret (verified stable by the fixed seed).
  EXPECT_EQ(batch.records[0].key.dst.v4().value() >> 8,
            r.key.dst.v4().value() >> 8);
}

TEST(Exporter, WriteReadRoundTrip) {
  Exporter exporter(secret());
  for (int i = 0; i < 5; ++i) {
    auto r = sample_record(i % 2 == 1, 50 + i);
    r.key.src_port = static_cast<std::uint16_t>(1000 + i);
    exporter.add(r);
  }
  auto batch = exporter.flush_day(0);

  std::stringstream wire;
  Exporter::write(wire, batch);
  auto back = Exporter::read(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->day, 0);
  ASSERT_EQ(back->records.size(), batch.records.size());
  for (size_t i = 0; i < batch.records.size(); ++i)
    EXPECT_EQ(back->records[i].key, batch.records[i].key);
}

TEST(Exporter, ReadRejectsGarbage) {
  std::stringstream wire("not a header\n");
  EXPECT_FALSE(Exporter::read(wire).has_value());
  std::stringstream wire2("# day X\n");
  EXPECT_FALSE(Exporter::read(wire2).has_value());
  std::stringstream wire3("# day 3\ngarbage line\n");
  EXPECT_FALSE(Exporter::read(wire3).has_value());
}

TEST(Exporter, MultipleBatchesOnOneStream) {
  Exporter exporter(secret());
  exporter.add(sample_record(false, 10));
  exporter.add(sample_record(false, kSecondsPerDay + 10));
  std::stringstream wire;
  Exporter::write(wire, exporter.flush_day(0));
  Exporter::write(wire, exporter.flush_day(1));
  auto b0 = Exporter::read(wire);
  auto b1 = Exporter::read(wire);
  ASSERT_TRUE(b0 && b1);
  EXPECT_EQ(b0->day, 0);
  EXPECT_EQ(b1->day, 1);
  EXPECT_FALSE(Exporter::read(wire).has_value());  // stream exhausted
}

// End-to-end: anonymized logs still support prefix-level (AS) analysis —
// the whole point of prefix preservation.
TEST(Exporter, AnonymizedLogsPreserveAsAttribution) {
  net::CryptoPan cpan(secret());
  net::AsMap as_map;
  as_map.announce(net::Prefix4(net::IPv4Addr(20, 3, 0, 0), 16), 64500);

  auto r = sample_record(false);
  auto anon = anonymize(r, cpan);
  auto asn_before = as_map.lookup(r.key.dst);
  auto asn_after = as_map.lookup(anon.key.dst);
  ASSERT_TRUE(asn_before && asn_after);
  EXPECT_EQ(*asn_before, *asn_after);  // /16 attribution survives /24-safe scramble
}

}  // namespace
}  // namespace nbv6::flowmon
