// Pass-graph pipeline runtime: scheduling, caching, dirty-node sweeps, and
// the golden-parity guarantee that the pipelined scenario chain is
// byte-identical to the standalone FleetEngine::run path at any lane count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/scenario_pipeline.h"
#include "engine/fleet.h"
#include "engine/pipeline.h"
#include "engine/thread_pool.h"
#include "testutil.h"
#include "traffic/service_catalog.h"

namespace {

using namespace nbv6;
using engine::Pass;
using engine::PassCache;
using engine::PassContext;
using engine::Pipeline;

Pass make_pass(std::string name, std::vector<std::string> inputs,
               std::vector<std::string> outputs, int* counter = nullptr) {
  Pass p;
  p.name = std::move(name);
  p.inputs = std::move(inputs);
  p.outputs = std::move(outputs);
  p.run = [outputs = p.outputs, counter](PassContext& ctx) {
    if (counter != nullptr) ++*counter;
    for (const auto& out : outputs) ctx.out(out, int{1});
  };
  return p;
}

// ----------------------------------------------------------- validation

TEST(Pipeline, RejectsDuplicatePassName) {
  Pipeline pipe;
  pipe.add(make_pass("a", {}, {"x"}));
  EXPECT_THROW(pipe.add(make_pass("a", {}, {"y"})), std::invalid_argument);
}

TEST(Pipeline, RejectsDuplicateOutputProducer) {
  Pipeline pipe;
  pipe.add(make_pass("a", {}, {"x"}));
  EXPECT_THROW(pipe.add(make_pass("b", {}, {"x"})), std::invalid_argument);
}

TEST(Pipeline, RejectsMissingRunFunction) {
  Pipeline pipe;
  Pass p;
  p.name = "a";
  p.outputs = {"x"};
  EXPECT_THROW(pipe.add(std::move(p)), std::invalid_argument);
}

TEST(Pipeline, RejectsUnproducedInput) {
  Pipeline pipe;
  pipe.add(make_pass("a", {"ghost"}, {"x"}));
  EXPECT_THROW(pipe.run(), std::invalid_argument);
}

TEST(Pipeline, RejectsDependencyCycle) {
  Pipeline pipe;
  pipe.add(make_pass("a", {"y"}, {"x"}));
  pipe.add(make_pass("b", {"x"}, {"y"}));
  try {
    pipe.run();
    FAIL() << "cycle not detected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
}

TEST(Pipeline, RejectsUndeclaredOutputWrite) {
  Pipeline pipe;
  Pass p;
  p.name = "a";
  p.outputs = {"x"};
  p.run = [](PassContext& ctx) { ctx.out("not_mine", int{1}); };
  pipe.add(std::move(p));
  EXPECT_THROW(pipe.run(), std::logic_error);
}

TEST(Pipeline, RejectsUnsetDeclaredOutput) {
  Pipeline pipe;
  Pass p;
  p.name = "a";
  p.outputs = {"x", "y"};
  p.run = [](PassContext& ctx) { ctx.out("x", int{1}); };  // forgets y
  pipe.add(std::move(p));
  EXPECT_THROW(pipe.run(), std::logic_error);
}

TEST(Pipeline, SchedulesDependenciesBeforeDependents) {
  Pipeline pipe;
  // Registered deliberately out of dependency order.
  pipe.add(make_pass("sink", {"mid"}, {"end"}));
  pipe.add(make_pass("mid", {"root_out"}, {"mid"}));
  pipe.add(make_pass("root", {}, {"root_out"}));
  const auto order = pipe.schedule();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "root");
  EXPECT_EQ(order[1], "mid");
  EXPECT_EQ(order[2], "sink");
}

// -------------------------------------------------------------- caching

TEST(Pipeline, SecondRunIsFullyCached) {
  int runs_a = 0;
  int runs_b = 0;
  Pipeline pipe;
  pipe.add(make_pass("a", {}, {"x"}, &runs_a));
  pipe.add(make_pass("b", {"x"}, {"y"}, &runs_b));

  PassCache cache;
  auto s1 = pipe.run(&cache);
  EXPECT_EQ(s1.executed, 2u);
  EXPECT_EQ(s1.cached, 0u);
  auto s2 = pipe.run(&cache);
  EXPECT_EQ(s2.executed, 0u);
  EXPECT_EQ(s2.cached, 2u);
  EXPECT_EQ(runs_a, 1);
  EXPECT_EQ(runs_b, 1);
  EXPECT_EQ(pipe.executions("a"), 1u);
  EXPECT_EQ(pipe.output<int>("y"), 1);
}

TEST(Pipeline, WithoutCacheEveryRunExecutes) {
  int runs = 0;
  Pipeline pipe;
  pipe.add(make_pass("a", {}, {"x"}, &runs));
  pipe.run();
  pipe.run();
  EXPECT_EQ(runs, 2);
}

TEST(Pipeline, ConfigDigestChangeDirtiesDownstream) {
  int runs_a = 0;
  int runs_b = 0;
  int runs_c = 0;
  Pipeline pipe;
  pipe.add(make_pass("a", {}, {"x"}, &runs_a));
  pipe.add(make_pass("b", {"x"}, {"y"}, &runs_b));
  pipe.add(make_pass("c", {"y"}, {"z"}, &runs_c));

  PassCache cache;
  pipe.run(&cache);
  // Dirty the middle pass: upstream stays cached, the dirty suffix re-runs.
  pipe.set_config_digest("b", 42);
  auto stats = pipe.run(&cache);
  EXPECT_EQ(stats.cached, 1u);    // a
  EXPECT_EQ(stats.executed, 2u);  // b, c
  EXPECT_EQ(runs_a, 1);
  EXPECT_EQ(runs_b, 2);
  EXPECT_EQ(runs_c, 2);
  // Reverting the digest lands back on the original cache entries.
  pipe.set_config_digest("b", 0);
  auto back = pipe.run(&cache);
  EXPECT_EQ(back.executed, 0u);
  EXPECT_EQ(back.cached, 3u);
}

// A cache hit must require more than a matching 64-bit digest: a colliding
// entry stored by a different pass (different name, or different output
// arity) previously bound out of bounds / wrong-typed values silently.
TEST(PassCache, CollidingEntryFromDifferentPassIsAMiss) {
  PassCache cache;
  cache.store(42, "alpha",
              {engine::PipelineValue::wrap(int{1}),
               engine::PipelineValue::wrap(int{2})});
  EXPECT_FALSE(cache.find(42, "beta", 2).has_value());   // name mismatch
  EXPECT_FALSE(cache.find(42, "alpha", 1).has_value());  // arity mismatch
  EXPECT_TRUE(cache.find(42, "alpha", 2).has_value());
  EXPECT_FALSE(cache.find(43, "alpha", 2).has_value());  // plain miss

  // erase is name-guarded the same way.
  EXPECT_FALSE(cache.erase(42, "beta"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.erase(42, "alpha"));
  EXPECT_EQ(cache.size(), 0u);
}

// Forced end-to-end collision: pre-store an impostor entry under the exact
// digest a two-output pass will compute. Pre-fix, Pipeline::run trusted the
// digest and read the impostor's single-element output list out of bounds;
// now the mismatch reads as a miss and the pass executes.
TEST(Pipeline, ForcedDigestCollisionTreatedAsMiss) {
  int runs = 0;
  Pipeline pipe;
  pipe.add(make_pass("wide", {}, {"x", "y"}, &runs));
  const auto discovery = pipe.run();  // no cache: learn the digest
  ASSERT_EQ(discovery.passes.size(), 1u);
  const std::uint64_t digest = discovery.passes[0].digest;

  PassCache cache;
  cache.store(digest, "impostor",
              {engine::PipelineValue::wrap(std::string("not an int"))});
  const auto stats = pipe.run(&cache);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.cached, 0u);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(pipe.output<int>("x"), 1);
  EXPECT_EQ(pipe.output<int>("y"), 1);
}

// A pass failure must not leave bound state half-populated: before the
// fix, output_value served the failed run's fresh upstream results (and
// nothing downstream) exactly as if the run had completed.
TEST(Pipeline, ThrowingPassClearsBoundState) {
  auto armed = std::make_shared<bool>(false);
  Pipeline pipe;
  pipe.add(make_pass("a", {}, {"x"}));
  Pass boom;
  boom.name = "boom";
  boom.inputs = {"x"};
  boom.outputs = {"y"};
  boom.run = [armed](PassContext& ctx) {
    if (*armed) throw std::runtime_error("pass blew up");
    ctx.out("y", int{2});
  };
  pipe.add(std::move(boom));

  // Successful run: both resources bound.
  pipe.run();
  EXPECT_EQ(pipe.output<int>("x"), 1);
  EXPECT_EQ(pipe.output<int>("y"), 2);

  // Failed run: nothing bound — neither the failed pass's missing output
  // nor the upstream output that did re-run this time.
  *armed = true;
  EXPECT_THROW(pipe.run(), std::runtime_error);
  EXPECT_THROW((void)pipe.output_value("x"), std::logic_error);
  EXPECT_THROW((void)pipe.output_value("y"), std::logic_error);

  // The pipeline stays usable: disarm and run clean again.
  *armed = false;
  pipe.run();
  EXPECT_EQ(pipe.output<int>("y"), 2);
}

TEST(Pipeline, UncachedSinkPassAlwaysExecutes) {
  int sink_runs = 0;
  Pipeline pipe;
  pipe.add(make_pass("a", {}, {"x"}));
  Pass sink = make_pass("sink", {"x"}, {"written"}, &sink_runs);
  sink.cache_outputs = false;
  pipe.add(std::move(sink));

  PassCache cache;
  pipe.run(&cache);
  pipe.run(&cache);
  EXPECT_EQ(sink_runs, 2);
}

// ----------------------------------------------- scenario pass dirtying

engine::FleetConfig small_config() {
  engine::FleetConfig cfg;
  cfg.residences = 8;
  cfg.days = 6;
  cfg.seed = 7;
  return cfg;
}

engine::TimelineEvent fix_event(double fraction) {
  engine::TimelineEvent ev;
  ev.kind = engine::TimelineEventKind::cpe_fix;
  ev.start_day = 1;
  ev.end_day = 4;
  ev.fraction = fraction;
  return ev;
}

TEST(ScenarioPipeline, TimelineChangeKeepsSampleCached) {
  const auto catalog = traffic::build_paper_catalog();
  PassCache cache;

  auto base = small_config();
  Pipeline p1 = core::make_scenario_pipeline(base, catalog);
  p1.run(&cache);

  auto variant = base;
  variant.timeline->events.push_back(fix_event(0.5));
  Pipeline p2 = core::make_scenario_pipeline(variant, catalog);
  auto stats = p2.run(&cache);

  // Only the population slice digests identically: sample hits, the
  // timeline pass and everything downstream re-runs.
  EXPECT_EQ(p2.executions("sample"), 0u);
  EXPECT_EQ(p2.executions("timeline"), 1u);
  EXPECT_EQ(p2.executions("simulate"), 1u);
  EXPECT_EQ(stats.cached, 1u);
  EXPECT_EQ(stats.executed, 5u);
}

TEST(ScenarioPipeline, SeedChangeRerunsEverything) {
  const auto catalog = traffic::build_paper_catalog();
  PassCache cache;

  Pipeline p1 = core::make_scenario_pipeline(small_config(), catalog);
  p1.run(&cache);

  auto reseeded = small_config();
  reseeded.seed.mut() += 1;
  Pipeline p2 = core::make_scenario_pipeline(reseeded, catalog);
  auto stats = p2.run(&cache);
  EXPECT_EQ(stats.cached, 0u);
  EXPECT_EQ(stats.executed, 6u);
}

TEST(ScenarioPipeline, ReplaceScenarioConfigDirtiesInPlace) {
  const auto catalog = traffic::build_paper_catalog();
  PassCache cache;

  auto base = small_config();
  Pipeline pipe = core::make_scenario_pipeline(base, catalog);
  pipe.run(&cache);
  EXPECT_EQ(pipe.executions("sample"), 1u);

  auto variant = base;
  variant.timeline->events.push_back(fix_event(0.25));
  core::replace_scenario_config(pipe, variant, catalog);
  auto stats = pipe.run(&cache);
  // In-place dirty sweep: same pipeline object, sample still cached (its
  // lifetime counter stays at 1), dirty suffix re-ran.
  EXPECT_EQ(pipe.executions("sample"), 1u);
  EXPECT_EQ(pipe.executions("timeline"), 2u);
  EXPECT_EQ(stats.cached, 1u);
}

TEST(ScenarioPipeline, WhatIfForestSamplesBaseExactlyOnce) {
  const auto catalog = traffic::build_paper_catalog();
  PassCache cache;
  const auto base = small_config();

  std::vector<std::unique_ptr<Pipeline>> pipes;
  for (int v = 0; v < 5; ++v) {
    auto cfg = base;
    if (v > 0) cfg.timeline->events.push_back(fix_event(0.2 * v));
    pipes.push_back(std::make_unique<Pipeline>(
        core::make_scenario_pipeline(cfg, catalog)));
    pipes.back()->run(&cache);
  }
  std::uint64_t sample_execs = 0;
  for (const auto& p : pipes) sample_execs += p->executions("sample");
  EXPECT_EQ(sample_execs, 1u);
}

// -------------------------------------------------------- golden parity

// The pipelined scenario chain must be byte-identical to the standalone
// FleetEngine::run path for every committed scenario, at 1, 4, and 8
// lanes, with cross-lane cache reuse in play (a cached pass result from a
// 1-lane run binds into an 8-lane pipeline).
TEST(ScenarioPipeline, PipelinedRunsMatchStandaloneByteForByte) {
  const auto catalog = traffic::build_paper_catalog();
  const auto files = testutil::scenario_files();
  ASSERT_FALSE(files.empty());

  for (const auto& path : files) {
    std::string error;
    auto cfg = engine::FleetConfig::load(path, &error);
    ASSERT_TRUE(cfg) << path << ": " << error;

    const std::string expected =
        testutil::canonical_serialize(testutil::run_scenario(*cfg, catalog, 1));

    PassCache cache;  // shared across lane counts on purpose
    for (int lanes : {1, 4, 8}) {
      std::unique_ptr<engine::ThreadPool> pool;
      if (lanes > 1) pool = std::make_unique<engine::ThreadPool>(lanes - 1);

      Pipeline pipe = core::make_scenario_pipeline(*cfg, catalog);
      pipe.run(&cache, pool.get());

      testutil::ScenarioRun run;
      run.cfg = *cfg;
      run.result = pipe.output<engine::FleetResult>("fleet_result");
      run.report = pipe.output<core::FleetStatsReport>("stats_report");
      run.window_panel = pipe.output<core::GroupComparison>("window_panel");
      const std::string got = testutil::canonical_serialize(run);
      EXPECT_EQ(got, expected)
          << testutil::scenario_stem(path) << " @ " << lanes << " lanes: "
          << testutil::first_diff(got, expected);
    }
  }
}

}  // namespace
