// nbv6_lint — repo-specific determinism lint over src/.
//
// The engine's core promise is bit-identical output for a fixed (config,
// seed) at any thread count. That dies quietly when someone reaches for an
// ambient source of nondeterminism — wall clocks, global RNGs, the
// environment — or serializes a container whose iteration order is
// implementation-defined. This tool bans those by construction:
//
//   random-device    std::random_device anywhere in src/ (seeds must come
//                    from config, never from entropy).
//   rand             rand()/srand() — the C global RNG has hidden state.
//   wall-clock       system_clock / steady_clock / time(nullptr|NULL|0):
//                    results must not depend on when the run happened.
//                    (Benchmarks live in bench/, outside the scanned tree.)
//   getenv           environment reads outside an explicit allowlist:
//                    config comes from files/flags, or goldens diverge
//                    between machines.
//   unordered-iter   range-for over a std::unordered_{map,set} variable in
//                    the files that feed canonical serialization
//                    (core/fleet_analysis.*, engine/scenario_fuzz.*,
//                    flowmon/export.*) — iteration order there is part of
//                    golden bytes.
//   purity-comment   every splitmix64( / stats::Rng( draw site in
//                    engine/timeline.cpp and traffic/arrival.cpp must have
//                    a nearby comment (<= 16 lines above) containing
//                    "deriv", documenting the coordinate-fold derivation
//                    that makes the draw order-independent.
//
// Matching runs on comment- and string-stripped source, so prose like "do
// not use std::random_device" in a header comment never trips the gate.
// A finding is suppressed by putting `// nbv6-lint: allow(<rule>)` on the
// same line — grep-able, reviewed, and per-line.
//
// Modes:
//   nbv6_lint <dir> [<dir>...]     lint every .h/.cpp/.cc under the dirs;
//                                  print findings, exit 1 if any.
//   nbv6_lint --self-test <dir>    fixture mode: each file's first line
//                                  declares `// nbv6-lint-fixture:
//                                  expect(<rule>)` (or expect(none)); the
//                                  tool verifies each fixture triggers
//                                  exactly the declared rule. All rules
//                                  apply to every fixture (the per-file
//                                  restrictions above are lifted) so the
//                                  rule logic itself is what is tested.
//
// Self-contained by design: no third-party deps, builds with the repo
// toolchain, runs as a ctest (`analysis` label) and a CI gate.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One source line split into executable code and comment text. Banned
/// tokens match only against `code`; suppression markers and purity
/// contracts look at `comment`.
struct SplitLine {
  std::string code;
  std::string comment;
};

/// Comment/string stripper. Stateful across lines (block comments, raw
/// strings). String and char literal contents are dropped from `code` (the
/// quotes remain, so adjacency never merges tokens).
class Stripper {
 public:
  SplitLine split(const std::string& line) {
    SplitLine out;
    size_t i = 0;
    const size_t n = line.size();
    while (i < n) {
      if (state_ == State::block_comment) {
        size_t end = line.find("*/", i);
        if (end == std::string::npos) {
          out.comment.append(line, i, n - i);
          return out;
        }
        out.comment.append(line, i, end - i);
        state_ = State::code;
        i = end + 2;
        continue;
      }
      if (state_ == State::raw_string) {
        size_t end = line.find(raw_close_, i);
        if (end == std::string::npos) return out;
        i = end + raw_close_.size();
        out.code += "\")";  // keep the literal's closing tokens
        state_ = State::code;
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < n && line[i + 1] == '/') {
        out.comment.append(line, i + 2, n - (i + 2));
        return out;
      }
      if (c == '/' && i + 1 < n && line[i + 1] == '*') {
        state_ = State::block_comment;
        i += 2;
        continue;
      }
      if (c == 'R' && i + 1 < n && line[i + 1] == '"' &&
          !is_ident_char(i > 0 ? line[i - 1] : '\0')) {
        size_t open = line.find('(', i + 2);
        if (open != std::string::npos) {
          raw_close_ = ")" + line.substr(i + 2, open - (i + 2)) + "\"";
          out.code += "R\"(";
          state_ = State::raw_string;
          // Content up to a same-line close is skipped by the raw branch.
          i = open + 1;
          continue;
        }
      }
      if (c == '"' || c == '\'') {
        out.code += c;
        const char quote = c;
        ++i;
        while (i < n) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            out.code += quote;
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      out.code += c;
      ++i;
    }
    return out;
  }

 private:
  static bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  }
  enum class State { code, block_comment, raw_string };
  State state_ = State::code;
  std::string raw_close_;
};

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `token` appears in `code` as a whole identifier.
bool has_token(const std::string& code, std::string_view token) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(code[pos - 1]);
    const size_t after = pos + token.size();
    const bool right_ok = after >= code.size() || !is_ident(code[after]);
    if (left_ok && right_ok) return true;
    pos = after;
  }
  return false;
}

/// True if `token` appears as a whole identifier immediately followed by
/// '(' (spaces allowed): a call of that name.
bool has_call(const std::string& code, std::string_view token) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(code[pos - 1]);
    size_t after = pos + token.size();
    while (after < code.size() && code[after] == ' ') ++after;
    if (left_ok && after < code.size() && code[after] == '(') return true;
    pos = pos + token.size();
  }
  return false;
}

/// time(nullptr) / time(NULL) / time(0): the wall-clock call shape. A
/// plain `time(` alone would flag unrelated functions named time.
bool has_wall_time_call(const std::string& code) {
  static const std::regex re(R"((^|[^A-Za-z0-9_])time\s*\(\s*(nullptr|NULL|0)\s*\))");
  return std::regex_search(code, re);
}

bool path_contains(const std::string& rel, std::string_view needle) {
  return rel.find(needle) != std::string::npos;
}

struct Options {
  bool all_rules_everywhere = false;  ///< self-test mode: lift file scoping
};

/// Files whose iteration order becomes golden bytes.
bool canonical_serialization_file(const std::string& rel) {
  return path_contains(rel, "core/fleet_analysis.") ||
         path_contains(rel, "engine/scenario_fuzz.") ||
         path_contains(rel, "flowmon/export.");
}

/// Files under the purity comment contract for RNG draw sites.
bool purity_contract_file(const std::string& rel) {
  return path_contains(rel, "engine/timeline.cpp") ||
         path_contains(rel, "traffic/arrival.cpp");
}

/// getenv allowlist (relative-path substrings). Currently empty on
/// purpose: src/ reads no environment. Additions belong in review, with a
/// reason, not behind a suppression comment.
bool getenv_allowed(const std::string& rel) {
  static const std::vector<std::string> allow = {};
  return std::any_of(allow.begin(), allow.end(), [&](const std::string& a) {
    return path_contains(rel, a);
  });
}

bool suppressed(const std::string& comment, std::string_view rule) {
  const std::string marker = "nbv6-lint: allow(" + std::string(rule) + ")";
  return comment.find(marker) != std::string::npos;
}

void lint_file(const fs::path& path, const std::string& rel,
               const Options& opt, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    findings.push_back({rel, 0, "io", "cannot read file"});
    return;
  }
  std::vector<std::string> raw;
  std::string line;
  while (std::getline(in, line)) raw.push_back(line);

  Stripper stripper;
  std::vector<SplitLine> split;
  split.reserve(raw.size());
  for (const auto& l : raw) split.push_back(stripper.split(l));

  auto add = [&](size_t idx, std::string_view rule, std::string msg) {
    if (suppressed(split[idx].comment, rule)) return;
    findings.push_back(
        {rel, static_cast<int>(idx + 1), std::string(rule), std::move(msg)});
  };

  // Declared unordered container names (pass 1 of unordered-iter). A
  // single-line-declaration heuristic: good enough for the three canonical
  // files, and a miss fails loudly in review, not silently in goldens.
  std::set<std::string> unordered_names;
  static const std::regex decl_re(
      R"(unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+([A-Za-z_]\w*))");
  static const std::regex range_for_re(
      R"(for\s*\([^;:]*:\s*([A-Za-z_]\w*(?:\.\w+|->\w+)*)\s*\))");

  const bool canonical =
      opt.all_rules_everywhere || canonical_serialization_file(rel);
  const bool purity = opt.all_rules_everywhere || purity_contract_file(rel);

  if (canonical) {
    for (const auto& sl : split) {
      auto begin = std::sregex_iterator(sl.code.begin(), sl.code.end(), decl_re);
      for (auto it = begin; it != std::sregex_iterator(); ++it)
        unordered_names.insert((*it)[1].str());
    }
  }

  for (size_t i = 0; i < split.size(); ++i) {
    const std::string& code = split[i].code;
    if (code.empty()) continue;

    if (has_token(code, "random_device"))
      add(i, "random-device",
          "std::random_device is banned: seeds come from config, not "
          "entropy");
    if (has_call(code, "rand") || has_call(code, "srand"))
      add(i, "rand",
          "rand()/srand() are banned: global hidden RNG state breaks "
          "reproducibility");
    if (has_token(code, "system_clock") || has_token(code, "steady_clock"))
      add(i, "wall-clock",
          "wall-clock reads are banned in src/: results must not depend on "
          "when the run happened");
    if (has_wall_time_call(code))
      add(i, "wall-clock", "time(nullptr) is banned: wall-clock seed/state");
    if (has_call(code, "getenv") && !getenv_allowed(rel))
      add(i, "getenv",
          "environment reads are banned outside the allowlist: config "
          "comes from files/flags");

    if (canonical && !unordered_names.empty()) {
      std::smatch m;
      if (std::regex_search(code, m, range_for_re) &&
          unordered_names.count(m[1].str()) != 0)
        add(i, "unordered-iter",
            "iterating '" + m[1].str() +
                "' (unordered container) in a canonical-serialization "
                "file: iteration order is implementation-defined");
    }

    if (purity &&
        (code.find("splitmix64(") != std::string::npos ||
         code.find("Rng(") != std::string::npos)) {
      // Contract: a comment within the 16 preceding lines (or this line)
      // must mention the derivation that makes the draw order-independent.
      bool documented = false;
      const size_t first = i >= 16 ? i - 16 : 0;
      for (size_t j = first; j <= i && !documented; ++j)
        documented = split[j].comment.find("deriv") != std::string::npos;
      if (!documented)
        add(i, "purity-comment",
            "RNG draw site without a nearby 'derivation' comment: document "
            "the coordinate fold that keeps this draw order-independent");
    }
  }
}

std::vector<fs::path> source_files(const fs::path& root) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp" || ext == ".cc")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string relative_to(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

int run_lint(const std::vector<std::string>& dirs) {
  std::vector<Finding> findings;
  for (const auto& d : dirs) {
    const fs::path root(d);
    if (!fs::exists(root)) {
      std::fprintf(stderr, "nbv6_lint: no such directory: %s\n", d.c_str());
      return 2;
    }
    for (const auto& f : source_files(root))
      lint_file(f, relative_to(f, root), Options{}, findings);
  }
  for (const auto& f : findings)
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  if (findings.empty()) {
    std::printf("nbv6_lint: clean\n");
    return 0;
  }
  std::printf("nbv6_lint: %zu finding(s)\n", findings.size());
  return 1;
}

int run_self_test(const std::string& dir) {
  const fs::path root(dir);
  if (!fs::exists(root)) {
    std::fprintf(stderr, "nbv6_lint: no such directory: %s\n", dir.c_str());
    return 2;
  }
  int failures = 0;
  int checked = 0;
  for (const auto& f : source_files(root)) {
    std::ifstream in(f);
    std::string first;
    std::getline(in, first);
    const std::string tag = "nbv6-lint-fixture: expect(";
    const size_t at = first.find(tag);
    if (at == std::string::npos) {
      std::fprintf(stderr, "FAIL %s: missing fixture marker '%s<rule>)'\n",
                   f.string().c_str(), tag.c_str());
      ++failures;
      continue;
    }
    const size_t close = first.find(')', at);
    const std::string expect =
        first.substr(at + tag.size(), close - (at + tag.size()));

    std::vector<Finding> findings;
    Options opt;
    opt.all_rules_everywhere = true;
    lint_file(f, relative_to(f, root), opt, findings);
    ++checked;

    std::set<std::string> rules;
    for (const auto& fd : findings) rules.insert(fd.rule);

    bool ok;
    if (expect == "none") {
      ok = findings.empty();
    } else {
      // Exactly the declared rule, at least once, and nothing else.
      ok = !findings.empty() && rules.size() == 1 && *rules.begin() == expect;
    }
    if (!ok) {
      std::fprintf(stderr, "FAIL %s: expected '%s', got %zu finding(s):\n",
                   f.string().c_str(), expect.c_str(), findings.size());
      for (const auto& fd : findings)
        std::fprintf(stderr, "  %s:%d: [%s] %s\n", fd.file.c_str(), fd.line,
                     fd.rule.c_str(), fd.message.c_str());
      ++failures;
    }
  }
  if (checked == 0) {
    std::fprintf(stderr, "nbv6_lint: no fixtures found under %s\n",
                 dir.c_str());
    return 2;
  }
  std::printf("nbv6_lint --self-test: %d fixture(s), %d failure(s)\n", checked,
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: nbv6_lint <dir> [<dir>...]\n"
                 "       nbv6_lint --self-test <fixtures-dir>\n");
    return 2;
  }
  if (args[0] == "--self-test") {
    if (args.size() != 2) {
      std::fprintf(stderr, "usage: nbv6_lint --self-test <fixtures-dir>\n");
      return 2;
    }
    return run_self_test(args[1]);
  }
  return run_lint(args);
}
