// nbv6-lint-fixture: expect(getenv)
// Not compiled: lint fixture only. Environment-dependent behavior makes
// goldens machine-dependent; config belongs in files and flags.
#include <cstdlib>

const char* ambient_config() { return std::getenv("NBV6_SECRET_KNOB"); }
