// nbv6-lint-fixture: expect(rand)
// Not compiled: lint fixture only. The C global RNG carries hidden process
// state; note the comment mentioning rand() must NOT trip the stripped
// scan — only these two call sites may.
#include <cstdlib>

int hidden_state_draw() {
  std::srand(42);
  return std::rand();
}
