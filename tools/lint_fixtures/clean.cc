// nbv6-lint-fixture: expect(none)
// Not compiled: lint fixture only. Exercises every way a file stays clean:
// banned tokens in comments and strings (stripped before matching), an
// ordered-map iteration, a documented draw site, and one explicit
// per-line suppression.
//
// Prose mentions that std::random_device, rand(), and getenv("X") are
// banned — none of which may trip the stripped scan.
#include <cstdint>
#include <map>
#include <string>

namespace stats {
// Declaration only; each call site documents its own derivation fold.
std::uint64_t splitmix64(std::uint64_t& state);
}

std::string ordered_serialize(const std::map<std::string, int>& counts) {
  std::string out = "do not call time(nullptr) or steady_clock::now()";
  for (const auto& kv : counts) out += kv.first;
  return out;
}

double documented_draw(std::uint64_t seed, int index) {
  // Same derivation idiom as sample_fleet_detailed: fold the coordinates
  // through a distinct odd multiplier so the draw is order-independent.
  std::uint64_t state =
      seed ^ (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(index) + 1));
  return static_cast<double>(stats::splitmix64(state) >> 11) * 0x1.0p-53;
}

long reviewed_exception() {
  // A reviewed, per-line escape hatch for the rare legitimate use.
  return static_cast<long>(time(nullptr));  // nbv6-lint: allow(wall-clock)
}
